package dynctrl_test

import (
	"context"
	"fmt"
	"log"

	"dynctrl"
	"dynctrl/internal/server"
	"dynctrl/internal/workload"
)

// ExampleNewPipeline builds the in-process admission stack — tree,
// deterministic runtime, distributed (M,W)-Controller — and drives it
// through the concurrent batched pipeline.
func ExampleNewPipeline() {
	tr, root := dynctrl.NewTree()
	rt := dynctrl.NewRuntime(42)
	ctl := dynctrl.NewController(tr, rt, 1000, 50) // (M, W) = (1000, 50)

	pl := dynctrl.NewPipeline(ctl)
	defer pl.Close()

	// Safe from any number of goroutines; here, two serial submissions.
	grant, err := pl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("add-leaf:", grant.Outcome, "new node created:", grant.NewNode != 0)

	grant, err = pl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.None})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("event:", grant.Outcome)
	// Output:
	// add-leaf: granted new node created: true
	// event: granted
}

// ExampleDial starts a dynctrld server on loopback and submits one
// request through the pooled wire client. Outside a test the server
// would be a separately running dynctrld process.
func ExampleDial() {
	srv, err := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 8},
		Seed:     1,
		M:        1000,
		W:        50,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	cl, err := dynctrl.Dial(srv.Addr(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fmt.Println("tenant:", cl.Tenant(), "M:", cl.M(), "W:", cl.W())
	grant, err := cl.Submit(dynctrl.Request{Node: 1, Kind: dynctrl.None})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("event:", grant.Outcome)
	// Output:
	// tenant: default M: 1000 W: 50
	// event: granted
}
