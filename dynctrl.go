// Package dynctrl is a Go implementation of "Controller and estimator for
// dynamic networks" by Amos Korman and Shay Kutten (PODC 2007; journal
// version Information & Computation 223, 2013).
//
// The library provides:
//
//   - An (M,W)-Controller for dynamic trees under the controlled dynamic
//     model, supporting insertions and deletions of both leaves and
//     internal nodes, in a centralized form (move complexity) and a
//     distributed form (message complexity) with matching asymptotics.
//   - The size-estimation protocol: every node maintains a β-approximation
//     of the current network size at amortized O(log²n) messages per
//     topological change.
//   - The name-assignment protocol: unique identities in [1, 4n] at all
//     times.
//   - A heavy-child decomposition of the dynamic tree (O(log n) light
//     ancestors).
//   - Dynamic extensions of static labeling schemes (ancestry, NCA,
//     distance), and a majority-commitment protocol built on the counting
//     machinery.
//
// # Quick start
//
//	tr, root := dynctrl.NewTree()
//	rt := dynctrl.NewRuntime(42)
//	ctl := dynctrl.NewController(tr, rt, 1000, 50) // (M,W) = (1000, 50)
//	grant, err := ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
//
// Every topological change must be requested through a controller (the
// controlled dynamic model of the paper): the change is applied gracefully
// once the request is granted.
package dynctrl

import (
	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/estimator"
	"dynctrl/internal/heavychild"
	"dynctrl/internal/labeling"
	"dynctrl/internal/majority"
	"dynctrl/internal/naming"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Core tree types.
type (
	// Tree is the dynamic rooted spanning tree substrate.
	Tree = tree.Tree
	// NodeID identifies a (possibly deleted) node.
	NodeID = tree.NodeID
	// ChangeKind enumerates the topological change types.
	ChangeKind = tree.ChangeKind
)

// Request/response types of the controller.
type (
	// Request is one event submitted to a controller.
	Request = controller.Request
	// Grant is a controller's answer.
	Grant = controller.Grant
	// Outcome is the answer kind (Granted / Rejected / WouldReject).
	Outcome = controller.Outcome
)

// Topological change kinds (None marks non-topological events).
const (
	None           = tree.None
	AddLeaf        = tree.AddLeaf
	RemoveLeaf     = tree.RemoveLeaf
	AddInternal    = tree.AddInternal
	RemoveInternal = tree.RemoveInternal
)

// Request outcomes.
const (
	Granted     = controller.Granted
	Rejected    = controller.Rejected
	WouldReject = controller.WouldReject
)

// ErrTerminated is returned by terminating controllers after termination.
var ErrTerminated = controller.ErrTerminated

// Runtime moves messages for the distributed protocols.
type Runtime = sim.Runtime

// Counters accumulates cost metrics (messages, grants, ...).
type Counters = stats.Counters

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return stats.NewCounters() }

// NewTree creates a dynamic tree holding only a root and returns both.
func NewTree() (*Tree, NodeID) { return tree.New() }

// NewRuntime returns the deterministic message runtime seeded with seed:
// reproducible, adversarially shuffled asynchronous delivery.
func NewRuntime(seed int64) Runtime { return sim.NewDeterministic(seed) }

// NewConcurrentRuntime returns the goroutine-based runtime: delivery order
// is decided by the Go scheduler.
func NewConcurrentRuntime(workers int) Runtime { return sim.NewConcurrent(workers) }

// Controller is the distributed unknown-U (M,W)-Controller — the paper's
// headline construction (Theorem 4.9). No bound on the number of nodes is
// needed in advance; message complexity is
// O(n₀log²n₀·log(M/(W+1)) + Σ_j log²n_j·log(M/(W+1))).
type Controller = dist.Dynamic

// NewController builds a distributed (m,w)-Controller over tr.
func NewController(tr *Tree, rt Runtime, m, w int64) *Controller {
	return dist.NewDynamic(tr, rt, m, w, false, nil)
}

// NewControllerWithCounters is NewController with shared counters.
func NewControllerWithCounters(tr *Tree, rt Runtime, m, w int64, c *Counters) *Controller {
	return dist.NewDynamic(tr, rt, m, w, false, c)
}

// Pipeline is the concurrent batched submission front-end: requests
// arriving from many goroutines are coalesced into batches and driven
// through the controller so that one filler-search climb/descent wave is
// amortized across a whole batch instead of per request. Grant/reject
// semantics — and the safety invariant that at most M permits are ever
// granted — are exactly those of the serial Submit loop on the same trace.
//
//	ctl := dynctrl.NewController(tr, rt, 1_000_000, 50_000)
//	pl := dynctrl.NewPipeline(ctl)
//	// from any number of goroutines:
//	grant, err := pl.Submit(dynctrl.Request{Node: id, Kind: dynctrl.None})
//	// barrier: wait until everything submitted so far has been answered
//	pl.Flush()
//
// See Pipeline.Submit, Pipeline.Flush, Pipeline.Close and Pipeline.Stats.
type Pipeline = pipeline.Pipeline

// PipelineOption configures a Pipeline (see WithMaxBatch).
type PipelineOption = pipeline.Option

// WithMaxBatch bounds the number of requests one pipeline batch may carry
// (default pipeline.DefaultMaxBatch).
func WithMaxBatch(n int) PipelineOption { return pipeline.WithMaxBatch(n) }

// BatchSubmitter is a controller that can answer a whole batch of requests
// with serial-equivalent semantics. The distributed Controller and the
// centralized cores implement it.
type BatchSubmitter = controller.BatchSubmitter

// NewPipeline builds a concurrent batched submission pipeline over the
// given controller. The controller must no longer be driven directly while
// the pipeline is in use (the pipeline serializes all access to it).
func NewPipeline(ctl BatchSubmitter, opts ...PipelineOption) *Pipeline {
	return pipeline.New(ctl, opts...)
}

// ErrPipelineClosed is the sentinel returned by Pipeline.Submit and
// Pipeline.SubmitMany after Pipeline.Close.
var ErrPipelineClosed = pipeline.ErrClosed

// RemoteClient is a connection-pooled, pipelined client of a dynctrld
// daemon (cmd/dynctrld). It exposes the same Submit/SubmitMany surface as
// the in-process controllers, so drivers written against either run
// unchanged over TCP.
type RemoteClient = client.Client

// RemoteOptions configures Dial (pool size, timeouts, reject-wave hook).
type RemoteOptions = client.Options

// Dial connects to a dynctrld daemon with a pool of conns connections and
// performs the protocol handshake against the default tenant namespace.
// The returned client reports the server's (M, W) contract and is safe
// for concurrent use:
//
//	cl, err := dynctrl.Dial("127.0.0.1:7700", 8)
//	grant, err := cl.Submit(dynctrl.Request{Node: id, Kind: dynctrl.None})
func Dial(addr string, conns int) (*RemoteClient, error) {
	return client.Dial(addr, client.Options{Conns: conns})
}

// DialTenant is Dial bound to a named tenant namespace: every pooled
// connection handshakes into that namespace, and the returned client
// reports that tenant's (M, W) contract, topology signature and
// incarnation. Dialing a namespace the daemon does not serve fails with
// a typed handshake error.
func DialTenant(addr, tenant string, conns int) (*RemoteClient, error) {
	return client.Dial(addr, client.Options{Conns: conns, Tenant: tenant})
}

// DialOptions is Dial with full client options (pool size, tenant,
// timeouts, reject-wave hook).
func DialOptions(addr string, opts RemoteOptions) (*RemoteClient, error) {
	return client.Dial(addr, opts)
}

// Estimator maintains a β-approximation of the network size at every node.
type Estimator = estimator.Estimator

// NewEstimator builds the size-estimation protocol (Theorem 5.1).
func NewEstimator(tr *Tree, rt Runtime, beta float64) (*Estimator, error) {
	return estimator.New(tr, rt, beta)
}

// Naming maintains unique node identities in [1, 4n].
type Naming = naming.Naming

// NewNaming builds the name-assignment protocol (Theorem 5.2).
func NewNaming(tr *Tree, rt Runtime) *Naming {
	return naming.New(tr, rt, nil)
}

// HeavyChild maintains a heavy-child decomposition (Theorem 5.4).
type HeavyChild = heavychild.Decomposition

// NewHeavyChild builds the heavy-child decomposition protocol.
func NewHeavyChild(tr *Tree, rt Runtime) (*HeavyChild, error) {
	return heavychild.New(tr, rt, nil)
}

// Labeling types (Section 5.4).
type (
	// AncestryLabeling is the static KNR interval scheme.
	AncestryLabeling = labeling.Ancestry
	// NCALabeling answers nearest-common-ancestor queries from labels.
	NCALabeling = labeling.NCA
	// DistanceLabeling answers exact tree-distance queries from labels.
	DistanceLabeling = labeling.Distance
	// RoutingScheme is exact (stretch-1) interval routing on the tree.
	RoutingScheme = labeling.Routing
	// DynamicLabeling recomputes a static scheme as the size drifts.
	DynamicLabeling = labeling.Dynamic
)

// BuildAncestryLabels labels the current tree with interval labels.
func BuildAncestryLabels(tr *Tree) *AncestryLabeling { return labeling.BuildAncestry(tr) }

// BuildNCALabels labels the current tree for NCA queries (O(log²n)-bit
// labels via heavy-path decomposition).
func BuildNCALabels(tr *Tree) *NCALabeling { return labeling.BuildNCA(tr) }

// BuildDistanceLabels labels the current tree for exact distance queries
// (O(log n) separator entries per label via centroid decomposition).
func BuildDistanceLabels(tr *Tree) *DistanceLabeling { return labeling.BuildDistance(tr) }

// BuildRoutingTables snapshots exact interval-routing tables for the
// current tree (next hops computed from local tables + destination labels).
func BuildRoutingTables(tr *Tree) (*RoutingScheme, error) { return labeling.BuildRouting(tr) }

// QueryNCA answers an NCA query (as a preorder number) from two labels.
func QueryNCA(a, b labeling.NCALabel) (int, error) { return labeling.QueryNCA(a, b) }

// QueryDistance answers an exact tree-distance query from two labels.
func QueryDistance(a, b labeling.DistanceLabel) (int, error) { return labeling.QueryDistance(a, b) }

// NewDynamicAncestryLabeling wraps the ancestry scheme with size-driven
// rebuilds so label sizes track the current n (Corollary 5.7).
func NewDynamicAncestryLabeling(tr *Tree, rt Runtime) (*DynamicLabeling, error) {
	return labeling.NewDynamic(tr, rt, func(tr *tree.Tree) (labeling.Scheme, int64) {
		return labeling.BuildAncestry(tr), int64(tr.Size())
	}, nil)
}

// Majority is the majority-commitment protocol.
type Majority = majority.Protocol

// NewMajority starts majority commitment over the given population,
// returning the protocol and its (single-root) tree.
func NewMajority(population int, seed int64) (*Majority, *Tree, error) {
	return majority.New(population, seed)
}
