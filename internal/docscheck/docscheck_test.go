// Package docscheck is the documentation drift gate: a test-only package
// asserting that the normative documents under docs/ keep up with the
// code. It checks that every relative markdown link in docs/ and the
// README resolves, that every /metricsz field the server emits and
// every CLI flag dynctrld and loadgen declare is documented in
// docs/OPERATIONS.md, that the live /metricsz exposition declares
// # HELP and # TYPE for every family it renders, and that every wire
// frame type and error code is documented in docs/PROTOCOL.md. CI runs
// it as the docs job, so adding a metric or a wire code without
// documenting it fails the build.
package docscheck

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"dynctrl/internal/server"
	"dynctrl/internal/workload"
)

// repoRoot is the module root relative to this package directory.
const repoRoot = "../.."

func readFile(t *testing.T, rel string) string {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(repoRoot, rel))
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	return string(buf)
}

// markdownFiles lists every document the link check covers.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	matches, err := filepath.Glob(filepath.Join(repoRoot, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		rel, err := filepath.Rel(repoRoot, m)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, rel)
	}
	if len(files) < 3 {
		t.Fatalf("expected README plus at least two docs/ pages, found %v", files)
	}
	return files
}

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve verifies every relative link in the covered
// documents points at a file that exists (anchors and external URLs are
// skipped — there is no network in the test environment).
func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range markdownFiles(t) {
		body := readFile(t, file)
		for _, m := range mdLink.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(repoRoot, filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}

// TestMetricsFieldsDocumented extracts every dynctrld_* metric name the
// server's /metricsz writer emits and requires docs/OPERATIONS.md to
// document each one.
func TestMetricsFieldsDocumented(t *testing.T) {
	src := readFile(t, filepath.Join("internal", "server", "server.go"))
	doc := readFile(t, filepath.Join("docs", "OPERATIONS.md"))

	names := regexp.MustCompile(`dynctrld_[a-z_]+`).FindAllString(src, -1)
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %s is emitted by internal/server but not documented in docs/OPERATIONS.md", name)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("extracted only %d metric names from internal/server/server.go — the extractor regex is likely stale", len(seen))
	}
}

// TestMetricsExposition renders a live /metricsz document from a
// durable two-tenant server — the configuration that emits every metric
// family — and fails if any rendered sample lacks a preceding # HELP or
// # TYPE declaration, if a family's samples are not contiguous, or if a
// rendered family is missing from docs/OPERATIONS.md. Unlike the
// source-regex check above, this catches exposition-format drift, not
// just missing names.
func TestMetricsExposition(t *testing.T) {
	doc := readFile(t, filepath.Join("docs", "OPERATIONS.md"))
	srv, err := server.New(server.Config{
		Addr: "127.0.0.1:0",
		Tenants: []server.TenantConfig{
			{Name: "default", Topology: workload.TopologySpec{Kind: "balanced", Nodes: 8}, Seed: 1, M: 100, W: 10},
			{Name: "blue", Topology: workload.TopologySpec{Kind: "star", Nodes: 4}, Seed: 2, M: 50, W: 5},
		},
		WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	var buf bytes.Buffer
	srv.WriteMetrics(&buf)

	helped := map[string]bool{}
	typed := map[string]bool{}
	seen := map[string]bool{}
	last := ""
	for ln, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.SplitN(rest, " ", 2)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.SplitN(rest, " ", 2)[0]] = true
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		// Summary families render base{quantile=...}, _sum and _count
		// samples under the base family's declarations.
		fam := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !helped[fam] {
			t.Errorf("exposition line %d: sample %q has no preceding # HELP", ln+1, name)
		}
		if !typed[fam] {
			t.Errorf("exposition line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if fam != last && seen[fam] {
			t.Errorf("exposition line %d: family %q samples are not contiguous", ln+1, fam)
		}
		seen[fam] = true
		last = fam
		if !strings.Contains(doc, "`"+fam+"`") {
			t.Errorf("family %q is rendered on /metricsz but not documented in docs/OPERATIONS.md", fam)
		}
	}
	if len(seen) < 30 {
		t.Fatalf("rendered only %d metric families — the durable two-tenant config should emit every family", len(seen))
	}
}

// TestCommandFlagsDocumented extracts every CLI flag declared by
// cmd/dynctrld and cmd/loadgen and requires docs/OPERATIONS.md to
// document each one as `-name`.
func TestCommandFlagsDocumented(t *testing.T) {
	doc := readFile(t, filepath.Join("docs", "OPERATIONS.md"))
	flagDecl := regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Float64|Duration)\("([a-z-]+)"`)
	flagVar := regexp.MustCompile(`flag\.Var\([^,]+, "([a-z-]+)"`)
	for _, cmd := range []string{"dynctrld", "loadgen"} {
		src := readFile(t, filepath.Join("cmd", cmd, "main.go"))
		names := flagDecl.FindAllStringSubmatch(src, -1)
		names = append(names, flagVar.FindAllStringSubmatch(src, -1)...)
		if len(names) < 10 {
			t.Fatalf("extracted only %d flags from cmd/%s/main.go — the extractor regex is likely stale", len(names), cmd)
		}
		for _, m := range names {
			if !strings.Contains(doc, "`-"+m[1]+"`") {
				t.Errorf("cmd/%s flag -%s is not documented in docs/OPERATIONS.md", cmd, m[1])
			}
		}
	}
}

// TestWireConstantsDocumented extracts every frame type and error code
// declared by internal/wire and requires docs/PROTOCOL.md to document
// the name and its numeric value.
func TestWireConstantsDocumented(t *testing.T) {
	src := readFile(t, filepath.Join("internal", "wire", "wire.go"))
	doc := readFile(t, filepath.Join("docs", "PROTOCOL.md"))

	frame := regexp.MustCompile(`(?m)^\tFrame([A-Za-z]+) FrameType = (\d+)`)
	frames := frame.FindAllStringSubmatch(src, -1)
	if len(frames) < 6 {
		t.Fatalf("extracted only %d frame types from internal/wire/wire.go — the extractor regex is likely stale", len(frames))
	}
	for _, m := range frames {
		name, value := m[1], m[2]
		if !strings.Contains(doc, name) {
			t.Errorf("frame type Frame%s is declared by internal/wire but not documented in docs/PROTOCOL.md", name)
		}
		// The frame tables lead each row with the numeric type.
		if !strings.Contains(doc, fmt.Sprintf("| %s ", value)) {
			t.Errorf("frame type Frame%s = %s: value %s does not appear as a table row in docs/PROTOCOL.md", name, value, value)
		}
	}

	code := regexp.MustCompile(`(?m)^\t(Code[A-Za-z]+) uint8 = (\d+)`)
	codes := code.FindAllStringSubmatch(src, -1)
	if len(codes) < 8 {
		t.Fatalf("extracted only %d error codes from internal/wire/wire.go — the extractor regex is likely stale", len(codes))
	}
	for _, m := range codes {
		name, value := m[1], m[2]
		if !strings.Contains(doc, name) {
			t.Errorf("error code %s is declared by internal/wire but not documented in docs/PROTOCOL.md", name)
		}
		if !strings.Contains(doc, fmt.Sprintf("| %s ", value)) {
			t.Errorf("error code %s = %s: value %s does not appear as a table row in docs/PROTOCOL.md", name, value, value)
		}
	}

	// The protocol version the document claims must match the code.
	version := regexp.MustCompile(`(?m)^const Version = (\d+)`).FindStringSubmatch(src)
	if version == nil {
		t.Fatal("could not extract wire.Version from internal/wire/wire.go")
	}
	if want := fmt.Sprintf("protocol version is **%s**", version[1]); !strings.Contains(doc, want) {
		t.Errorf("docs/PROTOCOL.md does not state %q (wire.Version = %s)", want, version[1])
	}
}
