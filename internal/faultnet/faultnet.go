// Package faultnet is a deterministic fault-injecting TCP proxy for the
// dynctrld wire protocol: it sits between internal/client and
// internal/server, parses the length-prefixed framing so faults land at
// frame granularity, and injects connection kills (pre-handshake,
// mid-frame, between frames), slow-loris byte-dribbling, write stalls,
// whole-frame duplication and bounded delay/reorder — in either direction.
//
// Fault decisions are a pure function of (fault schedule, connection
// ordinal, direction, frame index, seed): deterministic rules match an
// exact (connection, frame) coordinate, probabilistic rules draw from a
// per-(connection, direction) RNG derived from the proxy seed, and every
// fired fault is appended to a logical event log that excludes wall-clock
// time. Two runs in which each connection carries the same frame sequence
// therefore produce identical event logs — the reproducibility contract
// the hostile-network scenario suite pins.
//
// Faults are about bytes and timing only: the proxy never fabricates or
// rewrites protocol payloads, so every byte the server sees was sent by a
// real client (possibly truncated, delayed, repeated or reordered), which
// is exactly the adversary model of a hostile network.
package faultnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"dynctrl/internal/wire"
)

// Direction identifies which half of the proxied connection a rule or
// event applies to.
type Direction int

const (
	// ClientToServer is the request direction (Hello, Submit frames).
	ClientToServer Direction = iota
	// ServerToClient is the response direction (Welcome, Results frames).
	ServerToClient
)

func (d Direction) String() string {
	if d == ClientToServer {
		return "c2s"
	}
	return "s2c"
}

// Kind enumerates the injectable faults.
type Kind int

const (
	// KillPreHandshake closes the accepted connection before a single
	// byte is proxied (the upstream is never dialed). Dir and Frame are
	// ignored.
	KillPreHandshake Kind = iota
	// Kill closes both sides cleanly instead of forwarding the matched
	// frame: the peer sees an abrupt EOF between frames (kill mid-batch
	// when more Submit frames were coming).
	Kill
	// KillMidFrame forwards the frame header plus roughly half the
	// payload, then closes both sides: the peer sees a truncated frame.
	KillMidFrame
	// SlowLoris forwards the matched frame in Chunk-byte writes spaced
	// Delay apart — a byte-dribbling peer.
	SlowLoris
	// Stall pauses this direction for Delay before forwarding the matched
	// frame: nothing is read from the source meanwhile, so a large enough
	// Delay backs TCP flow control up into the sender (a write stall).
	Stall
	// Dup forwards the matched frame twice back to back (whole-frame
	// duplication/replay).
	Dup
	// Reorder holds the matched frame back and forwards it immediately
	// after its successor (bounded delay: at most one frame of
	// displacement). A held frame is flushed on stream end.
	Reorder
)

func (k Kind) String() string {
	switch k {
	case KillPreHandshake:
		return "kill-pre-handshake"
	case Kill:
		return "kill"
	case KillMidFrame:
		return "kill-mid-frame"
	case SlowLoris:
		return "slow-loris"
	case Stall:
		return "stall"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule is one entry of a fault schedule. The first rule that matches a
// frame fires (at most one fault per frame), so earlier rules shadow
// later ones on the same coordinate.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind
	// Dir is the direction the rule watches (ignored by KillPreHandshake).
	Dir Direction
	// Conn is the accepted-connection ordinal (0-based, in accept order)
	// the rule applies to; -1 applies to every connection.
	Conn int
	// Frame is the frame index (0-based, counted per connection per
	// direction) the rule fires at. Frame -1 makes the rule
	// probabilistic: it fires on any frame with probability Prob, drawn
	// from the seeded per-(connection, direction) RNG.
	Frame int
	// Prob is the per-frame firing probability when Frame == -1.
	Prob float64
	// Delay is the pacing for SlowLoris (pause between chunks, default
	// 1ms), Stall (pause length) and Reorder (ignored).
	Delay time.Duration
	// Chunk is the SlowLoris write size in bytes (default 1).
	Chunk int
}

// Event records one fired fault in logical coordinates (no wall-clock
// component, so logs compare bitwise across runs).
type Event struct {
	// Conn is the accepted-connection ordinal.
	Conn int
	// Dir is the direction the fault fired on.
	Dir Direction
	// Frame is the frame index the fault fired at (-1 pre-handshake).
	Frame int
	// Kind is the injected fault.
	Kind Kind
	// Rule is the index of the schedule rule that fired.
	Rule int
}

func (e Event) String() string {
	return fmt.Sprintf("conn=%d dir=%s frame=%d fault=%s rule=%d", e.Conn, e.Dir, e.Frame, e.Kind, e.Rule)
}

// FormatEvents renders an event log one event per line, in the canonical
// (Conn, Dir, Frame, Rule) order — the string two reproducible runs must
// agree on.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Config describes one proxy instance.
type Config struct {
	// Listen is the TCP listen address (default "127.0.0.1:0").
	Listen string
	// Upstream is the address faulted traffic is forwarded to (the real
	// server).
	Upstream string
	// Seed derives every probabilistic decision; same (Rules, Seed) and
	// same per-connection frame sequences mean the same Events.
	Seed int64
	// Rules is the fault schedule (empty proxies cleanly).
	Rules []Rule
	// Logf receives debug lines (default: discard).
	Logf func(format string, args ...any)
}

// Proxy is a running fault-injecting proxy.
type Proxy struct {
	cfg  Config
	ln   net.Listener
	stop chan struct{}

	mu     sync.Mutex
	events []Event
	nconn  int
	closed bool

	wg sync.WaitGroup
}

// Start listens and begins accepting. Close releases everything.
func Start(cfg Config) (*Proxy, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("faultnet: Config.Upstream is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns returns how many connections have been accepted so far.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nconn
}

// Events returns a snapshot of the fault event log in canonical (Conn,
// Dir, Frame, Rule) order.
func (p *Proxy) Events() []Event {
	p.mu.Lock()
	out := append([]Event(nil), p.events...)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.Frame != b.Frame {
			return a.Frame < b.Frame
		}
		return a.Rule < b.Rule
	})
	return out
}

// Close stops accepting, cuts every proxied connection and wakes any
// in-progress stall or slow-loris pacing.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) record(e Event) {
	p.mu.Lock()
	p.events = append(p.events, e)
	p.mu.Unlock()
	p.cfg.Logf("faultnet: %s", e)
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		ord := p.nconn
		p.nconn++
		closed := p.closed
		p.mu.Unlock()
		if closed {
			nc.Close()
			return
		}
		p.wg.Add(1)
		go p.handle(nc, ord)
	}
}

// handle proxies one accepted connection through the fault schedule.
func (p *Proxy) handle(cn net.Conn, ord int) {
	defer p.wg.Done()
	defer cn.Close()

	for i := range p.cfg.Rules {
		r := &p.cfg.Rules[i]
		if r.Kind == KillPreHandshake && (r.Conn < 0 || r.Conn == ord) {
			p.record(Event{Conn: ord, Dir: ClientToServer, Frame: -1, Kind: KillPreHandshake, Rule: i})
			return
		}
	}

	up, err := net.Dial("tcp", p.cfg.Upstream)
	if err != nil {
		p.cfg.Logf("faultnet: conn %d: dial upstream %s: %v", ord, p.cfg.Upstream, err)
		return
	}
	defer up.Close()

	// Ensure Close() cuts live pumps even while they sleep in kernel reads.
	done := make(chan struct{})
	defer close(done)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		select {
		case <-p.stop:
			cn.Close()
			up.Close()
		case <-done:
		}
	}()

	var wg sync.WaitGroup
	wg.Add(2)
	go p.pump(&wg, ord, ClientToServer, cn, up)
	go p.pump(&wg, ord, ServerToClient, up, cn)
	wg.Wait()
}

// dirSeed derives the per-(connection, direction) RNG seed (FNV-1a fold).
func dirSeed(seed int64, ord int, dir Direction) int64 {
	h := uint64(14695981039346656037)
	for _, v := range []uint64{uint64(seed), uint64(ord), uint64(dir)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return int64(h)
}

// pick returns the first schedule rule firing at (ord, dir, frame), or
// -1. Probabilistic draws happen in rule order, once per candidate rule
// per frame, from rng — deterministic within a pump.
func (p *Proxy) pick(rng *rand.Rand, ord int, dir Direction, frame int) (int, *Rule) {
	for i := range p.cfg.Rules {
		r := &p.cfg.Rules[i]
		if r.Kind == KillPreHandshake || r.Dir != dir {
			continue
		}
		if r.Conn >= 0 && r.Conn != ord {
			continue
		}
		if r.Frame >= 0 {
			if r.Frame != frame {
				continue
			}
		} else if rng.Float64() >= r.Prob {
			continue
		}
		return i, r
	}
	return -1, nil
}

// sleep pauses for d unless the proxy is closing.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.stop:
		return false
	}
}

// hardKill cuts both sides of the proxied connection.
func hardKill(a, b net.Conn) {
	a.Close()
	b.Close()
}

// halfClose propagates a clean EOF from src to dst without cutting the
// opposite direction.
func halfClose(dst net.Conn) {
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck
		return
	}
	dst.Close()
}

// pump forwards frames src -> dst, applying the fault schedule. src and
// dst are the two halves of one proxied connection; killing faults close
// both.
func (p *Proxy) pump(wg *sync.WaitGroup, ord int, dir Direction, src, dst net.Conn) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(dirSeed(p.cfg.Seed, ord, dir)))
	br := bufio.NewReaderSize(src, 64<<10)
	var frame, held []byte
	var hdr [4]byte
	frameIdx := 0

	flushHeld := func() bool {
		if held == nil {
			return true
		}
		_, err := dst.Write(held)
		held = nil
		return err == nil
	}

	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				flushHeld()
				halfClose(dst)
			} else {
				hardKill(src, dst)
			}
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n < 1 || n > wire.MaxFrame {
			// Not a protocol frame: the stream is already garbage, cut it.
			hardKill(src, dst)
			return
		}
		need := 4 + n
		if cap(frame) < need {
			frame = make([]byte, need)
		}
		frame = frame[:need]
		copy(frame, hdr[:])
		if _, err := io.ReadFull(br, frame[4:]); err != nil {
			hardKill(src, dst)
			return
		}

		ri, rule := p.pick(rng, ord, dir, frameIdx)
		if rule != nil {
			p.record(Event{Conn: ord, Dir: dir, Frame: frameIdx, Kind: rule.Kind, Rule: ri})
		}
		frameIdx++

		switch {
		case rule == nil:
			if _, err := dst.Write(frame); err != nil {
				hardKill(src, dst)
				return
			}
			if !flushHeld() {
				hardKill(src, dst)
				return
			}
		case rule.Kind == Kill:
			hardKill(src, dst)
			return
		case rule.Kind == KillMidFrame:
			cut := 4 + (n+1)/2
			if cut >= need {
				cut = need - 1
			}
			dst.Write(frame[:cut]) //nolint:errcheck // killing anyway
			hardKill(src, dst)
			return
		case rule.Kind == SlowLoris:
			chunk := rule.Chunk
			if chunk <= 0 {
				chunk = 1
			}
			delay := rule.Delay
			if delay <= 0 {
				delay = time.Millisecond
			}
			for off := 0; off < need; off += chunk {
				end := off + chunk
				if end > need {
					end = need
				}
				if _, err := dst.Write(frame[off:end]); err != nil {
					hardKill(src, dst)
					return
				}
				if end < need && !p.sleep(delay) {
					hardKill(src, dst)
					return
				}
			}
			if !flushHeld() {
				hardKill(src, dst)
				return
			}
		case rule.Kind == Stall:
			if !p.sleep(rule.Delay) {
				hardKill(src, dst)
				return
			}
			if _, err := dst.Write(frame); err != nil {
				hardKill(src, dst)
				return
			}
			if !flushHeld() {
				hardKill(src, dst)
				return
			}
		case rule.Kind == Dup:
			for i := 0; i < 2; i++ {
				if _, err := dst.Write(frame); err != nil {
					hardKill(src, dst)
					return
				}
			}
			if !flushHeld() {
				hardKill(src, dst)
				return
			}
		case rule.Kind == Reorder:
			if held != nil {
				// Only one frame may be in flight held; forward the older
				// one first to keep displacement bounded at one frame.
				if !flushHeld() {
					hardKill(src, dst)
					return
				}
			}
			held = append([]byte(nil), frame...)
		}
	}
}
