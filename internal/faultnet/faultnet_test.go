package faultnet_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dynctrl/internal/faultnet"
)

// mkFrame builds one wire-framing-compatible frame: 4-byte big-endian
// length (type byte + payload), the type byte, the payload.
func mkFrame(ft byte, payload []byte) []byte {
	buf := make([]byte, 4, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(1+len(payload)))
	buf = append(buf, ft)
	return append(buf, payload...)
}

// readFrame reads one frame (header included) from r.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	_, err := io.ReadFull(r, buf[4:])
	return buf, err
}

// echoUpstream accepts connections and echoes every received frame back,
// recording the frames each connection delivered.
type echoUpstream struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	frames [][]byte // every frame received, across conns, in receive order
	errs   []error  // terminal read error per conn
}

func newEchoUpstream(t *testing.T) *echoUpstream {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	u := &echoUpstream{ln: ln}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			u.wg.Add(1)
			go func(nc net.Conn) {
				defer u.wg.Done()
				defer nc.Close()
				for {
					f, err := readFrame(nc)
					if err != nil {
						u.mu.Lock()
						u.errs = append(u.errs, err)
						u.mu.Unlock()
						return
					}
					u.mu.Lock()
					u.frames = append(u.frames, f)
					u.mu.Unlock()
					if _, err := nc.Write(f); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	t.Cleanup(func() { ln.Close(); u.wg.Wait() })
	return u
}

func (u *echoUpstream) received() [][]byte {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([][]byte(nil), u.frames...)
}

func startProxy(t *testing.T, upstream string, seed int64, rules []faultnet.Rule) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.Start(faultnet.Config{Upstream: upstream, Seed: seed, Rules: rules})
	if err != nil {
		t.Fatalf("faultnet.Start: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *faultnet.Proxy) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	return nc
}

func TestCleanProxyPassesFramesThrough(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, nil)
	nc := dialProxy(t, p)

	for i := 0; i < 3; i++ {
		f := mkFrame(3, bytes.Repeat([]byte{byte(i)}, 10+i))
		if _, err := nc.Write(f); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
		got, err := readFrame(nc)
		if err != nil {
			t.Fatalf("read echo %d: %v", i, err)
		}
		if !bytes.Equal(got, f) {
			t.Fatalf("echo %d mismatch: % x vs % x", i, got, f)
		}
	}
	if ev := p.Events(); len(ev) != 0 {
		t.Fatalf("clean proxy recorded events: %v", ev)
	}
}

func TestKillPreHandshake(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, []faultnet.Rule{
		{Kind: faultnet.KillPreHandshake, Conn: 0},
	})
	nc := dialProxy(t, p)

	// The connection dies before any byte crosses; a read must fail fast.
	nc.Write(mkFrame(1, []byte("hello"))) //nolint:errcheck
	if _, err := readFrame(nc); err == nil {
		t.Fatal("read on a pre-handshake-killed connection succeeded")
	}
	want := "conn=0 dir=c2s frame=-1 fault=kill-pre-handshake rule=0\n"
	if got := faultnet.FormatEvents(p.Events()); got != want {
		t.Fatalf("events:\n%swant:\n%s", got, want)
	}
	if n := len(u.received()); n != 0 {
		t.Fatalf("upstream saw %d frames through a pre-handshake kill", n)
	}

	// The next connection (ordinal 1) is unaffected.
	nc2 := dialProxy(t, p)
	f := mkFrame(3, []byte("ok"))
	if _, err := nc2.Write(f); err != nil {
		t.Fatalf("write on conn 1: %v", err)
	}
	if _, err := readFrame(nc2); err != nil {
		t.Fatalf("conn 1 should be clean: %v", err)
	}
}

func TestKillBetweenFrames(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, []faultnet.Rule{
		{Kind: faultnet.Kill, Dir: faultnet.ClientToServer, Conn: -1, Frame: 2},
	})
	nc := dialProxy(t, p)

	for i := 0; i < 2; i++ {
		if _, err := nc.Write(mkFrame(3, []byte{byte(i)})); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := readFrame(nc); err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
	}
	// Frame 2 is swallowed and both sides die: upstream must never see it.
	nc.Write(mkFrame(3, []byte("doomed"))) //nolint:errcheck
	if _, err := readFrame(nc); err == nil {
		t.Fatal("read after kill frame succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(u.received()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := u.received(); len(got) != 2 {
		t.Fatalf("upstream saw %d frames, want exactly the 2 pre-kill ones", len(got))
	}
}

func TestKillMidFrameTruncates(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, []faultnet.Rule{
		{Kind: faultnet.KillMidFrame, Dir: faultnet.ClientToServer, Conn: 0, Frame: 1},
	})
	nc := dialProxy(t, p)

	if _, err := nc.Write(mkFrame(3, []byte("first"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readFrame(nc); err != nil {
		t.Fatalf("echo: %v", err)
	}
	nc.Write(mkFrame(3, bytes.Repeat([]byte{7}, 64))) //nolint:errcheck
	if _, err := readFrame(nc); err == nil {
		t.Fatal("read after mid-frame kill succeeded")
	}
	// The upstream's read of the truncated frame must fail mid-payload.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		u.mu.Lock()
		n := len(u.errs)
		u.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.errs) == 0 {
		t.Fatal("upstream never saw the truncated stream end")
	}
	if len(u.frames) != 1 {
		t.Fatalf("upstream decoded %d whole frames, want 1 (the truncated one must not parse)", len(u.frames))
	}
}

func TestDupDeliversFrameTwice(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, []faultnet.Rule{
		{Kind: faultnet.Dup, Dir: faultnet.ClientToServer, Conn: 0, Frame: 0},
	})
	nc := dialProxy(t, p)

	f := mkFrame(3, []byte("twice"))
	if _, err := nc.Write(f); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 2; i++ {
		got, err := readFrame(nc)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if !bytes.Equal(got, f) {
			t.Fatalf("echo %d mismatch", i)
		}
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, []faultnet.Rule{
		{Kind: faultnet.Reorder, Dir: faultnet.ClientToServer, Conn: 0, Frame: 1},
	})
	nc := dialProxy(t, p)

	a, b, c := mkFrame(3, []byte("A")), mkFrame(3, []byte("B")), mkFrame(3, []byte("C"))
	for _, f := range [][]byte{a, b, c} {
		if _, err := nc.Write(f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	// B is held and forwarded after C: upstream receives A, C, B.
	want := [][]byte{a, c, b}
	for i, w := range want {
		got, err := readFrame(nc)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("echo %d: got % x want % x", i, got, w)
		}
	}
}

func TestSlowLorisAndStallPaceDelivery(t *testing.T) {
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), 1, []faultnet.Rule{
		{Kind: faultnet.SlowLoris, Dir: faultnet.ClientToServer, Conn: 0, Frame: 0,
			Delay: 2 * time.Millisecond, Chunk: 1},
		{Kind: faultnet.Stall, Dir: faultnet.ClientToServer, Conn: 0, Frame: 1,
			Delay: 100 * time.Millisecond},
	})
	nc := dialProxy(t, p)

	// Frame 0 is 25 bytes dribbled one per 2ms: the echo cannot arrive in
	// under ~48ms. Frame 1 stalls 100ms before forwarding.
	start := time.Now()
	if _, err := nc.Write(mkFrame(3, bytes.Repeat([]byte{1}, 20))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readFrame(nc); err != nil {
		t.Fatalf("slow-loris echo: %v", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("slow-loris frame arrived in %v, want >=40ms of dribbling", el)
	}

	start = time.Now()
	if _, err := nc.Write(mkFrame(3, []byte("stalled"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readFrame(nc); err != nil {
		t.Fatalf("stalled echo: %v", err)
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("stalled frame arrived in %v, want >=80ms", el)
	}
	got := faultnet.FormatEvents(p.Events())
	want := "conn=0 dir=c2s frame=0 fault=slow-loris rule=0\n" +
		"conn=0 dir=c2s frame=1 fault=stall rule=1\n"
	if got != want {
		t.Fatalf("events:\n%swant:\n%s", got, want)
	}
}

// driveScript runs a fixed exchange through a fresh proxy: conns dialed
// sequentially (so ordinals are deterministic), each sending a fixed
// number of frames and reading echoes until the connection dies. It
// returns the canonical event log.
func driveScript(t *testing.T, seed int64, rules []faultnet.Rule) string {
	t.Helper()
	u := newEchoUpstream(t)
	p := startProxy(t, u.ln.Addr().String(), seed, rules)
	defer p.Close()

	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		nc, err := net.DialTimeout("tcp", p.Addr(), 5*time.Second)
		if err != nil {
			t.Fatalf("dial conn %d: %v", c, err)
		}
		nc.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		// Wait until the proxy has accepted it, so ordinals match dial order.
		for p.Conns() < c+1 {
			time.Sleep(time.Millisecond)
		}
		wg.Add(1)
		go func(c int, nc net.Conn) {
			defer wg.Done()
			defer nc.Close()
			// Pipelined: write everything, half-close, drain echoes until
			// the EOF ripples back (a strict request-reply loop would
			// deadlock against the Reorder fault, which holds an echo back
			// until its successor flows).
			for i := 0; i < 8; i++ {
				if _, err := nc.Write(mkFrame(3, []byte{byte(c), byte(i)})); err != nil {
					break
				}
			}
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.CloseWrite() //nolint:errcheck
			}
			for {
				if _, err := readFrame(nc); err != nil {
					return
				}
			}
		}(c, nc)
	}
	wg.Wait()
	// Kills race the last echo read: give in-flight pumps a beat to log.
	time.Sleep(50 * time.Millisecond)
	return faultnet.FormatEvents(p.Events())
}

func TestEventLogReproducible(t *testing.T) {
	rules := []faultnet.Rule{
		{Kind: faultnet.Dup, Dir: faultnet.ClientToServer, Conn: 1, Frame: 3},
		{Kind: faultnet.Reorder, Dir: faultnet.ServerToClient, Conn: 2, Frame: 2},
		// Probabilistic dribbling: must fire at identical coordinates for
		// identical seeds.
		{Kind: faultnet.SlowLoris, Dir: faultnet.ClientToServer, Conn: -1, Frame: -1,
			Prob: 0.3, Delay: time.Microsecond, Chunk: 16},
		{Kind: faultnet.Kill, Dir: faultnet.ClientToServer, Conn: 0, Frame: 6},
	}
	a := driveScript(t, 42, rules)
	b := driveScript(t, 42, rules)
	if a != b {
		t.Fatalf("same (schedule, seed) produced different event logs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a == "" {
		t.Fatal("schedule fired no events at all")
	}
	c := driveScript(t, 43, rules)
	if a == c {
		t.Log("note: different seed produced an identical log (possible but unlikely)")
	}
}
