// Package naming implements the name-assignment protocol of Section 5.2:
// every node of the dynamic tree holds a short unique identity — an integer
// in [1, 4n] where n is the current number of nodes — at all times.
//
// The protocol runs in iterations. At the start of iteration i (with N_i
// current nodes) two DFS traversals relabel the tree: the first assigns the
// temporary identity 3N_i + DFS(v), the second assigns DFS(v). Identities
// therefore stay unique during the relabeling. A terminating
// (N_i/2, N_i/4)-Controller with explicit permit serials in
// [N_i+1, 3N_i/2] then admits the iteration's changes: a node added during
// the iteration takes its permit's serial as its identity.
package naming

import (
	"errors"
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Naming maintains short unique node identities under controlled
// topological changes.
type Naming struct {
	tr       *tree.Tree
	rt       sim.Runtime
	counters *stats.Counters

	term      *dist.Terminating
	ni        int64
	iteration int
	ids       map[tree.NodeID]int64
}

// New builds the name-assignment protocol over tr. Initial identities are
// assigned by a DFS traversal (the paper assumes initial identities in
// [1, n₀]; the traversal realizes that).
func New(tr *tree.Tree, rt sim.Runtime, counters *stats.Counters) *Naming {
	if counters == nil {
		counters = stats.NewCounters()
	}
	nm := &Naming{tr: tr, rt: rt, counters: counters, ids: make(map[tree.NodeID]int64)}
	for id, num := range tr.DFSNumbers() {
		nm.ids[id] = int64(num)
	}
	nm.startIteration()
	return nm
}

func (nm *Naming) startIteration() {
	nm.iteration++
	nm.counters.Inc(stats.CounterIterations)
	nm.ni = int64(nm.tr.Size())

	// Two DFS relabeling traversals (2·2(n−1) messages) plus the
	// broadcast/upcast that counts N_i.
	if n := nm.ni; n > 1 {
		nm.counters.Add(dist.CounterControl, 6*(n-1))
	}
	if nm.iteration > 1 {
		// First traversal: id(v) = 3N_i + DFS(v); second: id(v) = DFS(v).
		// Identities remain unique throughout because old identities lie
		// in [1, 3N_i] (proved by induction in Section 5.2); the final
		// state is all that is observable between requests.
		for id, num := range nm.tr.DFSNumbers() {
			nm.ids[id] = int64(num)
		}
	}

	m := nm.ni / 2
	if m < 1 {
		m = 1
	}
	w := nm.ni / 4
	serialLo := nm.ni + 1
	serials := pkgstore.Interval{Lo: serialLo, Hi: serialLo + m - 1}
	nm.term = dist.NewTerminating(nm.tr, nm.rt, 2*nm.ni+4, m, w, nm.counters,
		dist.WithSerials(serials))
}

// Iteration returns the 1-based iteration number.
func (nm *Naming) Iteration() int { return nm.iteration }

// Tree returns the tree the protocol maintains names for.
func (nm *Naming) Tree() *tree.Tree { return nm.tr }

// Counters returns the shared counters.
func (nm *Naming) Counters() *stats.Counters { return nm.counters }

// ID returns the current identity of a node.
func (nm *Naming) ID(v tree.NodeID) (int64, error) {
	id, ok := nm.ids[v]
	if !ok {
		return 0, fmt.Errorf("naming: no identity for %d: %w", v, tree.ErrNoSuchNode)
	}
	return id, nil
}

// RequestChange submits a topological change; added nodes receive their
// permit serial as identity.
func (nm *Naming) RequestChange(req controller.Request) (controller.Grant, error) {
	for attempt := 0; attempt < 64; attempt++ {
		g, err := nm.term.Submit(req)
		if errors.Is(err, controller.ErrTerminated) {
			nm.startIteration()
			continue
		}
		if err != nil {
			return controller.Grant{}, err
		}
		if g.Outcome == controller.Granted {
			switch req.Kind {
			case tree.AddLeaf, tree.AddInternal:
				nm.ids[g.NewNode] = g.Serial
			case tree.RemoveLeaf, tree.RemoveInternal:
				delete(nm.ids, req.Node)
			}
		}
		return g, nil
	}
	return controller.Grant{}, errors.New("naming: iteration churn without progress")
}

// Submit implements workload.Submitter.
func (nm *Naming) Submit(req controller.Request) (controller.Grant, error) {
	return nm.RequestChange(req)
}

// CheckInvariants verifies that every live node has an identity, the
// identities are unique, and each lies in [1, 4n] (Section 5.2's guarantee;
// a small additive slack covers trees below 4 nodes, where integrality of
// N_i/2 makes the constant coarse).
func (nm *Naming) CheckInvariants() error {
	n := int64(nm.tr.Size())
	seen := make(map[int64]tree.NodeID, n)
	for _, v := range nm.tr.Nodes() {
		id, ok := nm.ids[v]
		if !ok {
			return fmt.Errorf("naming: node %d has no identity", v)
		}
		if id < 1 {
			return fmt.Errorf("naming: node %d has non-positive identity %d", v, id)
		}
		if other, dup := seen[id]; dup {
			return fmt.Errorf("naming: identity %d shared by %d and %d", id, v, other)
		}
		seen[id] = v
		if id > 4*n+4 {
			return fmt.Errorf("naming: identity %d exceeds 4n+4 = %d (n=%d)", id, 4*n+4, n)
		}
	}
	if int64(len(seen)) != n {
		return fmt.Errorf("naming: %d identities for %d nodes", len(seen), n)
	}
	return nil
}
