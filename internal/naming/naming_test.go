package naming_test

import (
	"testing"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/naming"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func TestNamingInitialIdentities(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 20, 1); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(1)
	nm := naming.New(tr, rt, nil)
	if err := nm.CheckInvariants(); err != nil {
		t.Fatalf("fresh naming: %v", err)
	}
	// Initial ids are exactly [1, n].
	seen := make(map[int64]bool)
	for _, v := range tr.Nodes() {
		id, err := nm.ID(v)
		if err != nil {
			t.Fatal(err)
		}
		if id < 1 || id > 20 {
			t.Fatalf("initial id %d outside [1, 20]", id)
		}
		if seen[id] {
			t.Fatalf("duplicate initial id %d", id)
		}
		seen[id] = true
	}
}

func TestNamingUnderChurn(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 32, 2); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(2)
	nm := naming.New(tr, rt, nil)
	gen := workload.NewChurn(tr, workload.DefaultMix(), 29)
	gen.SetMinSize(6)
	for i := 0; i < 1500; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := nm.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := nm.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%v at %d): %v", i, req.Kind, req.Node, err)
		}
	}
	if nm.Iteration() < 3 {
		t.Fatalf("iterations = %d; churn should roll the protocol over", nm.Iteration())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestNamingGrowthKeepsIDsShort(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 8, 3); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(3)
	nm := naming.New(tr, rt, nil)
	gen := workload.NewChurn(tr, workload.GrowOnlyMix(), 5)
	for i := 0; i < 500; i++ {
		req, _ := gen.Next()
		g, err := nm.RequestChange(req)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if g.Outcome != ctl.Granted {
			t.Fatalf("grow-only request not granted at step %d", i)
		}
		if err := nm.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if tr.Size() != 8+500 {
		t.Fatalf("size = %d, want 508", tr.Size())
	}
}

func TestNamingShrinkKeepsIDsShort(t *testing.T) {
	// The motivation of Section 5.4: after heavy deletions the ids must
	// track the *current* n, not the historical maximum.
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 256, 4); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(4)
	nm := naming.New(tr, rt, nil)
	gen := workload.NewChurn(tr, workload.ShrinkHeavyMix(), 7)
	gen.SetMinSize(10)
	for i := 0; i < 2000 && tr.Size() > 16; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := nm.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := nm.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if tr.Size() > 128 {
		t.Fatalf("tree did not shrink (size %d)", tr.Size())
	}
}

func TestNamingIDMissingNode(t *testing.T) {
	tr, _ := tree.New()
	rt := sim.NewDeterministic(5)
	nm := naming.New(tr, rt, nil)
	if _, err := nm.ID(424242); err == nil {
		t.Fatal("ID of missing node should fail")
	}
}
