package server_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/persist"
	"dynctrl/internal/server"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

func walConfig(t *testing.T, dir string) server.Config {
	t.Helper()
	return server.Config{
		Addr:          "127.0.0.1:0",
		Topology:      workload.TopologySpec{Kind: "balanced", Nodes: 64},
		Seed:          1,
		M:             50_000,
		W:             25_000,
		Paranoid:      true,
		WALDir:        dir,
		SnapshotEvery: 500,
		Logf:          t.Logf,
	}
}

// driveTraffic replays n requests of the pinned concurrent trace through a
// pooled client and returns the confirmed grant count.
func driveTraffic(t *testing.T, addr string, conns, perClient int) int64 {
	t.Helper()
	_, ct, err := workload.WireTrace(workload.Scenario{
		Name:     "recovery-test",
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 64},
		Workload: workload.WorkloadSpec{Kind: "churn", Mix: "default"},
		Requests: conns * perClient,
	}, conns, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(addr, client.Options{Conns: conns})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res := workload.RunConcurrentChunked(cl, ct, 64)
	if res.Errors > 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	return res.Granted
}

// TestServerCrashRecovery: hard-kill a WAL-enabled daemon under confirmed
// traffic, restart it over the same directory, and require: the
// incarnation bumps, every confirmed grant survived, the recovered daemon
// serves new traffic, granted never exceeds M across incarnations, and
// the cross-incarnation oracle is clean.
func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	s1, err := server.New(walConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s1.Incarnation(); got != 1 {
		t.Fatalf("first boot incarnation %d, want 1", got)
	}
	confirmed := driveTraffic(t, s1.Addr(), 4, 400)
	if confirmed == 0 {
		t.Fatal("no grants confirmed before the crash")
	}
	s1.CrashForTests()

	s2, err := server.New(walConfig(t, dir))
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Incarnation(); got != 2 {
		t.Fatalf("second boot incarnation %d, want 2", got)
	}
	recovered := s2.ControllerGranted()
	if recovered < confirmed {
		t.Fatalf("recovered %d grants, but %d were confirmed to clients before the crash",
			recovered, confirmed)
	}

	// The restarted daemon answers the handshake with its incarnation and
	// keeps serving.
	cl, err := client.Dial(s2.Addr(), client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Incarnation(); got != 2 {
		t.Fatalf("welcome incarnation %d, want 2", got)
	}
	cl.Close()
	confirmed2 := driveTraffic(t, s2.Addr(), 4, 200)
	if confirmed2 == 0 {
		t.Fatal("no grants after recovery")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.ShutdownGraceful(ctx); err != nil {
		t.Fatal(err)
	}
	if v := s2.Violations(); len(v) != 0 {
		t.Fatalf("oracle violations across the restart: %v", v)
	}

	// Each tenant logs under its own subdirectory of the WAL root; a
	// single-tenant daemon uses the default namespace.
	sums, violations, err := persist.VerifyDir(filepath.Join(dir, wire.DefaultTenant), walConfig(t, dir).M)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("cross-incarnation violations: %v", violations)
	}
	if len(sums) != 2 {
		t.Fatalf("%d incarnations in history, want 2", len(sums))
	}

	// A third boot after the graceful shutdown replays nothing: the final
	// checkpoint covers the whole log.
	s3, err := server.New(walConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Incarnation(); got != 3 {
		t.Fatalf("third boot incarnation %d, want 3", got)
	}
	if got := s3.ControllerGranted(); got < recovered+confirmed2 {
		t.Fatalf("graceful restart lost grants: %d < %d", got, recovered+confirmed2)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s3.ShutdownGraceful(ctx2); err != nil {
		t.Fatal(err)
	}
}
