package server

import (
	"context"

	"dynctrl/internal/persist"
	"dynctrl/internal/pipeline"
)

// CrashForTests simulates a kill -9 for the recovery tests: listeners and
// connections are cut, in-flight batches are drained out of the pipelines
// (their clients may or may not have seen the replies — exactly the crash
// ambiguity), and every tenant's WAL engine is abandoned without a final
// checkpoint, dropping anything not yet fsynced.
func (s *Server) CrashForTests() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.nc.Close()
	}
	s.wg.Wait()
	for _, name := range s.order {
		tn := s.tenants[name]
		tn.pl.Close()
		if tn.eng != nil {
			tn.eng.Abandon()
		}
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
}

// ControllerGranted exposes the first tenant's controller grant total.
func (s *Server) ControllerGranted() int64 {
	return s.TenantControllerGranted(s.order[0])
}

// TenantControllerGranted exposes the named tenant's controller grant
// total for tests.
func (s *Server) TenantControllerGranted(name string) int64 {
	tn := s.tenants[name]
	tn.guard.mu.Lock()
	defer tn.guard.mu.Unlock()
	return tn.ctl.Granted()
}

// ShutdownGraceful is a test convenience wrapper.
func (s *Server) ShutdownGraceful(ctx context.Context) error { return s.Shutdown(ctx) }

// EngineStatsForTests samples the first tenant's WAL engine counters
// (zero without WAL).
func (s *Server) EngineStatsForTests() (st persist.Stats) {
	if tn := s.defaultTenant(); tn.eng != nil {
		st = tn.eng.StatsSnapshot()
	}
	return st
}

// PipelineStatsForTests samples the first tenant's pipeline counters.
func (s *Server) PipelineStatsForTests() pipeline.Stats { return s.defaultTenant().pl.Stats() }

// ReadBatchStatsForTests returns the first tenant's (readBatches,
// readReqs, maxRead).
func (s *Server) ReadBatchStatsForTests() (int64, int64, int64) {
	tn := s.defaultTenant()
	return tn.readBatches.Load(), tn.readReqs.Load(), tn.maxRead.Load()
}

// ConnLifecycleForTests samples the first tenant's (connsOpen,
// connsTotal, idleTimeouts) for the lifecycle tests.
func (s *Server) ConnLifecycleForTests() (open, total, idle int64) {
	tn := s.defaultTenant()
	return tn.connsOpen.Load(), tn.connsTotal.Load(), tn.idleTimeouts.Load()
}
