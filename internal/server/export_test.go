package server

import (
	"context"

	"dynctrl/internal/persist"
	"dynctrl/internal/pipeline"
)

// CrashForTests simulates a kill -9 for the recovery tests: listeners and
// connections are cut, in-flight batches are drained out of the pipeline
// (their clients may or may not have seen the replies — exactly the crash
// ambiguity), and the WAL engine is abandoned without a final checkpoint,
// dropping anything not yet fsynced.
func (s *Server) CrashForTests() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.nc.Close()
	}
	s.wg.Wait()
	s.pl.Close()
	if s.eng != nil {
		s.eng.Abandon()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
}

// ControllerGranted exposes the controller's grant total for tests.
func (s *Server) ControllerGranted() int64 {
	s.guard.mu.Lock()
	defer s.guard.mu.Unlock()
	return s.ctl.Granted()
}

// ShutdownGraceful is a test convenience wrapper.
func (s *Server) ShutdownGraceful(ctx context.Context) error { return s.Shutdown(ctx) }

// EngineStatsForTests samples the WAL engine counters (zero without WAL).
func (s *Server) EngineStatsForTests() (st persist.Stats) {
	if s.eng != nil {
		st = s.eng.StatsSnapshot()
	}
	return st
}

// PipelineStatsForTests samples the pipeline counters.
func (s *Server) PipelineStatsForTests() pipeline.Stats { return s.pl.Stats() }

// ReadBatchStatsForTests returns (readBatches, readReqs, maxRead).
func (s *Server) ReadBatchStatsForTests() (int64, int64, int64) {
	return s.readBatches.Load(), s.readReqs.Load(), s.maxRead.Load()
}
