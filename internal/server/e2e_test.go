package server

import (
	"context"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/workload"
)

// TestEndToEndScenariosOverLoopback is the network-boundary counterpart of
// the in-process scenario engine: it starts the daemon on a loopback
// listener in paranoid mode (every served request re-checked by the
// oracle), replays the wire projection of two catalog scenarios through the
// pooled client with 8 concurrent connections, and requires an oracle-clean
// trace, total granted within the contract's M, and exact agreement between
// the client-observed and server-accounted outcome totals. Run with -race
// in CI, this is the test that exercises reader goroutines, pipelined
// correlation, read-batching, the combining pipeline and the controller
// under real concurrency at once.
func TestEndToEndScenariosOverLoopback(t *testing.T) {
	const conns = 8
	const seed = 1

	for _, name := range []string{"churn-storm", "exhaustion-reject-wave"} {
		t.Run(name, func(t *testing.T) {
			sc, err := workload.ScenarioByName(name)
			if err != nil {
				t.Fatalf("scenario: %v", err)
			}
			total := sc.Requests
			if !testing.Short() {
				total *= 2 // push past the pinned count so exhaustion scenarios reject
			}

			s := startServer(t, Config{
				Topology: sc.Topology,
				Seed:     seed,
				M:        sc.M, W: sc.W,
				Paranoid: true,
			})

			// The client half: reconstruct the topology and pre-generate the
			// interleaving-safe trace, then verify both sides built the same
			// tree before replaying a single request.
			tr, ct, err := workload.WireTrace(sc, conns, total, seed)
			if err != nil {
				t.Fatalf("WireTrace: %v", err)
			}
			cl, err := client.Dial(s.Addr(), client.Options{Conns: conns})
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer cl.Close()
			if got, want := cl.TopologySignature(), workload.TopologySignature(tr); got != want {
				t.Fatalf("topology signature mismatch: server %d, local %d", got, want)
			}
			if cl.M() != sc.M || cl.W() != sc.W {
				t.Fatalf("handshake contract (%d, %d), want (%d, %d)", cl.M(), cl.W(), sc.M, sc.W)
			}

			res := workload.RunConcurrentChunked(cl, ct, 64)

			if res.Errors > 0 {
				t.Errorf("%d request errors over the wire", res.Errors)
			}
			if res.Granted > sc.M {
				t.Errorf("granted %d permits over the wire, contract allows M=%d", res.Granted, sc.M)
			}
			if res.Submitted != int64(ct.Len()) {
				t.Errorf("submitted %d of %d trace requests", res.Submitted, ct.Len())
			}

			// Client-observed outcomes must agree exactly with the server's
			// wire-level accounting (this client is the sole traffic source).
			ops, grants, rejects, errs := s.Accounting()
			if ops != res.Submitted || grants != res.Granted || rejects != res.Rejected || errs != res.Errors {
				t.Errorf("server accounted ops=%d grants=%d rejects=%d errs=%d; client saw %d/%d/%d/%d",
					ops, grants, rejects, errs, res.Submitted, res.Granted, res.Rejected, res.Errors)
			}

			if name == "exhaustion-reject-wave" {
				if res.Rejected == 0 {
					t.Error("exhaustion scenario produced no rejects")
				}
				// The server pushes the wave notification; with rejects
				// observed, every pooled connection should have been told.
				if !cl.RejectWaveSeen() {
					t.Error("reject wave ran but the client never saw the notification")
				}
				if g := cl.RejectWaveGranted(); g < sc.M-sc.W || g > sc.M {
					t.Errorf("wave announced %d grants, want within [M-W=%d, M=%d]", g, sc.M-sc.W, sc.M)
				}
			}

			// Drain the server and run the oracle's end-of-run checks: the
			// trace must be invariant-clean.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			if v := s.Violations(); len(v) != 0 {
				t.Errorf("oracle violations: %v", v)
			}
		})
	}
}
