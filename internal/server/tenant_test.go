package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/server"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// twoTenantConfig serves a big "team-a" namespace and a small "team-b"
// one with visibly different contracts and topologies.
func twoTenantConfig() server.Config {
	return server.Config{
		Addr: "127.0.0.1:0",
		Tenants: []server.TenantConfig{
			{Name: "team-a", Topology: workload.TopologySpec{Kind: "balanced", Nodes: 64}, Seed: 11, M: 50_000, W: 25_000},
			{Name: "team-b", Topology: workload.TopologySpec{Kind: "star", Nodes: 4}, Seed: 22, M: 100, W: 10},
		},
	}
}

func startTenantServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s
}

func TestMultiTenantHandshake(t *testing.T) {
	s := startTenantServer(t, twoTenantConfig())

	ca, err := client.Dial(s.Addr(), client.Options{Tenant: "team-a"})
	if err != nil {
		t.Fatalf("dial team-a: %v", err)
	}
	defer ca.Close()
	cb, err := client.Dial(s.Addr(), client.Options{Tenant: "team-b"})
	if err != nil {
		t.Fatalf("dial team-b: %v", err)
	}
	defer cb.Close()

	if ca.Tenant() != "team-a" || ca.M() != 50_000 || ca.W() != 25_000 {
		t.Fatalf("team-a handshake: tenant %q M=%d W=%d", ca.Tenant(), ca.M(), ca.W())
	}
	if cb.Tenant() != "team-b" || cb.M() != 100 || cb.W() != 10 {
		t.Fatalf("team-b handshake: tenant %q M=%d W=%d", cb.Tenant(), cb.M(), cb.W())
	}
	// The Welcome carries the tenant's own topology signature, not some
	// global one.
	if ca.TopologySignature() != s.TenantTopologySignature("team-a") ||
		cb.TopologySignature() != s.TenantTopologySignature("team-b") ||
		ca.TopologySignature() == cb.TopologySignature() {
		t.Fatalf("topology signatures: a=%d b=%d (server: a=%d b=%d)",
			ca.TopologySignature(), cb.TopologySignature(),
			s.TenantTopologySignature("team-a"), s.TenantTopologySignature("team-b"))
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	s := startTenantServer(t, twoTenantConfig())
	_, err := client.Dial(s.Addr(), client.Options{Tenant: "nobody"})
	var he *client.HandshakeError
	if !errors.As(err, &he) || he.Code != wire.CodeTenant {
		t.Fatalf("dialing unknown tenant: err %v, want HandshakeError(CodeTenant)", err)
	}
}

func TestMalformedTenantNameRejected(t *testing.T) {
	s := startTenantServer(t, twoTenantConfig())
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Hand-build a v3 Hello whose tenant name fails wire.ValidTenant.
	bad := "Not-Valid!"
	var enc []byte
	enc = append(enc, 0, 0, 0, byte(1+2+2+len(bad)), byte(wire.FrameHello))
	enc = append(enc, byte(wire.Version), byte(wire.Version>>8))
	enc = append(enc, byte(len(bad)), byte(len(bad)>>8))
	enc = append(enc, bad...)
	if _, err := nc.Write(enc); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	var rbuf []byte
	ft, p, err := wire.ReadFrame(bufio.NewReader(nc), &rbuf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if ft != wire.FrameError {
		t.Fatalf("frame %v, want error", ft)
	}
	if e, _ := wire.DecodeError(p); e.Code != wire.CodeTenant {
		t.Fatalf("error code %d, want CodeTenant", e.Code)
	}
}

// TestTenantScopeEnforcedBothDirections checks namespace enforcement in
// both directions: traffic on either tenant's connection lands only in
// that tenant's namespace — the other tenant's tree is unreachable and
// its accounting unmoved.
func TestTenantScopeEnforcedBothDirections(t *testing.T) {
	s := startTenantServer(t, twoTenantConfig())

	ca, err := client.Dial(s.Addr(), client.Options{Tenant: "team-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := client.Dial(s.Addr(), client.Options{Tenant: "team-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	// Rebuild each tenant's tree locally to learn its node ids.
	ta, _ := tree.New()
	if err := workload.BuildTopology(ta, workload.TopologySpec{Kind: "balanced", Nodes: 64}, 11); err != nil {
		t.Fatal(err)
	}
	tb, _ := tree.New()
	if err := workload.BuildTopology(tb, workload.TopologySpec{Kind: "star", Nodes: 4}, 22); err != nil {
		t.Fatal(err)
	}
	// A node id that exists in team-a's 64-node tree but not in team-b's
	// 4-node tree.
	var aOnly tree.NodeID
	for _, id := range ta.Nodes() {
		if id > 4 {
			aOnly = id
			break
		}
	}
	if aOnly == tree.InvalidNode {
		t.Fatal("no a-only node id found")
	}

	// Direction 1: team-b's connection cannot touch team-a's node — the
	// request is answered inside team-b's namespace (where the id is
	// unknown) with a typed per-request error, and team-a's controller
	// never sees it.
	grantedABefore := s.TenantControllerGranted("team-a")
	_, err = cb.Submit(controller.Request{Node: aOnly, Kind: tree.None})
	var re *client.ResultError
	if !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("team-b touching team-a's node: err %v, want ResultError(CodeBadRequest)", err)
	}
	if got := s.TenantControllerGranted("team-a"); got != grantedABefore {
		t.Fatalf("team-b's request moved team-a's controller: %d -> %d", grantedABefore, got)
	}

	// Direction 2: team-a's traffic lands only in team-a's accounting;
	// team-b's stays untouched (and vice versa for the error above).
	for i := 0; i < 5; i++ {
		if _, err := ca.Submit(controller.Request{Node: ta.Root(), Kind: tree.None}); err != nil {
			t.Fatalf("team-a submit %d: %v", i, err)
		}
	}
	if _, err := cb.Submit(controller.Request{Node: tb.Root(), Kind: tree.None}); err != nil {
		t.Fatalf("team-b submit: %v", err)
	}
	opsA, grantsA, _, errsA := s.TenantAccounting("team-a")
	opsB, grantsB, _, errsB := s.TenantAccounting("team-b")
	if opsA != 5 || grantsA != 5 || errsA != 0 {
		t.Fatalf("team-a accounting ops=%d grants=%d errs=%d, want 5/5/0", opsA, grantsA, errsA)
	}
	if opsB != 2 || grantsB != 1 || errsB != 1 {
		t.Fatalf("team-b accounting ops=%d grants=%d errs=%d, want 2/1/1", opsB, grantsB, errsB)
	}
}

// TestLegacyVersionHandshakeTypedError pins the v2→v3 compatibility
// contract: an old-version client's tenant-less Hello gets a clean typed
// CodeVersion error — never a hang, a framing error, or a panic.
func TestLegacyVersionHandshakeTypedError(t *testing.T) {
	s := startTenantServer(t, twoTenantConfig())
	for _, version := range []uint16{1, 2} {
		nc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		// AppendHello emits the legacy 2-byte tenant-less payload for
		// pre-v3 versions — exactly the bytes an old client sends.
		if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Version: version})); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		br := bufio.NewReader(nc)
		var rbuf []byte
		ft, p, err := wire.ReadFrame(br, &rbuf)
		if err != nil {
			t.Fatalf("v%d: read: %v", version, err)
		}
		if ft != wire.FrameError {
			t.Fatalf("v%d: frame %v, want error", version, ft)
		}
		e, err := wire.DecodeError(p)
		if err != nil {
			t.Fatalf("v%d: decode: %v", version, err)
		}
		if e.Code != wire.CodeVersion {
			t.Fatalf("v%d: error code %d, want CodeVersion", version, e.Code)
		}
		// The server hangs up after the typed refusal.
		if _, _, err := wire.ReadFrame(br, &rbuf); !errors.Is(err, io.EOF) {
			t.Fatalf("v%d: after refusal: err %v, want EOF", version, err)
		}
		nc.Close()
	}
}

// TestNoisyNeighborOverLoopback is the end-to-end noisy-neighbor
// scenario over real sockets: tenant team-a floods grow-only traffic
// through a pooled client while tenant team-b replays a pinned probe on
// its own connection. team-b's verdict trace must be bitwise identical
// to a baseline run with no neighbor at all, and both tenants' labeled
// /metricsz sections must reconcile exactly against the client tallies.
func TestNoisyNeighborOverLoopback(t *testing.T) {
	cfg := twoTenantConfig()
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.Paranoid = true
	cfg.Tenants[1].M, cfg.Tenants[1].W = 100_000, 50_000 // roomy victim contract

	// The victim's pinned probe over team-b's (reconstructible) tree.
	tb, _ := tree.New()
	if err := workload.BuildTopology(tb, cfg.Tenants[1].Topology, cfg.Tenants[1].Seed); err != nil {
		t.Fatal(err)
	}
	probe, err := workload.VictimProbe(tb, 400, 5)
	if err != nil {
		t.Fatal(err)
	}

	// The flooder's grow-only trace over team-a's tree.
	ta, _ := tree.New()
	if err := workload.BuildTopology(ta, cfg.Tenants[0].Topology, cfg.Tenants[0].Seed); err != nil {
		t.Fatal(err)
	}
	floodTrace, err := workload.NewConcurrentTrace(ta, 4, 800, workload.GrowOnlyConcurrentMix(), 6)
	if err != nil {
		t.Fatal(err)
	}

	var disturbedSrv *server.Server
	res, err := workload.RunNoisyNeighbor("team-b", cfg.Tenants[1].M, probe,
		func(disturbed bool) (workload.Submitter, func() workload.ConcurrentResult, error) {
			s := startTenantServer(t, cfg)
			victim, err := client.Dial(s.Addr(), client.Options{Tenant: "team-b"})
			if err != nil {
				return nil, nil, err
			}
			t.Cleanup(func() { victim.Close() })
			if !disturbed {
				return victim, nil, nil
			}
			disturbedSrv = s
			flooder, err := client.Dial(s.Addr(), client.Options{Tenant: "team-a", Conns: 4})
			if err != nil {
				return nil, nil, err
			}
			t.Cleanup(func() { flooder.Close() })
			return victim, func() workload.ConcurrentResult {
				return workload.RunConcurrentChunked(flooder, floodTrace, 64)
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("cross-tenant isolation violated: %v", res.Violations)
	}
	if res.Flood.Submitted != int64(floodTrace.Len()) || res.Flood.Errors != 0 {
		t.Fatalf("flood did not run cleanly: %+v", res.Flood)
	}
	if res.Baseline.Granted == 0 {
		t.Fatal("victim probe granted nothing — the check is vacuous")
	}
	if v := disturbedSrv.Violations(); len(v) != 0 {
		t.Fatalf("paranoid oracles flagged the disturbed run: %v", v)
	}

	// Per-tenant /metricsz reconciles exactly against the client tallies
	// for both tenants.
	fields := fetchMetrics(t, disturbedSrv.MetricsAddr())
	for _, check := range []struct {
		name string
		want int64
	}{
		{`dynctrld_tenant_ops_total{tenant="team-b"}`, res.Disturbed.Submitted},
		{`dynctrld_tenant_grants_total{tenant="team-b"}`, res.Disturbed.Granted},
		{`dynctrld_tenant_rejects_total{tenant="team-b"}`, res.Disturbed.Rejected},
		{`dynctrld_tenant_errors_total{tenant="team-b"}`, 0},
		{`dynctrld_tenant_oracle_violations{tenant="team-b"}`, 0},
		{`dynctrld_tenant_ops_total{tenant="team-a"}`, res.Flood.Submitted},
		{`dynctrld_tenant_grants_total{tenant="team-a"}`, res.Flood.Granted},
		{`dynctrld_tenant_rejects_total{tenant="team-a"}`, res.Flood.Rejected},
		{`dynctrld_tenant_errors_total{tenant="team-a"}`, 0},
		{`dynctrld_tenant_oracle_violations{tenant="team-a"}`, 0},
	} {
		got, ok := fields[check.name]
		if !ok {
			t.Errorf("metricsz lacks %s", check.name)
			continue
		}
		if got != check.want {
			t.Errorf("%s = %d, client tally %d", check.name, got, check.want)
		}
	}
}

// fetchMetrics pulls /metricsz and parses the integer-valued fields.
func fetchMetrics(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]int64{}
	for _, line := range strings.Split(string(body), "\n") {
		name, value, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(value, 10, 64); err == nil {
			fields[name] = v
		}
	}
	return fields
}
