package server

// Connection-lifecycle regression tests, driven through the
// internal/faultnet proxy: slow-loris peers must be reaped by the
// handshake and idle deadlines instead of parking a goroutine forever,
// and a connection that dies mid-frame must release its tenant binding
// without accounting the partial batch.

import (
	"errors"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/faultnet"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

// startProxy fronts the server with a faultnet proxy for one test.
func startProxy(t *testing.T, upstream string, rules []faultnet.Rule) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.Start(faultnet.Config{Upstream: upstream, Seed: 1, Rules: rules, Logf: t.Logf})
	if err != nil {
		t.Fatalf("faultnet.Start: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// waitLifecycle polls the first tenant's connection counters until cond
// holds or the deadline passes.
func waitLifecycle(t *testing.T, s *Server, what string, cond func(open, total, idle int64) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		open, total, idle := s.ConnLifecycleForTests()
		if cond(open, total, idle) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still open=%d total=%d idleTimeouts=%d", what, open, total, idle)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A peer whose handshake is clean but whose next Submit frame dribbles
// byte by byte must be reaped by the rolling idle deadline — before the
// fix the server cleared its read deadline after the handshake, so a
// slow-loris connection parked its serve goroutine forever and the
// dribbled frame was eventually served as if the network were healthy.
func TestIdleTimeoutReapsSlowLoris(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:     1, M: 1000, W: 100,
		IdleTimeout: 250 * time.Millisecond,
	})
	// c2s frame 0 is the Hello; frame 1, the first Submit, dribbles one
	// byte per 100ms — far slower than the 250ms idle deadline allows.
	p := startProxy(t, s.Addr(), []faultnet.Rule{
		{Kind: faultnet.SlowLoris, Dir: faultnet.ClientToServer, Conn: 0, Frame: 1,
			Delay: 100 * time.Millisecond, Chunk: 1},
	})

	cl, err := client.Dial(p.Addr(), client.Options{Conns: 1})
	if err != nil {
		t.Fatalf("Dial through proxy: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 16}, 1) //nolint:errcheck
	if _, err := cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err == nil {
		t.Fatal("Submit through a dribbling connection succeeded; the server served a slow-loris frame")
	}

	waitLifecycle(t, s, "slow-loris conn not reaped",
		func(open, total, idle int64) bool { return open == 0 && total == 1 && idle >= 1 })
	if ops, grants, _, _ := s.Accounting(); ops != 0 || grants != 0 {
		t.Fatalf("partial slow-loris frame was accounted: ops=%d grants=%d", ops, grants)
	}
}

// A peer that dribbles the Hello itself must be cut by the handshake
// deadline, and the aborted handshake must never bind a tenant.
func TestHandshakeDeadlineReapsSlowHello(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:     1, M: 1000, W: 100,
		HandshakeTimeout: 300 * time.Millisecond,
	})
	p := startProxy(t, s.Addr(), []faultnet.Rule{
		{Kind: faultnet.SlowLoris, Dir: faultnet.ClientToServer, Conn: 0, Frame: 0,
			Delay: 100 * time.Millisecond, Chunk: 1},
	})

	t0 := time.Now()
	_, err := client.Dial(p.Addr(), client.Options{Conns: 1, DialTimeout: 30 * time.Second})
	if err == nil {
		t.Fatal("Dial with a dribbled Hello succeeded")
	}
	if !errors.Is(err, client.ErrHandshake) {
		t.Fatalf("Dial error %v, want ErrHandshake", err)
	}
	// The server's deadline, not the client's generous one, must have cut
	// the connection.
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("handshake took %v to fail; the server never cut the dribbling peer", elapsed)
	}
	waitLifecycle(t, s, "half-shaken conn left bound",
		func(open, total, idle int64) bool { return open == 0 && total == 0 })
}

// A connection killed mid-frame must release its tenant binding and the
// truncated Submit batch must not move the accounting.
func TestTruncatedFrameReleasesBinding(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:     1, M: 1000, W: 100,
	})
	p := startProxy(t, s.Addr(), []faultnet.Rule{
		{Kind: faultnet.KillMidFrame, Dir: faultnet.ClientToServer, Conn: 0, Frame: 1},
	})

	cl, err := client.Dial(p.Addr(), client.Options{Conns: 1})
	if err != nil {
		t.Fatalf("Dial through proxy: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 16}, 1) //nolint:errcheck
	reqs := make([]controller.Request, 32)
	for i := range reqs {
		reqs[i] = controller.Request{Node: tr.Root(), Kind: tree.None}
	}
	if _, err := cl.SubmitMany(reqs, nil); err == nil {
		t.Fatal("SubmitMany over a mid-frame-killed connection succeeded")
	}

	waitLifecycle(t, s, "mid-frame-killed conn left bound",
		func(open, total, idle int64) bool { return open == 0 && total == 1 })
	if ops, grants, _, _ := s.Accounting(); ops != 0 || grants != 0 {
		t.Fatalf("truncated batch was accounted: ops=%d grants=%d", ops, grants)
	}
}
