package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// startServer builds and starts a loopback server, tearing it down with the
// test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s
}

func TestSubmitOverWire(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:     1, M: 1000, W: 100,
	})
	cl, err := client.Dial(s.Addr(), client.Options{Conns: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	if cl.M() != 1000 || cl.W() != 100 {
		t.Fatalf("handshake contract (%d, %d), want (1000, 100)", cl.M(), cl.W())
	}
	if cl.TopologySignature() != s.TopologySignature() {
		t.Fatal("handshake topology signature mismatch")
	}

	// An event at the root must be granted.
	tr, _ := tree.New()
	if err := workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 16}, 1); err != nil {
		t.Fatalf("rebuild topology: %v", err)
	}
	if sig := workload.TopologySignature(tr); sig != cl.TopologySignature() {
		t.Fatalf("local topology signature %d, server %d", sig, cl.TopologySignature())
	}
	g, err := cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if g.Outcome != controller.Granted {
		t.Fatalf("outcome %v, want granted", g.Outcome)
	}

	// A leaf addition reports the new node id.
	g, err = cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.AddLeaf})
	if err != nil {
		t.Fatalf("Submit add-leaf: %v", err)
	}
	if g.Outcome != controller.Granted || g.NewNode == tree.InvalidNode {
		t.Fatalf("add-leaf: outcome %v new node %d", g.Outcome, g.NewNode)
	}

	// An unknown node is answered with a bad-request error, not a dropped
	// connection.
	_, err = cl.Submit(controller.Request{Node: 99999, Kind: tree.None})
	var re *client.ResultError
	if !errors.As(err, &re) || re.Code != wire.CodeBadRequest {
		t.Fatalf("unknown node: err %v, want ResultError(CodeBadRequest)", err)
	}

	// The connection survived: the next request is served.
	if _, err := cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
		t.Fatalf("Submit after bad request: %v", err)
	}

	ops, grants, rejects, errs := s.Accounting()
	if ops != 4 || grants != 3 || rejects != 0 || errs != 1 {
		t.Fatalf("accounting ops=%d grants=%d rejects=%d errs=%d, want 4/3/0/1", ops, grants, rejects, errs)
	}
}

func TestHandshakeVersionReject(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "star", Nodes: 4},
		M:        10, W: 1,
	})
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write(wire.AppendHello(nil, wire.Hello{Version: 42})); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	var rbuf []byte
	ft, p, err := wire.ReadFrame(bufio.NewReader(nc), &rbuf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if ft != wire.FrameError {
		t.Fatalf("frame %v, want error", ft)
	}
	e, err := wire.DecodeError(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if e.Code != wire.CodeVersion {
		t.Fatalf("error code %d, want CodeVersion", e.Code)
	}
}

func TestMalformedFrameGetsProtocolError(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "star", Nodes: 4},
		M:        10, W: 1,
	})
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	var rbuf []byte

	nc.Write(wire.AppendHello(nil, wire.Hello{Version: wire.Version})) //nolint:errcheck
	if ft, _, err := wire.ReadFrame(br, &rbuf); err != nil || ft != wire.FrameWelcome {
		t.Fatalf("handshake: frame %v err %v", ft, err)
	}

	// A results frame is not something a client may send.
	nc.Write(wire.AppendResults(nil, 9, nil)) //nolint:errcheck
	ft, p, err := wire.ReadFrame(br, &rbuf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if ft != wire.FrameError {
		t.Fatalf("frame %v, want error", ft)
	}
	if e, _ := wire.DecodeError(p); e.Code != wire.CodeProtocol {
		t.Fatalf("error code %d, want CodeProtocol", e.Code)
	}
	// The server closes the connection after a protocol error.
	if _, _, err := wire.ReadFrame(br, &rbuf); !errors.Is(err, io.EOF) {
		t.Fatalf("after protocol error: err %v, want EOF", err)
	}
}

func TestEmptySubmitFrameIsAnswered(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "star", Nodes: 4},
		M:        10, W: 1,
	})
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	var rbuf []byte

	nc.Write(wire.AppendHello(nil, wire.Hello{Version: wire.Version})) //nolint:errcheck
	if ft, _, err := wire.ReadFrame(br, &rbuf); err != nil || ft != wire.FrameWelcome {
		t.Fatalf("handshake: frame %v err %v", ft, err)
	}

	// Every Submit frame gets its Results frame — even an empty one.
	nc.Write(wire.AppendSubmit(nil, 7, nil)) //nolint:errcheck
	ft, p, err := wire.ReadFrame(br, &rbuf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if ft != wire.FrameResults {
		t.Fatalf("frame %v, want results", ft)
	}
	var rs wire.Results
	if err := wire.DecodeResults(p, &rs); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rs.ID != 7 || len(rs.Results) != 0 {
		t.Fatalf("results id %d len %d, want 7 / 0", rs.ID, len(rs.Results))
	}
}

func TestMetricsz(t *testing.T) {
	s := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Topology:    workload.TopologySpec{Kind: "balanced", Nodes: 8},
		Seed:        3, M: 500, W: 50, Paranoid: true,
	})
	cl, err := client.Dial(s.Addr(), client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 8}, 3) //nolint:errcheck
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metricsz", s.MetricsAddr()))
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"dynctrld_protocol_version 3",
		"dynctrld_tenants 1",
		"dynctrld_ops_total 10",
		"dynctrld_grants_total 10",
		"dynctrld_rejects_total 0",
		"dynctrld_errors_total 0",
		"dynctrld_paranoid 1",
		"dynctrld_oracle_violations 0",
		"dynctrld_connections_open 1",
		`dynctrld_tenant_m{tenant="default"} 500`,
		`dynctrld_tenant_w{tenant="default"} 50`,
		`dynctrld_tenant_ops_total{tenant="default"} 10`,
		`dynctrld_tenant_oracle_violations{tenant="default"} 0`,
		`dynctrld_tenant_read_batches_total{tenant="default"}`,
		`dynctrld_tenant_pipeline_requests_total{tenant="default"} 10`,
		`dynctrld_tenant_transport_messages_total{tenant="default"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metricsz missing %q:\n%s", want, text)
		}
	}
}

func TestGracefulShutdownAnswersInFlight(t *testing.T) {
	s := startServer(t, Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 8},
		Seed:     1, M: 100000, W: 50000,
	})
	cl, err := client.Dial(s.Addr(), client.Options{Conns: 4})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 8}, 1) //nolint:errcheck
	root := tr.Root()

	// Phase 1: concurrent load that completes before the shutdown. Every
	// grant the server accounts must have reached a client.
	pump := func(rounds int, stop <-chan struct{}) <-chan int64 {
		done := make(chan int64, 8)
		for g := 0; g < 8; g++ {
			go func() {
				var grants int64
				reqs := make([]controller.Request, 16)
				for i := range reqs {
					reqs[i] = controller.Request{Node: root, Kind: tree.None}
				}
				var out []controller.BatchResult
				for i := 0; i < rounds; i++ {
					select {
					case <-stop:
						i = rounds
						continue
					default:
					}
					res, err := cl.SubmitMany(reqs, out[:0])
					if err != nil {
						break
					}
					for _, r := range res {
						if r.Err == nil && r.Grant.Outcome == controller.Granted {
							grants++
						}
					}
					out = res
				}
				done <- grants
			}()
		}
		return done
	}

	done := pump(50, nil)
	var clientGrants int64
	for g := 0; g < 8; g++ {
		clientGrants += <-done
	}
	_, grants, _, _ := s.Accounting()
	if clientGrants != grants {
		t.Fatalf("clients saw %d grants, server accounted %d", clientGrants, grants)
	}

	// Phase 2: shut down under live load. Every call must resolve — a
	// verdict, a shutdown code, or a connection error — never a hang.
	stop := make(chan struct{})
	done = pump(1<<30, stop)
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	for g := 0; g < 8; g++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("client goroutine hung after shutdown")
		}
	}
}
