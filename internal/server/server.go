// Package server is the dynctrld daemon: a TCP service exposing
// (M,W)-Controller Submit/grant/reject semantics over the wire protocol of
// internal/wire, multiplexing any number of isolated tenant namespaces
// behind one process.
//
// Every tenant namespace owns a complete, private admission stack — tree,
// message runtime, distributed unknown-U controller, batching pipeline,
// and (with durability enabled) its own WAL+snapshot directory — so the
// paper's safety invariant (at most M permits granted, ever) is enforced
// per tenant across all of that tenant's connections, and no tenant's
// traffic can move another tenant's verdicts, counters, or recovery
// history. A connection binds to exactly one namespace in the Hello/
// Welcome handshake and can never address any other: there is no
// per-request tenant field to forge, and a Hello naming an unknown
// namespace is refused with a typed wire error (wire.CodeTenant). A
// daemon configured without explicit tenants serves the single
// wire.DefaultTenant namespace, which is the pre-tenancy behavior.
//
// Two layers of batching amortize the protocol overhead under load: each
// connection coalesces the frames already buffered on its socket into one
// SubmitMany run (read-batching), and each tenant's pipeline combines
// runs from all of that tenant's connections into controller batches
// (flat combining).
//
// With a WAL root configured (Config.WALDir) the daemon is durable: each
// tenant logs to its own subdirectory (WALDir/<tenant>), every decided
// batch is appended to that tenant's internal/persist write-ahead log,
// and a connection's Results frame is not written until the batch's
// records are fsynced — group commit, at most one fsync per SubmitMany
// run, usually amortized over many concurrent runs. On boot each tenant
// recovers independently: the latest snapshot is restored, the WAL tail
// is replayed (and verified) through a rebuilt controller, and the
// incarnation counter is bumped and surfaced in the Welcome frame and on
// /metricsz, so each tenant's (M,W) contract holds across process
// restarts, not just within one.
//
// In paranoid mode every tenant's submitter is additionally wrapped in
// the internal/oracle invariant checkers, so every request served over
// the network is re-checked against the paper's guarantees; violations
// are reported on /metricsz and by Violations().
//
// A plain-text /metricsz endpoint is served over HTTP on a second
// listener: process-wide aggregates first, then one fully labeled section
// per tenant ({tenant="name"} suffixes). The field-by-field reference
// lives in docs/OPERATIONS.md. Shutdown is graceful: the listener closes,
// connection read sides close, in-flight batches are drained and
// answered, and only then do the tenants' pipelines shut down.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/obs"
	"dynctrl/internal/oracle"
	"dynctrl/internal/persist"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// DefaultReadBatch bounds how many requests one connection coalesces from
// its socket buffer into a single SubmitMany run.
const DefaultReadBatch = 4096

// TenantConfig describes one tenant namespace: its name (the Hello
// handshake key, also its WAL subdirectory and /metricsz label) and the
// private admission stack it owns.
type TenantConfig struct {
	// Name is the namespace name; it must satisfy wire.ValidTenant.
	Name string

	// Topology and Seed determine the tenant's initial tree, exactly as in
	// the scenario engine: the same (spec, seed) pair always builds the
	// same tree, which is how a remote load generator reconstructs it.
	Topology workload.TopologySpec
	Seed     int64
	// Scheduler names the transport schedule of the tenant's message
	// runtime (default "random").
	Scheduler string

	// M and W are the tenant's admission contract.
	M, W int64
}

// Config describes one daemon instance.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7700"; ":0" picks a
	// free port).
	Addr string
	// MetricsAddr is the HTTP listen address of the /metricsz endpoint;
	// empty disables it.
	MetricsAddr string

	// Topology, Seed, Scheduler, M and W describe the single
	// wire.DefaultTenant namespace served when Tenants is empty. They are
	// ignored when Tenants is set.
	Topology  workload.TopologySpec
	Seed      int64
	Scheduler string
	M, W      int64

	// Tenants, when non-empty, declares the namespaces this daemon serves.
	// Names must be unique and satisfy wire.ValidTenant.
	Tenants []TenantConfig

	// Paranoid wraps every tenant's submitter in the internal/oracle
	// invariant checkers: every request served over the wire is re-checked
	// against that tenant's (M,W) contract.
	Paranoid bool

	// MaxBatch bounds the pipelines' combining cycles (0 = pipeline
	// default); ReadBatch bounds per-connection read coalescing (0 =
	// DefaultReadBatch).
	MaxBatch  int
	ReadBatch int

	// IdleTimeout, when positive, arms a rolling read deadline on every
	// bound connection: each frame must complete within IdleTimeout of
	// the previous one, so an idle or byte-dribbling (slow-loris) peer is
	// disconnected instead of holding its goroutine, read buffer and
	// tenant-stack reference forever. Zero (the default) keeps
	// connections undeadlined after the handshake.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the wait for the Hello frame (0 =
	// DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration

	// WALDir enables the durability engine: each tenant logs decided
	// batches to WALDir/<tenant-name> and recovers from it on boot. Empty
	// runs in-memory only.
	WALDir string
	// SnapshotEvery checkpoints a tenant's full controller state every n
	// logged effects (0 = DefaultSnapshotEvery; negative disables
	// automatic checkpoints). A final checkpoint is always written on
	// graceful shutdown.
	SnapshotEvery int64
	// CommitWindow is the group-commit coalescing window (0 =
	// DefaultCommitWindow; negative fsyncs immediately).
	CommitWindow time.Duration
	// Logf receives recovery and durability warnings (default: forward to
	// Logger at warn level).
	Logf func(format string, args ...any)

	// Logger receives the daemon's structured log events (accepts,
	// handshakes, binds, reject waves, recovery, idle timeouts, drain,
	// connection-fatal errors) with tenant and trace-ID attributes.
	// Nil discards everything (the embedded-server default).
	Logger *slog.Logger

	// TraceRing sizes each tenant's batch-trace ring (0 = obs.DefaultRing;
	// negative disables tracing, stage histograms and the combine/fsync
	// recorders entirely).
	TraceRing int

	// Pprof mounts net/http/pprof's handlers under /debug/pprof/ on the
	// metrics listener. Off by default: profiling endpoints are opt-in.
	Pprof bool
}

// DefaultSnapshotEvery is the automatic checkpoint cadence (in logged
// effects) when WALDir is set and SnapshotEvery is zero.
const DefaultSnapshotEvery = 1 << 18

// DefaultCommitWindow is the group-commit coalescing window: batches
// decided within one window of each other share one fsync.
const DefaultCommitWindow = 200 * time.Microsecond

// DefaultHandshakeTimeout bounds the handshake when
// Config.HandshakeTimeout is zero: a connection that has not completed
// its Hello within this window is dropped.
const DefaultHandshakeTimeout = 10 * time.Second

// tenant is one namespace's private admission stack plus its wire-level
// accounting. Nothing in here is shared between tenants: the tree, the
// runtime, the controller, the pipeline, the WAL engine, the oracle and
// every counter are per-namespace, which is what the cross-tenant
// isolation oracle (oracle.CheckTenantIsolation) relies on.
type tenant struct {
	name    string
	cfg     TenantConfig
	tr      *tree.Tree
	rt      sim.Runtime
	ctl     *dist.Dynamic
	pl      *pipeline.Pipeline
	guard   *guardedSubmitter
	ctrs    *stats.Counters
	topoSig uint64

	// Durability engine state (nil/zero without a WAL).
	eng              *persist.Engine
	incarnation      uint64
	recoveredEffects int
	recoveredTrunc   int64

	// Wire-level accounting: what the server actually answered over the
	// network for this tenant. The controller's own counters (grants,
	// messages, ...) are reported separately on /metricsz; these are the
	// numbers a load generator must reconcile against.
	ops, grants, rejects, errs atomic.Int64
	readBatches, readReqs      atomic.Int64
	maxRead                    atomic.Int64
	connsOpen, connsTotal      atomic.Int64
	idleTimeouts               atomic.Int64
	rejectWave                 atomic.Bool
	waveGranted                atomic.Int64

	// Observability (all nil when Config.TraceRing < 0): the batch-trace
	// ring + per-stage histograms, the pipeline combining-cycle recorder
	// and the WAL fsync-wave recorder.
	tracer  *obs.Tracer
	combine *obs.Recorder
	fsync   *obs.Recorder
}

// Server is a running daemon instance.
type Server struct {
	cfg     Config
	tenants map[string]*tenant
	order   []string // tenant names in configuration order
	logger  *slog.Logger
	// started carries both the wall reading (dynctrld_start_time_seconds)
	// and the monotonic reading (dynctrld_uptime_seconds); zero until
	// Start, and uptime is reported as 0 until then.
	started time.Time

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// guardedSubmitter serializes controller access (the pipeline leader is
// the only submitter, but /metricsz samples the non-thread-safe runtime
// counters concurrently) and optionally routes every request through the
// oracle. With a durability engine attached it also appends every decided
// batch to the WAL — still under the lock, so log order is execution order
// — and triggers background checkpoints; it does NOT wait for the fsync
// (connections do that before replying), so the pipeline keeps combining
// batches while earlier batches ride out their group commit.
type guardedSubmitter struct {
	mu      sync.Mutex
	sub     controller.BatchSubmitter
	orc     *oracle.Oracle                   // non-nil in paranoid mode
	eng     *persist.Engine                  // non-nil with a WAL
	capture func() *persist.State            // deep state copy for checkpoints
	logf    func(format string, args ...any) // durability warnings
	ctrs    *stats.Counters                  // tenant counters (control-message sampling)
	trace   bool                             // record per-run stage timings
	// dead is set when the WAL can no longer accept records: from then on
	// batches are refused *before* touching the controller, because a
	// grant that cannot be logged would burn the permit budget against a
	// state no recovery can ever reconstruct.
	dead bool

	// runs maps an in-flight SubmitMany run (identified by the address
	// of its first request — the pipeline hands the caller's slice through
	// unchanged) to the group-commit ticket covering exactly its records
	// plus the run's measured controller work, so each connection waits
	// for its own fsync window instead of the engine's append high-water
	// mark (which other connections keep advancing — a convoy) and can
	// attribute its trace's execute/WAL time to exactly its own run.
	tmu  sync.Mutex
	runs map[*controller.Request]runInfo
}

// runInfo is what the guard learned about one SubmitMany run: its
// group-commit ticket (when a WAL is attached and the append succeeded)
// and, with tracing on, the run's controller execution time, in-guard WAL
// append time and control-message count.
type runInfo struct {
	ticket    uint64
	hasTicket bool
	exec      time.Duration
	walAppend time.Duration
	ctlMsgs   int64
}

// takeRun claims (and forgets) the info recorded for the run whose first
// request lives at key. ok is false when the run never reached the guard —
// legitimate only for runs that decided nothing (every result an error);
// the caller treats a miss with successful results as a broken durability
// invariant, never as permission to reply early.
func (g *guardedSubmitter) takeRun(key *controller.Request) (info runInfo, ok bool) {
	g.tmu.Lock()
	defer g.tmu.Unlock()
	info, ok = g.runs[key]
	delete(g.runs, key)
	return info, ok
}

// errWALUnavailable answers requests once the WAL has permanently failed.
var errWALUnavailable = errors.New("server: wal unavailable")

func (g *guardedSubmitter) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dead {
		for range reqs {
			out = append(out, controller.BatchResult{Err: errWALUnavailable})
		}
		return out
	}
	var info runInfo
	var execStart time.Time
	var ctlBefore int64
	if g.trace {
		ctlBefore = g.ctrs.Get(dist.CounterControl)
		execStart = time.Now()
	}
	base := len(out)
	if g.orc == nil {
		out = g.sub.SubmitBatch(reqs, out)
	} else {
		for _, req := range reqs {
			gr, err := g.orc.Submit(req)
			out = append(out, controller.BatchResult{Grant: gr, Err: err})
		}
	}
	if g.trace {
		info.exec = time.Since(execStart)
		info.ctlMsgs = g.ctrs.Get(dist.CounterControl) - ctlBefore
	}
	if g.eng != nil {
		var walStart time.Time
		if g.trace {
			walStart = time.Now()
		}
		ticket, err := g.eng.AppendEffects(reqs, out[base:])
		if g.trace {
			info.walAppend = time.Since(walStart)
		}
		if err != nil {
			g.dead = true
			g.logf("server: wal append failed, refusing further admissions: %v", err)
		} else {
			info.ticket, info.hasTicket = ticket, true
		}
		if g.eng.ShouldCheckpoint() {
			g.eng.CheckpointAsync(g.capture())
		}
	}
	if len(reqs) > 0 && (g.trace || info.hasTicket) {
		g.tmu.Lock()
		g.runs[&reqs[0]] = info
		g.tmu.Unlock()
	}
	return out
}

// tenantConfigs normalizes cfg into the tenant list: the explicit Tenants
// slice, or a single wire.DefaultTenant namespace built from the
// single-tenant fields.
func tenantConfigs(cfg Config) []TenantConfig {
	if len(cfg.Tenants) > 0 {
		return cfg.Tenants
	}
	return []TenantConfig{{
		Name:      wire.DefaultTenant,
		Topology:  cfg.Topology,
		Seed:      cfg.Seed,
		Scheduler: cfg.Scheduler,
		M:         cfg.M,
		W:         cfg.W,
	}}
}

// newTenant builds (or, when its WAL subdirectory has history, recovers)
// one namespace's admission stack.
func newTenant(tc TenantConfig, cfg Config) (*tenant, error) {
	if !wire.ValidTenant(tc.Name) {
		return nil, fmt.Errorf("server: invalid tenant name %q", tc.Name)
	}
	if tc.M < 0 || tc.W < 0 || tc.W > tc.M {
		return nil, fmt.Errorf("server: tenant %q: invalid contract (M=%d, W=%d)", tc.Name, tc.M, tc.W)
	}
	if tc.Topology.Kind == "" {
		tc.Topology.Kind = "balanced"
	}
	if tc.Topology.Nodes < 1 {
		tc.Topology.Nodes = 1
	}
	if tc.Scheduler == "" {
		tc.Scheduler = "random"
	}
	tr, _ := tree.New()
	if err := workload.BuildTopology(tr, tc.Topology, tc.Seed); err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", tc.Name, err)
	}
	// The handshake's topology signature always names the *initial* tree
	// (the one a remote load generator can reconstruct from the spec and
	// seed); recovery below may evolve the live tree past it.
	topoSig := workload.TopologySignature(tr)
	rt, err := sim.NewRuntime(tc.Scheduler, tc.Seed)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", tc.Name, err)
	}
	ctrs := stats.NewCounters()

	tn := &tenant{
		name:    tc.Name,
		cfg:     tc,
		tr:      tr,
		rt:      rt,
		ctl:     dist.NewDynamic(tr, rt, tc.M, tc.W, false, ctrs),
		ctrs:    ctrs,
		topoSig: topoSig,
	}
	traced := cfg.TraceRing >= 0
	if traced {
		tn.tracer = obs.NewTracer(cfg.TraceRing, obs.DefaultSlow)
		tn.combine = obs.NewRecorder()
	}

	var walDir string
	if cfg.WALDir != "" {
		walDir = filepath.Join(cfg.WALDir, tc.Name)
		snapEvery := cfg.SnapshotEvery
		if snapEvery < 0 {
			snapEvery = 0
		}
		window := cfg.CommitWindow
		if window < 0 {
			window = 0
		}
		popts := persist.Options{
			SnapshotEvery: snapEvery,
			CommitWindow:  window,
			Logf:          cfg.Logf,
		}
		if traced {
			tn.fsync = obs.NewRecorder()
			popts.SyncObserver = func(_ int, d time.Duration) { tn.fsync.Record(d) }
		}
		eng, rec, err := persist.Open(walDir, popts)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: open wal: %w", tc.Name, err)
		}
		if rec.Snapshot != nil {
			if rec.Snapshot.M != tc.M || rec.Snapshot.W != tc.W {
				eng.Close()
				return nil, fmt.Errorf("server: tenant %q: wal snapshot was taken under (M=%d, W=%d), daemon started with (M=%d, W=%d)",
					tc.Name, rec.Snapshot.M, rec.Snapshot.W, tc.M, tc.W)
			}
			tn.ctl, err = persist.RestoreInto(rec.Snapshot, tr, rt, ctrs)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("server: tenant %q: %w", tc.Name, err)
			}
		}
		applied, err := persist.Replay(rec.Tail, tn.ctl)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("server: tenant %q: %w", tc.Name, err)
		}
		tn.eng = eng
		tn.incarnation = eng.Incarnation()
		tn.recoveredEffects = applied
		tn.recoveredTrunc = rec.TruncatedBytes
		if rec.Snapshot != nil || applied > 0 {
			var snapIndex uint64
			if rec.Snapshot != nil {
				snapIndex = rec.Snapshot.Index
			}
			cfg.Logger.Info("tenant recovered",
				"tenant", tc.Name, "incarnation", tn.incarnation,
				"snapshot_index", snapIndex, "effects_replayed", applied,
				"truncated_bytes", rec.TruncatedBytes)
		}
	}

	guard := &guardedSubmitter{
		sub:     tn.ctl,
		eng:     tn.eng,
		capture: tn.captureState,
		logf:    cfg.Logf,
		ctrs:    ctrs,
		trace:   traced,
		runs:    make(map[*controller.Request]runInfo),
	}
	if cfg.Paranoid {
		// Seed the oracle with the recovered totals — and every serial the
		// retained history ever granted — so the safety counter and serial
		// uniqueness span incarnations.
		var priorSerials []int64
		if tn.eng != nil {
			history, err := persist.ReadHistory(walDir)
			if err != nil {
				cfg.Logf("server: tenant %q: reading wal history for the oracle baseline: %v", tc.Name, err)
			}
			for _, sum := range persist.Summaries(history) {
				priorSerials = append(priorSerials, sum.Serials...)
			}
		}
		guard.orc = oracle.Wrap(tn.ctl, tr, tc.M, tc.W,
			oracle.WithMessages(rt.Messages),
			oracle.WithBaseline(tn.ctl.Granted(), ctrs.Get(stats.CounterRejects), priorSerials))
	}
	var opts []pipeline.Option
	if cfg.MaxBatch > 0 {
		opts = append(opts, pipeline.WithMaxBatch(cfg.MaxBatch))
	}
	if traced {
		opts = append(opts, pipeline.WithCycleHook(func(_, _ int, d time.Duration) {
			tn.combine.Record(d)
		}))
	}
	tn.guard = guard
	tn.pl = pipeline.New(guard, opts...)
	return tn, nil
}

// New builds a server over fresh per-tenant admission stacks — or, when
// cfg.WALDir names a directory with history, over the recovered ones:
// each tenant's latest snapshot is restored in place, its WAL tail is
// replayed through the rebuilt controller (verifying every logged
// verdict), and its incarnation counter is bumped. Call Start to begin
// serving.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.Logf == nil {
		logger := cfg.Logger
		cfg.Logf = func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		}
	}
	if cfg.ReadBatch < 1 {
		cfg.ReadBatch = DefaultReadBatch
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.CommitWindow == 0 {
		cfg.CommitWindow = DefaultCommitWindow
	}

	s := &Server{
		cfg:     cfg,
		tenants: map[string]*tenant{},
		conns:   map[*srvConn]struct{}{},
		logger:  cfg.Logger,
	}
	for _, tc := range tenantConfigs(cfg) {
		if _, dup := s.tenants[tc.Name]; dup {
			s.closeTenants()
			return nil, fmt.Errorf("server: duplicate tenant name %q", tc.Name)
		}
		tn, err := newTenant(tc, cfg)
		if err != nil {
			s.closeTenants()
			return nil, err
		}
		s.tenants[tc.Name] = tn
		s.order = append(s.order, tc.Name)
	}
	return s, nil
}

// closeTenants tears down the stacks built so far (boot-failure path).
func (s *Server) closeTenants() {
	for _, name := range s.order {
		tn := s.tenants[name]
		tn.pl.Close()
		if tn.eng != nil {
			tn.eng.Close()
		}
	}
}

// captureState deep-copies a tenant's admission stack into a snapshot
// state. Called with guard.mu held (no submission in flight).
func (t *tenant) captureState() *persist.State {
	return &persist.State{
		Index:       t.eng.AppendedIndex(),
		Incarnation: t.incarnation,
		M:           t.cfg.M,
		W:           t.cfg.W,
		Tree:        t.tr.Snapshot(),
		Ctl:         t.ctl.State(),
		Counters:    t.ctrs.Snapshot(),
	}
}

// defaultTenant returns the first configured tenant — the wire.DefaultTenant
// namespace of a single-tenant daemon — for the single-tenant convenience
// accessors.
func (s *Server) defaultTenant() *tenant { return s.tenants[s.order[0]] }

// Tenants returns the served namespace names in configuration order.
func (s *Server) Tenants() []string { return append([]string(nil), s.order...) }

// Incarnation returns the first tenant's durability incarnation (0 without
// a WAL). Multi-tenant callers should use TenantIncarnation.
func (s *Server) Incarnation() uint64 { return s.defaultTenant().incarnation }

// TenantIncarnation returns the named tenant's durability incarnation.
func (s *Server) TenantIncarnation(name string) uint64 {
	if tn := s.tenants[name]; tn != nil {
		return tn.incarnation
	}
	return 0
}

// Start opens the listeners and begins serving. It returns once the
// listeners are bound (serving continues in background goroutines).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	if s.cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.WriteMetrics(w)
		})
		mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.WriteTraces(w, r.URL.Query().Get("tenant"), atoiDefault(r.URL.Query().Get("n"), 16))
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		if s.cfg.Pprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(hln) //nolint:errcheck // closed on shutdown
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.logger.Info("serving",
		"addr", s.Addr(), "metrics", s.MetricsAddr(),
		"tenants", len(s.order), "paranoid", s.cfg.Paranoid,
		"wal", s.cfg.WALDir != "", "pprof", s.cfg.Pprof)
	return nil
}

// atoiDefault parses a query parameter, falling back on def.
func atoiDefault(s string, def int) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return def
	}
	return n
}

// WriteTraces renders the plain-text /tracez document: per tenant, the
// stage-latency digest plus the slowest-n and most-recent-n batch traces.
// A non-empty tenant filter restricts the report to that namespace.
func (s *Server) WriteTraces(w io.Writer, tenant string, n int) {
	for _, name := range s.order {
		if tenant != "" && name != tenant {
			continue
		}
		obs.WriteTracez(w, name, s.tenants[name].tracer, n, n)
	}
}

// TenantStageStats returns the named tenant's server-side stage-latency
// digest (decode, queue, execute, wal, write, total), or nil when the
// tenant is unknown or tracing is disabled.
func (s *Server) TenantStageStats(name string) []obs.StageStats {
	if tn := s.tenants[name]; tn != nil {
		return tn.tracer.Snapshot()
	}
	return nil
}

// Addr returns the bound wire-protocol address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// MetricsAddr returns the bound metrics address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TopologySignature returns the first tenant's initial-tree signature, as
// sent in its Welcome frame. Multi-tenant callers should use
// TenantTopologySignature.
func (s *Server) TopologySignature() uint64 { return s.defaultTenant().topoSig }

// TenantTopologySignature returns the named tenant's initial-tree
// signature (0 for an unknown tenant).
func (s *Server) TenantTopologySignature(name string) uint64 {
	if tn := s.tenants[name]; tn != nil {
		return tn.topoSig
	}
	return 0
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		c := &srvConn{s: s, nc: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 64<<10)}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.logger.Debug("connection accepted", "remote", nc.RemoteAddr().String())
		go c.serve()
	}
}

// removeConn drops c from the live set (idempotent).
func (s *Server) removeConn(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	if tn := c.tn; tn != nil {
		tn.connsOpen.Add(-1)
	}
}

// broadcastRejectWave pushes a RejectWave frame to every live connection
// bound to tn and logs the wave completion to tn's WAL. Called at most
// once per tenant, by whichever connection observed the first reject.
func (s *Server) broadcastRejectWave(tn *tenant, granted int64) {
	tn.waveGranted.Store(granted)
	if tn.eng != nil {
		if _, err := tn.eng.AppendWave(granted); err != nil {
			s.cfg.Logf("server: tenant %q: wal wave append failed: %v", tn.name, err)
		}
	}
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		if c.tn == tn {
			conns = append(conns, c)
		}
	}
	s.mu.Unlock()
	s.logger.Info("reject wave", "tenant", tn.name, "granted", granted, "connections", len(conns))
	for _, c := range conns {
		c.pushRejectWave(granted)
	}
}

// Shutdown drains the server gracefully: stop accepting, close connection
// read sides (in-flight batches still get their responses), wait for the
// handlers, then close every tenant's pipeline and run its oracle's
// end-of-run checks. The context bounds the drain; on expiry remaining
// connections are cut.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.logger.Info("draining", "connections", len(conns))

	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.closeRead()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		for _, c := range conns {
			c.nc.Close()
		}
		<-done
	}

	for _, name := range s.order {
		tn := s.tenants[name]
		tn.pl.Close()
		tn.guard.mu.Lock()
		if tn.guard.orc != nil {
			tn.guard.orc.Finish()
		}
		if tn.eng != nil {
			// Final checkpoint: a graceful restart replays nothing.
			if err := tn.eng.Checkpoint(tn.captureState()); err != nil {
				s.cfg.Logf("server: tenant %q: final checkpoint failed: %v", tn.name, err)
			}
		}
		tn.guard.mu.Unlock()
		if tn.eng != nil {
			if err := tn.eng.Close(); err != nil {
				s.cfg.Logf("server: tenant %q: wal close failed: %v", tn.name, err)
			}
		}
	}

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.logger.Info("shutdown complete", "drain_err", drainErr != nil)
	return drainErr
}

// Violations returns the oracle violations observed so far across all
// tenants (nil when not paranoid).
func (s *Server) Violations() []oracle.Violation {
	var out []oracle.Violation
	for _, name := range s.order {
		out = append(out, s.TenantViolations(name)...)
	}
	return out
}

// TenantViolations returns the named tenant's oracle violations (nil when
// not paranoid or unknown).
func (s *Server) TenantViolations(name string) []oracle.Violation {
	tn := s.tenants[name]
	if tn == nil {
		return nil
	}
	tn.guard.mu.Lock()
	defer tn.guard.mu.Unlock()
	if tn.guard.orc == nil {
		return nil
	}
	return append([]oracle.Violation(nil), tn.guard.orc.Violations()...)
}

// Accounting returns the wire-level tallies summed over all tenants:
// requests answered, grants, rejects and per-request errors as written to
// the network.
func (s *Server) Accounting() (ops, grants, rejects, errs int64) {
	for _, name := range s.order {
		o, g, r, e := s.TenantAccounting(name)
		ops, grants, rejects, errs = ops+o, grants+g, rejects+r, errs+e
	}
	return ops, grants, rejects, errs
}

// TenantAccounting returns the named tenant's wire-level tallies (zeros
// for an unknown tenant).
func (s *Server) TenantAccounting(name string) (ops, grants, rejects, errs int64) {
	tn := s.tenants[name]
	if tn == nil {
		return 0, 0, 0, 0
	}
	return tn.ops.Load(), tn.grants.Load(), tn.rejects.Load(), tn.errs.Load()
}

// TransportMessages samples the tenants' controller transports'
// delivered-message counts, summed. The runtimes are not thread-safe, so
// each sample is taken under the lock its pipeline leader holds while
// driving batches.
func (s *Server) TransportMessages() int64 {
	var total int64
	for _, name := range s.order {
		tn := s.tenants[name]
		tn.guard.mu.Lock()
		total += tn.rt.Messages()
		tn.guard.mu.Unlock()
	}
	return total
}

// srvConn is one accepted wire-protocol connection, bound to a single
// tenant namespace by the handshake.
type srvConn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader
	tn *tenant // nil until the handshake binds the namespace

	wmu sync.Mutex // guards bw and the underlying write side
	bw  *bufio.Writer

	readClosed atomic.Bool
	lastTrace  uint64 // most recent batch-trace ID (serve goroutine only)
}

// closeRead shuts the read side so the serve loop drains out; responses for
// in-flight batches still go to the client.
func (c *srvConn) closeRead() {
	c.readClosed.Store(true)
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.CloseRead() //nolint:errcheck
		return
	}
	// Non-TCP (e.g. in-memory test pipes): fall back to a hard close.
	c.nc.Close()
}

// pushRejectWave writes the async reject-wave notification.
func (c *srvConn) pushRejectWave(granted int64) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf := wire.AppendRejectWave(nil, wire.RejectWave{Granted: granted})
	c.bw.Write(buf) //nolint:errcheck // write errors surface on the conn
	c.bw.Flush()    //nolint:errcheck
}

// fail writes a connection-fatal error frame and gives up on the peer.
func (c *srvConn) fail(code uint8, detail string) {
	tenant := ""
	if c.tn != nil {
		tenant = c.tn.name
	}
	c.s.logger.Warn("connection fatal",
		"remote", c.nc.RemoteAddr().String(), "tenant", tenant,
		"code", code, "detail", detail, "trace_id", c.lastTrace)
	c.wmu.Lock()
	c.bw.Write(wire.AppendError(nil, wire.ErrorFrame{Code: code, Detail: detail})) //nolint:errcheck
	c.bw.Flush()                                                                   //nolint:errcheck
	c.wmu.Unlock()
}

func (c *srvConn) serve() {
	defer c.s.wg.Done()
	defer c.s.removeConn(c)
	defer c.nc.Close()

	var rbuf []byte

	// Handshake: exactly one Hello, answered with Welcome. The Hello names
	// the tenant namespace the connection binds to; everything after the
	// handshake is implicitly scoped to it. A deadline that cannot be
	// armed is connection-fatal: serving an undeadlined handshake would
	// hand a slow-loris peer a goroutine forever.
	hsTimeout := c.s.cfg.HandshakeTimeout
	if hsTimeout <= 0 {
		hsTimeout = DefaultHandshakeTimeout
	}
	if err := c.nc.SetReadDeadline(time.Now().Add(hsTimeout)); err != nil {
		return
	}
	remote := c.nc.RemoteAddr().String()
	ft, p, err := wire.ReadFrame(c.br, &rbuf)
	if err != nil {
		// A clean immediate close (port probe, peer gave up) is routine;
		// anything else — garbage bytes, a torn frame, the handshake
		// deadline — is a fault worth flagging.
		if errors.Is(err, io.EOF) || c.readClosed.Load() {
			c.s.logger.Debug("handshake aborted", "remote", remote, "err", err)
		} else {
			c.s.logger.Warn("handshake failed", "remote", remote, "err", err)
		}
		return
	}
	if ft != wire.FrameHello {
		c.s.logger.Warn("handshake failed", "remote", remote, "err", fmt.Sprintf("expected hello, got %v", ft))
		c.fail(wire.CodeProtocol, fmt.Sprintf("expected hello, got %v", ft))
		return
	}
	hello, err := wire.DecodeHello(p)
	if err != nil {
		c.s.logger.Warn("handshake failed", "remote", remote, "err", err)
		if errors.Is(err, wire.ErrBadTenant) {
			c.fail(wire.CodeTenant, err.Error())
		} else {
			c.fail(wire.CodeProtocol, err.Error())
		}
		return
	}
	if hello.Version != wire.Version {
		c.s.logger.Warn("handshake failed", "remote", remote,
			"err", fmt.Sprintf("version mismatch: server %d, client %d", wire.Version, hello.Version))
		c.fail(wire.CodeVersion, fmt.Sprintf("server speaks version %d, client sent %d", wire.Version, hello.Version))
		return
	}
	tn := c.s.tenants[hello.Tenant]
	if tn == nil {
		c.s.logger.Warn("handshake failed", "remote", remote, "err", fmt.Sprintf("unknown tenant %q", hello.Tenant))
		c.fail(wire.CodeTenant, fmt.Sprintf("unknown tenant %q (served: %v)", hello.Tenant, c.s.order))
		return
	}
	c.tn = tn
	tn.connsOpen.Add(1)
	tn.connsTotal.Add(1)
	c.s.logger.Debug("connection bound", "remote", remote, "tenant", tn.name, "incarnation", tn.incarnation)
	idle := c.s.cfg.IdleTimeout
	if idle <= 0 {
		// No idle policy: clear the handshake deadline. Failing to clear
		// it would strand the connection behind a stale deadline, so it
		// is connection-fatal too.
		if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
			return
		}
	}
	c.wmu.Lock()
	c.bw.Write(wire.AppendWelcome(nil, wire.Welcome{ //nolint:errcheck
		Version:     wire.Version,
		Tenant:      tn.name,
		M:           tn.cfg.M,
		W:           tn.cfg.W,
		TopoSig:     tn.topoSig,
		Incarnation: tn.incarnation,
	}))
	if err := c.bw.Flush(); err != nil {
		c.wmu.Unlock()
		return
	}
	c.wmu.Unlock()

	// Request loop with read-batching: each wakeup takes the frame that
	// unblocked the read plus every complete Submit frame already sitting
	// in the socket buffer (up to ReadBatch requests), answers them all
	// through one SubmitMany run, then writes one Results frame per Submit.
	var (
		sub     wire.Submit
		ids     []uint64
		counts  []int
		reqs    []controller.Request
		results []controller.BatchResult
		wbuf    []byte
		wres    []wire.Result
	)
	tracer := tn.tracer
	for {
		ids, counts, reqs = ids[:0], counts[:0], reqs[:0]

		// Rolling idle deadline, re-armed per frame: any complete frame
		// resets the clock, but a peer that dribbles bytes (or nothing)
		// for IdleTimeout is cut loose.
		if idle > 0 {
			if err := c.nc.SetReadDeadline(time.Now().Add(idle)); err != nil {
				return
			}
		}
		ft, p, err := wire.ReadFrame(c.br, &rbuf)
		if err != nil {
			if idle > 0 && !c.readClosed.Load() {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					tn.idleTimeouts.Add(1)
					c.s.logger.Info("idle timeout", "remote", remote, "tenant", tn.name)
				}
			}
			return // peer closed, idle timeout, shutdown, or read error: drain out
		}
		// The trace clock starts once the first frame has arrived: time a
		// connection spends idle waiting for traffic is not server latency.
		var bt *obs.BatchTrace
		if tracer != nil {
			bt = &obs.BatchTrace{ID: tracer.NextID(), Start: time.Now(), Conn: remote}
		}
		if ok := c.ingest(ft, p, &sub, &ids, &counts, &reqs); !ok {
			return
		}
		for len(reqs) < c.s.cfg.ReadBatch {
			if !c.completeFrameBuffered() {
				break
			}
			ft, p, err := wire.ReadFrame(c.br, &rbuf)
			if err != nil {
				return
			}
			if ok := c.ingest(ft, p, &sub, &ids, &counts, &reqs); !ok {
				return
			}
		}
		if len(reqs) == 0 {
			if len(ids) > 0 {
				// Empty Submit frames still get their (empty) Results reply:
				// every submitted id is answered, always.
				c.accountAndReply(ids, counts, nil, &wbuf, &wres)
			}
			continue
		}

		n := int64(len(reqs))
		tn.readBatches.Add(1)
		tn.readReqs.Add(n)
		if max := tn.maxRead.Load(); n > max {
			tn.maxRead.CompareAndSwap(max, n) // best-effort high-water mark
		}

		// One clock read ends the decode span and starts the submit span;
		// the counter updates above are charged to decode, which is noise.
		var submitStart time.Time
		if bt != nil {
			submitStart = time.Now()
			bt.Stages[obs.StageDecode] = submitStart.Sub(bt.Start)
		}
		results, err = tn.pl.SubmitMany(reqs, results[:0])
		if errors.Is(err, pipeline.ErrClosed) {
			// Admitted after the drain began: answer everything with the
			// shutdown code so the client can tell these were not served.
			results = results[:0]
			for range reqs {
				results = append(results, controller.BatchResult{Err: pipeline.ErrClosed})
			}
		} else if err != nil {
			c.fail(wire.CodeProtocol, err.Error())
			return
		}
		submitWall := time.Duration(0)
		if bt != nil {
			submitWall = time.Since(submitStart)
		}

		// The guard recorded what it learned about exactly this run — the
		// group-commit ticket and, with tracing, the measured controller/
		// WAL-append work (keyed by the first request's address: the
		// pipeline hands the slice through unchanged).
		var info runInfo
		var haveInfo bool
		if tn.eng != nil || bt != nil {
			info, haveInfo = tn.guard.takeRun(&reqs[0])
		}

		// Group commit: results may not reach the wire before this batch's
		// WAL records are fsynced. The pipeline keeps driving other batches
		// while we ride out the fsync. A missing ticket is only legal when
		// the run decided nothing (shutdown/dead-WAL error results) — with
		// any successful result it means the durability chain broke, and
		// the connection dies rather than reply early.
		var walWait time.Duration
		if eng := tn.eng; eng != nil {
			if !haveInfo || !info.hasTicket {
				for _, br := range results {
					if br.Err == nil {
						c.fail(wire.CodeProtocol, "wal: decided batch has no durability ticket")
						return
					}
				}
			} else {
				var waitStart time.Time
				if bt != nil {
					waitStart = time.Now()
				}
				if werr := eng.WaitDurable(info.ticket); werr != nil {
					c.fail(wire.CodeProtocol, fmt.Sprintf("wal: %v", werr))
					return
				}
				if bt != nil {
					walWait = time.Since(waitStart)
				}
			}
		}

		grants, rejects, errCount := c.accountAndReply(ids, counts, results, &wbuf, &wres)

		if bt != nil {
			// The pipeline wait is what is left of the SubmitMany wall time
			// once the run's own execute and WAL-append work is taken out.
			queue := submitWall - info.exec - info.walAppend
			if queue < 0 {
				queue = 0
			}
			bt.Stages[obs.StageQueue] = queue
			bt.Stages[obs.StageExecute] = info.exec
			bt.Stages[obs.StageWAL] = info.walAppend + walWait
			bt.Total = time.Since(bt.Start)
			bt.Stages[obs.StageWrite] = bt.Total - bt.Stages[obs.StageDecode] - submitWall - walWait
			if bt.Stages[obs.StageWrite] < 0 {
				bt.Stages[obs.StageWrite] = 0
			}
			bt.Frames = len(ids)
			bt.Requests = len(reqs)
			bt.Grants, bt.Rejects, bt.Errors = grants, rejects, errCount
			bt.CtlMsgs = info.ctlMsgs
			bt.Wave = rejects > 0
			tracer.Record(bt)
			c.lastTrace = bt.ID
		}
	}
}

// ingest folds one frame into the current read batch. It reports false
// when the connection must be torn down (protocol error).
func (c *srvConn) ingest(ft wire.FrameType, p []byte, sub *wire.Submit,
	ids *[]uint64, counts *[]int, reqs *[]controller.Request) bool {
	if ft != wire.FrameSubmit {
		c.fail(wire.CodeProtocol, fmt.Sprintf("unexpected %v frame", ft))
		return false
	}
	if err := wire.DecodeSubmit(p, sub); err != nil {
		c.fail(wire.CodeProtocol, err.Error())
		return false
	}
	*ids = append(*ids, sub.ID)
	*counts = append(*counts, len(sub.Reqs))
	for _, r := range sub.Reqs {
		*reqs = append(*reqs, controller.Request{Node: r.Node, Kind: r.Kind, Child: r.Child})
	}
	return true
}

// completeFrameBuffered reports whether at least one whole frame sits in
// the read buffer, so reading it cannot block.
func (c *srvConn) completeFrameBuffered() bool {
	if c.br.Buffered() < 4 {
		return false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return false
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n < 1 || n > wire.MaxFrame {
		// Let ReadFrame consume it and report the protocol error.
		return true
	}
	return c.br.Buffered() >= 4+n
}

// accountAndReply updates the bound tenant's wire-level tallies, writes
// one Results frame per submitted frame in order, and returns the batch's
// verdict tallies.
func (c *srvConn) accountAndReply(ids []uint64, counts []int,
	results []controller.BatchResult, wbuf *[]byte, wres *[]wire.Result) (int64, int64, int64) {
	var grants, rejects, errs int64
	buf := (*wbuf)[:0]
	off := 0
	for i, id := range ids {
		n := counts[i]
		res := (*wres)[:0]
		for _, br := range results[off : off+n] {
			var r wire.Result
			switch {
			case br.Err == nil:
				r = wire.Result{
					Outcome: uint8(br.Grant.Outcome),
					Code:    wire.CodeOK,
					Serial:  br.Grant.Serial,
					NewNode: br.Grant.NewNode,
				}
				switch br.Grant.Outcome {
				case controller.Granted:
					grants++
				case controller.Rejected:
					rejects++
				}
			case errors.Is(br.Err, pipeline.ErrClosed):
				r = wire.Result{Code: wire.CodeShutdown}
				errs++
			case errors.Is(br.Err, dist.ErrTerminated):
				r = wire.Result{Code: wire.CodeTerminated}
				errs++
			case errors.Is(br.Err, errWALUnavailable):
				r = wire.Result{Code: wire.CodeInternal}
				errs++
			default:
				r = wire.Result{Code: wire.CodeBadRequest}
				errs++
			}
			res = append(res, r)
		}
		off += n
		buf = wire.AppendResults(buf, id, res)
		*wres = res
	}
	*wbuf = buf

	tn := c.tn
	tn.ops.Add(int64(off))
	tn.grants.Add(grants)
	tn.rejects.Add(rejects)
	tn.errs.Add(errs)

	c.wmu.Lock()
	c.bw.Write(buf) //nolint:errcheck // write errors surface on the next op
	c.bw.Flush()    //nolint:errcheck
	c.wmu.Unlock()

	// First reject observed on the wire for this tenant: announce the wave
	// to every connection bound to it.
	if rejects > 0 && tn.rejectWave.CompareAndSwap(false, true) {
		c.s.broadcastRejectWave(tn, tn.grants.Load())
	}
	return grants, rejects, errs
}

// promSample is one rendered sample line of a family: optional name
// suffix (summary _sum/_count), rendered label set, rendered value.
type promSample struct {
	suffix string
	labels string
	value  string
}

// promFamily is one metric family of the Prometheus text exposition
// format: the HELP/TYPE header plus the family's samples, kept
// consecutive regardless of which tenant contributed them.
type promFamily struct {
	name, typ, help string
	samples         []promSample
}

func (f *promFamily) add(labels, format string, args ...any) {
	f.samples = append(f.samples, promSample{labels: labels, value: fmt.Sprintf(format, args...)})
}

func (f *promFamily) addSuffixed(suffix, labels, format string, args ...any) {
	f.samples = append(f.samples, promSample{suffix: suffix, labels: labels, value: fmt.Sprintf(format, args...)})
}

// promDoc collects families in first-use order and renders the document.
type promDoc struct {
	fams []*promFamily
	idx  map[string]*promFamily
}

func newPromDoc() *promDoc { return &promDoc{idx: map[string]*promFamily{}} }

func (d *promDoc) family(name, typ, help string) *promFamily {
	if f, ok := d.idx[name]; ok {
		return f
	}
	f := &promFamily{name: name, typ: typ, help: help}
	d.fams = append(d.fams, f)
	d.idx[name] = f
	return f
}

func (d *promDoc) write(w io.Writer) {
	for _, f := range d.fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, sm := range f.samples {
			fmt.Fprintf(w, "%s%s%s %s\n", f.name, sm.suffix, sm.labels, sm.value)
		}
	}
}

// addSummary renders one LatencyStats distribution as a summary family's
// quantile/_sum/_count samples in seconds, under the given base labels
// (without the closing brace).
func addSummary(f *promFamily, base string, ls obs.LatencyStats) {
	f.add(base+`,quantile="p50"}`, "%.9f", ls.P50.Seconds())
	f.add(base+`,quantile="p99"}`, "%.9f", ls.P99.Seconds())
	f.add(base+`,quantile="p999"}`, "%.9f", ls.P999.Seconds())
	f.addSuffixed("_sum", base+"}", "%.9f", ls.Sum.Seconds())
	f.addSuffixed("_count", base+"}", "%d", ls.Count)
}

// WriteMetrics renders the /metricsz document in the Prometheus text
// exposition format (version 0.0.4): every family carries HELP and TYPE
// lines, label values are escaped, and samples of a family are grouped —
// process-wide aggregates first, then the per-tenant families with
// {tenant="name"} labels. Every field is documented in docs/OPERATIONS.md
// (enforced by internal/docscheck).
func (s *Server) WriteMetrics(w io.Writer) {
	var ops, grants, rejects, errs, violations, connsOpen, connsTotal int64
	wave, wal := 0, 0
	for _, name := range s.order {
		tn := s.tenants[name]
		ops += tn.ops.Load()
		grants += tn.grants.Load()
		rejects += tn.rejects.Load()
		errs += tn.errs.Load()
		violations += int64(len(s.TenantViolations(name)))
		connsOpen += tn.connsOpen.Load()
		connsTotal += tn.connsTotal.Load()
		if tn.rejectWave.Load() {
			wave = 1
		}
		if tn.eng != nil {
			wal = 1
		}
	}
	paranoid := 0
	if s.cfg.Paranoid {
		paranoid = 1
	}
	uptime, startTime := 0.0, 0.0
	if !s.started.IsZero() {
		// Uptime comes from the monotonic reading time.Since carries;
		// start time is the wall reading of the same instant.
		uptime = time.Since(s.started).Seconds()
		startTime = float64(s.started.UnixNano()) / 1e9
	}

	d := newPromDoc()
	d.family("dynctrld_protocol_version", "gauge",
		"Wire protocol version this daemon speaks.").add("", "%d", wire.Version)
	d.family("dynctrld_build_info", "gauge",
		"Build metadata; always 1, labeled with the Go runtime and wire protocol versions.").
		add(`{go_version="`+obs.EscapeLabel(runtime.Version())+`",wire_version="`+strconv.Itoa(wire.Version)+`"}`, "1")
	d.family("dynctrld_start_time_seconds", "gauge",
		"Unix time Start() bound the listeners, in seconds (0 before Start).").add("", "%.3f", startTime)
	d.family("dynctrld_uptime_seconds", "gauge",
		"Seconds since Start(), from the monotonic clock (0 before Start).").add("", "%.3f", uptime)
	d.family("dynctrld_tenants", "gauge",
		"Number of tenant namespaces served.").add("", "%d", len(s.order))
	d.family("dynctrld_paranoid", "gauge",
		"1 when every submitter is wrapped in the oracle invariant checkers.").add("", "%d", paranoid)
	d.family("dynctrld_wal_enabled", "gauge",
		"1 when at least one tenant runs with a durability engine.").add("", "%d", wal)
	d.family("dynctrld_ops_total", "counter",
		"Requests answered over the wire, all tenants.").add("", "%d", ops)
	d.family("dynctrld_grants_total", "counter",
		"Grant verdicts written to the wire, all tenants.").add("", "%d", grants)
	d.family("dynctrld_rejects_total", "counter",
		"Reject verdicts written to the wire, all tenants.").add("", "%d", rejects)
	d.family("dynctrld_errors_total", "counter",
		"Per-request errors written to the wire, all tenants.").add("", "%d", errs)
	d.family("dynctrld_reject_wave", "gauge",
		"1 once any tenant's reject wave has fired.").add("", "%d", wave)
	d.family("dynctrld_oracle_violations", "gauge",
		"Oracle violations observed so far, all tenants (paranoid mode).").add("", "%d", violations)
	d.family("dynctrld_connections_open", "gauge",
		"Currently bound wire connections, all tenants.").add("", "%d", connsOpen)
	d.family("dynctrld_connections_total", "counter",
		"Wire connections ever bound, all tenants.").add("", "%d", connsTotal)

	for _, name := range s.order {
		s.collectTenantMetrics(d, s.tenants[name])
	}
	d.write(w)
}

// collectTenantMetrics appends one tenant's samples to the document's
// per-tenant families.
func (s *Server) collectTenantMetrics(d *promDoc, tn *tenant) {
	l := `{tenant="` + obs.EscapeLabel(tn.name) + `"}`
	base := `{tenant="` + obs.EscapeLabel(tn.name) + `"`
	ps := tn.pl.Stats()
	snap := tn.ctrs.Snapshot()

	// The runtime is not thread-safe: sample it under the same lock the
	// pipeline leader holds while driving batches.
	tn.guard.mu.Lock()
	transport := tn.rt.Messages()
	var violations int
	if tn.guard.orc != nil {
		violations = len(tn.guard.orc.Violations())
	}
	tn.guard.mu.Unlock()

	wave := 0
	if tn.rejectWave.Load() {
		wave = 1
	}

	d.family("dynctrld_tenant_m", "gauge",
		"Tenant admission contract: maximum permits M.").add(l, "%d", tn.cfg.M)
	d.family("dynctrld_tenant_w", "gauge",
		"Tenant admission contract: guaranteed grants W.").add(l, "%d", tn.cfg.W)
	d.family("dynctrld_tenant_topology_signature", "gauge",
		"Signature of the tenant's initial tree, as sent in Welcome.").add(l, "%d", tn.topoSig)
	d.family("dynctrld_tenant_incarnation", "gauge",
		"Durability incarnation recovered at boot (0 without a WAL).").add(l, "%d", tn.incarnation)

	walOn := 0
	if tn.eng != nil {
		walOn = 1
	}
	d.family("dynctrld_tenant_wal_enabled", "gauge",
		"1 when this tenant logs to a durability engine.").add(l, "%d", walOn)
	if tn.eng != nil {
		es := tn.eng.StatsSnapshot()
		d.family("dynctrld_tenant_wal_appended_records", "counter",
			"WAL records appended this incarnation.").add(l, "%d", es.AppendedRecords)
		d.family("dynctrld_tenant_wal_appended_index", "gauge",
			"Index of the last appended WAL record.").add(l, "%d", es.AppendedIndex)
		d.family("dynctrld_tenant_wal_durable_index", "gauge",
			"Index of the last fsynced WAL record.").add(l, "%d", es.DurableIndex)
		d.family("dynctrld_tenant_wal_fsyncs_total", "counter",
			"Group-commit fsync waves completed.").add(l, "%d", es.Fsyncs)
		d.family("dynctrld_tenant_wal_bytes_written", "counter",
			"Bytes written to WAL segments this incarnation.").add(l, "%d", es.BytesWritten)
		d.family("dynctrld_tenant_wal_segments", "gauge",
			"WAL segment files in the tenant's directory.").add(l, "%d", es.Segments)
		d.family("dynctrld_tenant_wal_snapshots_total", "counter",
			"Snapshots written this incarnation.").add(l, "%d", es.Snapshots)
		d.family("dynctrld_tenant_wal_last_snapshot_index", "gauge",
			"WAL index covered by the latest snapshot.").add(l, "%d", es.LastSnapshotIndex)
		d.family("dynctrld_tenant_wal_recovered_effects", "gauge",
			"Effect records replayed during boot recovery.").add(l, "%d", tn.recoveredEffects)
		d.family("dynctrld_tenant_wal_recovered_truncated_bytes", "gauge",
			"Torn-tail bytes truncated during boot recovery.").add(l, "%d", tn.recoveredTrunc)
	}

	d.family("dynctrld_tenant_ops_total", "counter",
		"Requests answered over the wire for this tenant.").add(l, "%d", tn.ops.Load())
	d.family("dynctrld_tenant_grants_total", "counter",
		"Grant verdicts written to the wire for this tenant.").add(l, "%d", tn.grants.Load())
	d.family("dynctrld_tenant_rejects_total", "counter",
		"Reject verdicts written to the wire for this tenant.").add(l, "%d", tn.rejects.Load())
	d.family("dynctrld_tenant_errors_total", "counter",
		"Per-request errors written to the wire for this tenant.").add(l, "%d", tn.errs.Load())
	d.family("dynctrld_tenant_reject_wave", "gauge",
		"1 once this tenant's reject wave has fired.").add(l, "%d", wave)
	d.family("dynctrld_tenant_reject_wave_granted", "gauge",
		"Grant count announced by this tenant's reject wave.").add(l, "%d", tn.waveGranted.Load())

	d.family("dynctrld_tenant_connections_open", "gauge",
		"Currently bound wire connections.").add(l, "%d", tn.connsOpen.Load())
	d.family("dynctrld_tenant_connections_total", "counter",
		"Wire connections ever bound to this tenant.").add(l, "%d", tn.connsTotal.Load())
	d.family("dynctrld_tenant_idle_timeouts_total", "counter",
		"Connections reaped by the rolling idle deadline.").add(l, "%d", tn.idleTimeouts.Load())

	d.family("dynctrld_tenant_read_batches_total", "counter",
		"Read batches coalesced from connection sockets.").add(l, "%d", tn.readBatches.Load())
	d.family("dynctrld_tenant_read_batch_requests_total", "counter",
		"Requests carried by those read batches.").add(l, "%d", tn.readReqs.Load())
	d.family("dynctrld_tenant_read_batch_max", "gauge",
		"Largest read batch observed.").add(l, "%d", tn.maxRead.Load())
	d.family("dynctrld_tenant_pipeline_batches_total", "counter",
		"Flat-combining leadership cycles driven.").add(l, "%d", ps.Batches)
	d.family("dynctrld_tenant_pipeline_requests_total", "counter",
		"Requests driven through the pipeline.").add(l, "%d", ps.Requests)
	d.family("dynctrld_tenant_pipeline_batch_max", "gauge",
		"Largest combining cycle observed (requests).").add(l, "%d", ps.MaxBatch)

	d.family("dynctrld_tenant_transport_messages_total", "counter",
		"Messages delivered by the tenant's controller transport.").add(l, "%d", transport)
	d.family("dynctrld_tenant_control_messages_total", "counter",
		"Controller control messages (climbs, descents, waves).").add(l, "%d", snap[dist.CounterControl])
	d.family("dynctrld_tenant_ctl_grants_total", "counter",
		"Grants decided by the controller core.").add(l, "%d", snap[stats.CounterGrants])
	d.family("dynctrld_tenant_ctl_rejects_total", "counter",
		"Rejects decided by the controller core.").add(l, "%d", snap[stats.CounterRejects])
	d.family("dynctrld_tenant_topo_changes_total", "counter",
		"Topology changes applied to the tenant's tree.").add(l, "%d", snap[stats.CounterTopoChanges])
	d.family("dynctrld_tenant_tree_nodes", "gauge",
		"Current tree size (nodes).").add(l, "%d", tn.tr.Size())
	d.family("dynctrld_tenant_tree_height", "gauge",
		"Current tree height.").add(l, "%d", tn.tr.Height())
	d.family("dynctrld_tenant_oracle_violations", "gauge",
		"Oracle violations observed for this tenant (paranoid mode).").add(l, "%d", violations)

	if tn.tracer != nil {
		d.family("dynctrld_tenant_traces_total", "counter",
			"Batch traces recorded by the tenant's tracer.").add(l, "%d", tn.tracer.Recorded())
		stageFam := d.family("dynctrld_tenant_stage_seconds", "summary",
			"Server-side batch latency by stage (decode, queue, execute, wal, write, total), seconds.")
		for _, st := range tn.tracer.Snapshot() {
			addSummary(stageFam, base+`,stage="`+st.Stage+`"`, st.LatencyStats)
		}
		addSummary(d.family("dynctrld_tenant_combine_seconds", "summary",
			"Flat-combining leadership cycle duration, seconds."), base, tn.combine.Stats())
		if tn.fsync != nil {
			addSummary(d.family("dynctrld_tenant_fsync_seconds", "summary",
				"WAL group-commit fsync wave duration, seconds."), base, tn.fsync.Stats())
		}
	}
}
