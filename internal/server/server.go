// Package server is the dynctrld daemon: a TCP service exposing an
// (M,W)-Controller's Submit/grant/reject semantics over the wire protocol
// of internal/wire.
//
// The server owns the whole admission stack — tree, message runtime,
// distributed unknown-U controller, batching pipeline — and pushes every
// request arriving on any connection through one dynctrl.Pipeline, so the
// paper's safety invariant (at most M permits granted, ever) is enforced
// across all clients of the socket, not per connection. Two layers of
// batching amortize the protocol overhead under load: each connection
// coalesces the frames already buffered on its socket into one SubmitMany
// run (read-batching), and the pipeline combines runs from all connections
// into controller batches (flat combining).
//
// With a WAL directory configured (Config.WALDir) the daemon is durable:
// every decided batch is appended to the internal/persist write-ahead log
// and a connection's Results frame is not written until the batch's
// records are fsynced — group commit, at most one fsync per SubmitMany
// run, usually amortized over many concurrent runs. On boot the daemon
// recovers: the latest snapshot is restored, the WAL tail is replayed
// (and verified) through a rebuilt controller, and the incarnation counter
// is bumped and surfaced in the Welcome frame and on /metricsz, so the
// (M,W) contract holds across process restarts, not just within one.
//
// In paranoid mode the submitter is additionally wrapped in the
// internal/oracle invariant checkers, so every request served over the
// network is re-checked against the paper's guarantees; violations are
// reported on /metricsz and by Violations(). After a recovery the oracle
// is seeded with the recovered grant totals, so the safety counter keeps
// counting across the restart.
//
// A plain-text /metricsz endpoint (ops, grants, rejects, messages, batch
// sizes) is served over HTTP on a second listener. Shutdown is graceful:
// the listener closes, connection read sides close, in-flight batches are
// drained and answered, and only then does the pipeline shut down.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/oracle"
	"dynctrl/internal/persist"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// DefaultReadBatch bounds how many requests one connection coalesces from
// its socket buffer into a single SubmitMany run.
const DefaultReadBatch = 4096

// Config describes one daemon instance.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7700"; ":0" picks a
	// free port).
	Addr string
	// MetricsAddr is the HTTP listen address of the /metricsz endpoint;
	// empty disables it.
	MetricsAddr string

	// Topology and Seed determine the initial tree, exactly as in the
	// scenario engine: the same (spec, seed) pair always builds the same
	// tree, which is how a remote load generator reconstructs it.
	Topology workload.TopologySpec
	Seed     int64
	// Scheduler names the transport schedule of the controller's message
	// runtime (default "random").
	Scheduler string

	// M and W are the admission contract.
	M, W int64

	// Paranoid wraps the submitter in the internal/oracle invariant
	// checkers: every request served over the wire is re-checked against
	// the (M,W) contract.
	Paranoid bool

	// MaxBatch bounds the pipeline's combining cycles (0 = pipeline
	// default); ReadBatch bounds per-connection read coalescing (0 =
	// DefaultReadBatch).
	MaxBatch  int
	ReadBatch int

	// WALDir enables the durability engine: decided batches are logged to
	// this directory and recovered on boot. Empty runs in-memory only.
	WALDir string
	// SnapshotEvery checkpoints the full controller state every n logged
	// effects (0 = DefaultSnapshotEvery; negative disables automatic
	// checkpoints). A final checkpoint is always written on graceful
	// shutdown.
	SnapshotEvery int64
	// CommitWindow is the group-commit coalescing window (0 =
	// DefaultCommitWindow; negative fsyncs immediately).
	CommitWindow time.Duration
	// Logf receives recovery and durability warnings (default: discard).
	Logf func(format string, args ...any)
}

// DefaultSnapshotEvery is the automatic checkpoint cadence (in logged
// effects) when WALDir is set and SnapshotEvery is zero.
const DefaultSnapshotEvery = 1 << 18

// DefaultCommitWindow is the group-commit coalescing window: batches
// decided within one window of each other share one fsync.
const DefaultCommitWindow = 200 * time.Microsecond

// Server is a running daemon instance.
type Server struct {
	cfg     Config
	tr      *tree.Tree
	rt      sim.Runtime
	ctl     *dist.Dynamic
	pl      *pipeline.Pipeline
	guard   *guardedSubmitter
	ctrs    *stats.Counters
	topoSig uint64
	started time.Time

	// Durability engine state (nil/zero without a WAL).
	eng              *persist.Engine
	incarnation      uint64
	recoveredEffects int
	recoveredTrunc   int64

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Wire-level accounting: what the server actually answered over the
	// network. The controller's own counters (grants, messages, ...) are
	// reported separately on /metricsz; these are the numbers a load
	// generator must reconcile against.
	ops, grants, rejects, errs atomic.Int64
	readBatches, readReqs      atomic.Int64
	maxRead                    atomic.Int64
	connsTotal                 atomic.Int64
	rejectWave                 atomic.Bool
	waveGranted                atomic.Int64
}

// guardedSubmitter serializes controller access (the pipeline leader is
// the only submitter, but /metricsz samples the non-thread-safe runtime
// counters concurrently) and optionally routes every request through the
// oracle. With a durability engine attached it also appends every decided
// batch to the WAL — still under the lock, so log order is execution order
// — and triggers background checkpoints; it does NOT wait for the fsync
// (connections do that before replying), so the pipeline keeps combining
// batches while earlier batches ride out their group commit.
type guardedSubmitter struct {
	mu      sync.Mutex
	sub     controller.BatchSubmitter
	orc     *oracle.Oracle                   // non-nil in paranoid mode
	eng     *persist.Engine                  // non-nil with a WAL
	capture func() *persist.State            // deep state copy for checkpoints
	logf    func(format string, args ...any) // durability warnings
	// dead is set when the WAL can no longer accept records: from then on
	// batches are refused *before* touching the controller, because a
	// grant that cannot be logged would burn the permit budget against a
	// state no recovery can ever reconstruct.
	dead bool

	// tickets maps an in-flight SubmitMany run (identified by the address
	// of its first request — the pipeline hands the caller's slice through
	// unchanged) to the group-commit ticket covering exactly its records,
	// so each connection waits for its own fsync window instead of the
	// engine's append high-water mark (which other connections keep
	// advancing — a convoy).
	tmu     sync.Mutex
	tickets map[*controller.Request]uint64
}

// takeTicket claims (and forgets) the ticket recorded for the run whose
// first request lives at key. ok is false when the run never reached the
// engine — legitimate only for runs that decided nothing (every result an
// error); the caller treats a miss with successful results as a broken
// durability invariant, never as permission to reply early.
func (g *guardedSubmitter) takeTicket(key *controller.Request) (ticket uint64, ok bool) {
	g.tmu.Lock()
	defer g.tmu.Unlock()
	t, ok := g.tickets[key]
	delete(g.tickets, key)
	return t, ok
}

// errWALUnavailable answers requests once the WAL has permanently failed.
var errWALUnavailable = errors.New("server: wal unavailable")

func (g *guardedSubmitter) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dead {
		for range reqs {
			out = append(out, controller.BatchResult{Err: errWALUnavailable})
		}
		return out
	}
	base := len(out)
	if g.orc == nil {
		out = g.sub.SubmitBatch(reqs, out)
	} else {
		for _, req := range reqs {
			gr, err := g.orc.Submit(req)
			out = append(out, controller.BatchResult{Grant: gr, Err: err})
		}
	}
	if g.eng != nil {
		if ticket, err := g.eng.AppendEffects(reqs, out[base:]); err != nil {
			g.dead = true
			g.logf("server: wal append failed, refusing further admissions: %v", err)
		} else if len(reqs) > 0 {
			g.tmu.Lock()
			g.tickets[&reqs[0]] = ticket
			g.tmu.Unlock()
		}
		if g.eng.ShouldCheckpoint() {
			g.eng.CheckpointAsync(g.capture())
		}
	}
	return out
}

// New builds a server over a fresh admission stack — or, when cfg.WALDir
// names a directory with history, over the recovered one: the latest
// snapshot is restored in place, the WAL tail is replayed through the
// rebuilt controller (verifying every logged verdict), and the incarnation
// counter is bumped. Call Start to begin serving.
func New(cfg Config) (*Server, error) {
	if cfg.M < 0 || cfg.W < 0 || cfg.W > cfg.M {
		return nil, fmt.Errorf("server: invalid contract (M=%d, W=%d)", cfg.M, cfg.W)
	}
	if cfg.Topology.Kind == "" {
		cfg.Topology.Kind = "balanced"
	}
	if cfg.Topology.Nodes < 1 {
		cfg.Topology.Nodes = 1
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "random"
	}
	if cfg.ReadBatch < 1 {
		cfg.ReadBatch = DefaultReadBatch
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	tr, _ := tree.New()
	if err := workload.BuildTopology(tr, cfg.Topology, cfg.Seed); err != nil {
		return nil, err
	}
	// The handshake's topology signature always names the *initial* tree
	// (the one a remote load generator can reconstruct from the spec and
	// seed); recovery below may evolve the live tree past it.
	topoSig := workload.TopologySignature(tr)
	rt, err := sim.NewRuntime(cfg.Scheduler, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ctrs := stats.NewCounters()
	ctl := dist.NewDynamic(tr, rt, cfg.M, cfg.W, false, ctrs)

	s := &Server{
		cfg:     cfg,
		tr:      tr,
		rt:      rt,
		ctl:     ctl,
		ctrs:    ctrs,
		topoSig: topoSig,
		conns:   map[*srvConn]struct{}{},
	}

	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.CommitWindow == 0 {
		cfg.CommitWindow = DefaultCommitWindow
	}
	if cfg.WALDir != "" {
		snapEvery := cfg.SnapshotEvery
		if snapEvery < 0 {
			snapEvery = 0
		}
		window := cfg.CommitWindow
		if window < 0 {
			window = 0
		}
		eng, rec, err := persist.Open(cfg.WALDir, persist.Options{
			SnapshotEvery: snapEvery,
			CommitWindow:  window,
			Logf:          cfg.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("server: open wal: %w", err)
		}
		if rec.Snapshot != nil {
			if rec.Snapshot.M != cfg.M || rec.Snapshot.W != cfg.W {
				eng.Close()
				return nil, fmt.Errorf("server: wal snapshot was taken under (M=%d, W=%d), daemon started with (M=%d, W=%d)",
					rec.Snapshot.M, rec.Snapshot.W, cfg.M, cfg.W)
			}
			s.ctl, err = persist.RestoreInto(rec.Snapshot, tr, rt, ctrs)
			if err != nil {
				eng.Close()
				return nil, err
			}
		}
		applied, err := persist.Replay(rec.Tail, s.ctl)
		if err != nil {
			eng.Close()
			return nil, err
		}
		s.eng = eng
		s.incarnation = eng.Incarnation()
		s.recoveredEffects = applied
		s.recoveredTrunc = rec.TruncatedBytes
		if rec.Snapshot != nil || applied > 0 {
			cfg.Logf("server: recovered incarnation %d: snapshot index %d, %d effects replayed, %d torn bytes truncated",
				s.incarnation, s.stateIndexOf(rec.Snapshot), applied, rec.TruncatedBytes)
		}
	}

	guard := &guardedSubmitter{
		sub:     s.ctl,
		eng:     s.eng,
		capture: s.captureState,
		logf:    cfg.Logf,
		tickets: make(map[*controller.Request]uint64),
	}
	if cfg.Paranoid {
		// Seed the oracle with the recovered totals — and every serial the
		// retained history ever granted — so the safety counter and serial
		// uniqueness span incarnations.
		var priorSerials []int64
		if s.eng != nil {
			history, err := persist.ReadHistory(cfg.WALDir)
			if err != nil {
				cfg.Logf("server: reading wal history for the oracle baseline: %v", err)
			}
			for _, sum := range persist.Summaries(history) {
				priorSerials = append(priorSerials, sum.Serials...)
			}
		}
		guard.orc = oracle.Wrap(s.ctl, tr, cfg.M, cfg.W,
			oracle.WithMessages(rt.Messages),
			oracle.WithBaseline(s.ctl.Granted(), ctrs.Get(stats.CounterRejects), priorSerials))
	}
	var opts []pipeline.Option
	if cfg.MaxBatch > 0 {
		opts = append(opts, pipeline.WithMaxBatch(cfg.MaxBatch))
	}
	s.guard = guard
	s.pl = pipeline.New(guard, opts...)
	return s, nil
}

func (s *Server) stateIndexOf(st *persist.State) uint64 {
	if st == nil {
		return 0
	}
	return st.Index
}

// captureState deep-copies the admission stack into a snapshot state.
// Called with guard.mu held (no submission in flight).
func (s *Server) captureState() *persist.State {
	return &persist.State{
		Index:       s.eng.AppendedIndex(),
		Incarnation: s.incarnation,
		M:           s.cfg.M,
		W:           s.cfg.W,
		Tree:        s.tr.Snapshot(),
		Ctl:         s.ctl.State(),
		Counters:    s.ctrs.Snapshot(),
	}
}

// Incarnation returns the durability incarnation (0 without a WAL).
func (s *Server) Incarnation() uint64 { return s.incarnation }

// Start opens the listeners and begins serving. It returns once the
// listeners are bound (serving continues in background goroutines).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	if s.cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.WriteMetrics(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(hln) //nolint:errcheck // closed on shutdown
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound wire-protocol address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// MetricsAddr returns the bound metrics address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TopologySignature returns the signature of the initial tree, as sent in
// the Welcome frame.
func (s *Server) TopologySignature() uint64 { return s.topoSig }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		c := &srvConn{s: s, nc: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 64<<10)}
		s.conns[c] = struct{}{}
		s.connsTotal.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go c.serve()
	}
}

// removeConn drops c from the live set (idempotent).
func (s *Server) removeConn(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// broadcastRejectWave pushes a RejectWave frame to every live connection
// and logs the wave completion to the WAL. Called at most once, by
// whichever connection observed the first reject.
func (s *Server) broadcastRejectWave(granted int64) {
	s.waveGranted.Store(granted)
	if s.eng != nil {
		if _, err := s.eng.AppendWave(granted); err != nil {
			s.cfg.Logf("server: wal wave append failed: %v", err)
		}
	}
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.pushRejectWave(granted)
	}
}

// Shutdown drains the server gracefully: stop accepting, close connection
// read sides (in-flight batches still get their responses), wait for the
// handlers, then close the pipeline and run the oracle's end-of-run checks.
// The context bounds the drain; on expiry remaining connections are cut.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.closeRead()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		for _, c := range conns {
			c.nc.Close()
		}
		<-done
	}

	s.pl.Close()
	s.guard.mu.Lock()
	if s.guard.orc != nil {
		s.guard.orc.Finish()
	}
	if s.eng != nil {
		// Final checkpoint: a graceful restart replays nothing.
		if err := s.eng.Checkpoint(s.captureState()); err != nil {
			s.cfg.Logf("server: final checkpoint failed: %v", err)
		}
	}
	s.guard.mu.Unlock()
	if s.eng != nil {
		if err := s.eng.Close(); err != nil {
			s.cfg.Logf("server: wal close failed: %v", err)
		}
	}

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	return drainErr
}

// Violations returns the oracle violations observed so far (nil when not
// paranoid).
func (s *Server) Violations() []oracle.Violation {
	s.guard.mu.Lock()
	defer s.guard.mu.Unlock()
	if s.guard.orc == nil {
		return nil
	}
	return append([]oracle.Violation(nil), s.guard.orc.Violations()...)
}

// Accounting returns the wire-level tallies: requests answered, grants,
// rejects and per-request errors as written to the network.
func (s *Server) Accounting() (ops, grants, rejects, errs int64) {
	return s.ops.Load(), s.grants.Load(), s.rejects.Load(), s.errs.Load()
}

// TransportMessages samples the controller transport's delivered-message
// count. The runtime is not thread-safe, so the sample is taken under the
// same lock the pipeline leader holds while driving batches.
func (s *Server) TransportMessages() int64 {
	s.guard.mu.Lock()
	defer s.guard.mu.Unlock()
	return s.rt.Messages()
}

// srvConn is one accepted wire-protocol connection.
type srvConn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex // guards bw and the underlying write side
	bw  *bufio.Writer

	readClosed atomic.Bool
}

// closeRead shuts the read side so the serve loop drains out; responses for
// in-flight batches still go to the client.
func (c *srvConn) closeRead() {
	c.readClosed.Store(true)
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.CloseRead() //nolint:errcheck
		return
	}
	// Non-TCP (e.g. in-memory test pipes): fall back to a hard close.
	c.nc.Close()
}

// pushRejectWave writes the async reject-wave notification.
func (c *srvConn) pushRejectWave(granted int64) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf := wire.AppendRejectWave(nil, wire.RejectWave{Granted: granted})
	c.bw.Write(buf) //nolint:errcheck // write errors surface on the conn
	c.bw.Flush()    //nolint:errcheck
}

// fail writes a connection-fatal error frame and gives up on the peer.
func (c *srvConn) fail(code uint8, detail string) {
	c.wmu.Lock()
	c.bw.Write(wire.AppendError(nil, wire.ErrorFrame{Code: code, Detail: detail})) //nolint:errcheck
	c.bw.Flush()                                                                   //nolint:errcheck
	c.wmu.Unlock()
}

func (c *srvConn) serve() {
	defer c.s.wg.Done()
	defer c.s.removeConn(c)
	defer c.nc.Close()

	var rbuf []byte

	// Handshake: exactly one Hello, answered with Welcome.
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	ft, p, err := wire.ReadFrame(c.br, &rbuf)
	if err != nil {
		return
	}
	if ft != wire.FrameHello {
		c.fail(wire.CodeProtocol, fmt.Sprintf("expected hello, got %v", ft))
		return
	}
	hello, err := wire.DecodeHello(p)
	if err != nil {
		c.fail(wire.CodeProtocol, err.Error())
		return
	}
	if hello.Version != wire.Version {
		c.fail(wire.CodeVersion, fmt.Sprintf("server speaks version %d, client sent %d", wire.Version, hello.Version))
		return
	}
	c.nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	c.wmu.Lock()
	c.bw.Write(wire.AppendWelcome(nil, wire.Welcome{ //nolint:errcheck
		Version:     wire.Version,
		M:           c.s.cfg.M,
		W:           c.s.cfg.W,
		TopoSig:     c.s.topoSig,
		Incarnation: c.s.incarnation,
	}))
	if err := c.bw.Flush(); err != nil {
		c.wmu.Unlock()
		return
	}
	c.wmu.Unlock()

	// Request loop with read-batching: each wakeup takes the frame that
	// unblocked the read plus every complete Submit frame already sitting
	// in the socket buffer (up to ReadBatch requests), answers them all
	// through one SubmitMany run, then writes one Results frame per Submit.
	var (
		sub     wire.Submit
		ids     []uint64
		counts  []int
		reqs    []controller.Request
		results []controller.BatchResult
		wbuf    []byte
		wres    []wire.Result
	)
	for {
		ids, counts, reqs = ids[:0], counts[:0], reqs[:0]

		ft, p, err := wire.ReadFrame(c.br, &rbuf)
		if err != nil {
			return // peer closed, shutdown, or read error: drain out
		}
		if ok := c.ingest(ft, p, &sub, &ids, &counts, &reqs); !ok {
			return
		}
		for len(reqs) < c.s.cfg.ReadBatch {
			if !c.completeFrameBuffered() {
				break
			}
			ft, p, err := wire.ReadFrame(c.br, &rbuf)
			if err != nil {
				return
			}
			if ok := c.ingest(ft, p, &sub, &ids, &counts, &reqs); !ok {
				return
			}
		}
		if len(reqs) == 0 {
			if len(ids) > 0 {
				// Empty Submit frames still get their (empty) Results reply:
				// every submitted id is answered, always.
				c.accountAndReply(ids, counts, nil, &wbuf, &wres)
			}
			continue
		}

		n := int64(len(reqs))
		c.s.readBatches.Add(1)
		c.s.readReqs.Add(n)
		if max := c.s.maxRead.Load(); n > max {
			c.s.maxRead.CompareAndSwap(max, n) // best-effort high-water mark
		}

		results, err = c.s.pl.SubmitMany(reqs, results[:0])
		if errors.Is(err, pipeline.ErrClosed) {
			// Admitted after the drain began: answer everything with the
			// shutdown code so the client can tell these were not served.
			results = results[:0]
			for range reqs {
				results = append(results, controller.BatchResult{Err: pipeline.ErrClosed})
			}
		} else if err != nil {
			c.fail(wire.CodeProtocol, err.Error())
			return
		}

		// Group commit: results may not reach the wire before this batch's
		// WAL records are fsynced. The guard recorded the ticket covering
		// exactly this run's records; the pipeline keeps driving other
		// batches while we ride out the fsync. A missing ticket is only
		// legal when the run decided nothing (shutdown/dead-WAL error
		// results) — with any successful result it means the durability
		// chain broke, and the connection dies rather than reply early.
		if eng := c.s.eng; eng != nil {
			ticket, ok := c.s.guard.takeTicket(&reqs[0])
			if !ok {
				for _, br := range results {
					if br.Err == nil {
						c.fail(wire.CodeProtocol, "wal: decided batch has no durability ticket")
						return
					}
				}
			} else if werr := eng.WaitDurable(ticket); werr != nil {
				c.fail(wire.CodeProtocol, fmt.Sprintf("wal: %v", werr))
				return
			}
		}

		c.accountAndReply(ids, counts, results, &wbuf, &wres)
	}
}

// ingest folds one frame into the current read batch. It reports false
// when the connection must be torn down (protocol error).
func (c *srvConn) ingest(ft wire.FrameType, p []byte, sub *wire.Submit,
	ids *[]uint64, counts *[]int, reqs *[]controller.Request) bool {
	if ft != wire.FrameSubmit {
		c.fail(wire.CodeProtocol, fmt.Sprintf("unexpected %v frame", ft))
		return false
	}
	if err := wire.DecodeSubmit(p, sub); err != nil {
		c.fail(wire.CodeProtocol, err.Error())
		return false
	}
	*ids = append(*ids, sub.ID)
	*counts = append(*counts, len(sub.Reqs))
	for _, r := range sub.Reqs {
		*reqs = append(*reqs, controller.Request{Node: r.Node, Kind: r.Kind, Child: r.Child})
	}
	return true
}

// completeFrameBuffered reports whether at least one whole frame sits in
// the read buffer, so reading it cannot block.
func (c *srvConn) completeFrameBuffered() bool {
	if c.br.Buffered() < 4 {
		return false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return false
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n < 1 || n > wire.MaxFrame {
		// Let ReadFrame consume it and report the protocol error.
		return true
	}
	return c.br.Buffered() >= 4+n
}

// accountAndReply updates the wire-level tallies and writes one Results
// frame per submitted frame, in order.
func (c *srvConn) accountAndReply(ids []uint64, counts []int,
	results []controller.BatchResult, wbuf *[]byte, wres *[]wire.Result) {
	var grants, rejects, errs int64
	buf := (*wbuf)[:0]
	off := 0
	for i, id := range ids {
		n := counts[i]
		res := (*wres)[:0]
		for _, br := range results[off : off+n] {
			var r wire.Result
			switch {
			case br.Err == nil:
				r = wire.Result{
					Outcome: uint8(br.Grant.Outcome),
					Code:    wire.CodeOK,
					Serial:  br.Grant.Serial,
					NewNode: br.Grant.NewNode,
				}
				switch br.Grant.Outcome {
				case controller.Granted:
					grants++
				case controller.Rejected:
					rejects++
				}
			case errors.Is(br.Err, pipeline.ErrClosed):
				r = wire.Result{Code: wire.CodeShutdown}
				errs++
			case errors.Is(br.Err, dist.ErrTerminated):
				r = wire.Result{Code: wire.CodeTerminated}
				errs++
			case errors.Is(br.Err, errWALUnavailable):
				r = wire.Result{Code: wire.CodeInternal}
				errs++
			default:
				r = wire.Result{Code: wire.CodeBadRequest}
				errs++
			}
			res = append(res, r)
		}
		off += n
		buf = wire.AppendResults(buf, id, res)
		*wres = res
	}
	*wbuf = buf

	c.s.ops.Add(int64(off))
	c.s.grants.Add(grants)
	c.s.rejects.Add(rejects)
	c.s.errs.Add(errs)

	c.wmu.Lock()
	c.bw.Write(buf) //nolint:errcheck // write errors surface on the next op
	c.bw.Flush()    //nolint:errcheck
	c.wmu.Unlock()

	// First reject observed on the wire: announce the wave to every client.
	if rejects > 0 && c.s.rejectWave.CompareAndSwap(false, true) {
		c.s.broadcastRejectWave(c.s.grants.Load())
	}
}

// WriteMetrics renders the plain-text /metricsz document.
func (s *Server) WriteMetrics(w io.Writer) {
	ps := s.pl.Stats()
	snap := s.ctrs.Snapshot()

	// The runtime is not thread-safe: sample it under the same lock the
	// pipeline leader holds while driving batches.
	s.guard.mu.Lock()
	transport := s.rt.Messages()
	var violations int
	if s.guard.orc != nil {
		violations = len(s.guard.orc.Violations())
	}
	s.guard.mu.Unlock()

	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()

	paranoid := 0
	if s.cfg.Paranoid {
		paranoid = 1
	}
	wave := 0
	if s.rejectWave.Load() {
		wave = 1
	}

	fmt.Fprintf(w, "dynctrld_protocol_version %d\n", wire.Version)
	fmt.Fprintf(w, "dynctrld_uptime_seconds %.3f\n", time.Since(s.started).Seconds())
	fmt.Fprintf(w, "dynctrld_m %d\n", s.cfg.M)
	fmt.Fprintf(w, "dynctrld_w %d\n", s.cfg.W)
	fmt.Fprintf(w, "dynctrld_paranoid %d\n", paranoid)
	fmt.Fprintf(w, "dynctrld_topology_signature %d\n", s.topoSig)
	fmt.Fprintf(w, "dynctrld_incarnation %d\n", s.incarnation)

	if s.eng != nil {
		es := s.eng.StatsSnapshot()
		fmt.Fprintf(w, "dynctrld_wal_enabled 1\n")
		fmt.Fprintf(w, "dynctrld_wal_appended_records %d\n", es.AppendedRecords)
		fmt.Fprintf(w, "dynctrld_wal_appended_index %d\n", es.AppendedIndex)
		fmt.Fprintf(w, "dynctrld_wal_durable_index %d\n", es.DurableIndex)
		fmt.Fprintf(w, "dynctrld_wal_fsyncs_total %d\n", es.Fsyncs)
		fmt.Fprintf(w, "dynctrld_wal_bytes_written %d\n", es.BytesWritten)
		fmt.Fprintf(w, "dynctrld_wal_segments %d\n", es.Segments)
		fmt.Fprintf(w, "dynctrld_wal_snapshots_total %d\n", es.Snapshots)
		fmt.Fprintf(w, "dynctrld_wal_last_snapshot_index %d\n", es.LastSnapshotIndex)
		fmt.Fprintf(w, "dynctrld_wal_recovered_effects %d\n", s.recoveredEffects)
		fmt.Fprintf(w, "dynctrld_wal_recovered_truncated_bytes %d\n", s.recoveredTrunc)
	} else {
		fmt.Fprintf(w, "dynctrld_wal_enabled 0\n")
	}

	fmt.Fprintf(w, "dynctrld_ops_total %d\n", s.ops.Load())
	fmt.Fprintf(w, "dynctrld_grants_total %d\n", s.grants.Load())
	fmt.Fprintf(w, "dynctrld_rejects_total %d\n", s.rejects.Load())
	fmt.Fprintf(w, "dynctrld_errors_total %d\n", s.errs.Load())
	fmt.Fprintf(w, "dynctrld_reject_wave %d\n", wave)
	fmt.Fprintf(w, "dynctrld_reject_wave_granted %d\n", s.waveGranted.Load())

	fmt.Fprintf(w, "dynctrld_connections_open %d\n", open)
	fmt.Fprintf(w, "dynctrld_connections_total %d\n", s.connsTotal.Load())

	fmt.Fprintf(w, "dynctrld_read_batches_total %d\n", s.readBatches.Load())
	fmt.Fprintf(w, "dynctrld_read_batch_requests_total %d\n", s.readReqs.Load())
	fmt.Fprintf(w, "dynctrld_read_batch_max %d\n", s.maxRead.Load())
	fmt.Fprintf(w, "dynctrld_pipeline_batches_total %d\n", ps.Batches)
	fmt.Fprintf(w, "dynctrld_pipeline_requests_total %d\n", ps.Requests)
	fmt.Fprintf(w, "dynctrld_pipeline_batch_max %d\n", ps.MaxBatch)

	fmt.Fprintf(w, "dynctrld_transport_messages_total %d\n", transport)
	fmt.Fprintf(w, "dynctrld_control_messages_total %d\n", snap[dist.CounterControl])
	fmt.Fprintf(w, "dynctrld_ctl_grants_total %d\n", snap[stats.CounterGrants])
	fmt.Fprintf(w, "dynctrld_ctl_rejects_total %d\n", snap[stats.CounterRejects])
	fmt.Fprintf(w, "dynctrld_topo_changes_total %d\n", snap[stats.CounterTopoChanges])
	fmt.Fprintf(w, "dynctrld_tree_nodes %d\n", s.tr.Size())
	fmt.Fprintf(w, "dynctrld_tree_height %d\n", s.tr.Height())
	fmt.Fprintf(w, "dynctrld_oracle_violations %d\n", violations)
}
