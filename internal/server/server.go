// Package server is the dynctrld daemon: a TCP service exposing an
// (M,W)-Controller's Submit/grant/reject semantics over the wire protocol
// of internal/wire.
//
// The server owns the whole admission stack — tree, message runtime,
// distributed unknown-U controller, batching pipeline — and pushes every
// request arriving on any connection through one dynctrl.Pipeline, so the
// paper's safety invariant (at most M permits granted, ever) is enforced
// across all clients of the socket, not per connection. Two layers of
// batching amortize the protocol overhead under load: each connection
// coalesces the frames already buffered on its socket into one SubmitMany
// run (read-batching), and the pipeline combines runs from all connections
// into controller batches (flat combining).
//
// In paranoid mode the submitter is additionally wrapped in the
// internal/oracle invariant checkers, so every request served over the
// network is re-checked against the paper's guarantees; violations are
// reported on /metricsz and by Violations().
//
// A plain-text /metricsz endpoint (ops, grants, rejects, messages, batch
// sizes) is served over HTTP on a second listener. Shutdown is graceful:
// the listener closes, connection read sides close, in-flight batches are
// drained and answered, and only then does the pipeline shut down.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/oracle"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// DefaultReadBatch bounds how many requests one connection coalesces from
// its socket buffer into a single SubmitMany run.
const DefaultReadBatch = 4096

// Config describes one daemon instance.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7700"; ":0" picks a
	// free port).
	Addr string
	// MetricsAddr is the HTTP listen address of the /metricsz endpoint;
	// empty disables it.
	MetricsAddr string

	// Topology and Seed determine the initial tree, exactly as in the
	// scenario engine: the same (spec, seed) pair always builds the same
	// tree, which is how a remote load generator reconstructs it.
	Topology workload.TopologySpec
	Seed     int64
	// Scheduler names the transport schedule of the controller's message
	// runtime (default "random").
	Scheduler string

	// M and W are the admission contract.
	M, W int64

	// Paranoid wraps the submitter in the internal/oracle invariant
	// checkers: every request served over the wire is re-checked against
	// the (M,W) contract.
	Paranoid bool

	// MaxBatch bounds the pipeline's combining cycles (0 = pipeline
	// default); ReadBatch bounds per-connection read coalescing (0 =
	// DefaultReadBatch).
	MaxBatch  int
	ReadBatch int
}

// Server is a running daemon instance.
type Server struct {
	cfg     Config
	tr      *tree.Tree
	rt      sim.Runtime
	ctl     *dist.Dynamic
	pl      *pipeline.Pipeline
	guard   *guardedSubmitter
	ctrs    *stats.Counters
	topoSig uint64
	started time.Time

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Wire-level accounting: what the server actually answered over the
	// network. The controller's own counters (grants, messages, ...) are
	// reported separately on /metricsz; these are the numbers a load
	// generator must reconcile against.
	ops, grants, rejects, errs atomic.Int64
	readBatches, readReqs      atomic.Int64
	maxRead                    atomic.Int64
	connsTotal                 atomic.Int64
	rejectWave                 atomic.Bool
	waveGranted                atomic.Int64
}

// guardedSubmitter serializes controller access (the pipeline leader is
// the only submitter, but /metricsz samples the non-thread-safe runtime
// counters concurrently) and optionally routes every request through the
// oracle.
type guardedSubmitter struct {
	mu  sync.Mutex
	sub controller.BatchSubmitter
	orc *oracle.Oracle // non-nil in paranoid mode
}

func (g *guardedSubmitter) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.orc == nil {
		return g.sub.SubmitBatch(reqs, out)
	}
	for _, req := range reqs {
		gr, err := g.orc.Submit(req)
		out = append(out, controller.BatchResult{Grant: gr, Err: err})
	}
	return out
}

// New builds a server over a fresh admission stack. Call Start to begin
// serving.
func New(cfg Config) (*Server, error) {
	if cfg.M < 0 || cfg.W < 0 || cfg.W > cfg.M {
		return nil, fmt.Errorf("server: invalid contract (M=%d, W=%d)", cfg.M, cfg.W)
	}
	if cfg.Topology.Kind == "" {
		cfg.Topology.Kind = "balanced"
	}
	if cfg.Topology.Nodes < 1 {
		cfg.Topology.Nodes = 1
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "random"
	}
	if cfg.ReadBatch < 1 {
		cfg.ReadBatch = DefaultReadBatch
	}
	tr, _ := tree.New()
	if err := workload.BuildTopology(tr, cfg.Topology, cfg.Seed); err != nil {
		return nil, err
	}
	rt, err := sim.NewRuntime(cfg.Scheduler, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ctrs := stats.NewCounters()
	ctl := dist.NewDynamic(tr, rt, cfg.M, cfg.W, false, ctrs)

	guard := &guardedSubmitter{sub: ctl}
	if cfg.Paranoid {
		guard.orc = oracle.Wrap(ctl, tr, cfg.M, cfg.W, oracle.WithMessages(rt.Messages))
	}
	var opts []pipeline.Option
	if cfg.MaxBatch > 0 {
		opts = append(opts, pipeline.WithMaxBatch(cfg.MaxBatch))
	}
	s := &Server{
		cfg:     cfg,
		tr:      tr,
		rt:      rt,
		ctl:     ctl,
		guard:   guard,
		ctrs:    ctrs,
		pl:      pipeline.New(guard, opts...),
		topoSig: workload.TopologySignature(tr),
		conns:   map[*srvConn]struct{}{},
	}
	return s, nil
}

// Start opens the listeners and begins serving. It returns once the
// listeners are bound (serving continues in background goroutines).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	if s.cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.WriteMetrics(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(hln) //nolint:errcheck // closed on shutdown
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound wire-protocol address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// MetricsAddr returns the bound metrics address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TopologySignature returns the signature of the initial tree, as sent in
// the Welcome frame.
func (s *Server) TopologySignature() uint64 { return s.topoSig }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		c := &srvConn{s: s, nc: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 64<<10)}
		s.conns[c] = struct{}{}
		s.connsTotal.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go c.serve()
	}
}

// removeConn drops c from the live set (idempotent).
func (s *Server) removeConn(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// broadcastRejectWave pushes a RejectWave frame to every live connection.
// Called at most once, by whichever connection observed the first reject.
func (s *Server) broadcastRejectWave(granted int64) {
	s.waveGranted.Store(granted)
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.pushRejectWave(granted)
	}
}

// Shutdown drains the server gracefully: stop accepting, close connection
// read sides (in-flight batches still get their responses), wait for the
// handlers, then close the pipeline and run the oracle's end-of-run checks.
// The context bounds the drain; on expiry remaining connections are cut.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.closeRead()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		for _, c := range conns {
			c.nc.Close()
		}
		<-done
	}

	s.pl.Close()
	s.guard.mu.Lock()
	if s.guard.orc != nil {
		s.guard.orc.Finish()
	}
	s.guard.mu.Unlock()

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	return drainErr
}

// Violations returns the oracle violations observed so far (nil when not
// paranoid).
func (s *Server) Violations() []oracle.Violation {
	s.guard.mu.Lock()
	defer s.guard.mu.Unlock()
	if s.guard.orc == nil {
		return nil
	}
	return append([]oracle.Violation(nil), s.guard.orc.Violations()...)
}

// Accounting returns the wire-level tallies: requests answered, grants,
// rejects and per-request errors as written to the network.
func (s *Server) Accounting() (ops, grants, rejects, errs int64) {
	return s.ops.Load(), s.grants.Load(), s.rejects.Load(), s.errs.Load()
}

// TransportMessages samples the controller transport's delivered-message
// count. The runtime is not thread-safe, so the sample is taken under the
// same lock the pipeline leader holds while driving batches.
func (s *Server) TransportMessages() int64 {
	s.guard.mu.Lock()
	defer s.guard.mu.Unlock()
	return s.rt.Messages()
}

// srvConn is one accepted wire-protocol connection.
type srvConn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex // guards bw and the underlying write side
	bw  *bufio.Writer

	readClosed atomic.Bool
}

// closeRead shuts the read side so the serve loop drains out; responses for
// in-flight batches still go to the client.
func (c *srvConn) closeRead() {
	c.readClosed.Store(true)
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.CloseRead() //nolint:errcheck
		return
	}
	// Non-TCP (e.g. in-memory test pipes): fall back to a hard close.
	c.nc.Close()
}

// pushRejectWave writes the async reject-wave notification.
func (c *srvConn) pushRejectWave(granted int64) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf := wire.AppendRejectWave(nil, wire.RejectWave{Granted: granted})
	c.bw.Write(buf) //nolint:errcheck // write errors surface on the conn
	c.bw.Flush()    //nolint:errcheck
}

// fail writes a connection-fatal error frame and gives up on the peer.
func (c *srvConn) fail(code uint8, detail string) {
	c.wmu.Lock()
	c.bw.Write(wire.AppendError(nil, wire.ErrorFrame{Code: code, Detail: detail})) //nolint:errcheck
	c.bw.Flush()                                                                   //nolint:errcheck
	c.wmu.Unlock()
}

func (c *srvConn) serve() {
	defer c.s.wg.Done()
	defer c.s.removeConn(c)
	defer c.nc.Close()

	var rbuf []byte

	// Handshake: exactly one Hello, answered with Welcome.
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	ft, p, err := wire.ReadFrame(c.br, &rbuf)
	if err != nil {
		return
	}
	if ft != wire.FrameHello {
		c.fail(wire.CodeProtocol, fmt.Sprintf("expected hello, got %v", ft))
		return
	}
	hello, err := wire.DecodeHello(p)
	if err != nil {
		c.fail(wire.CodeProtocol, err.Error())
		return
	}
	if hello.Version != wire.Version {
		c.fail(wire.CodeVersion, fmt.Sprintf("server speaks version %d, client sent %d", wire.Version, hello.Version))
		return
	}
	c.nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	c.wmu.Lock()
	c.bw.Write(wire.AppendWelcome(nil, wire.Welcome{ //nolint:errcheck
		Version: wire.Version,
		M:       c.s.cfg.M,
		W:       c.s.cfg.W,
		TopoSig: c.s.topoSig,
	}))
	if err := c.bw.Flush(); err != nil {
		c.wmu.Unlock()
		return
	}
	c.wmu.Unlock()

	// Request loop with read-batching: each wakeup takes the frame that
	// unblocked the read plus every complete Submit frame already sitting
	// in the socket buffer (up to ReadBatch requests), answers them all
	// through one SubmitMany run, then writes one Results frame per Submit.
	var (
		sub     wire.Submit
		ids     []uint64
		counts  []int
		reqs    []controller.Request
		results []controller.BatchResult
		wbuf    []byte
		wres    []wire.Result
	)
	for {
		ids, counts, reqs = ids[:0], counts[:0], reqs[:0]

		ft, p, err := wire.ReadFrame(c.br, &rbuf)
		if err != nil {
			return // peer closed, shutdown, or read error: drain out
		}
		if ok := c.ingest(ft, p, &sub, &ids, &counts, &reqs); !ok {
			return
		}
		for len(reqs) < c.s.cfg.ReadBatch {
			if !c.completeFrameBuffered() {
				break
			}
			ft, p, err := wire.ReadFrame(c.br, &rbuf)
			if err != nil {
				return
			}
			if ok := c.ingest(ft, p, &sub, &ids, &counts, &reqs); !ok {
				return
			}
		}
		if len(reqs) == 0 {
			if len(ids) > 0 {
				// Empty Submit frames still get their (empty) Results reply:
				// every submitted id is answered, always.
				c.accountAndReply(ids, counts, nil, &wbuf, &wres)
			}
			continue
		}

		n := int64(len(reqs))
		c.s.readBatches.Add(1)
		c.s.readReqs.Add(n)
		if max := c.s.maxRead.Load(); n > max {
			c.s.maxRead.CompareAndSwap(max, n) // best-effort high-water mark
		}

		results, err = c.s.pl.SubmitMany(reqs, results[:0])
		if errors.Is(err, pipeline.ErrClosed) {
			// Admitted after the drain began: answer everything with the
			// shutdown code so the client can tell these were not served.
			results = results[:0]
			for range reqs {
				results = append(results, controller.BatchResult{Err: pipeline.ErrClosed})
			}
		} else if err != nil {
			c.fail(wire.CodeProtocol, err.Error())
			return
		}

		c.accountAndReply(ids, counts, results, &wbuf, &wres)
	}
}

// ingest folds one frame into the current read batch. It reports false
// when the connection must be torn down (protocol error).
func (c *srvConn) ingest(ft wire.FrameType, p []byte, sub *wire.Submit,
	ids *[]uint64, counts *[]int, reqs *[]controller.Request) bool {
	if ft != wire.FrameSubmit {
		c.fail(wire.CodeProtocol, fmt.Sprintf("unexpected %v frame", ft))
		return false
	}
	if err := wire.DecodeSubmit(p, sub); err != nil {
		c.fail(wire.CodeProtocol, err.Error())
		return false
	}
	*ids = append(*ids, sub.ID)
	*counts = append(*counts, len(sub.Reqs))
	for _, r := range sub.Reqs {
		*reqs = append(*reqs, controller.Request{Node: r.Node, Kind: r.Kind, Child: r.Child})
	}
	return true
}

// completeFrameBuffered reports whether at least one whole frame sits in
// the read buffer, so reading it cannot block.
func (c *srvConn) completeFrameBuffered() bool {
	if c.br.Buffered() < 4 {
		return false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return false
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n < 1 || n > wire.MaxFrame {
		// Let ReadFrame consume it and report the protocol error.
		return true
	}
	return c.br.Buffered() >= 4+n
}

// accountAndReply updates the wire-level tallies and writes one Results
// frame per submitted frame, in order.
func (c *srvConn) accountAndReply(ids []uint64, counts []int,
	results []controller.BatchResult, wbuf *[]byte, wres *[]wire.Result) {
	var grants, rejects, errs int64
	buf := (*wbuf)[:0]
	off := 0
	for i, id := range ids {
		n := counts[i]
		res := (*wres)[:0]
		for _, br := range results[off : off+n] {
			var r wire.Result
			switch {
			case br.Err == nil:
				r = wire.Result{
					Outcome: uint8(br.Grant.Outcome),
					Code:    wire.CodeOK,
					Serial:  br.Grant.Serial,
					NewNode: br.Grant.NewNode,
				}
				switch br.Grant.Outcome {
				case controller.Granted:
					grants++
				case controller.Rejected:
					rejects++
				}
			case errors.Is(br.Err, pipeline.ErrClosed):
				r = wire.Result{Code: wire.CodeShutdown}
				errs++
			case errors.Is(br.Err, dist.ErrTerminated):
				r = wire.Result{Code: wire.CodeTerminated}
				errs++
			default:
				r = wire.Result{Code: wire.CodeBadRequest}
				errs++
			}
			res = append(res, r)
		}
		off += n
		buf = wire.AppendResults(buf, id, res)
		*wres = res
	}
	*wbuf = buf

	c.s.ops.Add(int64(off))
	c.s.grants.Add(grants)
	c.s.rejects.Add(rejects)
	c.s.errs.Add(errs)

	c.wmu.Lock()
	c.bw.Write(buf) //nolint:errcheck // write errors surface on the next op
	c.bw.Flush()    //nolint:errcheck
	c.wmu.Unlock()

	// First reject observed on the wire: announce the wave to every client.
	if rejects > 0 && c.s.rejectWave.CompareAndSwap(false, true) {
		c.s.broadcastRejectWave(c.s.grants.Load())
	}
}

// WriteMetrics renders the plain-text /metricsz document.
func (s *Server) WriteMetrics(w io.Writer) {
	ps := s.pl.Stats()
	snap := s.ctrs.Snapshot()

	// The runtime is not thread-safe: sample it under the same lock the
	// pipeline leader holds while driving batches.
	s.guard.mu.Lock()
	transport := s.rt.Messages()
	var violations int
	if s.guard.orc != nil {
		violations = len(s.guard.orc.Violations())
	}
	s.guard.mu.Unlock()

	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()

	paranoid := 0
	if s.cfg.Paranoid {
		paranoid = 1
	}
	wave := 0
	if s.rejectWave.Load() {
		wave = 1
	}

	fmt.Fprintf(w, "dynctrld_protocol_version %d\n", wire.Version)
	fmt.Fprintf(w, "dynctrld_uptime_seconds %.3f\n", time.Since(s.started).Seconds())
	fmt.Fprintf(w, "dynctrld_m %d\n", s.cfg.M)
	fmt.Fprintf(w, "dynctrld_w %d\n", s.cfg.W)
	fmt.Fprintf(w, "dynctrld_paranoid %d\n", paranoid)
	fmt.Fprintf(w, "dynctrld_topology_signature %d\n", s.topoSig)

	fmt.Fprintf(w, "dynctrld_ops_total %d\n", s.ops.Load())
	fmt.Fprintf(w, "dynctrld_grants_total %d\n", s.grants.Load())
	fmt.Fprintf(w, "dynctrld_rejects_total %d\n", s.rejects.Load())
	fmt.Fprintf(w, "dynctrld_errors_total %d\n", s.errs.Load())
	fmt.Fprintf(w, "dynctrld_reject_wave %d\n", wave)
	fmt.Fprintf(w, "dynctrld_reject_wave_granted %d\n", s.waveGranted.Load())

	fmt.Fprintf(w, "dynctrld_connections_open %d\n", open)
	fmt.Fprintf(w, "dynctrld_connections_total %d\n", s.connsTotal.Load())

	fmt.Fprintf(w, "dynctrld_read_batches_total %d\n", s.readBatches.Load())
	fmt.Fprintf(w, "dynctrld_read_batch_requests_total %d\n", s.readReqs.Load())
	fmt.Fprintf(w, "dynctrld_read_batch_max %d\n", s.maxRead.Load())
	fmt.Fprintf(w, "dynctrld_pipeline_batches_total %d\n", ps.Batches)
	fmt.Fprintf(w, "dynctrld_pipeline_requests_total %d\n", ps.Requests)
	fmt.Fprintf(w, "dynctrld_pipeline_batch_max %d\n", ps.MaxBatch)

	fmt.Fprintf(w, "dynctrld_transport_messages_total %d\n", transport)
	fmt.Fprintf(w, "dynctrld_control_messages_total %d\n", snap[dist.CounterControl])
	fmt.Fprintf(w, "dynctrld_ctl_grants_total %d\n", snap[stats.CounterGrants])
	fmt.Fprintf(w, "dynctrld_ctl_rejects_total %d\n", snap[stats.CounterRejects])
	fmt.Fprintf(w, "dynctrld_topo_changes_total %d\n", snap[stats.CounterTopoChanges])
	fmt.Fprintf(w, "dynctrld_tree_nodes %d\n", s.tr.Size())
	fmt.Fprintf(w, "dynctrld_tree_height %d\n", s.tr.Height())
	fmt.Fprintf(w, "dynctrld_oracle_violations %d\n", violations)
}
