package server_test

import (
	"context"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/server"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

// benchFanin replays the benchjson fan-in workload shape (many
// connections, chunked submits) against a loopback daemon with the given
// trace-ring setting, so the observability tax can be measured and
// profiled in isolation rather than through the full benchjson suite.
func benchFanin(b *testing.B, traceRing int) {
	const (
		nodes   = 256
		conns   = 64
		streams = 128
		perStr  = 2048
		chunk   = 128
	)
	srv, err := server.New(server.Config{
		Addr:      "127.0.0.1:0",
		Topology:  workload.TopologySpec{Kind: "balanced", Nodes: nodes},
		Seed:      1,
		M:         int64(streams*perStr) * int64(b.N+1) * 2,
		W:         int64(streams*perStr) * int64(b.N+1),
		TraceRing: traceRing,
	})
	if err != nil {
		b.Fatalf("server.New: %v", err)
	}
	if err := srv.Start(); err != nil {
		b.Fatalf("server.Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	cl, err := client.Dial(srv.Addr(), client.Options{Conns: conns})
	if err != nil {
		b.Fatalf("client.Dial: %v", err)
	}
	defer cl.Close()
	tr, _ := tree.New()
	if err := workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: nodes}, 1); err != nil {
		b.Fatalf("topology: %v", err)
	}
	ct, err := workload.NewConcurrentTrace(tr, streams, perStr, workload.EventOnlyConcurrentMix(), 42)
	if err != nil {
		b.Fatalf("trace: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := workload.RunConcurrentChunked(cl, ct, chunk)
		if res.Errors > 0 {
			b.Fatalf("run: %d request errors", res.Errors)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(streams*perStr*b.N)/b.Elapsed().Seconds(), "reqs/s")
}

func BenchmarkFaninTraced(b *testing.B)   { benchFanin(b, 0) }
func BenchmarkFaninUntraced(b *testing.B) { benchFanin(b, -1) }
