package server_test

// The hostile-network end-to-end harness: every workload.HostileCatalog
// scenario is driven against a live (paranoid) daemon through an
// internal/faultnet proxy, and the run must prove at-most-once grant
// semantics and exact accounting no matter what the fault schedule did —
// client-observed verdicts bounded by server-answered verdicts, answered
// grants bounded by controller executions, executions bounded by M, grant
// serials never delivered twice, the daemon's own paranoid oracle clean,
// /metricsz reconciled, and (for the WAL scenarios) the on-disk history
// passing the cross-incarnation audit after a mid-run crash + recovery.

import (
	"bytes"
	"context"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/faultnet"
	"dynctrl/internal/oracle"
	"dynctrl/internal/persist"
	"dynctrl/internal/server"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

func hostileConfig(sc workload.HostileScenario, walDir string, logf func(string, ...any)) server.Config {
	cfg := server.Config{
		Addr:     "127.0.0.1:0",
		Topology: sc.Topology,
		Seed:     sc.Seed,
		M:        sc.M, W: sc.W,
		Paranoid:         true,
		IdleTimeout:      sc.IdleTimeout,
		HandshakeTimeout: sc.HandshakeTimeout,
		Logf:             logf,
	}
	if sc.WAL {
		cfg.WALDir = walDir
	}
	return cfg
}

func bootHostileServer(t *testing.T, sc workload.HostileScenario, walDir string) *server.Server {
	t.Helper()
	s, err := server.New(hostileConfig(sc, walDir, t.Logf))
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	return s
}

// hostileRun accumulates one run's client-side observations.
type hostileRun struct {
	client     oracle.WireTally
	serials    []int64
	unanswered [][]controller.Request
	dialFaults int
}

// driveChunked plays reqs through cl in chunk-sized runs, folding every
// answered verdict into tally (and granted serials into serials), and
// returns the unanswered remainder — everything from the first failed run
// on. A failed run's requests may or may not have executed server-side;
// the client never retries them itself (at-most-once), the caller decides
// whether to model a retrying application.
func driveChunked(cl *client.Client, reqs []controller.Request, chunk int,
	tally *oracle.WireTally, serials *[]int64) []controller.Request {
	for off := 0; off < len(reqs); off += chunk {
		end := off + chunk
		if end > len(reqs) {
			end = len(reqs)
		}
		out, err := cl.SubmitMany(reqs[off:end], nil)
		if err != nil {
			return reqs[off:]
		}
		for _, br := range out {
			tally.Ops++
			switch {
			case br.Err != nil:
				tally.Errors++
			case br.Grant.Outcome == controller.Granted:
				tally.Granted++
				if br.Grant.Serial != 0 {
					*serials = append(*serials, br.Grant.Serial)
				}
			default:
				tally.Rejected++
			}
		}
	}
	return nil
}

// driveFaulted dials one single-connection client per scenario connection
// through the proxy — sequentially, so connection ordinals equal dial
// order and the fault schedule is reproducible — then drives every
// connection's trace slice concurrently in chunk-sized runs.
func driveFaulted(t *testing.T, sc workload.HostileScenario, p *faultnet.Proxy,
	slices [][]controller.Request) hostileRun {
	t.Helper()
	run := hostileRun{unanswered: make([][]controller.Request, sc.Conns)}
	clients := make([]*client.Client, sc.Conns)
	for i := 0; i < sc.Conns; i++ {
		cl, err := client.Dial(p.Addr(), client.Options{
			Conns:        1,
			WriteTimeout: sc.WriteTimeout,
			DialTimeout:  30 * time.Second,
		})
		if err != nil {
			t.Logf("conn %d: dial faulted (expected under this schedule): %v", i, err)
			run.dialFaults++
			run.unanswered[i] = slices[i]
		} else {
			clients[i] = cl
			t.Cleanup(func() { cl.Close() })
		}
		// The proxy must have registered this connection before the next
		// dial, or ordinals would race.
		deadline := time.Now().Add(10 * time.Second)
		for p.Conns() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("proxy never saw conn %d", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	type connResult struct {
		tally   oracle.WireTally
		serials []int64
		rest    []controller.Request
	}
	results := make([]connResult, sc.Conns)
	var wg sync.WaitGroup
	for i, cl := range clients {
		if cl == nil {
			continue
		}
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			r := &results[i]
			r.rest = driveChunked(cl, slices[i], sc.Chunk, &r.tally, &r.serials)
		}(i, cl)
	}
	wg.Wait()
	for i := range results {
		run.client.Ops += results[i].tally.Ops
		run.client.Granted += results[i].tally.Granted
		run.client.Rejected += results[i].tally.Rejected
		run.client.Errors += results[i].tally.Errors
		run.serials = append(run.serials, results[i].serials...)
		if len(results[i].rest) > 0 {
			run.unanswered[i] = results[i].rest
		}
	}
	return run
}

// runHostile executes one scenario end to end and fails the test on any
// broken invariant.
func runHostile(t *testing.T, sc workload.HostileScenario, walDir string) {
	t.Helper()
	_, slices, err := sc.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}

	s := bootHostileServer(t, sc, walDir)
	p, err := faultnet.Start(faultnet.Config{
		Upstream: s.Addr(), Seed: sc.Seed, Rules: sc.Faults, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("faultnet.Start: %v", err)
	}
	t.Cleanup(func() { p.Close() })

	run := driveFaulted(t, sc, p, slices)
	if run.dialFaults != sc.ExpectDialFaults {
		t.Fatalf("%d dials faulted, scenario expects %d", run.dialFaults, sc.ExpectDialFaults)
	}
	t.Logf("faulted phase: %+v, fault events:\n%s", run.client, faultnet.FormatEvents(p.Events()))

	// The server's side of the ledger, summed across incarnations when the
	// scenario crashes + recovers the daemon mid-run.
	var serverTally oracle.WireTally
	var executed int64
	final := s
	if sc.WAL {
		s.CrashForTests()
		ops, grants, rejects, errs := s.Accounting()
		serverTally = oracle.WireTally{Ops: ops, Granted: grants, Rejected: rejects, Errors: errs}
		executed = s.ControllerGranted()

		final = bootHostileServer(t, sc, walDir)
		if got := final.Incarnation(); got != 2 {
			t.Fatalf("recovery boot incarnation %d, want 2", got)
		}
		// The recovered incarnation starts with replayed controller state
		// but fresh wire tallies; only its deltas are added below.
		bootOps, bootGrants, bootRejects, bootErrs := final.Accounting()
		bootExec := final.ControllerGranted()
		serverTally.Ops -= bootOps // normally zero; stay exact regardless
		serverTally.Granted -= bootGrants
		serverTally.Rejected -= bootRejects
		serverTally.Errors -= bootErrs
		executed -= bootExec
	}

	if sc.Recover {
		// The retrying-application model: every connection's unanswered
		// remainder is resubmitted over a clean network. Requests whose
		// first attempt executed server-side may burn permits again — the
		// containment chain tolerates that; double-*delivery* it does not.
		for i, rest := range run.unanswered {
			if len(rest) == 0 {
				continue
			}
			cl, err := client.Dial(final.Addr(), client.Options{Conns: 1})
			if err != nil {
				t.Fatalf("conn %d: recovery dial: %v", i, err)
			}
			left := driveChunked(cl, rest, sc.Chunk, &run.client, &run.serials)
			cl.Close()
			if left != nil {
				t.Fatalf("conn %d: resubmission failed over a clean network (%d requests left)", i, len(left))
			}
		}
	}

	ops, grants, rejects, errs := final.Accounting()
	serverTally.Ops += ops
	serverTally.Granted += grants
	serverTally.Rejected += rejects
	serverTally.Errors += errs
	executed += final.ControllerGranted()

	report := oracle.AtMostOnceReport{
		Tenant:   wire.DefaultTenant,
		M:        sc.M,
		Client:   run.client,
		Server:   serverTally,
		Executed: executed,
	}
	violations := oracle.CheckAtMostOnce(report)
	violations = append(violations, oracle.CheckSerialsUnique(run.serials)...)
	if len(violations) != 0 {
		t.Fatalf("at-most-once violations: %v (report %+v)", violations, report)
	}
	if pv := final.Violations(); len(pv) != 0 {
		t.Fatalf("paranoid oracle violations: %v", pv)
	}

	// The final incarnation's /metricsz must agree with its accounting.
	reconcileMetrics(t, final)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := final.Shutdown(ctx); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}

	if sc.WAL {
		sums, walViolations, err := persist.VerifyDir(filepath.Join(walDir, wire.DefaultTenant), sc.M)
		if err != nil {
			t.Fatalf("VerifyDir: %v", err)
		}
		if len(walViolations) != 0 {
			t.Fatalf("cross-incarnation violations: %v", walViolations)
		}
		if len(sums) != 2 {
			t.Fatalf("%d incarnations in the WAL history, want 2", len(sums))
		}
	}
}

// reconcileMetrics parses the daemon's /metricsz text and requires the
// default tenant's wire accounting and oracle-violation count to match
// the in-process view exactly.
func reconcileMetrics(t *testing.T, s *server.Server) {
	t.Helper()
	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	fields := map[string]int64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		name, value, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(value, 10, 64); err == nil {
			fields[name] = v
		}
	}
	ops, grants, rejects, errs := s.Accounting()
	l := `{tenant="` + wire.DefaultTenant + `"}`
	for _, c := range []struct {
		name string
		want int64
	}{
		{"dynctrld_tenant_ops_total" + l, ops},
		{"dynctrld_tenant_grants_total" + l, grants},
		{"dynctrld_tenant_rejects_total" + l, rejects},
		{"dynctrld_tenant_errors_total" + l, errs},
		{"dynctrld_tenant_oracle_violations" + l, 0},
	} {
		got, ok := fields[c.name]
		if !ok {
			t.Fatalf("metricsz lacks %s", c.name)
		}
		if got != c.want {
			t.Fatalf("metricsz %s = %d, in-process view %d", c.name, got, c.want)
		}
	}
}

// TestHostileScenarioSweep runs the whole hostile-network catalog.
func TestHostileScenarioSweep(t *testing.T) {
	for _, sc := range workload.HostileCatalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			runHostile(t, sc, t.TempDir())
		})
	}
}

// TestHostileFaultScheduleReproducible runs one scenario's faulted phase
// twice — fresh server, fresh proxy, same (scenario, seed) — and
// requires byte-identical fault event logs. dup-results exercises the
// probabilistic rule path, the strongest determinism claim.
func TestHostileFaultScheduleReproducible(t *testing.T) {
	sc, err := workload.HostileScenarioByName("dup-results")
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]string, 2)
	for i := range logs {
		_, slices, err := sc.Trace()
		if err != nil {
			t.Fatalf("Trace: %v", err)
		}
		s := bootHostileServer(t, sc, "")
		p, err := faultnet.Start(faultnet.Config{
			Upstream: s.Addr(), Seed: sc.Seed, Rules: sc.Faults, Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("faultnet.Start: %v", err)
		}
		driveFaulted(t, sc, p, slices)
		logs[i] = faultnet.FormatEvents(p.Events())
		p.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.Shutdown(ctx) //nolint:errcheck
		cancel()
	}
	if logs[0] == "" {
		t.Fatal("no fault events fired; the schedule did nothing")
	}
	if logs[0] != logs[1] {
		t.Fatalf("fault event logs differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			logs[0], logs[1])
	}
}
