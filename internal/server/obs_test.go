package server

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goVersionRe normalizes the one environment-dependent label in the
// exposition so the golden files are stable across toolchains.
var goVersionRe = regexp.MustCompile(`go_version="[^"]*"`)

// renderMetrics builds a server (without starting it, so start-time and
// uptime stay deterministically zero), renders /metricsz once and tears
// the tenant stacks down.
func renderMetrics(t *testing.T, cfg Config) string {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.closeTenants()
	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	return goVersionRe.ReplaceAllString(buf.String(), `go_version="GOVERSION"`)
}

// TestWriteMetricsGolden pins the full Prometheus exposition byte for
// byte: family grouping, HELP/TYPE lines, label escaping and the
// per-tenant sample set, for a two-tenant daemon with and without the
// durability engine. Regenerate with `go test ./internal/server -run
// Golden -update` after intentionally changing the exposition.
func TestWriteMetricsGolden(t *testing.T) {
	tenants := []TenantConfig{
		{Name: "default", Topology: workload.TopologySpec{Kind: "balanced", Nodes: 8}, Seed: 3, M: 500, W: 50},
		{Name: "blue", Topology: workload.TopologySpec{Kind: "star", Nodes: 4}, Seed: 7, M: 100, W: 10},
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"nowal", Config{Tenants: tenants}},
		{"wal", Config{Tenants: tenants, WALDir: t.TempDir(), CommitWindow: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := renderMetrics(t, tc.cfg)
			golden := filepath.Join("testdata", "metrics_"+tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (rerun with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("metrics exposition diverged from %s (rerun with -update if intentional):\ngot:\n%s",
					golden, got)
			}
		})
	}
}

// TestMetricsExpositionShape checks the exposition rules the golden files
// cannot see changing: every sample belongs to a family that declared
// # HELP and # TYPE before it, families are contiguous, and label values
// with exposition metacharacters are escaped.
func TestMetricsExpositionShape(t *testing.T) {
	text := renderMetrics(t, Config{Tenants: []TenantConfig{
		{Name: "default", Topology: workload.TopologySpec{Kind: "balanced", Nodes: 8}, Seed: 1, M: 100, W: 10},
	}})
	helped := map[string]bool{}
	typed := map[string]bool{}
	seen := map[string]bool{}
	last := ""
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.SplitN(rest, " ", 2)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.SplitN(rest, " ", 2)[0]] = true
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !helped[fam] && !helped[name] {
			t.Errorf("line %d: sample %q has no # HELP", ln+1, name)
		}
		if !typed[fam] && !typed[name] {
			t.Errorf("line %d: sample %q has no # TYPE", ln+1, name)
		}
		if fam != last && seen[fam] {
			t.Errorf("line %d: family %q is not contiguous", ln+1, fam)
		}
		seen[fam] = true
		last = fam
	}
	if len(seen) < 20 {
		t.Fatalf("only %d metric families rendered; exposition looks truncated:\n%s", len(seen), text)
	}
}

// TestMetricsLabelEscaping: a tenant name carrying exposition
// metacharacters must come out escaped, not raw.
func TestMetricsLabelEscaping(t *testing.T) {
	// wire.ValidTenant refuses such names at the config boundary, so forge
	// one after construction: WriteMetrics must never emit a malformed
	// exposition whatever the name is.
	s := &Server{
		cfg:     Config{},
		tenants: map[string]*tenant{},
	}
	name := `qu"ote\back`
	tn, err := newTenant(TenantConfig{
		Name:     "default",
		Topology: workload.TopologySpec{Kind: "star", Nodes: 4},
		Seed:     1, M: 10, W: 1,
	}, Config{ReadBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	tn.name = name
	s.tenants[name] = tn
	s.order = []string{name}
	defer s.closeTenants()

	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), `tenant="qu\"ote\\back"`) {
		t.Errorf("label not escaped:\n%s", buf.String())
	}
}

// TestTracezEndpoint drives traffic through a traced server and checks
// the /tracez document: stage digest, slowest and most-recent tables,
// the tenant filter and the n cap.
func TestTracezEndpoint(t *testing.T) {
	s := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Topology:    workload.TopologySpec{Kind: "balanced", Nodes: 8},
		Seed:        3, M: 500, W: 50,
	})
	cl, err := client.Dial(s.Addr(), client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 8}, 3) //nolint:errcheck
	for i := 0; i < 10; i++ {
		if _, err := cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", s.MetricsAddr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d err %v", path, resp.StatusCode, err)
		}
		return string(body)
	}

	text := get("/tracez")
	for _, want := range []string{
		`== tenant "default" ==`,
		"traces recorded: 10",
		"stage latency (server-side):",
		"slowest 16 batches:",
		"most recent 16 batches:",
		"execute",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/tracez missing %q:\n%s", want, text)
		}
	}
	if got := get("/tracez?tenant=absent"); strings.Contains(got, "== tenant") {
		t.Errorf("/tracez?tenant=absent rendered a tenant:\n%s", got)
	}
	if got := get("/tracez?n=2"); !strings.Contains(got, "slowest 2 batches:") {
		t.Errorf("/tracez?n=2 ignored the cap:\n%s", got)
	}

	// The stage histograms behind /metricsz saw the same batches.
	stats := s.TenantStageStats("default")
	if stats == nil {
		t.Fatal("TenantStageStats returned nil for a traced tenant")
	}
	var total int64
	for _, st := range stats {
		if st.Stage == "total" {
			total = st.Count
		}
	}
	if total != 10 {
		t.Errorf("total stage count = %d, want 10", total)
	}
}

// TestTraceRingDisabled: a negative TraceRing turns the whole layer off —
// nil tracers, no stage samples on /metricsz, and /tracez says so.
func TestTraceRingDisabled(t *testing.T) {
	s := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Topology:    workload.TopologySpec{Kind: "balanced", Nodes: 8},
		Seed:        3, M: 500, W: 50, TraceRing: -1,
	})
	cl, err := client.Dial(s.Addr(), client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 8}, 3) //nolint:errcheck
	if _, err := cl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	if got := s.TenantStageStats("default"); got != nil {
		t.Errorf("TenantStageStats = %v with tracing disabled", got)
	}
	var buf bytes.Buffer
	s.WriteTraces(&buf, "", 4)
	if !strings.Contains(buf.String(), "tracing disabled") {
		t.Errorf("/tracez with tracing disabled:\n%s", buf.String())
	}
	buf.Reset()
	s.WriteMetrics(&buf)
	if strings.Contains(buf.String(), "dynctrld_tenant_stage_seconds") {
		t.Error("stage histograms exported with tracing disabled")
	}
	if !strings.Contains(buf.String(), "dynctrld_tenant_ops_total") {
		t.Error("base accounting missing with tracing disabled")
	}
}

// TestPprofGate: the profiling endpoints exist only when Config.Pprof is
// set.
func TestPprofGate(t *testing.T) {
	status := func(s *Server) int {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", s.MetricsAddr()))
		if err != nil {
			t.Fatalf("GET pprof: %v", err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	off := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Topology:    workload.TopologySpec{Kind: "star", Nodes: 4}, M: 10, W: 1,
	})
	if got := status(off); got != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", got)
	}
	on := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Topology:    workload.TopologySpec{Kind: "star", Nodes: 4}, M: 10, W: 1, Pprof: true,
	})
	if got := status(on); got != http.StatusOK {
		t.Errorf("pprof with -pprof: status %d, want 200", got)
	}
}

// TestScrapeUnderLoad races the observability read paths (/metricsz,
// /tracez) against a live submit storm — the lock-free ring publish, the
// slowest-N heap and the histogram folds must hold up under the race
// detector while being scraped.
func TestScrapeUnderLoad(t *testing.T) {
	s := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Topology:    workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:        1, M: 1 << 30, W: 1 << 29,
	})
	cl, err := client.Dial(s.Addr(), client.Options{Conns: 4})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 16}, 1) //nolint:errcheck
	root := tr.Root()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := make([]controller.Request, 8)
			for i := range reqs {
				reqs[i] = controller.Request{Node: root, Kind: tree.None}
			}
			var out []controller.BatchResult
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := cl.SubmitMany(reqs, out[:0])
				if err != nil {
					return
				}
				out = res
			}
		}()
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, path := range []string{"/metricsz", "/tracez?n=4"} {
			resp, err := http.Get(fmt.Sprintf("http://%s%s", s.MetricsAddr(), path))
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d err %v", path, resp.StatusCode, err)
			}
			if len(body) == 0 {
				t.Fatalf("GET %s: empty body", path)
			}
		}
	}
	close(stop)
	wg.Wait()

	// The scrape raced real traffic; the histograms must have kept count.
	if got := s.TenantStageStats("default"); got == nil || got[len(got)-1].Count == 0 {
		t.Errorf("no stage samples recorded under load: %v", got)
	}
}
