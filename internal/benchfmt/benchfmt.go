// Package benchfmt is the shared schema of the repository's benchmark
// artifacts: cmd/benchjson (the pinned in-process workload) and cmd/loadgen
// (the wire-protocol load generator) both emit a Report, and CI's
// perf-smoke job compares Reports against the committed BENCH_baseline.json
// with CompareBaseline.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion identifies the Report layout. Bump it when changing the
// pinned workloads or the measurement fields, and refresh
// BENCH_baseline.json. Schema 2 added the scenario/scheduler labels;
// schema 3 added the transport dimension (inproc vs tcp) when the service
// boundary landed; schema 4 added the durability dimension (none | wal |
// wal+snap) with the write-ahead-log engine; schema 5 added the open-loop
// latency block (coordinated-omission-safe p50/p99/p999); schema 6 added
// the server_latency block (server-side per-stage quantiles scraped from
// /metricsz) and the tcp-fanin-noobs tracing-overhead companion.
const SchemaVersion = 6

// Transports a measurement can run over.
const (
	// TransportInproc is a direct in-process submission path.
	TransportInproc = "inproc"
	// TransportTCP crosses the dynctrld wire protocol over loopback TCP.
	TransportTCP = "tcp"
)

// Durability modes a measurement can run under.
const (
	// DurabilityNone keeps all admission state in memory.
	DurabilityNone = "none"
	// DurabilityWAL logs every decided effect to the write-ahead log with
	// group commit, without automatic checkpoints.
	DurabilityWAL = "wal"
	// DurabilityWALSnap is the full engine: WAL plus periodic snapshots.
	DurabilityWALSnap = "wal+snap"
)

// Arrival processes an open-loop measurement can schedule requests with.
const (
	// ArrivalPoisson draws exponentially distributed inter-arrival gaps.
	ArrivalPoisson = "poisson"
	// ArrivalFixed spaces arrivals exactly 1/rate apart.
	ArrivalFixed = "fixed"
)

// Latency is the schema-5 open-loop latency block: quantiles of the
// per-request latency measured from each request's *scheduled* arrival
// time (not its actual send time), so queueing delay behind a slow server
// is charged to the server — the coordinated-omission-safe convention.
// All values are nanoseconds from an HDR-style log-linear histogram
// (internal/hdr, <=1.6% relative quantization error).
type Latency struct {
	// Unit is always "ns".
	Unit string `json:"unit"`
	// P50, P99 and P999 are the headline quantiles.
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	// Max and Mean are exact (not quantized).
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// Count is the number of completed requests behind the quantiles.
	Count int64 `json:"count"`
	// TargetRate is the arrival rate the open-loop generator scheduled
	// (requests/second); compare against the measurement's OpsPerSec to
	// see whether the server kept up.
	TargetRate float64 `json:"target_rate"`
	// Arrival is the arrival process (ArrivalPoisson or ArrivalFixed).
	Arrival string `json:"arrival"`
}

// StageLatency is one server-side stage's latency digest within a
// ServerLatency block. Values are nanoseconds.
type StageLatency struct {
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Count int64   `json:"count"`
}

// ServerLatency is the schema-6 server-side latency block: per-stage
// quantiles of the daemon's own batch-trace histograms (decode, queue,
// execute, wal, write, total), scraped from /metricsz after the run.
// Reconciling these against the client-observed Latency block separates
// server time from network/client queueing: the non-total stage p99s must
// sum to no more than the client-observed p99.
type ServerLatency struct {
	// Unit is always "ns".
	Unit string `json:"unit"`
	// Stages maps stage name to its digest.
	Stages map[string]StageLatency `json:"stages"`
}

// Measurement is one measured submission path. Scenario, Scheduler,
// Transport and Durability pin what ran where, so a baseline comparison
// can refuse to compare measurements of different runs. Latency is only
// set by open-loop runs; ServerLatency only by runs that scraped the
// daemon's stage histograms; closed-loop throughput measurements leave
// both nil.
type Measurement struct {
	Scenario      string         `json:"scenario"`
	Scheduler     string         `json:"scheduler"`
	Transport     string         `json:"transport"`
	Durability    string         `json:"durability"`
	NsPerOp       float64        `json:"ns_per_op"`
	OpsPerSec     float64        `json:"ops_per_sec"`
	AllocsPerOp   float64        `json:"allocs_per_op"`
	BytesPerOp    float64        `json:"bytes_per_op"`
	MsgsPerOp     float64        `json:"messages_per_op"`
	Latency       *Latency       `json:"latency,omitempty"`
	ServerLatency *ServerLatency `json:"server_latency,omitempty"`
}

// Report is the BENCH_<label>.json document.
type Report struct {
	Label     string                 `json:"label"`
	Schema    int                    `json:"schema"`
	GoVersion string                 `json:"go_version"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	Workload  map[string]any         `json:"workload"`
	Results   map[string]Measurement `json:"results"`
	// PipelineSpeedup is results["pipeline"] over results["serial"]
	// throughput on the identical trace (0 when either is absent).
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// MessagesPerChange is the amortized message complexity per
	// topological change on the pinned churn run (the paper's headline
	// cost measure; 0 when not measured).
	MessagesPerChange float64 `json:"messages_per_change"`
}

// Bytes marshals the report as indented JSON with a trailing newline.
func (r Report) Bytes() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("marshal report: %w", err)
	}
	return append(buf, '\n'), nil
}

// WriteFile marshals the report to path (and returns the bytes written).
func (r Report) WriteFile(path string) ([]byte, error) {
	buf, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return nil, fmt.Errorf("write %s: %w", path, err)
	}
	return buf, nil
}

// ReadFile loads a report from path.
func ReadFile(path string) (Report, error) {
	var r Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("read report: %w", err)
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}

// CompareBaseline fails when any measured path's throughput fell by more
// than maxRegress relative to the baseline report, or when the runs are not
// comparable (schema, scenario, scheduler or transport mismatch). Progress
// lines go to log (e.g. os.Stderr).
func CompareBaseline(base, cur Report, maxRegress float64, log io.Writer) error {
	if base.Schema != cur.Schema {
		return fmt.Errorf("baseline schema %d, current %d: refresh the baseline", base.Schema, cur.Schema)
	}
	for name, b := range base.Results {
		c, ok := cur.Results[name]
		if !ok {
			return fmt.Errorf("baseline result %q missing from current run", name)
		}
		if b.Scenario != c.Scenario || b.Scheduler != c.Scheduler ||
			b.Transport != c.Transport || b.Durability != c.Durability {
			return fmt.Errorf("%s: baseline measured %s under %s over %s/%s, current run %s under %s over %s/%s:"+
				" not comparable (rerun with matching flags or refresh the baseline)",
				name, b.Scenario, b.Scheduler, b.Transport, b.Durability,
				c.Scenario, c.Scheduler, c.Transport, c.Durability)
		}
		if b.Latency != nil {
			if c.Latency == nil {
				return fmt.Errorf("%s: baseline carries an open-loop latency block, current run does not:"+
					" not comparable (rerun with matching flags or refresh the baseline)", name)
			}
			if b.Latency.Arrival != c.Latency.Arrival || b.Latency.TargetRate != c.Latency.TargetRate {
				return fmt.Errorf("%s: baseline open loop is %s@%.0f/s, current %s@%.0f/s:"+
					" not comparable (rerun with matching flags or refresh the baseline)",
					name, b.Latency.Arrival, b.Latency.TargetRate, c.Latency.Arrival, c.Latency.TargetRate)
			}
			// Latency is reported but not gated: tail quantiles on shared CI
			// runners are too noisy for a hard regression bound, and the
			// achieved-rate (OpsPerSec) gate below already catches a server
			// that stops keeping up with the scheduled arrivals.
			fmt.Fprintf(log, "benchfmt: %-8s baseline p50/p99/p999 %.0f/%.0f/%.0f ns, current %.0f/%.0f/%.0f ns\n",
				name, b.Latency.P50, b.Latency.P99, b.Latency.P999,
				c.Latency.P50, c.Latency.P99, c.Latency.P999)
		}
		if b.ServerLatency != nil {
			if c.ServerLatency == nil {
				return fmt.Errorf("%s: baseline carries a server_latency block, current run does not:"+
					" not comparable (rerun with matching flags or refresh the baseline)", name)
			}
			// Like Latency: reported, not gated.
			if bt, ok := b.ServerLatency.Stages["total"]; ok {
				ct := c.ServerLatency.Stages["total"]
				fmt.Fprintf(log, "benchfmt: %-8s baseline server total p99 %.0f ns, current %.0f ns\n",
					name, bt.P99, ct.P99)
			}
		}
		if b.OpsPerSec <= 0 {
			continue
		}
		ratio := b.OpsPerSec / c.OpsPerSec
		fmt.Fprintf(log, "benchfmt: %-8s baseline %.0f ops/s, current %.0f ops/s (%.2fx)\n",
			name, b.OpsPerSec, c.OpsPerSec, ratio)
		if ratio > maxRegress {
			return fmt.Errorf("%s regressed %.2fx (> %.1fx allowed): %.0f -> %.0f ops/s"+
				" (if this machine is legitimately slower than the baseline's,"+
				" refresh BENCH_baseline.json; see README \"Benchmarking and CI gates\")",
				name, ratio, maxRegress, b.OpsPerSec, c.OpsPerSec)
		}
	}
	return nil
}
