package benchfmt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sample() Report {
	return Report{
		Label:  "test",
		Schema: SchemaVersion,
		Workload: map[string]any{
			"clients": 8.0,
		},
		Results: map[string]Measurement{
			"serial": {
				Scenario: "s", Scheduler: "random", Transport: TransportInproc,
				NsPerOp: 100, OpsPerSec: 1e7,
			},
			"tcp": {
				Scenario: "w", Scheduler: "random", Transport: TransportTCP,
				NsPerOp: 400, OpsPerSec: 2.5e6,
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := sample()
	if _, err := in.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if out.Label != in.Label || out.Schema != in.Schema || len(out.Results) != len(in.Results) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if out.Results["tcp"].Transport != TransportTCP {
		t.Fatalf("transport field lost: %+v", out.Results["tcp"])
	}
}

func TestCompareBaselinePasses(t *testing.T) {
	base, cur := sample(), sample()
	var log bytes.Buffer
	if err := CompareBaseline(base, cur, 2.0, &log); err != nil {
		t.Fatalf("identical reports: %v", err)
	}
	if !strings.Contains(log.String(), "serial") {
		t.Errorf("comparison log lacks per-path lines:\n%s", log.String())
	}
}

func TestCompareBaselineCatchesRegression(t *testing.T) {
	base, cur := sample(), sample()
	m := cur.Results["serial"]
	m.OpsPerSec = base.Results["serial"].OpsPerSec / 3
	cur.Results["serial"] = m
	var log bytes.Buffer
	if err := CompareBaseline(base, cur, 2.0, &log); err == nil {
		t.Fatal("3x regression passed the 2x gate")
	}
}

func TestCompareBaselineRefusesMismatches(t *testing.T) {
	mutate := func(fn func(*Measurement)) Report {
		r := sample()
		m := r.Results["serial"]
		fn(&m)
		r.Results["serial"] = m
		return r
	}
	var log bytes.Buffer
	cases := map[string]Report{
		"transport": mutate(func(m *Measurement) { m.Transport = TransportTCP }),
		"scenario":  mutate(func(m *Measurement) { m.Scenario = "other" }),
		"scheduler": mutate(func(m *Measurement) { m.Scheduler = "fifo" }),
	}
	for name, cur := range cases {
		if err := CompareBaseline(sample(), cur, 2.0, &log); err == nil {
			t.Errorf("%s mismatch was compared anyway", name)
		}
	}
	schema := sample()
	schema.Schema = SchemaVersion - 1
	if err := CompareBaseline(schema, sample(), 2.0, &log); err == nil {
		t.Error("schema mismatch was compared anyway")
	}
	missing := sample()
	delete(missing.Results, "tcp")
	if err := CompareBaseline(sample(), missing, 2.0, &log); err == nil {
		t.Error("missing result was compared anyway")
	}
}
