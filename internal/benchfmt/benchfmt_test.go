package benchfmt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sample() Report {
	return Report{
		Label:  "test",
		Schema: SchemaVersion,
		Workload: map[string]any{
			"clients": 8.0,
		},
		Results: map[string]Measurement{
			"serial": {
				Scenario: "s", Scheduler: "random", Transport: TransportInproc,
				NsPerOp: 100, OpsPerSec: 1e7,
			},
			"tcp": {
				Scenario: "w", Scheduler: "random", Transport: TransportTCP,
				NsPerOp: 400, OpsPerSec: 2.5e6,
			},
			"openloop": {
				Scenario: "o", Scheduler: "random", Transport: TransportTCP,
				NsPerOp: 50_000, OpsPerSec: 20_000,
				Latency: &Latency{
					Unit: "ns", P50: 40_000, P99: 900_000, P999: 2_000_000,
					Count: 20_000, TargetRate: 20_000, Arrival: ArrivalPoisson,
				},
				ServerLatency: &ServerLatency{
					Unit: "ns",
					Stages: map[string]StageLatency{
						"execute": {P50: 5_000, P99: 60_000, P999: 90_000, Count: 400},
						"total":   {P50: 9_000, P99: 150_000, P999: 300_000, Count: 400},
					},
				},
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := sample()
	if _, err := in.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if out.Label != in.Label || out.Schema != in.Schema || len(out.Results) != len(in.Results) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if out.Results["tcp"].Transport != TransportTCP {
		t.Fatalf("transport field lost: %+v", out.Results["tcp"])
	}
	sl := out.Results["openloop"].ServerLatency
	if sl == nil || sl.Stages["execute"].P99 != 60_000 || sl.Stages["total"].Count != 400 {
		t.Fatalf("server_latency block lost: %+v", sl)
	}
	if out.Results["tcp"].ServerLatency != nil {
		t.Fatalf("server_latency appeared on a run that never scraped one: %+v", out.Results["tcp"])
	}
}

func TestCompareBaselinePasses(t *testing.T) {
	base, cur := sample(), sample()
	var log bytes.Buffer
	if err := CompareBaseline(base, cur, 2.0, &log); err != nil {
		t.Fatalf("identical reports: %v", err)
	}
	if !strings.Contains(log.String(), "serial") {
		t.Errorf("comparison log lacks per-path lines:\n%s", log.String())
	}
}

func TestCompareBaselineCatchesRegression(t *testing.T) {
	base, cur := sample(), sample()
	m := cur.Results["serial"]
	m.OpsPerSec = base.Results["serial"].OpsPerSec / 3
	cur.Results["serial"] = m
	var log bytes.Buffer
	if err := CompareBaseline(base, cur, 2.0, &log); err == nil {
		t.Fatal("3x regression passed the 2x gate")
	}
}

func TestCompareBaselineRefusesMismatches(t *testing.T) {
	mutate := func(fn func(*Measurement)) Report {
		r := sample()
		m := r.Results["serial"]
		fn(&m)
		r.Results["serial"] = m
		return r
	}
	var log bytes.Buffer
	cases := map[string]Report{
		"transport": mutate(func(m *Measurement) { m.Transport = TransportTCP }),
		"scenario":  mutate(func(m *Measurement) { m.Scenario = "other" }),
		"scheduler": mutate(func(m *Measurement) { m.Scheduler = "fifo" }),
	}
	for name, cur := range cases {
		if err := CompareBaseline(sample(), cur, 2.0, &log); err == nil {
			t.Errorf("%s mismatch was compared anyway", name)
		}
	}
	schema := sample()
	schema.Schema = SchemaVersion - 1
	if err := CompareBaseline(schema, sample(), 2.0, &log); err == nil {
		t.Error("schema mismatch was compared anyway")
	}
	missing := sample()
	delete(missing.Results, "tcp")
	if err := CompareBaseline(sample(), missing, 2.0, &log); err == nil {
		t.Error("missing result was compared anyway")
	}
}

func TestCompareBaselineServerLatency(t *testing.T) {
	var log bytes.Buffer

	// A current run that dropped the server_latency block is not
	// comparable against a baseline that carries one.
	cur := sample()
	m := cur.Results["openloop"]
	m.ServerLatency = nil
	cur.Results["openloop"] = m
	if err := CompareBaseline(sample(), cur, 2.0, &log); err == nil ||
		!strings.Contains(err.Error(), "server_latency") {
		t.Errorf("missing server_latency block was compared anyway (err: %v)", err)
	}

	// With both present the comparison reports (but does not gate) the
	// server total p99.
	log.Reset()
	if err := CompareBaseline(sample(), sample(), 2.0, &log); err != nil {
		t.Fatalf("identical reports: %v", err)
	}
	if !strings.Contains(log.String(), "server total p99") {
		t.Errorf("comparison log lacks the server-latency line:\n%s", log.String())
	}

	// The dropped latency block is likewise refused.
	cur = sample()
	m = cur.Results["openloop"]
	m.Latency = nil
	cur.Results["openloop"] = m
	if err := CompareBaseline(sample(), cur, 2.0, &log); err == nil {
		t.Error("missing latency block was compared anyway")
	}
}
