package experiments_test

import (
	"strings"
	"testing"

	"dynctrl/internal/experiments"
)

// TestExperimentsProduceTables smoke-tests the cheaper experiments: every
// table must render with a title, headers and at least one data row, and
// the invariant columns must never report a violation.
func TestExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment tables; skipped in -short")
	}
	cases := []struct {
		name string
		run  func() interface{ String() string }
	}{
		{"E6", func() interface{ String() string } { return experiments.E6Liveness() }},
		{"E13", func() interface{ String() string } { return experiments.E13Memory() }},
		{"E14", func() interface{ String() string } { return experiments.E14Ablation() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := tc.run().String()
			if !strings.Contains(out, "==") {
				t.Fatalf("missing title:\n%s", out)
			}
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) < 4 {
				t.Fatalf("table too short:\n%s", out)
			}
			if strings.Contains(out, "false") {
				t.Fatalf("an invariant column reports a violation:\n%s", out)
			}
		})
	}
}

// TestE6AllConfigurationsPass asserts the liveness table's ok column.
func TestE6AllConfigurationsPass(t *testing.T) {
	tb := experiments.E6Liveness()
	for _, row := range tb.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("configuration failed: %v", row)
		}
	}
}

// TestE14OccupancyBelowBound asserts the ablation's occupancy column stays
// below 1 (the domain-invariant bound).
func TestE14OccupancyBelowBound(t *testing.T) {
	tb := experiments.E14Ablation()
	if len(tb.Rows) == 0 {
		t.Fatal("no occupancy rows; the workload should span several levels")
	}
	for _, row := range tb.Rows {
		occ := row[len(row)-1]
		if strings.HasPrefix(occ, "1") && occ != "1.000" || strings.HasPrefix(occ, "2") {
			t.Fatalf("occupancy %s reaches the bound: %v", occ, row)
		}
	}
}
