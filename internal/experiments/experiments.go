// Package experiments regenerates every experiment of EXPERIMENTS.md
// (E1–E14). The paper is a theory contribution whose "tables and figures"
// are complexity theorems; each function here measures the corresponding
// quantity on synthetic workloads and prints the series/rows whose *shape*
// the paper predicts. cmd/benchtables prints all tables; bench_test.go
// exposes each as a testing.B benchmark.
package experiments

import (
	"fmt"
	"math"

	"dynctrl/internal/baseline"
	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/estimator"
	"dynctrl/internal/heavychild"
	"dynctrl/internal/labeling"
	"dynctrl/internal/naming"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func buildTree(n int, seed int64) *tree.Tree {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n, seed); err != nil {
		panic(err) // deterministic construction cannot fail
	}
	return tr
}

func drain(sub workload.Submitter, gen workload.Generator, maxReq int) (granted, rejected int) {
	for i := 0; i < maxReq; i++ {
		req, ok := gen.Next()
		if !ok {
			return granted, rejected
		}
		g, err := sub.Submit(req)
		if err != nil {
			return granted, rejected
		}
		switch g.Outcome {
		case controller.Granted:
			granted++
		case controller.Rejected:
			rejected++
			return granted, rejected
		}
	}
	return granted, rejected
}

// E1CentralizedMoves measures the centralized waste-halving controller's
// move complexity as U grows (Obs 3.4: O(U·log²U·log M/(W+1))). The last
// column should flatten; the growth exponent of raw moves vs U should be
// near 1 (up to log factors).
func E1CentralizedMoves() *stats.Table {
	tb := stats.NewTable("E1: centralized move complexity vs U (M=U, W=1)",
		"n0", "U", "moves", "moves/(U·log²U)")
	var series stats.Series
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		tr := buildTree(n, 1)
		m := int64(n)
		u := int64(2*n + 16)
		counters := stats.NewCounters()
		it := controller.NewIterated(tr, u, m, 1, controller.WithIteratedCounters(counters))
		gen := workload.NewChurn(tr, workload.DefaultMix(), 5)
		gen.SetMinSize(n / 2)
		drain(it, gen, 8*n)
		moves := counters.Get(stats.CounterMoves)
		logU := stats.Log2(float64(u))
		tb.AddRow(n, u, moves, float64(moves)/(float64(u)*logU*logU))
		series.Append(float64(u), float64(moves))
	}
	tb.AddRow("growth-exponent(moves vs U)", "", "", series.GrowthExponent())
	return tb
}

// E2WasteSweep fixes U and sweeps W: moves should scale with log(M/(W+1))
// (Obs 3.4).
func E2WasteSweep() *stats.Table {
	tb := stats.NewTable("E2: moves vs waste W (path n=512, M=4096)",
		"W", "log2(M/(W+1))", "moves", "moves/log2(M/(W+1))")
	const n = 512
	const m = int64(4096)
	for _, w := range []int64{m - 1, m / 2, m / 16, m / 256, 0} {
		// A deep path makes distances (and therefore stranded waste and
		// iteration count) matter; balanced trees are too shallow to
		// separate the W regimes.
		tr, _ := tree.New()
		if err := workload.BuildPath(tr, n); err != nil {
			panic(err)
		}
		u := int64(n + 64)
		counters := stats.NewCounters()
		it := controller.NewIterated(tr, u, m, w, controller.WithIteratedCounters(counters))
		gen := workload.NewChurn(tr, workload.EventOnlyMix(), 7)
		drain(it, gen, int(m)*4)
		moves := counters.Get(stats.CounterMoves)
		ratio := stats.Log2(float64(m)/float64(w+1)) + 1
		tb.AddRow(w, ratio-1, moves, float64(moves)/ratio)
	}
	return tb
}

// E3UnknownU measures the unknown-U controller (Thm 3.5(1)): amortized
// moves per topological change should stay O(log²n).
func E3UnknownU() *stats.Table {
	tb := stats.NewTable("E3: unknown-U amortized moves per change (policy: changes/4)",
		"n0", "changes", "moves", "moves/change", "log²(nMax)")
	for _, n := range []int{64, 256, 1024} {
		tr := buildTree(n, 3)
		m := int64(16 * n)
		counters := stats.NewCounters()
		d := controller.NewDynamic(tr, m, 0, controller.WithDynamicCounters(counters))
		gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 30, RemoveLeaf: 25, AddInternal: 20, RemoveInternal: 25}, 9)
		gen.SetMinSize(n / 4)
		drain(d, gen, int(m)*4)
		changes := counters.Get(stats.CounterTopoChanges)
		moves := counters.Get(stats.CounterMoves)
		logN := stats.Log2(float64(2 * m))
		perChange := 0.0
		if changes > 0 {
			perChange = float64(moves) / float64(changes)
		}
		tb.AddRow(n, changes, moves, perChange, logN*logN)
	}
	return tb
}

// E4MaxN runs the second unknown-U policy (Thm 3.5(2)): total moves
// normalized by N·log²N, N = max simultaneous nodes, on grow-heavy traces.
func E4MaxN() *stats.Table {
	tb := stats.NewTable("E4: unknown-U (policy: double max-N) on grow-heavy traces",
		"n0", "maxN", "moves", "moves/(N·log²N)")
	for _, n := range []int{64, 256, 1024} {
		tr := buildTree(n, 4)
		m := int64(8 * n)
		counters := stats.NewCounters()
		d := controller.NewDynamic(tr, m, 0,
			controller.WithDynamicCounters(counters), controller.WithPolicy(controller.PolicyDoubleMaxN))
		gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 70, RemoveLeaf: 10, AddInternal: 10, Event: 10}, 11)
		gen.SetMinSize(n / 4)
		drain(d, gen, int(m)*4)
		maxN := tr.Size() // grow-heavy: final ≈ max
		moves := counters.Get(stats.CounterMoves)
		logN := stats.Log2(float64(maxN))
		tb.AddRow(n, maxN, moves, float64(moves)/(float64(maxN)*logN*logN))
	}
	return tb
}

// E5DistVsCentral replays identical traces on the centralized and
// distributed controllers (Thm 4.7 / Lemma 4.5): the message count should
// stay within a small constant of the move count.
func E5DistVsCentral() *stats.Table {
	tb := stats.NewTable("E5: distributed messages vs centralized moves (same trace)",
		"n", "moves(central)", "messages(dist)", "ratio")
	for _, n := range []int{64, 256, 1024} {
		m := int64(8 * n)
		u := int64(n) + 2*m
		w := m / 2
		trC := buildTree(n, 5)
		trD := buildTree(n, 5)
		cenCounters := stats.NewCounters()
		cen := controller.NewCore(trC, u, m, w, controller.WithCounters(cenCounters))
		rt := sim.NewDeterministic(5)
		distCore := dist.NewCore(trD, rt, u, m, w)
		sub := dist.NewSubmitter(distCore, rt)
		genC := workload.NewChurn(trC, workload.DefaultMix(), 13)
		genD := workload.NewChurn(trD, workload.DefaultMix(), 13)
		for i := 0; i < 4*n; i++ {
			reqC, ok := genC.Next()
			if !ok {
				break
			}
			reqD, _ := genD.Next()
			if _, err := cen.Submit(reqC); err != nil {
				break
			}
			if _, err := sub.Submit(reqD); err != nil {
				break
			}
		}
		moves := cenCounters.Get(stats.CounterMoves)
		msgs := rt.Messages()
		ratio := math.Inf(1)
		if moves > 0 {
			ratio = float64(msgs) / float64(moves)
		}
		tb.AddRow(n, moves, msgs, ratio)
	}
	return tb
}

// E6Liveness records, per (M,W), the permits granted at first reject:
// safety requires ≤ M, liveness requires ≥ M−W.
func E6Liveness() *stats.Table {
	tb := stats.NewTable("E6: safety/liveness at first reject",
		"M", "W", "granted", "M-W", "ok")
	for _, tc := range []struct{ m, w int64 }{
		{100, 0}, {100, 10}, {500, 100}, {1000, 500}, {2000, 1},
	} {
		tr := buildTree(40, 6)
		rt := sim.NewDeterministic(6)
		counters := stats.NewCounters()
		it := dist.NewIterated(tr, rt, int64(40)+2*tc.m, tc.m, tc.w, false, counters)
		gen := workload.NewChurn(tr, workload.DefaultMix(), 15)
		gen.SetMinSize(8)
		granted, _ := drain(it, gen, int(tc.m)*5)
		ok := int64(granted) <= tc.m && int64(granted) >= tc.m-tc.w
		tb.AddRow(tc.m, tc.w, granted, tc.m-tc.w, ok)
	}
	return tb
}

// E7VsGrowOnly compares our controller with the bin-hierarchy controller of
// [4] on grow-only traces (the only regime [4] supports). The paper claims
// our message complexity is never asymptotically worse.
func E7VsGrowOnly() *stats.Table {
	tb := stats.NewTable("E7: ours vs grow-only bin hierarchy [4] (grow-only traces)",
		"M", "ours(messages)", "AAPS(moves)", "ratio ours/AAPS")
	for _, m := range []int64{256, 1024, 4096} {
		u := m + 8
		trA := buildTree(1, 7)
		trB := buildTree(1, 7)
		countersA := stats.NewCounters()
		rt := sim.NewDeterministic(7)
		ours := dist.NewIterated(trA, rt, u, m, 1, false, countersA)
		countersB := stats.NewCounters()
		aaps := baseline.NewGrowOnlyIterated(trB, u, m, 1, countersB)
		genA := workload.NewChurn(trA, workload.GrowOnlyMix(), 17)
		genB := workload.NewChurn(trB, workload.GrowOnlyMix(), 17)
		drain(ours, genA, int(m)*2)
		drain(aaps, genB, int(m)*2)
		oursTotal := dist.TotalMessages(rt, countersA)
		aapsTotal := countersB.Get(stats.CounterMoves)
		tb.AddRow(m, oursTotal, aapsTotal, float64(oursTotal)/float64(aapsTotal+1))
	}
	return tb
}

// E8VsTrivial compares against the trivial controller: per-request cost of
// the trivial controller grows with depth (Ω(n) per request), ours
// amortizes to polylog.
func E8VsTrivial() *stats.Table {
	tb := stats.NewTable("E8: ours vs trivial controller (deep trees, repeated requests)",
		"depth", "requests", "trivial(moves)", "ours(messages)", "trivial/ours")
	for _, depth := range []int{128, 512, 2048} {
		m := int64(4 * depth)
		trA, _ := tree.New()
		trB, _ := tree.New()
		if err := workload.BuildPath(trA, depth); err != nil {
			panic(err)
		}
		if err := workload.BuildPath(trB, depth); err != nil {
			panic(err)
		}
		trivial := baseline.NewTrivial(trA, m, nil)
		rt := sim.NewDeterministic(8)
		countersB := stats.NewCounters()
		// U bounds nodes ever to exist: the workload is purely
		// non-topological, so U is just the path length (inflating U
		// shrinks φ and would cripple package batching).
		ours := dist.NewIterated(trB, rt, int64(depth)+16, m, 1, false, countersB)
		// All requests arrive at the deepest node: the trivial controller
		// pays the full depth per request; ours seeds the path once and
		// then serves from nearby fillers.
		deepA := deepest(trA)
		deepB := deepest(trB)
		reqs := int(m) - 1
		for i := 0; i < reqs; i++ {
			if _, err := trivial.Submit(controller.Request{Node: deepA, Kind: tree.None}); err != nil {
				break
			}
		}
		for i := 0; i < reqs; i++ {
			if _, err := ours.Submit(controller.Request{Node: deepB, Kind: tree.None}); err != nil {
				break
			}
		}
		trivialMoves := trivial.Counters().Get(stats.CounterMoves)
		oursTotal := dist.TotalMessages(rt, countersB)
		tb.AddRow(depth, reqs, trivialMoves, oursTotal,
			float64(trivialMoves)/float64(oursTotal+1))
	}
	return tb
}

// E9SizeEstimation measures the estimator's amortized message cost per
// topological change (Thm 5.1) and verifies the β-approximation held
// throughout.
func E9SizeEstimation() *stats.Table {
	tb := stats.NewTable("E9: size estimation (β=2)",
		"n0", "changes", "messages", "msgs/change", "log²(n)", "β-invariant")
	for _, n := range []int{64, 256, 1024} {
		tr := buildTree(n, 9)
		rt := sim.NewDeterministic(9)
		counters := stats.NewCounters()
		est, err := estimator.New(tr, rt, 2, estimator.WithCounters(counters))
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 30, RemoveLeaf: 25, AddInternal: 20, RemoveInternal: 25}, 21)
		gen.SetMinSize(n / 4)
		invariantOK := true
		changes := 0
		for changes < 6*n {
			req, ok := gen.Next()
			if !ok {
				break
			}
			g, err := est.RequestChange(req)
			if err != nil {
				break
			}
			if g.Outcome == controller.Granted {
				changes++
			}
			if est.CheckApproximation() != nil {
				invariantOK = false
			}
		}
		total := dist.TotalMessages(rt, counters)
		logN := stats.Log2(float64(n))
		tb.AddRow(n, changes, total, float64(total)/float64(changes), logN*logN, invariantOK)
	}
	return tb
}

// E10Naming measures the name-assignment protocol: message cost per change
// plus the id-range invariant (ids ≤ 4n at all times).
func E10Naming() *stats.Table {
	tb := stats.NewTable("E10: name assignment",
		"n0", "changes", "messages", "msgs/change", "maxID/n(final)", "invariant")
	for _, n := range []int{64, 256, 1024} {
		tr := buildTree(n, 10)
		rt := sim.NewDeterministic(10)
		counters := stats.NewCounters()
		nm := naming.New(tr, rt, counters)
		gen := workload.NewChurn(tr, workload.DefaultMix(), 23)
		gen.SetMinSize(n / 4)
		invariantOK := true
		changes := 0
		for changes < 4*n {
			req, ok := gen.Next()
			if !ok {
				break
			}
			g, err := nm.RequestChange(req)
			if err != nil {
				break
			}
			if g.Outcome == controller.Granted && req.Kind != tree.None {
				changes++
			}
			if nm.CheckInvariants() != nil {
				invariantOK = false
			}
		}
		maxID := int64(0)
		for _, v := range tr.Nodes() {
			if id, err := nm.ID(v); err == nil && id > maxID {
				maxID = id
			}
		}
		total := dist.TotalMessages(rt, counters)
		tb.AddRow(n, changes, total, float64(total)/float64(changes),
			float64(maxID)/float64(tr.Size()), invariantOK)
	}
	return tb
}

// E11HeavyChild measures the heavy-child decomposition: maximum light
// ancestors vs log₄⁄₃(n) (Thm 5.4).
func E11HeavyChild() *stats.Table {
	tb := stats.NewTable("E11: heavy-child decomposition",
		"n0", "final n", "max light ancestors", "log4/3(n)", "ratio")
	for _, n := range []int{64, 256, 1024} {
		tr := buildTree(n, 11)
		rt := sim.NewDeterministic(11)
		hc, err := heavychild.New(tr, rt, nil)
		if err != nil {
			panic(err)
		}
		gen := workload.NewChurn(tr, workload.DefaultMix(), 25)
		gen.SetMinSize(n / 4)
		for i := 0; i < 3*n; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if _, err := hc.RequestChange(req); err != nil {
				break
			}
		}
		maxLight := 0
		for _, v := range tr.Nodes() {
			if la, err := hc.LightAncestors(v); err == nil && la > maxLight {
				maxLight = la
			}
		}
		logN := math.Log(float64(tr.Size())) / math.Log(4.0/3.0)
		tb.AddRow(n, tr.Size(), maxLight, logN, float64(maxLight)/logN)
	}
	return tb
}

// E12Labeling measures the dynamic ancestry labeling under shrink: label
// bits must track the current n, unlike a never-rebuilt static scheme.
func E12Labeling() *stats.Table {
	tb := stats.NewTable("E12: dynamic ancestry labels under shrink",
		"n(start)", "n(end)", "static bits (no rebuild)", "dynamic bits", "rebuilds")
	for _, n := range []int{512, 2048} {
		tr := buildTree(n, 12)
		rt := sim.NewDeterministic(12)
		dyn, err := labeling.NewDynamic(tr, rt,
			func(tr *tree.Tree) (labeling.Scheme, int64) {
				return labeling.BuildAncestry(tr), int64(tr.Size())
			}, nil)
		if err != nil {
			panic(err)
		}
		staticBits := dyn.Scheme().MaxBits()
		gen := workload.NewChurn(tr, workload.ShrinkHeavyMix(), 27)
		gen.SetMinSize(8)
		for i := 0; i < 10*n && tr.Size() > n/16; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if _, err := dyn.RequestChange(req); err != nil {
				break
			}
		}
		tb.AddRow(n, tr.Size(), staticBits, dyn.Scheme().MaxBits(), dyn.Rebuilds())
	}
	return tb
}

// E13Memory measures the maximum whiteboard size (Claim 4.8) on star and
// path topologies.
func E13Memory() *stats.Table {
	tb := stats.NewTable("E13: per-node whiteboard memory (bits)",
		"topology", "n", "max bits", "bound deg·logN+log³N+log²U")
	for _, shape := range []string{"star", "path"} {
		const n = 512
		tr, _ := tree.New()
		var err error
		if shape == "star" {
			err = workload.BuildStar(tr, n)
		} else {
			err = workload.BuildPath(tr, n)
		}
		if err != nil {
			panic(err)
		}
		m := int64(8 * n)
		u := int64(n) + 2*m
		rt := sim.NewDeterministic(13)
		core := dist.NewCore(tr, rt, u, m, m/2)
		sub := dist.NewSubmitter(core, rt)
		gen := workload.NewChurn(tr, workload.EventOnlyMix(), 29)
		for i := 0; i < 4*n; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if _, err := sub.Submit(req); err != nil {
				break
			}
		}
		logN := stats.CeilLog2(int(u)) + 1
		maxBits, maxDeg := 0, 0
		for _, id := range tr.Nodes() {
			if b := core.MemoryBitsAt(id); b > maxBits {
				maxBits = b
			}
			if d, err := tr.ChildCount(id); err == nil && d > maxDeg {
				maxDeg = d
			}
		}
		bound := maxDeg*logN + logN*logN*logN + logN*logN
		tb.AddRow(shape, n, maxBits, bound)
	}
	return tb
}

// E14Ablation checks the domain-invariant consequence the design rests on:
// the number of live level-k packages never exceeds U/(2^{k-1}ψ).
func E14Ablation() *stats.Table {
	tb := stats.NewTable("E14: level-package occupancy vs domain bound",
		"level", "max packages seen", "bound U/(2^{k-1}ψ)", "occupancy")
	const n = 800
	tr, _ := tree.New()
	if err := workload.BuildPath(tr, n); err != nil {
		panic(err)
	}
	u := int64(n + 400)
	// W = U keeps psi minimal so the 800-deep path spans several package
	// levels (with W = 1, psi >= 4U exceeds any depth and only level-0
	// packages exist).
	c := controller.NewCore(tr, u, 1<<30, u, controller.WithDomainTracking())
	gen := workload.NewChurn(tr, workload.DefaultMix(), 31)
	gen.SetMinSize(n / 2)
	maxPerLevel := make(map[int]int)
	for i := 0; i < 400; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := c.Submit(req); err != nil {
			break
		}
		for level, count := range c.Domains().LevelCounts() {
			if count > maxPerLevel[level] {
				maxPerLevel[level] = count
			}
		}
	}
	for level := 0; level <= c.Params().MaxLevel; level++ {
		seen, ok := maxPerLevel[level]
		if !ok {
			continue
		}
		bound := float64(u) / float64(c.Params().DomainSize(level))
		tb.AddRow(level, seen, fmt.Sprintf("%.1f", bound), float64(seen)/bound)
	}
	return tb
}

// deepest returns the deepest node of tr.
func deepest(tr *tree.Tree) tree.NodeID {
	best, bestD := tr.Root(), 0
	for _, id := range tr.Nodes() {
		if d, err := tr.Depth(id); err == nil && d > bestD {
			best, bestD = id, d
		}
	}
	return best
}

// All returns every experiment table in order.
func All() []*stats.Table {
	return []*stats.Table{
		E1CentralizedMoves(), E2WasteSweep(), E3UnknownU(), E4MaxN(),
		E5DistVsCentral(), E6Liveness(), E7VsGrowOnly(), E8VsTrivial(),
		E9SizeEstimation(), E10Naming(), E11HeavyChild(), E12Labeling(),
		E13Memory(), E14Ablation(),
	}
}
