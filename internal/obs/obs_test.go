package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"decode", "queue", "execute", "wal", "write", "total"}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, name := range want {
		if got := Stage(i).String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", i, got, name)
		}
		if !StageName(name) {
			t.Errorf("StageName(%q) = false", name)
		}
	}
	if got := Stage(99).String(); got != "unknown" {
		t.Errorf("Stage(99).String() = %q, want unknown", got)
	}
	if StageName("bogus") {
		t.Error("StageName(bogus) = true")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.NextID(); id != 0 {
		t.Errorf("nil NextID = %d", id)
	}
	tr.Record(&BatchTrace{Total: time.Second})
	if n := tr.Recorded(); n != 0 {
		t.Errorf("nil Recorded = %d", n)
	}
	if s := tr.RingSize(); s != 0 {
		t.Errorf("nil RingSize = %d", s)
	}
	if got := tr.Recent(4); got != nil {
		t.Errorf("nil Recent = %v", got)
	}
	if got := tr.Slowest(4); got != nil {
		t.Errorf("nil Slowest = %v", got)
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v", got)
	}
	var r *Recorder
	r.Record(time.Second)
	if st := r.Stats(); st.Count != 0 {
		t.Errorf("nil Recorder Stats = %+v", st)
	}
}

func TestNewTracerRoundsRingToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultRing}, {-5, DefaultRing}, {1, 1}, {2, 2}, {3, 4}, {100, 128}, {256, 256},
	} {
		if got := NewTracer(tc.in, 4).RingSize(); got != tc.want {
			t.Errorf("NewTracer(%d).RingSize() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecentNewestFirstAndWrap(t *testing.T) {
	tr := NewTracer(4, 4)
	for i := 1; i <= 10; i++ {
		tr.Record(&BatchTrace{ID: uint64(i), Total: time.Duration(i)})
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	recent := tr.Recent(8)
	if len(recent) != 4 {
		t.Fatalf("Recent(8) returned %d traces from a 4-slot ring", len(recent))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if recent[i].ID != want {
			t.Errorf("recent[%d].ID = %d, want %d", i, recent[i].ID, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != 10 || got[1].ID != 9 {
		t.Errorf("Recent(2) = %v", ids(got))
	}
}

func TestSlowestKeepsTopK(t *testing.T) {
	tr := NewTracer(8, 3)
	// Interleave so the heap sees admissions and evictions in mixed order.
	for _, ms := range []int{5, 1, 9, 2, 8, 3, 7, 4, 6} {
		tr.Record(&BatchTrace{ID: uint64(ms), Total: time.Duration(ms) * time.Millisecond})
	}
	slow := tr.Slowest(10)
	if len(slow) != 3 {
		t.Fatalf("Slowest returned %d traces, cap is 3", len(slow))
	}
	for i, want := range []uint64{9, 8, 7} {
		if slow[i].ID != want {
			t.Errorf("slowest[%d].ID = %d, want %d (got %v)", i, slow[i].ID, want, ids(slow))
		}
	}
	if got := tr.Slowest(1); len(got) != 1 || got[0].ID != 9 {
		t.Errorf("Slowest(1) = %v", ids(got))
	}
}

func ids(traces []*BatchTrace) []uint64 {
	out := make([]uint64, len(traces))
	for i, bt := range traces {
		out[i] = bt.ID
	}
	return out
}

func TestSnapshotQuantiles(t *testing.T) {
	tr := NewTracer(16, 4)
	for i := 1; i <= 100; i++ {
		bt := &BatchTrace{Total: time.Duration(i) * time.Millisecond}
		bt.Stages[StageExecute] = time.Duration(i) * time.Microsecond
		tr.Record(bt)
	}
	snap := tr.Snapshot()
	if len(snap) != NumStages {
		t.Fatalf("Snapshot returned %d stages, want %d", len(snap), NumStages)
	}
	if snap[len(snap)-1].Stage != "total" {
		t.Fatalf("last snapshot row is %q, want total", snap[len(snap)-1].Stage)
	}
	total := snap[StageTotal]
	if total.Count != 100 {
		t.Errorf("total count = %d, want 100", total.Count)
	}
	if total.Max != 100*time.Millisecond {
		t.Errorf("total max = %v, want 100ms", total.Max)
	}
	// hdr quantization error is <= 1.6%; allow 5% slack.
	if got, want := total.P50, 50*time.Millisecond; !within(got, want, 0.05) {
		t.Errorf("total p50 = %v, want ~%v", got, want)
	}
	if got, want := total.P99, 99*time.Millisecond; !within(got, want, 0.05) {
		t.Errorf("total p99 = %v, want ~%v", got, want)
	}
	exec := snap[StageExecute]
	if exec.Count != 100 {
		t.Errorf("execute count = %d, want 100", exec.Count)
	}
	if got, want := exec.P50, 50*time.Microsecond; !within(got, want, 0.05) {
		t.Errorf("execute p50 = %v, want ~%v", got, want)
	}
	// Stages that never saw a sample still report their zero recordings.
	if snap[StageWAL].Max != 0 {
		t.Errorf("wal max = %v, want 0", snap[StageWAL].Max)
	}
}

func within(got, want time.Duration, frac float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d <= frac*float64(want)
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32, 8)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent readers while writers publish
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Recent(16)
			tr.Slowest(8)
			tr.Snapshot()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(&BatchTrace{
					ID:    tr.NextID(),
					Total: time.Duration(i+1) * time.Microsecond,
				})
			}
		}()
	}
	for tr.Recorded() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := tr.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", got, writers*perWriter)
	}
	if got := tr.Snapshot()[StageTotal].Count; got != writers*perWriter {
		t.Fatalf("total histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := len(tr.Recent(64)); got != 32 {
		t.Fatalf("Recent(64) = %d traces, want a full 32-slot ring", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 10; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	st := r.Stats()
	if st.Count != 10 {
		t.Errorf("count = %d, want 10", st.Count)
	}
	if st.Min != time.Millisecond || st.Max != 10*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 1ms/10ms", st.Min, st.Max)
	}
	if st.Sum != 55*time.Millisecond {
		t.Errorf("sum = %v, want 55ms", st.Sum)
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want slog.Level
	}{
		{"debug", slog.LevelDebug}, {"info", slog.LevelInfo}, {"", slog.LevelInfo},
		{"warn", slog.LevelWarn}, {"warning", slog.LevelWarn}, {"ERROR", slog.LevelError},
		{" Info ", slog.LevelInfo},
	} {
		got, err := ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) succeeded")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "tenant", "blue")
	if out := buf.String(); !strings.Contains(out, `"msg":"hello"`) || !strings.Contains(out, `"tenant":"blue"`) {
		t.Errorf("json output = %q", out)
	}
	buf.Reset()
	lg.Debug("dropped")
	if buf.Len() != 0 {
		t.Errorf("debug leaked through info level: %q", buf.String())
	}

	buf.Reset()
	lg, err = NewLogger(&buf, slog.LevelDebug, "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("visible")
	if !strings.Contains(buf.String(), "msg=visible") {
		t.Errorf("text output = %q", buf.String())
	}

	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Error("NewLogger(yaml) succeeded")
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	// Must not panic and must report disabled at every level.
	lg.Error("dropped")
	if lg.Enabled(nil, slog.LevelError) { //nolint:staticcheck
		t.Error("NopLogger enabled at error level")
	}
}

func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"", ""},
	} {
		if got := EscapeLabel(tc.in); got != tc.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteTracez(t *testing.T) {
	tr := NewTracer(8, 4)
	bt := &BatchTrace{
		ID:       7,
		Start:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Total:    3 * time.Millisecond,
		Frames:   2,
		Requests: 5,
		Grants:   4,
		Rejects:  1,
		Wave:     true,
		Conn:     "127.0.0.1:9",
	}
	bt.Stages[StageExecute] = time.Millisecond
	tr.Record(bt)

	var buf bytes.Buffer
	WriteTracez(&buf, "blue", tr, 4, 4)
	out := buf.String()
	for _, want := range []string{
		`== tenant "blue" ==`,
		"traces recorded: 1 (ring 8)",
		"slowest 4 batches:",
		"most recent 4 batches:",
		"exec=1.00ms",
		"conn=127.0.0.1:9",
		"yes", // wave column
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tracez output lacks %q:\n%s", want, out)
		}
	}

	buf.Reset()
	WriteTracez(&buf, "off", nil, 4, 4)
	if out := buf.String(); !strings.Contains(out, "tracing disabled") {
		t.Errorf("nil-tracer output = %q", out)
	}

	buf.Reset()
	WriteTracez(&buf, "empty", NewTracer(8, 4), 4, 4)
	if out := buf.String(); !strings.Contains(out, "(none)") {
		t.Errorf("empty-tracer output lacks (none): %q", out)
	}
}

func TestFdur(t *testing.T) {
	for _, tc := range []struct {
		in   time.Duration
		want string
	}{
		{0, "0"}, {-time.Second, "0"},
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.5µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{1500 * time.Millisecond, "1.500s"},
	} {
		if got := fdur(tc.in); got != tc.want {
			t.Errorf("fdur(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	tr := NewTracer(256, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt := &BatchTrace{ID: uint64(i), Total: time.Duration(i%1000) * time.Microsecond}
		bt.Stages[StageExecute] = time.Microsecond
		tr.Record(bt)
	}
}

func ExampleWriteTracez() {
	WriteTracez(new(bytes.Buffer), "default", nil, 4, 4)
	fmt.Println("ok")
	// Output: ok
}
