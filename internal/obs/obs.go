// Package obs is dynctrld's low-overhead observability layer: stage-level
// request tracing, server-side latency digests, structured-logging setup
// and Prometheus exposition helpers.
//
// The daemon serves batches, so the unit of observation is the read batch:
// every coalesced run of Submit frames a connection takes off its socket
// becomes one BatchTrace with a per-stage duration breakdown (frame
// decode, pipeline queue wait, controller execute, WAL append→durable,
// Results write) plus controller-work tags (batch size, control-message
// hops, reject-wave membership). Traces land in a fixed-size lock-free
// ring (most-recent-N) and a small bounded top-K (slowest-N), and every
// stage duration is folded into an internal/hdr log-linear histogram, so
// /tracez can show individual slow batches while /metricsz reports
// per-stage quantiles — without unbounded memory and without a lock on
// the ring hot path.
//
// Observing concurrent executions without perturbing them is the whole
// point (cf. partially observable concurrent semantics): the record path
// is one allocation, one atomic slot publish, an atomic threshold check
// and a short histogram critical section per *batch* (not per request).
// cmd/benchjson pins the measured overhead on the pinned tcp-fanin
// workload at <= 3%.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"dynctrl/internal/hdr"
)

// Stage identifies one segment of a batch's server-side lifecycle.
type Stage uint8

// The stages of one read batch, in pipeline order. StageTotal is the
// whole-batch wall time (first frame decoded to Results flushed) and is
// tracked as its own histogram row, not stored in BatchTrace.Stages.
const (
	// StageDecode is frame decode and read-batch assembly: from the first
	// frame of the batch arriving to the last buffered frame decoded.
	StageDecode Stage = iota
	// StageQueue is the pipeline wait: enqueue until the flat-combining
	// leader starts executing this run (includes waiting behind other
	// batches in the same combining cycle).
	StageQueue
	// StageExecute is the controller executing exactly this run's requests.
	StageExecute
	// StageWAL is durability: WAL append plus the group-commit fsync wait
	// (zero when the daemon runs without a WAL).
	StageWAL
	// StageWrite is encoding and flushing the Results frames.
	StageWrite
	// StageTotal is the whole batch, end to end.
	StageTotal
)

// NumStages counts the histogram rows (the five stages plus total).
const NumStages = int(StageTotal) + 1

var stageNames = [NumStages]string{"decode", "queue", "execute", "wal", "write", "total"}

// String returns the stage's metric label value.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageName reports whether name names a stage (including "total").
func StageName(name string) bool {
	for _, n := range stageNames {
		if n == name {
			return true
		}
	}
	return false
}

// BatchTrace is one recorded read batch: identity, per-stage durations and
// the controller-work tags that explain where the time went.
type BatchTrace struct {
	// ID is the tenant-scoped trace ID (monotonic, allocated by NextID).
	ID uint64
	// Start is the wall-clock instant the batch's first frame arrived.
	Start time.Time
	// Total is the end-to-end batch duration.
	Total time.Duration
	// Stages holds the per-stage durations (StageTotal lives in Total).
	Stages [StageTotal]time.Duration

	// Frames and Requests size the batch: wire frames coalesced and
	// requests decoded out of them.
	Frames   int
	Requests int
	// Grants, Rejects and Errors are the batch's verdict tallies.
	Grants  int64
	Rejects int64
	Errors  int64
	// CtlMsgs counts the controller control messages (filler-search climb
	// hops, package descents, wave traffic) this run triggered.
	CtlMsgs int64
	// Wave marks reject-wave membership: the batch carried rejects.
	Wave bool
	// Conn is the remote address of the connection that read the batch.
	Conn string
}

// LatencyStats is a point-in-time digest of one duration distribution.
type LatencyStats struct {
	Count          int64
	Sum            time.Duration
	Min, Max       time.Duration
	P50, P99, P999 time.Duration
}

// StageStats is LatencyStats labeled with its stage.
type StageStats struct {
	Stage string
	LatencyStats
}

// Tracer records BatchTraces for one tenant. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so a disabled tracer
// is simply nil.
type Tracer struct {
	seq  atomic.Uint64 // trace-ID allocator
	head atomic.Uint64 // ring publish cursor (== traces recorded)
	ring []atomic.Pointer[BatchTrace]

	// slow is a bounded min-heap (by Total) of the slowest traces;
	// slowMin caches the heap's admission threshold so the record path
	// usually pays one atomic load, not the mutex.
	slowMin atomic.Int64
	slowMu  sync.Mutex
	slow    []*BatchTrace
	slowCap int

	histMu sync.Mutex
	hists  [NumStages]*hdr.Histogram
}

// DefaultRing is the ring size when NewTracer is given ring <= 0.
const DefaultRing = 256

// DefaultSlow is the slowest-N capacity when NewTracer is given slow <= 0.
const DefaultSlow = 32

// NewTracer builds a tracer with a most-recent ring of (at least) ring
// traces — rounded up to a power of two — and a slowest-N capacity of slow.
func NewTracer(ring, slow int) *Tracer {
	if ring <= 0 {
		ring = DefaultRing
	}
	size := 1
	for size < ring {
		size <<= 1
	}
	if slow <= 0 {
		slow = DefaultSlow
	}
	t := &Tracer{
		ring:    make([]atomic.Pointer[BatchTrace], size),
		slowCap: slow,
	}
	for i := range t.hists {
		t.hists[i] = hdr.New()
	}
	return t
}

// NextID allocates the next trace ID (0 on a nil tracer).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Add(1)
}

// Recorded returns how many traces have been recorded (0 on nil).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}

// RingSize returns the ring capacity (0 on nil).
func (t *Tracer) RingSize() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Record publishes one finished trace: into the ring (lock-free), into the
// slowest-N heap when it beats the admission threshold, and into the
// per-stage histograms. The caller must not mutate bt afterwards.
func (t *Tracer) Record(bt *BatchTrace) {
	if t == nil || bt == nil {
		return
	}
	i := t.head.Add(1) - 1
	t.ring[i&uint64(len(t.ring)-1)].Store(bt)

	if int64(bt.Total) > t.slowMin.Load() {
		t.offerSlow(bt)
	}

	t.histMu.Lock()
	for s := StageDecode; s < StageTotal; s++ {
		t.hists[s].Record(int64(bt.Stages[s]))
	}
	t.hists[StageTotal].Record(int64(bt.Total))
	t.histMu.Unlock()
}

// offerSlow inserts bt into the bounded min-heap and refreshes the cached
// admission threshold.
func (t *Tracer) offerSlow(bt *BatchTrace) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	if len(t.slow) < t.slowCap {
		t.slow = append(t.slow, bt)
		t.siftUp(len(t.slow) - 1)
	} else if bt.Total > t.slow[0].Total {
		t.slow[0] = bt
		t.siftDown(0)
	}
	if len(t.slow) == t.slowCap {
		t.slowMin.Store(int64(t.slow[0].Total))
	}
}

func (t *Tracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.slow[p].Total <= t.slow[i].Total {
			return
		}
		t.slow[p], t.slow[i] = t.slow[i], t.slow[p]
		i = p
	}
}

func (t *Tracer) siftDown(i int) {
	n := len(t.slow)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && t.slow[l].Total < t.slow[m].Total {
			m = l
		}
		if r < n && t.slow[r].Total < t.slow[m].Total {
			m = r
		}
		if m == i {
			return
		}
		t.slow[i], t.slow[m] = t.slow[m], t.slow[i]
		i = m
	}
}

// Recent returns up to n most-recent traces, newest first. Concurrent
// writers may be overwriting slots while this reads; the result is a
// best-effort snapshot (each returned trace is individually consistent —
// traces are immutable once recorded).
func (t *Tracer) Recent(n int) []*BatchTrace {
	if t == nil || n <= 0 {
		return nil
	}
	head := t.head.Load()
	span := uint64(len(t.ring))
	if head < span {
		span = head
	}
	if uint64(n) < span {
		span = uint64(n)
	}
	out := make([]*BatchTrace, 0, span)
	for i := uint64(0); i < span; i++ {
		bt := t.ring[(head-1-i)&uint64(len(t.ring)-1)].Load()
		if bt != nil {
			out = append(out, bt)
		}
	}
	return out
}

// Slowest returns up to n slowest traces recorded so far, slowest first.
func (t *Tracer) Slowest(n int) []*BatchTrace {
	if t == nil || n <= 0 {
		return nil
	}
	t.slowMu.Lock()
	out := make([]*BatchTrace, len(t.slow))
	copy(out, t.slow)
	t.slowMu.Unlock()
	// Small K: a simple insertion sort (descending by Total) is plenty.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Snapshot digests every stage histogram (decode..write then total), in
// stage order. Nil tracers return nil.
func (t *Tracer) Snapshot() []StageStats {
	if t == nil {
		return nil
	}
	out := make([]StageStats, 0, NumStages)
	t.histMu.Lock()
	for s := 0; s < NumStages; s++ {
		out = append(out, StageStats{
			Stage:        Stage(s).String(),
			LatencyStats: digest(t.hists[s]),
		})
	}
	t.histMu.Unlock()
	return out
}

// digest summarizes one histogram. Callers hold the histogram's lock.
func digest(h *hdr.Histogram) LatencyStats {
	return LatencyStats{
		Count: h.Count(),
		Sum:   time.Duration(h.Sum()),
		Min:   time.Duration(h.Min()),
		Max:   time.Duration(h.Max()),
		P50:   time.Duration(h.Quantile(0.50)),
		P99:   time.Duration(h.Quantile(0.99)),
		P999:  time.Duration(h.Quantile(0.999)),
	}
}

// Recorder is a mutex-guarded duration histogram for single-distribution
// observations off the batch path (pipeline combining cycles, WAL fsyncs).
// Nil receivers no-op.
type Recorder struct {
	mu sync.Mutex
	h  *hdr.Histogram
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{h: hdr.New()} }

// Record adds one duration sample.
func (r *Recorder) Record(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.h.Record(int64(d))
	r.mu.Unlock()
}

// Stats digests the distribution recorded so far.
func (r *Recorder) Stats() LatencyStats {
	if r == nil {
		return LatencyStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return digest(r.h)
}
