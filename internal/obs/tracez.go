package obs

import (
	"fmt"
	"io"
	"time"
)

// WriteTracez renders one tenant's trace report in the plain-text /tracez
// format: a summary line, the per-stage latency digest, then the
// slowest-N and most-recent-N batch traces.
func WriteTracez(w io.Writer, tenant string, t *Tracer, slowN, recentN int) {
	if t == nil {
		fmt.Fprintf(w, "== tenant %q ==\ntracing disabled (-trace-ring < 0)\n", tenant)
		return
	}
	fmt.Fprintf(w, "== tenant %q ==\n", tenant)
	fmt.Fprintf(w, "traces recorded: %d (ring %d)\n\n", t.Recorded(), t.RingSize())

	fmt.Fprintf(w, "stage latency (server-side):\n")
	fmt.Fprintf(w, "  %-8s %10s %12s %12s %12s %12s\n", "stage", "count", "p50", "p99", "p99.9", "max")
	for _, st := range t.Snapshot() {
		fmt.Fprintf(w, "  %-8s %10d %12s %12s %12s %12s\n",
			st.Stage, st.Count, fdur(st.P50), fdur(st.P99), fdur(st.P999), fdur(st.Max))
	}

	fmt.Fprintf(w, "\nslowest %d batches:\n", slowN)
	writeTraces(w, t.Slowest(slowN))
	fmt.Fprintf(w, "\nmost recent %d batches:\n", recentN)
	writeTraces(w, t.Recent(recentN))
	fmt.Fprintln(w)
}

func writeTraces(w io.Writer, traces []*BatchTrace) {
	if len(traces) == 0 {
		fmt.Fprintf(w, "  (none)\n")
		return
	}
	fmt.Fprintf(w, "  %-8s %-15s %10s %7s %7s %7s %7s %5s %5s  %s\n",
		"trace", "start", "total", "frames", "reqs", "grants", "rej", "ctl", "wave", "stages")
	for _, bt := range traces {
		wave := "-"
		if bt.Wave {
			wave = "yes"
		}
		fmt.Fprintf(w, "  %-8d %-15s %10s %7d %7d %7d %7d %5d %5s  dec=%s queue=%s exec=%s wal=%s write=%s conn=%s\n",
			bt.ID, bt.Start.Format("15:04:05.000"), fdur(bt.Total),
			bt.Frames, bt.Requests, bt.Grants, bt.Rejects, bt.CtlMsgs, wave,
			fdur(bt.Stages[StageDecode]), fdur(bt.Stages[StageQueue]),
			fdur(bt.Stages[StageExecute]), fdur(bt.Stages[StageWAL]),
			fdur(bt.Stages[StageWrite]), bt.Conn)
	}
}

// fdur formats a duration compactly for fixed-width trace tables.
func fdur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
