package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the daemon logger: format is "text" or "json"
// (matching dynctrld's -log-format flag).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
}

// nopHandler drops every record. (slog.DiscardHandler needs go 1.24;
// this module still supports 1.23.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards everything — the default for
// embedded servers (tests, benchmarks) that did not configure logging.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// EscapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double-quote and newline.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
