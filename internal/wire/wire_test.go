package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"dynctrl/internal/tree"
)

// readOne decodes exactly one frame from the encoded bytes.
func readOne(t *testing.T, enc []byte) (FrameType, []byte) {
	t.Helper()
	var buf []byte
	r := bytes.NewReader(enc)
	ft, p, err := ReadFrame(r, &buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("frame left %d undecoded bytes", r.Len())
	}
	return ft, p
}

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Version: Version, Tenant: "team-a"}
	ft, p := readOne(t, AppendHello(nil, in))
	if ft != FrameHello {
		t.Fatalf("frame type %v, want hello", ft)
	}
	out, err := DecodeHello(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestHelloEmptyTenantDefaults(t *testing.T) {
	_, p := readOne(t, AppendHello(nil, Hello{Version: Version}))
	out, err := DecodeHello(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Tenant != DefaultTenant {
		t.Fatalf("empty tenant encoded as %q, want %q", out.Tenant, DefaultTenant)
	}
}

func TestHelloLegacyShapeDecodes(t *testing.T) {
	// A v2 client's Hello has no tenant field. It must decode cleanly —
	// the server answers with a typed CodeVersion error, never a framing
	// error or a hang — and re-encode canonically.
	enc := AppendHello(nil, Hello{Version: 2})
	ft, p := readOne(t, enc)
	if ft != FrameHello {
		t.Fatalf("frame type %v, want hello", ft)
	}
	if len(p) != 2 {
		t.Fatalf("legacy hello payload %d bytes, want 2", len(p))
	}
	out, err := DecodeHello(p)
	if err != nil {
		t.Fatalf("decode legacy hello: %v", err)
	}
	if out.Version != 2 || out.Tenant != "" {
		t.Fatalf("legacy hello decoded as %+v, want {Version:2}", out)
	}
	if reenc := AppendHello(nil, out); !bytes.Equal(reenc, enc) {
		t.Fatalf("legacy hello not canonical:\n in %x\nout %x", enc, reenc)
	}
}

func TestHelloRejectsBadTenant(t *testing.T) {
	for _, bad := range []string{"", "-leading", "Upper", "has space", strings.Repeat("x", MaxTenantLen+1)} {
		var enc []byte
		enc = appendHeader(enc, FrameHello, 2+2+len(bad))
		enc = append(enc, byte(Version), 0)
		enc = append(enc, byte(len(bad)), byte(len(bad)>>8))
		enc = append(enc, bad...)
		_, p := readOne(t, enc)
		if _, err := DecodeHello(p); !errors.Is(err, ErrBadTenant) {
			t.Fatalf("tenant %q: err %v, want ErrBadTenant", bad, err)
		}
	}
}

func TestValidTenant(t *testing.T) {
	for name, want := range map[string]bool{
		"default": true, "team-a": true, "a": true, "t_0": true,
		"": false, "-x": false, "_x": false, "A": false, "a.b": false,
		strings.Repeat("z", MaxTenantLen): true, strings.Repeat("z", MaxTenantLen+1): false,
	} {
		if got := ValidTenant(name); got != want {
			t.Errorf("ValidTenant(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	in := Welcome{Version: Version, Tenant: "team-b", M: 1 << 40, W: 12345, TopoSig: 0xdeadbeefcafe, Incarnation: 42}
	ft, p := readOne(t, AppendWelcome(nil, in))
	if ft != FrameWelcome {
		t.Fatalf("frame type %v, want welcome", ft)
	}
	out, err := DecodeWelcome(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	reqs := []Req{
		{Node: 1, Kind: tree.None},
		{Node: 42, Kind: tree.AddLeaf},
		{Node: 7, Kind: tree.AddInternal, Child: 9},
		{Node: 1 << 50, Kind: tree.RemoveInternal},
	}
	ft, p := readOne(t, AppendSubmit(nil, 99, reqs))
	if ft != FrameSubmit {
		t.Fatalf("frame type %v, want submit", ft)
	}
	var s Submit
	if err := DecodeSubmit(p, &s); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if s.ID != 99 || len(s.Reqs) != len(reqs) {
		t.Fatalf("decoded id %d / %d reqs, want 99 / %d", s.ID, len(s.Reqs), len(reqs))
	}
	for i, r := range reqs {
		if s.Reqs[i] != r {
			t.Fatalf("req %d: got %+v, want %+v", i, s.Reqs[i], r)
		}
	}
}

func TestSubmitDecodeReusesBuffer(t *testing.T) {
	enc := AppendSubmit(nil, 1, []Req{{Node: 3}, {Node: 4}})
	_, p := readOne(t, enc)
	s := Submit{Reqs: make([]Req, 0, 16)}
	backing := s.Reqs[:16]
	if err := DecodeSubmit(p, &s); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if &s.Reqs[0] != &backing[0] {
		t.Fatal("decode allocated a new slice despite sufficient capacity")
	}
}

func TestResultsRoundTrip(t *testing.T) {
	results := []Result{
		{Outcome: 1, Code: CodeOK, Serial: 77, NewNode: 1234},
		{Outcome: 2, Code: CodeOK},
		{Code: CodeBadRequest},
		{Code: CodeShutdown},
	}
	ft, p := readOne(t, AppendResults(nil, 7, results))
	if ft != FrameResults {
		t.Fatalf("frame type %v, want results", ft)
	}
	var rs Results
	if err := DecodeResults(p, &rs); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rs.ID != 7 || len(rs.Results) != len(results) {
		t.Fatalf("decoded id %d / %d results, want 7 / %d", rs.ID, len(rs.Results), len(results))
	}
	for i, r := range results {
		if rs.Results[i] != r {
			t.Fatalf("result %d: got %+v, want %+v", i, rs.Results[i], r)
		}
	}
}

func TestRejectWaveRoundTrip(t *testing.T) {
	in := RejectWave{Granted: 987654321}
	ft, p := readOne(t, AppendRejectWave(nil, in))
	if ft != FrameRejectWave {
		t.Fatalf("frame type %v, want reject-wave", ft)
	}
	out, err := DecodeRejectWave(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := ErrorFrame{Code: CodeVersion, Detail: "speak version 1"}
	ft, p := readOne(t, AppendError(nil, in))
	if ft != FrameError {
		t.Fatalf("frame type %v, want error", ft)
	}
	out, err := DecodeError(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestErrorDetailTruncated(t *testing.T) {
	in := ErrorFrame{Code: CodeProtocol, Detail: strings.Repeat("x", 1<<17)}
	_, p := readOne(t, AppendError(nil, in))
	out, err := DecodeError(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Detail) != 1<<16 {
		t.Fatalf("detail length %d, want truncation to %d", len(out.Detail), 1<<16)
	}
}

func TestStreamOfFrames(t *testing.T) {
	var enc []byte
	enc = AppendHello(enc, Hello{Version: Version})
	enc = AppendSubmit(enc, 1, []Req{{Node: 2, Kind: tree.AddLeaf}})
	enc = AppendRejectWave(enc, RejectWave{Granted: 5})

	r := bytes.NewReader(enc)
	var buf []byte
	want := []FrameType{FrameHello, FrameSubmit, FrameRejectWave}
	for i, w := range want {
		ft, _, err := ReadFrame(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != w {
			t.Fatalf("frame %d: type %v, want %v", i, ft, w)
		}
	}
	if _, _, err := ReadFrame(r, &buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: err %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	enc := []byte{0xff, 0xff, 0xff, 0xff, byte(FrameSubmit)}
	var buf []byte
	if _, _, err := ReadFrame(bytes.NewReader(enc), &buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameMidFrameEOF(t *testing.T) {
	enc := AppendSubmit(nil, 1, []Req{{Node: 2}})
	var buf []byte
	if _, _, err := ReadFrame(bytes.NewReader(enc[:len(enc)-3]), &buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestDecodeSubmitRejectsBadKind(t *testing.T) {
	enc := AppendSubmit(nil, 1, []Req{{Node: 2, Kind: tree.ChangeKind(9)}})
	_, p := readOne(t, enc)
	var s Submit
	if err := DecodeSubmit(p, &s); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err %v, want ErrBadKind", err)
	}
}

func TestDecodeSubmitRejectsCountMismatch(t *testing.T) {
	enc := AppendSubmit(nil, 1, []Req{{Node: 2}, {Node: 3}})
	_, p := readOne(t, enc)
	// Inflate the declared count without growing the payload.
	p[8] = 200
	var s Submit
	if err := DecodeSubmit(p, &s); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("err %v, want ErrShortPayload", err)
	}
}

func TestDecodeTruncatedPayloads(t *testing.T) {
	frames := map[string][]byte{
		"welcome":     AppendWelcome(nil, Welcome{Version: Version, Tenant: "t0", M: 10, W: 5, TopoSig: 3}),
		"reject-wave": AppendRejectWave(nil, RejectWave{Granted: 9}),
		"error":       AppendError(nil, ErrorFrame{Code: CodeProtocol, Detail: "x"}),
	}
	for name, enc := range frames {
		_, p := readOne(t, enc)
		for cut := 0; cut < len(p); cut++ {
			short := p[:cut]
			var err error
			switch name {
			case "welcome":
				_, err = DecodeWelcome(short)
			case "reject-wave":
				_, err = DecodeRejectWave(short)
			case "error":
				_, err = DecodeError(short)
			}
			if err == nil {
				t.Fatalf("%s: decoding %d/%d payload bytes succeeded", name, cut, len(p))
			}
		}
	}
}
