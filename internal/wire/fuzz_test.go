package wire

import (
	"bytes"
	"testing"

	"dynctrl/internal/tree"
)

// FuzzDecodeFrame feeds arbitrary bytes through the frame reader and every
// payload decoder. Decoding must never panic, and whenever a payload
// decodes successfully, re-encoding it must reproduce the identical frame
// (the codec is canonical: there is exactly one encoding per value).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Version: Version, Tenant: "team-a"}))
	f.Add(AppendHello(nil, Hello{Version: 2})) // legacy tenant-less shape
	f.Add(AppendWelcome(nil, Welcome{Version: Version, Tenant: "t0", M: 1000, W: 50, TopoSig: 7}))
	f.Add(AppendSubmit(nil, 3, []Req{
		{Node: 1, Kind: tree.None},
		{Node: 2, Kind: tree.AddLeaf},
		{Node: 5, Kind: tree.AddInternal, Child: 6},
	}))
	f.Add(AppendResults(nil, 3, []Result{
		{Outcome: 1, Code: CodeOK, Serial: 9, NewNode: 11},
		{Code: CodeBadRequest},
	}))
	f.Add(AppendRejectWave(nil, RejectWave{Granted: 950}))
	f.Add(AppendError(nil, ErrorFrame{Code: CodeProtocol, Detail: "bad frame"}))
	// A stream of two frames plus trailing garbage.
	f.Add(append(AppendHello(AppendRejectWave(nil, RejectWave{Granted: 1}), Hello{Version: 2}), 0xff, 0x00, 0x13))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for frames := 0; frames < 64; frames++ {
			ft, p, err := ReadFrame(r, &buf)
			if err != nil {
				return // malformed or exhausted stream: fine, as long as no panic
			}
			var reenc []byte
			switch ft {
			case FrameHello:
				h, err := DecodeHello(p)
				if err != nil {
					continue
				}
				reenc = AppendHello(nil, h)
			case FrameWelcome:
				w, err := DecodeWelcome(p)
				if err != nil {
					continue
				}
				reenc = AppendWelcome(nil, w)
			case FrameSubmit:
				var s Submit
				if err := DecodeSubmit(p, &s); err != nil {
					continue
				}
				reenc = AppendSubmit(nil, s.ID, s.Reqs)
			case FrameResults:
				var rs Results
				if err := DecodeResults(p, &rs); err != nil {
					continue
				}
				reenc = AppendResults(nil, rs.ID, rs.Results)
			case FrameRejectWave:
				rw, err := DecodeRejectWave(p)
				if err != nil {
					continue
				}
				reenc = AppendRejectWave(nil, rw)
			case FrameError:
				e, err := DecodeError(p)
				if err != nil {
					continue
				}
				reenc = AppendError(nil, e)
			default:
				continue // unknown frame type: skipped, not fatal
			}
			// The re-encoded frame must byte-match the original: header,
			// type, payload.
			r2 := bytes.NewReader(reenc)
			var buf2 []byte
			ft2, p2, err := ReadFrame(r2, &buf2)
			if err != nil {
				t.Fatalf("re-encoded %v frame unreadable: %v", ft, err)
			}
			if ft2 != ft || !bytes.Equal(p2, p) {
				t.Fatalf("re-encode of %v frame not canonical:\n in: %x\nout: %x", ft, p, p2)
			}
			if r2.Len() != 0 {
				t.Fatalf("re-encoded %v frame left %d bytes", ft, r2.Len())
			}
		}
	})
}
