// Package wire is the binary protocol of the dynctrld admission-control
// service: a compact length-prefixed framing carrying the controller's
// Submit/grant/reject vocabulary over a byte stream.
//
// Every frame is
//
//	uint32  length   (big-endian; length of type byte + payload)
//	uint8   type     (FrameHello, FrameWelcome, ...)
//	[]byte  payload  (frame-specific, little-endian fixed-width fields)
//
// A connection opens with a Hello/Welcome version handshake. The Hello
// names the tenant namespace the connection binds to; the Welcome echoes
// the namespace and carries that tenant's admission contract and topology
// signature. Every later frame on the connection is implicitly scoped to
// the bound namespace — there is no per-request tenant field, so a
// connection cannot address another tenant's state at all. A Hello naming
// an unknown namespace is answered with an Error frame (CodeTenant) and
// the connection is closed.
//
// After the handshake the client streams Submit frames — each a
// correlation id plus a batch of requests — and the server answers each
// with a Results frame carrying the same id and one result per request, in
// order. Results may arrive out of submission order across ids (the server
// pipelines), so clients match on the id. A RejectWave frame may be pushed
// by the server at any point after the handshake: it announces that the
// bound tenant's reject wave has run and every later request will be
// rejected. An Error frame is connection-fatal.
//
// The payload encodings are fixed-width little-endian (no varints): the
// hot-path frames are Submit and Results, and fixed widths keep encode and
// decode branch-free per entry. The tenant name in the handshake frames is
// the one variable-width field (u16 length + bytes), paid once per
// connection. Frames are bounded by MaxFrame; a decoder must reject
// anything larger before allocating.
//
// The normative protocol document — framing, version negotiation, every
// frame's field table, error codes, and the tenant-scoping rules — is
// docs/PROTOCOL.md; this package is its reference implementation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dynctrl/internal/tree"
)

// Version is the protocol version spoken by this package. A server answers
// a Hello carrying an unknown version with an Error frame (CodeVersion) and
// closes the connection. Version 2 added the server's durability
// incarnation to the Welcome frame; version 3 added the tenant namespace
// to both handshake frames (Hello names the namespace the connection binds
// to, Welcome echoes it). DecodeHello still accepts the v1/v2 frame shape,
// so a server can refuse an old client with a typed CodeVersion error
// instead of a protocol error or a hang.
const Version = 3

// DefaultTenant is the namespace a connection binds to when the client
// does not name one, and the namespace a single-tenant daemon serves.
const DefaultTenant = "default"

// MaxTenantLen bounds the tenant namespace name in the handshake frames.
const MaxTenantLen = 64

// ValidTenant reports whether name is a legal tenant namespace: 1 to
// MaxTenantLen bytes of lowercase letters, digits, '-' or '_', starting
// with a letter or digit. Names double as WAL subdirectory names and
// /metricsz label values, so the alphabet is deliberately narrow.
func ValidTenant(name string) bool {
	if len(name) < 1 || len(name) > MaxTenantLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// MaxFrame bounds the length prefix (type byte + payload) of every frame.
// It admits a Submit batch of over 60k requests, far above any sane
// read-batch, while keeping a malicious length prefix from driving a large
// allocation.
const MaxFrame = 1 << 20

// FrameType tags a frame.
type FrameType uint8

// Frame types.
const (
	// FrameHello opens a connection: client → server, {version}.
	FrameHello FrameType = 1
	// FrameWelcome accepts the handshake: server → client,
	// {version, M, W, topology signature}.
	FrameWelcome FrameType = 2
	// FrameSubmit carries a correlated batch of requests: client → server.
	FrameSubmit FrameType = 3
	// FrameResults answers one Submit frame: server → client, same id, one
	// result per request in order.
	FrameResults FrameType = 4
	// FrameRejectWave announces that the reject wave has run: server →
	// client, {granted so far}. Push-only; no response.
	FrameRejectWave FrameType = 5
	// FrameError reports a connection-fatal protocol error; the sender
	// closes the connection after writing it.
	FrameError FrameType = 6
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameSubmit:
		return "submit"
	case FrameResults:
		return "results"
	case FrameRejectWave:
		return "reject-wave"
	case FrameError:
		return "error"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Per-result error codes (Result.Code). CodeOK accompanies every answered
// request; the others replace an outcome when the controller returned an
// error for that request.
const (
	// CodeOK: the request was answered; Outcome/Serial/NewNode are valid.
	CodeOK uint8 = 0
	// CodeShutdown: the server is draining; the request was not admitted.
	CodeShutdown uint8 = 1
	// CodeTerminated: a terminating controller has terminated.
	CodeTerminated uint8 = 2
	// CodeBadRequest: the controller refused the request (unknown node,
	// invalid kind for the target, ...).
	CodeBadRequest uint8 = 3
	// CodeInternal: the server failed to process the request.
	CodeInternal uint8 = 4
)

// Connection-fatal error codes (ErrorFrame.Code).
const (
	// CodeVersion: the Hello carried an unsupported protocol version.
	CodeVersion uint8 = 10
	// CodeProtocol: a malformed or unexpected frame was received.
	CodeProtocol uint8 = 11
	// CodeTenant: the Hello named a tenant namespace this server does not
	// serve (or a malformed name). The connection is never bound; nothing
	// the client sends can touch any tenant's state.
	CodeTenant uint8 = 12
)

// Decode errors.
var (
	// ErrFrameTooLarge is returned for a length prefix above MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	// ErrShortPayload is returned when a payload ends mid-field.
	ErrShortPayload = errors.New("wire: truncated payload")
	// ErrBadKind is returned for an out-of-range request kind.
	ErrBadKind = errors.New("wire: invalid request kind")
	// ErrBadTenant is returned for a handshake tenant name that fails
	// ValidTenant.
	ErrBadTenant = errors.New("wire: invalid tenant name")
)

// Req is one request on the wire: the node the request arrives at, the
// change kind, and (for AddInternal) the child whose parent edge splits.
// It mirrors controller.Request without importing it — the wire format is
// the boundary, so it depends only on the tree vocabulary.
type Req struct {
	Node  tree.NodeID
	Kind  tree.ChangeKind
	Child tree.NodeID
}

// Result is one per-request answer. When Code is not CodeOK the outcome
// fields are meaningless and the request failed with the coded error.
type Result struct {
	Outcome uint8
	Code    uint8
	Serial  int64
	NewNode tree.NodeID
}

// Hello is the client's opening frame. Tenant names the namespace the
// connection binds to (DefaultTenant when the client left it empty); in
// the v1/v2 frame shape the field is absent and decodes as "".
type Hello struct {
	Version uint16
	Tenant  string
}

// Welcome is the server's handshake answer: the protocol version it will
// speak, the tenant namespace the connection is now bound to (echoing the
// Hello), and that tenant's admission contract. TopoSig is a signature of
// the tenant's initial topology (workload.TopologySignature) so a load
// generator replaying a scenario can verify it reconstructed the same
// tree. Incarnation is the tenant's durability incarnation — how many
// times its WAL directory has been opened — so a client can tell it
// reconnected to a restarted (state-recovered) daemon rather than a fresh
// one; tenants without a WAL report 0.
type Welcome struct {
	Version     uint16
	Tenant      string
	M, W        int64
	TopoSig     uint64
	Incarnation uint64
}

// Submit is a correlated batch of requests.
type Submit struct {
	ID   uint64
	Reqs []Req
}

// Results answers the Submit frame with the same ID.
type Results struct {
	ID      uint64
	Results []Result
}

// RejectWave announces the reject wave; Granted is the server's grant count
// at the time the wave ran.
type RejectWave struct {
	Granted int64
}

// ErrorFrame is a connection-fatal error.
type ErrorFrame struct {
	Code   uint8
	Detail string
}

// String renders the error frame for diagnostics.
func (e ErrorFrame) String() string {
	return fmt.Sprintf("code %d: %s", e.Code, e.Detail)
}

// reqSize is the encoded size of one Req (node + kind + child).
const reqSize = 8 + 1 + 8

// resSize is the encoded size of one Result.
const resSize = 1 + 1 + 8 + 8

// MaxBatchLen is the largest request count one Submit frame may carry such
// that both the Submit frame and its Results reply (whose entries are the
// wider of the two encodings) fit MaxFrame. Clients must split longer runs
// across several frames.
const MaxBatchLen = (MaxFrame - 1 - 8 - 4) / resSize

// appendHeader appends the length prefix and type byte for a payload of n
// bytes.
func appendHeader(buf []byte, t FrameType, n int) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(n+1))
	return append(buf, byte(t))
}

// appendTenant appends the u16-length-prefixed tenant name. Names longer
// than MaxTenantLen are truncated (encoders should have validated with
// ValidTenant already; truncation only keeps a buggy caller within frame
// bounds).
func appendTenant(buf []byte, tenant string) []byte {
	if len(tenant) > MaxTenantLen {
		tenant = tenant[:MaxTenantLen]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tenant)))
	return append(buf, tenant...)
}

// AppendHello appends an encoded Hello frame to buf. Versions below 3 are
// encoded in the legacy tenant-less shape (the codec is canonical per
// version); for v3+ an empty Tenant is sent as DefaultTenant.
func AppendHello(buf []byte, h Hello) []byte {
	if h.Version < 3 {
		buf = appendHeader(buf, FrameHello, 2)
		return binary.LittleEndian.AppendUint16(buf, h.Version)
	}
	tenant := h.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if len(tenant) > MaxTenantLen {
		tenant = tenant[:MaxTenantLen]
	}
	buf = appendHeader(buf, FrameHello, 2+2+len(tenant))
	buf = binary.LittleEndian.AppendUint16(buf, h.Version)
	return appendTenant(buf, tenant)
}

// AppendWelcome appends an encoded Welcome frame to buf.
func AppendWelcome(buf []byte, w Welcome) []byte {
	tenant := w.Tenant
	if len(tenant) > MaxTenantLen {
		tenant = tenant[:MaxTenantLen]
	}
	buf = appendHeader(buf, FrameWelcome, 2+2+len(tenant)+8+8+8+8)
	buf = binary.LittleEndian.AppendUint16(buf, w.Version)
	buf = appendTenant(buf, tenant)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.M))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.W))
	buf = binary.LittleEndian.AppendUint64(buf, w.TopoSig)
	return binary.LittleEndian.AppendUint64(buf, w.Incarnation)
}

// AppendSubmit appends an encoded Submit frame to buf.
func AppendSubmit(buf []byte, id uint64, reqs []Req) []byte {
	buf = appendHeader(buf, FrameSubmit, 8+4+len(reqs)*reqSize)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(reqs)))
	for _, r := range reqs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Node))
		buf = append(buf, byte(r.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Child))
	}
	return buf
}

// AppendResults appends an encoded Results frame to buf.
func AppendResults(buf []byte, id uint64, results []Result) []byte {
	buf = appendHeader(buf, FrameResults, 8+4+len(results)*resSize)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(results)))
	for _, r := range results {
		buf = append(buf, r.Outcome, r.Code)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Serial))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.NewNode))
	}
	return buf
}

// AppendRejectWave appends an encoded RejectWave frame to buf.
func AppendRejectWave(buf []byte, rw RejectWave) []byte {
	buf = appendHeader(buf, FrameRejectWave, 8)
	return binary.LittleEndian.AppendUint64(buf, uint64(rw.Granted))
}

// AppendError appends an encoded Error frame to buf. Details longer than
// 64 KiB are truncated so the frame always fits MaxFrame.
func AppendError(buf []byte, e ErrorFrame) []byte {
	detail := e.Detail
	if len(detail) > 1<<16 {
		detail = detail[:1<<16]
	}
	buf = appendHeader(buf, FrameError, 1+4+len(detail))
	buf = append(buf, e.Code)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(detail)))
	return append(buf, detail...)
}

// ReadFrame reads one frame from r, reusing *buf for the payload when it
// has capacity (growing it in place otherwise). It returns the frame type
// and the payload bytes, which stay valid until the next ReadFrame with the
// same buffer. io.EOF is returned untouched on a clean EOF at a frame
// boundary; a mid-frame EOF surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf *[]byte) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, unexpected(err)
	}
	t := FrameType(hdr[4])
	plen := int(n) - 1
	if cap(*buf) < plen {
		*buf = make([]byte, plen)
	}
	p := (*buf)[:plen]
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, unexpected(err)
	}
	return t, p, nil
}

func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// byteReader is the minimal cursor shared by the payload decoders.
type byteReader struct {
	p   []byte
	off int
}

func (b *byteReader) u8() (uint8, error) {
	if b.off+1 > len(b.p) {
		return 0, ErrShortPayload
	}
	v := b.p[b.off]
	b.off++
	return v, nil
}

func (b *byteReader) u16() (uint16, error) {
	if b.off+2 > len(b.p) {
		return 0, ErrShortPayload
	}
	v := binary.LittleEndian.Uint16(b.p[b.off:])
	b.off += 2
	return v, nil
}

func (b *byteReader) u32() (uint32, error) {
	if b.off+4 > len(b.p) {
		return 0, ErrShortPayload
	}
	v := binary.LittleEndian.Uint32(b.p[b.off:])
	b.off += 4
	return v, nil
}

func (b *byteReader) u64() (uint64, error) {
	if b.off+8 > len(b.p) {
		return 0, ErrShortPayload
	}
	v := binary.LittleEndian.Uint64(b.p[b.off:])
	b.off += 8
	return v, nil
}

// tenant reads a u16-length-prefixed tenant name and validates it.
func (b *byteReader) tenant() (string, error) {
	n, err := b.u16()
	if err != nil {
		return "", err
	}
	if b.off+int(n) > len(b.p) {
		return "", ErrShortPayload
	}
	name := string(b.p[b.off : b.off+int(n)])
	b.off += int(n)
	if !ValidTenant(name) {
		return "", fmt.Errorf("%w: %q", ErrBadTenant, name)
	}
	return name, nil
}

func (b *byteReader) trailing() error {
	if b.off != len(b.p) {
		return fmt.Errorf("wire: %d trailing payload bytes", len(b.p)-b.off)
	}
	return nil
}

// DecodeHello decodes a Hello payload. The v1/v2 frame shape — a bare
// version with no tenant field — still decodes cleanly (Tenant ""), so a
// server can answer an old client with a typed CodeVersion error instead
// of tearing the connection down on a framing error. The v3 shape carries
// the tenant name, which is validated here.
func DecodeHello(p []byte) (Hello, error) {
	b := byteReader{p: p}
	v, err := b.u16()
	if err != nil {
		return Hello{}, err
	}
	if v < 3 {
		// Pre-tenancy Hello: nothing after the version.
		return Hello{Version: v}, b.trailing()
	}
	tenant, err := b.tenant()
	if err != nil {
		return Hello{}, err
	}
	return Hello{Version: v, Tenant: tenant}, b.trailing()
}

// DecodeWelcome decodes a Welcome payload (v3 shape).
func DecodeWelcome(p []byte) (Welcome, error) {
	b := byteReader{p: p}
	var w Welcome
	v, err := b.u16()
	if err != nil {
		return w, err
	}
	w.Version = v
	tenant, err := b.tenant()
	if err != nil {
		return w, err
	}
	w.Tenant = tenant
	m, err := b.u64()
	if err != nil {
		return w, err
	}
	w.M = int64(m)
	wv, err := b.u64()
	if err != nil {
		return w, err
	}
	w.W = int64(wv)
	sig, err := b.u64()
	if err != nil {
		return w, err
	}
	w.TopoSig = sig
	inc, err := b.u64()
	if err != nil {
		return w, err
	}
	w.Incarnation = inc
	return w, b.trailing()
}

// DecodeSubmit decodes a Submit payload into s, reusing s.Reqs when it has
// capacity. The declared count is validated against the payload length
// before any allocation, so a hostile count cannot drive a large make.
func DecodeSubmit(p []byte, s *Submit) error {
	b := byteReader{p: p}
	id, err := b.u64()
	if err != nil {
		return err
	}
	count, err := b.u32()
	if err != nil {
		return err
	}
	if int(count)*reqSize != len(p)-b.off {
		return fmt.Errorf("wire: submit declares %d requests, payload holds %d bytes: %w",
			count, len(p)-b.off, ErrShortPayload)
	}
	s.ID = id
	if cap(s.Reqs) < int(count) {
		s.Reqs = make([]Req, count)
	}
	s.Reqs = s.Reqs[:count]
	for i := range s.Reqs {
		node, _ := b.u64()
		kind, _ := b.u8()
		child, _ := b.u64()
		if tree.ChangeKind(kind) < tree.None || tree.ChangeKind(kind) > tree.RemoveInternal {
			return fmt.Errorf("%w: %d", ErrBadKind, kind)
		}
		s.Reqs[i] = Req{Node: tree.NodeID(node), Kind: tree.ChangeKind(kind), Child: tree.NodeID(child)}
	}
	return b.trailing()
}

// DecodeResults decodes a Results payload into rs, reusing rs.Results when
// it has capacity.
func DecodeResults(p []byte, rs *Results) error {
	b := byteReader{p: p}
	id, err := b.u64()
	if err != nil {
		return err
	}
	count, err := b.u32()
	if err != nil {
		return err
	}
	if int(count)*resSize != len(p)-b.off {
		return fmt.Errorf("wire: results declare %d entries, payload holds %d bytes: %w",
			count, len(p)-b.off, ErrShortPayload)
	}
	rs.ID = id
	if cap(rs.Results) < int(count) {
		rs.Results = make([]Result, count)
	}
	rs.Results = rs.Results[:count]
	for i := range rs.Results {
		outcome, _ := b.u8()
		code, _ := b.u8()
		serial, _ := b.u64()
		newNode, _ := b.u64()
		rs.Results[i] = Result{
			Outcome: outcome,
			Code:    code,
			Serial:  int64(serial),
			NewNode: tree.NodeID(newNode),
		}
	}
	return b.trailing()
}

// DecodeRejectWave decodes a RejectWave payload.
func DecodeRejectWave(p []byte) (RejectWave, error) {
	b := byteReader{p: p}
	g, err := b.u64()
	if err != nil {
		return RejectWave{}, err
	}
	return RejectWave{Granted: int64(g)}, b.trailing()
}

// DecodeError decodes an Error payload.
func DecodeError(p []byte) (ErrorFrame, error) {
	b := byteReader{p: p}
	code, err := b.u8()
	if err != nil {
		return ErrorFrame{}, err
	}
	n, err := b.u32()
	if err != nil {
		return ErrorFrame{}, err
	}
	if int(n) != len(p)-b.off {
		return ErrorFrame{}, fmt.Errorf("wire: error detail declares %d bytes, payload holds %d: %w",
			n, len(p)-b.off, ErrShortPayload)
	}
	detail := string(p[b.off:])
	return ErrorFrame{Code: code, Detail: detail}, nil
}
