package oracle

import (
	"errors"
	"testing"

	"dynctrl/internal/controller"
)

func recordSequence(t *TenantTrace, grants []controller.Grant) {
	for _, g := range grants {
		t.Record(g, nil)
	}
}

func TestTenantTraceDeterministic(t *testing.T) {
	grants := []controller.Grant{
		{Outcome: controller.Granted, Serial: 1},
		{Outcome: controller.Granted, Serial: 2, NewNode: 7},
		{Outcome: controller.Rejected},
	}
	a := NewTenantTrace("t", 10)
	b := NewTenantTrace("t", 10)
	recordSequence(a, grants)
	recordSequence(b, grants)
	if a.Hash() != b.Hash() {
		t.Fatalf("identical streams hash %#x vs %#x", a.Hash(), b.Hash())
	}
	if a.Granted != 2 || a.Rejected != 1 || a.Submitted != 3 || a.Errors != 0 {
		t.Fatalf("tallies %+v", a)
	}
}

func TestTenantTraceOrderSensitive(t *testing.T) {
	g1 := controller.Grant{Outcome: controller.Granted, Serial: 1}
	g2 := controller.Grant{Outcome: controller.Granted, Serial: 2}
	a := NewTenantTrace("t", 10)
	b := NewTenantTrace("t", 10)
	recordSequence(a, []controller.Grant{g1, g2})
	recordSequence(b, []controller.Grant{g2, g1})
	if a.Hash() == b.Hash() {
		t.Fatal("reordered stream did not change the hash")
	}
}

func TestTenantTraceErrorsAreDistinct(t *testing.T) {
	a := NewTenantTrace("t", 10)
	b := NewTenantTrace("t", 10)
	a.Record(controller.Grant{}, errors.New("boom"))
	b.Record(controller.Grant{Outcome: controller.Rejected}, nil)
	if a.Hash() == b.Hash() {
		t.Fatal("an error folds like a rejection")
	}
	if a.Errors != 1 || b.Errors != 0 {
		t.Fatalf("error tallies %d / %d", a.Errors, b.Errors)
	}
}

func TestCheckTenantIsolationClean(t *testing.T) {
	grants := []controller.Grant{
		{Outcome: controller.Granted, Serial: 1},
		{Outcome: controller.Rejected},
	}
	a := NewTenantTrace("b-team", 10)
	b := NewTenantTrace("b-team", 10)
	recordSequence(a, grants)
	recordSequence(b, grants)
	if v := CheckTenantIsolation(a, b); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}
}

func TestCheckTenantIsolationCatchesMovedVerdicts(t *testing.T) {
	a := NewTenantTrace("b-team", 10)
	b := NewTenantTrace("b-team", 10)
	// Same tallies, different serials: only the hash can see it.
	recordSequence(a, []controller.Grant{{Outcome: controller.Granted, Serial: 1}})
	recordSequence(b, []controller.Grant{{Outcome: controller.Granted, Serial: 3}})
	v := CheckTenantIsolation(a, b)
	if len(v) == 0 {
		t.Fatal("moved serial not detected")
	}
	if v[0].Invariant != "tenant-verdict-trace" {
		t.Fatalf("invariant %q, want tenant-verdict-trace", v[0].Invariant)
	}
}

func TestCheckTenantIsolationCatchesMovedTallies(t *testing.T) {
	a := NewTenantTrace("b-team", 10)
	b := NewTenantTrace("b-team", 10)
	recordSequence(a, []controller.Grant{{Outcome: controller.Granted, Serial: 1}, {Outcome: controller.Rejected}})
	recordSequence(b, []controller.Grant{{Outcome: controller.Granted, Serial: 1}, {Outcome: controller.Granted, Serial: 2}})
	found := map[string]bool{}
	for _, viol := range CheckTenantIsolation(a, b) {
		found[viol.Invariant] = true
	}
	if !found["tenant-accounting"] || !found["tenant-verdict-trace"] {
		t.Fatalf("violations %v, want tenant-accounting and tenant-verdict-trace", found)
	}
}

func TestCheckTenantIsolationCatchesOverdraft(t *testing.T) {
	a := NewTenantTrace("b-team", 1)
	b := NewTenantTrace("b-team", 1)
	grants := []controller.Grant{
		{Outcome: controller.Granted, Serial: 1},
		{Outcome: controller.Granted, Serial: 2},
	}
	recordSequence(a, grants)
	recordSequence(b, grants)
	v := CheckTenantIsolation(a, b)
	if len(v) != 2 || v[0].Invariant != "tenant-safety-counter" {
		t.Fatalf("violations %v, want two tenant-safety-counter breaches", v)
	}
}

func TestCheckTenantIsolationRejectsMixedTenants(t *testing.T) {
	a := NewTenantTrace("a-team", 10)
	b := NewTenantTrace("b-team", 10)
	if v := CheckTenantIsolation(a, b); len(v) == 0 {
		t.Fatal("traces of different tenants compared silently")
	}
}
