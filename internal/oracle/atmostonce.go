package oracle

// This file adds the hostile-network checker: at-most-once grant
// semantics and exact accounting across a lossy, duplicating, reordering
// network. The setting is a wire client whose connections are being
// killed, stalled and replayed by the network (see internal/faultnet):
// replies can be lost after the server executed a batch, so the client's
// view may lag the server's — but it must never *lead* it. The checker
// works from observable tallies alone, the package's house style: the
// client folds everything it saw into a TenantTrace, the server reports
// its wire-level accounting and its controller counters, and
// CheckAtMostOnce validates the containment chain
//
//	client-observed <= server-answered <= server-executed <= M
//
// A duplicated Results frame that slipped a grant into the client twice,
// a retried batch that burned permits twice behind the caller's back, or
// accounting that drifted from execution each breaks one link.

import "fmt"

// WireTally is one side's count of request verdicts on the wire.
type WireTally struct {
	// Ops is the total number of per-request verdicts (grants + rejects +
	// errors).
	Ops int64
	// Granted, Rejected and Errors split Ops by verdict.
	Granted, Rejected, Errors int64
}

// AtMostOnceReport is everything CheckAtMostOnce needs about one faulted
// run.
type AtMostOnceReport struct {
	// Tenant names the namespace, for violation messages.
	Tenant string
	// M is the tenant's permit bound.
	M int64
	// Client is what the clients observed: verdicts actually delivered
	// over the (faulted) network, summed over every connection and retry.
	Client WireTally
	// Server is the server's wire-level accounting: verdicts it counted
	// when answering (tallied before the reply hits the socket, so it may
	// exceed what any client received — never the reverse).
	Server WireTally
	// Executed is the server's controller-level grant count (summed over
	// incarnations for a recovered server): every permit actually burned,
	// including batches whose replies were lost before accounting.
	Executed int64
}

// CheckAtMostOnce validates the containment chain of a faulted run.
// Violations carry Request = -1 (they are about totals, not a single
// request).
func CheckAtMostOnce(r AtMostOnceReport) []Violation {
	var out []Violation
	report := func(invariant, format string, args ...any) {
		out = append(out, Violation{
			Invariant: invariant,
			Request:   -1,
			Detail:    fmt.Sprintf("tenant %q: ", r.Tenant) + fmt.Sprintf(format, args...),
		})
	}

	if sum := r.Client.Granted + r.Client.Rejected + r.Client.Errors; sum != r.Client.Ops {
		report("at-most-once-client-tally", "client verdicts %d+%d+%d != ops %d",
			r.Client.Granted, r.Client.Rejected, r.Client.Errors, r.Client.Ops)
	}
	if sum := r.Server.Granted + r.Server.Rejected + r.Server.Errors; sum != r.Server.Ops {
		report("at-most-once-server-tally", "server verdicts %d+%d+%d != ops %d",
			r.Server.Granted, r.Server.Rejected, r.Server.Errors, r.Server.Ops)
	}

	// The client can miss replies the server sent into a dead connection,
	// but can never observe a verdict the server did not answer.
	if r.Client.Granted > r.Server.Granted {
		report("at-most-once-grants", "clients observed %d grants, server answered only %d"+
			" (a duplicated or replayed grant was double-counted)", r.Client.Granted, r.Server.Granted)
	}
	if r.Client.Rejected > r.Server.Rejected {
		report("at-most-once-rejects", "clients observed %d rejects, server answered only %d",
			r.Client.Rejected, r.Server.Rejected)
	}

	// The server accounts a verdict only after the controller produced it,
	// so answered grants are bounded by executed grants ...
	if r.Server.Granted > r.Executed {
		report("at-most-once-accounting", "server answered %d grants but executed only %d"+
			" (accounting drifted from execution)", r.Server.Granted, r.Executed)
	}
	// ... and execution is bounded by the paper's safety counter, crash or
	// no crash.
	if r.Executed > r.M {
		report("safety-counter", "executed %d grants with M = %d", r.Executed, r.M)
	}
	return out
}

// CheckSerialsUnique reports every serial number that appears more than
// once in serials — the client-side half of exactly-once naming: even
// under replayed frames, no two grants the clients accepted may carry
// the same serial. Zero serials (controllers running without serial
// naming) are ignored.
func CheckSerialsUnique(serials []int64) []Violation {
	seen := make(map[int64]int, len(serials))
	var out []Violation
	for _, s := range serials {
		if s == 0 {
			continue
		}
		seen[s]++
		if seen[s] == 2 {
			out = append(out, Violation{
				Invariant: "serial-unique",
				Request:   -1,
				Detail:    fmt.Sprintf("serial %d delivered to clients more than once", s),
			})
		}
	}
	return out
}
