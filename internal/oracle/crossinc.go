package oracle

import "fmt"

// Cross-incarnation invariant checks: the durability engine (internal/
// persist) makes the (M,W) contract span process restarts, so the oracle
// suite gains a checker that works over the whole retained effect history
// — one summary per incarnation — instead of a single live run:
//
//   - xinc-safety-counter: permits granted summed across every incarnation
//     never exceed M (a restart must not refill the permit budget).
//   - xinc-serial-unique / xinc-serial-range: explicit serials are fresh
//     across incarnations, not just within one (a recovered allocator must
//     continue, never rewind), and lie in [1, M].
//   - xinc-monotonic: incarnation numbers strictly increase and the WAL
//     index ranges of successive incarnations never overlap — overlapping
//     ranges mean two processes wrote the same log (a forked history).

// IncarnationSummary condenses one incarnation's effect history for the
// cross-incarnation checks. internal/persist produces these from the WAL.
type IncarnationSummary struct {
	Incarnation uint64 `json:"incarnation"`
	Granted     int64  `json:"granted"`
	Rejected    int64  `json:"rejected"`
	// Serials lists every explicit (non-zero) serial granted.
	Serials []int64 `json:"serials,omitempty"`
	// FirstIndex/LastIndex bound the WAL indices this incarnation wrote
	// (0/0 when it wrote none).
	FirstIndex uint64 `json:"first_index,omitempty"`
	LastIndex  uint64 `json:"last_index,omitempty"`
}

// CheckCrossIncarnations verifies the restart-spanning invariants over the
// given per-incarnation summaries (in log order) against the permit bound
// m. It returns every violation found; Request fields are -1 (the checks
// are end-of-history, not tied to one submission).
func CheckCrossIncarnations(m int64, incs []IncarnationSummary) []Violation {
	var violations []Violation
	report := func(invariant, format string, args ...any) {
		violations = append(violations, Violation{Invariant: invariant, Request: -1,
			Detail: fmt.Sprintf(format, args...)})
	}

	var granted int64
	seen := make(map[int64]uint64, 64) // serial -> incarnation that granted it
	var prev *IncarnationSummary
	for i := range incs {
		inc := &incs[i]
		granted += inc.Granted
		if prev != nil {
			if inc.Incarnation <= prev.Incarnation {
				report("xinc-monotonic",
					"incarnation %d follows %d in the log", inc.Incarnation, prev.Incarnation)
			}
			if inc.FirstIndex != 0 && prev.LastIndex != 0 && inc.FirstIndex <= prev.LastIndex {
				report("xinc-monotonic",
					"incarnation %d starts at WAL index %d, incarnation %d already wrote through %d (forked history)",
					inc.Incarnation, inc.FirstIndex, prev.Incarnation, prev.LastIndex)
			}
		}
		for _, serial := range inc.Serials {
			if serial < 1 || serial > m {
				report("xinc-serial-range",
					"incarnation %d granted serial %d outside [1, M=%d]", inc.Incarnation, serial, m)
			}
			if by, dup := seen[serial]; dup {
				report("xinc-serial-unique",
					"serial %d granted by incarnation %d and again by incarnation %d",
					serial, by, inc.Incarnation)
			} else {
				seen[serial] = inc.Incarnation
			}
		}
		prev = inc
	}
	if granted > m {
		report("xinc-safety-counter",
			"%d permits granted across %d incarnations, contract allows M=%d", granted, len(incs), m)
	}
	return violations
}
