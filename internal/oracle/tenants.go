package oracle

// This file adds the cross-tenant isolation checker. A multi-tenant
// daemon promises that every namespace behaves exactly as if it were the
// only one: tenant A flooding the daemon must not move tenant B's
// verdicts, counters, or safety budget by a single bit. The checker works
// from the observable request/grant stream alone, like the rest of the
// package: a TenantTrace folds a tenant's verdict stream into an
// order-sensitive hash plus tallies, and CheckTenantIsolation compares
// the trace a tenant produced while running alone (the baseline) against
// the trace the identical request sequence produced while another tenant
// was flooding (the disturbed run).

import (
	"fmt"

	"dynctrl/internal/controller"
)

// TenantTrace accumulates one tenant's verdict stream: an order-sensitive
// FNV-1a hash over every (outcome, serial, new-node) verdict triple —
// errors fold in as a distinct marker — plus the wire-level tallies. Two
// runs of the same request sequence against isolated stacks produce equal
// traces; any cross-tenant interference that moves a single verdict, or
// reorders one, changes the hash.
type TenantTrace struct {
	// Tenant names the namespace the trace belongs to.
	Tenant string
	// M is the tenant's permit bound, for the per-tenant safety check.
	M int64

	// Submitted, Granted, Rejected and Errors tally the recorded verdicts.
	Submitted, Granted, Rejected, Errors int64

	hash uint64
}

// NewTenantTrace starts an empty trace for the named tenant under permit
// bound m.
func NewTenantTrace(tenant string, m int64) *TenantTrace {
	t := &TenantTrace{Tenant: tenant, M: m}
	t.hash = fnv64aOffset
	return t
}

const (
	fnv64aOffset = 14695981039346656037
	fnv64aPrime  = 1099511628211
)

// fold mixes one little-endian int64 word into the running hash, matching
// hash/fnv's byte order so the stream hash is stable across platforms.
func (t *TenantTrace) fold(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		t.hash ^= u & 0xff
		t.hash *= fnv64aPrime
		u >>= 8
	}
}

// Record folds one verdict into the trace, in submission order.
func (t *TenantTrace) Record(g controller.Grant, err error) {
	t.Submitted++
	if err != nil {
		t.Errors++
		t.fold(-1)
		return
	}
	switch g.Outcome {
	case controller.Granted:
		t.Granted++
	case controller.Rejected:
		t.Rejected++
	}
	t.fold(int64(g.Outcome))
	t.fold(g.Serial)
	t.fold(int64(g.NewNode))
}

// Hash returns the order-sensitive digest of the verdicts recorded so far.
func (t *TenantTrace) Hash() uint64 { return t.hash }

// CheckTenantIsolation compares a tenant's baseline trace (the request
// sequence run with no other tenant active) against the disturbed trace
// (the identical sequence run while another tenant floods the daemon) and
// reports every isolation breach:
//
//   - tenant-verdict-trace: the verdict streams must be bitwise identical
//     — same outcomes, same serials, same new-node ids, in the same order.
//   - tenant-accounting: the submitted/granted/rejected/error tallies must
//     match exactly (this is the reconciliation contract per-tenant
//     /metricsz makes to loadgen).
//   - tenant-safety-counter: each run respects the tenant's own permit
//     bound — flooding a neighbor must not let a tenant overdraw, nor
//     shrink, its private budget.
//
// Violations use Request = -1: isolation is an end-of-run property.
func CheckTenantIsolation(baseline, disturbed *TenantTrace) []Violation {
	var out []Violation
	report := func(invariant, detail string) {
		out = append(out, Violation{Invariant: invariant, Request: -1, Detail: detail})
	}
	if baseline.Tenant != disturbed.Tenant {
		report("tenant-verdict-trace", fmt.Sprintf(
			"comparing traces of different tenants: %q vs %q", baseline.Tenant, disturbed.Tenant))
		return out
	}
	if baseline.Submitted != disturbed.Submitted {
		report("tenant-accounting", fmt.Sprintf(
			"tenant %q: baseline submitted %d requests, disturbed run %d — not the same sequence",
			baseline.Tenant, baseline.Submitted, disturbed.Submitted))
	}
	if baseline.Hash() != disturbed.Hash() {
		report("tenant-verdict-trace", fmt.Sprintf(
			"tenant %q: verdict stream moved under neighbor load: baseline hash %#x, disturbed %#x",
			baseline.Tenant, baseline.Hash(), disturbed.Hash()))
	}
	if baseline.Granted != disturbed.Granted ||
		baseline.Rejected != disturbed.Rejected ||
		baseline.Errors != disturbed.Errors {
		report("tenant-accounting", fmt.Sprintf(
			"tenant %q: tallies moved under neighbor load: baseline granted=%d rejected=%d errors=%d, disturbed granted=%d rejected=%d errors=%d",
			baseline.Tenant, baseline.Granted, baseline.Rejected, baseline.Errors,
			disturbed.Granted, disturbed.Rejected, disturbed.Errors))
	}
	for _, t := range []*TenantTrace{baseline, disturbed} {
		if t.M > 0 && t.Granted > t.M {
			report("tenant-safety-counter", fmt.Sprintf(
				"tenant %q: %d grants exceed the tenant's own M=%d", t.Tenant, t.Granted, t.M))
		}
	}
	return out
}
