// Package oracle provides always-on invariant checkers for the
// (M,W)-controller implementations.
//
// An Oracle wraps any request submitter — the centralized controller.Core,
// the distributed dist.Core/Iterated/Dynamic front-ends, the batching
// pipeline — and re-derives the paper's guarantees from the observable
// request/grant stream alone, without trusting the implementation's own
// counters:
//
//   - safety-counter: at most M permits are ever granted (the defining
//     safety property of an (M,W)-Controller, Section 2.1).
//   - reject-legality: a request is rejected only after at least M−W
//     permits have been granted (the waste bound; Theorem 3.2 for the
//     fixed-U core, Theorems 3.5/4.9 for the drivers).
//   - reject-finality: once the reject wave has run, no later request is
//     granted (item 1 of Protocol GrantOrReject: a reject package at the
//     node rejects outright).
//   - serial-unique / serial-range: explicit permit serials are pairwise
//     distinct and lie in [1, M] (the name-assignment invariant of
//     Section 5.2).
//   - message-budget: the transport messages spent on one request stay
//     within the per-request geometric envelope of Lemma 4.5 — a climb and
//     a descent bounded by the tree height per driver attempt, plus one
//     reject-wave flood — with a generous constant so only runaway
//     protocols (resend loops, livelock) trip it.
//   - tree-structure: the tree stays structurally valid (parent/child
//     symmetry, depth cache, port uniqueness, reachability).
//
// Violations are collected, not panicked, so a scenario run can report
// every broken invariant at once; Err() turns them into a single error for
// test assertions. The scenario engine (internal/workload) wraps every run
// in an Oracle unconditionally — the checks are the always-on safety net
// every adversarial schedule runs against.
package oracle

import (
	"errors"
	"fmt"
	"strings"

	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
)

// Target is anything the oracle can drive: the centralized core, the
// distributed submitters and drivers, and the pipeline all implement it.
type Target interface {
	Submit(controller.Request) (controller.Grant, error)
}

// Violation records one observed invariant breach.
type Violation struct {
	// Invariant is the short check name (e.g. "safety-counter").
	Invariant string `json:"invariant"`
	// Request is the 0-based submission index the breach was observed at,
	// or -1 for end-of-run checks.
	Request int `json:"request"`
	// Detail is a human-readable description of the breach.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (request %d): %s", v.Invariant, v.Request, v.Detail)
}

// Option configures an Oracle.
type Option func(*Oracle)

// WithMessages attaches a sampler of the transport's delivered-message
// count (typically rt.Messages) and enables the per-request message-budget
// check.
func WithMessages(fn func() int64) Option {
	return func(o *Oracle) { o.msgs = fn }
}

// WithSerials enables the serial uniqueness and range checks. Only enable
// it for controllers that carry explicit serial intervals; the plain
// controllers report serial 0, which the checks ignore anyway.
func WithSerials() Option {
	return func(o *Oracle) { o.checkSerials = true }
}

// WithValidateEvery runs the O(n) tree structure validation every k
// submissions (default 16; 0 disables the periodic check — the end-of-run
// validation in Finish always runs).
func WithValidateEvery(k int) Option {
	return func(o *Oracle) { o.validateEvery = k }
}

// WithBaseline seeds the oracle with the grant/reject totals and granted
// serials of earlier incarnations, so an oracle wrapped around a recovered
// controller keeps checking the (M,W) contract across the restart: the
// safety counter continues from the recovered grant count instead of
// resetting, and serial uniqueness spans incarnations.
func WithBaseline(granted, rejected int64, serials []int64) Option {
	return func(o *Oracle) {
		o.granted += granted
		o.rejected += rejected
		for _, s := range serials {
			o.seenSerials[s] = struct{}{}
		}
	}
}

// WithBudgetAttempts scales the message budget for drivers that may run
// several protocol attempts per submission (the iterated waste-halving
// stack retries after an exhausted iteration). The default assumes up to
// 2+log₂(M+1) attempts, which covers every driver in the repo.
func WithBudgetAttempts(n int64) Option {
	return func(o *Oracle) { o.budgetAttempts = n }
}

// Oracle wraps a Target and checks the controller invariants on every
// submission. It implements workload.Submitter, so it can be dropped in
// front of any driver loop. Not safe for concurrent use: like the
// controllers themselves, the oracle assumes one request at a time (put it
// behind a pipeline, not in front of one, for concurrent traffic).
type Oracle struct {
	target Target
	tr     *tree.Tree
	m, w   int64

	submitted   int
	granted     int64
	rejected    int64
	errors      int
	firstReject int

	checkSerials bool
	seenSerials  map[int64]struct{}

	msgs           func() int64
	lastMsgs       int64
	budgetAttempts int64

	validateEvery int
	violations    []Violation
}

// Wrap builds an oracle around target, checking against the (m, w) contract
// over tr.
func Wrap(target Target, tr *tree.Tree, m, w int64, opts ...Option) *Oracle {
	o := &Oracle{
		target:        target,
		tr:            tr,
		m:             m,
		w:             w,
		firstReject:   -1,
		seenSerials:   make(map[int64]struct{}),
		validateEvery: 16,
	}
	if o.budgetAttempts == 0 {
		o.budgetAttempts = 2 + int64(log2Ceil(m+1))
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.msgs != nil {
		o.lastMsgs = o.msgs()
	}
	return o
}

func log2Ceil(n int64) int {
	k := 0
	for v := int64(1); v < n; v <<= 1 {
		k++
	}
	return k
}

func (o *Oracle) report(invariant string, request int, format string, args ...any) {
	o.violations = append(o.violations, Violation{
		Invariant: invariant,
		Request:   request,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Submit forwards the request to the target and checks every invariant the
// new observation can affect. Errors from the target (invalid requests,
// termination) pass through unchecked: they are part of the controller
// contract, not breaches of it.
func (o *Oracle) Submit(req controller.Request) (controller.Grant, error) {
	idx := o.submitted
	o.submitted++

	var height, size int
	if o.msgs != nil {
		// Snapshot the pre-request geometry: the climb/descent bound must
		// use the tree as the request saw it.
		height = o.tr.Height()
		size = o.tr.Size()
	}

	g, err := o.target.Submit(req)
	if err != nil {
		o.errors++
		if o.msgs != nil {
			// The failing request may still have spent transport messages
			// (errors can surface after the drain); absorb them so they are
			// not charged to the next request's budget.
			o.lastMsgs = o.msgs()
		}
		return g, err
	}

	switch g.Outcome {
	case controller.Granted:
		o.granted++
		if o.granted > o.m {
			o.report("safety-counter", idx,
				"granted %d permits, contract allows M=%d", o.granted, o.m)
		}
		if o.firstReject >= 0 {
			o.report("reject-finality", idx,
				"grant after the reject wave ran (first reject at request %d)", o.firstReject)
		}
		if o.checkSerials && g.Serial != 0 {
			if g.Serial < 1 || g.Serial > o.m {
				o.report("serial-range", idx,
					"serial %d outside [1, M=%d]", g.Serial, o.m)
			}
			if _, dup := o.seenSerials[g.Serial]; dup {
				o.report("serial-unique", idx, "serial %d granted twice", g.Serial)
			}
			o.seenSerials[g.Serial] = struct{}{}
		}
	case controller.Rejected:
		o.rejected++
		if o.firstReject < 0 {
			o.firstReject = idx
			if o.granted < o.m-o.w {
				o.report("reject-legality", idx,
					"rejected with only %d granted; the (M=%d, W=%d) contract requires at least %d",
					o.granted, o.m, o.w, o.m-o.w)
			}
		}
	}

	if o.msgs != nil {
		now := o.msgs()
		spent := now - o.lastMsgs
		o.lastMsgs = now
		// One protocol attempt costs at most a climb plus a descent (each
		// bounded by the height), one graceful-deletion transfer, and at
		// most one reject-wave flood (one message per edge) per request.
		perAttempt := int64(2*(height+1) + 2)
		budget := perAttempt*o.budgetAttempts + int64(size)
		if spent > budget {
			o.report("message-budget", idx,
				"request spent %d transport messages, budget %d (height %d, %d nodes, %d attempts)",
				spent, budget, height, size, o.budgetAttempts)
		}
	}

	if o.validateEvery > 0 && o.submitted%o.validateEvery == 0 {
		if verr := o.tr.Validate(); verr != nil {
			o.report("tree-structure", idx, "%v", verr)
		}
	}
	return g, nil
}

// Granted returns the number of grants the oracle observed.
func (o *Oracle) Granted() int64 { return o.granted }

// Rejected returns the number of rejects the oracle observed.
func (o *Oracle) Rejected() int64 { return o.rejected }

// Submitted returns the number of submissions driven through the oracle.
func (o *Oracle) Submitted() int { return o.submitted }

// Errors returns the number of submissions that returned an error.
func (o *Oracle) Errors() int { return o.errors }

// Violations returns the breaches observed so far.
func (o *Oracle) Violations() []Violation { return o.violations }

// Finish runs the end-of-run checks and returns every violation of the
// whole run. Reject legality needs no final re-check: grants are monotone,
// so a run that ends under M−W grants with rejects was already flagged at
// its first reject.
func (o *Oracle) Finish() []Violation {
	if err := o.tr.Validate(); err != nil {
		o.report("tree-structure", -1, "%v", err)
	}
	return o.violations
}

// Err returns nil when no invariant was breached, else one error listing
// every violation. Call Finish first for the end-of-run checks.
func (o *Oracle) Err() error {
	if len(o.violations) == 0 {
		return nil
	}
	lines := make([]string, len(o.violations))
	for i, v := range o.violations {
		lines[i] = v.String()
	}
	return errors.New("oracle: " + strings.Join(lines, "; "))
}
