package oracle_test

import (
	"strings"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/oracle"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func buildTree(t testing.TB, n int, seed int64) *tree.Tree {
	t.Helper()
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n, seed); err != nil {
		t.Fatal(err)
	}
	return tr
}

func hasViolation(vs []oracle.Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// TestOracleCleanOnHealthyController drives exhausting churn through the
// real distributed controller under every catalog scheduler; the oracle
// must stay silent on a correct implementation, including through the
// reject wave.
func TestOracleCleanOnHealthyController(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		t.Run(sched, func(t *testing.T) {
			tr := buildTree(t, 48, 1)
			rt, err := sim.NewRuntime(sched, 7)
			if err != nil {
				t.Fatal(err)
			}
			m, w := int64(300), int64(60)
			ctl := dist.NewDynamic(tr, rt, m, w, false, nil)
			orc := oracle.Wrap(ctl, tr, m, w, oracle.WithMessages(rt.Messages))
			gen := workload.NewChurn(tr, workload.EventOnlyMix(), 5)
			for i := 0; i < 500; i++ {
				req, ok := gen.Next()
				if !ok {
					break
				}
				if _, err := orc.Submit(req); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}
			if orc.Rejected() == 0 {
				t.Fatal("workload was meant to exhaust the controller")
			}
			orc.Finish()
			if err := orc.Err(); err != nil {
				t.Fatalf("healthy controller flagged: %v", err)
			}
		})
	}
}

// overgranter injects the paper's cardinal safety bug: it converts every
// reject of the wrapped controller into a fake grant, so the observable
// grant count exceeds M.
type overgranter struct{ inner oracle.Target }

func (s overgranter) Submit(req controller.Request) (controller.Grant, error) {
	g, err := s.inner.Submit(req)
	if err == nil && g.Outcome == controller.Rejected {
		g = controller.Grant{Outcome: controller.Granted}
	}
	return g, err
}

// TestOracleCatchesInjectedOvergrant is the demonstration required by the
// scenario-engine acceptance bar: a controller that grants more than M
// permits must be caught by the safety-counter oracle.
func TestOracleCatchesInjectedOvergrant(t *testing.T) {
	tr := buildTree(t, 32, 2)
	rt := sim.NewDeterministic(3)
	m, w := int64(120), int64(24)
	ctl := dist.NewDynamic(tr, rt, m, w, false, nil)
	orc := oracle.Wrap(overgranter{ctl}, tr, m, w, oracle.WithMessages(rt.Messages))
	for i := 0; i < 300; i++ {
		if _, err := orc.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	vs := orc.Finish()
	if !hasViolation(vs, "safety-counter") {
		t.Fatalf("granted %d with M=%d and the oracle stayed silent: %v", orc.Granted(), m, vs)
	}
	if err := orc.Err(); err == nil || !strings.Contains(err.Error(), "safety-counter") {
		t.Fatalf("Err() = %v, want safety-counter violation", err)
	}
}

// earlyRejecter rejects everything from the first request on, then grants
// one late request: both reject-legality and reject-finality must fire.
type earlyRejecter struct{ n int }

func (s *earlyRejecter) Submit(controller.Request) (controller.Grant, error) {
	s.n++
	if s.n == 5 {
		return controller.Grant{Outcome: controller.Granted}, nil
	}
	return controller.Grant{Outcome: controller.Rejected}, nil
}

func TestOracleCatchesIllegalRejects(t *testing.T) {
	tr := buildTree(t, 8, 3)
	orc := oracle.Wrap(&earlyRejecter{}, tr, 100, 10)
	for i := 0; i < 6; i++ {
		if _, err := orc.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
			t.Fatal(err)
		}
	}
	vs := orc.Finish()
	if !hasViolation(vs, "reject-legality") {
		t.Fatalf("reject at 0 grants not flagged: %v", vs)
	}
	if !hasViolation(vs, "reject-finality") {
		t.Fatalf("grant after reject not flagged: %v", vs)
	}
}

// dupSerials grants the same serial over and over.
type dupSerials struct{ n int64 }

func (s *dupSerials) Submit(controller.Request) (controller.Grant, error) {
	s.n++
	return controller.Grant{Outcome: controller.Granted, Serial: 1 + s.n%3}, nil
}

func TestOracleCatchesDuplicateAndOutOfRangeSerials(t *testing.T) {
	tr := buildTree(t, 8, 4)
	orc := oracle.Wrap(&dupSerials{}, tr, 100, 10, oracle.WithSerials())
	for i := 0; i < 7; i++ {
		if _, err := orc.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
			t.Fatal(err)
		}
	}
	if !hasViolation(orc.Violations(), "serial-unique") {
		t.Fatalf("duplicate serials not flagged: %v", orc.Violations())
	}

	orc2 := oracle.Wrap(&dupSerials{n: 1000}, tr, 2, 1, oracle.WithSerials())
	if _, err := orc2.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
		t.Fatal(err)
	}
	if !hasViolation(orc2.Violations(), "serial-range") {
		t.Fatalf("out-of-range serial not flagged: %v", orc2.Violations())
	}
}

// chattyTarget grants instantly while the fake transport burns messages.
type chattyTarget struct{ msgs *int64 }

func (s chattyTarget) Submit(controller.Request) (controller.Grant, error) {
	*s.msgs += 100_000
	return controller.Grant{Outcome: controller.Granted}, nil
}

func TestOracleCatchesMessageBudgetOverrun(t *testing.T) {
	tr := buildTree(t, 8, 5)
	var msgs int64
	orc := oracle.Wrap(chattyTarget{&msgs}, tr, 100, 10,
		oracle.WithMessages(func() int64 { return msgs }))
	if _, err := orc.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
		t.Fatal(err)
	}
	if !hasViolation(orc.Violations(), "message-budget") {
		t.Fatalf("100k messages for one request not flagged: %v", orc.Violations())
	}
}
