package oracle_test

import (
	"strings"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/oracle"
	"dynctrl/internal/tree"
)

func invariants(vs []oracle.Violation) string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Invariant)
	}
	return strings.Join(names, ",")
}

func TestCheckCrossIncarnationsClean(t *testing.T) {
	vs := oracle.CheckCrossIncarnations(100, []oracle.IncarnationSummary{
		{Incarnation: 1, Granted: 40, Serials: []int64{1, 2, 3}, FirstIndex: 1, LastIndex: 45},
		{Incarnation: 2, Granted: 60, Serials: []int64{4, 5}, FirstIndex: 46, LastIndex: 110},
	})
	if len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestCheckCrossIncarnationsSafetySum(t *testing.T) {
	vs := oracle.CheckCrossIncarnations(100, []oracle.IncarnationSummary{
		{Incarnation: 1, Granted: 70, FirstIndex: 1, LastIndex: 70},
		{Incarnation: 2, Granted: 70, FirstIndex: 71, LastIndex: 140},
	})
	if !strings.Contains(invariants(vs), "xinc-safety-counter") {
		t.Fatalf("granted sum 140 > M=100 not flagged: %v", vs)
	}
}

func TestCheckCrossIncarnationsSerialReuse(t *testing.T) {
	vs := oracle.CheckCrossIncarnations(100, []oracle.IncarnationSummary{
		{Incarnation: 1, Granted: 2, Serials: []int64{7, 8}, FirstIndex: 1, LastIndex: 2},
		{Incarnation: 2, Granted: 2, Serials: []int64{8, 9}, FirstIndex: 3, LastIndex: 4},
	})
	if !strings.Contains(invariants(vs), "xinc-serial-unique") {
		t.Fatalf("serial 8 reuse across incarnations not flagged: %v", vs)
	}
	vs = oracle.CheckCrossIncarnations(5, []oracle.IncarnationSummary{
		{Incarnation: 1, Granted: 1, Serials: []int64{9}, FirstIndex: 1, LastIndex: 1},
	})
	if !strings.Contains(invariants(vs), "xinc-serial-range") {
		t.Fatalf("serial 9 > M=5 not flagged: %v", vs)
	}
}

func TestCheckCrossIncarnationsForkedHistory(t *testing.T) {
	vs := oracle.CheckCrossIncarnations(100, []oracle.IncarnationSummary{
		{Incarnation: 1, Granted: 10, FirstIndex: 1, LastIndex: 30},
		{Incarnation: 2, Granted: 10, FirstIndex: 20, LastIndex: 50}, // overlaps
	})
	if !strings.Contains(invariants(vs), "xinc-monotonic") {
		t.Fatalf("overlapping WAL ranges not flagged: %v", vs)
	}
	vs = oracle.CheckCrossIncarnations(100, []oracle.IncarnationSummary{
		{Incarnation: 3, FirstIndex: 1, LastIndex: 2},
		{Incarnation: 3, FirstIndex: 3, LastIndex: 4},
	})
	if !strings.Contains(invariants(vs), "xinc-monotonic") {
		t.Fatalf("repeated incarnation number not flagged: %v", vs)
	}
}

// alwaysGrant grants every request (with a serial when Serial is set).
type alwaysGrant struct{ serial int64 }

func (s *alwaysGrant) Submit(controller.Request) (controller.Grant, error) {
	g := controller.Grant{Outcome: controller.Granted, Serial: s.serial}
	if s.serial != 0 {
		s.serial++
	}
	return g, nil
}

func TestWithBaselineResumesSafetyCounter(t *testing.T) {
	// A recovered oracle seeded with 95 prior grants must flag the 6th new
	// grant against M=100.
	tr, root := tree.New()
	o := oracle.Wrap(&alwaysGrant{}, tr, 100, 10, oracle.WithBaseline(95, 0, nil))
	for i := 0; i < 6; i++ {
		if _, err := o.Submit(controller.Request{Node: root, Kind: tree.None}); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(invariants(o.Violations()), "safety-counter") {
		t.Fatalf("cross-restart safety overflow not flagged: %v", o.Violations())
	}
}

func TestWithBaselineResumesSerialUniqueness(t *testing.T) {
	// Serial 3 was granted before the restart; the recovered oracle must
	// flag its reappearance.
	tr, root := tree.New()
	o := oracle.Wrap(&alwaysGrant{serial: 3}, tr, 100, 10,
		oracle.WithSerials(), oracle.WithBaseline(5, 0, []int64{1, 2, 3}))
	if _, err := o.Submit(controller.Request{Node: root, Kind: tree.None}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(invariants(o.Violations()), "serial-unique") {
		t.Fatalf("cross-restart serial reuse not flagged: %v", o.Violations())
	}
}
