package client_test

// Connection-lifecycle regression tests, driven through the
// internal/faultnet proxy: a network that stops reading must trip the
// client's write deadline instead of wedging the submit path forever,
// and a handshake the network kills midway must surface a typed error
// promptly instead of hanging.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/faultnet"
	"dynctrl/internal/server"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

func startFaultProxy(t *testing.T, upstream string, rules []faultnet.Rule) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.Start(faultnet.Config{Upstream: upstream, Seed: 1, Rules: rules, Logf: t.Logf})
	if err != nil {
		t.Fatalf("faultnet.Start: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// A network that stops reading (here: a faultnet stall parks the proxy
// after the first Submit frame) backs TCP flow control up into the
// client's writes. Before the fix the client set no deadline outside the
// handshake, so the blocked write held the connection's write mutex
// forever and wedged every subsequent submission; now Options.WriteTimeout
// trips, the call fails with ErrWriteTimeout, and the pool moves on.
func TestWriteTimeoutOnStalledNetwork(t *testing.T) {
	s := startServer(t, server.Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:     1, M: 1 << 30, W: 1 << 29,
	})
	// The stall fires on c2s frame 1 (the first Submit): the proxy sleeps
	// holding that frame and stops reading the connection, so the
	// ~megabyte frames behind it pile into the kernel buffers until a
	// client write blocks.
	p := startFaultProxy(t, s.Addr(), []faultnet.Rule{
		{Kind: faultnet.Stall, Dir: faultnet.ClientToServer, Conn: -1, Frame: 1,
			Delay: 5 * time.Minute},
	})

	cl, err := client.Dial(p.Addr(), client.Options{Conns: 1, WriteTimeout: 750 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial through proxy: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 16}, 1) //nolint:errcheck
	// One shared max-frame-sized run; every goroutine submits it twice
	// (SubmitMany splits at MaxBatchLen), so the writers together push far
	// more than loopback TCP can buffer.
	reqs := make([]controller.Request, 2*wire.MaxBatchLen)
	for i := range reqs {
		reqs[i] = controller.Request{Node: tr.Root(), Kind: tree.None}
	}

	errCh := make(chan error, 12)
	var wg sync.WaitGroup
	for g := 0; g < cap(errCh); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.SubmitMany(reqs, nil)
			errCh <- err
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("submissions never returned: a stalled write wedged the client")
	}
	close(errCh)

	sawWriteTimeout := false
	for err := range errCh {
		if err == nil {
			t.Fatal("a submission through the stalled proxy succeeded")
		}
		if errors.Is(err, client.ErrWriteTimeout) {
			sawWriteTimeout = true
		}
	}
	if !sawWriteTimeout {
		t.Fatal("no submission failed with ErrWriteTimeout")
	}
}

// A connection the network kills between Hello and Welcome must surface
// a prompt, typed handshake error — whether the Welcome is lost whole or
// truncated mid-frame.
func TestDialKilledMidHandshake(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind faultnet.Kind
	}{
		{"welcome-lost", faultnet.Kill},
		{"welcome-truncated", faultnet.KillMidFrame},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := startServer(t, server.Config{
				Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
				Seed:     1, M: 1000, W: 100,
			})
			p := startFaultProxy(t, s.Addr(), []faultnet.Rule{
				{Kind: tc.kind, Dir: faultnet.ServerToClient, Conn: 0, Frame: 0},
			})

			t0 := time.Now()
			_, err := client.Dial(p.Addr(), client.Options{Conns: 1, DialTimeout: 30 * time.Second})
			if err == nil {
				t.Fatal("Dial through a killed handshake succeeded")
			}
			if !errors.Is(err, client.ErrHandshake) {
				t.Fatalf("Dial error %v, want ErrHandshake", err)
			}
			if elapsed := time.Since(t0); elapsed > 10*time.Second {
				t.Fatalf("Dial took %v to fail; the killed handshake nearly hung", elapsed)
			}
		})
	}
}
