package client_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dynctrl/internal/client"
	"dynctrl/internal/controller"
	"dynctrl/internal/server"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// startServer runs a loopback daemon for the client under test.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s
}

func TestDialRefusedAddress(t *testing.T) {
	// A port nothing listens on: dial must fail, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := client.Dial(addr, client.Options{DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("Dial to a closed port succeeded")
	}
}

func TestDialVersionMismatch(t *testing.T) {
	// A fake server that always answers the handshake with a version error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var rbuf []byte
				if _, _, err := wire.ReadFrame(bufio.NewReader(nc), &rbuf); err != nil {
					return
				}
				nc.Write(wire.AppendError(nil, wire.ErrorFrame{ //nolint:errcheck
					Code: wire.CodeVersion, Detail: "too old",
				}))
			}(nc)
		}
	}()
	if _, err := client.Dial(ln.Addr().String(), client.Options{DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("Dial against a version-rejecting server succeeded")
	}
}

func TestPooledFailover(t *testing.T) {
	s := startServer(t, server.Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 16},
		Seed:     1, M: 10000, W: 1000,
	})
	cl, err := client.Dial(s.Addr(), client.Options{Conns: 3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 16}, 1) //nolint:errcheck
	root := tr.Root()

	// Poison one pooled connection at the protocol level: the server drops
	// it, and subsequent submissions must fail over to the live ones.
	if _, err := cl.Submit(controller.Request{Node: root, Kind: tree.None}); err != nil {
		t.Fatalf("warm-up submit: %v", err)
	}
	cl.BreakConnForTest(0)
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 50; i++ {
		if _, err := cl.Submit(controller.Request{Node: root, Kind: tree.None}); err != nil {
			t.Fatalf("submit %d after poisoning one connection: %v", i, err)
		}
		if time.Now().After(deadline) {
			t.Fatal("failover loop ran too long")
		}
	}
}

func TestConcurrentPipelining(t *testing.T) {
	s := startServer(t, server.Config{
		Topology: workload.TopologySpec{Kind: "balanced", Nodes: 32},
		Seed:     1, M: 1 << 20, W: 1 << 19,
	})
	cl, err := client.Dial(s.Addr(), client.Options{Conns: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "balanced", Nodes: 32}, 1) //nolint:errcheck
	root := tr.Root()

	// Many goroutines share two connections: responses must route back to
	// the right callers (every answered batch has the right length and
	// outcome).
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 1 + g%7
			reqs := make([]controller.Request, n)
			for i := range reqs {
				reqs[i] = controller.Request{Node: root, Kind: tree.None}
			}
			var out []controller.BatchResult
			for i := 0; i < 60; i++ {
				res, err := cl.SubmitMany(reqs, out[:0])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(res) != n {
					t.Errorf("goroutine %d: %d results for %d requests", g, len(res), n)
					return
				}
				for _, r := range res {
					if r.Err != nil || r.Grant.Outcome != controller.Granted {
						t.Errorf("goroutine %d: result %+v", g, r)
						return
					}
				}
				out = res
			}
		}(g)
	}
	wg.Wait()

	ops, grants, _, errs := s.Accounting()
	if errs != 0 {
		t.Errorf("server accounted %d errors", errs)
	}
	if ops != grants {
		t.Errorf("server accounted ops=%d grants=%d on an all-grant workload", ops, grants)
	}
}

func TestSubmitManyChunksOversizedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("drives >wire.MaxBatchLen requests")
	}
	s := startServer(t, server.Config{
		Topology: workload.TopologySpec{Kind: "star", Nodes: 8},
		Seed:     1, M: int64(wire.MaxBatchLen) * 2, W: int64(wire.MaxBatchLen),
	})
	cl, err := client.Dial(s.Addr(), client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "star", Nodes: 8}, 1) //nolint:errcheck
	root := tr.Root()

	// A run longer than one frame may carry must be split transparently,
	// not kill the connection with an oversized frame.
	n := wire.MaxBatchLen + 50
	reqs := make([]controller.Request, n)
	for i := range reqs {
		reqs[i] = controller.Request{Node: root, Kind: tree.None}
	}
	res, err := cl.SubmitMany(reqs, nil)
	if err != nil {
		t.Fatalf("SubmitMany(%d): %v", n, err)
	}
	if len(res) != n {
		t.Fatalf("%d results for %d requests", len(res), n)
	}
	for i, r := range res {
		if r.Err != nil || r.Grant.Outcome != controller.Granted {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	// The connection survived the oversized run.
	if _, err := cl.Submit(controller.Request{Node: root, Kind: tree.None}); err != nil {
		t.Fatalf("Submit after chunked run: %v", err)
	}
}

func TestNoRetryAfterAttemptedRoundTrip(t *testing.T) {
	s := startServer(t, server.Config{
		Topology: workload.TopologySpec{Kind: "star", Nodes: 8},
		Seed:     1, M: 10000, W: 1000,
	})
	cl, err := client.Dial(s.Addr(), client.Options{Conns: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	tr, _ := tree.New()
	workload.BuildTopology(tr, workload.TopologySpec{Kind: "star", Nodes: 8}, 1) //nolint:errcheck
	root := tr.Root()

	// Freeze the daemon's reply by breaking the connection after the write:
	// the in-flight call must surface an error, and — the at-most-once
	// contract — the server-side accounting must show the batch executed at
	// most once (never replayed on the second pooled connection).
	errc := make(chan error, 1)
	go func() {
		reqs := make([]controller.Request, 64)
		for i := range reqs {
			reqs[i] = controller.Request{Node: root, Kind: tree.None}
		}
		_, err := cl.SubmitMany(reqs, nil)
		errc <- err
	}()
	// Give the write a moment to leave, then kill both connections so the
	// reply (or the call, if it raced the break) is lost.
	time.Sleep(20 * time.Millisecond)
	cl.BreakConnForTest(0)
	cl.BreakConnForTest(1)
	err = <-errc

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx) //nolint:errcheck
	ops, _, _, _ := s.Accounting()
	if err == nil {
		// The reply won the race: the batch executed exactly once.
		if ops != 64 {
			t.Fatalf("call succeeded but server accounted %d ops, want 64", ops)
		}
		return
	}
	if ops != 0 && ops != 64 {
		t.Fatalf("server accounted %d ops for one 64-request call: the batch was replayed", ops)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := startServer(t, server.Config{
		Topology: workload.TopologySpec{Kind: "star", Nodes: 4},
		M:        100, W: 10,
	})
	cl, err := client.Dial(s.Addr(), client.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cl.Close()
	if _, err := cl.Submit(controller.Request{}); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Submit after Close: err %v, want ErrClosed", err)
	}
	if _, err := cl.SubmitMany(make([]controller.Request, 2), nil); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("SubmitMany after Close: err %v, want ErrClosed", err)
	}
}

func TestResultErrorMessages(t *testing.T) {
	for code, want := range map[uint8]string{
		wire.CodeShutdown:   "dynctrld: server draining",
		wire.CodeTerminated: "dynctrld: controller terminated",
		wire.CodeBadRequest: "dynctrld: bad request",
		wire.CodeInternal:   "dynctrld: internal server error",
		200:                 "dynctrld: error code 200",
	} {
		e := &client.ResultError{Code: code}
		if e.Error() != want {
			t.Errorf("code %d: %q, want %q", code, e.Error(), want)
		}
	}
}
