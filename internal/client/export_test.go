package client

import "fmt"

// BreakConnForTest force-fails pooled connection i, as if its socket died:
// the connection is marked dead and every pending call on it errors. Tests
// use it to exercise failover without depending on kernel-level timing.
func (c *Client) BreakConnForTest(i int) {
	cc := c.conns[i%len(c.conns)]
	cc.failAll(fmt.Errorf("client: connection broken by test"))
}
