// Package client is the wire-protocol client of the dynctrld daemon: a
// connection-pooled, pipelined front-end that exposes the same
// Submit/SubmitMany surface as the in-process controllers, so drivers
// written against workload.Submitter or workload.ManySubmitter run
// unchanged over TCP.
//
// Every SubmitMany run travels as one Submit frame tagged with a
// correlation id; many runs may be in flight on one connection at a time
// (pipelining), and a per-connection reader goroutine matches Results
// frames back to their waiting callers by id. Calls are spread across the
// pool round-robin, so concurrent callers get both connection-level and
// in-connection parallelism without any coordination of their own.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
)

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("client: closed")

// ErrWriteTimeout is wrapped into the error failing a SubmitMany whose
// Submit frame could not be written within Options.WriteTimeout — the
// stalled-server case: TCP flow control has backed all the way up into
// this client because the peer stopped reading. The connection is dead
// (failAll) and every call pending on it fails with this error; match it
// with errors.Is.
var ErrWriteTimeout = errors.New("client: write timed out")

// ErrHandshake is wrapped into errors from a handshake that died on the
// wire (connection killed between Hello and Welcome, truncated or
// unexpected frames). A server that answers the handshake but *refuses*
// it returns a *HandshakeError instead.
var ErrHandshake = errors.New("client: handshake failed")

// ResultError is the typed error carried by a per-request wire result with
// a non-OK code.
type ResultError struct {
	// Code is the wire error code (wire.CodeShutdown, ...).
	Code uint8
}

func (e *ResultError) Error() string {
	switch e.Code {
	case wire.CodeShutdown:
		return "dynctrld: server draining"
	case wire.CodeTerminated:
		return "dynctrld: controller terminated"
	case wire.CodeBadRequest:
		return "dynctrld: bad request"
	case wire.CodeInternal:
		return "dynctrld: internal server error"
	default:
		return fmt.Sprintf("dynctrld: error code %d", e.Code)
	}
}

// HandshakeError is the typed error returned when the server refuses the
// handshake with an Error frame (wire.CodeVersion, wire.CodeTenant, ...).
type HandshakeError struct {
	// Code is the connection-fatal wire error code.
	Code uint8
	// Detail is the server's diagnostic text.
	Detail string
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("client: server refused handshake (code %d): %s", e.Code, e.Detail)
}

// Options configures Dial.
type Options struct {
	// Conns is the pool size (default 1).
	Conns int
	// Tenant is the namespace every pooled connection binds to in the
	// handshake (default wire.DefaultTenant). Dialing an unknown tenant
	// fails with a HandshakeError carrying wire.CodeTenant.
	Tenant string
	// DialTimeout bounds each TCP dial plus handshake (default 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each Submit frame write (default 30s — a
	// generous bound, not infinite: a server that stops reading must
	// eventually fail the call instead of wedging the connection's submit
	// mutex, and with it every later Submit routed to that pooled
	// connection, forever). A timed-out write kills the connection and
	// fails its pending calls with an error wrapping ErrWriteTimeout.
	// Negative disables the deadline entirely.
	WriteTimeout time.Duration
	// OnRejectWave, when set, is invoked once when the server announces the
	// reject wave, with the server's grant count at that point.
	OnRejectWave func(granted int64)
}

// Client is a pooled connection to one daemon. It is safe for concurrent
// use by any number of goroutines.
type Client struct {
	opts  Options
	conns []*cliConn
	next  atomic.Uint64

	tenant      string
	m, w        int64
	topoSig     uint64
	incarnation uint64

	waveSeen    atomic.Bool
	waveGranted atomic.Int64

	closed atomic.Bool
}

// Dial connects the pool and performs the version + tenant handshake on
// every connection.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns < 1 {
		opts.Conns = 1
	}
	if opts.Tenant == "" {
		opts.Tenant = wire.DefaultTenant
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	switch {
	case opts.WriteTimeout == 0:
		opts.WriteTimeout = 30 * time.Second
	case opts.WriteTimeout < 0:
		opts.WriteTimeout = 0 // explicit opt-out: no write deadline
	}
	c := &Client{opts: opts}
	for i := 0; i < opts.Conns; i++ {
		cc, err := c.dialOne(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		if i == 0 {
			c.tenant = cc.welcome.Tenant
			c.m, c.w, c.topoSig = cc.welcome.M, cc.welcome.W, cc.welcome.TopoSig
			c.incarnation = cc.welcome.Incarnation
		}
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

func (c *Client) dialOne(addr string) (*cliConn, error) {
	nc, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &cliConn{
		cl:      c,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: map[uint64]*pendingCall{},
	}
	// A deadline that cannot be armed or cleared is connection-fatal: an
	// undeadlined handshake could hang forever, and a conn stuck behind a
	// stale deadline would poison every later call routed to it.
	if err := nc.SetDeadline(time.Now().Add(c.opts.DialTimeout)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("%w: arm dial deadline: %v", ErrHandshake, err)
	}
	if err := cc.handshake(); err != nil {
		nc.Close()
		return nil, err
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("%w: clear dial deadline: %v", ErrHandshake, err)
	}
	go cc.readLoop()
	return cc, nil
}

// Tenant returns the namespace this pool is bound to, as echoed by the
// server in the handshake.
func (c *Client) Tenant() string { return c.tenant }

// M returns the server's permit bound from the handshake.
func (c *Client) M() int64 { return c.m }

// W returns the server's waste bound from the handshake.
func (c *Client) W() int64 { return c.w }

// TopologySignature returns the server's initial-topology signature from
// the handshake (compare against workload.TopologySignature of a locally
// reconstructed tree).
func (c *Client) TopologySignature() uint64 { return c.topoSig }

// Incarnation returns the server's durability incarnation from the
// handshake (0 when the server runs without a WAL).
func (c *Client) Incarnation() uint64 { return c.incarnation }

// RejectWaveSeen reports whether the server has announced the reject wave
// on any pooled connection.
func (c *Client) RejectWaveSeen() bool { return c.waveSeen.Load() }

// RejectWaveGranted returns the server's grant count announced with the
// wave (0 before RejectWaveSeen).
func (c *Client) RejectWaveGranted() int64 { return c.waveGranted.Load() }

// Submit sends one request and blocks until its verdict is in. It
// implements workload.Submitter and oracle.Target.
func (c *Client) Submit(req controller.Request) (controller.Grant, error) {
	var one [1]controller.Request
	var res [1]controller.BatchResult
	one[0] = req
	out, err := c.SubmitMany(one[:], res[:0])
	if err != nil {
		return controller.Grant{}, err
	}
	return out[0].Grant, out[0].Err
}

// SubmitMany sends a run of requests as one wire frame — transparently
// split into several frames when the run exceeds wire.MaxBatchLen — and
// blocks until the server has answered all of them, appending one
// BatchResult per request to out. It implements workload.ManySubmitter.
//
// Delivery is at-most-once: a call is routed to a live pooled connection
// (moving on from connections that are already dead), but once the frame
// has been handed to a connection a failure is returned to the caller
// rather than retried elsewhere — the server may have executed the batch
// even though the reply was lost, and re-submitting would consume permits
// twice behind the caller's back.
func (c *Client) SubmitMany(reqs []controller.Request, out []controller.BatchResult) ([]controller.BatchResult, error) {
	for len(reqs) > wire.MaxBatchLen {
		var err error
		out, err = c.submitRun(reqs[:wire.MaxBatchLen], out)
		if err != nil {
			return out, err
		}
		reqs = reqs[wire.MaxBatchLen:]
	}
	return c.submitRun(reqs, out)
}

// submitRun drives one frame-sized run through a live pooled connection.
func (c *Client) submitRun(reqs []controller.Request, out []controller.BatchResult) ([]controller.BatchResult, error) {
	if len(reqs) == 0 {
		return out, nil
	}
	if c.closed.Load() {
		return out, ErrClosed
	}
	// Round-robin over the pool, skipping connections that are already
	// dead. A connection that fails *during* the round trip ends the call:
	// the requests may have reached the controller, so they must not be
	// replayed on another connection.
	start := c.next.Add(1)
	for i := 0; i < len(c.conns); i++ {
		cc := c.conns[(start+uint64(i))%uint64(len(c.conns))]
		if cc.dead.Load() {
			continue
		}
		res, err, attempted := cc.roundTrip(reqs, out)
		if err == nil {
			return res, nil
		}
		if c.closed.Load() {
			return out, ErrClosed
		}
		if attempted {
			return out, err
		}
		// The connection was torn down before the frame was handed to it:
		// nothing reached the server, the next connection may serve it.
	}
	return out, fmt.Errorf("client: no live connections")
}

// Close tears the pool down. In-flight calls fail with connection errors.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, cc := range c.conns {
		cc.nc.Close()
	}
	return nil
}

// pendingCall is one in-flight SubmitMany awaiting its Results frame.
type pendingCall struct {
	n    int // request count, must match the results count
	out  []controller.BatchResult
	done chan error
}

// cliConn is one pooled connection with a reader goroutine.
type cliConn struct {
	cl      *Client
	nc      net.Conn
	welcome wire.Welcome

	wmu    sync.Mutex // guards bw and id/pending registration order
	bw     *bufio.Writer
	wbuf   []byte
	reqbuf []wire.Req
	id     uint64

	pmu     sync.Mutex
	pending map[uint64]*pendingCall

	dead atomic.Bool
}

func (cc *cliConn) handshake() error {
	cc.wbuf = wire.AppendHello(cc.wbuf[:0], wire.Hello{Version: wire.Version, Tenant: cc.cl.opts.Tenant})
	if _, err := cc.nc.Write(cc.wbuf); err != nil {
		return fmt.Errorf("%w: write hello: %v", ErrHandshake, err)
	}
	var rbuf []byte
	ft, p, err := wire.ReadFrame(cc.nc, &rbuf)
	if err != nil {
		// The connection died between Hello and Welcome (or dribbled past
		// the deadline): a typed, prompt error, never a hang.
		return fmt.Errorf("%w: read: %v", ErrHandshake, err)
	}
	switch ft {
	case wire.FrameWelcome:
		w, err := wire.DecodeWelcome(p)
		if err != nil {
			return err
		}
		if w.Version != wire.Version {
			return fmt.Errorf("client: server speaks version %d, want %d", w.Version, wire.Version)
		}
		if w.Tenant != cc.cl.opts.Tenant {
			return fmt.Errorf("client: asked for tenant %q, server welcomed %q", cc.cl.opts.Tenant, w.Tenant)
		}
		cc.welcome = w
		return nil
	case wire.FrameError:
		e, err := wire.DecodeError(p)
		if err != nil {
			return err
		}
		return &HandshakeError{Code: e.Code, Detail: e.Detail}
	default:
		return fmt.Errorf("%w: unexpected %v frame", ErrHandshake, ft)
	}
}

// roundTrip registers a pending call, writes the Submit frame, and waits.
// attempted reports whether the frame was handed to the connection — when
// false the server cannot have seen the requests and the caller may safely
// route them elsewhere.
func (cc *cliConn) roundTrip(reqs []controller.Request, out []controller.BatchResult) (_ []controller.BatchResult, err error, attempted bool) {
	pc := &pendingCall{n: len(reqs), out: out, done: make(chan error, 1)}

	cc.wmu.Lock()
	if cc.dead.Load() {
		cc.wmu.Unlock()
		return out, fmt.Errorf("client: connection closed"), false
	}
	cc.id++
	id := cc.id
	cc.pmu.Lock()
	cc.pending[id] = pc
	cc.pmu.Unlock()

	if cap(cc.reqbuf) < len(reqs) {
		cc.reqbuf = make([]wire.Req, len(reqs))
	}
	wr := cc.reqbuf[:len(reqs)]
	for i, r := range reqs {
		wr[i] = wire.Req{Node: r.Node, Kind: r.Kind, Child: r.Child}
	}
	cc.wbuf = wire.AppendSubmit(cc.wbuf[:0], id, wr)
	// Write deadline: a server (or network) that stopped reading backs TCP
	// flow control up into this write, which would otherwise block forever
	// while holding wmu — wedging every subsequent Submit routed to this
	// pooled connection. The deadline is armed per frame and cleared after
	// a successful flush; failures to arm or clear are connection-fatal
	// (the conn would be undeadlined or permanently deadlined).
	wt := cc.cl.opts.WriteTimeout
	var werr error
	if wt > 0 {
		werr = cc.nc.SetWriteDeadline(time.Now().Add(wt))
	}
	if werr == nil {
		_, werr = cc.bw.Write(cc.wbuf)
		if werr == nil {
			werr = cc.bw.Flush()
		}
		if werr == nil && wt > 0 {
			werr = cc.nc.SetWriteDeadline(time.Time{})
		}
	}
	cc.wmu.Unlock()
	if werr != nil {
		var ne net.Error
		if errors.As(werr, &ne) && ne.Timeout() {
			werr = fmt.Errorf("%w after %v: %v", ErrWriteTimeout, wt, werr)
		}
		cc.failAll(werr)
		return out, werr, true
	}

	if err := <-pc.done; err != nil {
		return out, err, true
	}
	return pc.out, nil, true
}

// readLoop dispatches Results frames to their pending calls and handles
// server pushes until the connection dies.
func (cc *cliConn) readLoop() {
	var rbuf []byte
	var rs wire.Results
	var err error
	for {
		var ft wire.FrameType
		var p []byte
		ft, p, err = wire.ReadFrame(cc.nc, &rbuf)
		if err != nil {
			break
		}
		if err = cc.handleFrame(ft, p, &rs); err != nil {
			break
		}
	}
	cc.failAll(err)
}

// handleFrame processes one incoming frame; a non-nil return is
// connection-fatal.
func (cc *cliConn) handleFrame(ft wire.FrameType, p []byte, rs *wire.Results) error {
	switch ft {
	case wire.FrameResults:
		if err := wire.DecodeResults(p, rs); err != nil {
			return err
		}
		cc.pmu.Lock()
		pc := cc.pending[rs.ID]
		delete(cc.pending, rs.ID)
		cc.pmu.Unlock()
		if pc == nil {
			return fmt.Errorf("client: results for unknown id %d", rs.ID)
		}
		if len(rs.Results) != pc.n {
			err := fmt.Errorf("client: %d results for %d requests (id %d)", len(rs.Results), pc.n, rs.ID)
			pc.done <- err
			return err
		}
		for _, r := range rs.Results {
			br := controller.BatchResult{}
			if r.Code == wire.CodeOK {
				br.Grant = controller.Grant{
					Outcome: controller.Outcome(r.Outcome),
					Serial:  r.Serial,
					NewNode: tree.NodeID(r.NewNode),
				}
			} else {
				br.Err = &ResultError{Code: r.Code}
			}
			pc.out = append(pc.out, br)
		}
		pc.done <- nil
		return nil
	case wire.FrameRejectWave:
		rw, err := wire.DecodeRejectWave(p)
		if err != nil {
			return err
		}
		cc.cl.waveGranted.Store(rw.Granted)
		if cc.cl.waveSeen.CompareAndSwap(false, true) && cc.cl.opts.OnRejectWave != nil {
			cc.cl.opts.OnRejectWave(rw.Granted)
		}
		return nil
	case wire.FrameError:
		e, err := wire.DecodeError(p)
		if err != nil {
			return err
		}
		return fmt.Errorf("client: server error: %s", e)
	default:
		return fmt.Errorf("client: unexpected %v frame", ft)
	}
}

// failAll marks the connection dead and fails every pending call.
func (cc *cliConn) failAll(err error) {
	cc.dead.Store(true)
	cc.nc.Close()
	cc.pmu.Lock()
	pending := cc.pending
	cc.pending = map[uint64]*pendingCall{}
	cc.pmu.Unlock()
	for _, pc := range pending {
		pc.done <- err
	}
}
