// Package heavychild maintains a heavy-child decomposition of the dynamic
// tree (Section 5.3, Theorem 5.4): every internal node v keeps a pointer
// µ(v) to one child (its heavy child) such that every node has O(log n)
// light ancestors at all times.
//
// The construction runs the subtree estimator with β = √3. Whenever a
// node's super-weight estimate ω̃(v) changes, it informs its parent (one
// message); the parent points µ at the child with the largest estimate.
// Then for any other child u, SW(u) ≤ β²·SW(µ(v)) ≤ β²(SW(v) − SW(u)),
// giving SW(u) ≤ (3/4)·SW(v), so light edges shrink super-weights
// geometrically and each node has O(log₄⁄₃ n) light ancestors.
package heavychild

import (
	"fmt"
	"math"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/estimator"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Decomposition maintains the heavy-child pointers.
type Decomposition struct {
	tr       *tree.Tree
	est      *estimator.Estimator
	counters *stats.Counters
	heavy    map[tree.NodeID]tree.NodeID
}

// New builds a heavy-child decomposition over tr. All topological changes
// must flow through RequestChange.
func New(tr *tree.Tree, rt sim.Runtime, counters *stats.Counters) (*Decomposition, error) {
	if counters == nil {
		counters = stats.NewCounters()
	}
	est, err := estimator.New(tr, rt, math.Sqrt(3),
		estimator.WithCounters(counters), estimator.WithSubtreeEstimates())
	if err != nil {
		return nil, err
	}
	d := &Decomposition{
		tr:       tr,
		est:      est,
		counters: counters,
		heavy:    make(map[tree.NodeID]tree.NodeID),
	}
	d.refreshAll()
	return d, nil
}

// Counters returns the shared counters.
func (d *Decomposition) Counters() *stats.Counters { return d.counters }

// Tree returns the tree the decomposition is maintained over.
func (d *Decomposition) Tree() *tree.Tree { return d.tr }

// Estimator returns the underlying subtree estimator.
func (d *Decomposition) Estimator() *estimator.Estimator { return d.est }

// Heavy returns µ(v), the heavy child of an internal node.
func (d *Decomposition) Heavy(v tree.NodeID) (tree.NodeID, error) {
	h, ok := d.heavy[v]
	if !ok {
		return tree.InvalidNode, fmt.Errorf("heavychild: no pointer at %d", v)
	}
	return h, nil
}

// IsLight reports whether v is a light child of its parent (or the root,
// which is neither).
func (d *Decomposition) IsLight(v tree.NodeID) (bool, error) {
	p, err := d.tr.Parent(v)
	if err != nil {
		return false, err
	}
	if p == tree.InvalidNode {
		return false, nil
	}
	return d.heavy[p] != v, nil
}

// LightAncestors counts the light ancestors of v in the current tree.
func (d *Decomposition) LightAncestors(v tree.NodeID) (int, error) {
	path, err := d.tr.PathToRoot(v)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, id := range path {
		light, err := d.IsLight(id)
		if err != nil {
			return 0, err
		}
		if light {
			count++
		}
	}
	return count, nil
}

// RequestChange submits a topological change, then refreshes the pointers
// along the affected path (each estimate update costs one message to the
// parent, which at most doubles the protocol's message count, as the paper
// notes).
func (d *Decomposition) RequestChange(req controller.Request) (controller.Grant, error) {
	iterBefore := d.est.Iteration()
	g, err := d.est.RequestChange(req)
	if err != nil {
		return g, err
	}
	if d.est.Iteration() != iterBefore {
		// New iteration: ω₀ was recomputed everywhere.
		d.refreshAll()
		return g, nil
	}
	if g.Outcome == controller.Granted && req.Kind != tree.None {
		// Estimates changed along the request path; refresh pointers on
		// the path from the touched node to the root.
		touch := req.Node
		if g.NewNode != tree.InvalidNode {
			touch = g.NewNode
		}
		if !d.tr.Contains(touch) {
			touch, err = d.climbableAncestor(req.Node)
			if err != nil {
				return g, err
			}
		}
		path, err := d.tr.PathToRoot(touch)
		if err != nil {
			return g, err
		}
		for _, id := range path {
			d.refresh(id)
		}
		d.counters.Add(dist.CounterControl, int64(len(path)))
	}
	return g, nil
}

// Submit implements workload.Submitter.
func (d *Decomposition) Submit(req controller.Request) (controller.Grant, error) {
	return d.RequestChange(req)
}

func (d *Decomposition) climbableAncestor(id tree.NodeID) (tree.NodeID, error) {
	// After a removal the removed node is gone; refresh from the root
	// downward instead (conservative, costs nothing extra asymptotically).
	return d.tr.Root(), nil
}

// refreshAll recomputes every pointer from current subtree estimates.
func (d *Decomposition) refreshAll() {
	d.heavy = make(map[tree.NodeID]tree.NodeID, d.tr.Size())
	for _, id := range d.tr.Nodes() {
		d.refresh(id)
	}
}

// refresh points µ(v) at the child with the largest super-weight estimate.
func (d *Decomposition) refresh(v tree.NodeID) {
	kids, err := d.tr.Children(v)
	if err != nil || len(kids) == 0 {
		delete(d.heavy, v)
		return
	}
	var best tree.NodeID
	bestW := int64(-1)
	for _, k := range kids {
		w, err := d.est.SubtreeEstimate(k)
		if err != nil {
			continue
		}
		if w > bestW {
			best, bestW = k, w
		}
	}
	if best != tree.InvalidNode {
		d.heavy[v] = best
	}
}

// CheckInvariant verifies every node has at most maxFactor·log₄⁄₃(n)+slack
// light ancestors.
func (d *Decomposition) CheckInvariant(maxFactor float64, slack int) error {
	n := float64(d.tr.Size())
	bound := int(maxFactor*math.Log(n+1)/math.Log(4.0/3.0)) + slack
	for _, id := range d.tr.Nodes() {
		la, err := d.LightAncestors(id)
		if err != nil {
			return err
		}
		if la > bound {
			return fmt.Errorf("heavychild: node %d has %d light ancestors, bound %d (n=%.0f)",
				id, la, bound, n)
		}
	}
	return nil
}
