package heavychild_test

import (
	"testing"

	"dynctrl/internal/heavychild"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func TestHeavyChildOnStaticTree(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 64, 1); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(1)
	d, err := heavychild.New(tr, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every internal node must have a heavy pointer to one of its
	// children.
	for _, v := range tr.Nodes() {
		kids, err := tr.Children(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) == 0 {
			continue
		}
		h, err := d.Heavy(v)
		if err != nil {
			t.Fatalf("no heavy pointer at internal node %d: %v", v, err)
		}
		found := false
		for _, k := range kids {
			if k == h {
				found = true
			}
		}
		if !found {
			t.Fatalf("heavy(%d) = %d is not a child", v, h)
		}
	}
	if err := d.CheckInvariant(2, 4); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestHeavyChildLightAncestorsOnPath(t *testing.T) {
	// A pure path has no light edges at all (every internal node has one
	// child, which must be heavy).
	tr, _ := tree.New()
	if err := workload.BuildPath(tr, 100); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(2)
	d, err := heavychild.New(tr, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Nodes() {
		la, err := d.LightAncestors(v)
		if err != nil {
			t.Fatal(err)
		}
		if la != 0 {
			t.Fatalf("node %d on a path has %d light ancestors, want 0", v, la)
		}
	}
}

func TestHeavyChildUnderChurn(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 48, 3); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(3)
	d, err := heavychild.New(tr, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.DefaultMix(), 17)
	gen.SetMinSize(8)
	for i := 0; i < 800; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := d.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i%50 == 0 {
			if err := d.CheckInvariant(3, 6); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := d.CheckInvariant(3, 6); err != nil {
		t.Fatalf("final: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestHeavyChildGrowth(t *testing.T) {
	tr, _ := tree.New()
	rt := sim.NewDeterministic(4)
	d, err := heavychild.New(tr, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.GrowOnlyMix(), 9)
	for i := 0; i < 600; i++ {
		req, _ := gen.Next()
		if _, err := d.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := d.CheckInvariant(3, 6); err != nil {
		t.Fatalf("after growth: %v", err)
	}
	// IsLight sanity: the root is never light.
	light, err := d.IsLight(tr.Root())
	if err != nil || light {
		t.Fatalf("IsLight(root) = %v, %v; want false", light, err)
	}
}
