// Package pkgstore implements the permit/reject package data structure of
// Section 3.1 of the paper.
//
// Permits are grouped into packages. A permit package is either static
// (grants requests at its host node; size between 1 and φ) or mobile (moves
// sets of permits around; size exactly 2^i·φ for its level i). A reject
// package represents infinitely many rejects and is encoded in O(1) bits.
//
// The derived parameters are
//
//	φ = max{⌊W/(2U)⌋, 1}
//	ψ = 4⌈log₂(U)+2⌉·max{⌈U/W⌉, 1}
//
// where U bounds the number of nodes ever to exist and W is the waste
// parameter. Packages optionally carry an explicit serial-number interval;
// the name-assignment application (Section 5.2) uses the serials as node
// identities, while the plain controller leaves intervals unset.
package pkgstore

import (
	"errors"
	"fmt"
)

// Errors reported by package operations.
var (
	ErrNotMobile   = errors.New("pkgstore: package is not mobile")
	ErrLevelZero   = errors.New("pkgstore: cannot split a level-zero package")
	ErrEmptyStatic = errors.New("pkgstore: static package is empty")
	ErrNotInStore  = errors.New("pkgstore: package not in store")
)

// Params holds the derived controller parameters for one fixed-U instance.
type Params struct {
	// U is the assumed bound on the number of nodes ever to exist.
	U int64
	// M is the total number of permits.
	M int64
	// W is the waste parameter (forced to at least 1 for the φ/ψ
	// formulas; the W=0 case is handled by the driver layer).
	W int64
	// Phi (φ) is the static package capacity / mobile size unit.
	Phi int64
	// Psi (ψ) is the distance scale of the filler-node search.
	Psi int64
	// MaxLevel bounds mobile package levels: levels lie in [0, MaxLevel].
	MaxLevel int
}

// NewParams derives φ, ψ and the level bound from U, M and W. U must be at
// least 1; W below 1 is clamped to 1 (per the paper, the W=0 controller is
// built from a (M,1)-controller plus a trivial (1,0)-controller).
func NewParams(u, m, w int64) Params {
	if u < 1 {
		u = 1
	}
	if w < 1 {
		w = 1
	}
	phi := w / (2 * u)
	if phi < 1 {
		phi = 1
	}
	ceilLog := int64(ceilLog2(u) + 2)
	uOverW := (u + w - 1) / w
	if uOverW < 1 {
		uOverW = 1
	}
	psi := 4 * ceilLog * uOverW
	// Levels satisfy 2^{k-1}ψ ≤ U (domain invariant 1), so k ≤ log U + 1.
	maxLevel := ceilLog2(u) + 1
	return Params{U: u, M: m, W: w, Phi: phi, Psi: psi, MaxLevel: maxLevel}
}

func ceilLog2(n int64) int {
	if n <= 1 {
		return 0
	}
	k := 0
	v := int64(1)
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// MobileSize returns the size 2^level·φ of a mobile package of the given
// level.
func (p Params) MobileSize(level int) int64 {
	return p.Phi << uint(level)
}

// UKDistance returns d(u, u_k) = 3·2^{k-1}·ψ, the distance from the
// requesting node u to the drop point u_k of the level-k package created by
// procedure Proc (Section 3.1, item 4). ψ is divisible by 4, so the value
// is integral for k = 0 as well.
func (p Params) UKDistance(k int) int64 {
	return 3 * p.Psi << uint(k) / 2
}

// DomainSize returns 2^{k-1}·ψ, the required domain size of a level-k
// mobile package (Domain Invariant 1).
func (p Params) DomainSize(k int) int64 {
	return p.Psi << uint(k) / 2
}

// IsFillerDistance reports whether a mobile package of the given level,
// held by an ancestor at hop distance d from the requesting node, satisfies
// the filler-node condition of Section 3.1:
//
//	level 0:  0 ≤ d ≤ 2ψ
//	level j:  2^j·ψ < d ≤ 2^{j+1}·ψ
func (p Params) IsFillerDistance(level int, d int64) bool {
	if level == 0 {
		return d >= 0 && d <= 2*p.Psi
	}
	lo := p.Psi << uint(level)
	hi := p.Psi << uint(level+1)
	return d > lo && d <= hi
}

// RootLevel returns j(u), the smallest integer j ≥ 0 such that
// d(u, root) ≤ 2^{j+1}·ψ (Section 3.1, item 3b).
func (p Params) RootLevel(dToRoot int64) int {
	j := 0
	for dToRoot > p.Psi<<uint(j+1) {
		j++
	}
	return j
}

// Interval is an inclusive range [Lo, Hi] of permit serial numbers. Serial
// numbers are always ≥ 1 (the name-assignment protocol uses them as node
// identities), so the zero Interval is the sentinel "no serials attached".
type Interval struct {
	Lo, Hi int64
}

// Len returns the number of serials in the interval (0 when invalid).
func (iv Interval) Len() int64 {
	if !iv.Valid() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Valid reports whether the interval carries serials.
func (iv Interval) Valid() bool { return iv.Lo >= 1 && iv.Hi >= iv.Lo }

// Split halves the interval into a lower and an upper part of equal length.
// The interval length must be even.
func (iv Interval) Split() (lower, upper Interval, err error) {
	n := iv.Len()
	if n%2 != 0 {
		return Interval{}, Interval{}, fmt.Errorf("split interval of odd length %d", n)
	}
	mid := iv.Lo + n/2
	return Interval{Lo: iv.Lo, Hi: mid - 1}, Interval{Lo: mid, Hi: iv.Hi}, nil
}

// Package is one permit package. Reject packages are not represented by
// this type; they are a per-store flag (they carry no state beyond their
// presence).
type Package struct {
	// Level is the package level; meaningful only while Mobile.
	Level int
	// Size is the number of permits currently in the package.
	Size int64
	// Mobile distinguishes mobile from static permit packages.
	Mobile bool
	// Serials optionally carries the explicit permit serial numbers
	// (used by the name-assignment application). Invariant when set:
	// Serials.Len() == Size.
	Serials Interval
}

// NewMobile creates a mobile package of the given level with size 2^level·φ.
func NewMobile(p Params, level int) *Package {
	return &Package{Level: level, Size: p.MobileSize(level), Mobile: true}
}

// NewMobileWithSerials creates a mobile package carrying explicit serials;
// the interval length must equal the level's size.
func NewMobileWithSerials(p Params, level int, iv Interval) (*Package, error) {
	want := p.MobileSize(level)
	if iv.Len() != want {
		return nil, fmt.Errorf("serial interval length %d, level %d needs %d", iv.Len(), level, want)
	}
	return &Package{Level: level, Size: want, Mobile: true, Serials: iv}, nil
}

// Split splits a mobile package of level k ≥ 1 into two mobile packages of
// level k−1 (Section 3.1, action 2). The receiver is consumed and must not
// be used afterwards. Serial intervals, when present, are halved.
func (pk *Package) Split() (p1, p2 *Package, err error) {
	if !pk.Mobile {
		return nil, nil, ErrNotMobile
	}
	if pk.Level < 1 {
		return nil, nil, ErrLevelZero
	}
	half := pk.Size / 2
	p1 = &Package{Level: pk.Level - 1, Size: half, Mobile: true}
	p2 = &Package{Level: pk.Level - 1, Size: half, Mobile: true}
	if pk.Serials.Valid() {
		lo, hi, err := pk.Serials.Split()
		if err != nil {
			return nil, nil, err
		}
		p1.Serials = lo
		p2.Serials = hi
	}
	pk.Size = 0
	return p1, p2, nil
}

// BecomeStatic converts a level-zero mobile package into a static package
// (procedure Proc, k = 0 case).
func (pk *Package) BecomeStatic() error {
	if !pk.Mobile {
		return ErrNotMobile
	}
	if pk.Level != 0 {
		return fmt.Errorf("become static at level %d: %w", pk.Level, ErrNotMobile)
	}
	pk.Mobile = false
	return nil
}

// TakePermit removes one permit from a static package, returning its serial
// number (or 0 when the package carries no serials) and whether the package
// is now empty and must be canceled by the caller.
func (pk *Package) TakePermit() (serial int64, empty bool, err error) {
	if pk.Mobile {
		return 0, false, ErrNotMobile
	}
	if pk.Size <= 0 {
		return 0, false, ErrEmptyStatic
	}
	if pk.Serials.Valid() {
		serial = pk.Serials.Lo
		pk.Serials.Lo++
	}
	pk.Size--
	return serial, pk.Size == 0, nil
}

// Store is the per-node package storage (the distributed implementation
// calls it the whiteboard's package section). The zero value is not usable;
// use NewStore.
type Store struct {
	reject  bool
	statics []*Package
	mobiles []*Package
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// HasReject reports whether a reject package resides here.
func (s *Store) HasReject() bool { return s.reject }

// SetReject places a reject package in the store (idempotent).
func (s *Store) SetReject() { s.reject = true }

// ClearReject removes the reject package (used when drivers reset state
// between iterations).
func (s *Store) ClearReject() { s.reject = false }

// AddMobile stores a mobile package.
func (s *Store) AddMobile(pk *Package) {
	s.mobiles = append(s.mobiles, pk)
}

// AddStatic stores a static package.
func (s *Store) AddStatic(pk *Package) {
	s.statics = append(s.statics, pk)
}

// Static returns a non-empty static package, or nil.
func (s *Store) Static() *Package {
	for _, pk := range s.statics {
		if pk.Size > 0 {
			return pk
		}
	}
	return nil
}

// MobileAtFillerDistance returns the mobile package of the smallest level
// satisfying the filler condition for hop distance d, or nil.
func (s *Store) MobileAtFillerDistance(p Params, d int64) *Package {
	var best *Package
	for _, pk := range s.mobiles {
		if p.IsFillerDistance(pk.Level, d) && (best == nil || pk.Level < best.Level) {
			best = pk
		}
	}
	return best
}

// TakeStaticPermit grants one permit from node-local state: it takes a
// permit from the first non-empty static package, removing the package when
// it drains. It reports ok = false, leaving the store untouched, when no
// static permit is available. This is the atomic core of the controllers'
// batched fast path: it either completes the whole local grant or changes
// nothing.
func (s *Store) TakeStaticPermit() (serial int64, ok bool) {
	static := s.Static()
	if static == nil {
		return 0, false
	}
	serial, empty, err := static.TakePermit()
	if err != nil {
		// Unreachable: Static() only returns non-empty static packages,
		// and TakePermit mutates nothing on error.
		return 0, false
	}
	if empty {
		// Cannot fail (the package came from this store); even if it did,
		// Static() skips empty packages, so the grant stays correct.
		_ = s.RemoveStatic(static)
	}
	return serial, true
}

// RemoveMobile removes pk from the store.
func (s *Store) RemoveMobile(pk *Package) error {
	for i, cur := range s.mobiles {
		if cur == pk {
			s.mobiles[i] = s.mobiles[len(s.mobiles)-1]
			s.mobiles = s.mobiles[:len(s.mobiles)-1]
			return nil
		}
	}
	return ErrNotInStore
}

// RemoveStatic removes pk from the store.
func (s *Store) RemoveStatic(pk *Package) error {
	for i, cur := range s.statics {
		if cur == pk {
			s.statics[i] = s.statics[len(s.statics)-1]
			s.statics = s.statics[:len(s.statics)-1]
			return nil
		}
	}
	return ErrNotInStore
}

// TakeAll removes and returns every permit package (used when a node is
// deleted gracefully and its data moves to its parent). The reject flag is
// returned as well.
func (s *Store) TakeAll() (packages []*Package, hadReject bool) {
	out := make([]*Package, 0, len(s.statics)+len(s.mobiles))
	out = append(out, s.statics...)
	out = append(out, s.mobiles...)
	s.statics = nil
	s.mobiles = nil
	return out, s.reject
}

// Absorb merges the given packages into the store (parent side of a
// graceful deletion).
func (s *Store) Absorb(packages []*Package, reject bool) {
	for _, pk := range packages {
		if pk.Size <= 0 {
			continue
		}
		if pk.Mobile {
			s.mobiles = append(s.mobiles, pk)
		} else {
			s.statics = append(s.statics, pk)
		}
	}
	if reject {
		s.reject = true
	}
}

// Mobiles returns the stored mobile packages (shared slice; callers must
// not mutate).
func (s *Store) Mobiles() []*Package { return s.mobiles }

// Statics returns the stored static packages (shared slice; callers must
// not mutate).
func (s *Store) Statics() []*Package { return s.statics }

// PermitCount returns the total permits stored here (static + mobile).
func (s *Store) PermitCount() int64 {
	var n int64
	for _, pk := range s.statics {
		n += pk.Size
	}
	for _, pk := range s.mobiles {
		n += pk.Size
	}
	return n
}

// Empty reports whether the store holds neither permits nor a reject
// package.
func (s *Store) Empty() bool {
	return !s.reject && len(s.statics) == 0 && len(s.mobiles) == 0
}

// Clear drops every package including the reject flag.
func (s *Store) Clear() {
	s.reject = false
	s.statics = nil
	s.mobiles = nil
}

// MemoryBits estimates the whiteboard memory of this store in bits using
// the paper's encoding (Claim 4.8): identical mobile packages of one level
// are stored as a count (O(log U) bits per level), all static packages
// collapse to one total (O(log M) bits), plus the reject flag.
func (s *Store) MemoryBits(p Params) int {
	bitsLogU := ceilLog2(p.U) + 1
	bitsLogM := ceilLog2(p.M) + 1
	levels := make(map[int]struct{}, len(s.mobiles))
	for _, pk := range s.mobiles {
		levels[pk.Level] = struct{}{}
	}
	bits := 1 // reject flag
	bits += len(levels) * bitsLogU
	if len(s.statics) > 0 {
		bits += bitsLogM
	}
	return bits
}
