package pkgstore

import (
	"testing"
)

// FuzzPackageSplitMerge drives random package lifecycles — root creation
// with serial intervals, drop-point splits, graceful-deletion style
// store-to-store transfers, static conversion, and permit grants — and
// checks the conservation invariants the controller's safety rests on:
//
//   - permits are conserved: storage + stored packages + granted == M;
//   - a package's serial interval always matches its size;
//   - granted serials are pairwise distinct and lie in [1, M].
//
// The first three bytes pick the (U, M, W) parameters; each following
// pair of bytes is one operation.
func FuzzPackageSplitMerge(f *testing.F) {
	f.Add([]byte("abcdefghijklmnop"))
	f.Add([]byte("\x05\x40\x08" + "0123456789"))
	f.Add([]byte{40, 200, 80, 0, 3, 1, 0, 4, 0, 2, 1, 3, 0, 4, 1, 4, 2, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		u := int64(data[0]%64) + 1
		w := int64(data[1]%128) + 1
		m := int64(data[2])*2 + 64
		p := NewParams(u, m, w)

		storage := m
		unissued := Interval{Lo: 1, Hi: m} // serials still backing the storage
		stores := []*Store{NewStore(), NewStore()}
		granted := int64(0)
		seen := make(map[int64]struct{})

		check := func(op string) {
			t.Helper()
			total := storage + granted
			for _, s := range stores {
				total += s.PermitCount()
				for _, pk := range s.Mobiles() {
					if !pk.Mobile {
						t.Fatalf("%s: static package in mobile section", op)
					}
					if pk.Serials.Valid() && pk.Serials.Len() != pk.Size {
						t.Fatalf("%s: mobile carries %d serials for %d permits", op, pk.Serials.Len(), pk.Size)
					}
				}
				for _, pk := range s.Statics() {
					if pk.Mobile {
						t.Fatalf("%s: mobile package in static section", op)
					}
					if pk.Serials.Valid() && pk.Serials.Len() != pk.Size {
						t.Fatalf("%s: static carries %d serials for %d permits", op, pk.Serials.Len(), pk.Size)
					}
				}
			}
			if total != m {
				t.Fatalf("%s: conservation broken: storage %d + stored + granted %d = %d, want M=%d",
					op, storage, granted, total, m)
			}
		}

		firstMobile := func(s *Store, minLevel int) *Package {
			for _, pk := range s.Mobiles() {
				if pk.Level >= minLevel {
					return pk
				}
			}
			return nil
		}

		for i := 3; i+1 < len(data); i += 2 {
			op, sel := data[i]%5, int(data[i+1])
			s := stores[sel%2]
			switch op {
			case 0: // fund a fresh mobile package from the storage
				level := sel % (p.MaxLevel + 1)
				size := p.MobileSize(level)
				if storage < size || unissued.Len() < size {
					continue
				}
				iv := Interval{Lo: unissued.Lo, Hi: unissued.Lo + size - 1}
				pk, err := NewMobileWithSerials(p, level, iv)
				if err != nil {
					t.Fatalf("create level %d: %v", level, err)
				}
				unissued.Lo += size
				storage -= size
				s.AddMobile(pk)
				check("create")
			case 1: // drop-point split
				pk := firstMobile(s, 1)
				if pk == nil {
					continue
				}
				if err := s.RemoveMobile(pk); err != nil {
					t.Fatalf("remove for split: %v", err)
				}
				p1, p2, err := pk.Split()
				if err != nil {
					t.Fatalf("split level %d: %v", pk.Level, err)
				}
				s.AddMobile(p1)
				s.AddMobile(p2)
				check("split")
			case 2: // graceful-deletion handoff: move everything across
				from, to := stores[sel%2], stores[(sel+1)%2]
				pkgs, rej := from.TakeAll()
				to.Absorb(pkgs, rej)
				check("transfer")
			case 3: // arrival: a level-0 mobile converts to static
				pk := firstMobile(s, 0)
				if pk == nil || pk.Level != 0 {
					continue
				}
				if err := s.RemoveMobile(pk); err != nil {
					t.Fatalf("remove for conversion: %v", err)
				}
				if err := pk.BecomeStatic(); err != nil {
					t.Fatalf("become static: %v", err)
				}
				s.AddStatic(pk)
				check("become-static")
			case 4: // grant one permit from node-local static state
				serial, ok := s.TakeStaticPermit()
				if !ok {
					continue
				}
				granted++
				if serial < 1 || serial > m {
					t.Fatalf("granted serial %d outside [1, %d]", serial, m)
				}
				if _, dup := seen[serial]; dup {
					t.Fatalf("serial %d granted twice", serial)
				}
				seen[serial] = struct{}{}
				check("grant")
			}
		}
		check("final")
	})
}
