package pkgstore

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewParamsSmallW(t *testing.T) {
	p := NewParams(16, 100, 1)
	if p.Phi != 1 {
		t.Fatalf("Phi = %d, want 1 (W < 2U)", p.Phi)
	}
	// ψ = 4·(⌈log2 16⌉+2)·⌈16/1⌉ = 4·6·16 = 384.
	if p.Psi != 384 {
		t.Fatalf("Psi = %d, want 384", p.Psi)
	}
	if p.Psi%4 != 0 {
		t.Fatalf("Psi = %d must be divisible by 4", p.Psi)
	}
}

func TestNewParamsLargeW(t *testing.T) {
	p := NewParams(10, 1000, 200)
	// φ = ⌊200/20⌋ = 10.
	if p.Phi != 10 {
		t.Fatalf("Phi = %d, want 10", p.Phi)
	}
	// ψ = 4·(⌈log2 10⌉+2)·max(⌈10/200⌉,1) = 4·6·1 = 24.
	if p.Psi != 24 {
		t.Fatalf("Psi = %d, want 24", p.Psi)
	}
}

func TestNewParamsClamps(t *testing.T) {
	p := NewParams(0, 5, 0)
	if p.U != 1 || p.W != 1 {
		t.Fatalf("U, W = %d, %d; want clamped to 1, 1", p.U, p.W)
	}
	if p.Phi < 1 || p.Psi < 1 {
		t.Fatalf("Phi=%d Psi=%d must be positive", p.Phi, p.Psi)
	}
}

func TestMobileSizeAndDistances(t *testing.T) {
	p := NewParams(16, 100, 1)
	if got := p.MobileSize(0); got != p.Phi {
		t.Fatalf("MobileSize(0) = %d, want φ=%d", got, p.Phi)
	}
	if got := p.MobileSize(3); got != 8*p.Phi {
		t.Fatalf("MobileSize(3) = %d, want 8φ", got)
	}
	if got := p.UKDistance(0); got != 3*p.Psi/2 {
		t.Fatalf("UKDistance(0) = %d, want 3ψ/2 = %d", got, 3*p.Psi/2)
	}
	if got := p.UKDistance(2); got != 6*p.Psi {
		t.Fatalf("UKDistance(2) = %d, want 6ψ", got)
	}
	if got := p.DomainSize(0); got != p.Psi/2 {
		t.Fatalf("DomainSize(0) = %d, want ψ/2", got)
	}
	if got := p.DomainSize(3); got != 4*p.Psi {
		t.Fatalf("DomainSize(3) = %d, want 4ψ", got)
	}
}

func TestIsFillerDistance(t *testing.T) {
	p := NewParams(16, 100, 1)
	psi := p.Psi
	tests := []struct {
		level int
		d     int64
		want  bool
	}{
		{0, 0, true},
		{0, 2 * psi, true},
		{0, 2*psi + 1, false},
		{1, 2 * psi, false},     // boundary excluded (strict >)
		{1, 2*psi + 1, true},    // just inside
		{1, 4 * psi, true},      // upper boundary included
		{1, 4*psi + 1, false},   // above
		{2, 4*psi + 1, true},    // level-2 window starts after 4ψ
		{2, 8 * psi, true},      //
		{2, 8*psi + 100, false}, //
	}
	for _, tc := range tests {
		if got := p.IsFillerDistance(tc.level, tc.d); got != tc.want {
			t.Fatalf("IsFillerDistance(%d, %d) = %v, want %v", tc.level, tc.d, got, tc.want)
		}
	}
}

func TestRootLevel(t *testing.T) {
	p := NewParams(16, 100, 1)
	psi := p.Psi
	tests := []struct {
		d    int64
		want int
	}{
		{0, 0}, {1, 0}, {2 * psi, 0}, {2*psi + 1, 1}, {4 * psi, 1}, {4*psi + 1, 2}, {16 * psi, 3},
	}
	for _, tc := range tests {
		if got := p.RootLevel(tc.d); got != tc.want {
			t.Fatalf("RootLevel(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
	// Consistency: the root at distance d must satisfy the filler condition
	// for a fresh package at level RootLevel(d), for any d ≥ 1.
	for d := int64(1); d < 40*psi; d += 7 {
		j := p.RootLevel(d)
		if !p.IsFillerDistance(j, d) {
			t.Fatalf("RootLevel(%d)=%d does not satisfy filler condition", d, j)
		}
	}
}

func TestIntervalSplit(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 17}
	lo, hi, err := iv.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if lo != (Interval{10, 13}) || hi != (Interval{14, 17}) {
		t.Fatalf("Split = %v, %v", lo, hi)
	}
	if _, _, err := (Interval{1, 3}).Split(); err == nil {
		t.Fatal("odd split should fail")
	}
	if (Interval{}).Valid() {
		t.Fatal("zero interval should be invalid")
	}
	if (Interval{5, 4}).Len() != 0 {
		t.Fatal("inverted interval should have length 0")
	}
}

func TestPackageSplitChain(t *testing.T) {
	p := NewParams(16, 1000, 1)
	pk := NewMobile(p, 3)
	if pk.Size != 8*p.Phi {
		t.Fatalf("level-3 size = %d, want 8φ", pk.Size)
	}
	p1, p2, err := pk.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if p1.Level != 2 || p2.Level != 2 || p1.Size != 4*p.Phi || p2.Size != 4*p.Phi {
		t.Fatalf("split results wrong: %+v %+v", p1, p2)
	}
	if pk.Size != 0 {
		t.Fatal("split must consume the source package")
	}
	// Chain down to level 0 and convert to static.
	cur := p2
	for cur.Level > 0 {
		_, cur, err = cur.Split()
		if err != nil {
			t.Fatalf("Split at level %d: %v", cur.Level, err)
		}
	}
	if err := cur.BecomeStatic(); err != nil {
		t.Fatalf("BecomeStatic: %v", err)
	}
	if cur.Mobile || cur.Size != p.Phi {
		t.Fatalf("static conversion wrong: %+v", cur)
	}
	if _, _, err := cur.Split(); !errors.Is(err, ErrNotMobile) {
		t.Fatalf("splitting static: err = %v, want ErrNotMobile", err)
	}
}

func TestSplitLevelZeroFails(t *testing.T) {
	p := NewParams(16, 100, 1)
	pk := NewMobile(p, 0)
	if _, _, err := pk.Split(); !errors.Is(err, ErrLevelZero) {
		t.Fatalf("err = %v, want ErrLevelZero", err)
	}
	if err := NewMobile(p, 1).BecomeStatic(); err == nil {
		t.Fatal("BecomeStatic at level 1 should fail")
	}
}

func TestSerialsSplitAndGrant(t *testing.T) {
	p := NewParams(4, 64, 1) // φ = 1
	pk, err := NewMobileWithSerials(p, 2, Interval{Lo: 100, Hi: 103})
	if err != nil {
		t.Fatalf("NewMobileWithSerials: %v", err)
	}
	p1, p2, err := pk.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if p1.Serials != (Interval{100, 101}) || p2.Serials != (Interval{102, 103}) {
		t.Fatalf("serials after split: %v %v", p1.Serials, p2.Serials)
	}
	_, q2, err := p2.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := q2.BecomeStatic(); err != nil {
		t.Fatalf("BecomeStatic: %v", err)
	}
	serial, empty, err := q2.TakePermit()
	if err != nil {
		t.Fatalf("TakePermit: %v", err)
	}
	if serial != 103 || !empty {
		t.Fatalf("TakePermit = %d, empty=%v; want 103, true", serial, empty)
	}
	if _, _, err := q2.TakePermit(); !errors.Is(err, ErrEmptyStatic) {
		t.Fatalf("TakePermit on empty: %v, want ErrEmptyStatic", err)
	}
	if _, err := NewMobileWithSerials(p, 2, Interval{Lo: 1, Hi: 2}); err == nil {
		t.Fatal("mismatched serial interval should fail")
	}
}

func TestStoreBasics(t *testing.T) {
	p := NewParams(16, 100, 1)
	s := NewStore()
	if !s.Empty() {
		t.Fatal("new store should be empty")
	}
	m0 := NewMobile(p, 0)
	m2 := NewMobile(p, 2)
	s.AddMobile(m0)
	s.AddMobile(m2)
	st := NewMobile(p, 0)
	if err := st.BecomeStatic(); err != nil {
		t.Fatalf("BecomeStatic: %v", err)
	}
	s.AddStatic(st)

	if got := s.PermitCount(); got != m0.Size+m2.Size+st.Size {
		t.Fatalf("PermitCount = %d", got)
	}
	if s.Static() != st {
		t.Fatal("Static() should return the stored static package")
	}
	// Filler lookup prefers the smallest qualifying level.
	if got := s.MobileAtFillerDistance(p, p.Psi); got != m0 {
		t.Fatalf("filler at d=ψ = %+v, want level-0 package", got)
	}
	if got := s.MobileAtFillerDistance(p, 5*p.Psi); got != m2 {
		t.Fatalf("filler at d=5ψ = %+v, want level-2 package", got)
	}
	if got := s.MobileAtFillerDistance(p, 3*p.Psi); got != nil {
		t.Fatalf("filler at d=3ψ = %+v, want nil", got)
	}
	if err := s.RemoveMobile(m2); err != nil {
		t.Fatalf("RemoveMobile: %v", err)
	}
	if err := s.RemoveMobile(m2); !errors.Is(err, ErrNotInStore) {
		t.Fatalf("double remove: %v", err)
	}
	if err := s.RemoveStatic(st); err != nil {
		t.Fatalf("RemoveStatic: %v", err)
	}
}

func TestStoreRejectAndClear(t *testing.T) {
	s := NewStore()
	if s.HasReject() {
		t.Fatal("no reject initially")
	}
	s.SetReject()
	if !s.HasReject() {
		t.Fatal("reject flag lost")
	}
	s.ClearReject()
	if s.HasReject() {
		t.Fatal("ClearReject failed")
	}
	s.SetReject()
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear should empty the store")
	}
}

func TestStoreTakeAllAbsorb(t *testing.T) {
	p := NewParams(16, 100, 1)
	donor := NewStore()
	donor.SetReject()
	donor.AddMobile(NewMobile(p, 1))
	st := NewMobile(p, 0)
	if err := st.BecomeStatic(); err != nil {
		t.Fatal(err)
	}
	donor.AddStatic(st)

	pkgs, hadReject := donor.TakeAll()
	if len(pkgs) != 2 || !hadReject {
		t.Fatalf("TakeAll = %d pkgs, reject=%v; want 2, true", len(pkgs), hadReject)
	}
	if len(donor.Mobiles()) != 0 || len(donor.Statics()) != 0 {
		t.Fatal("TakeAll should empty the donor's packages")
	}

	parent := NewStore()
	parent.Absorb(pkgs, hadReject)
	if !parent.HasReject() {
		t.Fatal("parent should inherit reject")
	}
	if got := parent.PermitCount(); got != st.Size+p.MobileSize(1) {
		t.Fatalf("parent PermitCount = %d", got)
	}
	// Absorb drops empty packages.
	empty := &Package{Mobile: true, Level: 0, Size: 0}
	parent.Absorb([]*Package{empty}, false)
	for _, m := range parent.Mobiles() {
		if m == empty {
			t.Fatal("empty package absorbed")
		}
	}
}

func TestMemoryBits(t *testing.T) {
	p := NewParams(1024, 1<<20, 1)
	s := NewStore()
	base := s.MemoryBits(p)
	if base != 1 {
		t.Fatalf("empty store bits = %d, want 1", base)
	}
	s.AddMobile(NewMobile(p, 0))
	s.AddMobile(NewMobile(p, 0)) // same level: still one counter
	oneLevel := s.MemoryBits(p)
	s.AddMobile(NewMobile(p, 5))
	twoLevels := s.MemoryBits(p)
	if twoLevels-oneLevel != oneLevel-base {
		t.Fatalf("per-level cost inconsistent: %d, %d, %d", base, oneLevel, twoLevels)
	}
	st := NewMobile(p, 0)
	if err := st.BecomeStatic(); err != nil {
		t.Fatal(err)
	}
	s.AddStatic(st)
	if s.MemoryBits(p) <= twoLevels {
		t.Fatal("static packages should add O(log M) bits")
	}
}

func TestSplitPreservesPermitsProperty(t *testing.T) {
	// Property: any sequence of splits preserves the total permit count,
	// and every produced mobile package has size 2^level·φ.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewParams(64, 1<<20, int64(1+rng.Intn(1000)))
		level := 1 + rng.Intn(6)
		root := NewMobile(p, level)
		total := root.Size
		queue := []*Package{root}
		var sum int64
		for len(queue) > 0 {
			pk := queue[0]
			queue = queue[1:]
			if pk.Level > 0 && rng.Intn(2) == 0 {
				p1, p2, err := pk.Split()
				if err != nil {
					return false
				}
				queue = append(queue, p1, p2)
				continue
			}
			if pk.Size != p.MobileSize(pk.Level) {
				return false
			}
			sum += pk.Size
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
