package pkgstore

import "fmt"

// This file is the package store's state-capture boundary for the
// durability engine: StoreState is the plain-data image of one node's
// whiteboard, exact enough to rebuild the store permit for permit.

// PackageState is the captured state of one permit package.
type PackageState struct {
	Level  int
	Size   int64
	Mobile bool
	// SerialLo/SerialHi mirror Package.Serials (zero values = no serials).
	SerialLo, SerialHi int64
}

// StoreState is the captured state of one Store. Statics and Mobiles keep
// their in-store order, so a restored store answers requests (and drains
// packages) in exactly the order the original would have.
type StoreState struct {
	Reject  bool
	Statics []PackageState
	Mobiles []PackageState
}

func packageState(pk *Package) PackageState {
	return PackageState{
		Level:    pk.Level,
		Size:     pk.Size,
		Mobile:   pk.Mobile,
		SerialLo: pk.Serials.Lo,
		SerialHi: pk.Serials.Hi,
	}
}

func (ps PackageState) restore() (*Package, error) {
	if ps.Size < 0 {
		return nil, fmt.Errorf("pkgstore: restore package with size %d", ps.Size)
	}
	pk := &Package{
		Level:   ps.Level,
		Size:    ps.Size,
		Mobile:  ps.Mobile,
		Serials: Interval{Lo: ps.SerialLo, Hi: ps.SerialHi},
	}
	if pk.Serials.Valid() && pk.Serials.Len() != pk.Size {
		return nil, fmt.Errorf("pkgstore: restore package carrying %d serials for %d permits",
			pk.Serials.Len(), pk.Size)
	}
	return pk, nil
}

// State captures the store's complete contents.
func (s *Store) State() StoreState {
	st := StoreState{Reject: s.reject}
	for _, pk := range s.statics {
		st.Statics = append(st.Statics, packageState(pk))
	}
	for _, pk := range s.mobiles {
		st.Mobiles = append(st.Mobiles, packageState(pk))
	}
	return st
}

// RestoreStore rebuilds a store from a captured state.
func RestoreStore(st StoreState) (*Store, error) {
	s := NewStore()
	s.reject = st.Reject
	for _, ps := range st.Statics {
		pk, err := ps.restore()
		if err != nil {
			return nil, err
		}
		if pk.Mobile {
			return nil, fmt.Errorf("pkgstore: mobile package in static section")
		}
		s.statics = append(s.statics, pk)
	}
	for _, ps := range st.Mobiles {
		pk, err := ps.restore()
		if err != nil {
			return nil, err
		}
		if !pk.Mobile {
			return nil, fmt.Errorf("pkgstore: static package in mobile section")
		}
		s.mobiles = append(s.mobiles, pk)
	}
	return s, nil
}
