package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	c.Inc(CounterMoves)
	c.Add(CounterMoves, 4)
	c.Add(CounterGrants, 2)
	if got := c.Get(CounterMoves); got != 5 {
		t.Fatalf("moves = %d, want 5", got)
	}
	if got := c.Get("never-touched"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	snap := c.Snapshot()
	if snap[CounterGrants] != 2 {
		t.Fatalf("snapshot grants = %d, want 2", snap[CounterGrants])
	}
	snap[CounterGrants] = 99
	if got := c.Get(CounterGrants); got != 2 {
		t.Fatal("snapshot must be a copy")
	}
	c.Reset()
	if got := c.Get(CounterMoves); got != 0 {
		t.Fatalf("after reset moves = %d, want 0", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(CounterMessages)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(CounterMessages); got != 8000 {
		t.Fatalf("messages = %d, want 8000", got)
	}
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	if got := c.String(); got != "a=1 b=2" {
		t.Fatalf("String() = %q, want %q", got, "a=1 b=2")
	}
}

func TestGrowthExponent(t *testing.T) {
	tests := []struct {
		name string
		fn   func(x float64) float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 3 * x }, 1},
		{"quadratic", func(x float64) float64 { return x * x }, 2},
		{"constant", func(x float64) float64 { return 7 }, 0},
		{"nlogn", func(x float64) float64 { return x * math.Log2(x) }, 1.3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var s Series
			for x := 4.0; x <= 4096; x *= 2 {
				s.Append(x, tc.fn(x))
			}
			got := s.GrowthExponent()
			if math.Abs(got-tc.want) > 0.35 {
				t.Fatalf("exponent = %.3f, want about %.1f", got, tc.want)
			}
		})
	}
}

func TestGrowthExponentDegenerate(t *testing.T) {
	var s Series
	if !math.IsNaN(s.GrowthExponent()) {
		t.Fatal("empty series should yield NaN")
	}
	s.Append(1, 1)
	if !math.IsNaN(s.GrowthExponent()) {
		t.Fatal("single point should yield NaN")
	}
	s.Append(-1, 5) // dropped: non-positive x
	if !math.IsNaN(s.GrowthExponent()) {
		t.Fatal("one usable point should yield NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "n", "messages", "ratio")
	tb.AddRow(64, 1234, 1.5)
	tb.AddRow(128, 56789, 1.75)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title in %q", out)
	}
	if !strings.Contains(out, "56789") || !strings.Contains(out, "1.750") {
		t.Fatalf("missing cells in %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tc := range tests {
		if got := CeilLog2(tc.n); got != tc.want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestLog2(t *testing.T) {
	if got := Log2(0.5); got != 0 {
		t.Fatalf("Log2(0.5) = %v, want 0", got)
	}
	if got := Log2(8); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Log2(8) = %v, want 3", got)
	}
}
