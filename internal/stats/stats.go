// Package stats provides counters and table formatting shared by the
// controller implementations, the benchmark harness and the CLIs.
//
// The paper's cost measures are move complexity (centralized setting) and
// message complexity (distributed setting); both are pure event counts, so
// a Counters value simply accumulates named tallies. Series and Table help
// the benchmark harness print the parameter sweeps recorded in
// EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Counters accumulates named event counts. It is safe for concurrent use.
type Counters struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{counts: make(map[string]int64)}
}

// Add adds delta to the named counter.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[name] += delta
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[string]int64)
}

// Restore replaces every counter with the given values (the durability
// engine's recovery path re-seeds the shared counters from a snapshot).
func (c *Counters) Restore(values map[string]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[string]int64, len(values))
	for k, v := range values {
		c.counts[k] = v
	}
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by name.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}

// Canonical counter names used across the repository.
const (
	// CounterMoves counts centralized move complexity (one unit per move
	// of a set of objects across one tree edge, Section 2.2).
	CounterMoves = "moves"
	// CounterMessages counts distributed message complexity.
	CounterMessages = "messages"
	// CounterGrants counts permits granted to requests.
	CounterGrants = "grants"
	// CounterRejects counts rejects delivered to requests.
	CounterRejects = "rejects"
	// CounterTopoChanges counts applied topological changes.
	CounterTopoChanges = "topo-changes"
	// CounterIterations counts driver iterations (Obs 3.4 / Thm 3.5).
	CounterIterations = "iterations"
)

// Point is one (x, y) measurement in a parameter sweep.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of measurements.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a measurement.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// GrowthExponent estimates b in y = a*x^b by least squares over log-log
// transformed points. It reports NaN with fewer than two points or
// non-positive coordinates.
func (s *Series) GrowthExponent() float64 {
	var xs, ys []float64
	for _, p := range s.Points {
		if p.X > 0 && p.Y > 0 {
			xs = append(xs, math.Log(p.X))
			ys = append(ys, math.Log(p.Y))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Table is a simple column-aligned text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one formatted row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Log2 returns log base 2 of n, with Log2(x<=1) = 0 to keep ratio
// denominators finite.
func Log2(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(n)
}

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1).
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	v := 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
