package tree

import "math/rand"

// PortAssigner produces port numbers for newly attached edges. The paper
// assumes the "wasteful" model in which an adversary chooses the port
// numbers, subject only to the numbers at each vertex being distinct and
// encodable in O(log N) bits.
type PortAssigner interface {
	// Assign returns a port number for a new edge at node id that does not
	// collide with any port in used.
	Assign(id NodeID, used map[int]struct{}) int
}

// SequentialPorts assigns the smallest unused non-negative port number at
// each node. It models the friendly "designer port" regime.
type SequentialPorts struct{}

// NewSequentialPorts returns a SequentialPorts assigner.
func NewSequentialPorts() *SequentialPorts { return &SequentialPorts{} }

// Assign implements PortAssigner.
func (*SequentialPorts) Assign(_ NodeID, used map[int]struct{}) int {
	for p := 0; ; p++ {
		if _, taken := used[p]; !taken {
			return p
		}
	}
}

// AdversarialPorts assigns pseudo-random port numbers drawn from a large
// range, modeling an adversary that scatters the port space (while keeping
// ports O(log N)-bit encodable).
type AdversarialPorts struct {
	rng *rand.Rand
}

// NewAdversarialPorts returns an adversarial assigner seeded with seed.
func NewAdversarialPorts(seed int64) *AdversarialPorts {
	return &AdversarialPorts{rng: rand.New(rand.NewSource(seed))}
}

// Assign implements PortAssigner.
func (a *AdversarialPorts) Assign(_ NodeID, used map[int]struct{}) int {
	for {
		p := a.rng.Intn(1 << 30)
		if _, taken := used[p]; !taken {
			return p
		}
	}
}

var (
	_ PortAssigner = (*SequentialPorts)(nil)
	_ PortAssigner = (*AdversarialPorts)(nil)
)
