package tree

import "fmt"

// WalkDFS visits every live node in depth-first preorder starting at the
// root, calling fn with the node id and its DFS number (1-based, in visit
// order). Children are visited in insertion order, so the numbering is
// deterministic for a given construction history. If fn returns false, the
// walk stops early.
func (t *Tree) WalkDFS(fn func(id NodeID, dfsNum int) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	num := 0
	stack := []NodeID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		num++
		if !fn(id, num) {
			return
		}
		n := t.nodes[id]
		// Push children in reverse so they pop in insertion order.
		for i := len(n.children) - 1; i >= 0; i-- {
			stack = append(stack, n.children[i])
		}
	}
}

// DFSNumbers returns a map from live node id to 1-based DFS preorder number.
func (t *Tree) DFSNumbers() map[NodeID]int {
	out := make(map[NodeID]int, t.Size())
	t.WalkDFS(func(id NodeID, num int) bool {
		out[id] = num
		return true
	})
	return out
}

// Intervals returns, for every live node, the half-open DFS interval
// [pre, post] such that v is an ancestor of u iff interval(v) contains
// interval(u). pre is the 1-based preorder number; post is the largest
// preorder number in v's subtree. This is the classic Kannan-Naor-Rudich
// ancestry encoding used by the labeling application.
func (t *Tree) Intervals() map[NodeID][2]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[NodeID][2]int, len(t.nodes))
	num := 0
	var visit func(id NodeID)
	visit = func(id NodeID) {
		num++
		pre := num
		n := t.nodes[id]
		for _, c := range n.children {
			visit(c)
		}
		out[id] = [2]int{pre, num}
	}
	visit(t.root)
	return out
}

// SubtreeSize returns the number of live nodes in the subtree rooted at id.
func (t *Tree) SubtreeSize(id NodeID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, ok := t.nodes[id]; !ok {
		return 0, fmt.Errorf("subtree size of %d: %w", id, ErrNoSuchNode)
	}
	count := 0
	stack := []NodeID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		stack = append(stack, t.nodes[cur].children...)
	}
	return count, nil
}

// Height returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	max := 0
	for _, n := range t.nodes {
		if n.depth > max {
			max = n.depth
		}
	}
	return max
}

// NCA returns the nearest common ancestor of u and v.
func (t *Tree) NCA(u, v NodeID) (NodeID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	un, ok := t.nodes[u]
	if !ok {
		return InvalidNode, fmt.Errorf("nca of %d: %w", u, ErrNoSuchNode)
	}
	vn, ok := t.nodes[v]
	if !ok {
		return InvalidNode, fmt.Errorf("nca of %d: %w", v, ErrNoSuchNode)
	}
	for un.depth > vn.depth {
		un = t.nodes[un.parent]
	}
	for vn.depth > un.depth {
		vn = t.nodes[vn.parent]
	}
	for un.id != vn.id {
		un = t.nodes[un.parent]
		vn = t.nodes[vn.parent]
	}
	return un.id, nil
}

// TreeDistance returns the hop distance between two arbitrary live nodes
// (through their nearest common ancestor).
func (t *Tree) TreeDistance(u, v NodeID) (int, error) {
	w, err := t.NCA(u, v)
	if err != nil {
		return 0, err
	}
	du, err := t.Distance(u, w)
	if err != nil {
		return 0, err
	}
	dv, err := t.Distance(v, w)
	if err != nil {
		return 0, err
	}
	return du + dv, nil
}
