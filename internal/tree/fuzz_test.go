package tree

import (
	"sort"
	"testing"
)

// FuzzTreeOps drives a random topological-change history (the four change
// kinds of Section 2.1) from the fuzzer's byte stream and then checks the
// structural invariants and the path/labeling round-trips:
//
//   - Validate: parent/child symmetry, depth cache, port uniqueness,
//     reachability.
//   - PathToRoot/Ancestor/Distance agree with each other and with Depth.
//   - The DFS interval labeling (the Kannan–Naor–Rudich ancestry encoding
//     the labeling application builds on) answers ancestry exactly like
//     the pointer walk IsAncestor.
//
// Two bytes encode one operation: an opcode and a node selector.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte("0000000000000000"))         // grow-only burst
	f.Add([]byte("0a1b2c3d4e5f6071"))         // mixed add/remove/split
	f.Add([]byte("09192939495969798999a9b9")) // remove-heavy after growth
	f.Add([]byte{0, 0, 0, 1, 2, 0, 1, 0, 3, 1, 2, 2, 0, 3, 1, 1, 2, 5, 3, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, root := New()
		sorted := func(ids []NodeID) []NodeID {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		for i := 0; i+1 < len(data) && tr.Size() < 128; i += 2 {
			op, sel := data[i]%4, int(data[i+1])
			switch op {
			case 0: // add leaf
				nodes := sorted(tr.Nodes())
				parent := nodes[sel%len(nodes)]
				if _, err := tr.ApplyAddLeaf(parent); err != nil {
					t.Fatalf("add leaf under %d: %v", parent, err)
				}
			case 1: // remove a non-root leaf
				var leaves []NodeID
				for _, id := range sorted(tr.Leaves()) {
					if id != root {
						leaves = append(leaves, id)
					}
				}
				if len(leaves) == 0 {
					continue
				}
				id := leaves[sel%len(leaves)]
				if err := tr.ApplyRemoveLeaf(id); err != nil {
					t.Fatalf("remove leaf %d: %v", id, err)
				}
			case 2: // split a parent edge (add internal)
				var cands []NodeID
				for _, id := range sorted(tr.Nodes()) {
					if id != root {
						cands = append(cands, id)
					}
				}
				if len(cands) == 0 {
					continue
				}
				child := cands[sel%len(cands)]
				if _, err := tr.ApplyAddInternal(child); err != nil {
					t.Fatalf("add internal above %d: %v", child, err)
				}
			case 3: // remove a non-root internal node
				var cands []NodeID
				for _, id := range sorted(tr.Nodes()) {
					if id != root && !tr.IsLeaf(id) {
						cands = append(cands, id)
					}
				}
				if len(cands) == 0 {
					continue
				}
				id := cands[sel%len(cands)]
				if err := tr.ApplyRemoveInternal(id); err != nil {
					t.Fatalf("remove internal %d: %v", id, err)
				}
			}
		}

		if err := tr.Validate(); err != nil {
			t.Fatalf("validate after history: %v", err)
		}

		nodes := sorted(tr.Nodes())
		iv := tr.Intervals()
		if len(iv) != len(nodes) {
			t.Fatalf("labeling covers %d nodes, tree has %d", len(iv), len(nodes))
		}

		// Path round-trips along every root path.
		for _, u := range nodes {
			d, err := tr.Depth(u)
			if err != nil {
				t.Fatal(err)
			}
			path, err := tr.PathToRoot(u)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) != d+1 || path[0] != u || path[len(path)-1] != root {
				t.Fatalf("path to root from %d (depth %d) is %v", u, d, path)
			}
			for dist, w := range path {
				a, err := tr.Ancestor(u, dist)
				if err != nil || a != w {
					t.Fatalf("Ancestor(%d, %d) = %d, %v; path says %d", u, dist, a, err, w)
				}
				dd, err := tr.Distance(u, w)
				if err != nil || dd != dist {
					t.Fatalf("Distance(%d, %d) = %d, %v; path says %d", u, w, dd, err, dist)
				}
			}
		}

		// The interval labels must answer ancestry exactly like the
		// pointer walk, for every ordered pair.
		for _, u := range nodes {
			for _, v := range nodes {
				want, err := tr.IsAncestor(u, v)
				if err != nil {
					t.Fatal(err)
				}
				got := iv[u][0] <= iv[v][0] && iv[v][1] <= iv[u][1]
				if got != want {
					t.Fatalf("labeling: interval(%d)=%v contains interval(%d)=%v is %v, IsAncestor says %v",
						u, iv[u], v, iv[v], got, want)
				}
			}
		}
	})
}
