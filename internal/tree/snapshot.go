package tree

import (
	"fmt"
	"sort"
)

// This file is the tree's state-capture boundary for the durability engine
// (internal/persist): Snapshot copies the complete structural state of a
// tree into a plain exported value, and Restore replaces a tree's contents
// with a previously captured snapshot, in place, so that every component
// holding a *Tree (controllers, generators, servers) observes the restored
// state through its existing reference.

// NodeSnapshot is the captured state of one live node. Children are listed
// in insertion order together with the port number the parent uses to reach
// each child; ParentPort is the port at the node leading to its parent
// (meaningless for the root). Depth is derivable and therefore not stored.
type NodeSnapshot struct {
	ID         NodeID
	Parent     NodeID
	ParentPort int
	Children   []NodeID
	ChildPorts []int
}

// Snapshot is the complete captured state of a tree. It is plain data: the
// binary codec in internal/persist serializes it, and Restore rebuilds the
// identical tree from it (node ids, child order, ports, change sequence and
// the deleted-id set all survive the round trip).
type Snapshot struct {
	Root        NodeID
	NextID      NodeID
	ChangeSeq   uint64
	EverExisted int
	Deleted     []NodeID
	Nodes       []NodeSnapshot
}

// Snapshot captures the tree's complete structural state. Nodes and deleted
// ids are emitted in ascending id order, so identical trees produce
// identical snapshots (the property the persist codecs and the snapshot
// tests rely on).
func (t *Tree) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &Snapshot{
		Root:        t.root,
		NextID:      t.nextID,
		ChangeSeq:   t.changeSeq,
		EverExisted: t.everExisted,
		Deleted:     make([]NodeID, 0, len(t.deleted)),
		Nodes:       make([]NodeSnapshot, 0, len(t.nodes)),
	}
	for id := range t.deleted {
		s.Deleted = append(s.Deleted, id)
	}
	sort.Slice(s.Deleted, func(i, j int) bool { return s.Deleted[i] < s.Deleted[j] })
	ids := make([]NodeID, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := t.nodes[id]
		ns := NodeSnapshot{
			ID:         n.id,
			Parent:     n.parent,
			ParentPort: n.parentPort,
			Children:   append([]NodeID(nil), n.children...),
			ChildPorts: make([]int, len(n.children)),
		}
		for i, cid := range n.children {
			ns.ChildPorts[i] = n.childPorts[cid]
		}
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

// Restore replaces the tree's contents with the captured snapshot, keeping
// the tree value (and thus every reference to it), its port assigner and
// its observers. Observers are not notified — a restore is state recovery,
// not a topological change. The restored tree is validated before the
// receiver is touched; on error the tree is left unchanged.
func (t *Tree) Restore(s *Snapshot) error {
	nodes := make(map[NodeID]*node, len(s.Nodes))
	for _, ns := range s.Nodes {
		if len(ns.ChildPorts) != len(ns.Children) {
			return fmt.Errorf("restore: node %d has %d children but %d child ports",
				ns.ID, len(ns.Children), len(ns.ChildPorts))
		}
		if _, dup := nodes[ns.ID]; dup {
			return fmt.Errorf("restore: node %d listed twice: %w", ns.ID, ErrAlreadyExists)
		}
		n := &node{
			id:         ns.ID,
			parent:     ns.Parent,
			parentPort: ns.ParentPort,
			children:   append([]NodeID(nil), ns.Children...),
			childIndex: make(map[NodeID]int, len(ns.Children)),
			childPorts: make(map[NodeID]int, len(ns.Children)),
		}
		for i, cid := range ns.Children {
			n.childIndex[cid] = i
			n.childPorts[cid] = ns.ChildPorts[i]
		}
		nodes[ns.ID] = n
	}
	root, ok := nodes[s.Root]
	if !ok {
		return fmt.Errorf("restore: root %d: %w", s.Root, ErrNoSuchNode)
	}
	if root.parent != InvalidNode {
		return fmt.Errorf("restore: root %d has parent %d", s.Root, root.parent)
	}
	// Recompute depths and check reachability before committing.
	seen := 0
	stack := []*node{root}
	root.depth = 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen++
		for _, cid := range n.children {
			c, ok := nodes[cid]
			if !ok {
				return fmt.Errorf("restore: child %d of %d: %w", cid, n.id, ErrNoSuchNode)
			}
			if c.parent != n.id {
				return fmt.Errorf("restore: child %d of %d has parent %d", cid, n.id, c.parent)
			}
			c.depth = n.depth + 1
			stack = append(stack, c)
		}
	}
	if seen != len(nodes) {
		return fmt.Errorf("restore: %d nodes reachable from root, %d listed", seen, len(nodes))
	}
	deleted := make(map[NodeID]struct{}, len(s.Deleted))
	for _, id := range s.Deleted {
		deleted[id] = struct{}{}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes = nodes
	t.root = s.Root
	t.nextID = s.NextID
	t.changeSeq = s.ChangeSeq
	t.everExisted = s.EverExisted
	t.deleted = deleted
	return nil
}
