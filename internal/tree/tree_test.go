package tree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAddLeaf(t *testing.T, tr *Tree, parent NodeID) NodeID {
	t.Helper()
	id, err := tr.ApplyAddLeaf(parent)
	if err != nil {
		t.Fatalf("ApplyAddLeaf(%d): %v", parent, err)
	}
	return id
}

func TestNewTree(t *testing.T) {
	tr, root := New()
	if got := tr.Size(); got != 1 {
		t.Fatalf("Size() = %d, want 1", got)
	}
	if got := tr.Root(); got != root {
		t.Fatalf("Root() = %d, want %d", got, root)
	}
	if !tr.IsLeaf(root) {
		t.Fatal("fresh root should be a leaf")
	}
	d, err := tr.Depth(root)
	if err != nil || d != 0 {
		t.Fatalf("Depth(root) = %d, %v; want 0, nil", d, err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddLeaf(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)

	if got := tr.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	p, err := tr.Parent(b)
	if err != nil || p != a {
		t.Fatalf("Parent(b) = %d, %v; want %d", p, err, a)
	}
	d, err := tr.Depth(b)
	if err != nil || d != 2 {
		t.Fatalf("Depth(b) = %d, %v; want 2", d, err)
	}
	if _, err := tr.ApplyAddLeaf(NodeID(999)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("AddLeaf under missing node: err = %v, want ErrNoSuchNode", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRemoveLeaf(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)

	if err := tr.ApplyRemoveLeaf(a); !errors.Is(err, ErrNotLeaf) {
		t.Fatalf("removing internal node as leaf: err = %v, want ErrNotLeaf", err)
	}
	if err := tr.ApplyRemoveLeaf(root); err == nil {
		t.Fatal("removing root should fail")
	}
	if err := tr.ApplyRemoveLeaf(b); err != nil {
		t.Fatalf("ApplyRemoveLeaf(b): %v", err)
	}
	if tr.Contains(b) {
		t.Fatal("b should be gone")
	}
	if !tr.WasDeleted(b) {
		t.Fatal("b should be recorded as deleted")
	}
	if !tr.IsLeaf(a) {
		t.Fatal("a should be a leaf again")
	}
	if err := tr.ApplyRemoveLeaf(b); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("double remove: err = %v, want ErrNoSuchNode", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddInternal(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)

	u, err := tr.ApplyAddInternal(b)
	if err != nil {
		t.Fatalf("ApplyAddInternal(b): %v", err)
	}
	// Now root -> a -> u -> b.
	p, _ := tr.Parent(b)
	if p != u {
		t.Fatalf("Parent(b) = %d, want %d", p, u)
	}
	p, _ = tr.Parent(u)
	if p != a {
		t.Fatalf("Parent(u) = %d, want %d", p, a)
	}
	d, _ := tr.Depth(b)
	if d != 3 {
		t.Fatalf("Depth(b) = %d, want 3", d)
	}
	if _, err := tr.ApplyAddInternal(root); err == nil {
		t.Fatal("splitting above root should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRemoveInternal(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)
	c := mustAddLeaf(t, tr, a)

	if err := tr.ApplyRemoveInternal(b); !errors.Is(err, ErrNotInternal) {
		t.Fatalf("removing leaf as internal: err = %v, want ErrNotInternal", err)
	}
	if err := tr.ApplyRemoveInternal(a); err != nil {
		t.Fatalf("ApplyRemoveInternal(a): %v", err)
	}
	// b and c become children of root.
	for _, id := range []NodeID{b, c} {
		p, err := tr.Parent(id)
		if err != nil || p != root {
			t.Fatalf("Parent(%d) = %d, %v; want root %d", id, p, err, root)
		}
		d, _ := tr.Depth(id)
		if d != 1 {
			t.Fatalf("Depth(%d) = %d, want 1", id, d)
		}
	}
	if err := tr.ApplyRemoveInternal(root); err == nil {
		t.Fatal("removing root should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRemoveInternalDeepSubtreeDepths(t *testing.T) {
	// root -> a -> b -> c -> d; removing a must shift b, c, d up by one.
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)
	c := mustAddLeaf(t, tr, b)
	d := mustAddLeaf(t, tr, c)

	if err := tr.ApplyRemoveInternal(a); err != nil {
		t.Fatalf("ApplyRemoveInternal: %v", err)
	}
	wants := map[NodeID]int{b: 1, c: 2, d: 3}
	for id, want := range wants {
		got, err := tr.Depth(id)
		if err != nil || got != want {
			t.Fatalf("Depth(%d) = %d, %v; want %d", id, got, err, want)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDistanceAndAncestor(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)
	c := mustAddLeaf(t, tr, b)
	sib := mustAddLeaf(t, tr, a)

	tests := []struct {
		name    string
		u, w    NodeID
		want    int
		wantErr bool
	}{
		{"self", c, c, 0, false},
		{"one hop", c, b, 1, false},
		{"to root", c, root, 3, false},
		{"not ancestor", c, sib, 0, true},
		{"inverted", root, c, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tr.Distance(tc.u, tc.w)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Distance(%d,%d) = %d, want error", tc.u, tc.w, got)
				}
				return
			}
			if err != nil || got != tc.want {
				t.Fatalf("Distance(%d,%d) = %d, %v; want %d", tc.u, tc.w, got, err, tc.want)
			}
		})
	}

	anc, err := tr.Ancestor(c, 2)
	if err != nil || anc != a {
		t.Fatalf("Ancestor(c,2) = %d, %v; want %d", anc, err, a)
	}
	if _, err := tr.Ancestor(c, 99); err == nil {
		t.Fatal("Ancestor beyond root should fail")
	}
	ok, err := tr.IsAncestor(a, c)
	if err != nil || !ok {
		t.Fatalf("IsAncestor(a,c) = %v, %v; want true", ok, err)
	}
	ok, _ = tr.IsAncestor(sib, c)
	if ok {
		t.Fatal("IsAncestor(sib,c) should be false")
	}
	ok, _ = tr.IsAncestor(c, c)
	if !ok {
		t.Fatal("a node is its own ancestor")
	}
}

func TestPathHelpers(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)

	path, err := tr.PathToRoot(b)
	if err != nil {
		t.Fatalf("PathToRoot: %v", err)
	}
	want := []NodeID{b, a, root}
	if len(path) != len(want) {
		t.Fatalf("PathToRoot = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathToRoot[%d] = %d, want %d", i, path[i], want[i])
		}
	}
	seg, err := tr.PathBetween(b, a)
	if err != nil || len(seg) != 2 || seg[0] != b || seg[1] != a {
		t.Fatalf("PathBetween(b,a) = %v, %v; want [b a]", seg, err)
	}
}

func TestNCAAndTreeDistance(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, a)
	c := mustAddLeaf(t, tr, a)
	d := mustAddLeaf(t, tr, c)

	nca, err := tr.NCA(b, d)
	if err != nil || nca != a {
		t.Fatalf("NCA(b,d) = %d, %v; want %d", nca, err, a)
	}
	dist, err := tr.TreeDistance(b, d)
	if err != nil || dist != 3 {
		t.Fatalf("TreeDistance(b,d) = %d, %v; want 3", dist, err)
	}
	nca, _ = tr.NCA(b, b)
	if nca != b {
		t.Fatalf("NCA(b,b) = %d, want %d", nca, b)
	}
}

func TestDFSNumbersAndIntervals(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	b := mustAddLeaf(t, tr, root)
	c := mustAddLeaf(t, tr, a)

	nums := tr.DFSNumbers()
	if len(nums) != 4 {
		t.Fatalf("DFSNumbers has %d entries, want 4", len(nums))
	}
	if nums[root] != 1 {
		t.Fatalf("root DFS number = %d, want 1", nums[root])
	}
	// a inserted before b, so a's subtree is visited first.
	if nums[a] != 2 || nums[c] != 3 || nums[b] != 4 {
		t.Fatalf("DFS numbers = a:%d c:%d b:%d, want 2,3,4", nums[a], nums[c], nums[b])
	}

	iv := tr.Intervals()
	contains := func(outer, inner [2]int) bool {
		return outer[0] <= inner[0] && inner[1] <= outer[1]
	}
	if !contains(iv[root], iv[b]) || !contains(iv[a], iv[c]) {
		t.Fatalf("intervals do not nest: %v", iv)
	}
	if contains(iv[a], iv[b]) || contains(iv[b], iv[a]) {
		t.Fatal("sibling intervals must be disjoint")
	}
}

func TestSubtreeSizeAndHeight(t *testing.T) {
	tr, root := New()
	a := mustAddLeaf(t, tr, root)
	mustAddLeaf(t, tr, a)
	mustAddLeaf(t, tr, a)

	n, err := tr.SubtreeSize(a)
	if err != nil || n != 3 {
		t.Fatalf("SubtreeSize(a) = %d, %v; want 3", n, err)
	}
	n, _ = tr.SubtreeSize(root)
	if n != 4 {
		t.Fatalf("SubtreeSize(root) = %d, want 4", n)
	}
	if h := tr.Height(); h != 2 {
		t.Fatalf("Height() = %d, want 2", h)
	}
}

func TestObservers(t *testing.T) {
	tr, root := New()
	var events []Change
	tr.Observe(func(ch Change) { events = append(events, ch) })

	a := mustAddLeaf(t, tr, root)
	u, err := tr.ApplyAddInternal(a)
	if err != nil {
		t.Fatalf("ApplyAddInternal: %v", err)
	}
	if err := tr.ApplyRemoveInternal(u); err != nil {
		t.Fatalf("ApplyRemoveInternal: %v", err)
	}
	if err := tr.ApplyRemoveLeaf(a); err != nil {
		t.Fatalf("ApplyRemoveLeaf: %v", err)
	}

	wantKinds := []ChangeKind{AddLeaf, AddInternal, RemoveInternal, RemoveLeaf}
	if len(events) != len(wantKinds) {
		t.Fatalf("observed %d events, want %d", len(events), len(wantKinds))
	}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, events[i].Kind, k)
		}
		if events[i].Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d, want %d", i, events[i].Seq, i+1)
		}
	}
	if got := tr.Changes(); got != 4 {
		t.Fatalf("Changes() = %d, want 4", got)
	}
}

func TestPortsDistinct(t *testing.T) {
	for _, assigner := range []PortAssigner{NewSequentialPorts(), NewAdversarialPorts(7)} {
		tr, root := New(WithPortAssigner(assigner))
		for i := 0; i < 50; i++ {
			mustAddLeaf(t, tr, root)
		}
		kids, err := tr.Children(root)
		if err != nil {
			t.Fatalf("Children: %v", err)
		}
		seen := make(map[int]struct{})
		for _, c := range kids {
			p, err := tr.ChildPort(root, c)
			if err != nil {
				t.Fatalf("ChildPort: %v", err)
			}
			if _, dup := seen[p]; dup {
				t.Fatalf("duplicate port %d at root", p)
			}
			seen[p] = struct{}{}
			if _, err := tr.ParentPort(c); err != nil {
				t.Fatalf("ParentPort(%d): %v", c, err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestEverExistedCountsDeleted(t *testing.T) {
	tr, root := New()
	ids := make([]NodeID, 0, 10)
	for i := 0; i < 10; i++ {
		ids = append(ids, mustAddLeaf(t, tr, root))
	}
	for _, id := range ids[:5] {
		if err := tr.ApplyRemoveLeaf(id); err != nil {
			t.Fatalf("remove: %v", err)
		}
	}
	if got := tr.EverExisted(); got != 11 {
		t.Fatalf("EverExisted() = %d, want 11", got)
	}
	if got := tr.Size(); got != 6 {
		t.Fatalf("Size() = %d, want 6", got)
	}
}

func TestChangeKindString(t *testing.T) {
	kinds := map[ChangeKind]string{
		None: "none", AddLeaf: "add-leaf", RemoveLeaf: "remove-leaf",
		AddInternal: "add-internal", RemoveInternal: "remove-internal",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if !AddLeaf.IsAddition() || !RemoveInternal.IsRemoval() || None.IsAddition() || AddLeaf.IsRemoval() {
		t.Fatal("kind predicates inconsistent")
	}
}

// randomScenario applies n random topological changes to a fresh tree and
// returns the tree.
func randomScenario(seed int64, n int) *Tree {
	rng := rand.New(rand.NewSource(seed))
	tr, root := New(WithPortAssigner(NewAdversarialPorts(seed)))
	live := []NodeID{root}
	for i := 0; i < n; i++ {
		switch op := rng.Intn(4); op {
		case 0: // add leaf
			parent := live[rng.Intn(len(live))]
			id, err := tr.ApplyAddLeaf(parent)
			if err == nil {
				live = append(live, id)
			}
		case 1: // remove leaf
			id := live[rng.Intn(len(live))]
			if id != root && tr.IsLeaf(id) {
				if err := tr.ApplyRemoveLeaf(id); err == nil {
					live = removeID(live, id)
				}
			}
		case 2: // add internal
			id := live[rng.Intn(len(live))]
			if id != root {
				nid, err := tr.ApplyAddInternal(id)
				if err == nil {
					live = append(live, nid)
				}
			}
		case 3: // remove internal
			id := live[rng.Intn(len(live))]
			if id != root && !tr.IsLeaf(id) {
				if err := tr.ApplyRemoveInternal(id); err == nil {
					live = removeID(live, id)
				}
			}
		}
	}
	return tr
}

func removeID(s []NodeID, id NodeID) []NodeID {
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

func TestRandomScenarioInvariants(t *testing.T) {
	// Property: any sequence of legal topological changes preserves
	// structural validity, and depth equals recomputed distance-to-root.
	prop := func(seed int64) bool {
		tr := randomScenario(seed, 300)
		if err := tr.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		root := tr.Root()
		for _, id := range tr.Nodes() {
			d, err := tr.Depth(id)
			if err != nil {
				return false
			}
			d2, err := tr.Distance(id, root)
			if err != nil || d != d2 {
				t.Logf("seed %d: depth mismatch at %d: %d vs %d", seed, id, d, d2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomScenarioIntervalAncestry(t *testing.T) {
	// Property: DFS intervals characterize ancestry exactly.
	prop := func(seed int64) bool {
		tr := randomScenario(seed, 120)
		iv := tr.Intervals()
		nodes := tr.Nodes()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 50; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			anc, err := tr.IsAncestor(u, v)
			if err != nil {
				return false
			}
			byInterval := iv[u][0] <= iv[v][0] && iv[v][1] <= iv[u][1]
			if anc != byInterval {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLeavesConsistent(t *testing.T) {
	tr := randomScenario(42, 200)
	leafSet := make(map[NodeID]struct{})
	for _, id := range tr.Leaves() {
		leafSet[id] = struct{}{}
	}
	for _, id := range tr.Nodes() {
		kids, err := tr.Children(id)
		if err != nil {
			t.Fatalf("Children: %v", err)
		}
		_, isLeaf := leafSet[id]
		if (len(kids) == 0) != isLeaf {
			t.Fatalf("node %d leaf status inconsistent", id)
		}
	}
}
