// Package tree implements the dynamic rooted spanning tree substrate used
// by the controller and its applications.
//
// The tree supports the four topological changes of the paper (Section 2.1):
//
//   - AddLeaf: a new degree-one vertex is added as a child of an existing
//     vertex.
//   - RemoveLeaf: a non-root vertex of degree one is deleted.
//   - AddInternal: an edge (v, w) is split into (v, u) and (u, w) for a new
//     node u.
//   - RemoveInternal: a non-root node u is deleted; u's children become
//     children of u's parent.
//
// Port numbers at every vertex are distinct and, to model the paper's
// adversarial port assumption, are produced by a pluggable PortAssigner.
//
// A Tree is safe for concurrent use.
package tree

import (
	"errors"
	"fmt"
	"sync"
)

// NodeID identifies a node of the dynamic tree. IDs are never reused, so a
// NodeID also identifies a deleted node unambiguously.
type NodeID int64

// InvalidNode is the zero NodeID; it never names a real node.
const InvalidNode NodeID = 0

// Errors returned by topological operations.
var (
	ErrNoSuchNode    = errors.New("tree: no such node")
	ErrNotLeaf       = errors.New("tree: node is not a leaf")
	ErrNotInternal   = errors.New("tree: node is not internal")
	ErrIsRoot        = errors.New("tree: operation not allowed on the root")
	ErrNotRelated    = errors.New("tree: nodes are not in a parent-child relation")
	ErrDeleted       = errors.New("tree: node was deleted")
	ErrAlreadyExists = errors.New("tree: node already exists")
)

// ChangeKind enumerates the topological change types of Section 2.1.
type ChangeKind int

// The four topological change kinds, plus None for non-topological events.
const (
	None ChangeKind = iota
	AddLeaf
	RemoveLeaf
	AddInternal
	RemoveInternal
)

// String returns the paper's name for the change kind.
func (k ChangeKind) String() string {
	switch k {
	case None:
		return "none"
	case AddLeaf:
		return "add-leaf"
	case RemoveLeaf:
		return "remove-leaf"
	case AddInternal:
		return "add-internal"
	case RemoveInternal:
		return "remove-internal"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// IsRemoval reports whether the change deletes a node.
func (k ChangeKind) IsRemoval() bool { return k == RemoveLeaf || k == RemoveInternal }

// IsAddition reports whether the change inserts a node.
func (k ChangeKind) IsAddition() bool { return k == AddLeaf || k == AddInternal }

// Change records one applied topological change.
type Change struct {
	Kind ChangeKind
	// Node is the node added or removed.
	Node NodeID
	// Parent is the parent of Node at the time of the change.
	Parent NodeID
	// Seq is the 1-based sequence number of the change within its tree.
	Seq uint64
}

type node struct {
	id         NodeID
	parent     NodeID // InvalidNode for the root
	children   []NodeID
	childIndex map[NodeID]int // position of each child in children
	parentPort int
	childPorts map[NodeID]int
	depth      int // cached; maintained incrementally
}

// Tree is a dynamic rooted tree. The root is created by New and is never
// deleted (the paper assumes the root survives the whole scenario).
type Tree struct {
	mu        sync.RWMutex
	nodes     map[NodeID]*node
	root      NodeID
	nextID    NodeID
	ports     PortAssigner
	changeSeq uint64
	// everExisted counts all nodes ever created, including deleted ones.
	// This is the quantity the paper calls U (when bounded).
	everExisted int
	deleted     map[NodeID]struct{}
	observers   []func(Change)
}

// Option configures a Tree.
type Option func(*Tree)

// WithPortAssigner installs a custom port assigner. The default is an
// AdversarialPorts assigner seeded with 1.
func WithPortAssigner(p PortAssigner) Option {
	return func(t *Tree) { t.ports = p }
}

// New creates a tree containing only a root node and returns the tree and
// the root's id.
func New(opts ...Option) (*Tree, NodeID) {
	t := &Tree{
		nodes:   make(map[NodeID]*node),
		nextID:  1,
		ports:   NewAdversarialPorts(1),
		deleted: make(map[NodeID]struct{}),
	}
	for _, opt := range opts {
		opt(t)
	}
	root := t.allocNode(InvalidNode, 0)
	t.root = root.id
	return t, root.id
}

// Observe registers fn to be called, with the tree lock held, after every
// applied topological change. Observers must not call back into the tree.
func (t *Tree) Observe(fn func(Change)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, fn)
}

func (t *Tree) allocNode(parent NodeID, depth int) *node {
	n := &node{
		id:         t.nextID,
		parent:     parent,
		childIndex: make(map[NodeID]int),
		childPorts: make(map[NodeID]int),
		depth:      depth,
	}
	t.nextID++
	t.everExisted++
	t.nodes[n.id] = n
	return n
}

func (t *Tree) notify(kind ChangeKind, id, parent NodeID) Change {
	t.changeSeq++
	ch := Change{Kind: kind, Node: id, Parent: parent, Seq: t.changeSeq}
	for _, fn := range t.observers {
		fn(ch)
	}
	return ch
}

// Root returns the root node id.
func (t *Tree) Root() NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// Size returns the current number of nodes.
func (t *Tree) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// EverExisted returns the number of nodes ever created, including deleted
// ones. This is the paper's quantity U for the scenario so far.
func (t *Tree) EverExisted() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.everExisted
}

// Changes returns the number of topological changes applied so far.
func (t *Tree) Changes() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.changeSeq
}

// Contains reports whether id names a live node.
func (t *Tree) Contains(id NodeID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.nodes[id]
	return ok
}

// WasDeleted reports whether id names a node that existed and was deleted.
func (t *Tree) WasDeleted(id NodeID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.deleted[id]
	return ok
}

// Parent returns the parent of id. The root's parent is InvalidNode.
func (t *Tree) Parent(id NodeID) (NodeID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		return InvalidNode, fmt.Errorf("parent of %d: %w", id, ErrNoSuchNode)
	}
	return n.parent, nil
}

// Children returns a copy of id's children, in insertion order.
func (t *Tree) Children(id NodeID) ([]NodeID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		return nil, fmt.Errorf("children of %d: %w", id, ErrNoSuchNode)
	}
	out := make([]NodeID, len(n.children))
	copy(out, n.children)
	return out, nil
}

// ChildCount returns the number of children of id (the child-degree deg(v)
// used by the memory bound of Claim 4.8).
func (t *Tree) ChildCount(id NodeID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		return 0, fmt.Errorf("child count of %d: %w", id, ErrNoSuchNode)
	}
	return len(n.children), nil
}

// Depth returns the hop distance from id to the root.
func (t *Tree) Depth(id NodeID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		return 0, fmt.Errorf("depth of %d: %w", id, ErrNoSuchNode)
	}
	return n.depth, nil
}

// IsLeaf reports whether id is a live node with no children.
func (t *Tree) IsLeaf(id NodeID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	return ok && len(n.children) == 0
}

// ParentPort returns the port number at id leading to its parent.
func (t *Tree) ParentPort(id NodeID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		return 0, fmt.Errorf("parent port of %d: %w", id, ErrNoSuchNode)
	}
	if n.parent == InvalidNode {
		return 0, fmt.Errorf("parent port of root %d: %w", id, ErrIsRoot)
	}
	return n.parentPort, nil
}

// ChildPort returns the port number at parent leading to child.
func (t *Tree) ChildPort(parent, child NodeID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.nodes[parent]
	if !ok {
		return 0, fmt.Errorf("child port at %d: %w", parent, ErrNoSuchNode)
	}
	port, ok := p.childPorts[child]
	if !ok {
		return 0, fmt.Errorf("child port %d->%d: %w", parent, child, ErrNotRelated)
	}
	return port, nil
}

// ApplyAddLeaf adds a new leaf as a child of parent and returns its id.
func (t *Tree) ApplyAddLeaf(parent NodeID) (NodeID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.nodes[parent]
	if !ok {
		return InvalidNode, fmt.Errorf("add leaf under %d: %w", parent, ErrNoSuchNode)
	}
	n := t.allocNode(parent, p.depth+1)
	t.link(p, n)
	t.notify(AddLeaf, n.id, parent)
	return n.id, nil
}

// ApplyRemoveLeaf removes the non-root leaf id.
func (t *Tree) ApplyRemoveLeaf(id NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		return fmt.Errorf("remove leaf %d: %w", id, ErrNoSuchNode)
	}
	if id == t.root {
		return fmt.Errorf("remove leaf %d: %w", id, ErrIsRoot)
	}
	if len(n.children) != 0 {
		return fmt.Errorf("remove leaf %d: %w", id, ErrNotLeaf)
	}
	parent := n.parent
	t.unlink(t.nodes[parent], n)
	delete(t.nodes, id)
	t.deleted[id] = struct{}{}
	t.notify(RemoveLeaf, id, parent)
	return nil
}

// ApplyAddInternal splits the tree edge between child and its parent,
// inserting a new node u so that parent(child) = u and parent(u) is child's
// former parent. It returns the new node's id.
func (t *Tree) ApplyAddInternal(child NodeID) (NodeID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.nodes[child]
	if !ok {
		return InvalidNode, fmt.Errorf("add internal above %d: %w", child, ErrNoSuchNode)
	}
	if child == t.root {
		return InvalidNode, fmt.Errorf("add internal above root %d: %w", child, ErrIsRoot)
	}
	p := t.nodes[c.parent]
	u := t.allocNode(p.id, p.depth+1)
	// Replace c with u in p's child list, then make c a child of u.
	t.unlink(p, c)
	t.link(p, u)
	t.link(u, c)
	t.recomputeDepths(c)
	t.notify(AddInternal, u.id, p.id)
	return u.id, nil
}

// ApplyRemoveInternal removes the non-root internal node id; its children
// become children of id's parent.
func (t *Tree) ApplyRemoveInternal(id NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		return fmt.Errorf("remove internal %d: %w", id, ErrNoSuchNode)
	}
	if id == t.root {
		return fmt.Errorf("remove internal %d: %w", id, ErrIsRoot)
	}
	if len(n.children) == 0 {
		return fmt.Errorf("remove internal %d: %w", id, ErrNotInternal)
	}
	p := t.nodes[n.parent]
	children := make([]NodeID, len(n.children))
	copy(children, n.children)
	for _, cid := range children {
		c := t.nodes[cid]
		t.unlink(n, c)
		t.link(p, c)
		t.recomputeDepths(c)
	}
	t.unlink(p, n)
	delete(t.nodes, id)
	t.deleted[id] = struct{}{}
	t.notify(RemoveInternal, id, p.id)
	return nil
}

// link makes c a child of p and assigns fresh ports on both endpoints.
func (t *Tree) link(p, c *node) {
	c.parent = p.id
	c.depth = p.depth + 1
	c.parentPort = t.ports.Assign(c.id, usedPorts(c))
	p.childIndex[c.id] = len(p.children)
	p.children = append(p.children, c.id)
	p.childPorts[c.id] = t.ports.Assign(p.id, usedPorts(p))
}

// unlink removes c from p's child list.
func (t *Tree) unlink(p, c *node) {
	idx := p.childIndex[c.id]
	last := len(p.children) - 1
	if idx != last {
		moved := p.children[last]
		p.children[idx] = moved
		p.childIndex[moved] = idx
	}
	p.children = p.children[:last]
	delete(p.childIndex, c.id)
	delete(p.childPorts, c.id)
	c.parent = InvalidNode
}

func usedPorts(n *node) map[int]struct{} {
	used := make(map[int]struct{}, len(n.childPorts)+1)
	if n.parent != InvalidNode {
		used[n.parentPort] = struct{}{}
	}
	for _, p := range n.childPorts {
		used[p] = struct{}{}
	}
	return used
}

// recomputeDepths refreshes cached depths in the subtree rooted at c.
func (t *Tree) recomputeDepths(c *node) {
	stack := []*node{c}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n.depth = t.nodes[n.parent].depth + 1
		for _, cid := range n.children {
			stack = append(stack, t.nodes[cid])
		}
	}
}

// Distance returns the hop distance between u and an ancestor w of u.
// It returns an error if w is not an ancestor of u.
func (t *Tree) Distance(u, w NodeID) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	un, ok := t.nodes[u]
	if !ok {
		return 0, fmt.Errorf("distance from %d: %w", u, ErrNoSuchNode)
	}
	wn, ok := t.nodes[w]
	if !ok {
		return 0, fmt.Errorf("distance to %d: %w", w, ErrNoSuchNode)
	}
	d := un.depth - wn.depth
	if d < 0 {
		return 0, fmt.Errorf("distance %d->%d: %w", u, w, ErrNotRelated)
	}
	cur := un
	for i := 0; i < d; i++ {
		cur = t.nodes[cur.parent]
	}
	if cur.id != w {
		return 0, fmt.Errorf("distance %d->%d: %w", u, w, ErrNotRelated)
	}
	return d, nil
}

// IsAncestor reports whether a is an ancestor of d (every node is its own
// ancestor, as in the paper).
func (t *Tree) IsAncestor(a, d NodeID) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	an, ok := t.nodes[a]
	if !ok {
		return false, fmt.Errorf("ancestor test %d: %w", a, ErrNoSuchNode)
	}
	dn, ok := t.nodes[d]
	if !ok {
		return false, fmt.Errorf("ancestor test %d: %w", d, ErrNoSuchNode)
	}
	for dn.depth > an.depth {
		dn = t.nodes[dn.parent]
	}
	return dn.id == an.id, nil
}

// Ancestor returns the ancestor of u at hop distance dist (Ancestor(u, 0)
// is u itself). It returns an error if dist exceeds u's depth.
func (t *Tree) Ancestor(u NodeID, dist int) (NodeID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[u]
	if !ok {
		return InvalidNode, fmt.Errorf("ancestor of %d: %w", u, ErrNoSuchNode)
	}
	if dist < 0 || dist > n.depth {
		return InvalidNode, fmt.Errorf("ancestor of %d at distance %d (depth %d): %w",
			u, dist, n.depth, ErrNotRelated)
	}
	for i := 0; i < dist; i++ {
		n = t.nodes[n.parent]
	}
	return n.id, nil
}

// PathToRoot returns the node ids from u (inclusive) up to the root
// (inclusive).
func (t *Tree) PathToRoot(u NodeID) ([]NodeID, error) {
	return t.AppendPathToRoot(u, nil)
}

// AppendPathToRoot appends the node ids from u (inclusive) up to the root
// (inclusive) to buf and returns the extended slice. Passing a buffer with
// spare capacity lets hot paths (the controller's filler search) walk the
// tree without allocating.
func (t *Tree) AppendPathToRoot(u NodeID, buf []NodeID) ([]NodeID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[u]
	if !ok {
		return nil, fmt.Errorf("path to root from %d: %w", u, ErrNoSuchNode)
	}
	if need := len(buf) + n.depth + 1; cap(buf) < need {
		grown := make([]NodeID, len(buf), need)
		copy(grown, buf)
		buf = grown
	}
	for {
		buf = append(buf, n.id)
		if n.parent == InvalidNode {
			return buf, nil
		}
		n = t.nodes[n.parent]
	}
}

// PathBetween returns the node ids from u (inclusive) up to its ancestor w
// (inclusive).
func (t *Tree) PathBetween(u, w NodeID) ([]NodeID, error) {
	return t.AppendPathBetween(u, w, nil)
}

// AppendPathBetween appends the node ids from u (inclusive) up to its
// ancestor w (inclusive) to buf and returns the extended slice, reusing
// buf's capacity when it suffices.
func (t *Tree) AppendPathBetween(u, w NodeID, buf []NodeID) ([]NodeID, error) {
	d, err := t.Distance(u, w)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if need := len(buf) + d + 1; cap(buf) < need {
		grown := make([]NodeID, len(buf), need)
		copy(grown, buf)
		buf = grown
	}
	n := t.nodes[u]
	for i := 0; i <= d; i++ {
		buf = append(buf, n.id)
		if n.parent == InvalidNode {
			break
		}
		n = t.nodes[n.parent]
	}
	return buf, nil
}

// Nodes returns the ids of all live nodes in unspecified order.
func (t *Tree) Nodes() []NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]NodeID, 0, len(t.nodes))
	for id := range t.nodes {
		out = append(out, id)
	}
	return out
}

// Leaves returns the ids of all current leaves.
func (t *Tree) Leaves() []NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []NodeID
	for id, n := range t.nodes {
		if len(n.children) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks structural consistency of the tree: parent/child symmetry,
// depth caching, port uniqueness, acyclicity and full reachability from the
// root. It is intended for tests and returns the first inconsistency found.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[NodeID]struct{}, len(t.nodes))
	type frame struct {
		id    NodeID
		depth int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, dup := seen[f.id]; dup {
			return fmt.Errorf("validate: node %d reachable twice", f.id)
		}
		seen[f.id] = struct{}{}
		n, ok := t.nodes[f.id]
		if !ok {
			return fmt.Errorf("validate: reachable node %d missing: %w", f.id, ErrNoSuchNode)
		}
		if n.depth != f.depth {
			return fmt.Errorf("validate: node %d cached depth %d, actual %d", f.id, n.depth, f.depth)
		}
		ports := make(map[int]struct{}, len(n.children)+1)
		if n.parent != InvalidNode {
			ports[n.parentPort] = struct{}{}
		}
		for i, cid := range n.children {
			c, ok := t.nodes[cid]
			if !ok {
				return fmt.Errorf("validate: child %d of %d missing: %w", cid, f.id, ErrNoSuchNode)
			}
			if c.parent != f.id {
				return fmt.Errorf("validate: child %d of %d has parent %d", cid, f.id, c.parent)
			}
			if n.childIndex[cid] != i {
				return fmt.Errorf("validate: child index of %d under %d is stale", cid, f.id)
			}
			port, ok := n.childPorts[cid]
			if !ok {
				return fmt.Errorf("validate: no port for child %d of %d", cid, f.id)
			}
			if _, dup := ports[port]; dup {
				return fmt.Errorf("validate: duplicate port %d at node %d", port, f.id)
			}
			ports[port] = struct{}{}
			stack = append(stack, frame{cid, f.depth + 1})
		}
	}
	if len(seen) != len(t.nodes) {
		return fmt.Errorf("validate: %d nodes reachable, %d stored", len(seen), len(t.nodes))
	}
	return nil
}
