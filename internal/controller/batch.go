package controller

import (
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// BatchResult is the per-request answer of a batched submission: exactly the
// (Grant, error) pair the matching serial Submit call would have produced.
type BatchResult struct {
	Grant Grant
	Err   error
}

// BatchSubmitter is implemented by every controller that can answer a whole
// batch of requests in one call with serial-equivalent semantics. The
// pipeline (package pipeline) drives its batches through this interface.
type BatchSubmitter interface {
	// SubmitBatch answers the requests in order, appending one BatchResult
	// per request to out (allocating when out lacks capacity) and returning
	// the extended slice. The outcome sequence is identical to calling
	// Submit serially on the same trace.
	SubmitBatch(reqs []Request, out []BatchResult) []BatchResult
}

// RunBatch is the shared batched-submission loop behind every
// BatchSubmitter: each request first tries the local fast path and falls
// back to the full slow path otherwise. Fast grants skip the shared
// counters; flush is called with the accumulated fast-grant count before
// every slow submission (which may observe the counters) and once at the
// end, so counter values at every observation point match the serial run.
func RunBatch(reqs []Request, out []BatchResult,
	fast func(Request) (Grant, bool),
	slow func(Request) (Grant, error),
	flush func(grants int64)) []BatchResult {
	var fastGrants int64
	doFlush := func() {
		if fastGrants > 0 {
			flush(fastGrants)
			fastGrants = 0
		}
	}
	for _, req := range reqs {
		if g, ok := fast(req); ok {
			fastGrants++
			out = append(out, BatchResult{Grant: g})
			continue
		}
		doFlush()
		g, err := slow(req)
		out = append(out, BatchResult{Grant: g, Err: err})
	}
	doFlush()
	return out
}

// fastGrant answers a request entirely from the local state of its node
// when the full protocol would not move any package: the request is a
// non-topological event, no reject package sits at the node, and a static
// package with a permit is present (items 1–2 of Protocol GrantOrReject).
// It reports false, leaving all state untouched, in every other case; the
// caller then runs the regular Submit path. The shared grant counter is
// deliberately skipped so the batch loop can flush one Add per run of fast
// grants.
func (c *Core) fastGrant(req Request) (Grant, bool) {
	if req.Kind != tree.None {
		return Grant{}, false
	}
	// Store presence implies liveness: stores are created only for nodes in
	// the tree and removed in removeNode, so this replaces the Contains
	// check of the slow path.
	s, ok := c.stores[req.Node]
	if !ok || s.HasReject() {
		return Grant{}, false
	}
	serial, ok := s.TakeStaticPermit()
	if !ok {
		return Grant{}, false
	}
	c.granted++
	return Grant{Outcome: Granted, Serial: serial}, true
}

// SubmitBatch implements BatchSubmitter over the centralized core: requests
// are answered in order with semantics identical to serial Submit calls.
// The local fast path amortizes the per-request overhead — including the
// shared counter updates, which are flushed once per run of fast grants —
// whenever a static package already waits at the requesting node.
func (c *Core) SubmitBatch(reqs []Request, out []BatchResult) []BatchResult {
	return RunBatch(reqs, out, c.fastGrant, c.Submit,
		func(grants int64) { c.counters.Add(stats.CounterGrants, grants) })
}

var _ BatchSubmitter = (*Core)(nil)
