package controller

import (
	"errors"
	"fmt"

	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// ErrIterationCap is returned if the waste-halving loop fails to make
// progress, which indicates the fixed-U assumption was violated by the
// workload.
var ErrIterationCap = errors.New("controller: iteration cap exceeded (U bound violated?)")

// Iterated is the waste-halving (M,W)-Controller of Observation 3.4: it
// runs (M_i, M_i/2)-controllers in iterations, setting M_{i+1} to the
// number L of unused permits when iteration i exhausts, until L is within a
// constant factor of W; the final iteration runs an (L, W)-controller. The
// special case W = 0 appends the trivial controller that walks remaining
// permits directly from the root.
//
// Move complexity: O(U·log²U·log(M/(W+1))).
type Iterated struct {
	tr          *tree.Tree
	u           int64
	w           int64
	counters    *stats.Counters
	terminating bool

	cur        *Core
	curM       int64
	iterations int
	finalPhase bool

	// Trivial phase state (W = 0 tail).
	trivialPhase bool
	trivialLeft  int64

	terminated bool
	rejectAll  bool
	granted    int64
}

// IteratedOption configures an Iterated controller.
type IteratedOption func(*Iterated)

// WithIteratedCounters shares the cost counters.
func WithIteratedCounters(c *stats.Counters) IteratedOption {
	return func(it *Iterated) { it.counters = c }
}

// AsTerminating turns the driver into a terminating controller: instead of
// ever rejecting it returns ErrTerminated (Observation 2.1 applied to the
// whole stack).
func AsTerminating() IteratedOption {
	return func(it *Iterated) { it.terminating = true }
}

// NewIterated builds the waste-halving (m, w)-Controller over tr with the
// fixed node bound u.
func NewIterated(tr *tree.Tree, u, m, w int64, opts ...IteratedOption) *Iterated {
	it := &Iterated{tr: tr, u: u, w: w, curM: m}
	for _, opt := range opts {
		opt(it)
	}
	if it.counters == nil {
		it.counters = stats.NewCounters()
	}
	it.startIteration(m)
	return it
}

func (it *Iterated) startIteration(m int64) {
	it.iterations++
	it.counters.Inc(stats.CounterIterations)
	it.curM = m
	if it.w > 0 && m <= 2*it.w {
		// Final iteration: an (m, W)-controller; rejects allowed unless
		// the driver is terminating.
		it.finalPhase = true
		it.cur = NewCore(it.tr, it.u, m, it.w,
			WithCounters(it.counters), WithNoRejects())
		return
	}
	it.cur = NewCore(it.tr, it.u, m, maxInt64(m/2, 1),
		WithCounters(it.counters), WithNoRejects())
}

// Granted returns the total permits granted across all iterations.
func (it *Iterated) Granted() int64 { return it.granted }

// Iterations returns the number of iterations started so far.
func (it *Iterated) Iterations() int { return it.iterations }

// Terminated reports whether a terminating driver has terminated.
func (it *Iterated) Terminated() bool { return it.terminated }

// Counters returns the shared cost counters.
func (it *Iterated) Counters() *stats.Counters { return it.counters }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Submit answers one request. A terminating driver returns ErrTerminated
// once the permit budget is exhausted; otherwise exhaustion triggers a
// reject wave and rejects.
func (it *Iterated) Submit(req Request) (Grant, error) {
	if it.terminated {
		return Grant{}, ErrTerminated
	}
	if it.rejectAll {
		it.counters.Inc(stats.CounterRejects)
		return Grant{Outcome: Rejected}, nil
	}
	for attempt := 0; attempt < 128; attempt++ {
		if it.trivialPhase {
			return it.submitTrivial(req)
		}
		g, err := it.cur.Submit(req)
		if err != nil {
			return Grant{}, err
		}
		if g.Outcome == Granted {
			it.granted++
			return g, nil
		}
		if g.Outcome == Rejected {
			// Only the final phase rejects (reject package present).
			return g, nil
		}
		// WouldReject: the current iteration is exhausted.
		if it.finalPhase {
			return it.exhausted()
		}
		l := it.cur.UnusedPermits()
		it.cur.ClearPackages()
		if it.w == 0 {
			if l == 0 {
				return it.exhausted()
			}
			it.trivialPhase = true
			it.trivialLeft = l
			continue
		}
		it.startIteration(l)
	}
	return Grant{}, ErrIterationCap
}

// submitTrivial implements the trivial tail controller used when W = 0:
// each remaining permit is walked directly from the root to the requesting
// node, costing its depth in moves.
func (it *Iterated) submitTrivial(req Request) (Grant, error) {
	if it.trivialLeft <= 0 {
		return it.exhausted()
	}
	d, err := it.tr.Distance(req.Node, it.tr.Root())
	if err != nil {
		return Grant{}, err
	}
	it.counters.Add(stats.CounterMoves, int64(d))
	it.trivialLeft--
	it.granted++
	it.counters.Inc(stats.CounterGrants)
	g := Grant{Outcome: Granted}
	newNode, err := applyChange(it.tr, req)
	if err != nil {
		return Grant{}, err
	}
	g.NewNode = newNode
	if req.Kind != tree.None {
		it.counters.Inc(stats.CounterTopoChanges)
	}
	return g, nil
}

// exhausted handles global permit exhaustion: terminating drivers
// terminate; otherwise a reject wave floods the tree and the request is
// rejected.
func (it *Iterated) exhausted() (Grant, error) {
	if it.terminating {
		it.terminated = true
		// Broadcast + upcast of Observation 2.1.
		if n := int64(it.tr.Size()); n > 1 {
			it.counters.Add(stats.CounterMoves, 2*(n-1))
		}
		return Grant{}, ErrTerminated
	}
	it.rejectAll = true
	if n := int64(it.tr.Size()); n > 1 {
		it.counters.Add(stats.CounterMoves, n-1)
	}
	it.counters.Inc(stats.CounterRejects)
	return Grant{Outcome: Rejected}, nil
}

// applyChange applies a granted topological request to the tree and returns
// the id of a created node, if any. It is used by phases that run without
// package stores (the trivial tail and the baselines).
func applyChange(tr *tree.Tree, req Request) (tree.NodeID, error) {
	switch req.Kind {
	case tree.None:
		return tree.InvalidNode, nil
	case tree.AddLeaf:
		return tr.ApplyAddLeaf(req.Node)
	case tree.AddInternal:
		return tr.ApplyAddInternal(req.Child)
	case tree.RemoveLeaf:
		return tree.InvalidNode, tr.ApplyRemoveLeaf(req.Node)
	case tree.RemoveInternal:
		return tree.InvalidNode, tr.ApplyRemoveInternal(req.Node)
	default:
		return tree.InvalidNode, fmt.Errorf("applyChange: unknown kind %v", req.Kind)
	}
}
