// Package controller implements the paper's centralized (M,W)-Controller
// (Section 3) together with the terminating transformation (Observation
// 2.1), the waste-halving iteration (Observation 3.4), and the unknown-U
// drivers of Theorem 3.5.
//
// The cost measure is move complexity: every move of a set of objects from
// a node to a neighbor costs one unit, so moving a package across d edges
// costs d. The distributed implementation (package dist) translates the
// move complexity into message complexity (Section 4).
package controller

import (
	"errors"
	"fmt"

	"dynctrl/internal/pkgstore"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Outcome is the controller's answer to a request.
type Outcome int

// Request outcomes. WouldReject is produced only in no-reject mode (used by
// the terminating transformation): it signals that the controller is out of
// permits without broadcasting the reject wave.
const (
	Granted Outcome = iota + 1
	Rejected
	WouldReject
)

// String returns a human-readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Granted:
		return "granted"
	case Rejected:
		return "rejected"
	case WouldReject:
		return "would-reject"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Request is one event submitted to the controller. Per Section 2.1, a
// request to delete a node arrives at that node, and a request to add a
// node arrives at the node's parent-to-be.
type Request struct {
	// Node is the node at which the request arrives.
	Node tree.NodeID
	// Kind is the topological change requested; None counts a
	// non-topological event (ticket sale, etc.).
	Kind tree.ChangeKind
	// Child names, for AddInternal, the child whose parent edge is split
	// (the new node is inserted between Node and Child).
	Child tree.NodeID
}

// Grant is the controller's response to a request.
type Grant struct {
	Outcome Outcome
	// Serial is the granted permit's serial number when the controller
	// runs with explicit serials (name assignment), else 0.
	Serial int64
	// NewNode is the id of the node created by a granted addition.
	NewNode tree.NodeID
}

// DescentObserver is notified when a permit package of the given size moves
// down the tree; path lists the nodes the package enters, from the first
// node below the source down to the destination (inclusive). The subtree
// estimator of Section 5.3 uses this hook.
type DescentObserver func(size int64, path []tree.NodeID)

// Core is the fixed-U centralized (M,W)-Controller of Section 3.1.
// It is not safe for concurrent use; the centralized setting is sequential
// by definition.
type Core struct {
	tr       *tree.Tree
	params   pkgstore.Params
	stores   map[tree.NodeID]*pkgstore.Store
	storage  int64             // permits remaining at the root's storage
	serials  pkgstore.Interval // serial numbers backing the storage, if any
	counters *stats.Counters
	domains  *DomainTracker
	descent  DescentObserver
	// pathBuf is the reusable ancestor-walk buffer of the filler search;
	// findFiller overwrites it on every call, so no path escapes a request.
	pathBuf []tree.NodeID

	noRejects    bool
	trackDomains bool
	rejectWave   bool
	granted      int64
	rejected     int64
}

// CoreOption configures a Core.
type CoreOption func(*Core)

// WithCounters directs cost accounting into c (shared counters let drivers
// aggregate across iterations).
func WithCounters(c *stats.Counters) CoreOption {
	return func(co *Core) { co.counters = c }
}

// WithDomainTracking enables the analysis-only domain bookkeeping of
// Section 3.2 so tests can assert the domain invariants.
func WithDomainTracking() CoreOption {
	return func(co *Core) { co.trackDomains = true }
}

// WithSerials attaches explicit permit serial numbers to the root storage;
// the interval length must be at least M.
func WithSerials(iv pkgstore.Interval) CoreOption {
	return func(co *Core) { co.serials = iv }
}

// WithNoRejects makes the core return WouldReject instead of issuing
// rejects (the terminating transformation of Observation 2.1).
func WithNoRejects() CoreOption {
	return func(co *Core) { co.noRejects = true }
}

// WithDescentObserver registers fn to observe downward package moves.
func WithDescentObserver(fn DescentObserver) CoreOption {
	return func(co *Core) { co.descent = fn }
}

// NewCore creates a fixed-U (m, w)-Controller over tr assuming at most u
// nodes ever exist. The root's storage initially holds the m permits.
func NewCore(tr *tree.Tree, u, m, w int64, opts ...CoreOption) *Core {
	c := &Core{
		tr:      tr,
		params:  pkgstore.NewParams(u, m, w),
		stores:  make(map[tree.NodeID]*pkgstore.Store),
		storage: m,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.trackDomains {
		c.domains = NewDomainTracker(tr, c.params)
	}
	if c.counters == nil {
		c.counters = stats.NewCounters()
	}
	for _, id := range tr.Nodes() {
		c.stores[id] = pkgstore.NewStore()
	}
	return c
}

// EnableDomainTracking switches on domain bookkeeping. It must be called
// before the first request is submitted.
func (c *Core) EnableDomainTracking() {
	if c.domains == nil {
		c.domains = NewDomainTracker(c.tr, c.params)
	}
}

// Params exposes the derived φ/ψ parameters.
func (c *Core) Params() pkgstore.Params { return c.params }

// Granted returns the number of permits granted so far.
func (c *Core) Granted() int64 { return c.granted }

// Rejected returns the number of rejects delivered so far.
func (c *Core) Rejected() int64 { return c.rejected }

// Storage returns the permits remaining in the root's storage.
func (c *Core) Storage() int64 { return c.storage }

// Counters returns the cost counters.
func (c *Core) Counters() *stats.Counters { return c.counters }

// Domains returns the domain tracker (nil unless tracking is enabled).
func (c *Core) Domains() *DomainTracker { return c.domains }

// NodePermits returns the number of permits (static and mobile) currently
// stored at the given node.
func (c *Core) NodePermits(id tree.NodeID) int64 {
	s, ok := c.stores[id]
	if !ok {
		return 0
	}
	return s.PermitCount()
}

// HasRejectAt reports whether a reject package resides at the given node.
func (c *Core) HasRejectAt(id tree.NodeID) bool {
	s, ok := c.stores[id]
	return ok && s.HasReject()
}

// UnusedPermits returns the permits not yet granted: root storage plus all
// permits sitting in packages. The iteration drivers use this as L.
func (c *Core) UnusedPermits() int64 {
	n := c.storage
	for _, s := range c.stores {
		n += s.PermitCount()
	}
	return n
}

// store returns the package store of a live node, creating it lazily (new
// nodes join with empty stores).
func (c *Core) store(id tree.NodeID) *pkgstore.Store {
	s, ok := c.stores[id]
	if !ok {
		s = pkgstore.NewStore()
		c.stores[id] = s
	}
	return s
}

// ClearPackages removes every package from the graph and returns all
// unused permits to the root storage (iteration resets, Section 3.3).
func (c *Core) ClearPackages() {
	total := c.storage
	for _, s := range c.stores {
		total += s.PermitCount()
		s.Clear()
	}
	c.storage = total
	c.rejectWave = false
	if c.domains != nil {
		c.domains.Reset()
	}
}

// Submit runs Protocol GrantOrReject (Section 3.1) for one request and, if
// the request is topological and granted, applies the change to the tree.
func (c *Core) Submit(req Request) (Grant, error) {
	if !c.tr.Contains(req.Node) {
		return Grant{}, fmt.Errorf("submit at %d: %w", req.Node, tree.ErrNoSuchNode)
	}
	if err := c.validate(req); err != nil {
		return Grant{}, err
	}
	u := req.Node

	// Item 1: a reject package at u rejects the request outright.
	if c.store(u).HasReject() {
		return c.reject(), nil
	}

	// Item 2: grant from a local static package when possible.
	if static := c.store(u).Static(); static != nil {
		return c.grantFromStatic(req, static)
	}

	// Item 3: find the closest filler node with respect to u.
	host, pkg, err := c.findFiller(u)
	if err != nil {
		return Grant{}, err
	}
	if pkg == nil {
		// Item 3b: no filler; create a package at the root if the
		// storage suffices, otherwise reject with a reject wave.
		dRoot, err := c.tr.Distance(u, c.tr.Root())
		if err != nil {
			return Grant{}, err
		}
		level := c.params.RootLevel(int64(dRoot))
		need := c.params.MobileSize(level)
		if c.storage < need {
			if c.noRejects {
				return Grant{Outcome: WouldReject}, nil
			}
			c.broadcastRejectWave()
			return c.reject(), nil
		}
		pkg, err = c.createAtRoot(level)
		if err != nil {
			return Grant{}, err
		}
		host = c.tr.Root()
	}

	// Item 4: distribute the package's content along the path to u.
	static, err := c.distribute(pkg, host, u)
	if err != nil {
		return Grant{}, err
	}
	c.store(u).AddStatic(static)
	return c.grantFromStatic(req, static)
}

func (c *Core) validate(req Request) error {
	switch req.Kind {
	case tree.RemoveLeaf:
		if req.Node == c.tr.Root() {
			return fmt.Errorf("remove root: %w", tree.ErrIsRoot)
		}
		if !c.tr.IsLeaf(req.Node) {
			return fmt.Errorf("remove-leaf at %d: %w", req.Node, tree.ErrNotLeaf)
		}
	case tree.RemoveInternal:
		if req.Node == c.tr.Root() {
			return fmt.Errorf("remove root: %w", tree.ErrIsRoot)
		}
		if c.tr.IsLeaf(req.Node) {
			return fmt.Errorf("remove-internal at %d: %w", req.Node, tree.ErrNotInternal)
		}
	case tree.AddInternal:
		p, err := c.tr.Parent(req.Child)
		if err != nil {
			return fmt.Errorf("add-internal: %w", err)
		}
		if p != req.Node {
			return fmt.Errorf("add-internal: request must arrive at the parent-to-be: %w",
				tree.ErrNotRelated)
		}
	case tree.None, tree.AddLeaf:
		// No preconditions beyond the node existing.
	default:
		return fmt.Errorf("unknown request kind %v", req.Kind)
	}
	return nil
}

func (c *Core) reject() Grant {
	c.rejected++
	c.counters.Inc(stats.CounterRejects)
	return Grant{Outcome: Rejected}
}

// findFiller walks the ancestors of u from u itself up to the root and
// returns the first (closest) filler node and its qualifying package of the
// smallest qualifying level, or (0, nil) when none exists.
func (c *Core) findFiller(u tree.NodeID) (tree.NodeID, *pkgstore.Package, error) {
	path, err := c.tr.AppendPathToRoot(u, c.pathBuf[:0])
	if err != nil {
		return tree.InvalidNode, nil, err
	}
	c.pathBuf = path[:0]
	for d, w := range path {
		if pk := c.store(w).MobileAtFillerDistance(c.params, int64(d)); pk != nil {
			return w, pk, nil
		}
	}
	return tree.InvalidNode, nil, nil
}

// createAtRoot creates a mobile package of the given level at the root,
// funding it from the root storage (which the caller has checked).
func (c *Core) createAtRoot(level int) (*pkgstore.Package, error) {
	size := c.params.MobileSize(level)
	var pk *pkgstore.Package
	if c.serials.Valid() {
		iv := pkgstore.Interval{Lo: c.serials.Lo, Hi: c.serials.Lo + size - 1}
		if iv.Hi > c.serials.Hi {
			return nil, fmt.Errorf("root serials exhausted: need %d, have %d", size, c.serials.Len())
		}
		var err error
		pk, err = pkgstore.NewMobileWithSerials(c.params, level, iv)
		if err != nil {
			return nil, err
		}
		c.serials.Lo = iv.Hi + 1
	} else {
		pk = pkgstore.NewMobile(c.params, level)
	}
	c.storage -= size
	c.store(c.tr.Root()).AddMobile(pk)
	return pk, nil
}

// distribute implements procedure Proc (Section 3.1, item 4): the level-j
// package pkg found (or created) at host is moved down toward u, splitting
// at each drop point u_k so that for every k ∈ {0..j-1} one level-k mobile
// package remains at the ancestor u_k of u at distance 3·2^{k-1}ψ, and a
// final static package reaches u. It returns that static package (not yet
// added to u's store).
func (c *Core) distribute(pkg *pkgstore.Package, host, u tree.NodeID) (*pkgstore.Package, error) {
	if err := c.store(host).RemoveMobile(pkg); err != nil {
		return nil, fmt.Errorf("distribute: %w", err)
	}
	if c.domains != nil {
		c.domains.OnConsumed(pkg)
	}
	cur := pkg
	curHost := host
	d, err := c.tr.Distance(u, curHost)
	if err != nil {
		return nil, err
	}
	curDist := int64(d)
	for k := cur.Level; k > 0; k-- {
		targetDist := c.params.UKDistance(k - 1)
		target, err := c.tr.Ancestor(u, int(targetDist))
		if err != nil {
			return nil, fmt.Errorf("distribute: drop point u_%d at distance %d: %w",
				k-1, targetDist, err)
		}
		c.moveDown(cur, curHost, target, curDist-targetDist)
		p1, p2, err := cur.Split()
		if err != nil {
			return nil, err
		}
		c.store(target).AddMobile(p1)
		if c.domains != nil {
			if err := c.domains.OnFormed(p1, u, target); err != nil {
				return nil, err
			}
		}
		cur = p2
		curHost = target
		curDist = targetDist
	}
	// cur has level 0: move it to u and convert to static.
	c.moveDown(cur, curHost, u, curDist)
	if err := cur.BecomeStatic(); err != nil {
		return nil, err
	}
	return cur, nil
}

// moveDown accounts for a package move of the given hop distance from host
// down to target and notifies the descent observer.
func (c *Core) moveDown(pk *pkgstore.Package, host, target tree.NodeID, dist int64) {
	if dist < 0 {
		dist = 0
	}
	c.counters.Add(stats.CounterMoves, dist)
	if c.descent != nil && dist > 0 {
		path, err := c.tr.PathBetween(target, host)
		if err == nil {
			// path is target..host bottom-up; the package enters every
			// node strictly below host, i.e. all but the last entry.
			c.descent(pk.Size, path[:len(path)-1])
		}
	}
}

// grantFromStatic implements item 2: one permit from the static package at
// the request's node is granted, the package shrinks (and is canceled when
// empty), and a granted topological request is applied to the tree.
func (c *Core) grantFromStatic(req Request, static *pkgstore.Package) (Grant, error) {
	serial, empty, err := static.TakePermit()
	if err != nil {
		return Grant{}, err
	}
	if empty {
		if err := c.store(req.Node).RemoveStatic(static); err != nil {
			return Grant{}, err
		}
	}
	c.granted++
	c.counters.Inc(stats.CounterGrants)

	g := Grant{Outcome: Granted, Serial: serial}
	switch req.Kind {
	case tree.None:
		// Non-topological event: nothing further.
	case tree.AddLeaf:
		id, err := c.tr.ApplyAddLeaf(req.Node)
		if err != nil {
			return Grant{}, err
		}
		c.stores[id] = pkgstore.NewStore()
		g.NewNode = id
		c.counters.Inc(stats.CounterTopoChanges)
	case tree.AddInternal:
		id, err := c.tr.ApplyAddInternal(req.Child)
		if err != nil {
			return Grant{}, err
		}
		c.stores[id] = pkgstore.NewStore()
		if c.domains != nil {
			c.domains.OnAddInternal(id, req.Child)
		}
		g.NewNode = id
		c.counters.Inc(stats.CounterTopoChanges)
	case tree.RemoveLeaf, tree.RemoveInternal:
		if err := c.removeNode(req.Node, req.Kind); err != nil {
			return Grant{}, err
		}
		c.counters.Inc(stats.CounterTopoChanges)
	}
	return g, nil
}

// removeNode performs the graceful deletion of item 2: the node's packages
// move to its parent in one move, then the node is removed.
func (c *Core) removeNode(id tree.NodeID, kind tree.ChangeKind) error {
	parent, err := c.tr.Parent(id)
	if err != nil {
		return err
	}
	s := c.store(id)
	pkgs, hadReject := s.TakeAll()
	if len(pkgs) > 0 || hadReject {
		// One move carries the whole set of objects across one edge.
		c.counters.Add(stats.CounterMoves, 1)
		c.store(parent).Absorb(pkgs, hadReject)
		if c.domains != nil {
			c.domains.OnHostMoved(pkgs, parent)
		}
	}
	delete(c.stores, id)
	switch kind {
	case tree.RemoveLeaf:
		err = c.tr.ApplyRemoveLeaf(id)
	case tree.RemoveInternal:
		err = c.tr.ApplyRemoveInternal(id)
	default:
		err = fmt.Errorf("removeNode: unexpected kind %v", kind)
	}
	return err
}

// broadcastRejectWave places a reject package in every node (item 3b). The
// centralized simulation is instantaneous; the move cost is one per tree
// edge (the packages split at each node and one copy crosses each edge).
func (c *Core) broadcastRejectWave() {
	if c.rejectWave {
		return
	}
	c.rejectWave = true
	nodes := c.tr.Nodes()
	for _, id := range nodes {
		c.store(id).SetReject()
	}
	if moves := int64(len(nodes) - 1); moves > 0 {
		c.counters.Add(stats.CounterMoves, moves)
	}
}

// ErrTerminated is returned by terminating controllers after termination.
var ErrTerminated = errors.New("controller: terminated")

// Terminating wraps a no-reject Core as a terminating (M,W)-Controller
// (Observation 2.1): instead of ever rejecting, it terminates. At
// termination the number of granted permits m satisfies M−W ≤ m ≤ M.
type Terminating struct {
	core       *Core
	terminated bool
}

// NewTerminating builds a terminating (m,w)-Controller over tr with the
// fixed bound u.
func NewTerminating(tr *tree.Tree, u, m, w int64, opts ...CoreOption) *Terminating {
	opts = append(opts, WithNoRejects())
	return &Terminating{core: NewCore(tr, u, m, w, opts...)}
}

// Core exposes the wrapped core (for inspection in drivers and tests).
func (t *Terminating) Core() *Core { return t.core }

// Terminated reports whether the controller has terminated.
func (t *Terminating) Terminated() bool { return t.terminated }

// Granted returns the permits granted before termination.
func (t *Terminating) Granted() int64 { return t.core.Granted() }

// Submit forwards the request unless terminated. The first request the core
// cannot fund flips the controller into the terminated state; that request
// (and all later ones) receive ErrTerminated. Per Observation 2.1, the
// broadcast/upcast that verifies granted events costs O(n) extra moves,
// accounted here at termination time.
func (t *Terminating) Submit(req Request) (Grant, error) {
	if t.terminated {
		return Grant{}, ErrTerminated
	}
	g, err := t.core.Submit(req)
	if err != nil {
		return Grant{}, err
	}
	if g.Outcome == WouldReject {
		t.terminate()
		return Grant{}, ErrTerminated
	}
	return g, nil
}

// Terminate forces termination (drivers use this when an iteration ends
// for an external reason, e.g. the topological-change budget is spent).
func (t *Terminating) Terminate() {
	if !t.terminated {
		t.terminate()
	}
}

func (t *Terminating) terminate() {
	t.terminated = true
	// Broadcast + upcast over the current tree (Observation 2.1).
	if n := int64(t.core.tr.Size()); n > 1 {
		t.core.counters.Add(stats.CounterMoves, 2*(n-1))
	}
}
