package controller_test

import (
	"testing"
	"testing/quick"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

// quickMaxCount scales a property-test iteration budget down under -short
// so `go test -short ./...` stays fast while CI keeps the full sweep.
func quickMaxCount(full int) int {
	if testing.Short() {
		n := full / 5
		if n < 2 {
			n = 2
		}
		return n
	}
	return full
}

// TestPropertySafetyLiveness drives random (M, W, workload-seed) triples
// through the waste-halving controller and asserts the correctness
// conditions hold for every combination.
func TestPropertySafetyLiveness(t *testing.T) {
	prop := func(seed int64, mRaw, wRaw uint16) bool {
		m := int64(mRaw%2000) + 1
		w := int64(wRaw) % m
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, 24, seed); err != nil {
			return false
		}
		u := int64(24) + m + 8
		it := ctl.NewIterated(tr, u, m, w)
		gen := workload.NewChurn(tr, workload.DefaultMix(), seed+1)
		gen.SetMinSize(4)
		granted := int64(0)
		for i := int64(0); i < 4*m+50; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			g, err := it.Submit(req)
			if err != nil {
				t.Logf("seed=%d m=%d w=%d: %v", seed, m, w, err)
				return false
			}
			if g.Outcome == ctl.Granted {
				granted++
			}
			if g.Outcome == ctl.Rejected {
				break
			}
		}
		if granted > m {
			t.Logf("seed=%d m=%d w=%d: granted %d > M", seed, m, w, granted)
			return false
		}
		if granted < m-w {
			t.Logf("seed=%d m=%d w=%d: granted %d < M-W=%d", seed, m, w, granted, m-w)
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: quickMaxCount(30)}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDomainInvariants fuzzes the fixed-U core with random
// workloads and checks the three domain invariants after every request.
func TestPropertyDomainInvariants(t *testing.T) {
	prop := func(seed int64, wRaw uint16) bool {
		tr, _ := tree.New()
		size := 40 + int(seed%5)*40
		if err := workload.BuildBalanced(tr, size, seed); err != nil {
			return false
		}
		const requests = 150
		u := int64(size + requests + 8)
		// Random W spanning both the φ=1 and φ>1 regimes.
		w := int64(wRaw%4096) + u
		c := ctl.NewCore(tr, u, 1<<30, w, ctl.WithDomainTracking())
		gen := workload.NewChurn(tr, workload.DefaultMix(), seed+2)
		for i := 0; i < requests; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if _, err := c.Submit(req); err != nil {
				t.Logf("seed=%d: submit: %v", seed, err)
				return false
			}
			if err := c.Domains().CheckInvariants(); err != nil {
				t.Logf("seed=%d w=%d request %d: %v", seed, w, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: quickMaxCount(20)}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDynamicConservation fuzzes the unknown-U driver: across
// iteration resets, the number of grants never exceeds M and the tree
// remains structurally valid.
func TestPropertyDynamicConservation(t *testing.T) {
	prop := func(seed int64) bool {
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, 12, seed); err != nil {
			return false
		}
		const m = 600
		d := ctl.NewDynamic(tr, m, 30)
		gen := workload.NewChurn(tr, workload.DefaultMix(), seed+3)
		gen.SetMinSize(3)
		granted := 0
		for i := 0; i < 4*m; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			g, err := d.Submit(req)
			if err != nil {
				return false
			}
			if g.Outcome == ctl.Granted {
				granted++
			}
			if g.Outcome == ctl.Rejected {
				break
			}
		}
		if granted > m || granted < m-30 {
			t.Logf("seed=%d: granted %d", seed, granted)
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: quickMaxCount(15)}); err != nil {
		t.Fatal(err)
	}
}
