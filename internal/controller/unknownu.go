package controller

import (
	"errors"

	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Policy selects the iteration rule of the unknown-U controller
// (Theorem 3.5).
type Policy int

const (
	// PolicyChangesQuarter ends iteration i after U_i/4 topological
	// changes (first part of Theorem 3.5: move complexity
	// O(n₀log²n₀·log(M/(W+1)) + Σ_j log²n_j·log(M/(W+1)))).
	PolicyChangesQuarter Policy = iota + 1
	// PolicyDoubleMaxN ends an iteration when the node count doubles
	// relative to the maximum simultaneous count seen before the
	// iteration (second part of Theorem 3.5: O(N·log²N·log(M/(W+1))),
	// N = max simultaneous nodes). As an implementation guard the
	// iteration also ends when additions alone reach half that maximum,
	// keeping the fixed-U assumption of the inner controller valid under
	// add/remove churn that leaves n flat.
	PolicyDoubleMaxN
)

// Dynamic is the (M,W)-Controller for the general case where no fixed bound
// U on the number of nodes ever to exist is known in advance (Section 3.3).
// It runs the waste-halving controller in iterations, re-estimating
// U_i = 2·N_i from the current node count at each iteration start.
type Dynamic struct {
	tr       *tree.Tree
	w        int64
	policy   Policy
	counters *stats.Counters

	terminating bool
	terminated  bool
	rejectAll   bool

	inner       *Iterated
	mi          int64
	ui          int64
	zi          int64 // topological changes in the current iteration
	adds        int64 // additions in the current iteration
	grantedBase int64 // permits granted before this iteration
	maxSim      int64 // maximum simultaneous node count observed
	iterations  int
}

// DynamicOption configures a Dynamic controller.
type DynamicOption func(*Dynamic)

// WithDynamicCounters shares the cost counters.
func WithDynamicCounters(c *stats.Counters) DynamicOption {
	return func(d *Dynamic) { d.counters = c }
}

// WithPolicy selects the iteration rule (default PolicyChangesQuarter).
func WithPolicy(p Policy) DynamicOption {
	return func(d *Dynamic) { d.policy = p }
}

// DynamicTerminating makes the controller terminating (ErrTerminated on
// exhaustion instead of rejects).
func DynamicTerminating() DynamicOption {
	return func(d *Dynamic) { d.terminating = true }
}

// NewDynamic builds an unknown-U (m, w)-Controller over tr.
func NewDynamic(tr *tree.Tree, m, w int64, opts ...DynamicOption) *Dynamic {
	d := &Dynamic{tr: tr, w: w, policy: PolicyChangesQuarter, mi: m}
	for _, opt := range opts {
		opt(d)
	}
	if d.counters == nil {
		d.counters = stats.NewCounters()
	}
	d.maxSim = int64(tr.Size())
	d.startIteration()
	return d
}

func (d *Dynamic) startIteration() {
	d.iterations++
	n := int64(d.tr.Size())
	if n > d.maxSim {
		d.maxSim = n
	}
	switch d.policy {
	case PolicyDoubleMaxN:
		d.ui = 2 * d.maxSim
	default:
		d.ui = 2 * n
	}
	if d.ui < 4 {
		d.ui = 4
	}
	d.zi = 0
	d.adds = 0
	d.inner = NewIterated(d.tr, d.ui, d.mi, d.w,
		WithIteratedCounters(d.counters), AsTerminating())
	d.grantedBase = d.totalGrantedSoFar()
}

func (d *Dynamic) totalGrantedSoFar() int64 {
	return d.counters.Get(stats.CounterGrants)
}

// Granted returns the total permits granted across all iterations.
func (d *Dynamic) Granted() int64 { return d.counters.Get(stats.CounterGrants) }

// Iterations returns the number of outer iterations started.
func (d *Dynamic) Iterations() int { return d.iterations }

// Counters returns the shared cost counters.
func (d *Dynamic) Counters() *stats.Counters { return d.counters }

// Terminated reports whether a terminating controller has terminated.
func (d *Dynamic) Terminated() bool { return d.terminated }

// Submit answers one request, restarting the inner controller with fresh
// U_i and M_i estimates whenever the iteration policy fires.
func (d *Dynamic) Submit(req Request) (Grant, error) {
	if d.terminated {
		return Grant{}, ErrTerminated
	}
	if d.rejectAll {
		d.counters.Inc(stats.CounterRejects)
		return Grant{Outcome: Rejected}, nil
	}
	g, err := d.inner.Submit(req)
	if errors.Is(err, ErrTerminated) {
		// Global permit exhaustion: by the liveness of each inner
		// terminating controller, at least M−W permits were granted in
		// total.
		return d.exhausted()
	}
	if err != nil {
		return Grant{}, err
	}
	if g.Outcome == Granted && req.Kind != tree.None {
		d.zi++
		if req.Kind.IsAddition() {
			d.adds++
		}
		if n := int64(d.tr.Size()); n > d.maxSim {
			d.maxSim = n
		}
		if d.iterationDone() {
			d.endIteration()
		}
	}
	return g, nil
}

func (d *Dynamic) iterationDone() bool {
	switch d.policy {
	case PolicyDoubleMaxN:
		startMax := d.ui / 2
		return int64(d.tr.Size()) >= 2*startMax || d.adds >= maxInt64(startMax/2, 1)
	default:
		return d.zi >= maxInt64(d.ui/4, 1)
	}
}

// endIteration closes the books on the current iteration: in the
// centralized setting N_{i+1}, Y_i and the package cleanup are computed
// directly (the distributed implementation pays O(n) messages for the
// corresponding broadcast/upcast, see Appendix A).
func (d *Dynamic) endIteration() {
	yi := d.totalGrantedSoFar() - d.grantedBase
	d.mi -= yi
	if d.mi < 0 {
		d.mi = 0
	}
	d.startIteration()
}

func (d *Dynamic) exhausted() (Grant, error) {
	if d.terminating {
		d.terminated = true
		return Grant{}, ErrTerminated
	}
	d.rejectAll = true
	if n := int64(d.tr.Size()); n > 1 {
		d.counters.Add(stats.CounterMoves, n-1)
	}
	d.counters.Inc(stats.CounterRejects)
	return Grant{Outcome: Rejected}, nil
}
