package controller

import (
	"fmt"

	"dynctrl/internal/pkgstore"
	"dynctrl/internal/tree"
)

// DomainTracker maintains the package domains of Section 3.2. The paper
// uses domains purely for analysis — the algorithm itself neither stores
// nor communicates them — so the tracker is optional and exists to let
// tests assert the three Domain Invariants after every step:
//
//  1. the domain of each existing level-k mobile package contains
//     2^{k-1}·ψ nodes (deleted nodes keep their membership);
//  2. the domains of existing level-k packages are pairwise disjoint;
//  3. the currently existing nodes of a domain form a path hanging down
//     from some child of the node holding the package.
type DomainTracker struct {
	tr     *tree.Tree
	params pkgstore.Params
	// domains maps each tracked mobile package to its domain.
	domains map[*pkgstore.Package]*domain
}

type domain struct {
	level int
	host  tree.NodeID
	// members lists the domain's nodes top-down: members[0] is the node
	// nearest the host (a child of it while existing). Deleted nodes
	// remain members (Case 5 of the domain update rules).
	members []tree.NodeID
}

// NewDomainTracker returns an empty tracker.
func NewDomainTracker(tr *tree.Tree, params pkgstore.Params) *DomainTracker {
	return &DomainTracker{
		tr:      tr,
		params:  params,
		domains: make(map[*pkgstore.Package]*domain),
	}
}

// Reset forgets all domains (iteration resets clear all packages).
func (d *DomainTracker) Reset() {
	d.domains = make(map[*pkgstore.Package]*domain)
}

// Count returns the number of tracked domains.
func (d *DomainTracker) Count() int { return len(d.domains) }

// LevelCounts returns the number of tracked packages per level.
func (d *DomainTracker) LevelCounts() map[int]int {
	out := make(map[int]int)
	for _, dom := range d.domains {
		out[dom.level]++
	}
	return out
}

// OnFormed records the domain of a freshly dropped level-k package pk left
// at its drop point target = u_k during procedure Proc serving a request at
// u (Case 2 of the domain definitions): the members are the nodes x on the
// path between u and target with 1 ≤ d(x, target) ≤ 2^{k-1}ψ.
func (d *DomainTracker) OnFormed(pk *pkgstore.Package, u, target tree.NodeID) error {
	size := int(d.params.DomainSize(pk.Level))
	path, err := d.tr.PathBetween(u, target) // bottom-up: path[0]=u ... path[last]=target
	if err != nil {
		return fmt.Errorf("domain formation: %w", err)
	}
	if len(path)-1 < size {
		return fmt.Errorf("domain formation: path of %d edges cannot hold domain of %d nodes",
			len(path)-1, size)
	}
	members := make([]tree.NodeID, size)
	for j := 0; j < size; j++ {
		// Top-down: distance j+1 below target.
		members[j] = path[len(path)-2-j]
	}
	d.domains[pk] = &domain{level: pk.Level, host: target, members: members}
	return nil
}

// OnConsumed drops the domain of a package that split, became static or was
// canceled.
func (d *DomainTracker) OnConsumed(pk *pkgstore.Package) {
	delete(d.domains, pk)
}

// OnAddInternal applies Case 4 of the domain update rules: the new node,
// inserted as the parent of childID, joins every domain containing childID,
// and each such domain sheds its bottom-most existing member.
func (d *DomainTracker) OnAddInternal(newID, childID tree.NodeID) {
	for _, dom := range d.domains {
		idx := -1
		for i, m := range dom.members {
			if m == childID {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		dom.members = append(dom.members, tree.InvalidNode)
		copy(dom.members[idx+1:], dom.members[idx:])
		dom.members[idx] = newID
		// Remove the bottom-most existing member.
		for i := len(dom.members) - 1; i >= 0; i-- {
			if d.tr.Contains(dom.members[i]) {
				dom.members = append(dom.members[:i], dom.members[i+1:]...)
				break
			}
		}
	}
}

// OnHostMoved re-homes the domains of packages that migrated to a deleted
// host's parent (graceful deletion).
func (d *DomainTracker) OnHostMoved(pkgs []*pkgstore.Package, newHost tree.NodeID) {
	for _, pk := range pkgs {
		if dom, ok := d.domains[pk]; ok {
			dom.host = newHost
		}
	}
}

// CheckInvariants verifies the three domain invariants and returns the
// first violation found, or nil.
func (d *DomainTracker) CheckInvariants() error {
	// Invariant 1: exact domain sizes.
	for pk, dom := range d.domains {
		want := int(d.params.DomainSize(dom.level))
		if len(dom.members) != want {
			return fmt.Errorf("invariant 1: level-%d package domain has %d members, want %d",
				dom.level, len(dom.members), want)
		}
		if pk.Level != dom.level {
			return fmt.Errorf("invariant 1: package level %d, domain level %d", pk.Level, dom.level)
		}
	}
	// Invariant 2: per-level disjointness.
	perLevel := make(map[int]map[tree.NodeID]struct{})
	for _, dom := range d.domains {
		seen, ok := perLevel[dom.level]
		if !ok {
			seen = make(map[tree.NodeID]struct{})
			perLevel[dom.level] = seen
		}
		for _, m := range dom.members {
			if _, dup := seen[m]; dup {
				return fmt.Errorf("invariant 2: node %d in two level-%d domains", m, dom.level)
			}
			seen[m] = struct{}{}
		}
	}
	// Invariant 3: existing members form a path hanging from a child of
	// the host.
	for _, dom := range d.domains {
		var existing []tree.NodeID
		for _, m := range dom.members {
			if d.tr.Contains(m) {
				existing = append(existing, m)
			}
		}
		if len(existing) == 0 {
			continue
		}
		p, err := d.tr.Parent(existing[0])
		if err != nil {
			return fmt.Errorf("invariant 3: %w", err)
		}
		if p != dom.host {
			return fmt.Errorf("invariant 3: top member %d hangs from %d, host is %d",
				existing[0], p, dom.host)
		}
		for i := 1; i < len(existing); i++ {
			p, err := d.tr.Parent(existing[i])
			if err != nil {
				return fmt.Errorf("invariant 3: %w", err)
			}
			if p != existing[i-1] {
				return fmt.Errorf("invariant 3: member %d not child of previous member %d",
					existing[i], existing[i-1])
			}
		}
	}
	return nil
}
