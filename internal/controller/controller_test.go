package controller_test

import (
	"math"
	"testing"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func newPathTree(t *testing.T, n int) (*tree.Tree, []tree.NodeID) {
	t.Helper()
	tr, root := tree.New()
	ids := []tree.NodeID{root}
	cur := root
	for i := 1; i < n; i++ {
		id, err := tr.ApplyAddLeaf(cur)
		if err != nil {
			t.Fatalf("build path: %v", err)
		}
		ids = append(ids, id)
		cur = id
	}
	return tr, ids
}

func TestGrantAtRoot(t *testing.T) {
	tr, _ := tree.New()
	c := ctl.NewCore(tr, 8, 4, 1)
	g, err := c.Submit(ctl.Request{Node: tr.Root(), Kind: tree.None})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if g.Outcome != ctl.Granted {
		t.Fatalf("outcome = %v, want ctl.Granted", g.Outcome)
	}
	if c.Granted() != 1 {
		t.Fatalf("ctl.Granted() = %d, want 1", c.Granted())
	}
	if c.Storage() != 3 {
		t.Fatalf("Storage() = %d, want 3 (one level-0 package of φ=1 funded)", c.Storage())
	}
}

func TestSafetyNeverExceedsM(t *testing.T) {
	tr, root := tree.New()
	const m = 10
	c := ctl.NewCore(tr, 64, m, 3)
	grants, rejects := 0, 0
	for i := 0; i < 50; i++ {
		g, err := c.Submit(ctl.Request{Node: root, Kind: tree.None})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		switch g.Outcome {
		case ctl.Granted:
			grants++
		case ctl.Rejected:
			rejects++
		}
	}
	if grants > m {
		t.Fatalf("granted %d > M=%d: safety violated", grants, m)
	}
	if rejects == 0 {
		t.Fatal("expected rejects after exhaustion")
	}
	// After the reject wave every request is rejected.
	g, err := c.Submit(ctl.Request{Node: root, Kind: tree.None})
	if err != nil || g.Outcome != ctl.Rejected {
		t.Fatalf("post-wave submit = %v, %v; want ctl.Rejected", g.Outcome, err)
	}
}

func TestLivenessAtFirstReject(t *testing.T) {
	// When the first reject is issued, at least M−W permits must have
	// been granted (Lemma 3.2).
	for _, tc := range []struct {
		name string
		n    int
		m, w int64
	}{
		{"tight", 20, 40, 8},
		{"wasteful", 30, 100, 60},
		{"deep", 60, 50, 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, ids := newPathTree(t, tc.n)
			u := int64(tc.n) + tc.m + 8
			c := ctl.NewCore(tr, u, tc.m, tc.w)
			gen := workload.NewChurn(tr, workload.EventOnlyMix(), 11)
			_ = ids
			for {
				req, ok := gen.Next()
				if !ok {
					t.Fatal("generator dried up")
				}
				g, err := c.Submit(req)
				if err != nil {
					t.Fatalf("Submit: %v", err)
				}
				if g.Outcome == ctl.Rejected {
					break
				}
			}
			if got := c.Granted(); got < tc.m-tc.w {
				t.Fatalf("granted %d < M−W = %d: liveness violated", got, tc.m-tc.w)
			}
			if got := c.Granted(); got > tc.m {
				t.Fatalf("granted %d > M = %d: safety violated", got, tc.m)
			}
		})
	}
}

func TestFillerReuse(t *testing.T) {
	// A second request near the first should be served from leftover
	// packages (filler nodes) without touching the root storage, once the
	// first descent seeded the path.
	// W >= U keeps psi small (48 here), so a 400-deep path spans several
	// package levels and the first descent leaves fillers behind. (With
	// W = 1, psi >= 4U exceeds any possible depth and every request is
	// served from the root; the waste-halving driver exists precisely
	// to run the core at large effective W.)
	tr, ids := newPathTree(t, 400)
	deep := ids[len(ids)-1]
	c := ctl.NewCore(tr, 1024, 1<<20, 1024)
	if _, err := c.Submit(ctl.Request{Node: deep, Kind: tree.None}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	storageAfterFirst := c.Storage()
	movesAfterFirst := c.Counters().Get(stats.CounterMoves)
	if _, err := c.Submit(ctl.Request{Node: deep, Kind: tree.None}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if c.Storage() != storageAfterFirst {
		t.Fatalf("second request consumed root storage (%d -> %d); expected filler reuse",
			storageAfterFirst, c.Storage())
	}
	movesSecond := c.Counters().Get(stats.CounterMoves) - movesAfterFirst
	if movesSecond >= movesAfterFirst {
		t.Fatalf("second request cost %d moves, first cost %d; expected locality",
			movesSecond, movesAfterFirst)
	}
}

func TestTopologicalGrantsApply(t *testing.T) {
	tr, root := tree.New()
	c := ctl.NewCore(tr, 64, 32, 8)

	// Add a leaf.
	g, err := c.Submit(ctl.Request{Node: root, Kind: tree.AddLeaf})
	if err != nil || g.Outcome != ctl.Granted {
		t.Fatalf("add leaf: %v, %v", g.Outcome, err)
	}
	leaf := g.NewNode
	if !tr.Contains(leaf) {
		t.Fatal("granted leaf not in tree")
	}
	// Split the edge root->leaf.
	g, err = c.Submit(ctl.Request{Node: root, Kind: tree.AddInternal, Child: leaf})
	if err != nil || g.Outcome != ctl.Granted {
		t.Fatalf("add internal: %v, %v", g.Outcome, err)
	}
	mid := g.NewNode
	p, _ := tr.Parent(leaf)
	if p != mid {
		t.Fatalf("leaf's parent = %d, want inserted node %d", p, mid)
	}
	// Remove the internal node.
	g, err = c.Submit(ctl.Request{Node: mid, Kind: tree.RemoveInternal})
	if err != nil || g.Outcome != ctl.Granted {
		t.Fatalf("remove internal: %v, %v", g.Outcome, err)
	}
	if tr.Contains(mid) {
		t.Fatal("removed internal node still present")
	}
	// Remove the leaf.
	g, err = c.Submit(ctl.Request{Node: leaf, Kind: tree.RemoveLeaf})
	if err != nil || g.Outcome != ctl.Granted {
		t.Fatalf("remove leaf: %v, %v", g.Outcome, err)
	}
	if tr.Size() != 1 {
		t.Fatalf("tree size = %d, want 1", tr.Size())
	}
	if got := c.Counters().Get(stats.CounterTopoChanges); got != 4 {
		t.Fatalf("topo changes = %d, want 4", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRequestValidation(t *testing.T) {
	tr, root := tree.New()
	c := ctl.NewCore(tr, 16, 8, 2)
	g, err := c.Submit(ctl.Request{Node: root, Kind: tree.AddLeaf})
	if err != nil || g.Outcome != ctl.Granted {
		t.Fatalf("setup: %v %v", g, err)
	}
	leaf := g.NewNode

	cases := []struct {
		name string
		req  ctl.Request
	}{
		{"remove root as leaf", ctl.Request{Node: root, Kind: tree.RemoveLeaf}},
		{"remove internal that is leaf", ctl.Request{Node: leaf, Kind: tree.RemoveInternal}},
		{"remove leaf that is internal", ctl.Request{Node: root, Kind: tree.RemoveLeaf}},
		{"add internal wrong parent", ctl.Request{Node: leaf, Kind: tree.AddInternal, Child: leaf}},
		{"missing node", ctl.Request{Node: 9999, Kind: tree.None}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Submit(tc.req); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDeletionMovesPackagesToParent(t *testing.T) {
	// With W ≥ 2U, φ > 1, so a grant leaves a static remainder at the
	// node; deleting the node must move that remainder to its parent.
	tr, ids := newPathTree(t, 4)
	leaf := ids[len(ids)-1]
	parent := ids[len(ids)-2]
	c := ctl.NewCore(tr, 16, 1000, 512) // φ = 512/32 = 16
	if c.Params().Phi <= 1 {
		t.Fatalf("test needs φ > 1, got %d", c.Params().Phi)
	}
	if _, err := c.Submit(ctl.Request{Node: leaf, Kind: tree.None}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The leaf now holds a static package with φ−1 permits.
	g, err := c.Submit(ctl.Request{Node: leaf, Kind: tree.RemoveLeaf})
	if err != nil || g.Outcome != ctl.Granted {
		t.Fatalf("remove leaf: %v, %v", g, err)
	}
	// Remainder (φ−2 permits after the removal grant) must be at parent.
	want := c.Params().Phi - 2
	got := c.NodePermits(parent)
	if got < want {
		t.Fatalf("parent holds %d permits, want at least %d", got, want)
	}
}

func TestNoRejectsModeWouldReject(t *testing.T) {
	tr, root := tree.New()
	c := ctl.NewCore(tr, 8, 2, 0, ctl.WithNoRejects())
	for i := 0; i < 2; i++ {
		g, err := c.Submit(ctl.Request{Node: root, Kind: tree.None})
		if err != nil || g.Outcome != ctl.Granted {
			t.Fatalf("grant %d: %v %v", i, g.Outcome, err)
		}
	}
	g, err := c.Submit(ctl.Request{Node: root, Kind: tree.None})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if g.Outcome != ctl.WouldReject {
		t.Fatalf("outcome = %v, want ctl.WouldReject", g.Outcome)
	}
	// No reject wave must have been broadcast.
	if c.HasRejectAt(root) {
		t.Fatal("no-reject core must not place reject packages")
	}
}

func TestSerialsUniqueAndInRange(t *testing.T) {
	tr, ids := newPathTree(t, 12)
	const m = 30
	c := ctl.NewCore(tr, 64, m, 5, ctl.WithSerials(pkgstore.Interval{Lo: 101, Hi: 101 + m - 1}))
	seen := make(map[int64]bool)
	gen := workload.NewChurn(tr, workload.EventOnlyMix(), 3)
	_ = ids
	for i := 0; i < m+10; i++ {
		req, _ := gen.Next()
		g, err := c.Submit(req)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if g.Outcome != ctl.Granted {
			continue
		}
		if g.Serial < 101 || g.Serial > 101+m-1 {
			t.Fatalf("serial %d out of range", g.Serial)
		}
		if seen[g.Serial] {
			t.Fatalf("serial %d granted twice", g.Serial)
		}
		seen[g.Serial] = true
	}
	if len(seen) == 0 {
		t.Fatal("no serials granted")
	}
}

func TestDomainInvariantsUnderChurn(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 80, 5); err != nil {
		t.Fatalf("build: %v", err)
	}
	const requests = 400
	u := int64(tr.Size() + requests + 8)
	c := ctl.NewCore(tr, u, 1<<30, 1, ctl.WithDomainTracking())
	gen := workload.NewChurn(tr, workload.DefaultMix(), 99)
	for i := 0; i < requests; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := c.Submit(req); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if err := c.Domains().CheckInvariants(); err != nil {
			t.Fatalf("after request %d (%v at %d): %v", i, req.Kind, req.Node, err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree validate: %v", err)
	}
}

func TestDomainInvariantsDeepPath(t *testing.T) {
	// Deep paths trigger multi-level descents, exercising many domains.
	tr, _ := tree.New()
	if err := workload.BuildPath(tr, 600); err != nil {
		t.Fatalf("build: %v", err)
	}
	const requests = 200
	u := int64(tr.Size() + requests + 8)
	c := ctl.NewCore(tr, u, 1<<30, 1, ctl.WithDomainTracking())
	gen := workload.NewChurn(tr, workload.DefaultMix(), 17)
	for i := 0; i < requests; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := c.Submit(req); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if err := c.Domains().CheckInvariants(); err != nil {
			t.Fatalf("after request %d: %v", i, err)
		}
	}
}

func TestLevelPackageCountBound(t *testing.T) {
	// Ablation check (E14): the number of level-k packages never exceeds
	// U/(2^{k-1}ψ), the bound implied by domain invariants 1+2.
	tr, _ := tree.New()
	if err := workload.BuildPath(tr, 500); err != nil {
		t.Fatalf("build: %v", err)
	}
	u := int64(tr.Size() + 300)
	c := ctl.NewCore(tr, u, 1<<30, 1, ctl.WithDomainTracking())
	gen := workload.NewChurn(tr, workload.DefaultMix(), 7)
	for i := 0; i < 250; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := c.Submit(req); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		for level, count := range c.Domains().LevelCounts() {
			bound := float64(u) / float64(c.Params().DomainSize(level))
			if float64(count) > bound {
				t.Fatalf("level %d has %d packages, bound %.1f", level, count, bound)
			}
		}
	}
}

func TestUnusedPermitsConservation(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 40, 2); err != nil {
		t.Fatal(err)
	}
	const m = 500
	c := ctl.NewCore(tr, 256, m, 100)
	gen := workload.NewChurn(tr, workload.DefaultMix(), 31)
	for i := 0; i < 120; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := c.Submit(req); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if got := c.UnusedPermits() + c.Granted(); got != m {
			t.Fatalf("permit conservation violated: unused+granted = %d, want %d", got, m)
		}
	}
}

func TestClearPackagesReturnsPermits(t *testing.T) {
	tr, ids := newPathTree(t, 100)
	c := ctl.NewCore(tr, 256, 1000, 900) // psi = 40: the 99-deep tip needs a level-1 package
	if _, err := c.Submit(ctl.Request{Node: ids[len(ids)-1], Kind: tree.None}); err != nil {
		t.Fatal(err)
	}
	if c.Storage() == 1000-1 {
		t.Fatal("expected permits outside storage before clear")
	}
	c.ClearPackages()
	if got := c.Storage(); got != 1000-1 {
		t.Fatalf("after clear storage = %d, want %d", got, 1000-1)
	}
}

func TestMoveComplexityWithinTheoreticalBound(t *testing.T) {
	// Single fixed-U core bound (Lemma 3.3): O(U·(M/W)·log²U). Use a
	// generous constant and check the measured moves stay below it.
	for _, n := range []int{64, 256} {
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, n, 1); err != nil {
			t.Fatal(err)
		}
		requests := 4 * n
		u := int64(n + requests + 8)
		m := int64(u)
		w := m / 2
		c := ctl.NewCore(tr, u, m, w)
		gen := workload.NewChurn(tr, workload.DefaultMix(), 13)
		for i := 0; i < requests; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			g, err := c.Submit(req)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if g.Outcome == ctl.Rejected {
				break
			}
		}
		moves := float64(c.Counters().Get(stats.CounterMoves))
		logU := math.Log2(float64(u))
		bound := 64 * float64(u) * (float64(m) / float64(w)) * logU * logU
		if moves > bound {
			t.Fatalf("n=%d: moves %.0f exceed generous bound %.0f", n, moves, bound)
		}
	}
}

func TestDescentObserver(t *testing.T) {
	tr, ids := newPathTree(t, 300)
	var totalEntered int64
	c := ctl.NewCore(tr, 1024, 1<<20, 1, ctl.WithDescentObserver(
		func(size int64, path []tree.NodeID) {
			totalEntered += size * int64(len(path))
		}))
	if _, err := c.Submit(ctl.Request{Node: ids[len(ids)-1], Kind: tree.None}); err != nil {
		t.Fatal(err)
	}
	moves := c.Counters().Get(stats.CounterMoves)
	if totalEntered == 0 {
		t.Fatal("descent observer saw nothing")
	}
	// Every move of a size-s package over one edge enters one node, so
	// Σ size·|path| ≥ moves (sizes ≥ 1).
	if totalEntered < moves {
		t.Fatalf("entered %d < moves %d", totalEntered, moves)
	}
}

func TestOutcomeString(t *testing.T) {
	if ctl.Granted.String() != "granted" || ctl.Rejected.String() != "rejected" ||
		ctl.WouldReject.String() != "would-reject" {
		t.Fatal("Outcome.String mismatch")
	}
}
