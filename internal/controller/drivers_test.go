package controller_test

import (
	"errors"
	"math"
	"testing"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func drainUntilReject(t *testing.T, sub workload.Submitter, gen workload.Generator, cap int) (granted, rejected int) {
	t.Helper()
	for i := 0; i < cap; i++ {
		req, ok := gen.Next()
		if !ok {
			t.Fatal("generator dried up")
		}
		g, err := sub.Submit(req)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		switch g.Outcome {
		case ctl.Granted:
			granted++
		case ctl.Rejected:
			rejected++
			return granted, rejected
		}
	}
	return granted, rejected
}

func TestIteratedSafetyAndLiveness(t *testing.T) {
	for _, tc := range []struct {
		name string
		m, w int64
	}{
		{"w-zero", 25, 0},
		{"w-small", 64, 3},
		{"w-half", 64, 32},
		{"w-large", 200, 150},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, _ := tree.New()
			if err := workload.BuildBalanced(tr, 30, 4); err != nil {
				t.Fatal(err)
			}
			u := int64(tr.Size()) + tc.m + 16
			it := ctl.NewIterated(tr, u, tc.m, tc.w)
			gen := workload.NewChurn(tr, workload.EventOnlyMix(), 21)
			granted, _ := drainUntilReject(t, it, gen, int(tc.m)*4+100)
			if int64(granted) > tc.m {
				t.Fatalf("granted %d > M=%d", granted, tc.m)
			}
			if int64(granted) < tc.m-tc.w {
				t.Fatalf("granted %d < M−W=%d", granted, tc.m-tc.w)
			}
			if tc.w == 0 && int64(granted) != tc.m {
				t.Fatalf("W=0 must grant exactly M=%d, got %d", tc.m, granted)
			}
		})
	}
}

func TestIteratedIterationsBounded(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 20, 9); err != nil {
		t.Fatal(err)
	}
	const m = 1 << 12
	it := ctl.NewIterated(tr, int64(tr.Size())+m+16, m, 1)
	gen := workload.NewChurn(tr, workload.EventOnlyMix(), 5)
	drainUntilReject(t, it, gen, m*2+100)
	// O(log M/(W+1)) iterations: log2(4096/2) = 11, allow slack.
	if got := it.Iterations(); got > 11+4 {
		t.Fatalf("iterations = %d, want O(log M/(W+1)) ≈ 11", got)
	}
	if got := it.Iterations(); got < 2 {
		t.Fatalf("iterations = %d; waste-halving should iterate", got)
	}
}

func TestIteratedTerminating(t *testing.T) {
	tr, root := tree.New()
	const m = 12
	it := ctl.NewIterated(tr, 64, m, 4, ctl.AsTerminating())
	granted := 0
	for i := 0; i < 100; i++ {
		g, err := it.Submit(ctl.Request{Node: root, Kind: tree.None})
		if errors.Is(err, ctl.ErrTerminated) {
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if g.Outcome == ctl.Granted {
			granted++
		}
	}
	if !it.Terminated() {
		t.Fatal("expected termination")
	}
	if granted < m-4 || granted > m {
		t.Fatalf("granted %d outside [M−W, M] = [%d, %d]", granted, m-4, m)
	}
	// Post-termination submits keep failing.
	if _, err := it.Submit(ctl.Request{Node: root, Kind: tree.None}); !errors.Is(err, ctl.ErrTerminated) {
		t.Fatalf("post-termination err = %v, want ErrTerminated", err)
	}
}

func TestIteratedTopologicalChurn(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 40, 7); err != nil {
		t.Fatal(err)
	}
	const m = 300
	u := int64(tr.Size()) + m + 16
	it := ctl.NewIterated(tr, u, m, 10)
	gen := workload.NewChurn(tr, workload.DefaultMix(), 77)
	granted, _ := drainUntilReject(t, it, gen, m*4)
	if granted < m-10 || granted > m {
		t.Fatalf("granted %d outside [%d, %d]", granted, m-10, m)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree validate after churn: %v", err)
	}
}

func TestIteratedMoveComplexityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep up to n=1024; skipped in -short")
	}
	// Obs 3.4: moves = O(U·log²U·log(M/(W+1))). The per-U normalized cost
	// should grow no faster than log²U (allow generous slack by asserting
	// the growth exponent of moves vs U stays well below 1.5).
	var series stats.Series
	for _, n := range []int{64, 128, 256, 512, 1024} {
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, n, 3); err != nil {
			t.Fatal(err)
		}
		m := int64(2 * n)
		u := int64(n) + m + 16
		counters := stats.NewCounters()
		it := ctl.NewIterated(tr, u, m, 0, ctl.WithIteratedCounters(counters))
		gen := workload.NewChurn(tr, workload.EventOnlyMix(), 123)
		drainUntilReject(t, it, gen, int(m)*4)
		series.Append(float64(u), float64(counters.Get(stats.CounterMoves)))
	}
	exp := series.GrowthExponent()
	if math.IsNaN(exp) || exp > 1.8 {
		t.Fatalf("moves grow with exponent %.2f vs U; want near-linear (≤1.8)", exp)
	}
}

func TestDynamicGrowAndShrink(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 16, 2); err != nil {
		t.Fatal(err)
	}
	const m = 2000
	d := ctl.NewDynamic(tr, m, 50)
	gen := workload.NewChurn(tr, workload.DefaultMix(), 31)
	granted, _ := drainUntilReject(t, d, gen, m*4)
	if granted > m {
		t.Fatalf("granted %d > M", granted)
	}
	if granted < m-50 {
		t.Fatalf("granted %d < M−W = %d", granted, m-50)
	}
	if d.Iterations() < 2 {
		t.Fatalf("iterations = %d; the unknown-U driver should restart as the tree grows", d.Iterations())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestDynamicPolicyDoubleMaxN(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 8, 6); err != nil {
		t.Fatal(err)
	}
	const m = 1500
	d := ctl.NewDynamic(tr, m, 20, ctl.WithPolicy(ctl.PolicyDoubleMaxN))
	gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 80, Event: 20}, 13)
	granted, _ := drainUntilReject(t, d, gen, m*4)
	if granted > m || granted < m-20 {
		t.Fatalf("granted %d outside [%d, %d]", granted, m-20, m)
	}
	if d.Iterations() < 2 {
		t.Fatalf("iterations = %d; growth should double the node count", d.Iterations())
	}
}

func TestDynamicTerminating(t *testing.T) {
	tr, root := tree.New()
	const m = 40
	d := ctl.NewDynamic(tr, m, 5, ctl.DynamicTerminating())
	granted := 0
	for i := 0; i < 400; i++ {
		g, err := d.Submit(ctl.Request{Node: root, Kind: tree.AddLeaf})
		if errors.Is(err, ctl.ErrTerminated) {
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if g.Outcome == ctl.Granted {
			granted++
		}
	}
	if !d.Terminated() {
		t.Fatal("expected termination")
	}
	if granted < m-5 || granted > m {
		t.Fatalf("granted %d outside [%d, %d]", granted, m-5, m)
	}
}

func TestDynamicAmortizedCostPerChange(t *testing.T) {
	if testing.Short() {
		t.Skip("needs >1000 topological changes to amortize; skipped in -short")
	}
	// Theorem 3.5(1): moves = O(n₀log²n₀ + Σ_j log²n_j). With n bounded by
	// nMax during the run, moves per topological change should be
	// O(log²nMax); assert with a generous constant.
	tr, _ := tree.New()
	const n0 = 64
	if err := workload.BuildBalanced(tr, n0, 5); err != nil {
		t.Fatal(err)
	}
	const m = 6000
	counters := stats.NewCounters()
	d := ctl.NewDynamic(tr, m, 0, ctl.WithDynamicCounters(counters))
	gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 35, RemoveLeaf: 25, AddInternal: 20, RemoveInternal: 20}, 44)
	gen.SetMinSize(8)
	drainUntilReject(t, d, gen, m*4)
	changes := counters.Get(stats.CounterTopoChanges)
	if changes < 1000 {
		t.Fatalf("only %d changes; workload too small to amortize", changes)
	}
	moves := counters.Get(stats.CounterMoves)
	logN := math.Log2(float64(2 * m))
	perChange := float64(moves) / float64(changes)
	bound := 96 * logN * logN
	if perChange > bound {
		t.Fatalf("amortized moves/change = %.1f exceeds %.1f (≈96·log²n)", perChange, bound)
	}
}
