package majority_test

import (
	"errors"
	"math/rand"
	"testing"

	"dynctrl/internal/majority"
	"dynctrl/internal/tree"
)

func TestMajorityCommitsAtThreshold(t *testing.T) {
	const population = 100
	p, tr, err := majority.New(population, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Decided() {
		t.Fatal("must not decide before any join")
	}
	parents := []tree.NodeID{tr.Root()}
	rng := rand.New(rand.NewSource(1))
	joins := 0
	for !p.Decided() {
		parent := parents[rng.Intn(len(parents))]
		id, err := p.Join(parent)
		if errors.Is(err, majority.ErrCommitted) {
			break
		}
		if err != nil {
			t.Fatalf("join %d: %v", joins, err)
		}
		joins++
		parents = append(parents, id)
		if joins > population {
			t.Fatal("never committed")
		}
	}
	if !p.Decided() {
		t.Fatal("expected commitment")
	}
	if joins != population/2 {
		t.Fatalf("committed after %d joins, want %d", joins, population/2)
	}
	// Strict majority: root + joiners > P/2.
	if p.Awake() <= population/2 {
		t.Fatalf("awake %d is not a majority of %d", p.Awake(), population)
	}
	// Post-commit joins are refused.
	if _, err := p.Join(tr.Root()); !errors.Is(err, majority.ErrCommitted) {
		t.Fatalf("post-commit join err = %v", err)
	}
}

func TestMajorityWithDepartures(t *testing.T) {
	const population = 60
	p, tr, err := majority.New(population, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Half the needed joiners arrive, some leave again; votes stay cast.
	var members []tree.NodeID
	for i := 0; i < population/4; i++ {
		id, err := p.Join(tr.Root())
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		members = append(members, id)
	}
	for i := 0; i < len(members)/2; i++ {
		if err := p.Leave(members[i]); err != nil {
			t.Fatalf("leave: %v", err)
		}
	}
	if p.Decided() {
		t.Fatal("must not decide before threshold")
	}
	// The remaining joins complete the majority regardless of departures.
	for !p.Decided() {
		if _, err := p.Join(tr.Root()); err != nil && !errors.Is(err, majority.ErrCommitted) {
			t.Fatalf("join: %v", err)
		}
	}
	if p.Joins() != population/2 {
		t.Fatalf("joins = %d, want %d", p.Joins(), population/2)
	}
}

func TestMajorityMinorityNeverCommits(t *testing.T) {
	const population = 40
	p, tr, err := majority.New(population, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < population/2-1; i++ {
		if _, err := p.Join(tr.Root()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	if p.Decided() {
		t.Fatal("committed with only a minority awake")
	}
}

func TestMajorityValidation(t *testing.T) {
	if _, _, err := majority.New(1, 4); err == nil {
		t.Fatal("population 1 should be rejected")
	}
	p, tr, err := majority.New(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Leave(tr.Root()); err == nil {
		t.Fatal("removing the root should fail")
	}
	if p.Messages() < 0 {
		t.Fatal("message accounting broken")
	}
}
