// Package majority implements asynchronous majority commitment over a
// dynamically changing network, the application that originally motivated
// size estimation (Bar-Yehuda and Kutten; Section 1.3 of the paper).
//
// A population of P entities exists; initially only the root is awake.
// Entities wake up over time and join the spanning tree gracefully: each
// join is a controlled AddLeaf admitted by a terminating
// (⌊P/2⌋, 0)-controller. Because W = 0, the controller terminates exactly
// when ⌊P/2⌋ joins have been granted, so its termination signal tells the
// root — without any global snapshot or per-event notification — that a
// strict majority of the population (the root plus ⌊P/2⌋ joiners) has
// participated. At that point the root commits.
//
// Members may also leave gracefully before commitment. A vote, once cast,
// is not un-cast: departures go through a separate departure controller
// and do not refund the join count (the committing quantity is "entities
// that ever participated", as in fault-tolerant majority commitment). The
// generalization this paper enables is that such departures — and internal
// joins — proceed under the same controlled dynamic model without
// disturbing the count.
package majority

import (
	"errors"
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Errors reported by the protocol.
var (
	// ErrCommitted is returned for membership changes attempted after
	// the root committed (the decision is final).
	ErrCommitted = errors.New("majority: already committed")
	// ErrBudget is returned when the departure budget is exhausted.
	ErrBudget = errors.New("majority: departure budget exhausted")
)

// Protocol is one majority-commitment instance.
type Protocol struct {
	tr         *tree.Tree
	rt         sim.Runtime
	population int
	counters   *stats.Counters

	joinCtl   *dist.Iterated
	leaveCtl  *dist.Iterated
	joins     int
	threshold int
	committed bool
}

// New starts a majority-commitment protocol over a population of the given
// size. The returned tree contains only the (awake) root.
func New(population int, seed int64) (*Protocol, *tree.Tree, error) {
	if population < 2 {
		return nil, nil, fmt.Errorf("majority: population %d < 2", population)
	}
	tr, _ := tree.New()
	rt := sim.NewDeterministic(seed)
	counters := stats.NewCounters()
	threshold := population / 2
	u := int64(2*population) + 8
	return &Protocol{
		tr:         tr,
		rt:         rt,
		population: population,
		counters:   counters,
		joinCtl:    dist.NewIterated(tr, rt, u, int64(threshold), 0, true, counters),
		leaveCtl:   dist.NewIterated(tr, rt, u, int64(population), 0, true, counters),
		threshold:  threshold,
	}, tr, nil
}

// Join wakes one entity, attaching it under parent, and returns the new
// node's id. The join that reaches the majority threshold commits the root.
func (p *Protocol) Join(parent tree.NodeID) (tree.NodeID, error) {
	if p.committed {
		return tree.InvalidNode, ErrCommitted
	}
	g, err := p.joinCtl.Submit(controller.Request{Node: parent, Kind: tree.AddLeaf})
	if errors.Is(err, controller.ErrTerminated) {
		// All ⌊P/2⌋ join permits were granted earlier; the termination
		// signal has reached the root (W = 0 makes the count exact).
		p.committed = true
		return tree.InvalidNode, ErrCommitted
	}
	if err != nil {
		return tree.InvalidNode, err
	}
	if g.Outcome != controller.Granted {
		return tree.InvalidNode, fmt.Errorf("majority: join not granted (%v)", g.Outcome)
	}
	p.joins++
	if p.joins >= p.threshold {
		p.committed = true
	}
	return g.NewNode, nil
}

// Leave gracefully removes a leaf member before commitment.
func (p *Protocol) Leave(id tree.NodeID) error {
	if p.committed {
		return ErrCommitted
	}
	g, err := p.leaveCtl.Submit(controller.Request{Node: id, Kind: tree.RemoveLeaf})
	if errors.Is(err, controller.ErrTerminated) {
		return ErrBudget
	}
	if err != nil {
		return err
	}
	if g.Outcome != controller.Granted {
		return fmt.Errorf("majority: leave not granted (%v)", g.Outcome)
	}
	return nil
}

// Decided reports whether the root has committed.
func (p *Protocol) Decided() bool { return p.committed }

// Joins returns the number of entities that have joined (votes cast).
func (p *Protocol) Joins() int { return p.joins }

// Awake returns the current number of tree members.
func (p *Protocol) Awake() int { return p.tr.Size() }

// Messages returns the total messages spent so far.
func (p *Protocol) Messages() int64 {
	return dist.TotalMessages(p.rt, p.counters)
}

// Counters returns the shared counters.
func (p *Protocol) Counters() *stats.Counters { return p.counters }
