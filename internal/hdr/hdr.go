// Package hdr is a minimal HDR-style latency histogram: fixed log-linear
// buckets (64 linear sub-buckets per power of two, <=1.6% relative error)
// over the full int64 nanosecond range, constant memory, no allocation on
// the record path. It exists so open-loop load generation can report
// coordinated-omission-safe quantiles (p50/p99/p999) without pulling in an
// external histogram dependency.
//
// A Histogram is not safe for concurrent use; concurrent recorders keep
// one each and Merge them.
package hdr

import "math/bits"

const (
	// subBits fixes the linear resolution: 1<<subBits sub-buckets per
	// power of two, so the relative quantization error is at most
	// 1/(1<<subBits) (1.6% at 6 bits) — the usual "2-3 significant
	// figures" HDR configuration.
	subBits  = 6
	subCount = 1 << subBits
	// expCount covers every int64 magnitude: values below subCount are
	// exact in exponent row 0, every wider magnitude gets its own row.
	expCount = 64 - subBits + 1
)

// Histogram counts int64 samples (nanoseconds, by convention) in
// log-linear buckets.
type Histogram struct {
	counts [expCount][subCount]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{min: -1} }

// bucket maps a positive value to its (exponent row, linear sub-bucket).
func bucket(v int64) (int, int) {
	if v < subCount {
		return 0, int(v)
	}
	e := bits.Len64(uint64(v)) // e > subBits: 2^(e-1) <= v < 2^e
	shift := uint(e - 1 - subBits)
	return e - subBits, int((uint64(v) - 1<<uint(e-1)) >> shift)
}

// value returns the representative (bucket-midpoint) sample of a bucket;
// the inverse of bucket up to the quantization error.
func value(exp, sub int) int64 {
	if exp == 0 {
		return int64(sub)
	}
	width := int64(1) << uint(exp-1)
	return int64(1)<<uint(exp-1+subBits) + int64(sub)*width + width/2
}

// Record adds one sample. Non-positive samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	e, s := bucket(v)
	h.counts[e][s]++
	h.total++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for e := range o.counts {
		for s, n := range o.counts[e] {
			h.counts[e][s] += n
		}
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if h.min < 0 || (o.min >= 0 && o.min < h.min) {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Sum returns the exact sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the q-quantile (q in [0,1]) as a representative bucket
// value, clamped to the exact observed extremes so Quantile(0) == Min and
// Quantile(1) == Max. Empty histograms report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum int64
	for e := range h.counts {
		for s, n := range h.counts[e] {
			cum += n
			if cum >= rank {
				v := value(e, s)
				if v > h.max {
					v = h.max
				}
				if v < h.Min() {
					v = h.Min()
				}
				return v
			}
		}
	}
	return h.max
}
