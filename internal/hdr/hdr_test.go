package hdr

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBucketRoundTrip(t *testing.T) {
	// The representative value of a sample's bucket must be within the
	// configured relative error (1/subCount) of the sample itself.
	for _, v := range []int64{0, 1, 5, 63, 64, 65, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1 << 62} {
		e, s := bucket(v)
		rep := value(e, s)
		diff := rep - v
		if diff < 0 {
			diff = -diff
		}
		bound := v/subCount + 1
		if diff > bound {
			t.Errorf("value %d: representative %d off by %d (> %d)", v, rep, diff, bound)
		}
	}
}

func TestQuantilesAgainstExactSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New()
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform-ish spread over 1ns..10s, the realistic latency range.
		v := int64(1) << uint(rng.Intn(34))
		v += rng.Int63n(v + 1)
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		// Within the log-linear quantization error of the exact value.
		lo := exact - exact/16 - 1
		hi := exact + exact/16 + 1
		if got < lo || got > hi {
			t.Errorf("q=%v: histogram %d, exact %d (allowed [%d,%d])", q, got, exact, lo, hi)
		}
	}
	if h.Count() != int64(len(samples)) {
		t.Errorf("count %d, want %d", h.Count(), len(samples))
	}
	if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
		t.Errorf("min/max %d/%d, want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
	}
}

func TestMergeEqualsSingleRecorder(t *testing.T) {
	a, b, all := New(), New(), New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatalf("merge mismatch: %d/%d/%d/%v vs %d/%d/%d/%v",
			a.Count(), a.Min(), a.Max(), a.Mean(), all.Count(), all.Min(), all.Max(), all.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q=%v: merged %d, single %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestEmptyAndClamp(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamped to 0
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	h.Merge(nil) // no-op
	if h.Count() != 1 {
		t.Fatal("Merge(nil) changed the histogram")
	}
}
