package sim_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
)

func TestDeterministicDeliversAll(t *testing.T) {
	rt := sim.NewDeterministic(1)
	var got []int
	rt.SetHandler(func(m sim.Message) {
		got = append(got, m.Payload.(int))
	})
	for i := 0; i < 50; i++ {
		rt.Send(1, 2, i)
	}
	rt.Drain()
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	if rt.Messages() != 50 {
		t.Fatalf("Messages() = %d, want 50", rt.Messages())
	}
}

func TestDeterministicReproducible(t *testing.T) {
	order := func(seed int64) []int {
		rt := sim.NewDeterministic(seed)
		var got []int
		rt.SetHandler(func(m sim.Message) { got = append(got, m.Payload.(int)) })
		for i := 0; i < 30; i++ {
			rt.Send(1, 2, i)
		}
		rt.Drain()
		return got
	}
	a := order(7)
	b := order(7)
	c := order(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce same delivery order")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should shuffle differently")
	}
}

func TestDeterministicHandlerMaySend(t *testing.T) {
	rt := sim.NewDeterministic(2)
	count := 0
	rt.SetHandler(func(m sim.Message) {
		count++
		if v := m.Payload.(int); v > 0 {
			rt.Send(m.To, m.From, v-1)
		}
	})
	rt.Send(1, 2, 10)
	rt.Drain()
	if count != 11 {
		t.Fatalf("delivered %d, want 11 (chain of sends)", count)
	}
}

func TestDeterministicInFlightTo(t *testing.T) {
	rt := sim.NewDeterministic(3)
	rt.SetHandler(func(m sim.Message) {})
	rt.Send(1, 5, "x")
	rt.Send(2, 5, "y")
	rt.Send(1, 6, "z")
	if got := rt.InFlightTo(tree.NodeID(5)); got != 2 {
		t.Fatalf("InFlightTo(5) = %d, want 2", got)
	}
	rt.Drain()
	if got := rt.InFlightTo(tree.NodeID(5)); got != 0 {
		t.Fatalf("after drain InFlightTo(5) = %d, want 0", got)
	}
}

func TestConcurrentDeliversAll(t *testing.T) {
	rt := sim.NewConcurrent(8)
	var count atomic.Int64
	rt.SetHandler(func(m sim.Message) { count.Add(1) })
	for i := 0; i < 500; i++ {
		rt.Send(1, 2, i)
	}
	rt.Drain()
	if got := count.Load(); got != 500 {
		t.Fatalf("delivered %d of 500", got)
	}
	if rt.Messages() != 500 {
		t.Fatalf("Messages() = %d, want 500", rt.Messages())
	}
}

func TestConcurrentHandlerChains(t *testing.T) {
	rt := sim.NewConcurrent(4)
	var count atomic.Int64
	rt.SetHandler(func(m sim.Message) {
		count.Add(1)
		if v := m.Payload.(int); v > 0 {
			rt.Send(m.To, m.From, v-1)
		}
	})
	for i := 0; i < 20; i++ {
		rt.Send(1, 2, 25)
	}
	rt.Drain()
	if got := count.Load(); got != 20*26 {
		t.Fatalf("delivered %d, want %d", got, 20*26)
	}
}

func TestConcurrentHandlersSerialized(t *testing.T) {
	// The runtime promises handlers never run concurrently.
	rt := sim.NewConcurrent(8)
	var inside atomic.Int64
	violated := atomic.Bool{}
	rt.SetHandler(func(m sim.Message) {
		if inside.Add(1) != 1 {
			violated.Store(true)
		}
		inside.Add(-1)
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rt.Send(tree.NodeID(base), 2, j)
			}
		}(i + 1)
	}
	wg.Wait()
	rt.Drain()
	if violated.Load() {
		t.Fatal("handlers ran concurrently")
	}
}

func TestConcurrentDrainQuiescesEmpty(t *testing.T) {
	rt := sim.NewConcurrent(4)
	rt.SetHandler(func(m sim.Message) {})
	rt.Drain() // no messages: must return promptly
	if rt.Messages() != 0 {
		t.Fatal("no messages should have been delivered")
	}
}
