package sim

import (
	"fmt"
	"math/rand"

	"dynctrl/internal/tree"
)

// Scheduler decides the delivery order of the single-threaded adversarial
// runtime. It assigns every message a delivery priority at send time; the
// Scheduled runtime always delivers the queued message with the smallest
// priority, breaking ties in send order. Because a scheduler sees each
// message exactly once and draws randomness only from its own seeded source,
// every schedule is reproducible from the (scheduler, seed) pair alone.
//
// The catalog:
//
//   - FIFO: send order (the most benign schedule; the baseline).
//   - LIFO: newest message first, which drives protocol waves depth-first
//     and maximally against their natural breadth-first order.
//   - Random: uniformly random interleaving (the classic adversary; this is
//     what NewDeterministic has always provided).
//   - LinkDelay: every tree edge gets a fixed pseudo-random latency plus
//     per-message jitter, modeling heterogeneous slow links that reorder
//     traffic across links but rarely within one.
//   - Window: bounded-burst delivery; messages are delivered in bursts of w
//     consecutive sends, randomly permuted within each burst, modeling a
//     network that reorders at most w messages.
//
// Node crash/recovery is not a transport concern: the paper's model only
// removes a node after its whiteboard is handed to its parent (graceful
// deletion), so crash/recovery faults are injected at the workload layer
// (workload.FaultSpec) as adversarial deletion/re-insertion requests that
// exercise precisely that handoff.
type Scheduler interface {
	// Name identifies the scheduler in scenario reports and CLIs.
	Name() string
	// Priority returns the delivery priority of a message. It is called
	// exactly once per Send, in send order; seq is the message's 0-based
	// send sequence number. Lower priorities deliver first.
	Priority(m Message, seq int64) int64
}

// FIFO returns the first-in-first-out scheduler.
func FIFO() Scheduler { return fifoSched{} }

type fifoSched struct{}

func (fifoSched) Name() string                        { return "fifo" }
func (fifoSched) Priority(_ Message, seq int64) int64 { return seq }

// LIFO returns the last-in-first-out scheduler.
func LIFO() Scheduler { return lifoSched{} }

type lifoSched struct{}

func (lifoSched) Name() string                        { return "lifo" }
func (lifoSched) Priority(_ Message, seq int64) int64 { return -seq }

// Random returns the seeded uniformly random interleaving scheduler.
func Random(seed int64) Scheduler {
	return &randomSched{rng: rand.New(rand.NewSource(seed))}
}

type randomSched struct{ rng *rand.Rand }

func (*randomSched) Name() string { return "random" }

func (s *randomSched) Priority(Message, int64) int64 { return s.rng.Int63() }

// LinkDelay returns a scheduler that assigns every (from, to) link a fixed
// pseudo-random base latency in [1, spread] virtual ticks plus per-message
// jitter in [0, spread), against a virtual clock that advances one tick per
// send. spread < 1 is clamped to 1.
func LinkDelay(seed, spread int64) Scheduler {
	if spread < 1 {
		spread = 1
	}
	return &linkDelaySched{
		seed:   seed,
		spread: spread,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

type linkDelaySched struct {
	seed   int64
	spread int64
	rng    *rand.Rand
}

func (*linkDelaySched) Name() string { return "delay" }

func (s *linkDelaySched) Priority(m Message, seq int64) int64 {
	base := int64(splitmix64(uint64(s.seed)^uint64(m.From)*0x9e3779b97f4a7c15^uint64(m.To)*0xbf58476d1ce4e5b9)%uint64(s.spread)) + 1
	return seq + base + s.rng.Int63n(s.spread)
}

// splitmix64 is the standard 64-bit finalizer; it hashes a link endpoint
// pair into a stable per-link latency.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Window returns the bounded-burst scheduler: messages are grouped into
// bursts of window consecutive sends; bursts deliver in order, but the
// messages within one burst are randomly permuted. window < 1 is clamped
// to 1 (which degenerates to FIFO).
func Window(seed, window int64) Scheduler {
	if window < 1 {
		window = 1
	}
	return &windowSched{window: window, rng: rand.New(rand.NewSource(seed))}
}

type windowSched struct {
	window int64
	rng    *rand.Rand
}

func (*windowSched) Name() string { return "window" }

const windowShuffleBits = 20

func (s *windowSched) Priority(_ Message, seq int64) int64 {
	return (seq/s.window)<<windowShuffleBits | s.rng.Int63n(1<<windowShuffleBits)
}

// Scheduled is the single-threaded pluggable-schedule runtime: Send asks the
// Scheduler for the message's priority and Drain repeatedly delivers the
// lowest-priority message until none remain. Like the old Deterministic
// runtime it must be driven from one goroutine (handlers run inside Drain),
// and its heap reuses its backing array across drains so the hot path stays
// allocation-free.
//
// A single message in flight — the protocol's common case, since one agent
// runs at a time — bypasses the scheduler entirely: the message waits in a
// one-slot buffer with no priority assigned, and only when a second message
// joins it do both enter the heap (their Priority calls still happen in
// send order). Scheduling is order-free with one candidate, so this changes
// no observable schedule while keeping the hot path RNG- and sift-free.
type Scheduled struct {
	sched     Scheduler
	handler   Handler
	pending   Message // the buffered singleton, valid when havePending
	pendingAt int64   // its send sequence number
	havePend  bool
	heap      []schedEntry // min-heap on (prio, seq)
	seq       int64
	delivered int64
}

type schedEntry struct {
	m    Message
	prio int64
	seq  int64
}

// NewScheduled returns a runtime delivering in the order chosen by sched.
func NewScheduled(sched Scheduler) *Scheduled {
	return &Scheduled{sched: sched}
}

var _ Runtime = (*Scheduled)(nil)

// SchedulerName returns the name of the installed scheduler.
func (s *Scheduled) SchedulerName() string { return s.sched.Name() }

// SetHandler implements Runtime.
func (s *Scheduled) SetHandler(h Handler) { s.handler = h }

// Send implements Runtime.
func (s *Scheduled) Send(from, to tree.NodeID, payload any) {
	m := Message{From: from, To: to, Payload: payload}
	seq := s.seq
	s.seq++
	if !s.havePend && len(s.heap) == 0 {
		s.pending, s.pendingAt, s.havePend = m, seq, true
		return
	}
	if s.havePend {
		// A second candidate exists: the buffered singleton enters the
		// heap first, keeping the scheduler's Priority calls in send order.
		s.havePend = false
		s.push(s.pending, s.pendingAt)
		s.pending = Message{}
	}
	s.push(m, seq)
}

func (s *Scheduled) push(m Message, seq int64) {
	s.heap = append(s.heap, schedEntry{m: m, prio: s.sched.Priority(m, seq), seq: seq})
	s.siftUp(len(s.heap) - 1)
}

// Drain implements Runtime: it delivers queued messages in priority order
// until none remain.
func (s *Scheduled) Drain() {
	for {
		var m Message
		switch {
		case s.havePend:
			m = s.pending
			s.pending = Message{} // drop payload reference for the GC
			s.havePend = false
		case len(s.heap) > 0:
			m = s.heap[0].m
			last := len(s.heap) - 1
			s.heap[0] = s.heap[last]
			s.heap[last] = schedEntry{} // drop payload reference for the GC
			s.heap = s.heap[:last]
			if last > 0 {
				s.siftDown(0)
			}
		default:
			return
		}
		s.delivered++
		s.handler(m)
	}
}

// Messages implements Runtime.
func (s *Scheduled) Messages() int64 { return s.delivered }

// InFlightTo implements Runtime.
func (s *Scheduled) InFlightTo(id tree.NodeID) int {
	n := 0
	if s.havePend && s.pending.To == id {
		n++
	}
	for i := range s.heap {
		if s.heap[i].m.To == id {
			n++
		}
	}
	return n
}

func (s *Scheduled) less(i, j int) bool {
	if s.heap[i].prio != s.heap[j].prio {
		return s.heap[i].prio < s.heap[j].prio
	}
	return s.heap[i].seq < s.heap[j].seq
}

func (s *Scheduled) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Scheduled) siftDown(i int) {
	n := len(s.heap)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// Deterministic is the seeded random-interleaving runtime: a Scheduled
// runtime with a Random scheduler. The name is kept because random
// interleaving is the repo-wide default transport for reproducible runs.
type Deterministic = Scheduled

// NewDeterministic returns a deterministic random-interleaving runtime with
// the given seed.
func NewDeterministic(seed int64) *Deterministic {
	return NewScheduled(Random(seed))
}

// Default parameters of the named scheduler catalog. Scenario reports
// record only the scheduler name and seed, so the shape parameters are
// fixed here rather than per call site.
const (
	DefaultDelaySpread = 16
	DefaultWindow      = 8
	// DefaultWorkers is the worker count of the named "concurrent" runtime.
	DefaultWorkers = 4
)

// SchedulerNames lists the named schedulers of the catalog, benign first.
func SchedulerNames() []string {
	return []string{"fifo", "lifo", "random", "delay", "window"}
}

// NewScheduler constructs a catalog scheduler by name.
func NewScheduler(name string, seed int64) (Scheduler, error) {
	switch name {
	case "fifo":
		return FIFO(), nil
	case "lifo":
		return LIFO(), nil
	case "random":
		return Random(seed), nil
	case "delay":
		return LinkDelay(seed, DefaultDelaySpread), nil
	case "window":
		return Window(seed, DefaultWindow), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheduler %q (have %v)", name, SchedulerNames())
	}
}

// RuntimeNames lists every named transport: the scheduler catalog plus the
// worker-pool "concurrent" runtime.
func RuntimeNames() []string {
	return append(SchedulerNames(), "concurrent")
}

// NewRuntime constructs a named transport. Every scheduler name yields a
// Scheduled runtime; "concurrent" yields a worker-pool runtime whose
// schedule is decided by the Go scheduler (and is therefore the one
// non-reproducible member of the catalog).
func NewRuntime(name string, seed int64) (Runtime, error) {
	if name == "concurrent" {
		return NewConcurrent(DefaultWorkers), nil
	}
	s, err := NewScheduler(name, seed)
	if err != nil {
		return nil, err
	}
	return NewScheduled(s), nil
}
