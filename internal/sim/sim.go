// Package sim provides the asynchronous message-passing substrate for the
// distributed controller (Section 4 of the paper).
//
// The paper assumes a standard point-to-point asynchronous network: every
// message incurs an arbitrary but finite delay. Two runtime families
// realize this:
//
//   - Scheduled: a single-threaded runtime whose delivery order is decided
//     by a pluggable, seeded Scheduler (see sched.go for the catalog:
//     FIFO, LIFO, random interleaving, per-link delay, bounded bursts).
//     Runs are reproducible from the (scheduler, seed) pair while still
//     exploring adversarial interleavings. Deterministic is the Scheduled
//     runtime with the Random scheduler, the repo-wide default.
//   - Concurrent: worker goroutines deliver messages in parallel; the
//     Go scheduler provides the nondeterminism. Used to validate that the
//     algorithm's correctness does not depend on the delivery schedule.
//
// The runtime does not know about nodes or topology: it moves opaque
// envelopes and counts them (message complexity), delegating all semantics
// to a single handler installed by the distributed controller.
package sim

import (
	"sync"
	"sync/atomic"

	"dynctrl/internal/tree"
)

// Message is one in-flight envelope.
type Message struct {
	From    tree.NodeID
	To      tree.NodeID
	Payload any
}

// Handler processes one delivered message. Handlers may call Runtime.Send
// to emit further messages. The runtime guarantees handlers never run
// concurrently with each other (delivery is serialized), which models the
// paper's "only one agent is active at a node at one time" and keeps the
// controller state free of data races; the Concurrent runtime still
// delivers in scheduler-dependent order.
type Handler func(m Message)

// Runtime is the message transport shared by both schedulers.
type Runtime interface {
	// SetHandler installs the delivery handler. Must be called before
	// any Send.
	SetHandler(h Handler)
	// Send enqueues a message. Safe to call from within handlers.
	Send(from, to tree.NodeID, payload any)
	// Drain delivers messages until none remain in flight.
	Drain()
	// Messages returns the number of messages delivered so far.
	Messages() int64
	// InFlightTo reports how many undelivered messages target id (the
	// graceful-deletion handshake uses this to know an edge is quiet).
	InFlightTo(id tree.NodeID) int
}

// Concurrent delivers messages from a pool of worker goroutines. Handler
// executions are serialized by a dedicated mutex (the semantics require
// atomicity at nodes), but the *order* of deliveries is decided by the Go
// scheduler, so repeated runs explore different asynchronous interleavings.
type Concurrent struct {
	qmu     sync.Mutex
	cond    *sync.Cond
	queue   []Message
	pending int // queued + currently-being-handled messages

	hmu     sync.Mutex // serializes handler executions
	handler Handler

	delivered atomic.Int64
	workers   int
}

// NewConcurrent returns a concurrent runtime with the given worker count
// (minimum 1).
func NewConcurrent(workers int) *Concurrent {
	if workers < 1 {
		workers = 1
	}
	c := &Concurrent{workers: workers}
	c.cond = sync.NewCond(&c.qmu)
	return c
}

var _ Runtime = (*Concurrent)(nil)

// SetHandler implements Runtime.
func (c *Concurrent) SetHandler(h Handler) { c.handler = h }

// Send implements Runtime. Safe for concurrent use, including from within
// handlers.
func (c *Concurrent) Send(from, to tree.NodeID, payload any) {
	c.qmu.Lock()
	c.queue = append(c.queue, Message{From: from, To: to, Payload: payload})
	c.pending++
	c.qmu.Unlock()
	c.cond.Broadcast()
}

// Drain implements Runtime: workers deliver until no messages remain in
// flight or in execution.
func (c *Concurrent) Drain() {
	var wg sync.WaitGroup
	for i := 0; i < c.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c.step() {
			}
		}()
	}
	wg.Wait()
}

// step delivers one message; it returns false when the runtime is
// quiescent (nothing queued, nothing executing).
func (c *Concurrent) step() bool {
	c.qmu.Lock()
	for len(c.queue) == 0 && c.pending > 0 {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		// pending == 0: quiescent; release any other waiting workers.
		c.qmu.Unlock()
		c.cond.Broadcast()
		return false
	}
	last := len(c.queue) - 1
	m := c.queue[last]
	c.queue[last] = Message{} // drop payload reference for the GC
	c.queue = c.queue[:last]
	c.qmu.Unlock()

	c.hmu.Lock()
	c.handler(m)
	c.hmu.Unlock()
	c.delivered.Add(1)

	c.qmu.Lock()
	c.pending--
	quiescent := c.pending == 0 && len(c.queue) == 0
	c.qmu.Unlock()
	if quiescent {
		c.cond.Broadcast()
	}
	return true
}

// Messages implements Runtime.
func (c *Concurrent) Messages() int64 { return c.delivered.Load() }

// InFlightTo implements Runtime. Like the deterministic runtime it scans
// the queue on demand: the query is rare (the graceful-deletion handshake)
// while Send/deliver are the hot path.
func (c *Concurrent) InFlightTo(id tree.NodeID) int {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	n := 0
	for i := range c.queue {
		if c.queue[i].To == id {
			n++
		}
	}
	return n
}
