package sim_test

import (
	"testing"

	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
)

// collectOrder sends n payloads 0..n-1 in one burst and returns the order
// the runtime delivered them in.
func collectOrder(rt sim.Runtime, n int) []int {
	var got []int
	rt.SetHandler(func(m sim.Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < n; i++ {
		rt.Send(tree.NodeID(1+i%4), tree.NodeID(5+i%3), i)
	}
	rt.Drain()
	return got
}

func TestFIFOSchedulerDeliversInSendOrder(t *testing.T) {
	got := collectOrder(sim.NewScheduled(sim.FIFO()), 64)
	for i, v := range got {
		if v != i {
			t.Fatalf("fifo delivered %d at position %d", v, i)
		}
	}
}

func TestLIFOSchedulerDeliversNewestFirst(t *testing.T) {
	got := collectOrder(sim.NewScheduled(sim.LIFO()), 64)
	for i, v := range got {
		if v != 63-i {
			t.Fatalf("lifo delivered %d at position %d", v, i)
		}
	}
}

func TestWindowSchedulerBoundsReordering(t *testing.T) {
	const n, w = 96, 8
	got := collectOrder(sim.NewScheduled(sim.Window(5, w)), n)
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	moved := false
	for i, v := range got {
		if v != i {
			moved = true
		}
		// A message may leave its send position only within its burst.
		if v/w != i/w {
			t.Fatalf("message %d delivered at position %d: escaped its burst of %d", v, i, w)
		}
	}
	if !moved {
		t.Fatal("window scheduler produced the identity order; expected in-burst shuffling")
	}
}

func TestAdversarialSchedulersReproducibleAndDistinct(t *testing.T) {
	mk := func(name string, seed int64) []int {
		rt, err := sim.NewRuntime(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		return collectOrder(rt, 48)
	}
	for _, name := range []string{"random", "delay", "window"} {
		a, b, c := mk(name, 7), mk(name, 7), mk(name, 8)
		if len(a) != 48 || len(b) != 48 || len(c) != 48 {
			t.Fatalf("%s: lost messages: %d/%d/%d", name, len(a), len(b), len(c))
		}
		same, sameOther := true, true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
			if a[i] != c[i] {
				sameOther = false
			}
		}
		if !same {
			t.Fatalf("%s: same seed must reproduce the same schedule", name)
		}
		if sameOther {
			t.Fatalf("%s: seeds 7 and 8 produced identical schedules", name)
		}
	}
}

func TestSchedulersDeliverChainedSends(t *testing.T) {
	for _, name := range sim.SchedulerNames() {
		rt, err := sim.NewRuntime(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		rt.SetHandler(func(m sim.Message) {
			count++
			if v := m.Payload.(int); v > 0 {
				rt.Send(m.To, m.From, v-1)
			}
		})
		rt.Send(1, 2, 10)
		rt.Drain()
		if count != 11 {
			t.Fatalf("%s: delivered %d, want 11 (chain of sends)", name, count)
		}
		if rt.Messages() != 11 {
			t.Fatalf("%s: Messages() = %d, want 11", name, rt.Messages())
		}
	}
}

func TestScheduledInFlightTo(t *testing.T) {
	rt := sim.NewScheduled(sim.LIFO())
	rt.SetHandler(func(m sim.Message) {})
	rt.Send(1, 5, "x")
	rt.Send(2, 5, "y")
	rt.Send(3, 6, "z")
	if got := rt.InFlightTo(5); got != 2 {
		t.Fatalf("InFlightTo(5) = %d, want 2", got)
	}
	if got := rt.InFlightTo(6); got != 1 {
		t.Fatalf("InFlightTo(6) = %d, want 1", got)
	}
	rt.Drain()
	if got := rt.InFlightTo(5); got != 0 {
		t.Fatalf("after drain InFlightTo(5) = %d, want 0", got)
	}
}

func TestNewRuntimeRejectsUnknownName(t *testing.T) {
	if _, err := sim.NewRuntime("carrier-pigeon", 1); err == nil {
		t.Fatal("unknown runtime name must error")
	}
	if len(sim.RuntimeNames()) < 5 {
		t.Fatalf("runtime catalog too small: %v", sim.RuntimeNames())
	}
	for _, name := range sim.RuntimeNames() {
		if _, err := sim.NewRuntime(name, 1); err != nil {
			t.Fatalf("catalog runtime %q: %v", name, err)
		}
	}
}
