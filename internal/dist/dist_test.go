package dist_test

import (
	"errors"
	"fmt"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func buildTree(t *testing.T, n int, seed int64) *tree.Tree {
	t.Helper()
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n, seed); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSafetyAndLivenessUnderChurn drives the waste-halving controller with
// adversarial churn across parameters and seeds: at no point may more than
// M permits be granted (safety), and at the first reject at least M−W must
// have been granted (liveness). After exhaustion every request is rejected.
func TestSafetyAndLivenessUnderChurn(t *testing.T) {
	cases := []struct {
		name string
		n    int
		m, w int64
		mix  workload.Mix
	}{
		{"tight-waste", 24, 200, 1, workload.DefaultMix()},
		{"half-waste", 24, 200, 100, workload.DefaultMix()},
		{"zero-waste", 16, 120, 0, workload.DefaultMix()},
		{"shrink-heavy", 32, 150, 30, workload.ShrinkHeavyMix()},
		{"grow-only", 8, 100, 25, workload.GrowOnlyMix()},
		{"events-only", 20, 90, 10, workload.EventOnlyMix()},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				tr := buildTree(t, tc.n, seed)
				rt := sim.NewDeterministic(seed)
				it := dist.NewIterated(tr, rt, int64(tc.n)+2*tc.m, tc.m, tc.w, false, stats.NewCounters())
				gen := workload.NewChurn(tr, tc.mix, seed+100)
				gen.SetMinSize(tc.n/4 + 1)

				rejected := false
				for i := 0; i < int(tc.m)*6; i++ {
					req, ok := gen.Next()
					if !ok {
						break
					}
					g, err := it.Submit(req)
					if err != nil {
						t.Fatalf("submit %d: %v", i, err)
					}
					if it.Granted() > tc.m {
						t.Fatalf("SAFETY: granted %d > M=%d", it.Granted(), tc.m)
					}
					if g.Outcome == controller.Rejected {
						rejected = true
						break
					}
				}
				if !rejected {
					t.Fatalf("budget never exhausted (granted %d of %d)", it.Granted(), tc.m)
				}
				if it.Granted() < tc.m-tc.w {
					t.Fatalf("LIVENESS: granted %d < M−W = %d", it.Granted(), tc.m-tc.w)
				}
				// Exhaustion is final: every later request is rejected.
				for i := 0; i < 16; i++ {
					req, ok := gen.Next()
					if !ok {
						break
					}
					g, err := it.Submit(req)
					if err != nil {
						t.Fatalf("post-reject submit: %v", err)
					}
					if g.Outcome != controller.Rejected {
						t.Fatalf("post-reject outcome = %v, want Rejected", g.Outcome)
					}
				}
			})
		}
	}
}

// TestTerminatingRejectsAfterTermination checks the terminating variant:
// the first unfundable request returns ErrTerminated, and so does every
// later one, without granting further permits.
func TestTerminatingRejectsAfterTermination(t *testing.T) {
	tr := buildTree(t, 12, 7)
	rt := sim.NewDeterministic(7)
	counters := stats.NewCounters()
	term := dist.NewTerminating(tr, rt, 64, 20, 5, counters)

	root := tr.Root()
	var granted int64
	for i := 0; i < 64; i++ {
		_, err := term.Submit(controller.Request{Node: root, Kind: tree.None})
		if errors.Is(err, dist.ErrTerminated) {
			break
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		granted++
	}
	if !term.Terminated() {
		t.Fatal("controller never terminated")
	}
	if granted != term.Granted() {
		t.Fatalf("driver granted %d, core granted %d", granted, term.Granted())
	}
	if granted > 20 || granted < 15 {
		t.Fatalf("granted %d outside [M−W, M] = [15, 20]", granted)
	}
	for i := 0; i < 8; i++ {
		if _, err := term.Submit(controller.Request{Node: root, Kind: tree.None}); !errors.Is(err, dist.ErrTerminated) {
			t.Fatalf("post-termination submit %d: err = %v, want ErrTerminated", i, err)
		}
	}
	if term.Granted() != granted {
		t.Fatalf("granted moved after termination: %d -> %d", granted, term.Granted())
	}
}

// TestCoreMatchesCentralized replays identical traces through the
// centralized controller.Core and the distributed dist.Core: the grant and
// reject sequences must be bitwise identical (same outcomes, serials and
// created node ids), the permit accounting must agree, and the delivered
// message count must stay within a constant factor of the centralized move
// count (Lemma 4.5 / Theorem 4.7).
func TestCoreMatchesCentralized(t *testing.T) {
	cases := []struct {
		n    int
		m, w int64
		mix  workload.Mix
		seed int64
	}{
		{32, 256, 128, workload.DefaultMix(), 1},
		{64, 512, 256, workload.DefaultMix(), 2},
		{48, 300, 60, workload.ShrinkHeavyMix(), 3},
		{24, 200, 100, workload.GrowOnlyMix(), 4},
		{1, 64, 32, workload.DefaultMix(), 5},
		{40, 128, 1, workload.EventOnlyMix(), 6},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n%d-m%d-w%d-seed%d", tc.n, tc.m, tc.w, tc.seed), func(t *testing.T) {
			u := int64(tc.n) + 2*tc.m
			trC := buildTree(t, tc.n, tc.seed)
			trD := buildTree(t, tc.n, tc.seed)
			cenCounters := stats.NewCounters()
			cen := controller.NewCore(trC, u, tc.m, tc.w, controller.WithCounters(cenCounters))
			rt := sim.NewDeterministic(tc.seed)
			core := dist.NewCore(trD, rt, u, tc.m, tc.w)
			sub := dist.NewSubmitter(core, rt)
			genC := workload.NewChurn(trC, tc.mix, tc.seed+50)
			genD := workload.NewChurn(trD, tc.mix, tc.seed+50)
			genC.SetMinSize(tc.n/4 + 1)
			genD.SetMinSize(tc.n/4 + 1)

			steps := int(tc.m) * 4
			if testing.Short() {
				// The equivalence holds on every trace prefix; a shorter
				// replay keeps -short fast.
				steps = int(tc.m)
			}
			for i := 0; i < steps; i++ {
				reqC, okC := genC.Next()
				reqD, okD := genD.Next()
				if okC != okD {
					t.Fatalf("step %d: generators diverged", i)
				}
				if !okC {
					break
				}
				if reqC != reqD {
					t.Fatalf("step %d: requests diverged: %+v vs %+v", i, reqC, reqD)
				}
				gC, errC := cen.Submit(reqC)
				gD, errD := sub.Submit(reqD)
				if (errC == nil) != (errD == nil) {
					t.Fatalf("step %d: error divergence: centralized %v, dist %v", i, errC, errD)
				}
				if errC != nil {
					continue
				}
				if gC != gD {
					t.Fatalf("step %d: grant divergence: centralized %+v, dist %+v", i, gC, gD)
				}
			}
			if cen.Granted() != core.Granted() || cen.Rejected() != core.Rejected() {
				t.Fatalf("tallies diverged: centralized %d/%d, dist %d/%d",
					cen.Granted(), cen.Rejected(), core.Granted(), core.Rejected())
			}
			if cen.Storage() != core.Storage() || cen.UnusedPermits() != core.UnusedPermits() {
				t.Fatalf("permit accounting diverged: storage %d vs %d, unused %d vs %d",
					cen.Storage(), core.Storage(), cen.UnusedPermits(), core.UnusedPermits())
			}
			if trC.Size() != trD.Size() || trC.EverExisted() != trD.EverExisted() {
				t.Fatalf("trees diverged: %d/%d vs %d/%d nodes",
					trC.Size(), trC.EverExisted(), trD.Size(), trD.EverExisted())
			}

			moves := cenCounters.Get(stats.CounterMoves)
			msgs := dist.TotalMessages(rt, core.Counters())
			if msgs < moves {
				t.Fatalf("messages %d below centralized moves %d: descent accounting broken", msgs, moves)
			}
			// The climb to a filler never exceeds the descent it triggers,
			// so messages ≤ 2·moves plus one root climb for the reject
			// decision (Lemma 4.5).
			if bound := 3*moves + int64(4*trD.EverExisted()) + 64; msgs > bound {
				t.Fatalf("messages %d exceed constant-factor bound %d (moves %d)", msgs, bound, moves)
			}
		})
	}
}

// TestSerialsMatchCentralized runs both cores with explicit permit serials
// (the name-assignment configuration) and checks the granted serial numbers
// coincide request for request.
func TestSerialsMatchCentralized(t *testing.T) {
	const n, m, w = 16, 64, 16
	u := int64(n) + 2*m
	serials := pkgstore.Interval{Lo: 1000, Hi: 1000 + m - 1}
	trC := buildTree(t, n, 9)
	trD := buildTree(t, n, 9)
	cen := controller.NewCore(trC, u, m, w, controller.WithSerials(serials))
	rt := sim.NewDeterministic(9)
	core := dist.NewCore(trD, rt, u, m, w, dist.WithSerials(serials))
	sub := dist.NewSubmitter(core, rt)
	genC := workload.NewChurn(trC, workload.GrowOnlyMix(), 77)
	genD := workload.NewChurn(trD, workload.GrowOnlyMix(), 77)

	for i := 0; i < m; i++ {
		reqC, ok := genC.Next()
		if !ok {
			break
		}
		reqD, _ := genD.Next()
		gC, errC := cen.Submit(reqC)
		gD, errD := sub.Submit(reqD)
		if (errC == nil) != (errD == nil) {
			t.Fatalf("step %d: error divergence: %v vs %v", i, errC, errD)
		}
		if errC != nil {
			break
		}
		if gC.Serial != gD.Serial {
			t.Fatalf("step %d: serial %d (centralized) vs %d (dist)", i, gC.Serial, gD.Serial)
		}
		if gC.Outcome == controller.Granted && gC.Serial < serials.Lo {
			t.Fatalf("step %d: granted serial %d below interval", i, gC.Serial)
		}
	}
}

// TestDescentObserverCoversGrants checks the estimator's contract: the
// total permit mass reported through the descent observer at the root is at
// least the number of permits granted strictly below it.
func TestDescentObserverCoversGrants(t *testing.T) {
	const n, m = 24, 100
	tr := buildTree(t, n, 13)
	rt := sim.NewDeterministic(13)
	passed := make(map[tree.NodeID]int64)
	core := dist.NewCore(tr, rt, int64(n)+2*m, m, m/2,
		dist.WithDescentObserver(func(size int64, enters tree.NodeID) {
			passed[enters] += size
		}))
	sub := dist.NewSubmitter(core, rt)
	gen := workload.NewChurn(tr, workload.GrowOnlyMix(), 29)
	grantsBelowRoot := int64(0)
	for i := 0; i < 60; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		g, err := sub.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if g.Outcome == controller.Granted {
			grantsBelowRoot++
		}
	}
	if passed[tr.Root()] < grantsBelowRoot {
		t.Fatalf("root observed %d permit mass, %d grants occurred", passed[tr.Root()], grantsBelowRoot)
	}
}

// TestDynamicUnknownU drives the headline unknown-U controller: it must
// restart iterations as the tree churns, never over-grant, and reject
// everything after exhaustion.
func TestDynamicUnknownU(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tr := buildTree(t, 48, seed)
		rt := sim.NewDeterministic(seed)
		counters := stats.NewCounters()
		d := dist.NewDynamic(tr, rt, 600, 60, false, counters)
		gen := workload.NewChurn(tr, workload.DefaultMix(), seed+7)
		gen.SetMinSize(12)
		res, err := workload.Run(d, gen, 3000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if int64(res.Granted) > 600 {
			t.Fatalf("seed %d: SAFETY: granted %d > M=600", seed, res.Granted)
		}
		if res.Rejected == 0 {
			t.Fatalf("seed %d: budget never exhausted (granted %d)", seed, res.Granted)
		}
		if d.Iterations() < 2 {
			t.Fatalf("seed %d: only %d iterations; churn should restart the inner controller", seed, d.Iterations())
		}
		if msgs := dist.TotalMessages(rt, counters); msgs == 0 {
			t.Fatalf("seed %d: no messages accounted", seed)
		}
	}
}

// TestMemoryBits sanity-checks the whiteboard accounting of Claim 4.8.
func TestMemoryBits(t *testing.T) {
	const n, m = 32, 200
	tr := buildTree(t, n, 3)
	rt := sim.NewDeterministic(3)
	core := dist.NewCore(tr, rt, int64(n)+2*m, m, m/2)
	sub := dist.NewSubmitter(core, rt)
	gen := workload.NewChurn(tr, workload.EventOnlyMix(), 11)
	for i := 0; i < 32; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := sub.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	maxBits := 0
	for _, id := range tr.Nodes() {
		if b := core.MemoryBitsAt(id); b > maxBits {
			maxBits = b
		}
	}
	if maxBits <= 0 {
		t.Fatal("no whiteboard memory recorded after grants")
	}
	if core.MemoryBitsAt(tree.NodeID(1<<30)) != 0 {
		t.Fatal("memory of a nonexistent node must be 0")
	}
}
