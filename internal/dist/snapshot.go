package dist

import (
	"fmt"
	"sort"

	"dynctrl/internal/pkgstore"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// This file is the distributed controller's state-capture boundary for the
// durability engine (internal/persist). The whole unknown-U driver stack —
// Dynamic → Iterated → Core → per-node package stores — is plain
// sequential state between submissions (the runtime is drained after every
// request), so a deep copy of the exported *State values plus the tree and
// the shared counters reconstructs an equivalent controller exactly.

// NodeStoreState pairs one node with its captured whiteboard contents.
type NodeStoreState struct {
	Node  tree.NodeID
	Store pkgstore.StoreState
}

// CoreState is the captured state of a fixed-U Core.
type CoreState struct {
	// U, M, W are the constructor parameters (already clamped by
	// pkgstore.NewParams, which is idempotent, so re-deriving φ/ψ from them
	// reproduces the original parameters bit for bit).
	U, M, W int64

	Storage            int64
	SerialLo, SerialHi int64
	Granted, Rejected  int64
	NoRejects          bool
	RejectWave         bool

	// Stores lists every node whiteboard in ascending node order.
	Stores []NodeStoreState
}

// IteratedState is the captured state of the waste-halving driver.
type IteratedState struct {
	U, W        int64
	CurM        int64
	Iterations  int
	FinalPhase  bool
	Terminating bool

	TrivialPhase bool
	TrivialLeft  int64

	Terminated bool
	RejectAll  bool
	Granted    int64

	Core CoreState
}

// DynamicState is the captured state of the unknown-U driver — the root of
// the controller snapshot the durability engine persists.
type DynamicState struct {
	W           int64
	Mi          int64
	Ui          int64
	Zi          int64
	GrantedBase int64
	Iterations  int
	Terminating bool
	Terminated  bool
	RejectAll   bool

	Inner IteratedState
}

// State captures the core's complete state. Must not be called while a
// submission is in flight (the runtime is drained between requests, which
// is the only time the durability engine snapshots).
func (c *Core) State() CoreState {
	st := CoreState{
		U:          c.params.U,
		M:          c.params.M,
		W:          c.params.W,
		Storage:    c.storage,
		SerialLo:   c.serials.Lo,
		SerialHi:   c.serials.Hi,
		Granted:    c.granted,
		Rejected:   c.rejected,
		NoRejects:  c.noRejects,
		RejectWave: c.rejectWave,
	}
	ids := make([]tree.NodeID, 0, len(c.stores))
	for id := range c.stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st.Stores = append(st.Stores, NodeStoreState{Node: id, Store: c.stores[id].State()})
	}
	return st
}

// restoreCore rebuilds a Core from captured state over tr and rt.
func restoreCore(tr *tree.Tree, rt sim.Runtime, st CoreState, counters *stats.Counters) (*Core, error) {
	c := &Core{
		tr:         tr,
		rt:         rt,
		params:     pkgstore.NewParams(st.U, st.M, st.W),
		stores:     make(map[tree.NodeID]*pkgstore.Store, len(st.Stores)),
		storage:    st.Storage,
		serials:    pkgstore.Interval{Lo: st.SerialLo, Hi: st.SerialHi},
		counters:   counters,
		noRejects:  st.NoRejects,
		rejectWave: st.RejectWave,
		granted:    st.Granted,
		rejected:   st.Rejected,
	}
	for _, ns := range st.Stores {
		s, err := pkgstore.RestoreStore(ns.Store)
		if err != nil {
			return nil, fmt.Errorf("dist: restore store of node %d: %w", ns.Node, err)
		}
		c.stores[ns.Node] = s
	}
	return c, nil
}

// State captures the waste-halving driver's complete state.
func (it *Iterated) State() IteratedState {
	return IteratedState{
		U:            it.u,
		W:            it.w,
		CurM:         it.curM,
		Iterations:   it.iterations,
		FinalPhase:   it.finalPhase,
		Terminating:  it.terminating,
		TrivialPhase: it.trivialPhase,
		TrivialLeft:  it.trivialLeft,
		Terminated:   it.terminated,
		RejectAll:    it.rejectAll,
		Granted:      it.granted,
		Core:         it.cur.State(),
	}
}

func restoreIterated(tr *tree.Tree, rt sim.Runtime, st IteratedState, counters *stats.Counters) (*Iterated, error) {
	cur, err := restoreCore(tr, rt, st.Core, counters)
	if err != nil {
		return nil, err
	}
	return &Iterated{
		tr:           tr,
		rt:           rt,
		u:            st.U,
		w:            st.W,
		counters:     counters,
		terminating:  st.Terminating,
		cur:          cur,
		curM:         st.CurM,
		iterations:   st.Iterations,
		finalPhase:   st.FinalPhase,
		trivialPhase: st.TrivialPhase,
		trivialLeft:  st.TrivialLeft,
		terminated:   st.Terminated,
		rejectAll:    st.RejectAll,
		granted:      st.Granted,
	}, nil
}

// State captures the unknown-U driver's complete state. Must not be called
// while a submission is in flight.
func (d *Dynamic) State() *DynamicState {
	return &DynamicState{
		W:           d.w,
		Mi:          d.mi,
		Ui:          d.ui,
		Zi:          d.zi,
		GrantedBase: d.grantedBase,
		Iterations:  d.iterations,
		Terminating: d.terminating,
		Terminated:  d.terminated,
		RejectAll:   d.rejectAll,
		Inner:       d.inner.State(),
	}
}

// RestoreDynamic rebuilds an unknown-U controller from captured state over
// tr, moving messages through rt and accounting into counters. The caller
// restores tr and counters to their captured states first; the returned
// controller then continues exactly where the captured one stopped.
func RestoreDynamic(tr *tree.Tree, rt sim.Runtime, st *DynamicState, counters *stats.Counters) (*Dynamic, error) {
	if counters == nil {
		counters = stats.NewCounters()
	}
	inner, err := restoreIterated(tr, rt, st.Inner, counters)
	if err != nil {
		return nil, err
	}
	return &Dynamic{
		tr:          tr,
		rt:          rt,
		w:           st.W,
		counters:    counters,
		terminating: st.Terminating,
		terminated:  st.Terminated,
		rejectAll:   st.RejectAll,
		inner:       inner,
		mi:          st.Mi,
		ui:          st.Ui,
		zi:          st.Zi,
		grantedBase: st.GrantedBase,
		iterations:  st.Iterations,
	}, nil
}
