package dist

import (
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Iterated is the distributed waste-halving (M,W)-Controller (Observation
// 3.4 over messages): it runs (M_i, M_i/2)-cores in iterations, setting
// M_{i+1} to the unused permits L when iteration i exhausts, until L is
// within a constant factor of W; the final iteration runs an (L, W)-core.
// The W = 0 case appends the trivial controller that walks each remaining
// permit down from the root.
//
// Message complexity: O(U·log²U·log(M/(W+1))) (Theorem 4.7).
type Iterated struct {
	tr          *tree.Tree
	rt          sim.Runtime
	u           int64
	w           int64
	counters    *stats.Counters
	terminating bool

	cur        *Core
	curM       int64
	iterations int
	finalPhase bool

	// Trivial phase state (W = 0 tail).
	trivialPhase bool
	trivialLeft  int64

	terminated bool
	rejectAll  bool
	granted    int64
}

// NewIterated builds the distributed waste-halving (m, w)-Controller over
// tr with the fixed node bound u. When terminating is true the driver
// returns ErrTerminated on exhaustion instead of rejecting (Observation 2.1
// applied to the whole stack).
func NewIterated(tr *tree.Tree, rt sim.Runtime, u, m, w int64, terminating bool, counters *stats.Counters) *Iterated {
	if counters == nil {
		counters = stats.NewCounters()
	}
	it := &Iterated{tr: tr, rt: rt, u: u, w: w, counters: counters, terminating: terminating, curM: m}
	it.startIteration(m)
	return it
}

func (it *Iterated) startIteration(m int64) {
	it.iterations++
	it.counters.Inc(stats.CounterIterations)
	it.curM = m
	if it.w > 0 && m <= 2*it.w {
		// Final iteration: an (m, W)-core; rejects are issued by the
		// driver, so the core itself never floods the wave.
		it.finalPhase = true
		it.cur = NewCore(it.tr, it.rt, it.u, m, it.w,
			WithCounters(it.counters), WithNoRejects())
		return
	}
	it.cur = NewCore(it.tr, it.rt, it.u, m, maxInt64(m/2, 1),
		WithCounters(it.counters), WithNoRejects())
}

// Granted returns the total permits granted across all iterations.
func (it *Iterated) Granted() int64 { return it.granted }

// Iterations returns the number of iterations started so far.
func (it *Iterated) Iterations() int { return it.iterations }

// Terminated reports whether a terminating driver has terminated.
func (it *Iterated) Terminated() bool { return it.terminated }

// Counters returns the shared cost counters.
func (it *Iterated) Counters() *stats.Counters { return it.counters }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Submit answers one request. A terminating driver returns ErrTerminated
// once the permit budget is exhausted; otherwise exhaustion triggers a
// reject wave and rejects.
func (it *Iterated) Submit(req controller.Request) (controller.Grant, error) {
	if it.terminated {
		return controller.Grant{}, ErrTerminated
	}
	if it.rejectAll {
		it.counters.Inc(stats.CounterRejects)
		return controller.Grant{Outcome: controller.Rejected}, nil
	}
	for attempt := 0; attempt < 128; attempt++ {
		if it.trivialPhase {
			return it.submitTrivial(req)
		}
		g, err := it.cur.submit(req)
		if err != nil {
			return controller.Grant{}, err
		}
		if g.Outcome == controller.Granted {
			it.granted++
			return g, nil
		}
		if g.Outcome == controller.Rejected {
			// Only a reject package already present rejects here.
			return g, nil
		}
		// WouldReject: the current iteration is exhausted.
		if it.finalPhase {
			return it.exhausted()
		}
		// Collecting the unused permits back to the root is a
		// broadcast/upcast over the current tree in the distributed
		// setting.
		l := it.cur.UnusedPermits()
		it.cur.ClearPackages()
		if n := int64(it.tr.Size()); n > 1 {
			it.counters.Add(CounterControl, 2*(n-1))
		}
		if it.w == 0 {
			if l == 0 {
				return it.exhausted()
			}
			it.trivialPhase = true
			it.trivialLeft = l
			continue
		}
		it.startIteration(l)
	}
	return controller.Grant{}, controller.ErrIterationCap
}

// submitTrivial implements the trivial tail controller used when W = 0:
// each remaining permit walks directly from the root to the requesting
// node, costing its depth in messages. The change is applied before any
// state is consumed: an invalid request (e.g. remove-leaf naming an
// internal node, which bypasses the core's validation here) must leave
// the permit budget and the shared counters untouched, or the durability
// engine — which logs only decided requests — could never reconstruct
// the state.
func (it *Iterated) submitTrivial(req controller.Request) (controller.Grant, error) {
	if it.trivialLeft <= 0 {
		return it.exhausted()
	}
	d, err := it.tr.Distance(req.Node, it.tr.Root())
	if err != nil {
		return controller.Grant{}, err
	}
	newNode, err := applyChange(it.tr, req)
	if err != nil {
		return controller.Grant{}, err
	}
	it.counters.Add(CounterControl, int64(d))
	it.trivialLeft--
	it.granted++
	it.counters.Inc(stats.CounterGrants)
	g := controller.Grant{Outcome: controller.Granted, NewNode: newNode}
	if req.Kind != tree.None {
		it.counters.Inc(stats.CounterTopoChanges)
	}
	return g, nil
}

// exhausted handles global permit exhaustion: terminating drivers terminate
// (paying the broadcast/upcast of Observation 2.1); otherwise a reject wave
// floods the tree and the request is rejected.
func (it *Iterated) exhausted() (controller.Grant, error) {
	if it.terminating {
		it.terminated = true
		if n := int64(it.tr.Size()); n > 1 {
			it.counters.Add(CounterControl, 2*(n-1))
		}
		return controller.Grant{}, ErrTerminated
	}
	it.rejectAll = true
	if n := int64(it.tr.Size()); n > 1 {
		it.counters.Add(CounterControl, n-1)
	}
	it.counters.Inc(stats.CounterRejects)
	return controller.Grant{Outcome: controller.Rejected}, nil
}

// applyChange applies a granted topological request to the tree and returns
// the id of a created node, if any (trivial-phase grants run without
// package stores).
func applyChange(tr *tree.Tree, req controller.Request) (tree.NodeID, error) {
	switch req.Kind {
	case tree.None:
		return tree.InvalidNode, nil
	case tree.AddLeaf:
		return tr.ApplyAddLeaf(req.Node)
	case tree.AddInternal:
		return tr.ApplyAddInternal(req.Child)
	case tree.RemoveLeaf:
		return tree.InvalidNode, tr.ApplyRemoveLeaf(req.Node)
	case tree.RemoveInternal:
		return tree.InvalidNode, tr.ApplyRemoveInternal(req.Node)
	default:
		return tree.InvalidNode, fmt.Errorf("applyChange: unknown kind %v", req.Kind)
	}
}

// Terminating wraps a no-reject distributed Core as a terminating
// (M,W)-Controller (Observation 2.1): instead of ever rejecting, it
// terminates. At termination the number of granted permits m satisfies
// M−W ≤ m ≤ M.
type Terminating struct {
	core       *Core
	terminated bool
}

// NewTerminating builds a terminating distributed (m,w)-Controller over tr
// with the fixed bound u, accounting costs into counters (which may be
// nil).
func NewTerminating(tr *tree.Tree, rt sim.Runtime, u, m, w int64, counters *stats.Counters, opts ...CoreOption) *Terminating {
	if counters != nil {
		opts = append(opts, WithCounters(counters))
	}
	opts = append(opts, WithNoRejects())
	return &Terminating{core: NewCore(tr, rt, u, m, w, opts...)}
}

// Core exposes the wrapped core (for inspection in drivers and tests).
func (t *Terminating) Core() *Core { return t.core }

// Terminated reports whether the controller has terminated.
func (t *Terminating) Terminated() bool { return t.terminated }

// Granted returns the permits granted before termination.
func (t *Terminating) Granted() int64 { return t.core.Granted() }

// Submit forwards the request unless terminated. The first request the core
// cannot fund flips the controller into the terminated state; that request
// (and all later ones) receive ErrTerminated. The broadcast/upcast that
// verifies granted events at termination (Observation 2.1) is accounted as
// control messages.
func (t *Terminating) Submit(req controller.Request) (controller.Grant, error) {
	if t.terminated {
		return controller.Grant{}, ErrTerminated
	}
	g, err := t.core.submit(req)
	if err != nil {
		return controller.Grant{}, err
	}
	if g.Outcome == controller.WouldReject {
		t.terminate()
		return controller.Grant{}, ErrTerminated
	}
	return g, nil
}

// Terminate forces termination (drivers use this when an iteration ends for
// an external reason).
func (t *Terminating) Terminate() {
	if !t.terminated {
		t.terminate()
	}
}

func (t *Terminating) terminate() {
	t.terminated = true
	if n := int64(t.core.tr.Size()); n > 1 {
		t.core.counters.Add(CounterControl, 2*(n-1))
	}
}
