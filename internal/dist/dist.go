// Package dist implements the distributed (M,W)-Controller of Section 4 of
// the paper: the same waste-halving machinery as package controller, but
// executed by message passing over a sim.Runtime, so that the cost measure
// is message complexity instead of move complexity.
//
// The translation follows the paper's simulation (Lemma 4.5 / Theorem 4.7):
//
//   - A request at node u starts an agent that climbs the path toward the
//     root, one message per hop, looking for the closest filler node — an
//     ancestor holding a mobile package whose level qualifies for the hop
//     distance traveled (Section 3.1, item 3).
//   - The qualifying package (or a fresh one funded from the root storage)
//     then descends back along the same path, one message per tree edge,
//     splitting at the drop points u_k exactly as procedure Proc prescribes;
//     a static package reaches u and one permit is granted.
//   - Rejects flood the tree as a broadcast wave (one message per edge), and
//     graceful deletions push a node's packages to its parent in one message
//     — both matching the centralized move accounting one for one.
//
// Since the climb to a filler never exceeds the descent it triggers, the
// delivered message count stays within a constant factor of the centralized
// move count on the same trace; the property tests in dist_test.go replay
// identical traces through both implementations and check precisely that,
// together with bitwise-identical grant/reject sequences.
//
// Costs that the full protocol pays in broadcast/upcast phases the
// simulation cannot route through the transport (iteration restarts,
// termination detection, the N_i count of the unknown-U controller) are
// accounted in the CounterControl tally; TotalMessages adds the two.
package dist

import (
	"sync"

	"dynctrl/internal/controller"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// ErrTerminated is returned by terminating controllers after termination.
// It aliases controller.ErrTerminated so errors.Is works across layers.
var ErrTerminated = controller.ErrTerminated

// CounterControl names the stats counter accumulating control-plane
// messages: broadcast/upcast phases that the message transport does not
// carry explicitly (iteration bookkeeping, termination detection, DFS
// relabelings of the applications).
const CounterControl = "control-messages"

// TotalMessages returns the total message complexity spent so far: messages
// delivered by the transport plus accounted control messages.
func TotalMessages(rt sim.Runtime, counters *stats.Counters) int64 {
	return rt.Messages() + counters.Get(CounterControl)
}

// Message payloads of the distributed controller. All protocol state beyond
// the per-node whiteboards (package stores) travels inside these envelopes.

// searchUp climbs from the requesting node toward the root looking for the
// closest filler node. Envelopes are pooled: the protocol re-sends the same
// object hop after hop (exactly one copy is ever in flight per request) and
// releases it when the climb ends.
type searchUp struct {
	origin tree.NodeID // requesting node u
	dist   int64       // hops traveled so far (distance of the receiver from u)
}

// descend carries a mobile package downward along the recorded search path,
// one hop per message. path[0] is the node the package was found at (or the
// root), path[len(path)-1] is the requesting node; idx is the index of the
// receiving node. Like searchUp, descend envelopes (and their path buffers)
// are pooled and reused across hops and requests.
type descend struct {
	pkg  *pkgstore.Package
	path []tree.NodeID
	idx  int
}

var searchUpPool = sync.Pool{New: func() any { return new(searchUp) }}

var descendPool = sync.Pool{New: func() any { return new(descend) }}

func putSearchUp(pl *searchUp) { searchUpPool.Put(pl) }

func putDescend(pl *descend) {
	pl.pkg = nil
	pl.path = pl.path[:0]
	descendPool.Put(pl)
}

// rejectFlood broadcasts the reject wave: every receiving node stores a
// reject package and forwards the wave to its children.
type rejectFlood struct{}

// transfer moves a gracefully deleted node's packages to its parent in one
// message (item 2 of Protocol GrantOrReject).
type transfer struct {
	packages  []*pkgstore.Package
	hadReject bool
}
