package dist

import (
	"errors"

	"dynctrl/internal/controller"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Dynamic is the distributed (M,W)-Controller for the general case where no
// bound U on the number of nodes ever to exist is known in advance — the
// paper's headline construction (Theorem 4.9). It runs the waste-halving
// controller in iterations, re-estimating U_i = 2·N_i from the current node
// count at each iteration start and ending iteration i after U_i/4
// topological changes. Message complexity:
// O(n₀log²n₀·log(M/(W+1)) + Σ_j log²n_j·log(M/(W+1))).
type Dynamic struct {
	tr       *tree.Tree
	rt       sim.Runtime
	w        int64
	counters *stats.Counters

	terminating bool
	terminated  bool
	rejectAll   bool

	inner       *Iterated
	mi          int64
	ui          int64
	zi          int64 // topological changes in the current iteration
	grantedBase int64 // permits granted before this iteration
	iterations  int
}

// NewDynamic builds a distributed unknown-U (m, w)-Controller over tr. When
// terminating is true the controller returns ErrTerminated on exhaustion
// instead of rejecting. counters may be nil.
func NewDynamic(tr *tree.Tree, rt sim.Runtime, m, w int64, terminating bool, counters *stats.Counters) *Dynamic {
	if counters == nil {
		counters = stats.NewCounters()
	}
	d := &Dynamic{tr: tr, rt: rt, w: w, counters: counters, terminating: terminating, mi: m}
	d.startIteration()
	return d
}

func (d *Dynamic) startIteration() {
	d.iterations++
	n := int64(d.tr.Size())
	d.ui = 2 * n
	if d.ui < 4 {
		d.ui = 4
	}
	d.zi = 0
	// Counting N_i is a broadcast/upcast over the current tree (Appendix A
	// of the paper's accounting for the distributed iteration restart).
	if n > 1 {
		d.counters.Add(CounterControl, 2*(n-1))
	}
	d.inner = NewIterated(d.tr, d.rt, d.ui, d.mi, d.w, true, d.counters)
	d.grantedBase = d.totalGrantedSoFar()
}

func (d *Dynamic) totalGrantedSoFar() int64 {
	return d.counters.Get(stats.CounterGrants)
}

// Granted returns the total permits granted across all iterations.
func (d *Dynamic) Granted() int64 { return d.counters.Get(stats.CounterGrants) }

// Iterations returns the number of outer iterations started.
func (d *Dynamic) Iterations() int { return d.iterations }

// Counters returns the shared cost counters.
func (d *Dynamic) Counters() *stats.Counters { return d.counters }

// Runtime returns the message transport the controller runs over.
func (d *Dynamic) Runtime() sim.Runtime { return d.rt }

// Terminated reports whether a terminating controller has terminated.
func (d *Dynamic) Terminated() bool { return d.terminated }

// Submit answers one request, restarting the inner controller with fresh
// U_i and M_i estimates whenever the iteration has admitted U_i/4
// topological changes.
func (d *Dynamic) Submit(req controller.Request) (controller.Grant, error) {
	if d.terminated {
		return controller.Grant{}, ErrTerminated
	}
	if d.rejectAll {
		d.counters.Inc(stats.CounterRejects)
		return controller.Grant{Outcome: controller.Rejected}, nil
	}
	g, err := d.inner.Submit(req)
	if errors.Is(err, ErrTerminated) {
		// Global permit exhaustion: by the liveness of each inner
		// terminating controller, at least M−W permits were granted.
		return d.exhausted()
	}
	if err != nil {
		return controller.Grant{}, err
	}
	if g.Outcome == controller.Granted && req.Kind != tree.None {
		d.zi++
		if d.zi >= maxInt64(d.ui/4, 1) {
			d.endIteration()
		}
	}
	return g, nil
}

// endIteration closes the books on the current iteration: Y_i permits were
// consumed, so M_{i+1} = M_i − Y_i, and the next iteration restarts the
// inner stack with a fresh U estimate.
func (d *Dynamic) endIteration() {
	yi := d.totalGrantedSoFar() - d.grantedBase
	d.mi -= yi
	if d.mi < 0 {
		d.mi = 0
	}
	d.startIteration()
}

func (d *Dynamic) exhausted() (controller.Grant, error) {
	if d.terminating {
		d.terminated = true
		return controller.Grant{}, ErrTerminated
	}
	d.rejectAll = true
	if n := int64(d.tr.Size()); n > 1 {
		d.counters.Add(CounterControl, n-1)
	}
	d.counters.Inc(stats.CounterRejects)
	return controller.Grant{Outcome: controller.Rejected}, nil
}
