package dist_test

import (
	"testing"

	"dynctrl/internal/dist"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

// TestDeterministicVsConcurrentRuntime runs the same workload through the
// seeded deterministic scheduler and the goroutine-based concurrent
// scheduler. The protocol keeps only commutative message sets in flight, so
// the outcome must not depend on delivery order: both runs grant the same
// requests, build the same tree, and never exceed the permit budget. Run
// under -race this also exercises the concurrent runtime's synchronization.
func TestDeterministicVsConcurrentRuntime(t *testing.T) {
	const (
		n0       = 32
		m        = 300
		w        = 30
		requests = 1200
	)
	type outcome struct {
		res  workload.Result
		size int
		ever int
	}
	run := func(t *testing.T, rt sim.Runtime, seed int64) outcome {
		t.Helper()
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, n0, seed); err != nil {
			t.Fatal(err)
		}
		ctl := dist.NewDynamic(tr, rt, m, w, false, stats.NewCounters())
		gen := workload.NewChurn(tr, workload.DefaultMix(), seed+1)
		gen.SetMinSize(8)
		res, err := workload.Run(ctl, gen, requests)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{res: res, size: tr.Size(), ever: tr.EverExisted()}
	}

	for _, seed := range []int64{1, 2, 5} {
		det := run(t, sim.NewDeterministic(seed), seed)
		conc := run(t, sim.NewConcurrent(4), seed)
		if det.res != conc.res {
			t.Fatalf("seed %d: results diverged: deterministic %+v, concurrent %+v", seed, det.res, conc.res)
		}
		if det.size != conc.size || det.ever != conc.ever {
			t.Fatalf("seed %d: trees diverged: %d/%d vs %d/%d nodes",
				seed, det.size, det.ever, conc.size, conc.ever)
		}
		if det.res.Granted > m {
			t.Fatalf("seed %d: SAFETY: granted %d > M=%d", seed, det.res.Granted, m)
		}
		if det.res.Granted == 0 {
			t.Fatalf("seed %d: nothing granted", seed)
		}
	}
}
