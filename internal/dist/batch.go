package dist

import (
	"dynctrl/internal/controller"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// This file implements batched submission over the distributed controller
// stack (the loop itself is controller.RunBatch). Batched submission
// preserves the serial semantics exactly — the grant/reject/serial sequence
// on a trace is identical to calling Submit once per request — but
// amortizes the per-request protocol overhead: when a static package
// already waits at the requesting node, the grant is answered from local
// state without installing a transport handler, starting an agent, or
// draining the runtime (items 1–2 of Protocol GrantOrReject require no
// messages in that case), and the shared grant counter is flushed once per
// run of fast grants instead of per request.

// fastGrant answers a request entirely from the local whiteboard of its
// node when the full protocol would not send any message: the request is a
// non-topological event, no reject package sits at the node, and a static
// package with a permit is present. It reports false, leaving all state
// untouched, in every other case. The shared grant counter is deliberately
// skipped so the batch loop can flush one Add per run of fast grants.
func (c *Core) fastGrant(req controller.Request) (controller.Grant, bool) {
	if req.Kind != tree.None {
		return controller.Grant{}, false
	}
	// Store presence implies liveness (stores are removed with their node),
	// which replaces the Contains check of the slow path.
	s, ok := c.stores[req.Node]
	if !ok || s.HasReject() {
		return controller.Grant{}, false
	}
	serial, ok := s.TakeStaticPermit()
	if !ok {
		return controller.Grant{}, false
	}
	c.granted++
	return controller.Grant{Outcome: controller.Granted, Serial: serial}, true
}

// SubmitBatch implements controller.BatchSubmitter over a fixed-U core.
func (s *Submitter) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	return controller.RunBatch(reqs, out, s.core.fastGrant, s.core.submit,
		func(grants int64) { s.core.counters.Add(stats.CounterGrants, grants) })
}

// fastGrant forwards the local fast path through the waste-halving driver:
// it applies only while the regular iterated machinery is live (not
// terminated, not rejecting, not in the trivial W = 0 tail), so the answer
// matches what Submit would have produced. Like the core-level fastGrant it
// leaves the shared counters — and Iterated.granted — to the batch flush.
func (it *Iterated) fastGrant(req controller.Request) (controller.Grant, bool) {
	if it.terminated || it.rejectAll || it.trivialPhase {
		return controller.Grant{}, false
	}
	return it.cur.fastGrant(req)
}

// flushFastGrants brings the accounting a run of fast grants skipped up to
// date: the shared grant counter (read by the unknown-U M_i bookkeeping)
// and the driver's liveness tally.
func (it *Iterated) flushFastGrants(grants int64) {
	it.granted += grants
	it.counters.Add(stats.CounterGrants, grants)
}

// SubmitBatch implements controller.BatchSubmitter over the iterated
// driver.
func (it *Iterated) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	return controller.RunBatch(reqs, out, it.fastGrant, it.Submit, it.flushFastGrants)
}

// SubmitBatch implements controller.BatchSubmitter over the unknown-U
// controller — the backend the public dynctrl.Pipeline drives.
//
// The driver-stack flags (termination, reject-all, trivial tail) and the
// identity of the inner core only change on slow-path submissions, so the
// fast path hoists them: between slow calls it runs straight against the
// current fixed-U core, one store lookup and permit take per request.
func (d *Dynamic) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	// core is the current fixed-U core when the whole driver stack is in
	// its live fast-capable state, else nil.
	var core *Core
	hoist := func() {
		core = nil
		if !d.terminated && !d.rejectAll {
			if it := d.inner; !it.terminated && !it.rejectAll && !it.trivialPhase {
				core = it.cur
			}
		}
	}
	hoist()
	return controller.RunBatch(reqs, out,
		func(req controller.Request) (controller.Grant, bool) {
			if core == nil {
				return controller.Grant{}, false
			}
			return core.fastGrant(req)
		},
		func(req controller.Request) (controller.Grant, error) {
			g, err := d.Submit(req)
			hoist()
			return g, err
		},
		// Resolve d.inner at flush time: a slow call can restart the
		// iteration and replace the inner driver mid-batch.
		func(grants int64) { d.inner.flushFastGrants(grants) })
}

var (
	_ controller.BatchSubmitter = (*Submitter)(nil)
	_ controller.BatchSubmitter = (*Iterated)(nil)
	_ controller.BatchSubmitter = (*Dynamic)(nil)
)
