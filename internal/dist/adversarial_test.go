package dist_test

import (
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

// This file exercises the protocol's edge cases under the adversarial
// scheduler catalog: cross-schedule trace equivalence, graceful deletion of
// nodes holding drop-point packages, and reject-wave legality when the
// wave's flood messages are reordered.

// recordChurnTrace drives a churn generator against a throwaway controller
// and records the request sequence it produced, so the identical trace can
// be replayed against fresh controllers under every scheduler.
func recordChurnTrace(t *testing.T, n, steps int, mix workload.Mix, seed int64) []controller.Request {
	t.Helper()
	tr := buildTree(t, n, seed)
	ctl := dist.NewDynamic(tr, sim.NewDeterministic(seed), int64(steps)*4, int64(steps), false, nil)
	gen := workload.NewChurn(tr, mix, seed+1)
	gen.SetMinSize(n / 2)
	var reqs []controller.Request
	for i := 0; i < steps; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := ctl.Submit(req); err != nil {
			t.Fatalf("record step %d: %v", i, err)
		}
		reqs = append(reqs, req)
	}
	return reqs
}

// TestCrossSchedulerTraceEquivalence replays one churn trace through fresh
// controllers under every runtime in the catalog: the grant/reject/serial
// sequence and the delivered message count must be identical, because the
// protocol's per-request drains commute.
func TestCrossSchedulerTraceEquivalence(t *testing.T) {
	const n, steps = 48, 500
	m, w := int64(steps)*4, int64(steps)
	reqs := recordChurnTrace(t, n, steps, workload.DefaultMix(), 3)

	type replay struct {
		outcomes []controller.Grant
		messages int64
	}
	run := func(sched string) replay {
		tr := buildTree(t, n, 3)
		rt, err := sim.NewRuntime(sched, 11)
		if err != nil {
			t.Fatal(err)
		}
		ctl := dist.NewDynamic(tr, rt, m, w, false, nil)
		var out []controller.Grant
		for i, req := range reqs {
			g, err := ctl.Submit(req)
			if err != nil {
				t.Fatalf("%s: replay step %d: %v", sched, i, err)
			}
			out = append(out, g)
		}
		return replay{outcomes: out, messages: rt.Messages()}
	}

	base := run("fifo")
	for _, sched := range append(sim.SchedulerNames(), "concurrent") {
		got := run(sched)
		if got.messages != base.messages {
			t.Fatalf("%s delivered %d messages, fifo %d", sched, got.messages, base.messages)
		}
		for i := range base.outcomes {
			if got.outcomes[i] != base.outcomes[i] {
				t.Fatalf("%s diverged at request %d: %+v vs fifo %+v",
					sched, i, got.outcomes[i], base.outcomes[i])
			}
		}
	}
}

// TestGracefulDeletionOfDropPointNode drives a deep-path request so that
// procedure Proc leaves mobile packages at drop points, then gracefully
// deletes a package-holding drop point mid-path and checks that the
// handoff is lossless: permits are conserved (storage + packages + granted
// = M), the packages reappear at the parent, and later requests still
// complete. The whole dance is repeated under every scheduler.
func TestGracefulDeletionOfDropPointNode(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		t.Run(sched, func(t *testing.T) {
			const n = 96
			tr, _ := tree.New()
			if err := workload.BuildPath(tr, n); err != nil {
				t.Fatal(err)
			}
			rt, err := sim.NewRuntime(sched, 7)
			if err != nil {
				t.Fatal(err)
			}
			// U/M/W are tuned so the deep request climbs past 2ψ and the
			// root funds a level-1 package with φ = 2: the descent must
			// split at a drop point, leaving a package mid-path, and each
			// package holds enough permits to survive the grant that
			// consumes one.
			m, w := int64(600), int64(512)
			core := dist.NewCore(tr, rt, 128, m, w)
			sub := dist.NewSubmitter(core, rt)
			if p := core.Params(); 2*p.Psi >= int64(n) {
				t.Fatalf("tuning broken: 2ψ = %d >= path length %d, no drop points will form", 2*p.Psi, n)
			}

			conserve := func(when string) {
				t.Helper()
				if got := core.UnusedPermits() + core.Granted(); got != m {
					t.Fatalf("%s: unused %d + granted %d != M %d — permits leaked",
						when, core.UnusedPermits(), core.Granted(), m)
				}
			}

			// A request at the path's tip forces a root-funded package to
			// descend the full path, splitting at every drop point.
			tip := deepestOf(t, tr)
			if g, err := sub.Submit(controller.Request{Node: tip, Kind: tree.None}); err != nil ||
				g.Outcome != controller.Granted {
				t.Fatalf("deep request: grant %+v, err %v", g, err)
			}
			conserve("after deep request")

			// Find a strict ancestor of the tip that holds packages: a drop
			// point left by the descent.
			victim := tree.InvalidNode
			path, err := tr.PathToRoot(tip)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range path[1 : len(path)-1] {
				if core.NodePermits(id) > 0 {
					victim = id
					break
				}
			}
			if victim == tree.InvalidNode {
				t.Fatal("no drop point holds packages; the scenario is vacuous")
			}
			held := core.NodePermits(victim)
			parent, err := tr.Parent(victim)
			if err != nil {
				t.Fatal(err)
			}
			parentBefore := core.NodePermits(parent)

			// Gracefully delete the drop point (the deletion request itself
			// consumes one permit, possibly from the victim's own store).
			if g, err := sub.Submit(controller.Request{Node: victim, Kind: tree.RemoveInternal}); err != nil ||
				g.Outcome != controller.Granted {
				t.Fatalf("delete drop point: grant %+v, err %v", g, err)
			}
			if tr.Contains(victim) {
				t.Fatal("victim still in the tree")
			}
			conserve("after graceful deletion")
			// The deletion grant consumed at most one of the victim's
			// permits; the rest must have crossed to the parent.
			if got := core.NodePermits(parent); got <= parentBefore || got > parentBefore+held {
				t.Fatalf("parent holds %d permits (held %d before deletion of a node holding %d) — handoff lost packages",
					got, parentBefore, held)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}

			// The protocol keeps working: requests at the new tip (one hop
			// below the deleted node's position) and at the root both land.
			for _, at := range []tree.NodeID{deepestOf(t, tr), tr.Root()} {
				if g, err := sub.Submit(controller.Request{Node: at, Kind: tree.None}); err != nil ||
					g.Outcome != controller.Granted {
					t.Fatalf("post-deletion request at %d: grant %+v, err %v", at, g, err)
				}
			}
			conserve("after post-deletion requests")
		})
	}
}

func deepestOf(t *testing.T, tr *tree.Tree) tree.NodeID {
	t.Helper()
	best, bestD := tr.Root(), -1
	for _, id := range tr.Nodes() {
		d, err := tr.Depth(id)
		if err != nil {
			t.Fatal(err)
		}
		if d > bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best
}

// TestRejectWaveFromDeepSearchUnderSchedulers exhausts a tight-budget core
// with requests from the deepest node, so the final filler search climbs
// the whole path before the root starts the reject wave — the "reject
// during filler search" edge. Under every scheduler the wave's flood
// messages are reordered differently, but the wave must still reach every
// node (all later requests reject, nothing is granted after the wave) and
// the waste bound must hold.
func TestRejectWaveFromDeepSearchUnderSchedulers(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		t.Run(sched, func(t *testing.T) {
			const n = 64
			tr, _ := tree.New()
			if err := workload.BuildPath(tr, n); err != nil {
				t.Fatal(err)
			}
			rt, err := sim.NewRuntime(sched, 13)
			if err != nil {
				t.Fatal(err)
			}
			m, w := int64(48), int64(24)
			core := dist.NewCore(tr, rt, int64(n)*4, m, w)
			sub := dist.NewSubmitter(core, rt)

			tip := deepestOf(t, tr)
			sawReject := false
			for i := 0; i < 3*int(m); i++ {
				g, err := sub.Submit(controller.Request{Node: tip, Kind: tree.None})
				if err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				if g.Outcome == controller.Rejected {
					sawReject = true
					break
				}
			}
			if !sawReject {
				t.Fatal("budget never exhausted")
			}
			if core.Granted() < m-w {
				t.Fatalf("waste bound broken: %d granted at first reject, want >= %d",
					core.Granted(), m-w)
			}
			grantedAtWave := core.Granted()

			// The wave must have flooded every node: a request anywhere is
			// rejected from the local reject package without new grants.
			for _, id := range tr.Nodes() {
				g, err := sub.Submit(controller.Request{Node: id, Kind: tree.None})
				if err != nil {
					t.Fatalf("post-wave request at %d: %v", id, err)
				}
				if g.Outcome != controller.Rejected {
					t.Fatalf("post-wave request at %d: %v, want Rejected", id, g.Outcome)
				}
			}
			if core.Granted() != grantedAtWave {
				t.Fatalf("grants after the reject wave: %d -> %d", grantedAtWave, core.Granted())
			}
		})
	}
}

// TestChurnPermitConservationAcrossSchedulers runs storm churn — including
// graceful deletions of package-holding nodes — through a fixed-U core and
// checks the permit conservation invariant storage+packages+granted == M
// after every single request, under every scheduler.
func TestChurnPermitConservationAcrossSchedulers(t *testing.T) {
	for _, sched := range sim.SchedulerNames() {
		t.Run(sched, func(t *testing.T) {
			const n, steps = 40, 400
			tr := buildTree(t, n, 9)
			rt, err := sim.NewRuntime(sched, 17)
			if err != nil {
				t.Fatal(err)
			}
			m := int64(steps) * 2
			core := dist.NewCore(tr, rt, int64(n+steps), m, m/4)
			sub := dist.NewSubmitter(core, rt)
			mix, err := workload.MixByName("storm")
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.NewChurn(tr, mix, 21)
			gen.SetMinSize(n / 2)
			for i := 0; i < steps; i++ {
				req, ok := gen.Next()
				if !ok {
					break
				}
				if _, err := sub.Submit(req); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if got := core.UnusedPermits() + core.Granted(); got != m {
					t.Fatalf("step %d (%v at %d): unused %d + granted %d != M %d",
						i, req.Kind, req.Node, core.UnusedPermits(), core.Granted(), m)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
