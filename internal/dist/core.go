package dist

import (
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// DescentObserver is notified for every node a permit package of the given
// size enters while descending the tree. The subtree estimator of Section
// 5.3 uses this hook; it is the distributed counterpart of the centralized
// observer, which reports the whole entered path at once.
type DescentObserver func(size int64, enters tree.NodeID)

// Core is the fixed-U distributed (M,W)-Controller of Section 4: the
// waste-halving core of Section 3.1 executed by message passing. One request
// is processed at a time (Submit drains the runtime before returning), which
// models the paper's assumption that a single agent is active per request.
type Core struct {
	tr       *tree.Tree
	rt       sim.Runtime
	params   pkgstore.Params
	stores   map[tree.NodeID]*pkgstore.Store
	storage  int64             // permits remaining in the root's storage
	serials  pkgstore.Interval // serial numbers backing the storage, if any
	counters *stats.Counters
	descent  DescentObserver

	noRejects  bool
	rejectWave bool
	granted    int64
	rejected   int64

	// cur holds the in-flight request; it is only non-nil between the
	// start of submit and the completion of the matching Drain. It points
	// at pendingSlot, which is reused across requests (one request is in
	// flight at a time).
	cur         *pending
	pendingSlot pending
}

// pending is the per-request result slot the message handlers write into.
type pending struct {
	req   controller.Request
	done  bool
	grant controller.Grant
	err   error
}

// CoreOption configures a Core.
type CoreOption func(*Core)

// WithCounters directs cost accounting into c (shared counters let drivers
// aggregate across iterations).
func WithCounters(c *stats.Counters) CoreOption {
	return func(co *Core) { co.counters = c }
}

// WithSerials attaches explicit permit serial numbers to the root storage;
// the interval length must be at least M.
func WithSerials(iv pkgstore.Interval) CoreOption {
	return func(co *Core) { co.serials = iv }
}

// WithNoRejects makes the core answer WouldReject instead of flooding the
// reject wave (the terminating transformation of Observation 2.1).
func WithNoRejects() CoreOption {
	return func(co *Core) { co.noRejects = true }
}

// WithDescentObserver registers fn to observe downward package moves.
func WithDescentObserver(fn DescentObserver) CoreOption {
	return func(co *Core) { co.descent = fn }
}

// NewCore creates a fixed-U distributed (m, w)-Controller over tr, moving
// messages through rt. The root's storage initially holds the m permits.
func NewCore(tr *tree.Tree, rt sim.Runtime, u, m, w int64, opts ...CoreOption) *Core {
	c := &Core{
		tr:      tr,
		rt:      rt,
		params:  pkgstore.NewParams(u, m, w),
		stores:  make(map[tree.NodeID]*pkgstore.Store),
		storage: m,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.counters == nil {
		c.counters = stats.NewCounters()
	}
	for _, id := range tr.Nodes() {
		c.stores[id] = pkgstore.NewStore()
	}
	return c
}

// Params exposes the derived φ/ψ parameters.
func (c *Core) Params() pkgstore.Params { return c.params }

// Granted returns the number of permits granted so far.
func (c *Core) Granted() int64 { return c.granted }

// Rejected returns the number of rejects delivered so far.
func (c *Core) Rejected() int64 { return c.rejected }

// Storage returns the permits remaining in the root's storage.
func (c *Core) Storage() int64 { return c.storage }

// Counters returns the cost counters.
func (c *Core) Counters() *stats.Counters { return c.counters }

// NodePermits returns the number of permits (static and mobile) currently
// stored at the given node's whiteboard (parity with the centralized
// core's accessor; the scenario tests use it to find drop-point packages).
func (c *Core) NodePermits(id tree.NodeID) int64 {
	s, ok := c.stores[id]
	if !ok {
		return 0
	}
	return s.PermitCount()
}

// UnusedPermits returns the permits not yet granted: root storage plus all
// permits sitting in packages. The iteration drivers use this as L.
func (c *Core) UnusedPermits() int64 {
	n := c.storage
	for _, s := range c.stores {
		n += s.PermitCount()
	}
	return n
}

// MemoryBitsAt estimates the whiteboard size of the given node in bits
// (Claim 4.8).
func (c *Core) MemoryBitsAt(id tree.NodeID) int {
	s, ok := c.stores[id]
	if !ok {
		return 0
	}
	return s.MemoryBits(c.params)
}

// ClearPackages removes every package from the tree and returns all unused
// permits to the root storage (iteration resets, Section 3.3). The drivers
// account the corresponding broadcast/upcast in CounterControl.
func (c *Core) ClearPackages() {
	total := c.storage
	for _, s := range c.stores {
		total += s.PermitCount()
		s.Clear()
	}
	c.storage = total
	c.rejectWave = false
}

// store returns the package store of a node, creating it lazily (new nodes
// join with empty whiteboards).
func (c *Core) store(id tree.NodeID) *pkgstore.Store {
	s, ok := c.stores[id]
	if !ok {
		s = pkgstore.NewStore()
		c.stores[id] = s
	}
	return s
}

// submit runs one request through the message-passing protocol and blocks
// (draining the runtime) until the verdict is in. Drivers and the public
// Submitter front-end call it; the decision sequence matches the
// centralized Core.Submit on identical traces.
func (c *Core) submit(req controller.Request) (controller.Grant, error) {
	if !c.tr.Contains(req.Node) {
		return controller.Grant{}, fmt.Errorf("submit at %d: %w", req.Node, tree.ErrNoSuchNode)
	}
	if err := c.validate(req); err != nil {
		return controller.Grant{}, err
	}
	c.rt.SetHandler(c.handle)
	c.pendingSlot = pending{req: req}
	c.cur = &c.pendingSlot
	c.localStep(req.Node)
	c.rt.Drain()
	p := c.cur
	c.cur = nil
	if !p.done && p.err == nil {
		p.err = fmt.Errorf("dist: request at %d lost in flight", req.Node)
	}
	return p.grant, p.err
}

// validate mirrors the centralized request preconditions (Section 2.1).
func (c *Core) validate(req controller.Request) error {
	switch req.Kind {
	case tree.RemoveLeaf:
		if req.Node == c.tr.Root() {
			return fmt.Errorf("remove root: %w", tree.ErrIsRoot)
		}
		if !c.tr.IsLeaf(req.Node) {
			return fmt.Errorf("remove-leaf at %d: %w", req.Node, tree.ErrNotLeaf)
		}
	case tree.RemoveInternal:
		if req.Node == c.tr.Root() {
			return fmt.Errorf("remove root: %w", tree.ErrIsRoot)
		}
		if c.tr.IsLeaf(req.Node) {
			return fmt.Errorf("remove-internal at %d: %w", req.Node, tree.ErrNotInternal)
		}
	case tree.AddInternal:
		p, err := c.tr.Parent(req.Child)
		if err != nil {
			return fmt.Errorf("add-internal: %w", err)
		}
		if p != req.Node {
			return fmt.Errorf("add-internal: request must arrive at the parent-to-be: %w",
				tree.ErrNotRelated)
		}
	case tree.None, tree.AddLeaf:
		// No preconditions beyond the node existing.
	default:
		return fmt.Errorf("unknown request kind %v", req.Kind)
	}
	return nil
}

// localStep runs the request's first protocol step at the requesting node u
// itself: items 1 and 2 of Protocol GrantOrReject, the d = 0 case of the
// filler search, and the degenerate u = root case. No message is spent on
// the request's arrival (requests originate at their node).
func (c *Core) localStep(u tree.NodeID) {
	if c.store(u).HasReject() {
		c.finishReject()
		return
	}
	if static := c.store(u).Static(); static != nil {
		c.finishGrant(static)
		return
	}
	if pk := c.store(u).MobileAtFillerDistance(c.params, 0); pk != nil {
		c.startDescent(u, pk, u)
		return
	}
	if u == c.tr.Root() {
		c.rootStep(u, 0)
		return
	}
	parent, err := c.tr.Parent(u)
	if err != nil {
		c.fail(err)
		return
	}
	pl := searchUpPool.Get().(*searchUp)
	pl.origin, pl.dist = u, 1
	c.rt.Send(u, parent, pl)
}

// handle dispatches one delivered message. It is installed on the runtime
// at the start of every submit, so several controllers can share one
// transport (the majority protocol runs two drivers on one runtime).
func (c *Core) handle(m sim.Message) {
	if c.cur == nil || c.cur.err != nil {
		return // request already failed; drop the rest of the flight
	}
	switch pl := m.Payload.(type) {
	case *searchUp:
		c.handleSearch(m.To, pl)
	case *descend:
		c.handleDescend(pl)
	case rejectFlood:
		c.handleRejectFlood(m.To)
	case transfer:
		c.store(m.To).Absorb(pl.packages, pl.hadReject)
	default:
		c.fail(fmt.Errorf("dist: unknown payload %T", m.Payload))
	}
}

// handleSearch continues the filler search at node w, which is pl.dist hops
// above the requesting node (item 3 of Protocol GrantOrReject). The climb
// re-sends the same pooled envelope hop after hop and releases it when the
// search ends.
func (c *Core) handleSearch(w tree.NodeID, pl *searchUp) {
	if pk := c.store(w).MobileAtFillerDistance(c.params, pl.dist); pk != nil {
		origin := pl.origin
		putSearchUp(pl)
		c.startDescent(w, pk, origin)
		return
	}
	if w == c.tr.Root() {
		origin, dist := pl.origin, pl.dist
		putSearchUp(pl)
		c.rootStep(origin, dist)
		return
	}
	parent, err := c.tr.Parent(w)
	if err != nil {
		putSearchUp(pl)
		c.fail(err)
		return
	}
	pl.dist++
	c.rt.Send(w, parent, pl)
}

// rootStep handles a search that reached the root without finding a filler
// (item 3b): fund a fresh package of level j(u) from the storage, or reject.
func (c *Core) rootStep(origin tree.NodeID, dRoot int64) {
	level := c.params.RootLevel(dRoot)
	need := c.params.MobileSize(level)
	if c.storage < need {
		if c.noRejects {
			c.finish(controller.Grant{Outcome: controller.WouldReject})
			return
		}
		c.broadcastRejectWave()
		c.finishReject()
		return
	}
	pk, err := c.createAtRoot(level)
	if err != nil {
		c.fail(err)
		return
	}
	c.startDescent(c.tr.Root(), pk, origin)
}

// createAtRoot creates a mobile package of the given level at the root,
// funding it from the root storage (which the caller has checked).
func (c *Core) createAtRoot(level int) (*pkgstore.Package, error) {
	size := c.params.MobileSize(level)
	var pk *pkgstore.Package
	if c.serials.Valid() {
		iv := pkgstore.Interval{Lo: c.serials.Lo, Hi: c.serials.Lo + size - 1}
		if iv.Hi > c.serials.Hi {
			return nil, fmt.Errorf("root serials exhausted: need %d, have %d", size, c.serials.Len())
		}
		var err error
		pk, err = pkgstore.NewMobileWithSerials(c.params, level, iv)
		if err != nil {
			return nil, err
		}
		c.serials.Lo = iv.Hi + 1
	} else {
		pk = pkgstore.NewMobile(c.params, level)
	}
	c.storage -= size
	c.store(c.tr.Root()).AddMobile(pk)
	// Permits leaving the storage enter the root's whiteboard: the subtree
	// estimator needs them counted as passing through the root so that
	// ω̃(root) dominates the root's true super-weight.
	if c.descent != nil {
		c.descent(size, c.tr.Root())
	}
	return pk, nil
}

// startDescent removes pkg from host's store and sends it down the tree
// toward origin, one message per edge (procedure Proc, item 4). The path is
// the breadcrumb trail the upward search established; it lives in a pooled
// descend envelope whose buffer is reused across requests.
func (c *Core) startDescent(host tree.NodeID, pkg *pkgstore.Package, origin tree.NodeID) {
	if err := c.store(host).RemoveMobile(pkg); err != nil {
		c.fail(fmt.Errorf("distribute: %w", err))
		return
	}
	pl := descendPool.Get().(*descend)
	path, err := c.tr.AppendPathBetween(origin, host, pl.path[:0])
	if err != nil {
		putDescend(pl)
		c.fail(err)
		return
	}
	// Reverse to host-first order so path[i] is len(path)-1-i hops above
	// origin.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if len(path) == 1 {
		// The package was found at origin itself (a level-0 filler at
		// d = 0): no transport needed.
		pl.path = path
		putDescend(pl)
		c.arrive(pkg, origin)
		return
	}
	pl.pkg, pl.path, pl.idx = pkg, path, 1
	c.rt.Send(host, path[1], pl)
}

// handleDescend advances the package one hop: the receiving node path[idx]
// is dist hops above origin; packages split when they enter a drop point
// u_{k-1} and convert to static on arrival. The same pooled envelope is
// re-sent hop after hop and released on arrival.
func (c *Core) handleDescend(pl *descend) {
	node := pl.path[pl.idx]
	dist := int64(len(pl.path) - 1 - pl.idx)
	pkg := pl.pkg
	if c.descent != nil {
		c.descent(pkg.Size, node)
	}
	// Split at drop points: for every level k > 0 whose drop distance
	// matches, one half stays here and the other half continues (the drop
	// distances are strictly decreasing in k, so at most one level fires).
	for pkg.Level > 0 && dist == c.params.UKDistance(pkg.Level-1) {
		p1, p2, err := pkg.Split()
		if err != nil {
			putDescend(pl)
			c.fail(err)
			return
		}
		c.store(node).AddMobile(p1)
		pkg = p2
	}
	if dist == 0 {
		putDescend(pl)
		c.arrive(pkg, node)
		return
	}
	pl.pkg = pkg
	pl.idx++
	c.rt.Send(node, pl.path[pl.idx], pl)
}

// arrive converts the level-0 package to static at the requesting node and
// grants the pending request from it.
func (c *Core) arrive(pkg *pkgstore.Package, u tree.NodeID) {
	if err := pkg.BecomeStatic(); err != nil {
		c.fail(err)
		return
	}
	c.store(u).AddStatic(pkg)
	c.finishGrant(pkg)
}

// finishGrant takes one permit from the static package at the request's
// node, applies a granted topological change, and completes the request
// (item 2 of Protocol GrantOrReject).
func (c *Core) finishGrant(static *pkgstore.Package) {
	req := c.cur.req
	serial, empty, err := static.TakePermit()
	if err != nil {
		c.fail(err)
		return
	}
	if empty {
		if err := c.store(req.Node).RemoveStatic(static); err != nil {
			c.fail(err)
			return
		}
	}
	c.granted++
	c.counters.Inc(stats.CounterGrants)

	g := controller.Grant{Outcome: controller.Granted, Serial: serial}
	switch req.Kind {
	case tree.None:
		// Non-topological event: nothing further.
	case tree.AddLeaf:
		id, err := c.tr.ApplyAddLeaf(req.Node)
		if err != nil {
			c.fail(err)
			return
		}
		c.stores[id] = pkgstore.NewStore()
		g.NewNode = id
		c.counters.Inc(stats.CounterTopoChanges)
	case tree.AddInternal:
		id, err := c.tr.ApplyAddInternal(req.Child)
		if err != nil {
			c.fail(err)
			return
		}
		c.stores[id] = pkgstore.NewStore()
		g.NewNode = id
		c.counters.Inc(stats.CounterTopoChanges)
	case tree.RemoveLeaf, tree.RemoveInternal:
		if err := c.removeNode(req.Node, req.Kind); err != nil {
			c.fail(err)
			return
		}
		c.counters.Inc(stats.CounterTopoChanges)
	}
	c.finish(g)
}

// removeNode performs the graceful deletion: the node's packages travel to
// its parent in one message, then the node leaves the tree. The runtime is
// quiet toward the node at this point (the protocol is sequential), which
// is the handshake the paper requires for graceful deletions.
func (c *Core) removeNode(id tree.NodeID, kind tree.ChangeKind) error {
	parent, err := c.tr.Parent(id)
	if err != nil {
		return err
	}
	pkgs, hadReject := c.store(id).TakeAll()
	if len(pkgs) > 0 || hadReject {
		c.rt.Send(id, parent, transfer{packages: pkgs, hadReject: hadReject})
	}
	delete(c.stores, id)
	switch kind {
	case tree.RemoveLeaf:
		err = c.tr.ApplyRemoveLeaf(id)
	case tree.RemoveInternal:
		err = c.tr.ApplyRemoveInternal(id)
	default:
		err = fmt.Errorf("removeNode: unexpected kind %v", kind)
	}
	return err
}

// broadcastRejectWave floods a reject package to every node, one message
// per tree edge (item 3b). Idempotent: once the wave ran, later requests
// find the reject package locally.
func (c *Core) broadcastRejectWave() {
	if c.rejectWave {
		return
	}
	c.rejectWave = true
	root := c.tr.Root()
	c.store(root).SetReject()
	c.floodChildren(root)
}

// handleRejectFlood stores the reject package at the receiver and forwards
// the wave to its children.
func (c *Core) handleRejectFlood(id tree.NodeID) {
	c.store(id).SetReject()
	c.floodChildren(id)
}

func (c *Core) floodChildren(id tree.NodeID) {
	kids, err := c.tr.Children(id)
	if err != nil {
		return // the node left the tree while the wave was in flight
	}
	for _, kid := range kids {
		c.rt.Send(id, kid, rejectFlood{})
	}
}

func (c *Core) finishReject() {
	c.rejected++
	c.counters.Inc(stats.CounterRejects)
	c.finish(controller.Grant{Outcome: controller.Rejected})
}

func (c *Core) finish(g controller.Grant) {
	c.cur.grant = g
	c.cur.done = true
}

func (c *Core) fail(err error) {
	c.cur.err = err
	c.cur.done = true
}

// Submitter is the request-submission front-end of the distributed core; it
// satisfies workload.Submitter.
type Submitter struct {
	core *Core
}

// NewSubmitter wraps a Core for direct request submission. rt names the
// runtime the core was built with (the core drives it; the parameter keeps
// the wiring explicit at call sites).
func NewSubmitter(core *Core, rt sim.Runtime) *Submitter {
	_ = rt
	return &Submitter{core: core}
}

// Submit answers one request, blocking until the distributed protocol has
// delivered the verdict.
func (s *Submitter) Submit(req controller.Request) (controller.Grant, error) {
	return s.core.submit(req)
}
