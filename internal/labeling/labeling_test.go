package labeling_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/labeling"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func randomTree(t *testing.T, n int, seed int64) *tree.Tree {
	t.Helper()
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n, seed); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAncestryLabelsExact(t *testing.T) {
	prop := func(seed int64) bool {
		tr := randomTree(t, 60, seed)
		a := labeling.BuildAncestry(tr)
		nodes := tr.Nodes()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 80; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			lu, err := a.Label(u)
			if err != nil {
				return false
			}
			lv, err := a.Label(v)
			if err != nil {
				return false
			}
			want, err := tr.IsAncestor(u, v)
			if err != nil {
				return false
			}
			if labeling.IsAncestor(lu, lv) != want {
				t.Logf("seed %d: ancestry(%d,%d) mismatch", seed, u, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestrySurvivesDeletions(t *testing.T) {
	tr := randomTree(t, 80, 5)
	a := labeling.BuildAncestry(tr)
	// Delete some leaves and internal nodes directly.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		nodes := tr.Nodes()
		id := nodes[rng.Intn(len(nodes))]
		if id == tr.Root() {
			continue
		}
		if tr.IsLeaf(id) {
			_ = tr.ApplyRemoveLeaf(id)
		} else {
			_ = tr.ApplyRemoveInternal(id)
		}
		a.Drop(id)
	}
	// Remaining pairs still answer correctly.
	nodes := tr.Nodes()
	for _, u := range nodes {
		for _, v := range nodes {
			lu, err1 := a.Label(u)
			lv, err2 := a.Label(v)
			if err1 != nil || err2 != nil {
				t.Fatalf("missing label after deletion: %v %v", err1, err2)
			}
			want, err := tr.IsAncestor(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if labeling.IsAncestor(lu, lv) != want {
				t.Fatalf("ancestry(%d,%d) mismatch after deletions", u, v)
			}
		}
	}
}

func TestNCALabelsExact(t *testing.T) {
	prop := func(seed int64) bool {
		tr := randomTree(t, 50, seed)
		scheme := labeling.BuildNCA(tr)
		pre := tr.DFSNumbers()
		nodes := tr.Nodes()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			lu, err := scheme.Label(u)
			if err != nil {
				return false
			}
			lv, err := scheme.Label(v)
			if err != nil {
				return false
			}
			gotPre, err := labeling.QueryNCA(lu, lv)
			if err != nil {
				t.Logf("seed %d: QueryNCA(%d,%d): %v", seed, u, v, err)
				return false
			}
			want, err := tr.NCA(u, v)
			if err != nil {
				return false
			}
			if gotPre != pre[want] {
				t.Logf("seed %d: NCA(%d,%d) = pre %d, want node %d (pre %d)",
					seed, u, v, gotPre, want, pre[want])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNCALabelSizeLogSquared(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		tr := randomTree(t, n, 7)
		scheme := labeling.BuildNCA(tr)
		logN := math.Log2(float64(n))
		bound := int(8 * logN * logN)
		if got := scheme.MaxBits(); got > bound {
			t.Fatalf("n=%d: max NCA label %d bits exceeds 8·log²n = %d", n, got, bound)
		}
	}
}

func TestDistanceLabelsExact(t *testing.T) {
	prop := func(seed int64) bool {
		tr := randomTree(t, 40, seed)
		scheme := labeling.BuildDistance(tr)
		nodes := tr.Nodes()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			lu, err := scheme.Label(u)
			if err != nil {
				return false
			}
			lv, err := scheme.Label(v)
			if err != nil {
				return false
			}
			got, err := labeling.QueryDistance(lu, lv)
			if err != nil {
				return false
			}
			want, err := tr.TreeDistance(u, v)
			if err != nil {
				return false
			}
			if got != want {
				t.Logf("seed %d: dist(%d,%d) = %d, want %d", seed, u, v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceDecompositionDepth(t *testing.T) {
	for _, n := range []int{128, 512} {
		// Worst case for naive decompositions: a path.
		tr, _ := tree.New()
		if err := workload.BuildPath(tr, n); err != nil {
			t.Fatal(err)
		}
		scheme := labeling.BuildDistance(tr)
		bound := int(2*math.Log2(float64(n))) + 4
		if got := scheme.MaxEntries(); got > bound {
			t.Fatalf("n=%d: decomposition depth %d exceeds %d", n, got, bound)
		}
	}
}

func TestDynamicLabelingShrinks(t *testing.T) {
	// Corollary 5.7's point: without rebuilds, labels stay sized for the
	// historical maximum; the dynamic wrapper must shrink them.
	tr := randomTree(t, 512, 9)
	rt := sim.NewDeterministic(9)
	counters := stats.NewCounters()
	dyn, err := labeling.NewDynamic(tr, rt,
		func(tr *tree.Tree) (labeling.Scheme, int64) {
			return labeling.BuildAncestry(tr), int64(tr.Size())
		}, counters)
	if err != nil {
		t.Fatal(err)
	}
	bitsBefore := dyn.Scheme().MaxBits()

	gen := workload.NewChurn(tr, workload.ShrinkHeavyMix(), 21)
	gen.SetMinSize(8)
	for i := 0; i < 4000 && tr.Size() > 16; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := dyn.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if tr.Size() > 64 {
		t.Fatalf("tree did not shrink enough: %d", tr.Size())
	}
	if dyn.Rebuilds() < 2 {
		t.Fatalf("rebuilds = %d; the shrink should have triggered rebuilds", dyn.Rebuilds())
	}
	bitsAfter := dyn.Scheme().MaxBits()
	if bitsAfter >= bitsBefore {
		t.Fatalf("labels did not shrink: %d -> %d bits", bitsBefore, bitsAfter)
	}
	// Label size tracks the current n: 2·⌈log₂(n+1)⌉ bits with slack.
	if err := dyn.CheckLabelSize(func(n int) int {
		return 2 * (int(math.Log2(float64(n+1))) + 2)
	}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicLabelingGrowth(t *testing.T) {
	tr := randomTree(t, 16, 10)
	rt := sim.NewDeterministic(10)
	dyn, err := labeling.NewDynamic(tr, rt,
		func(tr *tree.Tree) (labeling.Scheme, int64) {
			return labeling.BuildAncestry(tr), int64(tr.Size())
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.GrowOnlyMix(), 11)
	for i := 0; i < 600; i++ {
		req, _ := gen.Next()
		g, err := dyn.RequestChange(req)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if g.Outcome != ctl.Granted {
			t.Fatalf("grow request not granted at step %d", i)
		}
	}
	if dyn.Rebuilds() < 3 {
		t.Fatalf("rebuilds = %d; growth by 38x should trigger several", dyn.Rebuilds())
	}
}
