package labeling_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynctrl/internal/labeling"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func TestRoutingExactStretch(t *testing.T) {
	// Property: every routed path has exactly the tree-distance length
	// (stretch 1), on random trees and random pairs.
	prop := func(seed int64) bool {
		tr := randomTree(t, 50, seed)
		r, err := labeling.BuildRouting(tr)
		if err != nil {
			return false
		}
		nodes := tr.Nodes()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			hops, err := r.Route(tr, u, v)
			if err != nil {
				t.Logf("seed %d: route(%d,%d): %v", seed, u, v, err)
				return false
			}
			want, err := tr.TreeDistance(u, v)
			if err != nil || hops != want {
				t.Logf("seed %d: route(%d,%d) = %d hops, want %d", seed, u, v, hops, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingNextHopPorts(t *testing.T) {
	// NextHop must return real port numbers: the child port toward
	// descendants and the parent port otherwise.
	tr, root := tree.New()
	a, err := tr.ApplyAddLeaf(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.ApplyAddLeaf(a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := labeling.BuildRouting(tr)
	if err != nil {
		t.Fatal(err)
	}
	destB, err := r.Address(b)
	if err != nil {
		t.Fatal(err)
	}
	port, err := r.NextHop(root, destB)
	if err != nil {
		t.Fatal(err)
	}
	wantPort, err := tr.ChildPort(root, a)
	if err != nil || port != wantPort {
		t.Fatalf("NextHop(root→b) = port %d, want child port %d", port, wantPort)
	}
	destRoot, err := r.Address(root)
	if err != nil {
		t.Fatal(err)
	}
	port, err = r.NextHop(b, destRoot)
	if err != nil {
		t.Fatal(err)
	}
	wantPort, err = tr.ParentPort(b)
	if err != nil || port != wantPort {
		t.Fatalf("NextHop(b→root) = port %d, want parent port %d", port, wantPort)
	}
	// Local destination and unreachable-from-root errors.
	if _, err := r.NextHop(b, destB); err == nil {
		t.Fatal("local destination should error")
	}
}

func TestRoutingSurvivesLeafDeletions(t *testing.T) {
	// Observation 5.5: deleting degree-one nodes leaves surviving routes
	// exact (the deleted nodes were leaves, never transit nodes).
	tr := randomTree(t, 60, 4)
	r, err := labeling.BuildRouting(tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	removed := 0
	for removed < 20 {
		leaves := tr.Leaves()
		id := leaves[rng.Intn(len(leaves))]
		if id == tr.Root() {
			continue
		}
		if err := tr.ApplyRemoveLeaf(id); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	nodes := tr.Nodes()
	for _, u := range nodes {
		for _, v := range nodes {
			hops, err := r.Route(tr, u, v)
			if err != nil {
				t.Fatalf("route(%d,%d) after deletions: %v", u, v, err)
			}
			want, err := tr.TreeDistance(u, v)
			if err != nil || hops != want {
				t.Fatalf("route(%d,%d) = %d, want %d", u, v, hops, want)
			}
		}
	}
}

func TestRoutingDynamicWrapper(t *testing.T) {
	tr := randomTree(t, 256, 5)
	rt := sim.NewDeterministic(5)
	dyn, err := labeling.NewDynamic(tr, rt,
		func(tr *tree.Tree) (labeling.Scheme, int64) {
			r, err := labeling.BuildRouting(tr)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			return r, int64(tr.Size())
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.ShrinkHeavyMix(), 6)
	gen.SetMinSize(8)
	for i := 0; i < 3000 && tr.Size() > 16; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := dyn.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if dyn.Rebuilds() < 2 {
		t.Fatalf("rebuilds = %d, want ≥ 2 after 16x shrink", dyn.Rebuilds())
	}
	// Table size is Θ(deg·log n): after rebuilds it must track the
	// *current* n and maximum degree, not the historical maximum.
	// (Removals splice children upward, so degrees — and with them table
	// sizes — may legitimately grow even as n shrinks.)
	maxDeg := 0
	for _, v := range tr.Nodes() {
		if d, err := tr.ChildCount(v); err == nil && d > maxDeg {
			maxDeg = d
		}
	}
	logN := 1
	for v := 1; v < tr.Size()+1; v <<= 1 {
		logN++
	}
	bound := 4 * (maxDeg + 2) * 2 * (logN + 16) // +16: O(log N) port numbers
	if after := dyn.Scheme().MaxBits(); after > bound {
		t.Fatalf("table %d bits exceeds O(deg·log n) bound %d (deg=%d, n=%d)",
			after, bound, maxDeg, tr.Size())
	}
	// The rebuilt scheme routes exactly on the current tree.
	r, ok := dyn.Scheme().(*labeling.Routing)
	if !ok {
		t.Fatal("scheme type lost")
	}
	// Rebuild freshness: the wrapper may lag up to a factor-2 size drift;
	// rebuild once more for the exactness check.
	r2, err := labeling.BuildRouting(tr)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	nodes := tr.Nodes()
	for i := 0; i < 30; i++ {
		u := nodes[i%len(nodes)]
		v := nodes[(i*13+7)%len(nodes)]
		hops, err := r2.Route(tr, u, v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.TreeDistance(u, v)
		if err != nil || hops != want {
			t.Fatalf("route(%d,%d) = %d, want %d", u, v, hops, want)
		}
	}
}
