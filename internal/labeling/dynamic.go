package labeling

import (
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/estimator"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Scheme abstracts a static labeling scheme for the dynamic wrapper.
type Scheme interface {
	// MaxBits returns the largest label size in bits.
	MaxBits() int
}

// Builder constructs a static scheme over the current tree and reports the
// message cost M(π, n) of the distributed construction.
type Builder func(tr *tree.Tree) (Scheme, int64)

// Dynamic extends a static labeling scheme to the controlled dynamic model
// (Section 5.4): all topological changes pass through the size-estimation
// protocol, and whenever the size estimate drifts by a factor of two from
// the size at the last rebuild, the static scheme is recomputed. Label
// sizes therefore track the *current* n rather than the historical maximum,
// at amortized message cost O(M(π,n)/n) per change on top of the
// estimator's O(log²n).
type Dynamic struct {
	tr       *tree.Tree
	est      *estimator.Estimator
	build    Builder
	counters *stats.Counters

	scheme   Scheme
	rebuilds int
	lastN    int64
}

// NewDynamic wraps a static scheme builder. beta is the estimator's
// approximation parameter (2 is the natural choice).
func NewDynamic(tr *tree.Tree, rt sim.Runtime, build Builder, counters *stats.Counters) (*Dynamic, error) {
	if counters == nil {
		counters = stats.NewCounters()
	}
	est, err := estimator.New(tr, rt, 2, estimator.WithCounters(counters))
	if err != nil {
		return nil, err
	}
	d := &Dynamic{tr: tr, est: est, build: build, counters: counters}
	d.rebuild()
	return d, nil
}

func (d *Dynamic) rebuild() {
	scheme, msgs := d.build(d.tr)
	d.scheme = scheme
	d.rebuilds++
	d.lastN = int64(d.tr.Size())
	d.counters.Add(dist.CounterControl, msgs)
}

// Scheme returns the current static scheme (replaced on rebuilds).
func (d *Dynamic) Scheme() Scheme { return d.scheme }

// Rebuilds returns how many times the scheme was recomputed.
func (d *Dynamic) Rebuilds() int { return d.rebuilds }

// Counters returns the shared counters.
func (d *Dynamic) Counters() *stats.Counters { return d.counters }

// Estimator exposes the underlying size estimator.
func (d *Dynamic) Estimator() *estimator.Estimator { return d.est }

// RequestChange routes a change through the estimator and rebuilds the
// static scheme when the size has doubled or halved since the last rebuild.
func (d *Dynamic) RequestChange(req controller.Request) (controller.Grant, error) {
	g, err := d.est.RequestChange(req)
	if err != nil {
		return g, err
	}
	est, err := d.est.Estimate(d.tr.Root())
	if err != nil {
		return g, fmt.Errorf("labeling: %w", err)
	}
	if est >= 2*d.lastN || 2*est <= d.lastN {
		d.rebuild()
	}
	return g, nil
}

// Submit implements workload.Submitter.
func (d *Dynamic) Submit(req controller.Request) (controller.Grant, error) {
	return d.RequestChange(req)
}

// CheckLabelSize verifies the scheme's label size is at most
// factor·f(current n) bits, where f is supplied by the caller (e.g.
// 2·log₂n for ancestry labels).
func (d *Dynamic) CheckLabelSize(f func(n int) int, factor float64) error {
	n := d.tr.Size()
	bound := int(factor * float64(f(n)))
	if got := d.scheme.MaxBits(); got > bound {
		return fmt.Errorf("labeling: max label %d bits exceeds %d (n=%d)", got, bound, n)
	}
	return nil
}
