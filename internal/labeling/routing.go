package labeling

import (
	"fmt"

	"dynctrl/internal/tree"
)

// Routing is an exact (stretch-1) interval routing scheme on the tree
// (the first family of Observation 5.5): every node stores a table mapping
// each child's DFS interval to the port leading to that child, plus its
// parent port; a destination is addressed by its ancestry (interval)
// label. Next-hop decisions read only the local table and the destination
// label. Deletions of degree-one nodes never affect surviving routes, so
// the scheme extends to the controlled dynamic model via the Dynamic
// wrapper (Corollary 5.6).
type Routing struct {
	tables map[tree.NodeID]routingTable
	labels map[tree.NodeID]AncestryLabel
}

type routingTable struct {
	self       AncestryLabel
	parentPort int
	hasParent  bool
	entries    []routingEntry
}

type routingEntry struct {
	iv   AncestryLabel
	port int
	// child is retained for simulation-side forwarding (real deployments
	// use the port alone).
	child tree.NodeID
}

// BuildRouting labels the current tree and snapshots every node's routing
// table. The distributed construction costs O(n) messages (one DFS).
func BuildRouting(tr *tree.Tree) (*Routing, error) {
	iv := tr.Intervals()
	r := &Routing{
		tables: make(map[tree.NodeID]routingTable, len(iv)),
		labels: make(map[tree.NodeID]AncestryLabel, len(iv)),
	}
	for id, p := range iv {
		r.labels[id] = AncestryLabel{Pre: p[0], Post: p[1]}
	}
	for id := range iv {
		tbl := routingTable{self: r.labels[id]}
		if parent, err := tr.Parent(id); err == nil && parent != tree.InvalidNode {
			port, err := tr.ParentPort(id)
			if err != nil {
				return nil, fmt.Errorf("routing: %w", err)
			}
			tbl.parentPort = port
			tbl.hasParent = true
		}
		kids, err := tr.Children(id)
		if err != nil {
			return nil, fmt.Errorf("routing: %w", err)
		}
		for _, k := range kids {
			port, err := tr.ChildPort(id, k)
			if err != nil {
				return nil, fmt.Errorf("routing: %w", err)
			}
			tbl.entries = append(tbl.entries, routingEntry{iv: r.labels[k], port: port, child: k})
		}
		r.tables[id] = tbl
	}
	return r, nil
}

// Address returns the destination address (ancestry label) of a node.
func (r *Routing) Address(v tree.NodeID) (AncestryLabel, error) {
	l, ok := r.labels[v]
	if !ok {
		return AncestryLabel{}, fmt.Errorf("routing address of %d: %w", v, ErrNoLabel)
	}
	return l, nil
}

// Delivered reports whether dest addresses the node holding the table.
func (r *Routing) Delivered(at tree.NodeID, dest AncestryLabel) bool {
	tbl, ok := r.tables[at]
	return ok && tbl.self == dest
}

// NextHop returns the outgoing port at node `at` toward the destination
// address: the child whose interval contains dest, else the parent port.
func (r *Routing) NextHop(at tree.NodeID, dest AncestryLabel) (port int, err error) {
	tbl, ok := r.tables[at]
	if !ok {
		return 0, fmt.Errorf("routing table of %d: %w", at, ErrNoLabel)
	}
	if tbl.self == dest {
		return 0, fmt.Errorf("routing: destination %v is local", dest)
	}
	for _, e := range tbl.entries {
		if IsAncestor(e.iv, dest) {
			return e.port, nil
		}
	}
	if !tbl.hasParent {
		return 0, fmt.Errorf("routing: no route to %v from the root", dest)
	}
	return tbl.parentPort, nil
}

// nextHopNode is the simulation-side companion of NextHop.
func (r *Routing) nextHopNode(at tree.NodeID, dest AncestryLabel, tr *tree.Tree) (tree.NodeID, error) {
	tbl, ok := r.tables[at]
	if !ok {
		return tree.InvalidNode, fmt.Errorf("routing table of %d: %w", at, ErrNoLabel)
	}
	for _, e := range tbl.entries {
		if IsAncestor(e.iv, dest) {
			return e.child, nil
		}
	}
	p, err := tr.Parent(at)
	if err != nil || p == tree.InvalidNode {
		return tree.InvalidNode, fmt.Errorf("routing: stuck at %d", at)
	}
	return p, nil
}

// Route walks a packet from src to dst through the snapshotted tables and
// returns the hop count. It is the verification companion of NextHop (real
// deployments forward by port number alone).
func (r *Routing) Route(tr *tree.Tree, src, dst tree.NodeID) (hops int, err error) {
	dest, err := r.Address(dst)
	if err != nil {
		return 0, err
	}
	cur := src
	for limit := 0; limit <= len(r.tables)+1; limit++ {
		if r.Delivered(cur, dest) {
			return hops, nil
		}
		next, err := r.nextHopNode(cur, dest, tr)
		if err != nil {
			return hops, err
		}
		cur = next
		hops++
	}
	return hops, fmt.Errorf("routing: loop detected from %d to %d", src, dst)
}

// MaxBits implements Scheme: the largest routing table size in bits (the
// per-node table has one interval per child plus a port each).
func (r *Routing) MaxBits() int {
	max := 0
	for _, tbl := range r.tables {
		bits := tbl.self.Bits() + bitsFor(tbl.parentPort)
		for _, e := range tbl.entries {
			bits += e.iv.Bits() + bitsFor(e.port)
		}
		if bits > max {
			max = bits
		}
	}
	return max
}

var _ Scheme = (*Routing)(nil)
