// Package labeling implements the informative labeling schemes used by
// Section 5.4: static ancestry labels (the Kannan-Naor-Rudich interval
// scheme), nearest-common-ancestor labels via heavy-path decomposition,
// exact tree-distance labels via centroid (separator) decomposition, and a
// dynamic wrapper that uses the size-estimation protocol to recompute a
// static scheme when the tree's size changes by a constant factor — keeping
// label sizes proportional to the *current* n under controlled deletions
// (Corollaries 5.6 and 5.7).
package labeling

import (
	"errors"
	"fmt"
	"math/bits"

	"dynctrl/internal/tree"
)

// ErrNoLabel is returned when a queried node has no label (it joined after
// the last rebuild, or never existed).
var ErrNoLabel = errors.New("labeling: node has no label")

// AncestryLabel is the KNR interval label: v is an ancestor of u iff
// v's interval contains u's.
type AncestryLabel struct {
	Pre  int
	Post int
}

// Bits returns the label's encoding size in bits.
func (l AncestryLabel) Bits() int {
	return bitsFor(l.Pre) + bitsFor(l.Post)
}

func bitsFor(v int) int {
	if v <= 0 {
		return 1
	}
	return bits.Len(uint(v))
}

// Ancestry is a static ancestry labeling scheme over a snapshot of the
// tree. Its correctness survives deletions of both leaves and internal
// nodes (Corollary 5.7): removing nodes never breaks interval containment
// for surviving pairs.
type Ancestry struct {
	labels map[tree.NodeID]AncestryLabel
}

// BuildAncestry labels the current tree; the construction costs O(n)
// messages distributively (a DFS traversal).
func BuildAncestry(tr *tree.Tree) *Ancestry {
	iv := tr.Intervals()
	labels := make(map[tree.NodeID]AncestryLabel, len(iv))
	for id, p := range iv {
		labels[id] = AncestryLabel{Pre: p[0], Post: p[1]}
	}
	return &Ancestry{labels: labels}
}

// Label returns a node's label.
func (a *Ancestry) Label(v tree.NodeID) (AncestryLabel, error) {
	l, ok := a.labels[v]
	if !ok {
		return AncestryLabel{}, fmt.Errorf("ancestry label of %d: %w", v, ErrNoLabel)
	}
	return l, nil
}

// IsAncestor answers the ancestry query from labels alone.
func IsAncestor(anc, desc AncestryLabel) bool {
	return anc.Pre <= desc.Pre && desc.Post <= anc.Post
}

// MaxBits returns the largest label size in bits.
func (a *Ancestry) MaxBits() int {
	max := 0
	for _, l := range a.labels {
		if b := l.Bits(); b > max {
			max = b
		}
	}
	return max
}

// Drop removes a deleted node's label (its pair answers remain valid).
func (a *Ancestry) Drop(v tree.NodeID) { delete(a.labels, v) }

// NCALabel identifies the heavy paths on the root-to-v path: entry i names
// the i-th heavy path's head (by preorder number) and the preorder of the
// node at which the root-to-v path leaves that heavy path. The last entry's
// exit is v itself.
type NCALabel struct {
	Entries []NCAEntry
}

// NCAEntry is one (heavy path, exit point) hop of an NCA label.
type NCAEntry struct {
	Head int // preorder of the heavy path's head
	Exit int // preorder of the last path node on the root-to-v walk
}

// Bits returns the label's encoding size in bits.
func (l NCALabel) Bits() int {
	total := 0
	for _, e := range l.Entries {
		total += bitsFor(e.Head) + bitsFor(e.Exit)
	}
	return total
}

// NCA is a static nearest-common-ancestor labeling scheme built on a
// heavy-path decomposition; labels have O(log n) entries of O(log n) bits.
type NCA struct {
	labels map[tree.NodeID]NCALabel
	byPre  map[int]tree.NodeID
}

// BuildNCA labels the current tree.
func BuildNCA(tr *tree.Tree) *NCA {
	pre := tr.DFSNumbers()
	byPre := make(map[int]tree.NodeID, len(pre))
	for id, p := range pre {
		byPre[p] = id
	}
	// Heavy child by subtree size.
	size := make(map[tree.NodeID]int, len(pre))
	var fill func(v tree.NodeID) int
	fill = func(v tree.NodeID) int {
		s := 1
		kids, _ := tr.Children(v)
		for _, k := range kids {
			s += fill(k)
		}
		size[v] = s
		return s
	}
	fill(tr.Root())
	heavy := make(map[tree.NodeID]tree.NodeID, len(pre))
	for id := range pre {
		kids, _ := tr.Children(id)
		best, bestS := tree.InvalidNode, -1
		for _, k := range kids {
			if size[k] > bestS {
				best, bestS = k, size[k]
			}
		}
		if best != tree.InvalidNode {
			heavy[id] = best
		}
	}
	// Path head of v: climb while v is its parent's heavy child.
	head := make(map[tree.NodeID]tree.NodeID, len(pre))
	var findHead func(v tree.NodeID) tree.NodeID
	findHead = func(v tree.NodeID) tree.NodeID {
		if h, ok := head[v]; ok {
			return h
		}
		p, err := tr.Parent(v)
		var h tree.NodeID
		if err != nil || p == tree.InvalidNode || heavy[p] != v {
			h = v
		} else {
			h = findHead(p)
		}
		head[v] = h
		return h
	}
	labels := make(map[tree.NodeID]NCALabel, len(pre))
	for id := range pre {
		var entries []NCAEntry
		cur := id
		for {
			h := findHead(cur)
			entries = append(entries, NCAEntry{Head: pre[h], Exit: pre[cur]})
			p, err := tr.Parent(h)
			if err != nil || p == tree.InvalidNode {
				break
			}
			cur = p
		}
		// Reverse: root-side first.
		for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
			entries[i], entries[j] = entries[j], entries[i]
		}
		labels[id] = NCALabel{Entries: entries}
	}
	return &NCA{labels: labels, byPre: byPre}
}

// Label returns a node's NCA label.
func (n *NCA) Label(v tree.NodeID) (NCALabel, error) {
	l, ok := n.labels[v]
	if !ok {
		return NCALabel{}, fmt.Errorf("nca label of %d: %w", v, ErrNoLabel)
	}
	return l, nil
}

// QueryNCA computes the preorder number of the nearest common ancestor of
// two labeled nodes from their labels alone.
func QueryNCA(a, b NCALabel) (int, error) {
	n := len(a.Entries)
	if len(b.Entries) < n {
		n = len(b.Entries)
	}
	last := -1
	for i := 0; i < n; i++ {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Head != eb.Head {
			break
		}
		if ea.Exit == eb.Exit {
			last = ea.Exit
			continue
		}
		// Diverge on this heavy path: the NCA is the shallower exit.
		// On a heavy path, preorder increases with depth.
		if ea.Exit < eb.Exit {
			return ea.Exit, nil
		}
		return eb.Exit, nil
	}
	if last < 0 {
		return 0, errors.New("labeling: labels share no heavy path (different trees?)")
	}
	return last, nil
}

// NodeAt maps a preorder number back to a node id (test/verification aid;
// real deployments answer queries in preorder space).
func (n *NCA) NodeAt(pre int) (tree.NodeID, bool) {
	id, ok := n.byPre[pre]
	return id, ok
}

// MaxBits returns the largest NCA label size in bits.
func (n *NCA) MaxBits() int {
	max := 0
	for _, l := range n.labels {
		if b := l.Bits(); b > max {
			max = b
		}
	}
	return max
}

// DistanceLabel lists (separator, distance) pairs along the centroid
// decomposition path of the node; O(log n) entries.
type DistanceLabel struct {
	Entries []DistanceEntry
}

// DistanceEntry is one (separator id, hop distance) pair.
type DistanceEntry struct {
	Sep  tree.NodeID
	Dist int
}

// Bits returns the label's encoding size in bits.
func (l DistanceLabel) Bits() int {
	total := 0
	for _, e := range l.Entries {
		total += bitsFor(int(e.Sep)) + bitsFor(e.Dist)
	}
	return total
}

// Distance is an exact tree-distance labeling scheme built on a centroid
// decomposition. Deleting degree-one nodes does not change surviving
// distances, so the scheme's correctness survives such deletions
// (Observation 5.5).
type Distance struct {
	labels map[tree.NodeID]DistanceLabel
}

// BuildDistance labels the current tree.
func BuildDistance(tr *tree.Tree) *Distance {
	// Build an undirected adjacency snapshot.
	adj := make(map[tree.NodeID][]tree.NodeID, tr.Size())
	for _, v := range tr.Nodes() {
		kids, _ := tr.Children(v)
		adj[v] = append(adj[v], kids...)
		if p, err := tr.Parent(v); err == nil && p != tree.InvalidNode {
			adj[v] = append(adj[v], p)
		}
	}
	labels := make(map[tree.NodeID]DistanceLabel, len(adj))
	removed := make(map[tree.NodeID]bool, len(adj))

	var sizes map[tree.NodeID]int
	var calcSize func(v, p tree.NodeID) int
	calcSize = func(v, p tree.NodeID) int {
		s := 1
		for _, w := range adj[v] {
			if w != p && !removed[w] {
				s += calcSize(w, v)
			}
		}
		sizes[v] = s
		return s
	}
	var findCentroid func(v, p tree.NodeID, total int) tree.NodeID
	findCentroid = func(v, p tree.NodeID, total int) tree.NodeID {
		for _, w := range adj[v] {
			if w != p && !removed[w] && sizes[w] > total/2 {
				// sizes[w] is valid because calcSize rooted at the
				// component root visits children before parents.
				return findCentroid(w, v, total)
			}
		}
		return v
	}
	var bfsLabel func(c tree.NodeID)
	bfsLabel = func(c tree.NodeID) {
		type item struct {
			v tree.NodeID
			d int
		}
		queue := []item{{c, 0}}
		seen := map[tree.NodeID]bool{c: true}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			l := labels[it.v]
			l.Entries = append(l.Entries, DistanceEntry{Sep: c, Dist: it.d})
			labels[it.v] = l
			for _, w := range adj[it.v] {
				if !removed[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, item{w, it.d + 1})
				}
			}
		}
	}
	var decompose func(v tree.NodeID)
	decompose = func(v tree.NodeID) {
		sizes = make(map[tree.NodeID]int)
		total := calcSize(v, tree.InvalidNode)
		c := findCentroid(v, tree.InvalidNode, total)
		// Recompute sizes rooted at the centroid for the recursion.
		bfsLabel(c)
		removed[c] = true
		for _, w := range adj[c] {
			if !removed[w] {
				decompose(w)
			}
		}
	}
	decompose(tr.Root())
	return &Distance{labels: labels}
}

// Label returns a node's distance label.
func (d *Distance) Label(v tree.NodeID) (DistanceLabel, error) {
	l, ok := d.labels[v]
	if !ok {
		return DistanceLabel{}, fmt.Errorf("distance label of %d: %w", v, ErrNoLabel)
	}
	return l, nil
}

// QueryDistance computes the exact tree distance from two labels.
func QueryDistance(a, b DistanceLabel) (int, error) {
	bySep := make(map[tree.NodeID]int, len(b.Entries))
	for _, e := range b.Entries {
		bySep[e.Sep] = e.Dist
	}
	best := -1
	for _, e := range a.Entries {
		if d2, ok := bySep[e.Sep]; ok {
			if sum := e.Dist + d2; best < 0 || sum < best {
				best = sum
			}
		}
	}
	if best < 0 {
		return 0, errors.New("labeling: labels share no separator")
	}
	return best, nil
}

// MaxBits returns the largest distance label size in bits.
func (d *Distance) MaxBits() int {
	max := 0
	for _, l := range d.labels {
		if b := l.Bits(); b > max {
			max = b
		}
	}
	return max
}

// MaxEntries returns the deepest decomposition path length (should be
// O(log n)).
func (d *Distance) MaxEntries() int {
	max := 0
	for _, l := range d.labels {
		if len(l.Entries) > max {
			max = len(l.Entries)
		}
	}
	return max
}
