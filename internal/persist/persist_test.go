package persist_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/persist"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

const (
	testM = 4000
	testW = 800
)

// stack is one live admission stack a test drives traffic through.
type stack struct {
	tr       *tree.Tree
	ctl      *dist.Dynamic
	counters *stats.Counters
}

func newStack(t *testing.T, seed int64) *stack {
	t.Helper()
	tr, _ := tree.New()
	rt, err := sim.NewRuntime("random", seed)
	if err != nil {
		t.Fatal(err)
	}
	counters := stats.NewCounters()
	return &stack{tr: tr, ctl: dist.NewDynamic(tr, rt, testM, testW, false, counters), counters: counters}
}

// trafficGen deterministically produces the identical request sequence on
// every run with the same seed: node choices depend only on the set of
// created node ids, which recovery reproduces exactly.
type trafficGen struct {
	rng   *rand.Rand
	root  tree.NodeID
	nodes []tree.NodeID // live non-root nodes, in creation order
}

func newTrafficGen(root tree.NodeID, seed int64) *trafficGen {
	return &trafficGen{rng: rand.New(rand.NewSource(seed)), root: root}
}

func (g *trafficGen) next() controller.Request {
	pick := func() tree.NodeID {
		if len(g.nodes) == 0 {
			return g.root
		}
		if g.rng.Intn(4) == 0 {
			return g.root
		}
		return g.nodes[g.rng.Intn(len(g.nodes))]
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		return controller.Request{Node: pick(), Kind: tree.AddLeaf}
	case 3:
		if len(g.nodes) > 4 {
			// Remove the most recent node when it is a leaf (it is, unless
			// something was attached under it; then fall through to an
			// event, keeping the sequence deterministic either way).
			return controller.Request{Node: g.nodes[len(g.nodes)-1], Kind: tree.RemoveLeaf}
		}
		fallthrough
	default:
		return controller.Request{Node: pick(), Kind: tree.None}
	}
}

// observe folds a grant back into the generator's view of the world.
func (g *trafficGen) observe(req controller.Request, grant controller.Grant, err error) {
	if err != nil || grant.Outcome != controller.Granted {
		return
	}
	switch req.Kind {
	case tree.AddLeaf:
		g.nodes = append(g.nodes, grant.NewNode)
	case tree.RemoveLeaf:
		for i, id := range g.nodes {
			if id == req.Node {
				g.nodes = append(g.nodes[:i], g.nodes[i+1:]...)
				break
			}
		}
	}
}

type traceEntry struct {
	outcome controller.Outcome
	serial  int64
	newNode tree.NodeID
	failed  bool
}

// runLogged submits n requests, committing each effect to eng (when non
// nil) and checkpointing when the engine asks for it.
func runLogged(t *testing.T, s *stack, g *trafficGen, eng *persist.Engine, n int) []traceEntry {
	t.Helper()
	var trace []traceEntry
	reqs := make([]controller.Request, 1)
	results := make([]controller.BatchResult, 1)
	for i := 0; i < n; i++ {
		req := g.next()
		grant, err := s.ctl.Submit(req)
		g.observe(req, grant, err)
		trace = append(trace, traceEntry{grant.Outcome, grant.Serial, grant.NewNode, err != nil})
		if eng == nil {
			continue
		}
		reqs[0] = req
		results[0] = controller.BatchResult{Grant: grant, Err: err}
		if err := eng.CommitEffects(reqs, results); err != nil {
			t.Fatalf("commit effect %d: %v", i, err)
		}
		if eng.ShouldCheckpoint() {
			st := captureState(s, eng)
			if err := eng.Checkpoint(st); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	return trace
}

func captureState(s *stack, eng *persist.Engine) *persist.State {
	return &persist.State{
		Index:       eng.AppendedIndex(),
		Incarnation: eng.Incarnation(),
		M:           testM,
		W:           testW,
		Tree:        s.tr.Snapshot(),
		Ctl:         s.ctl.State(),
		Counters:    s.counters.Snapshot(),
	}
}

// recoverStack boots a stack from dir: restore the snapshot when present,
// replay the tail, and return the engine plus the live stack.
func recoverStack(t *testing.T, dir string, seed int64, opts persist.Options) (*persist.Engine, *stack, *persist.Recovery) {
	t.Helper()
	eng, rec, err := persist.Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	s := newStack(t, seed)
	if rec.Snapshot != nil {
		rt, err := sim.NewRuntime("random", seed+100)
		if err != nil {
			t.Fatal(err)
		}
		s.ctl, err = persist.RestoreInto(rec.Snapshot, s.tr, rt, s.counters)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	if _, err := persist.Replay(rec.Tail, s.ctl); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return eng, s, rec
}

// TestRecoveryMatchesUninterruptedRun is the core determinism property: a
// run that crashes (at a point of the test's choosing) and recovers
// produces the identical grant/reject/serial/new-node trace as the same
// request sequence against a never-crashed stack.
func TestRecoveryMatchesUninterruptedRun(t *testing.T) {
	const total, crashAt = 600, 337
	for _, snapEvery := range []int64{0, 100} {
		ref := newStack(t, 7)
		refGen := newTrafficGen(ref.tr.Root(), 11)
		want := runLogged(t, ref, refGen, nil, total)

		dir := t.TempDir()
		eng, rec, err := persist.Open(dir, persist.Options{SnapshotEvery: snapEvery})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Snapshot != nil || len(rec.Tail) != 0 {
			t.Fatalf("fresh dir recovered snapshot=%v tail=%d", rec.Snapshot, len(rec.Tail))
		}
		if eng.Incarnation() != 1 {
			t.Fatalf("first boot incarnation %d, want 1", eng.Incarnation())
		}
		s := newStack(t, 7)
		gen := newTrafficGen(s.tr.Root(), 11)
		got := runLogged(t, s, gen, eng, crashAt)
		eng.Abandon() // kill -9: nothing after the last fsync survives

		eng2, s2, rec2 := recoverStack(t, dir, 7, persist.Options{SnapshotEvery: snapEvery})
		if eng2.Incarnation() != 2 {
			t.Fatalf("second boot incarnation %d, want 2", eng2.Incarnation())
		}
		if snapEvery > 0 && rec2.Snapshot == nil {
			t.Fatalf("no snapshot recovered despite SnapshotEvery=%d over %d effects", snapEvery, crashAt)
		}
		got = append(got, runLogged(t, s2, gen, eng2, total-crashAt)...)
		if err := eng2.Close(); err != nil {
			t.Fatal(err)
		}

		if len(got) != len(want) {
			t.Fatalf("trace length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("snapEvery=%d: trace diverges at request %d: got %+v, want %+v",
					snapEvery, i, got[i], want[i])
			}
		}

		sums, violations, err := persist.VerifyDir(dir, testM)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 0 {
			t.Fatalf("cross-incarnation violations: %v", violations)
		}
		if len(sums) != 2 {
			t.Fatalf("%d incarnations in history, want 2", len(sums))
		}
	}
}

// TestRecoveryTornFinalRecord: a record cut mid-write is truncated and the
// log recovers through the last complete record.
func TestRecoveryTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []controller.Request{{Node: 1, Kind: tree.None}}
	results := []controller.BatchResult{{Grant: controller.Grant{Outcome: controller.Granted}}}
	for i := 0; i < 10; i++ {
		if err := eng.CommitEffects(reqs, results); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Append half of a valid block to the active segment: a torn tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	whole := persist.AppendRecords(nil, []persist.Record{{
		Index: 11, Type: persist.RecEffect, Node: 1,
		Kind: tree.None, Outcome: controller.Granted,
	}})
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(whole[:len(whole)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warned bool
	eng2, rec, err := persist.Open(dir, persist.Options{
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "torn") {
				warned = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if rec.TruncatedBytes == 0 || !warned {
		t.Fatalf("torn tail not truncated (bytes=%d warned=%v)", rec.TruncatedBytes, warned)
	}
	if len(rec.Tail) != 10 {
		t.Fatalf("recovered %d records, want the 10 complete ones", len(rec.Tail))
	}
	if rec.Tail[9].Index != 10 {
		t.Fatalf("last recovered index %d, want 10", rec.Tail[9].Index)
	}
}

// TestRecoveryHeaderlessSegment: a crash between segment creation and the
// header fsync leaves a headerless file; it must be skipped on every
// subsequent boot (and by the history audit), not just the first one.
func TestRecoveryHeaderlessSegment(t *testing.T) {
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []controller.Request{{Node: 1, Kind: tree.None}}
	results := []controller.BatchResult{{Grant: controller.Grant{Outcome: controller.Granted}}}
	for i := 0; i < 5; i++ {
		if err := eng.CommitEffects(reqs, results); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// A 0-byte segment with the next sequence number: the crash artifact.
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for boot := 2; boot <= 4; boot++ {
		eng, rec, err := persist.Open(dir, persist.Options{})
		if err != nil {
			t.Fatalf("boot %d after headerless segment: %v", boot, err)
		}
		if len(rec.Tail) != 5 {
			t.Fatalf("boot %d recovered %d records, want 5", boot, len(rec.Tail))
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := persist.VerifyDir(dir, 100); err != nil {
			t.Fatalf("boot %d: history audit: %v", boot, err)
		}
	}
}

// TestRecoveryTruncatedSnapshot: a snapshot file cut short fails its frame
// checks and recovery falls back to replaying the whole log.
func TestRecoveryTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newStack(t, 3)
	gen := newTrafficGen(s.tr.Root(), 5)
	runLogged(t, s, gen, eng, 60)
	if err := eng.Checkpoint(captureState(s, eng)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots: %v %v", snaps, err)
	}
	buf, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0], buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, s2, rec := recoverStack(t, dir, 3, persist.Options{})
	defer eng2.Close()
	if rec.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", rec.CorruptSnapshots)
	}
	if rec.Snapshot != nil {
		t.Fatal("truncated snapshot was accepted")
	}
	if len(rec.Tail) != 60 {
		t.Fatalf("tail %d records, want full replay of 60", len(rec.Tail))
	}
	if s2.ctl.Granted() != s.ctl.Granted() {
		t.Fatalf("recovered %d grants, want %d", s2.ctl.Granted(), s.ctl.Granted())
	}
}

// TestRecoveryEmptyDir: opening a fresh directory boots cleanly.
func TestRecoveryEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub", "wal")
	eng, rec, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Tail) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("non-empty recovery from fresh dir: %+v", rec)
	}
	if eng.Incarnation() != 1 {
		t.Fatalf("incarnation %d, want 1", eng.Incarnation())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen bumps the incarnation even with no traffic.
	eng2, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.Incarnation() != 2 {
		t.Fatalf("incarnation %d, want 2", eng2.Incarnation())
	}
}

// TestRecoverySnapshotNewerThanWAL: when every segment covered by the
// snapshot is gone (or the snapshot outran a lost tail), recovery proceeds
// from the snapshot alone and indexing continues past it.
func TestRecoverySnapshotNewerThanWAL(t *testing.T) {
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newStack(t, 3)
	gen := newTrafficGen(s.tr.Root(), 5)
	runLogged(t, s, gen, eng, 40)
	if err := eng.Checkpoint(captureState(s, eng)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove every WAL segment, leaving only MANIFEST + snapshot.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, seg := range segs {
		os.Remove(seg)
	}

	eng2, s2, rec := recoverStack(t, dir, 3, persist.Options{})
	if rec.Snapshot == nil || rec.Snapshot.Index != 40 {
		t.Fatalf("snapshot not recovered: %+v", rec.Snapshot)
	}
	if len(rec.Tail) != 0 {
		t.Fatalf("tail %d records, want none", len(rec.Tail))
	}
	// New effects continue the index space after the snapshot.
	reqs := []controller.Request{{Node: s2.tr.Root(), Kind: tree.None}}
	g, err := s2.ctl.Submit(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := eng2.AppendEffects(reqs, []controller.BatchResult{{Grant: g}})
	if err != nil {
		t.Fatal(err)
	}
	if ticket != 41 {
		t.Fatalf("next index %d, want 41", ticket)
	}
	if err := eng2.WaitDurable(ticket); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringCheckpointRace is the raced regression test: Close racing
// a background checkpoint (and concurrent appends) must neither panic nor
// corrupt the directory. Run under -race in CI.
func TestCloseDuringCheckpointRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		dir := t.TempDir()
		eng, _, err := persist.Open(dir, persist.Options{SnapshotEvery: 8})
		if err != nil {
			t.Fatal(err)
		}
		s := newStack(t, int64(round))
		gen := newTrafficGen(s.tr.Root(), int64(round)+50)

		var wg sync.WaitGroup
		var mu sync.Mutex // the stack is serial; appenders share it
		wg.Add(2)
		go func() {
			defer wg.Done()
			reqs := make([]controller.Request, 1)
			results := make([]controller.BatchResult, 1)
			for i := 0; i < 200; i++ {
				mu.Lock()
				req := gen.next()
				grant, err := s.ctl.Submit(req)
				gen.observe(req, grant, err)
				reqs[0], results[0] = req, controller.BatchResult{Grant: grant, Err: err}
				ticket, aerr := eng.AppendEffects(reqs, results)
				var snap *persist.State
				if aerr == nil && eng.ShouldCheckpoint() {
					snap = captureState(s, eng)
				}
				mu.Unlock()
				if aerr != nil {
					return // engine closed under us: expected half the time
				}
				if snap != nil {
					eng.CheckpointAsync(snap)
				}
				if eng.WaitDurable(ticket) != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			// Let some traffic through, then slam the door.
			for {
				mu.Lock()
				done := eng.AppendedIndex() > uint64(16+round*9)
				mu.Unlock()
				if done {
					break
				}
			}
			eng.Close()
		}()
		wg.Wait()
		eng.Close()

		// The directory must still recover cleanly.
		eng2, _, err := persist.Open(dir, persist.Options{})
		if err != nil {
			t.Fatalf("round %d: reopen after raced close: %v", round, err)
		}
		eng2.Close()
	}
}

// TestGroupCommitConcurrentAppends: many goroutines appending and waiting
// on their tickets all become durable, with far fewer fsyncs than records.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reqs := []controller.Request{{Node: 1, Kind: tree.None}}
			results := []controller.BatchResult{{Grant: controller.Grant{Outcome: controller.Granted}}}
			for i := 0; i < perWorker; i++ {
				ticket, err := eng.AppendEffects(reqs, results)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := eng.WaitDurable(ticket); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := eng.StatsSnapshot()
	if st.AppendedRecords != workers*perWorker {
		t.Fatalf("appended %d records, want %d", st.AppendedRecords, workers*perWorker)
	}
	if st.DurableIndex != uint64(workers*perWorker) {
		t.Fatalf("durable index %d, want %d", st.DurableIndex, workers*perWorker)
	}
	if st.Fsyncs >= st.AppendedRecords {
		t.Fatalf("%d fsyncs for %d records: group commit is not grouping", st.Fsyncs, st.AppendedRecords)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	history, err := persist.ReadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(history[0].Records); n != workers*perWorker {
		t.Fatalf("history holds %d records, want %d", n, workers*perWorker)
	}
}

// TestWaveSplitsIntoBoundedBlocks: a backlog larger than the seal
// threshold is framed as several blocks sharing one fsync, and every
// record survives recovery — an unbounded wave must never produce a block
// the reader would reject as oversized.
func TestWaveSplitsIntoBoundedBlocks(t *testing.T) {
	defer persist.SetSealBytesForTests(64)()
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One giant batch: far more packed bytes than one 64-byte seal span.
	const n = 500
	reqs := make([]controller.Request, n)
	results := make([]controller.BatchResult, n)
	for i := range reqs {
		reqs[i] = controller.Request{Node: tree.NodeID(i + 1), Kind: tree.None}
		results[i] = controller.BatchResult{Grant: controller.Grant{Outcome: controller.Granted}}
	}
	if err := eng.CommitEffects(reqs, results); err != nil {
		t.Fatal(err)
	}
	st := eng.StatsSnapshot()
	if st.Fsyncs == 0 || st.Fsyncs > 2 {
		t.Fatalf("%d fsyncs for one wave, want the whole split wave under one or two", st.Fsyncs)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, rec, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if len(rec.Tail) != n {
		t.Fatalf("recovered %d records across split blocks, want %d", len(rec.Tail), n)
	}
	for i, r := range rec.Tail {
		if r.Index != uint64(i+1) || r.Node != tree.NodeID(i+1) {
			t.Fatalf("record %d decoded as index %d node %d", i, r.Index, r.Node)
		}
	}
}

// TestSegmentRotation: a tiny segment threshold rotates files and recovery
// reads records across the segment boundary.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	eng, _, err := persist.Open(dir, persist.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []controller.Request{{Node: 1, Kind: tree.None}}
	results := []controller.BatchResult{{Grant: controller.Grant{Outcome: controller.Granted}}}
	for i := 0; i < 100; i++ {
		if err := eng.CommitEffects(reqs, results); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("%d segments, want rotation to have produced several", len(segs))
	}
	eng2, rec, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if len(rec.Tail) != 100 {
		t.Fatalf("recovered %d records across segments, want 100", len(rec.Tail))
	}
}

// TestStateCodecRoundTrip: encode → decode → encode is the identity on a
// real captured state.
func TestStateCodecRoundTrip(t *testing.T) {
	s := newStack(t, 21)
	gen := newTrafficGen(s.tr.Root(), 22)
	runLogged(t, s, gen, nil, 150)
	st := &persist.State{
		Index:       150,
		Incarnation: 3,
		M:           testM,
		W:           testW,
		Tree:        s.tr.Snapshot(),
		Ctl:         s.ctl.State(),
		Counters:    s.counters.Snapshot(),
	}
	enc1 := persist.AppendState(nil, st)
	dec, err := persist.DecodeSnapshot(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := persist.AppendState(nil, dec)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("state codec round trip is not the identity")
	}

	// The decoded state restores into an equivalent stack.
	tr, _ := tree.New()
	rt, err := sim.NewRuntime("random", 99)
	if err != nil {
		t.Fatal(err)
	}
	counters := stats.NewCounters()
	ctl, err := persist.RestoreInto(dec, tr, rt, counters)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Granted() != s.ctl.Granted() {
		t.Fatalf("restored %d grants, want %d", ctl.Granted(), s.ctl.Granted())
	}
	if tr.Size() != s.tr.Size() || tr.Changes() != s.tr.Changes() {
		t.Fatalf("restored tree size/changes %d/%d, want %d/%d",
			tr.Size(), tr.Changes(), s.tr.Size(), s.tr.Changes())
	}
}

// TestReplayDivergenceDetected: a doctored effect record makes replay fail
// loudly instead of continuing from a diverged state.
func TestReplayDivergenceDetected(t *testing.T) {
	s := newStack(t, 2)
	tail := []persist.Record{{
		Index: 1, Type: persist.RecEffect,
		Node: s.tr.Root(), Kind: tree.AddLeaf,
		Outcome: controller.Granted, NewNode: 999, // the real id will be 2
	}}
	if _, err := persist.Replay(tail, s.ctl); err == nil {
		t.Fatal("replay accepted a diverged new-node id")
	}
}
