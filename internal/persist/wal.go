package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout of a WAL directory:
//
//	MANIFEST            incarnation counter (rewritten atomically at boot)
//	wal-00000001.log    record segments, strictly increasing sequence
//	wal-00000002.log
//	snap-00000000000000c8.snap   snapshots, named by covered WAL index
//
// Segment files open with a fixed header naming the incarnation that wrote
// them and the index of their first record; records then follow back to
// back. Snapshots are written to a temp file, fsynced and renamed, so a
// crash mid-checkpoint leaves the previous snapshot intact.

var (
	segmentMagic  = [4]byte{'D', 'W', 'A', 'L'}
	manifestMagic = [4]byte{'D', 'M', 'A', 'N'}
)

// segmentFormat versions the segment header + record framing.
const segmentFormat = 1

// segmentHeaderLen is the fixed byte length of a segment header.
const segmentHeaderLen = 4 + 2 + 8 + 8 + 4

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
	manifestName   = "MANIFEST"
)

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

func snapshotPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapshotPrefix, index, snapshotSuffix))
}

// appendSegmentHeader appends an encoded segment header.
func appendSegmentHeader(buf []byte, incarnation, firstIndex uint64) []byte {
	start := len(buf)
	buf = append(buf, segmentMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, segmentFormat)
	buf = binary.LittleEndian.AppendUint64(buf, incarnation)
	buf = binary.LittleEndian.AppendUint64(buf, firstIndex)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:start+4+2+8+8], castagnoli))
}

// decodeSegmentHeader decodes a segment header from the front of p.
func decodeSegmentHeader(p []byte) (incarnation, firstIndex uint64, err error) {
	if len(p) < segmentHeaderLen {
		return 0, 0, fmt.Errorf("persist: segment header truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != segmentMagic {
		return 0, 0, fmt.Errorf("persist: bad segment magic %q", p[:4])
	}
	if f := binary.LittleEndian.Uint16(p[4:]); f != segmentFormat {
		return 0, 0, fmt.Errorf("persist: segment format %d, this build reads %d", f, segmentFormat)
	}
	incarnation = binary.LittleEndian.Uint64(p[6:])
	firstIndex = binary.LittleEndian.Uint64(p[14:])
	if crc32.Checksum(p[:4+2+8+8], castagnoli) != binary.LittleEndian.Uint32(p[22:]) {
		return 0, 0, fmt.Errorf("persist: segment header checksum mismatch")
	}
	return incarnation, firstIndex, nil
}

// listSegments returns the segment sequence numbers present in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// listSnapshots returns the snapshot indices present in dir, sorted.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix)
		idx, err := strconv.ParseUint(num, 16, 64)
		if err != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// segmentRecords is one scanned segment: its header fields, decoded
// records, and how the scan ended.
type segmentRecords struct {
	seq         uint64
	incarnation uint64
	firstIndex  uint64
	records     []Record
	// tornAt is the byte offset of a torn/corrupt tail (-1 for a clean
	// end); err holds the decode error that stopped the scan.
	tornAt int64
	err    error
}

// scanSegment reads and decodes one whole segment file.
func scanSegment(dir string, seq uint64) (*segmentRecords, error) {
	buf, err := os.ReadFile(segmentPath(dir, seq))
	if err != nil {
		return nil, err
	}
	sr := &segmentRecords{seq: seq, tornAt: -1}
	inc, first, err := decodeSegmentHeader(buf)
	if err != nil {
		// A header that never made it to disk intact: the whole file is a
		// torn tail.
		sr.tornAt = 0
		sr.err = err
		return sr, nil
	}
	sr.incarnation = inc
	sr.firstIndex = first
	off := int64(segmentHeaderLen)
	for off < int64(len(buf)) {
		recs, n, err := DecodeWALRecords(buf[off:], sr.records)
		if err != nil {
			sr.tornAt = off
			sr.err = err
			return sr, nil
		}
		sr.records = recs
		off += int64(n)
	}
	return sr, nil
}

// scanSegments applies the shared crash-artifact policy across every
// segment in dir, in sequence order: a headerless segment (tornAt == 0 —
// the header never reached disk) is skipped, a torn tail in the *final*
// segment is tolerated (and truncated on disk when truncate is set), and
// corruption anywhere else is refused — the records after it would gap.
// Boot recovery and the cross-incarnation history audit both build on
// this one policy, so they can never accept different histories. It
// returns the surviving scans, the torn bytes found in the final segment,
// and the highest sequence number present.
func scanSegments(dir string, truncate bool, logf func(string, ...any)) ([]*segmentRecords, int64, uint64, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	var (
		out       []*segmentRecords
		tornBytes int64
		maxSeq    uint64
	)
	for i, seq := range seqs {
		maxSeq = seq
		sr, err := scanSegment(dir, seq)
		if err != nil {
			return nil, 0, 0, err
		}
		if sr.tornAt == 0 {
			// A crash between segment creation and the header fsync leaves
			// a headerless file that decodably contains nothing. Skip it —
			// if it ever held real records, the callers' index-contiguity
			// checks flag the gap instead of silently dropping history.
			logf("persist: skipping headerless segment %s: %v", segmentPath(dir, seq), sr.err)
			continue
		}
		if sr.tornAt > 0 {
			if i != len(seqs)-1 {
				return nil, 0, 0, fmt.Errorf("persist: segment %s corrupt at offset %d (not the final segment): %w",
					segmentPath(dir, seq), sr.tornAt, sr.err)
			}
			if fi, err := os.Stat(segmentPath(dir, seq)); err == nil {
				tornBytes = fi.Size() - sr.tornAt
			}
			logf("persist: torn tail of %s at offset %d (%d bytes): %v",
				segmentPath(dir, seq), sr.tornAt, tornBytes, sr.err)
			if truncate {
				if err := os.Truncate(segmentPath(dir, seq), sr.tornAt); err != nil {
					return nil, 0, 0, err
				}
			}
		}
		out = append(out, sr)
	}
	return out, tornBytes, maxSeq, nil
}

// writeFileAtomic writes data to path via a temp file + fsync + rename +
// directory fsync, so the file is either absent or complete.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// readManifest returns the incarnation recorded in dir's MANIFEST (0 when
// absent).
func readManifest(dir string) (uint64, error) {
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(buf) != 4+2+8+4 {
		return 0, fmt.Errorf("persist: manifest is %d bytes", len(buf))
	}
	if [4]byte(buf[:4]) != manifestMagic {
		return 0, fmt.Errorf("persist: bad manifest magic %q", buf[:4])
	}
	if f := binary.LittleEndian.Uint16(buf[4:]); f != segmentFormat {
		return 0, fmt.Errorf("persist: manifest format %d", f)
	}
	inc := binary.LittleEndian.Uint64(buf[6:])
	if crc32.Checksum(buf[:14], castagnoli) != binary.LittleEndian.Uint32(buf[14:]) {
		return 0, fmt.Errorf("persist: manifest checksum mismatch")
	}
	return inc, nil
}

// writeManifest atomically records the incarnation in dir's MANIFEST.
func writeManifest(dir string, incarnation uint64) error {
	buf := append([]byte(nil), manifestMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, segmentFormat)
	buf = binary.LittleEndian.AppendUint64(buf, incarnation)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[:14], castagnoli))
	return writeFileAtomic(filepath.Join(dir, manifestName), buf)
}
