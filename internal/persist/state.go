package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"dynctrl/internal/dist"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/tree"
)

// Snapshot file layout:
//
//	[4]byte  magic   "DSNP"
//	uint16   format  (snapshotFormat)
//	uint64   payloadLen
//	uint32   crc32c(payload)
//	[]byte   payload (versioned binary State encoding)
//
// The payload is the fixed-width little-endian encoding of a State: the
// applied-index watermark, the admission contract, the complete tree
// snapshot, the dist.Dynamic driver stack including every node's package
// store, and the shared counters. Everything is emitted in sorted order, so
// identical states encode to identical bytes.

var snapshotMagic = [4]byte{'D', 'S', 'N', 'P'}

// snapshotFormat versions the State payload encoding.
const snapshotFormat = 1

// MaxSnapshotLen bounds a snapshot payload (1 GiB); a corrupt length field
// can never drive an absurd allocation.
const MaxSnapshotLen = 1 << 30

// State is everything the durability engine persists in one snapshot: the
// admission stack's complete state as of WAL index Index. Recovery loads
// the latest valid State and replays only the WAL records after Index.
type State struct {
	// Index is the WAL index of the last record applied to this state.
	Index uint64
	// Incarnation records which process incarnation captured the state.
	Incarnation uint64
	// M and W echo the admission contract (recovery refuses a snapshot
	// taken under a different contract).
	M, W int64

	Tree     *tree.Snapshot
	Ctl      *dist.DynamicState
	Counters map[string]int64
}

// enc is the append-only encoder shared by the snapshot codec.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec is the bounds-checked cursor shared by the snapshot decoders.
type dec struct {
	p   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: snapshot: "+format, args...)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.p) {
		d.fail("truncated payload")
		return 0
	}
	v := d.p[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.p) {
		d.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.p) {
		d.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) bool() bool { return d.u8() != 0 }
func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.p) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.p[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a collection length and validates it against the bytes that
// remain, assuming each element occupies at least minBytes, so a hostile
// count cannot drive a large allocation.
func (d *dec) count(minBytes int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int(n) > (len(d.p)-d.off)/minBytes {
		d.fail("collection of %d elements exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// AppendState appends the framed snapshot encoding of st to buf.
func AppendState(buf []byte, st *State) []byte {
	var e enc
	e.u64(st.Index)
	e.u64(st.Incarnation)
	e.i64(st.M)
	e.i64(st.W)
	appendTree(&e, st.Tree)
	appendDynamic(&e, st.Ctl)
	appendCounters(&e, st.Counters)

	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, snapshotFormat)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(e.b)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(e.b, castagnoli))
	return append(buf, e.b...)
}

func appendTree(e *enc, ts *tree.Snapshot) {
	e.u64(uint64(ts.Root))
	e.u64(uint64(ts.NextID))
	e.u64(ts.ChangeSeq)
	e.u64(uint64(ts.EverExisted))
	e.u32(uint32(len(ts.Deleted)))
	for _, id := range ts.Deleted {
		e.u64(uint64(id))
	}
	e.u32(uint32(len(ts.Nodes)))
	for _, n := range ts.Nodes {
		e.u64(uint64(n.ID))
		e.u64(uint64(n.Parent))
		e.i64(int64(n.ParentPort))
		e.u32(uint32(len(n.Children)))
		for i, c := range n.Children {
			e.u64(uint64(c))
			e.i64(int64(n.ChildPorts[i]))
		}
	}
}

func decodeTree(d *dec) *tree.Snapshot {
	ts := &tree.Snapshot{
		Root:        tree.NodeID(d.u64()),
		NextID:      tree.NodeID(d.u64()),
		ChangeSeq:   d.u64(),
		EverExisted: int(d.u64()),
	}
	nDel := d.count(8)
	for i := 0; i < nDel && d.err == nil; i++ {
		ts.Deleted = append(ts.Deleted, tree.NodeID(d.u64()))
	}
	nNodes := d.count(8 + 8 + 8 + 4)
	for i := 0; i < nNodes && d.err == nil; i++ {
		n := tree.NodeSnapshot{
			ID:         tree.NodeID(d.u64()),
			Parent:     tree.NodeID(d.u64()),
			ParentPort: int(d.i64()),
		}
		nKids := d.count(16)
		for j := 0; j < nKids && d.err == nil; j++ {
			n.Children = append(n.Children, tree.NodeID(d.u64()))
			n.ChildPorts = append(n.ChildPorts, int(d.i64()))
		}
		ts.Nodes = append(ts.Nodes, n)
	}
	return ts
}

func appendStore(e *enc, st pkgstore.StoreState) {
	e.bool(st.Reject)
	appendPackages := func(pkgs []pkgstore.PackageState) {
		e.u32(uint32(len(pkgs)))
		for _, pk := range pkgs {
			e.i64(int64(pk.Level))
			e.i64(pk.Size)
			e.bool(pk.Mobile)
			e.i64(pk.SerialLo)
			e.i64(pk.SerialHi)
		}
	}
	appendPackages(st.Statics)
	appendPackages(st.Mobiles)
}

func decodeStore(d *dec) pkgstore.StoreState {
	st := pkgstore.StoreState{Reject: d.bool()}
	decodePackages := func() []pkgstore.PackageState {
		n := d.count(8 + 8 + 1 + 8 + 8)
		var out []pkgstore.PackageState
		for i := 0; i < n && d.err == nil; i++ {
			out = append(out, pkgstore.PackageState{
				Level:    int(d.i64()),
				Size:     d.i64(),
				Mobile:   d.bool(),
				SerialLo: d.i64(),
				SerialHi: d.i64(),
			})
		}
		return out
	}
	st.Statics = decodePackages()
	st.Mobiles = decodePackages()
	return st
}

func appendCore(e *enc, c dist.CoreState) {
	e.i64(c.U)
	e.i64(c.M)
	e.i64(c.W)
	e.i64(c.Storage)
	e.i64(c.SerialLo)
	e.i64(c.SerialHi)
	e.i64(c.Granted)
	e.i64(c.Rejected)
	e.bool(c.NoRejects)
	e.bool(c.RejectWave)
	e.u32(uint32(len(c.Stores)))
	for _, ns := range c.Stores {
		e.u64(uint64(ns.Node))
		appendStore(e, ns.Store)
	}
}

func decodeCore(d *dec) dist.CoreState {
	c := dist.CoreState{
		U:          d.i64(),
		M:          d.i64(),
		W:          d.i64(),
		Storage:    d.i64(),
		SerialLo:   d.i64(),
		SerialHi:   d.i64(),
		Granted:    d.i64(),
		Rejected:   d.i64(),
		NoRejects:  d.bool(),
		RejectWave: d.bool(),
	}
	n := d.count(8 + 1 + 4 + 4)
	for i := 0; i < n && d.err == nil; i++ {
		node := tree.NodeID(d.u64())
		c.Stores = append(c.Stores, dist.NodeStoreState{Node: node, Store: decodeStore(d)})
	}
	return c
}

func appendDynamic(e *enc, st *dist.DynamicState) {
	e.i64(st.W)
	e.i64(st.Mi)
	e.i64(st.Ui)
	e.i64(st.Zi)
	e.i64(st.GrantedBase)
	e.i64(int64(st.Iterations))
	e.bool(st.Terminating)
	e.bool(st.Terminated)
	e.bool(st.RejectAll)

	it := st.Inner
	e.i64(it.U)
	e.i64(it.W)
	e.i64(it.CurM)
	e.i64(int64(it.Iterations))
	e.bool(it.FinalPhase)
	e.bool(it.Terminating)
	e.bool(it.TrivialPhase)
	e.i64(it.TrivialLeft)
	e.bool(it.Terminated)
	e.bool(it.RejectAll)
	e.i64(it.Granted)
	appendCore(e, it.Core)
}

func decodeDynamic(d *dec) *dist.DynamicState {
	st := &dist.DynamicState{
		W:           d.i64(),
		Mi:          d.i64(),
		Ui:          d.i64(),
		Zi:          d.i64(),
		GrantedBase: d.i64(),
		Iterations:  int(d.i64()),
		Terminating: d.bool(),
		Terminated:  d.bool(),
		RejectAll:   d.bool(),
	}
	st.Inner = dist.IteratedState{
		U:            d.i64(),
		W:            d.i64(),
		CurM:         d.i64(),
		Iterations:   int(d.i64()),
		FinalPhase:   d.bool(),
		Terminating:  d.bool(),
		TrivialPhase: d.bool(),
		TrivialLeft:  d.i64(),
		Terminated:   d.bool(),
		RejectAll:    d.bool(),
		Granted:      d.i64(),
	}
	st.Inner.Core = decodeCore(d)
	return st
}

func appendCounters(e *enc, counters map[string]int64) {
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, k := range names {
		e.str(k)
		e.i64(counters[k])
	}
}

func decodeCounters(d *dec) map[string]int64 {
	n := d.count(4 + 8)
	out := make(map[string]int64, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		out[k] = d.i64()
	}
	return out
}

// DecodeSnapshot decodes a framed snapshot. Any framing, checksum or field
// error is returned; a valid frame always yields a structurally complete
// State (tree validity is established later, by Restore).
func DecodeSnapshot(p []byte) (*State, error) {
	if len(p) < 4+2+8+4 {
		return nil, fmt.Errorf("persist: snapshot header truncated")
	}
	if [4]byte(p[:4]) != snapshotMagic {
		return nil, fmt.Errorf("persist: bad snapshot magic %q", p[:4])
	}
	format := binary.LittleEndian.Uint16(p[4:])
	if format != snapshotFormat {
		return nil, fmt.Errorf("persist: snapshot format %d, this build reads %d", format, snapshotFormat)
	}
	n := binary.LittleEndian.Uint64(p[6:])
	crc := binary.LittleEndian.Uint32(p[14:])
	if n > MaxSnapshotLen {
		return nil, fmt.Errorf("persist: snapshot payload %d exceeds limit", n)
	}
	payload := p[18:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("persist: snapshot payload %d bytes, header declares %d", len(payload), n)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	d := &dec{p: payload}
	st := &State{
		Index:       d.u64(),
		Incarnation: d.u64(),
		M:           d.i64(),
		W:           d.i64(),
	}
	st.Tree = decodeTree(d)
	st.Ctl = decodeDynamic(d)
	st.Counters = decodeCounters(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("persist: snapshot has %d trailing payload bytes", len(payload)-d.off)
	}
	return st, nil
}
