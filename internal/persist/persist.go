// Package persist is the durability engine of the dynctrld admission
// stack: a length-prefixed, checksummed write-ahead log of controller
// effects (grants, rejects, topology changes, reject-wave completions)
// plus periodic snapshots of the full tree + dist.Dynamic + serial
// allocator state.
//
// # Write path
//
// Effects are appended in controller execution order and become durable via
// group commit: appends only encode into an in-memory buffer and return a
// ticket (the last appended WAL index); a single background syncer flushes
// the buffer to the active segment and fsyncs once per wakeup, covering
// every batch appended since the previous fsync. Callers that must not
// release a result before it is durable block in WaitDurable(ticket) — the
// dynctrld server does exactly that between running a SubmitMany batch
// through the controller and writing its Results frame, so the pipeline
// keeps combining batches while earlier batches ride out their fsync (at
// most one fsync per SubmitMany run, usually far fewer).
//
// # Recovery
//
// Open scans the directory: the latest structurally valid snapshot is
// decoded, segments are scanned in order, a torn final record (a crash mid
// write) is truncated, and every effect after the snapshot's index is
// returned for replay. Replay re-submits the logged requests through a
// freshly restored controller and verifies each verdict matches the log —
// the controller stack is deterministic given its state and the request
// sequence, so recovery either reproduces the pre-crash state exactly or
// fails loudly. Each Open bumps the incarnation counter in MANIFEST; the
// cross-incarnation oracle checks (no serial reused, granted ≤ M summed
// across restarts) run over the whole retained record history.
package persist

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"dynctrl/internal/controller"
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("persist: engine closed")

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 8 << 20

// sealBytes bounds the packed payload of one block (half of MaxBlockLen,
// so a sealed wave can never approach the reader's rejection threshold).
// A variable only so the block-splitting test can shrink it.
var sealBytes = MaxBlockLen / 2

// Options configures an Engine.
type Options struct {
	// SnapshotEvery asks ShouldCheckpoint to fire every n effect records
	// (0 disables automatic checkpoints; Checkpoint can still be called
	// explicitly).
	SnapshotEvery int64
	// SegmentBytes is the rotation threshold of the active segment
	// (default DefaultSegmentBytes).
	SegmentBytes int64
	// CommitWindow is how long the group-commit syncer waits after picking
	// up a batch for more batches to pile in before it fsyncs (0 = fsync
	// immediately). A window around the fsync latency roughly halves the
	// fsyncs per decided batch under concurrent load at the cost of that
	// much added commit latency.
	CommitWindow time.Duration
	// Logf, when set, receives recovery warnings (torn tails truncated,
	// corrupt snapshots skipped).
	Logf func(format string, args ...any)
	// SyncObserver, when set, is called by the group-commit syncer after
	// every fsync wave with the number of records the wave made durable
	// and its write+fsync duration. Called from the syncer goroutine, one
	// wave at a time; implementations must be cheap and must not call back
	// into the engine.
	SyncObserver func(records int, d time.Duration)
}

// Recovery reports what Open reconstructed from the directory.
type Recovery struct {
	// Snapshot is the latest valid snapshot (nil when booting fresh).
	Snapshot *State
	// Tail holds the records to replay on top of the snapshot, in log
	// order (effects and wave markers).
	Tail []Record
	// TruncatedBytes counts torn-tail bytes dropped from the final
	// segment.
	TruncatedBytes int64
	// CorruptSnapshots counts snapshot files that failed to decode and
	// were skipped.
	CorruptSnapshots int
}

// Stats is a point-in-time sample of the engine's activity counters.
type Stats struct {
	Incarnation       uint64
	AppendedRecords   int64
	AppendedIndex     uint64
	DurableIndex      uint64
	Fsyncs            int64
	BytesWritten      int64
	Segments          int64
	Snapshots         int64
	LastSnapshotIndex uint64
}

// Engine is a live WAL directory: one process appends, syncs and
// checkpoints at a time. It is safe for concurrent use.
type Engine struct {
	dir  string
	opts Options

	mu          sync.Mutex
	appendCond  *sync.Cond // wakes the syncer
	durableCond *sync.Cond // wakes WaitDurable callers
	buf         []byte     // packed records not yet handed to the syncer
	bufFirst    uint64     // WAL index of the first record in buf
	bufCount    int        // records in buf
	// sealOffs/sealCounts mark byte offsets (and cumulative record counts)
	// where buf must split into separate blocks, so an fsync-stall backlog
	// never produces a block the reader would reject as oversized.
	sealOffs   []int
	sealCounts []int
	free       []byte // recycled append buffer
	nextIndex  uint64
	appended   uint64 // last index encoded into buf or flushed
	durable    uint64 // last index fsynced
	syncErr    error  // sticky write/fsync failure
	closed     bool
	abandoned  bool
	snapBusy   bool
	sinceSnap  int64
	stats      Stats

	// The active segment file is owned by the syncer goroutine after Open
	// (the checkpoint path never touches it).
	f        *os.File
	fileSize int64

	wg sync.WaitGroup
}

// Open recovers the WAL directory (creating it if needed), bumps the
// incarnation, opens a fresh active segment and starts the group-commit
// syncer. The returned Recovery carries the snapshot + record tail the
// caller must replay before submitting new work.
func Open(dir string, opts Options) (*Engine, *Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}

	rec, lastIndex, maxSeq, err := recoverDir(dir, opts.Logf)
	if err != nil {
		return nil, nil, err
	}

	inc, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	inc++
	if err := writeManifest(dir, inc); err != nil {
		return nil, nil, err
	}

	e := &Engine{
		dir:       dir,
		opts:      opts,
		nextIndex: lastIndex + 1,
		appended:  lastIndex,
		durable:   lastIndex,
	}
	e.appendCond = sync.NewCond(&e.mu)
	e.durableCond = sync.NewCond(&e.mu)
	e.stats.Incarnation = inc
	if rec.Snapshot != nil {
		e.stats.LastSnapshotIndex = rec.Snapshot.Index
	}

	// A fresh segment per incarnation: old segments are never appended to,
	// so their contents stay attributable to the incarnation that wrote
	// them.
	hdr := appendSegmentHeader(nil, inc, e.nextIndex)
	f, err := os.OpenFile(segmentPath(dir, maxSeq+1), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	e.f = f
	e.fileSize = int64(len(hdr))
	e.stats.Segments = int64(maxSeq + 1)

	e.wg.Add(1)
	go e.syncLoop()
	return e, rec, nil
}

// recoverDir scans snapshots and segments, truncating a torn tail in the
// final segment. It returns the recovery report, the highest WAL index on
// disk, and the highest segment sequence number.
func recoverDir(dir string, logf func(string, ...any)) (*Recovery, uint64, uint64, error) {
	rec := &Recovery{}

	if err := loadLatestSnapshot(dir, rec, logf); err != nil {
		return nil, 0, 0, err
	}

	scans, tornBytes, maxSeq, err := scanSegments(dir, true, logf)
	if err != nil {
		return nil, 0, 0, err
	}
	rec.TruncatedBytes = tornBytes

	snapIndex := uint64(0)
	if rec.Snapshot != nil {
		snapIndex = rec.Snapshot.Index
	}
	lastIndex := snapIndex
	for _, sr := range scans {
		for _, r := range sr.records {
			if r.Index != lastIndex+1 && r.Index > snapIndex {
				return nil, 0, 0, fmt.Errorf("persist: WAL index gap: record %d follows %d in %s",
					r.Index, lastIndex, segmentPath(dir, sr.seq))
			}
			if r.Index > snapIndex {
				lastIndex = r.Index
				rec.Tail = append(rec.Tail, r)
			}
		}
	}
	return rec, lastIndex, maxSeq, nil
}

// loadLatestSnapshot fills rec.Snapshot with the newest structurally
// valid snapshot in dir. Corrupt ones are skipped (counted in rec) so a
// crash mid-checkpoint (or bit rot) degrades to the previous snapshot
// plus a longer replay, never to a failed boot.
func loadLatestSnapshot(dir string, rec *Recovery, logf func(string, ...any)) error {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(snapshotPath(dir, snaps[i]))
		if err != nil {
			return err
		}
		st, err := DecodeSnapshot(buf)
		if err != nil {
			rec.CorruptSnapshots++
			logf("persist: skipping corrupt snapshot %s: %v", snapshotPath(dir, snaps[i]), err)
			continue
		}
		if st.Index != snaps[i] {
			rec.CorruptSnapshots++
			logf("persist: snapshot %s covers index %d, name says %d; skipping",
				snapshotPath(dir, snaps[i]), st.Index, snaps[i])
			continue
		}
		rec.Snapshot = st
		break
	}
	return nil
}

// ReadLatestSnapshot returns the newest structurally valid snapshot in
// dir without opening the directory for writing (nil when none exists) —
// the offline audit uses it to learn the contract the history was written
// under.
func ReadLatestSnapshot(dir string) (*State, error) {
	rec := &Recovery{}
	if err := loadLatestSnapshot(dir, rec, func(string, ...any) {}); err != nil {
		return nil, err
	}
	return rec.Snapshot, nil
}

// Dir returns the engine's directory.
func (e *Engine) Dir() string { return e.dir }

// Incarnation returns this boot's incarnation number (1 on first boot).
func (e *Engine) Incarnation() uint64 { return e.stats.Incarnation }

// AppendedIndex returns the index of the last record appended (durable or
// not).
func (e *Engine) AppendedIndex() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.appended
}

// StatsSnapshot samples the engine's activity counters.
func (e *Engine) StatsSnapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.AppendedIndex = e.appended
	st.DurableIndex = e.durable
	return st
}

// AppendEffects encodes one decided batch into the log buffer: one effect
// record per non-error result, in order. It returns the group-commit
// ticket — pass it to WaitDurable before releasing the batch's results to
// any client. Errored results mutate no controller state and are skipped.
func (e *Engine) AppendEffects(reqs []controller.Request, results []controller.BatchResult) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	if e.syncErr != nil {
		return 0, e.syncErr
	}
	appended := false
	for i, br := range results {
		if br.Err != nil {
			continue
		}
		if e.bufCount == 0 {
			e.bufFirst = e.nextIndex
		}
		e.buf = AppendPackedRecord(e.buf, Record{
			Type:    RecEffect,
			Node:    reqs[i].Node,
			Kind:    reqs[i].Kind,
			Child:   reqs[i].Child,
			Outcome: br.Grant.Outcome,
			Serial:  br.Grant.Serial,
			NewNode: br.Grant.NewNode,
		})
		e.bufCount++
		e.nextIndex++
		e.stats.AppendedRecords++
		e.sinceSnap++
		e.maybeSeal()
		appended = true
	}
	if appended {
		e.appended = e.nextIndex - 1
		e.appendCond.Signal()
	}
	return e.appended, nil
}

// AppendWave logs a reject-wave completion marker.
func (e *Engine) AppendWave(granted int64) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	if e.syncErr != nil {
		return 0, e.syncErr
	}
	if e.bufCount == 0 {
		e.bufFirst = e.nextIndex
	}
	e.buf = AppendPackedRecord(e.buf, Record{Type: RecWave, Granted: granted})
	e.bufCount++
	e.appended = e.nextIndex
	e.nextIndex++
	e.stats.AppendedRecords++
	e.maybeSeal()
	e.appendCond.Signal()
	return e.appended, nil
}

// maybeSeal marks a block boundary when the unsealed tail of buf reaches
// sealBytes. Called with mu held after every append.
func (e *Engine) maybeSeal() {
	lastOff := 0
	if n := len(e.sealOffs); n > 0 {
		lastOff = e.sealOffs[n-1]
	}
	if len(e.buf)-lastOff >= sealBytes {
		e.sealOffs = append(e.sealOffs, len(e.buf))
		e.sealCounts = append(e.sealCounts, e.bufCount)
	}
}

// WaitDurable blocks until every record up to ticket is fsynced (or the
// engine failed/closed). A zero ticket returns immediately.
func (e *Engine) WaitDurable(ticket uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.durable < ticket {
		if e.syncErr != nil {
			return e.syncErr
		}
		if e.closed {
			return ErrClosed
		}
		e.durableCond.Wait()
	}
	return e.syncErr
}

// CommitEffects is AppendEffects + WaitDurable: the synchronous write path
// used by serial drivers (the scenario engine), one fsync window per call.
func (e *Engine) CommitEffects(reqs []controller.Request, results []controller.BatchResult) error {
	ticket, err := e.AppendEffects(reqs, results)
	if err != nil {
		return err
	}
	return e.WaitDurable(ticket)
}

// syncLoop is the group-commit syncer: it owns the active segment file.
// Each wakeup steals every packed record appended since the last fsync,
// frames them as one block (one length + one CRC per wave), writes it and
// fsyncs once — the fsync, the framing overhead and the checksum are all
// amortized over the wave.
func (e *Engine) syncLoop() {
	defer e.wg.Done()
	var block []byte // syncer-owned frame scratch
	for {
		e.mu.Lock()
		for len(e.buf) == 0 && !e.closed {
			e.appendCond.Wait()
		}
		if len(e.buf) == 0 || e.abandoned {
			// Closed with nothing (allowed to be) flushed: Abandon drops
			// buffered records deliberately — that is the kill -9 model.
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		packed := e.buf
		first := e.bufFirst
		count := e.bufCount
		target := e.appended
		sealOffs := e.sealOffs
		sealCounts := e.sealCounts
		e.buf = e.free[:0]
		e.free = nil
		e.bufCount = 0
		e.sealOffs = nil
		e.sealCounts = nil
		e.mu.Unlock()

		// Group-commit window: batches decided while an fsync is in flight
		// coalesce naturally, but a batch decided just *after* a sync wave
		// started would otherwise get a whole fsync to itself. Yield the
		// scheduler until appends go quiet (or the window expires) so the
		// pipeline can finish deciding the batches already racing toward
		// the log and one fsync covers them all. Yielding instead of
		// sleeping matters: timer wakeups have ~millisecond granularity
		// under load, several times the fsync itself.
		if e.opts.CommitWindow > 0 {
			deadline := time.Now().Add(e.opts.CommitWindow)
			last, idle := count, 0
			for idle < 4 && time.Now().Before(deadline) {
				runtime.Gosched()
				e.mu.Lock()
				cur := count + e.bufCount
				e.mu.Unlock()
				if cur == last {
					idle++
				} else {
					last, idle = cur, 0
				}
			}
			e.mu.Lock()
			if len(e.buf) > 0 {
				base, baseCount := len(packed), count
				for i, off := range e.sealOffs {
					sealOffs = append(sealOffs, off+base)
					sealCounts = append(sealCounts, e.sealCounts[i]+baseCount)
				}
				packed = append(packed, e.buf...)
				count += e.bufCount
				target = e.appended
				e.buf = e.buf[:0]
				e.bufCount = 0
				e.sealOffs = e.sealOffs[:0]
				e.sealCounts = e.sealCounts[:0]
			}
			e.mu.Unlock()
		}

		// Frame the wave: one block per sealed span (so no block ever
		// exceeds the reader's size bound) plus the unsealed remainder,
		// all covered by the single fsync below.
		block = block[:0]
		prevOff, prevCount := 0, 0
		for i, off := range sealOffs {
			block = AppendBlock(block, first+uint64(prevCount), sealCounts[i]-prevCount, packed[prevOff:off])
			prevOff, prevCount = off, sealCounts[i]
		}
		if prevOff < len(packed) {
			block = AppendBlock(block, first+uint64(prevCount), count-prevCount, packed[prevOff:])
		}
		syncStart := time.Now()
		err := e.writeBatch(block, target)
		if e.opts.SyncObserver != nil {
			e.opts.SyncObserver(count, time.Since(syncStart))
		}

		e.mu.Lock()
		if err != nil {
			e.syncErr = err
		} else {
			e.durable = target
			e.stats.Fsyncs++
			e.stats.BytesWritten += int64(len(block))
		}
		e.free = packed[:0]
		e.durableCond.Broadcast()
		closed := e.closed
		empty := len(e.buf) == 0
		e.mu.Unlock()
		if closed && (empty || err != nil) {
			return
		}
	}
}

// writeBatch appends the encoded records to the active segment, fsyncs,
// and rotates to a fresh segment when the size threshold is crossed;
// flushed names the last index in batch, so the new segment's header can
// name the index it starts at. Runs on the syncer goroutine only.
func (e *Engine) writeBatch(batch []byte, flushed uint64) error {
	if _, err := e.f.Write(batch); err != nil {
		return err
	}
	if err := datasync(e.f); err != nil {
		return err
	}
	e.fileSize += int64(len(batch))
	if e.fileSize < e.opts.SegmentBytes {
		return nil
	}
	first := flushed + 1
	e.mu.Lock()
	inc := e.stats.Incarnation
	seq := uint64(e.stats.Segments) + 1
	e.stats.Segments = int64(seq)
	e.mu.Unlock()
	if err := e.f.Close(); err != nil {
		return err
	}
	hdr := appendSegmentHeader(nil, inc, first)
	f, err := os.OpenFile(segmentPath(e.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(e.dir); err != nil {
		f.Close()
		return err
	}
	e.f = f
	e.fileSize = int64(len(hdr))
	return nil
}

// ShouldCheckpoint reports whether enough effects accumulated since the
// last snapshot and no checkpoint is in flight. A true return reserves the
// checkpoint slot — the caller must follow up with Checkpoint or
// CheckpointAsync (or the slot stays reserved).
func (e *Engine) ShouldCheckpoint() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.snapBusy || e.opts.SnapshotEvery <= 0 || e.sinceSnap < e.opts.SnapshotEvery {
		return false
	}
	e.snapBusy = true
	e.sinceSnap = 0
	return true
}

// CheckpointAsync encodes and writes the captured state in the background.
// The capture itself must already be a deep copy (tree.Snapshot and
// dist.State copy); the engine only serializes it. Close waits for
// in-flight checkpoints.
func (e *Engine) CheckpointAsync(st *State) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		if err := e.writeSnapshot(st); err != nil {
			e.opts.Logf("persist: checkpoint at index %d failed: %v", st.Index, err)
		}
		e.mu.Lock()
		e.snapBusy = false
		e.mu.Unlock()
	}()
}

// Checkpoint synchronously writes a snapshot of the captured state. Unlike
// CheckpointAsync it does not require a ShouldCheckpoint reservation.
func (e *Engine) Checkpoint(st *State) error {
	err := e.writeSnapshot(st)
	e.mu.Lock()
	e.snapBusy = false
	e.mu.Unlock()
	return err
}

func (e *Engine) writeSnapshot(st *State) error {
	e.mu.Lock()
	if e.abandoned {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	buf := AppendState(nil, st)
	if err := writeFileAtomic(snapshotPath(e.dir, st.Index), buf); err != nil {
		return err
	}
	e.mu.Lock()
	e.stats.Snapshots++
	if st.Index > e.stats.LastSnapshotIndex {
		e.stats.LastSnapshotIndex = st.Index
	}
	e.mu.Unlock()
	// Retire everything but the two newest snapshots: the newest serves
	// recovery, the runner-up survives a corrupt newest. Segments are
	// retained in full — the cross-incarnation verifier reads the whole
	// effect history.
	snaps, err := listSnapshots(e.dir)
	if err != nil {
		return nil //nolint:nilerr // GC failure is not a checkpoint failure
	}
	for i := 0; i+2 < len(snaps); i++ {
		os.Remove(snapshotPath(e.dir, snaps[i]))
	}
	return nil
}

// Close flushes buffered records, waits for the syncer and any in-flight
// checkpoint, and closes the active segment. Idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closed = true
	e.appendCond.Signal()
	e.durableCond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	var err error
	if e.f != nil {
		err = e.f.Close()
		e.f = nil
	}
	return err
}

// Abandon simulates a crash: buffered, un-fsynced records are dropped and
// the files are closed as-is — exactly the state a kill -9 leaves behind
// (modulo the kernel page cache). The scenario engine's crash-restart
// faults use it; production code calls Close.
func (e *Engine) Abandon() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.abandoned = true
	e.closed = true
	e.buf = nil
	e.bufCount = 0
	e.sealOffs, e.sealCounts = nil, nil
	e.appendCond.Signal()
	e.durableCond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	if e.f != nil {
		e.f.Close()
		e.f = nil
	}
}
