package persist_test

import (
	"sync"
	"testing"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/persist"
	"dynctrl/internal/tree"
)

// TestSyncObserver: the fsync observer sees every commit wave — the
// per-wave record counts must sum to everything appended, each wave must
// report a measurable duration, and the wave count must match the
// engine's own fsync tally.
func TestSyncObserver(t *testing.T) {
	var (
		mu      sync.Mutex
		waves   int
		records int
	)
	eng, _, err := persist.Open(t.TempDir(), persist.Options{
		SyncObserver: func(n int, d time.Duration) {
			if n <= 0 {
				t.Errorf("observer got %d records", n)
			}
			if d < 0 {
				t.Errorf("observer got negative duration %v", d)
			}
			mu.Lock()
			waves++
			records += n
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := []controller.Request{{Node: 1, Kind: tree.None}}
			results := []controller.BatchResult{{Grant: controller.Grant{Outcome: controller.Granted}}}
			for i := 0; i < perWorker; i++ {
				ticket, err := eng.AppendEffects(reqs, results)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := eng.WaitDurable(ticket); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := eng.StatsSnapshot()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if records != workers*perWorker {
		t.Errorf("observer saw %d records, appended %d", records, workers*perWorker)
	}
	if waves == 0 {
		t.Fatal("observer never ran despite durable appends")
	}
	if int64(waves) != st.Fsyncs {
		t.Errorf("observer saw %d waves, engine counted %d fsyncs", waves, st.Fsyncs)
	}
}
