package persist

// SetSealBytesForTests shrinks the block seal threshold so tests can force
// multi-block waves without gigabyte buffers. It returns a restore func.
func SetSealBytesForTests(n int) (restore func()) {
	old := sealBytes
	sealBytes = n
	return func() { sealBytes = old }
}
