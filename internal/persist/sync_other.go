//go:build !linux

package persist

import "os"

// datasync falls back to a full fsync where fdatasync is unavailable.
func datasync(f *os.File) error {
	return f.Sync()
}
