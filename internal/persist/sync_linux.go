//go:build linux

package persist

import (
	"os"
	"syscall"
)

// datasync flushes file data (and the size, when it changed) without
// forcing unrelated metadata out — fdatasync is measurably cheaper than
// fsync on the group-commit hot path and gives the same durability for a
// log whose only metadata change is its length.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
