package persist

import (
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/oracle"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// RestoreInto applies a recovered snapshot to a live stack: the tree is
// restored in place (so generators, servers and oracles holding the *Tree
// observe the recovered topology), the shared counters are re-seeded, and
// a controller equivalent to the captured one is rebuilt over the given
// runtime. The runtime's schedule seed need not match the crashed
// process's: the controller's verdicts are delivery-schedule invariant
// (the schedule-invariance property the scenario suite pins), which is
// what makes replay deterministic without persisting transport state.
func RestoreInto(st *State, tr *tree.Tree, rt sim.Runtime, counters *stats.Counters) (*dist.Dynamic, error) {
	if st.Tree == nil || st.Ctl == nil {
		return nil, fmt.Errorf("persist: snapshot missing tree or controller state")
	}
	if err := tr.Restore(st.Tree); err != nil {
		return nil, fmt.Errorf("persist: restore tree: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("persist: restored tree invalid: %w", err)
	}
	if counters != nil {
		counters.Restore(st.Counters)
	}
	ctl, err := dist.RestoreDynamic(tr, rt, st.Ctl, counters)
	if err != nil {
		return nil, fmt.Errorf("persist: restore controller: %w", err)
	}
	return ctl, nil
}

// Replay re-submits the tail's effect records through sub in log order and
// verifies every verdict — outcome, serial and created node id — matches
// what the log recorded. The controller is deterministic given its state
// and the request sequence, so any mismatch means the snapshot, the log
// and the code disagree, and recovery must fail rather than continue from
// a state that has silently diverged. It returns the number of effects
// applied.
func Replay(tail []Record, sub oracle.Target) (int, error) {
	applied := 0
	for _, r := range tail {
		if r.Type != RecEffect {
			continue
		}
		g, err := sub.Submit(r.Request())
		if err != nil {
			return applied, fmt.Errorf("persist: replay index %d (%v at node %d): %w",
				r.Index, r.Kind, r.Node, err)
		}
		if g.Outcome != r.Outcome || g.Serial != r.Serial || g.NewNode != r.NewNode {
			return applied, fmt.Errorf("persist: replay diverged at index %d: log says %v/serial %d/node %d, controller answered %v/serial %d/node %d",
				r.Index, r.Outcome, r.Serial, r.NewNode, g.Outcome, g.Serial, g.NewNode)
		}
		applied++
	}
	return applied, nil
}

// IncarnationEffects is the record history one incarnation wrote.
type IncarnationEffects struct {
	Incarnation uint64
	Records     []Record
}

// ReadHistory scans every segment in dir and returns the full record
// history grouped by the incarnation that wrote it, in log order. It
// applies the same crash-artifact policy as boot recovery (shared
// scanSegments: headerless segments skipped, a torn tail in the final
// segment tolerated — though the audit never truncates on disk,
// corruption anywhere else refused), so the audit and recovery can never
// accept different histories.
func ReadHistory(dir string) ([]IncarnationEffects, error) {
	scans, _, _, err := scanSegments(dir, false, func(string, ...any) {})
	if err != nil {
		return nil, err
	}
	var out []IncarnationEffects
	for _, sr := range scans {
		if len(out) == 0 || out[len(out)-1].Incarnation != sr.incarnation {
			out = append(out, IncarnationEffects{Incarnation: sr.incarnation})
		}
		last := &out[len(out)-1]
		last.Records = append(last.Records, sr.records...)
	}
	return out, nil
}

// Summaries projects a record history onto the oracle's cross-incarnation
// vocabulary: per incarnation, the grant/reject totals, every explicit
// serial granted, and the covered WAL index range.
func Summaries(history []IncarnationEffects) []oracle.IncarnationSummary {
	out := make([]oracle.IncarnationSummary, 0, len(history))
	for _, inc := range history {
		s := oracle.IncarnationSummary{Incarnation: inc.Incarnation}
		for _, r := range inc.Records {
			if s.FirstIndex == 0 && r.Index > 0 {
				s.FirstIndex = r.Index
			}
			s.LastIndex = r.Index
			if r.Type != RecEffect {
				continue
			}
			switch r.Outcome {
			case controller.Granted:
				s.Granted++
				if r.Serial != 0 {
					s.Serials = append(s.Serials, r.Serial)
				}
			case controller.Rejected:
				s.Rejected++
			}
		}
		out = append(out, s)
	}
	return out
}

// VerifyDir runs the cross-incarnation invariant checks over dir's whole
// retained history against the (m, w) contract. It returns the summaries
// and any violations found.
func VerifyDir(dir string, m int64) ([]oracle.IncarnationSummary, []oracle.Violation, error) {
	history, err := ReadHistory(dir)
	if err != nil {
		return nil, nil, err
	}
	sums := Summaries(history)
	return sums, oracle.CheckCrossIncarnations(m, sums), nil
}
