package persist_test

import (
	"bytes"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/persist"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// fuzzState builds a small but non-trivial captured state for the snapshot
// seeds (a real stack with a few grants behind it).
func fuzzState() *persist.State {
	tr, root := tree.New()
	rt, err := sim.NewRuntime("fifo", 1)
	if err != nil {
		panic(err)
	}
	counters := stats.NewCounters()
	ctl := dist.NewDynamic(tr, rt, 64, 16, false, counters)
	for i := 0; i < 6; i++ {
		if _, err := ctl.Submit(controller.Request{Node: root, Kind: tree.AddLeaf}); err != nil {
			panic(err)
		}
	}
	return &persist.State{
		Index:       6,
		Incarnation: 1,
		M:           64,
		W:           16,
		Tree:        tr.Snapshot(),
		Ctl:         ctl.State(),
		Counters:    counters.Snapshot(),
	}
}

// FuzzDecodeWALRecord feeds arbitrary bytes to the WAL block decoder: it
// must never panic or over-allocate, and decode→encode→decode must be a
// fixed point on anything it accepts (non-minimal varints in a valid
// frame decode, so strict canonicality is checked via idempotence).
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add(persist.AppendRecords(nil, []persist.Record{
		{Index: 1, Type: persist.RecEffect, Node: 1, Kind: tree.AddLeaf,
			Outcome: controller.Granted, Serial: 7, NewNode: 2},
		{Index: 2, Type: persist.RecEffect, Node: 5, Kind: tree.None,
			Outcome: controller.Rejected},
		{Index: 3, Type: persist.RecWave, Granted: 120},
	}))
	// Two blocks back to back with trailing garbage.
	two := persist.AppendRecords(nil, []persist.Record{{
		Index: 4, Type: persist.RecEffect, Node: 9, Kind: tree.RemoveLeaf,
		Outcome: controller.Granted,
	}})
	two = persist.AppendRecords(two, []persist.Record{{Index: 5, Type: persist.RecWave, Granted: 1}})
	f.Add(append(two, 0xde, 0xad))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n, err := persist.DecodeWALRecords(data, nil)
		if err != nil {
			return
		}
		if n < 8 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		if len(recs) == 0 {
			return
		}
		enc1 := persist.AppendRecords(nil, recs)
		recs2, _, err := persist.DecodeWALRecords(enc1, nil)
		if err != nil {
			t.Fatalf("re-encoded accepted block fails to decode: %v", err)
		}
		enc2 := persist.AppendRecords(nil, recs2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("block codec is not idempotent on an accepted input")
		}
	})
}

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder: no
// panics, no unbounded allocations, and decode→encode→decode must be a
// fixed point for anything it accepts.
func FuzzDecodeSnapshot(f *testing.F) {
	st := fuzzState()
	canonical := persist.AppendState(nil, st)
	f.Add(canonical)
	// Flip a payload byte: the checksum must catch it.
	corrupt := append([]byte(nil), canonical...)
	corrupt[len(corrupt)-3] ^= 0x40
	f.Add(corrupt)
	f.Add(canonical[:len(canonical)/2])
	f.Add([]byte("DSNP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := persist.DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc1 := persist.AppendState(nil, st)
		st2, err := persist.DecodeSnapshot(enc1)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot fails to decode: %v", err)
		}
		enc2 := persist.AppendState(nil, st2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("snapshot codec is not idempotent on an accepted input")
		}
	})
}
