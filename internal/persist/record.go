package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
)

// WAL framing. Records are packed into *blocks*, one block per group
// commit wave:
//
//	uint32  payloadLen   (little-endian)
//	uint32  crc32c(payload)
//	payload:
//	  uint64  firstIndex   (WAL index of the first record)
//	  uint32  count
//	  count × packed record
//
// A packed record is a tag byte plus uvarint fields, and omits everything
// the common case doesn't need — the index (positional: firstIndex + i),
// a zero serial, an absent new-node id, an absent child. The pinned event
// workload's grant record packs to 3 bytes, which matters: the WAL is an
// fsynced byte stream, so sustained admission throughput is bounded by
// the disk's synchronous write bandwidth divided by the bytes per record.
// Per-wave (not per-record) length+CRC framing amortizes the overhead the
// same way the fsync itself is amortized.
//
// The tag byte is
//
//	bits 0-2  tree.ChangeKind (0-4), or 7 for a reject-wave marker
//	bit  3    rejected (grant otherwise)
//	bit  4    serial follows
//	bit  5    new-node id follows
//	bit  6    child id follows
//
// A torn block (crash mid-write) either ends short or fails its CRC, and
// recovery truncates the log at the block boundary.

// RecordType tags one decoded WAL record.
type RecordType uint8

// Record types.
const (
	// RecEffect is one decided request: the request fields plus the
	// grant/reject verdict the controller answered (errored requests mutate
	// no state and are not logged).
	RecEffect RecordType = 1
	// RecWave marks the reject-wave broadcast: every request decided after
	// it is rejected. Informational for the cross-incarnation verifier;
	// replay reconstructs the wave from the effect stream itself.
	RecWave RecordType = 2
)

// MaxBlockLen bounds a block's payload; a corrupt length prefix can never
// drive a huge allocation.
const MaxBlockLen = 8 << 20

// blockHeaderLen is the fixed prefix of a block: length + crc.
const blockHeaderLen = 8

// Decode errors.
var (
	// ErrShortRecord is returned when the buffer ends mid-block. Recovery
	// treats it as a torn tail.
	ErrShortRecord = errors.New("persist: truncated block")
	// ErrCorruptRecord is returned when a block fails its checksum or
	// carries invalid field values.
	ErrCorruptRecord = errors.New("persist: corrupt block")
)

// castagnoli is the CRC-32C table shared by blocks, segment headers and
// snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record.
type Record struct {
	Index uint64
	Type  RecordType

	// Effect fields (RecEffect).
	Node    tree.NodeID
	Kind    tree.ChangeKind
	Child   tree.NodeID
	Outcome controller.Outcome
	Serial  int64
	NewNode tree.NodeID

	// Wave fields (RecWave).
	Granted int64
}

// Request reconstructs the controller request of an effect record.
func (r Record) Request() controller.Request {
	return controller.Request{Node: r.Node, Kind: r.Kind, Child: r.Child}
}

// Packed-record tag bits.
const (
	tagKindMask = 0x07
	tagWaveKind = 0x07
	tagRejected = 0x08
	tagSerial   = 0x10
	tagNewNode  = 0x20
	tagChild    = 0x40
)

// AppendPackedRecord appends the packed (block-interior) encoding of r.
// The record's Index is not encoded — it is positional within the block.
func AppendPackedRecord(buf []byte, r Record) []byte {
	if r.Type == RecWave {
		buf = append(buf, tagWaveKind)
		return binary.AppendUvarint(buf, uint64(r.Granted))
	}
	tag := byte(r.Kind) & tagKindMask
	if r.Outcome == controller.Rejected {
		tag |= tagRejected
	}
	if r.Serial != 0 {
		tag |= tagSerial
	}
	if r.NewNode != 0 {
		tag |= tagNewNode
	}
	if r.Child != 0 {
		tag |= tagChild
	}
	buf = append(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(r.Node))
	if tag&tagSerial != 0 {
		buf = binary.AppendUvarint(buf, uint64(r.Serial))
	}
	if tag&tagNewNode != 0 {
		buf = binary.AppendUvarint(buf, uint64(r.NewNode))
	}
	if tag&tagChild != 0 {
		buf = binary.AppendUvarint(buf, uint64(r.Child))
	}
	return buf
}

// decodePacked decodes one packed record from the front of p.
func decodePacked(p []byte, index uint64) (Record, int, error) {
	if len(p) < 1 {
		return Record{}, 0, fmt.Errorf("%w: empty record", ErrCorruptRecord)
	}
	tag := p[0]
	if tag&0x80 != 0 {
		return Record{}, 0, fmt.Errorf("%w: reserved tag bit set", ErrCorruptRecord)
	}
	off := 1
	uv := func() uint64 {
		if off < 0 { // a previous field already failed
			return 0
		}
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			off = -1 // poison: checked after the last field
			return 0
		}
		off += n
		return v
	}
	r := Record{Index: index}
	if tag&tagKindMask == tagWaveKind {
		r.Type = RecWave
		r.Granted = int64(uv())
		if off < 0 {
			return Record{}, 0, fmt.Errorf("%w: truncated wave record", ErrCorruptRecord)
		}
		return r, off, nil
	}
	r.Type = RecEffect
	r.Kind = tree.ChangeKind(tag & tagKindMask)
	if r.Kind > tree.RemoveInternal {
		return Record{}, 0, fmt.Errorf("%w: request kind %d", ErrCorruptRecord, r.Kind)
	}
	r.Outcome = controller.Granted
	if tag&tagRejected != 0 {
		r.Outcome = controller.Rejected
	}
	r.Node = tree.NodeID(uv())
	if tag&tagSerial != 0 {
		r.Serial = int64(uv())
	}
	if tag&tagNewNode != 0 {
		r.NewNode = tree.NodeID(uv())
	}
	if tag&tagChild != 0 {
		r.Child = tree.NodeID(uv())
	}
	if off < 0 {
		return Record{}, 0, fmt.Errorf("%w: truncated effect record", ErrCorruptRecord)
	}
	if tag&tagSerial != 0 && r.Serial == 0 {
		return Record{}, 0, fmt.Errorf("%w: explicit zero serial", ErrCorruptRecord)
	}
	if tag&tagNewNode != 0 && r.NewNode == 0 {
		return Record{}, 0, fmt.Errorf("%w: explicit zero new-node", ErrCorruptRecord)
	}
	if tag&tagChild != 0 && r.Child == 0 {
		return Record{}, 0, fmt.Errorf("%w: explicit zero child", ErrCorruptRecord)
	}
	return r, off, nil
}

// AppendBlock frames count packed records (the bytes in packed) as one
// block starting at firstIndex and appends it to buf.
func AppendBlock(buf []byte, firstIndex uint64, count int, packed []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholder
	buf = binary.LittleEndian.AppendUint64(buf, firstIndex)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	buf = append(buf, packed...)
	payload := buf[start+blockHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// AppendRecords packs and frames a run of records as one block. The
// records' indices must be contiguous starting at records[0].Index (the
// engine's append path guarantees this; tests use it directly).
func AppendRecords(buf []byte, records []Record) []byte {
	if len(records) == 0 {
		return buf
	}
	var packed []byte
	for _, r := range records {
		packed = AppendPackedRecord(packed, r)
	}
	return AppendBlock(buf, records[0].Index, len(records), packed)
}

// DecodeWALRecords decodes one block from the front of p, appending its
// records to out and returning the extended slice plus the bytes
// consumed. ErrShortRecord distinguishes a torn tail (truncate and
// continue) from ErrCorruptRecord (checksum or field validation failure).
func DecodeWALRecords(p []byte, out []Record) ([]Record, int, error) {
	if len(p) < blockHeaderLen {
		return out, 0, ErrShortRecord
	}
	n := binary.LittleEndian.Uint32(p)
	crc := binary.LittleEndian.Uint32(p[4:])
	if n < 12 || n > MaxBlockLen {
		return out, 0, fmt.Errorf("%w: block payload length %d", ErrCorruptRecord, n)
	}
	if len(p) < blockHeaderLen+int(n) {
		return out, 0, ErrShortRecord
	}
	payload := p[blockHeaderLen : blockHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return out, 0, fmt.Errorf("%w: block checksum mismatch", ErrCorruptRecord)
	}
	firstIndex := binary.LittleEndian.Uint64(payload)
	count := binary.LittleEndian.Uint32(payload[8:])
	body := payload[12:]
	if int(count) > len(body) { // every packed record is at least 1 byte
		return out, 0, fmt.Errorf("%w: %d records in %d payload bytes", ErrCorruptRecord, count, len(body))
	}
	off := 0
	for i := uint32(0); i < count; i++ {
		r, n, err := decodePacked(body[off:], firstIndex+uint64(i))
		if err != nil {
			return out, 0, err
		}
		out = append(out, r)
		off += n
	}
	if off != len(body) {
		return out, 0, fmt.Errorf("%w: %d trailing bytes after %d records", ErrCorruptRecord, len(body)-off, count)
	}
	return out, blockHeaderLen + int(n), nil
}
