// Package estimator implements the size-estimation protocol of Section 5.1
// and the subtree estimator of Section 5.3.
//
// The protocol runs in iterations. At the start of iteration i the root
// counts the current number of nodes N_i by a broadcast/upcast and
// broadcasts it; every node uses N_i as its estimate for the whole
// iteration. With α = 1 − 1/β, a terminating (αN_i, αN_i/2)-Controller
// admits the iteration's topological changes, so the true size n stays in
// [N_i − αN_i, N_i + αN_i] ⊆ [N_i/β, βN_i]: the estimate is a
// β-approximation at all times. The controller terminates after Ω(N_i)
// changes, so the amortized message cost per change is O(log²n)
// (Theorem 5.1).
package estimator

import (
	"errors"
	"fmt"
	"sync"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// ErrBadBeta is returned when the approximation parameter is not > 1.
var ErrBadBeta = errors.New("estimator: beta must be greater than 1")

// Estimator maintains, at every node, a β-approximation of the number of
// nodes in the dynamically changing tree. All topological changes must be
// requested through RequestChange.
type Estimator struct {
	mu       sync.Mutex
	tr       *tree.Tree
	rt       sim.Runtime
	beta     float64
	counters *stats.Counters

	term      *dist.Terminating
	ni        int64
	iteration int

	// Subtree-estimator state (Section 5.3): per-node ω₀ of the current
	// iteration and the permits seen passing down through each node.
	subtree bool
	omega0  map[tree.NodeID]int64
	passed  map[tree.NodeID]int64
}

// Option configures an Estimator.
type Option func(*Estimator)

// WithCounters shares the stats counters.
func WithCounters(c *stats.Counters) Option {
	return func(e *Estimator) { e.counters = c }
}

// WithSubtreeEstimates enables the subtree estimator: every node v also
// maintains ω̃(v), a β-approximation of its super-weight (the number of
// descendants that existed at any point since the iteration started).
func WithSubtreeEstimates() Option {
	return func(e *Estimator) { e.subtree = true }
}

// New builds a size estimator over tr with approximation parameter beta.
func New(tr *tree.Tree, rt sim.Runtime, beta float64, opts ...Option) (*Estimator, error) {
	if beta <= 1 {
		return nil, ErrBadBeta
	}
	e := &Estimator{tr: tr, rt: rt, beta: beta}
	for _, opt := range opts {
		opt(e)
	}
	if e.counters == nil {
		e.counters = stats.NewCounters()
	}
	e.startIteration()
	return e, nil
}

// alphaM returns the controller budget ⌊αN⌋ clamped to ≥ 1 so tiny trees
// still make progress (granting one change on n=1 keeps n ≤ 2 ≤ βN for
// β ≥ 2; for 1 < β < 2 the clamp only triggers when αN < 1, i.e. N <
// 1/α, where a single change still respects the bound because N ≥ 1).
func (e *Estimator) alphaM() int64 {
	alpha := 1 - 1/e.beta
	m := int64(alpha * float64(e.ni))
	if m < 1 {
		m = 1
	}
	return m
}

func (e *Estimator) startIteration() {
	e.iteration++
	e.counters.Inc(stats.CounterIterations)
	e.ni = int64(e.tr.Size())
	// Count N_i (upcast) and broadcast it: 2(n−1) messages; the subtree
	// variant also computes ω₀(v) in the same upcast.
	if n := e.ni; n > 1 {
		e.counters.Add(dist.CounterControl, 2*(n-1))
	}
	m := e.alphaM()
	opts := []dist.CoreOption{}
	if e.subtree {
		e.omega0 = make(map[tree.NodeID]int64, e.tr.Size())
		e.passed = make(map[tree.NodeID]int64, e.tr.Size())
		for _, id := range e.tr.Nodes() {
			sz, err := e.tr.SubtreeSize(id)
			if err == nil {
				e.omega0[id] = int64(sz)
			}
		}
		opts = append(opts, dist.WithDescentObserver(func(size int64, enters tree.NodeID) {
			e.passed[enters] += size
		}))
	}
	e.term = dist.NewTerminating(e.tr, e.rt, 2*e.ni+int64(4), m, m/2, e.counters, opts...)
}

// Iteration returns the current iteration number (1-based).
func (e *Estimator) Iteration() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.iteration
}

// Counters returns the shared counters.
func (e *Estimator) Counters() *stats.Counters { return e.counters }

// Tree returns the tree the estimator runs over.
func (e *Estimator) Tree() *tree.Tree { return e.tr }

// Estimate returns the node's current estimate ñ(v) of the network size.
func (e *Estimator) Estimate(v tree.NodeID) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.tr.Contains(v) {
		return 0, fmt.Errorf("estimate at %d: %w", v, tree.ErrNoSuchNode)
	}
	return e.ni, nil
}

// Beta returns the approximation parameter.
func (e *Estimator) Beta() float64 { return e.beta }

// SubtreeEstimate returns ω̃(v), the node's estimate of its super-weight.
// WithSubtreeEstimates must have been enabled.
func (e *Estimator) SubtreeEstimate(v tree.NodeID) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.subtree {
		return 0, errors.New("estimator: subtree estimates not enabled")
	}
	if !e.tr.Contains(v) {
		return 0, fmt.Errorf("subtree estimate at %d: %w", v, tree.ErrNoSuchNode)
	}
	base, ok := e.omega0[v]
	if !ok {
		// The node joined mid-iteration: it counts itself (its parent
		// tells it ω₀ = 1 on arrival).
		base = 1
	}
	return base + e.passed[v], nil
}

// RequestChange submits a topological change (or a non-topological event)
// through the current iteration's controller, rolling over to the next
// iteration when the controller terminates.
func (e *Estimator) RequestChange(req controller.Request) (controller.Grant, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for attempt := 0; attempt < 64; attempt++ {
		g, err := e.term.Submit(req)
		if errors.Is(err, controller.ErrTerminated) {
			e.startIteration()
			continue
		}
		if err != nil {
			return controller.Grant{}, err
		}
		return g, nil
	}
	return controller.Grant{}, errors.New("estimator: iteration churn without progress")
}

// Submit implements workload.Submitter.
func (e *Estimator) Submit(req controller.Request) (controller.Grant, error) {
	return e.RequestChange(req)
}

// CheckApproximation verifies the β-approximation invariant at every node
// and returns the first violation.
func (e *Estimator) CheckApproximation() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := float64(e.tr.Size())
	est := float64(e.ni)
	if est < n/e.beta-1e-9 || est > e.beta*n+1e-9 {
		return fmt.Errorf("estimate %v outside [n/β, βn] = [%v, %v] (n=%v)",
			est, n/e.beta, e.beta*n, n)
	}
	return nil
}
