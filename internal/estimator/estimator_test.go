package estimator_test

import (
	"testing"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/estimator"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func TestEstimatorRejectsBadBeta(t *testing.T) {
	tr, _ := tree.New()
	rt := sim.NewDeterministic(1)
	if _, err := estimator.New(tr, rt, 1.0); err == nil {
		t.Fatal("beta = 1 must be rejected")
	}
	if _, err := estimator.New(tr, rt, 0.5); err == nil {
		t.Fatal("beta < 1 must be rejected")
	}
}

func TestEstimatorApproximationUnderChurn(t *testing.T) {
	for _, beta := range []float64{2, 4} {
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, 32, 3); err != nil {
			t.Fatal(err)
		}
		rt := sim.NewDeterministic(3)
		est, err := estimator.New(tr, rt, beta)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewChurn(tr, workload.DefaultMix(), 17)
		gen.SetMinSize(4)
		for i := 0; i < 1500; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if _, err := est.RequestChange(req); err != nil {
				t.Fatalf("beta=%v step %d: %v", beta, i, err)
			}
			if err := est.CheckApproximation(); err != nil {
				t.Fatalf("beta=%v step %d: %v", beta, i, err)
			}
		}
		if est.Iteration() < 3 {
			t.Fatalf("beta=%v: only %d iterations; churn should roll the protocol over", beta, est.Iteration())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
}

func TestEstimatorShrinkingTree(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 200, 5); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(5)
	est, err := estimator.New(tr, rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.ShrinkHeavyMix(), 31)
	gen.SetMinSize(8)
	for i := 0; i < 1200 && tr.Size() > 10; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := est.RequestChange(req); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := est.CheckApproximation(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if tr.Size() > 100 {
		t.Fatalf("tree should have shrunk, size = %d", tr.Size())
	}
}

func TestEstimatorAmortizedMessageCost(t *testing.T) {
	// Theorem 5.1: O(n₀log²n₀ + Σ log²n_j) messages. With n ≤ nMax the
	// amortized cost per change is O(log²nMax).
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 64, 7); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(7)
	counters := stats.NewCounters()
	est, err := estimator.New(tr, rt, 2, estimator.WithCounters(counters))
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 30, RemoveLeaf: 25, AddInternal: 20, RemoveInternal: 25}, 23)
	gen.SetMinSize(16)
	const changes = 3000
	applied := 0
	for applied < changes {
		req, ok := gen.Next()
		if !ok {
			break
		}
		g, err := est.RequestChange(req)
		if err != nil {
			t.Fatalf("RequestChange: %v", err)
		}
		if g.Outcome == ctl.Granted {
			applied++
		}
	}
	total := float64(dist.TotalMessages(rt, counters))
	logN := stats.Log2(float64(tr.EverExisted()))
	perChange := total / float64(applied)
	if bound := 160 * logN * logN; perChange > bound {
		t.Fatalf("amortized messages/change = %.1f exceeds %.1f", perChange, bound)
	}
}

func TestEstimateQueryErrors(t *testing.T) {
	tr, root := tree.New()
	rt := sim.NewDeterministic(9)
	est, err := estimator.New(tr, rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(999); err == nil {
		t.Fatal("estimate at missing node must fail")
	}
	got, err := est.Estimate(root)
	if err != nil || got != 1 {
		t.Fatalf("Estimate(root) = %d, %v; want 1", got, err)
	}
	if _, err := est.SubtreeEstimate(root); err == nil {
		t.Fatal("subtree estimates must be explicitly enabled")
	}
}

func TestSubtreeEstimatorSandwich(t *testing.T) {
	// Lemma 5.3 rests on ω̃(v) = ω₀(v) + S(v), where S(v) counts the
	// permits passing down through v. Two bounds hold by construction and
	// are asserted exactly:
	//
	//	SW(v) ≤ ω̃(v)                     (every permit granted below v
	//	                                   descended through v once)
	//	ω̃(v) ≤ ω₀(v) + grantsBelow(v) + m (extra permits are stuck in
	//	                                   packages, at most the budget m)
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 48, 11); err != nil {
		t.Fatal(err)
	}
	rt := sim.NewDeterministic(11)
	est, err := estimator.New(tr, rt, 2, estimator.WithSubtreeEstimates())
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 60, RemoveLeaf: 20, Event: 20}, 13)
	gen.SetMinSize(8)

	iter := est.Iteration()
	super := currentSubtreeSizes(tr) // SW resets to subtree sizes at boundaries
	grantsBelow := make(map[tree.NodeID]int64)
	iterBudget := int64(tr.Size()) // ≥ the iteration's αN_i budget

	for i := 0; i < 600; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		g, err := est.RequestChange(req)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if est.Iteration() != iter {
			iter = est.Iteration()
			super = currentSubtreeSizes(tr)
			grantsBelow = make(map[tree.NodeID]int64)
			iterBudget = int64(tr.Size())
			continue
		}
		if g.Outcome != ctl.Granted {
			continue
		}
		// Every grant consumed a permit at (or below) the request node.
		reqAt := req.Node
		if g.NewNode != tree.InvalidNode {
			reqAt = g.NewNode
		}
		if tr.Contains(reqAt) {
			path, err := tr.PathToRoot(reqAt)
			if err == nil {
				for _, a := range path {
					grantsBelow[a]++
					if req.Kind.IsAddition() {
						super[a]++
					}
				}
			}
		}
		for _, v := range tr.Nodes() {
			sw, known := super[v]
			if !known {
				continue
			}
			got, err := est.SubtreeEstimate(v)
			if err != nil {
				t.Fatal(err)
			}
			if got < sw {
				t.Fatalf("step %d node %d: estimate %d < exact super-weight %d", i, v, got, sw)
			}
			// ω₀(v) ≥ sw − grantsBelow (sw only grew by additions, each
			// of which is a grant), so the upper bound folds into:
			if got > sw+2*grantsBelow[v]+iterBudget {
				t.Fatalf("step %d node %d: estimate %d exceeds SW+2·grants+budget = %d+%d+%d",
					i, v, got, sw, 2*grantsBelow[v], iterBudget)
			}
		}
	}
}

// currentSubtreeSizes computes the subtree size of every live node (the
// super-weight at an iteration boundary).
func currentSubtreeSizes(tr *tree.Tree) map[tree.NodeID]int64 {
	out := make(map[tree.NodeID]int64, tr.Size())
	for _, v := range tr.Nodes() {
		if sz, err := tr.SubtreeSize(v); err == nil {
			out[v] = int64(sz)
		}
	}
	return out
}
