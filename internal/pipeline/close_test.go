package pipeline

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"dynctrl/internal/controller"
)

// countingSubmitter is a trivial BatchSubmitter that grants everything and
// tallies the requests it has driven. The occasional Gosched widens the
// window in which Close can race a leader mid-batch.
type countingSubmitter struct {
	driven atomic.Int64
}

func (c *countingSubmitter) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	if c.driven.Load()%7 == 0 {
		runtime.Gosched()
	}
	for range reqs {
		out = append(out, controller.BatchResult{Grant: controller.Grant{Outcome: controller.Granted}})
	}
	c.driven.Add(int64(len(reqs)))
	return out
}

// TestCloseRace is the graceful-drain regression test the server depends
// on: many goroutines hammer Submit and SubmitMany while Close fires in the
// middle. Every call must either complete with valid results or return
// ErrClosed (never panic, never hang), every admitted request must have
// been driven through the core by the time Close returns, and no batch may
// execute after Close has returned.
func TestCloseRace(t *testing.T) {
	const submitters = 8
	const perG = 400

	sub := &countingSubmitter{}
	var closeReturned atomic.Bool
	var lateBatch atomic.Bool
	pl := New(sub, WithMaxBatch(32), WithBatchHook(func(requests int) {
		if closeReturned.Load() {
			lateBatch.Store(true)
		}
	}))

	var admitted atomic.Int64 // requests that were accepted (no ErrClosed)
	var rejectedByClose atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			reqs := make([]controller.Request, 3)
			var out []controller.BatchResult
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					g0, err := pl.Submit(controller.Request{})
					switch {
					case errors.Is(err, ErrClosed):
						rejectedByClose.Add(1)
					case err != nil:
						t.Errorf("Submit: unexpected error %v", err)
					case g0.Outcome != controller.Granted:
						t.Errorf("Submit: outcome %v, want granted", g0.Outcome)
					default:
						admitted.Add(1)
					}
					continue
				}
				res, err := pl.SubmitMany(reqs, out[:0])
				switch {
				case errors.Is(err, ErrClosed):
					rejectedByClose.Add(int64(len(reqs)))
				case err != nil:
					t.Errorf("SubmitMany: unexpected error %v", err)
				case len(res) != len(reqs):
					t.Errorf("SubmitMany: %d results for %d requests", len(res), len(reqs))
				default:
					admitted.Add(int64(len(reqs)))
				}
				out = res
			}
		}(g)
	}

	close(start)
	// Let the submitters get going, then close under load. Half the
	// goroutines will typically still be mid-loop and must observe
	// ErrClosed from then on.
	for sub.driven.Load() < submitters*perG/8 {
		runtime.Gosched()
	}
	pl.Close()
	closeReturned.Store(true)

	// Close must have drained every admitted request: nothing may still be
	// queued or executing. (Submitters can still be admitted *after* this
	// point only if they raced the close and lost — they get ErrClosed.)
	if got, want := sub.driven.Load(), pl.Stats().Requests; got != want {
		t.Errorf("Close returned with %d driven of %d admitted requests", got, want)
	}

	wg.Wait()
	pl.Close() // idempotent

	if lateBatch.Load() {
		t.Error("a batch executed after Close returned")
	}
	if got := sub.driven.Load(); got != admitted.Load() {
		t.Errorf("driven %d requests, callers saw %d admitted", got, admitted.Load())
	}
	if got, want := pl.Stats().Requests, admitted.Load(); got != want {
		t.Errorf("stats count %d admitted requests, callers saw %d", got, want)
	}
	if !pl.Closed() {
		t.Error("Closed() = false after Close")
	}
	if rejectedByClose.Load() == 0 {
		t.Log("close won no races; drain still verified (timing-dependent)")
	}

	// Post-close submissions keep failing with the sentinel.
	if _, err := pl.Submit(controller.Request{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: err %v, want ErrClosed", err)
	}
	if _, err := pl.SubmitMany(make([]controller.Request, 2), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitMany after Close: err %v, want ErrClosed", err)
	}
}

// TestCloseConcurrentWithClose runs several concurrent Close calls against
// live traffic: all must return, exactly once each, with the pipeline
// drained.
func TestCloseConcurrentWithClose(t *testing.T) {
	sub := &countingSubmitter{}
	pl := New(sub, WithMaxBatch(8))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := pl.Submit(controller.Request{}); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl.Close()
		}()
	}
	wg.Wait()
	if got, want := sub.driven.Load(), pl.Stats().Requests; got != want {
		t.Errorf("driven %d of %d admitted requests after concurrent closes", got, want)
	}
}
