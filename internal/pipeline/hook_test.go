package pipeline

import (
	"sync"
	"testing"
	"time"

	"dynctrl/internal/controller"
)

// TestWithCycleHook: the combining-cycle hook observes every leader cycle —
// the per-cycle call and request tallies must sum to exactly what was
// submitted, and the hook must run serialized (it mutates shared state
// below without its own lock; the race detector enforces the contract).
func TestWithCycleHook(t *testing.T) {
	sub := &countingSubmitter{}
	var (
		mu        sync.Mutex
		cycles    int
		hookCalls int
		hookReqs  int
	)
	pl := New(sub, WithMaxBatch(16), WithCycleHook(func(calls, requests int, d time.Duration) {
		if calls <= 0 || requests <= 0 {
			t.Errorf("cycle hook got calls=%d requests=%d", calls, requests)
		}
		if d < 0 {
			t.Errorf("cycle hook got negative duration %v", d)
		}
		mu.Lock()
		cycles++
		hookCalls += calls
		hookReqs += requests
		mu.Unlock()
	}))

	const submitters, perG = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := make([]controller.Request, 3)
			for i := 0; i < perG; i++ {
				if _, err := pl.SubmitMany(reqs, nil); err != nil {
					t.Errorf("SubmitMany: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	pl.Close()

	mu.Lock()
	defer mu.Unlock()
	if cycles == 0 {
		t.Fatal("cycle hook never ran")
	}
	wantCalls := submitters * perG
	wantReqs := wantCalls * 3
	if hookCalls != wantCalls {
		t.Errorf("hook saw %d calls, want %d", hookCalls, wantCalls)
	}
	if hookReqs != wantReqs {
		t.Errorf("hook saw %d requests, want %d", hookReqs, wantReqs)
	}
	if driven := sub.driven.Load(); driven != int64(wantReqs) {
		t.Errorf("submitter drove %d requests, want %d", driven, wantReqs)
	}
}
