// Package pipeline provides a concurrent batched submission front-end for
// the (M,W)-Controller cores.
//
// The paper's controller amortizes permit distribution over many requests:
// one filler-search climb funds a whole package descent, and the static
// package it leaves behind answers later requests at the same node locally.
// The serial Submit loop cannot exploit that under concurrent traffic —
// every caller pays the full per-request protocol overhead and the callers
// serialize on the core anyway (the centralized setting is sequential by
// definition, and the distributed protocol runs one agent at a time).
//
// Pipeline turns that serialization into an advantage: requests arriving
// from many goroutines — one at a time via Submit or in runs via
// SubmitMany — are coalesced into batches and driven through the core's
// BatchSubmitter interface by whichever submitter happens to be first (a
// combining / leader–follower scheme, cf. flat combining). The batch path
// answers static-package hits from node-local state without touching the
// message transport and flushes shared-counter updates once per run, so
// one climb/descent wave and one synchronization handoff are amortized
// across many requests while the grant/reject semantics — and the paper's
// safety invariant (never exceed M permits) — stay exactly those of the
// serial loop.
package pipeline

import (
	"errors"
	"sync"
	"time"

	"dynctrl/internal/controller"
)

// ErrClosed is returned by Submit and SubmitMany after Close.
var ErrClosed = errors.New("pipeline: closed")

// DefaultMaxBatch bounds how many requests one leadership cycle may drive
// through the core before re-checking the queue, unless overridden with
// WithMaxBatch.
const DefaultMaxBatch = 1024

// call is one queued run of requests and its result slot. Single-request
// submissions ride in the pooled call's inline buffers; SubmitMany attaches
// the caller's slices directly (the leader writes results into them, the
// channel handoff publishes the writes).
type call struct {
	reqs    []controller.Request
	results []controller.BatchResult
	done    chan struct{}

	req1 [1]controller.Request
	res1 [1]controller.BatchResult
}

var callPool = sync.Pool{
	New: func() any { return &call{done: make(chan struct{}, 1)} },
}

// Stats summarizes a pipeline's batching behavior.
type Stats struct {
	// Requests is the number of requests submitted.
	Requests int64
	// Calls is the number of Submit/SubmitMany calls.
	Calls int64
	// Batches is the number of leadership cycles (queue drains) that drove
	// at least one request through the core.
	Batches int64
	// MaxBatch is the largest number of requests driven in one cycle.
	MaxBatch int
}

// Pipeline coalesces requests from many goroutines into batches and drives
// them through a BatchSubmitter. The zero value is not usable; use New.
//
// Pipeline is safe for concurrent use. The wrapped submitter is only ever
// invoked from one goroutine at a time (the current batch leader), so any
// serial-only controller core is a valid backend.
type Pipeline struct {
	sub       controller.BatchSubmitter
	maxBatch  int
	batchHook func(requests int)
	cycleHook func(calls, requests int, dur time.Duration)

	mu      sync.Mutex
	cond    *sync.Cond // signaled when a leader retires (for Flush)
	queue   []*call
	batch   []*call // leader-owned scratch holding the current cycle's calls
	leading bool
	closed  bool

	stats Stats
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithMaxBatch bounds the number of requests one leadership cycle drives
// through the core before re-checking the queue (minimum 1; calls are
// never split, so a cycle holding one oversized SubmitMany run may exceed
// the bound by that run's length).
func WithMaxBatch(n int) Option {
	return func(p *Pipeline) {
		if n < 1 {
			n = 1
		}
		p.maxBatch = n
	}
}

// WithBatchHook installs fn to be called by the batch leader after each
// leadership cycle completes, with the number of requests the cycle drove
// through the core. Calls are serialized (only one leader runs at a time)
// and happen before the leader re-checks the queue, so tests can use the
// hook as a deterministic batch-boundary rendezvous instead of waiting on
// timing, and services can export batch-size metrics from it.
func WithBatchHook(fn func(requests int)) Option {
	return func(p *Pipeline) { p.batchHook = fn }
}

// WithCycleHook installs fn to be called by the batch leader after each
// leadership cycle, with the number of calls combined, the number of
// requests driven, and the cycle's wall-clock duration (core execution
// plus submitter wakeups). Like WithBatchHook, calls are serialized and
// happen before the leader re-checks the queue; services use it to
// export combining-cycle latency distributions.
func WithCycleHook(fn func(calls, requests int, dur time.Duration)) Option {
	return func(p *Pipeline) { p.cycleHook = fn }
}

// New builds a pipeline over the given batch-capable controller.
func New(sub controller.BatchSubmitter, opts ...Option) *Pipeline {
	p := &Pipeline{sub: sub, maxBatch: DefaultMaxBatch}
	for _, opt := range opts {
		opt(p)
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Submit enqueues one request and blocks until its verdict is in.
func (p *Pipeline) Submit(req controller.Request) (controller.Grant, error) {
	c := callPool.Get().(*call)
	c.req1[0] = req
	c.reqs = c.req1[:]
	c.results = c.res1[:0]
	if err := p.run(c); err != nil {
		callPool.Put(c)
		return controller.Grant{}, err
	}
	res := c.results[0]
	callPool.Put(c)
	return res.Grant, res.Err
}

// SubmitMany enqueues a run of requests as one unit and blocks until all of
// them are answered, appending one BatchResult per request to out and
// returning the extended slice. The run is answered in order and is never
// interleaved with other submitters' requests. One synchronization handoff
// covers the whole run, so streaming clients should prefer chunked
// SubmitMany calls over per-request Submits.
func (p *Pipeline) SubmitMany(reqs []controller.Request, out []controller.BatchResult) ([]controller.BatchResult, error) {
	if len(reqs) == 0 {
		return out, nil
	}
	c := callPool.Get().(*call)
	c.reqs = reqs
	c.results = out
	if err := p.run(c); err != nil {
		c.reqs, c.results = nil, nil // do not retain caller slices in the pool
		callPool.Put(c)
		return out, err
	}
	out = c.results
	c.reqs, c.results = nil, nil // do not retain caller slices in the pool
	callPool.Put(c)
	return out, nil
}

// run enqueues the call, leads the queue if no leader is active, and waits
// for the call to complete.
func (p *Pipeline) run(c *call) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.stats.Calls++
	p.stats.Requests += int64(len(c.reqs))
	p.queue = append(p.queue, c)
	if p.leading {
		// A leader is active and will pick this call up.
		p.mu.Unlock()
	} else {
		p.lead()
	}
	<-c.done
	return nil
}

// lead drains the queue cycle by cycle until it is empty, then retires.
// Each cycle takes whole calls until maxBatch requests are gathered, runs
// them through the core back to back, and wakes their submitters. Called
// with p.mu held; returns with p.mu released.
func (p *Pipeline) lead() {
	p.leading = true
	for len(p.queue) > 0 {
		taken, reqs := 0, 0
		for taken < len(p.queue) && (taken == 0 || reqs < p.maxBatch) {
			reqs += len(p.queue[taken].reqs)
			taken++
		}
		p.batch = append(p.batch[:0], p.queue[:taken]...)
		rest := copy(p.queue, p.queue[taken:])
		for i := rest; i < len(p.queue); i++ {
			p.queue[i] = nil // drop stale references so the pool can recycle
		}
		p.queue = p.queue[:rest]
		p.stats.Batches++
		if reqs > p.stats.MaxBatch {
			p.stats.MaxBatch = reqs
		}
		p.mu.Unlock()

		var cycleStart time.Time
		if p.cycleHook != nil {
			cycleStart = time.Now()
		}
		for _, c := range p.batch {
			c.results = p.sub.SubmitBatch(c.reqs, c.results)
			c.done <- struct{}{}
		}
		if p.cycleHook != nil {
			p.cycleHook(taken, reqs, time.Since(cycleStart))
		}
		if p.batchHook != nil {
			p.batchHook(reqs)
		}

		p.mu.Lock()
	}
	p.leading = false
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Flush blocks until every request submitted before the call has completed
// and no batch is executing. It is a synchronization barrier, not a
// trigger: queued requests are always driven out by their batch leader.
func (p *Pipeline) Flush() {
	p.mu.Lock()
	for p.leading || len(p.queue) > 0 {
		if !p.leading {
			// Calls are queued but no leader is running (their submitters
			// are between enqueue and leader election, or a previous leader
			// retired in the gap): drive them ourselves.
			p.lead()
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close marks the pipeline closed and drains it: submissions that were
// admitted before the close (including whole SubmitMany runs already
// enqueued) are driven through the core and answered, and Close returns
// only once no batch is executing and the queue is empty. Submissions
// arriving at or after the close fail with ErrClosed — a sentinel, never a
// panic — which is what a network server's graceful drain relies on: stop
// admitting, finish everything in flight, then tear down. Close is
// idempotent and safe to call concurrently with submissions and with other
// Close calls. The backing controller is left untouched and can continue
// to serve serial Submits.
func (p *Pipeline) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.Flush()
}

// Closed reports whether Close has been called.
func (p *Pipeline) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Stats returns a snapshot of the batching statistics.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
