package pipeline_test

import (
	"fmt"
	"sync"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func buildTree(t testing.TB, n int, seed int64) *tree.Tree {
	t.Helper()
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n, seed); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPipelineSafetyUnderConcurrentChurn is the concurrent-submitter safety
// table: whatever the client count, batch size and mix, the total number of
// granted permits never exceeds M. Run under -race this also exercises the
// combining logic for data races.
func TestPipelineSafetyUnderConcurrentChurn(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		m, w     int64
		clients  int
		perCl    int
		maxBatch int
		mix      workload.ConcurrentMix
	}{
		{"events-exhausting", 32, 300, 60, 8, 100, 64, workload.EventOnlyConcurrentMix()},
		{"event-heavy-churn", 48, 500, 100, 6, 200, 32, workload.EventHeavyConcurrentMix()},
		{"growth-exhausting", 24, 400, 80, 4, 300, 128, workload.ConcurrentMix{Event: 50, AddLeaf: 50}},
		{"single-client", 16, 200, 40, 1, 400, 16, workload.EventHeavyConcurrentMix()},
		{"tiny-batches", 32, 250, 50, 12, 50, 1, workload.EventOnlyConcurrentMix()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildTree(t, tc.n, 1)
			counters := stats.NewCounters()
			ctl := dist.NewDynamic(tr, sim.NewDeterministic(7), tc.m, tc.w, false, counters)
			pl := pipeline.New(ctl, pipeline.WithMaxBatch(tc.maxBatch))
			ct, err := workload.NewConcurrentTrace(tr, tc.clients, tc.perCl, tc.mix, 11)
			if err != nil {
				t.Fatal(err)
			}
			res := workload.RunConcurrent(pl, ct)
			pl.Flush()
			if res.Errors > 0 {
				t.Fatalf("unexpected submit errors: %d", res.Errors)
			}
			if res.Granted > tc.m {
				t.Fatalf("safety violated: %d permits granted, M = %d", res.Granted, tc.m)
			}
			if got := counters.Get(stats.CounterGrants); got != res.Granted {
				t.Fatalf("grant accounting: clients saw %d grants, counters say %d", res.Granted, got)
			}
			if res.Granted+res.Rejected != res.Submitted {
				t.Fatalf("outcomes %d+%d do not cover %d submissions",
					res.Granted, res.Rejected, res.Submitted)
			}
			st := pl.Stats()
			if st.Requests != res.Submitted {
				t.Fatalf("pipeline saw %d requests, clients submitted %d", st.Requests, res.Submitted)
			}
			if st.MaxBatch > tc.maxBatch {
				t.Fatalf("batch of %d exceeds configured max %d", st.MaxBatch, tc.maxBatch)
			}
		})
	}
}

// TestBatchSerialEquivalenceCentralized replays identical churn traces
// through a serially driven core and a batch-driven core: the grant/reject
// sequence, serial numbers and cost counters must match exactly.
func TestBatchSerialEquivalenceCentralized(t *testing.T) {
	const n, steps, batchSize = 64, 600, 7
	trSerial := buildTree(t, n, 3)
	trBatch := buildTree(t, n, 3)
	u := int64(4 * n)
	m := int64(300)
	countersSerial := stats.NewCounters()
	countersBatch := stats.NewCounters()
	serial := controller.NewCore(trSerial, u, m, m/2, controller.WithCounters(countersSerial))
	batch := controller.NewCore(trBatch, u, m, m/2, controller.WithCounters(countersBatch))

	// The generator runs against the serial tree; both trees evolve
	// identically while outcomes agree, so the recorded requests stay valid
	// on the batch side.
	gen := workload.NewChurn(trSerial, workload.DefaultMix(), 17)
	gen.SetMinSize(n / 2)

	var reqs []controller.Request
	var want []controller.Grant
	for i := 0; i < steps; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		g, err := serial.Submit(req)
		if err != nil {
			t.Fatalf("serial submit %d: %v", i, err)
		}
		reqs = append(reqs, req)
		want = append(want, g)
	}

	var got []controller.BatchResult
	for lo := 0; lo < len(reqs); lo += batchSize {
		hi := lo + batchSize
		if hi > len(reqs) {
			hi = len(reqs)
		}
		got = batch.SubmitBatch(reqs[lo:hi], got)
	}
	if len(got) != len(want) {
		t.Fatalf("batch answered %d of %d requests", len(got), len(want))
	}
	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("batch request %d failed: %v", i, got[i].Err)
		}
		if got[i].Grant.Outcome != want[i].Outcome || got[i].Grant.Serial != want[i].Serial {
			t.Fatalf("request %d: batch %+v, serial %+v", i, got[i].Grant, want[i])
		}
	}
	if s, b := serial.Granted(), batch.Granted(); s != b {
		t.Fatalf("granted: serial %d, batch %d", s, b)
	}
	for _, key := range []string{stats.CounterGrants, stats.CounterRejects, stats.CounterMoves} {
		if s, b := countersSerial.Get(key), countersBatch.Get(key); s != b {
			t.Fatalf("counter %s: serial %d, batch %d", key, s, b)
		}
	}
}

// TestBatchSerialEquivalenceDistributed is the same equivalence over the
// public distributed unknown-U controller, including message accounting.
func TestBatchSerialEquivalenceDistributed(t *testing.T) {
	const n, batchSize = 48, 13
	trSerial := buildTree(t, n, 5)
	trBatch := buildTree(t, n, 5)
	m, w := int64(400), int64(80)
	rtSerial := sim.NewDeterministic(23)
	rtBatch := sim.NewDeterministic(23)
	countersSerial := stats.NewCounters()
	countersBatch := stats.NewCounters()
	serial := dist.NewDynamic(trSerial, rtSerial, m, w, false, countersSerial)
	batch := dist.NewDynamic(trBatch, rtBatch, m, w, false, countersBatch)

	ct, err := workload.NewConcurrentTrace(trSerial, 4, 200, workload.EventHeavyConcurrentMix(), 29)
	if err != nil {
		t.Fatal(err)
	}
	reqs := ct.Serial()

	var want []controller.Grant
	for i, req := range reqs {
		g, err := serial.Submit(req)
		if err != nil {
			t.Fatalf("serial submit %d: %v", i, err)
		}
		want = append(want, g)
	}
	var got []controller.BatchResult
	for lo := 0; lo < len(reqs); lo += batchSize {
		hi := lo + batchSize
		if hi > len(reqs) {
			hi = len(reqs)
		}
		got = batch.SubmitBatch(reqs[lo:hi], got)
	}
	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("batch request %d failed: %v", i, got[i].Err)
		}
		if got[i].Grant.Outcome != want[i].Outcome {
			t.Fatalf("request %d: batch outcome %v, serial %v", i, got[i].Grant.Outcome, want[i].Outcome)
		}
	}
	if s, b := serial.Granted(), batch.Granted(); s != b {
		t.Fatalf("granted: serial %d, batch %d", s, b)
	}
	if s, b := rtSerial.Messages(), rtBatch.Messages(); s != b {
		t.Fatalf("transport messages: serial %d, batch %d", s, b)
	}
	if s, b := dist.TotalMessages(rtSerial, countersSerial), dist.TotalMessages(rtBatch, countersBatch); s != b {
		t.Fatalf("total messages: serial %d, batch %d", s, b)
	}
}

// TestPipelineMatchesSerialOutcomeTotals drives the same trace once
// serially and once through the concurrent pipeline; the aggregate
// grant/reject totals must agree (per-request outcomes may differ in
// ordering, which is exactly the nondeterminism of concurrent arrival).
func TestPipelineMatchesSerialOutcomeTotals(t *testing.T) {
	const n = 40
	m, w := int64(350), int64(70)
	trSerial := buildTree(t, n, 9)
	trPipe := buildTree(t, n, 9)
	serial := dist.NewDynamic(trSerial, sim.NewDeterministic(31), m, w, false, nil)
	pipeCtl := dist.NewDynamic(trPipe, sim.NewDeterministic(31), m, w, false, nil)
	pl := pipeline.New(pipeCtl)

	ct, err := workload.NewConcurrentTrace(trSerial, 6, 150, workload.EventOnlyConcurrentMix(), 37)
	if err != nil {
		t.Fatal(err)
	}
	var serGranted, serRejected int64
	for _, req := range ct.Serial() {
		g, err := serial.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		switch g.Outcome {
		case controller.Granted:
			serGranted++
		case controller.Rejected:
			serRejected++
		}
	}
	res := workload.RunConcurrent(pl, ct)
	if res.Errors > 0 {
		t.Fatalf("pipeline errors: %d", res.Errors)
	}
	// Event-only traces on a fixed tree are permutation-invariant: the
	// controller grants exactly min(requests, budget) permits either way.
	if res.Granted != serGranted || res.Rejected != serRejected {
		t.Fatalf("pipeline granted/rejected %d/%d, serial %d/%d",
			res.Granted, res.Rejected, serGranted, serRejected)
	}
}

// TestPipelineErrorPropagation checks that a per-request error (an invalid
// node) reaches exactly the submitter that caused it.
func TestPipelineErrorPropagation(t *testing.T) {
	tr := buildTree(t, 16, 13)
	ctl := dist.NewDynamic(tr, sim.NewDeterministic(41), 100, 20, false, nil)
	pl := pipeline.New(ctl)
	if _, err := pl.Submit(controller.Request{Node: tree.NodeID(999), Kind: tree.None}); err == nil {
		t.Fatal("submit at unknown node: want error, got nil")
	}
	if g, err := pl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil || g.Outcome != controller.Granted {
		t.Fatalf("valid submit after failed one: grant %+v, err %v", g, err)
	}
}

// TestPipelineFlushAndClose checks the barrier semantics of Flush and that
// Close rejects later submissions.
func TestPipelineFlushAndClose(t *testing.T) {
	tr := buildTree(t, 16, 15)
	ctl := dist.NewDynamic(tr, sim.NewDeterministic(43), 1000, 200, false, nil)
	pl := pipeline.New(ctl, pipeline.WithMaxBatch(8))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := pl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	pl.Flush() // must not deadlock with no work pending
	if got := pl.Stats().Requests; got != 200 {
		t.Fatalf("pipeline saw %d requests, want 200", got)
	}
	pl.Close()
	if _, err := pl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != pipeline.ErrClosed {
		t.Fatalf("submit after close: want ErrClosed, got %v", err)
	}
}

// benchWorkload pins the E-series workload both benchmark paths share: the
// metered-traffic experiment (E13's event-only mix) over a balanced
// 256-node tree, with the permit budget sized generously (M = 4× the
// trace) so every request is granted on both paths and the measured
// quantity is pure submission throughput.
func benchWorkload(b *testing.B, clients, perClient int) (*tree.Tree, *workload.ConcurrentTrace, int64, int64) {
	b.Helper()
	const n = 256
	tr := buildTree(b, n, 1)
	total := int64(clients*perClient) * 4
	m, w := total, total/2
	ct, err := workload.NewConcurrentTrace(tr, clients, perClient, workload.EventOnlyConcurrentMix(), 42)
	if err != nil {
		b.Fatal(err)
	}
	return tr, ct, m, w
}

// BenchmarkSubmitSerial is the baseline: the pinned workload driven
// request-by-request through the public controller's serial Submit loop.
func BenchmarkSubmitSerial(b *testing.B) {
	for _, clients := range []int{8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr, ct, m, w := benchWorkload(b, clients, 2048)
				ctl := dist.NewDynamic(tr, sim.NewDeterministic(3), m, w, false, nil)
				reqs := ct.Serial()
				b.StartTimer()
				for _, req := range reqs {
					if _, err := ctl.Submit(req); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(reqs)), "req/iter")
			}
		})
	}
}

// BenchmarkSubmitPipeline drives the identical workload through the
// concurrent batched pipeline, clients streaming chunks of 64 requests;
// the acceptance bar is ≥2x the serial throughput on the same trace.
func BenchmarkSubmitPipeline(b *testing.B) {
	for _, clients := range []int{8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr, ct, m, w := benchWorkload(b, clients, 2048)
				ctl := dist.NewDynamic(tr, sim.NewDeterministic(3), m, w, false, nil)
				pl := pipeline.New(ctl)
				b.StartTimer()
				res := workload.RunConcurrentChunked(pl, ct, 64)
				if res.Errors > 0 {
					b.Fatalf("errors: %d", res.Errors)
				}
				b.ReportMetric(float64(res.Submitted), "req/iter")
			}
		})
	}
}

// BenchmarkSubmitPipelinePerRequest is the worst case for the pipeline:
// every client blocks on every single request (no chunking), so each
// request pays a full synchronization handoff. Kept as a reference point
// for the combining overhead.
func BenchmarkSubmitPipelinePerRequest(b *testing.B) {
	for _, clients := range []int{8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr, ct, m, w := benchWorkload(b, clients, 2048)
				ctl := dist.NewDynamic(tr, sim.NewDeterministic(3), m, w, false, nil)
				pl := pipeline.New(ctl)
				b.StartTimer()
				res := workload.RunConcurrent(pl, ct)
				if res.Errors > 0 {
					b.Fatalf("errors: %d", res.Errors)
				}
				b.ReportMetric(float64(res.Submitted), "req/iter")
			}
		})
	}
}
