package pipeline_test

import (
	"runtime"
	"sync"
	"testing"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
)

// gatedSubmitter blocks the first SubmitBatch until released, so a test
// can deterministically pile concurrent submitters into the pipeline's
// queue while the leader is busy — no sleeps, no timing assumptions.
type gatedSubmitter struct {
	inner   controller.BatchSubmitter
	release chan struct{}
	once    sync.Once
}

func (g *gatedSubmitter) SubmitBatch(reqs []controller.Request, out []controller.BatchResult) []controller.BatchResult {
	g.once.Do(func() { <-g.release })
	return g.inner.SubmitBatch(reqs, out)
}

// TestPipelineCombinesDeterministically proves the combining behavior
// without timing dependence: while the first leader is held inside the
// core, every other client enqueues; on release the leader must drain all
// of them in exactly one more cycle. The batch hook observes the cycle
// boundaries deterministically.
func TestPipelineCombinesDeterministically(t *testing.T) {
	const followers = 12
	tr := buildTree(t, 16, 19)
	ctl := dist.NewDynamic(tr, sim.NewDeterministic(23), 1000, 200, false, nil)
	gate := &gatedSubmitter{inner: ctl, release: make(chan struct{})}

	var (
		mu      sync.Mutex
		batches []int
	)
	pl := pipeline.New(gate,
		pipeline.WithMaxBatch(followers+1),
		pipeline.WithBatchHook(func(requests int) {
			mu.Lock()
			batches = append(batches, requests)
			mu.Unlock()
		}))

	var wg sync.WaitGroup
	submit := func() {
		defer wg.Done()
		if _, err := pl.Submit(controller.Request{Node: tr.Root(), Kind: tree.None}); err != nil {
			t.Errorf("submit: %v", err)
		}
	}
	wg.Add(1)
	go submit() // becomes leader and blocks inside the gated core

	// Wait — deterministically, by observing the pipeline's own queue
	// accounting — until the leader has taken its batch and every follower
	// is enqueued behind it. Calls are counted under the pipeline lock at
	// enqueue time, so Calls == followers+1 implies all followers queued.
	for pl.Stats().Calls < 1 {
		runtime.Gosched()
	}
	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go submit()
	}
	for pl.Stats().Calls < followers+1 {
		runtime.Gosched()
	}
	close(gate.release)
	wg.Wait()
	pl.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 {
		t.Fatalf("leadership cycles %v, want exactly [1 %d]", batches, followers)
	}
	if batches[0] != 1 || batches[1] != followers {
		t.Fatalf("batch sizes %v, want [1 %d]: followers were not combined into one cycle",
			batches, followers)
	}
	st := pl.Stats()
	if st.Batches != 2 || st.MaxBatch != followers {
		t.Fatalf("stats %+v disagree with hook observations %v", st, batches)
	}
}
