package baseline_test

import (
	"errors"
	"testing"

	"dynctrl/internal/baseline"
	ctl "dynctrl/internal/controller"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func TestTrivialGrantsAndRejects(t *testing.T) {
	tr, root := tree.New()
	const m = 5
	tv := baseline.NewTrivial(tr, m, nil)
	for i := 0; i < m; i++ {
		g, err := tv.Submit(ctl.Request{Node: root, Kind: tree.AddLeaf})
		if err != nil || g.Outcome != ctl.Granted {
			t.Fatalf("grant %d: %v %v", i, g.Outcome, err)
		}
	}
	g, err := tv.Submit(ctl.Request{Node: root, Kind: tree.None})
	if err != nil || g.Outcome != ctl.Rejected {
		t.Fatalf("after M grants: %v %v, want Rejected", g.Outcome, err)
	}
	if tv.Granted() != m {
		t.Fatalf("granted = %d, want %d", tv.Granted(), m)
	}
	if tr.Size() != m+1 {
		t.Fatalf("tree size = %d, want %d", tr.Size(), m+1)
	}
}

func TestTrivialCostIsDepthPerRequest(t *testing.T) {
	tr, root := tree.New()
	// Build a path of depth 50 via the controller itself.
	tv := baseline.NewTrivial(tr, 1000, nil)
	cur := root
	for i := 0; i < 50; i++ {
		g, err := tv.Submit(ctl.Request{Node: cur, Kind: tree.AddLeaf})
		if err != nil || g.Outcome != ctl.Granted {
			t.Fatalf("grow: %v %v", g.Outcome, err)
		}
		cur = g.NewNode
	}
	before := tv.Counters().Get(stats.CounterMoves)
	if _, err := tv.Submit(ctl.Request{Node: cur, Kind: tree.None}); err != nil {
		t.Fatal(err)
	}
	cost := tv.Counters().Get(stats.CounterMoves) - before
	if cost != 50 {
		t.Fatalf("request at depth 50 cost %d moves, want 50", cost)
	}
}

func TestGrowOnlyRejectsUnsupportedChanges(t *testing.T) {
	tr, root := tree.New()
	g := baseline.NewGrowOnly(tr, 64, 32, 8, nil)
	res, err := g.Submit(ctl.Request{Node: root, Kind: tree.AddLeaf})
	if err != nil || res.Outcome != ctl.Granted {
		t.Fatalf("add leaf: %v %v", res.Outcome, err)
	}
	if _, err := g.Submit(ctl.Request{Node: res.NewNode, Kind: tree.RemoveLeaf}); !errors.Is(err, baseline.ErrUnsupportedChange) {
		t.Fatalf("remove leaf err = %v, want ErrUnsupportedChange", err)
	}
}

func TestGrowOnlySafetyLiveness(t *testing.T) {
	for _, tc := range []struct{ m, w int64 }{{40, 10}, {100, 50}, {600, 300}} {
		tr, _ := tree.New()
		const requests = 400
		u := tc.m + 8
		g := baseline.NewGrowOnly(tr, u, tc.m, tc.w, nil)
		gen := workload.NewChurn(tr, workload.GrowOnlyMix(), 9)
		granted := int64(0)
		for i := 0; i < requests; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			res, err := g.Submit(req)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if res.Outcome == ctl.Granted {
				granted++
			}
			if res.Outcome == ctl.Rejected {
				break
			}
		}
		if granted > tc.m {
			t.Fatalf("M=%d W=%d: granted %d > M", tc.m, tc.w, granted)
		}
		if granted < tc.m-tc.w {
			t.Fatalf("M=%d W=%d: granted %d < M−W", tc.m, tc.w, granted)
		}
	}
}

func TestGrowOnlyIterated(t *testing.T) {
	tr, _ := tree.New()
	const m = 512
	it := baseline.NewGrowOnlyIterated(tr, m+8, m, 1, nil)
	gen := workload.NewChurn(tr, workload.GrowOnlyMix(), 3)
	granted := 0
	for i := 0; i < 4*m; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		res, err := it.Submit(req)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if res.Outcome == ctl.Granted {
			granted++
		}
		if res.Outcome == ctl.Rejected {
			break
		}
	}
	if granted > m || granted < m-1 {
		t.Fatalf("granted %d outside [M−W, M] = [%d, %d]", granted, m-1, m)
	}
	if it.Counters().Get(stats.CounterIterations) < 2 {
		t.Fatal("expected multiple waste-halving iterations")
	}
}

func TestGrowOnlyBinLocality(t *testing.T) {
	// After the hierarchy warms up, repeated requests at the same node
	// must be cheaper than the first one (bin reuse).
	tr, root := tree.New()
	counters := stats.NewCounters()
	g := baseline.NewGrowOnly(tr, 4096, 1<<20, 1<<19, counters)
	cur := root
	for i := 0; i < 64; i++ {
		res, err := g.Submit(ctl.Request{Node: cur, Kind: tree.AddLeaf})
		if err != nil || res.Outcome != ctl.Granted {
			t.Fatalf("grow: %v %v", res.Outcome, err)
		}
		cur = res.NewNode
	}
	before := counters.Get(stats.CounterMoves)
	for i := 0; i < 8; i++ {
		if _, err := g.Submit(ctl.Request{Node: cur, Kind: tree.None}); err != nil {
			t.Fatal(err)
		}
	}
	repeatCost := counters.Get(stats.CounterMoves) - before
	if repeatCost >= before {
		t.Fatalf("8 repeated requests cost %d moves vs %d for the build; expected bin locality",
			repeatCost, before)
	}
}
