// Package baseline implements the two comparison controllers used by the
// evaluation:
//
//   - Trivial: every permit travels from the root to the requesting node,
//     costing Θ(depth) per request — the Ω(nM) envelope the paper's
//     introduction cites.
//   - GrowOnly: a bin-hierarchy controller in the style of Afek, Awerbuch,
//     Plotkin and Saks [4], which supports only leaf insertions. Bins live
//     at fixed depths (the ruler function of the depth), each bin
//     replenishes from a supervisor bin exactly 2^i hops above it, and the
//     whole construction breaks under internal insertions/deletions — which
//     is precisely the gap the paper's controller closes.
//
// Both satisfy the (M,W) correctness conditions on the workloads they
// support and expose move counts through stats counters, so experiment E7
// (ours vs [4] on grow-only traces) and E8 (ours vs trivial) can compare
// costs directly.
package baseline

import (
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// Trivial is the naive (M,W)-Controller: all permits stay at the root and
// each granted request pays one move per hop from the root.
type Trivial struct {
	tr       *tree.Tree
	m        int64
	granted  int64
	rejected bool
	counters *stats.Counters
}

// NewTrivial builds a trivial controller with m permits at the root.
func NewTrivial(tr *tree.Tree, m int64, counters *stats.Counters) *Trivial {
	if counters == nil {
		counters = stats.NewCounters()
	}
	return &Trivial{tr: tr, m: m, counters: counters}
}

// Counters returns the cost counters.
func (t *Trivial) Counters() *stats.Counters { return t.counters }

// Granted returns the number of permits granted.
func (t *Trivial) Granted() int64 { return t.granted }

// Submit implements workload.Submitter.
func (t *Trivial) Submit(req controller.Request) (controller.Grant, error) {
	if t.rejected || t.granted >= t.m {
		if !t.rejected {
			t.rejected = true
			if n := int64(t.tr.Size()); n > 1 {
				t.counters.Add(stats.CounterMoves, n-1)
			}
		}
		t.counters.Inc(stats.CounterRejects)
		return controller.Grant{Outcome: controller.Rejected}, nil
	}
	d, err := t.tr.Distance(req.Node, t.tr.Root())
	if err != nil {
		return controller.Grant{}, err
	}
	t.counters.Add(stats.CounterMoves, int64(d))
	t.granted++
	t.counters.Inc(stats.CounterGrants)
	g := controller.Grant{Outcome: controller.Granted}
	g.NewNode, err = applyChange(t.tr, req)
	if err != nil {
		return controller.Grant{}, err
	}
	if req.Kind != tree.None {
		t.counters.Inc(stats.CounterTopoChanges)
	}
	return g, nil
}

func applyChange(tr *tree.Tree, req controller.Request) (tree.NodeID, error) {
	switch req.Kind {
	case tree.None:
		return tree.InvalidNode, nil
	case tree.AddLeaf:
		return tr.ApplyAddLeaf(req.Node)
	case tree.AddInternal:
		return tr.ApplyAddInternal(req.Child)
	case tree.RemoveLeaf:
		return tree.InvalidNode, tr.ApplyRemoveLeaf(req.Node)
	case tree.RemoveInternal:
		return tree.InvalidNode, tr.ApplyRemoveInternal(req.Node)
	default:
		return tree.InvalidNode, fmt.Errorf("baseline: unknown kind %v", req.Kind)
	}
}

// ErrUnsupportedChange is returned by GrowOnly for any topological change
// other than a leaf insertion — the restriction of the dynamic model of [4].
var ErrUnsupportedChange = fmt.Errorf("baseline: grow-only controller supports only %v", tree.AddLeaf)

// GrowOnly is the bin-hierarchy controller. Every node at depth d owns a
// bin of level ruler(d) (the exponent of the largest power of two dividing
// d; the root's bin is backed directly by the storage). A level-i bin holds
// up to 2^i·φ' permits and replenishes from its supervisor — the ancestor
// exactly 2^i hops up, whose depth has ruler ≥ i+1. A request draws from
// its own node's bin, triggering a replenishment chain toward the root when
// bins are empty.
//
// φ' is W/(2U·(⌈log₂U⌉+2)) clamped to ≥ 1, so that the permits stuck in
// bins stay below W (there are ≈U/2^{i+1} bins of level i, each holding
// ≤2^i·φ'). As in the paper, small W is handled by running the controller
// in waste-halving iterations (NewGrowOnlyIterated).
type GrowOnly struct {
	tr       *tree.Tree
	u        int64
	m        int64
	phi      int64
	maxLevel int
	storage  int64
	bins     map[tree.NodeID]int64
	granted  int64
	rejected bool
	noReject bool
	counters *stats.Counters
}

// NewGrowOnly builds a fixed-U grow-only (m, w)-controller.
func NewGrowOnly(tr *tree.Tree, u, m, w int64, counters *stats.Counters) *GrowOnly {
	if counters == nil {
		counters = stats.NewCounters()
	}
	if w < 1 {
		w = 1
	}
	logU := int64(stats.CeilLog2(int(u)) + 2)
	phi := w / (2 * u * logU)
	if phi < 1 {
		phi = 1
	}
	return &GrowOnly{
		tr:       tr,
		u:        u,
		m:        m,
		phi:      phi,
		maxLevel: stats.CeilLog2(int(u)) + 1,
		storage:  m,
		bins:     make(map[tree.NodeID]int64),
		counters: counters,
	}
}

// Counters returns the cost counters.
func (g *GrowOnly) Counters() *stats.Counters { return g.counters }

// Granted returns the number of permits granted.
func (g *GrowOnly) Granted() int64 { return g.granted }

// UnusedPermits returns the permits still in the storage or stuck in bins.
func (g *GrowOnly) UnusedPermits() int64 {
	n := g.storage
	for _, b := range g.bins {
		n += b
	}
	return n
}

// ruler returns the exponent of the largest power of two dividing d (and
// the maximum level for d = 0, i.e. the root).
func (g *GrowOnly) ruler(d int) int {
	if d == 0 {
		return g.maxLevel
	}
	i := 0
	for d%2 == 0 {
		d /= 2
		i++
	}
	if i > g.maxLevel {
		i = g.maxLevel
	}
	return i
}

// capacity returns the permit capacity of a level-i bin.
func (g *GrowOnly) capacity(level int) int64 { return g.phi << uint(level) }

// Submit implements workload.Submitter for grow-only traces.
func (g *GrowOnly) Submit(req controller.Request) (controller.Grant, error) {
	if req.Kind != tree.None && req.Kind != tree.AddLeaf {
		return controller.Grant{}, ErrUnsupportedChange
	}
	if g.rejected {
		g.counters.Inc(stats.CounterRejects)
		return controller.Grant{Outcome: controller.Rejected}, nil
	}
	if !g.tr.Contains(req.Node) {
		return controller.Grant{}, fmt.Errorf("grow-only submit at %d: %w", req.Node, tree.ErrNoSuchNode)
	}
	if !g.drawPermit(req.Node) {
		if g.noReject {
			return controller.Grant{Outcome: controller.WouldReject}, nil
		}
		g.rejected = true
		if n := int64(g.tr.Size()); n > 1 {
			g.counters.Add(stats.CounterMoves, n-1)
		}
		g.counters.Inc(stats.CounterRejects)
		return controller.Grant{Outcome: controller.Rejected}, nil
	}
	g.granted++
	g.counters.Inc(stats.CounterGrants)
	out := controller.Grant{Outcome: controller.Granted}
	var err error
	out.NewNode, err = applyChange(g.tr, req)
	if err != nil {
		return controller.Grant{}, err
	}
	if req.Kind != tree.None {
		g.counters.Inc(stats.CounterTopoChanges)
	}
	return out, nil
}

// drawPermit takes one permit from u's bin, replenishing the bin chain
// toward the root as needed. It reports whether a permit was obtained.
// A draw fails only when the storage and every bin on u's supervisor chain
// are dry; permits may remain stuck in off-chain bins (that is the waste W
// bounds).
func (g *GrowOnly) drawPermit(u tree.NodeID) bool {
	d, err := g.tr.Depth(u)
	if err != nil {
		return false
	}
	if d == 0 {
		// The root draws from the storage directly.
		if g.storage <= 0 {
			return false
		}
		g.storage--
		return true
	}
	if g.bins[u] == 0 {
		g.replenish(u, d)
	}
	if g.bins[u] == 0 {
		return false
	}
	g.bins[u]--
	return true
}

// replenish refills the bin at node u (depth d > 0) best-effort up to its
// level capacity, pulling from the supervisor bin 2^level hops above
// (recursively refilling it first). Each non-empty pull moves a set of
// permits across supDist edges, costing supDist moves.
func (g *GrowOnly) replenish(u tree.NodeID, d int) {
	level := g.ruler(d)
	supDist := 1 << uint(level)
	if supDist > d {
		supDist = d
	}
	sup, err := g.tr.Ancestor(u, supDist)
	if err != nil {
		return
	}
	want := g.capacity(level) - g.bins[u]
	if want <= 0 {
		return
	}
	supDepth := d - supDist
	var take int64
	if supDepth == 0 {
		// The supervisor is the root: pull straight from the storage.
		take = want
		if take > g.storage {
			take = g.storage
		}
		g.storage -= take
	} else {
		if g.bins[sup] < want {
			g.replenish(sup, supDepth)
		}
		take = want
		if take > g.bins[sup] {
			take = g.bins[sup]
		}
		g.bins[sup] -= take
	}
	if take > 0 {
		g.bins[u] += take
		g.counters.Add(stats.CounterMoves, int64(supDist))
	}
}

// GrowOnlyIterated runs GrowOnly cores in waste-halving iterations, exactly
// as [4] (and Observation 3.4) prescribe, so its total message complexity is
// O(U·log²U·log(M/(W+1))) on grow-only traces.
type GrowOnlyIterated struct {
	tr       *tree.Tree
	u        int64
	w        int64
	cur      *GrowOnly
	curM     int64
	counters *stats.Counters
	finalRun bool
	rejected bool
	granted  int64
}

// NewGrowOnlyIterated builds the iterated grow-only controller.
func NewGrowOnlyIterated(tr *tree.Tree, u, m, w int64, counters *stats.Counters) *GrowOnlyIterated {
	if counters == nil {
		counters = stats.NewCounters()
	}
	it := &GrowOnlyIterated{tr: tr, u: u, w: w, counters: counters}
	it.start(m)
	return it
}

func (it *GrowOnlyIterated) start(m int64) {
	it.counters.Inc(stats.CounterIterations)
	it.curM = m
	w := m / 2
	if it.w > 0 && m <= 2*it.w {
		w = it.w
		it.finalRun = true
	}
	if w < 1 {
		w = 1
	}
	it.cur = NewGrowOnly(it.tr, it.u, m, w, it.counters)
	it.cur.noReject = true
}

// Counters returns the cost counters.
func (it *GrowOnlyIterated) Counters() *stats.Counters { return it.counters }

// Granted returns the total permits granted.
func (it *GrowOnlyIterated) Granted() int64 { return it.granted }

// Submit implements workload.Submitter.
func (it *GrowOnlyIterated) Submit(req controller.Request) (controller.Grant, error) {
	if it.rejected {
		it.counters.Inc(stats.CounterRejects)
		return controller.Grant{Outcome: controller.Rejected}, nil
	}
	for attempt := 0; attempt < 128; attempt++ {
		g, err := it.cur.Submit(req)
		if err != nil {
			return controller.Grant{}, err
		}
		if g.Outcome == controller.Granted {
			it.granted++
			return g, nil
		}
		l := it.cur.UnusedPermits()
		if it.finalRun || l == 0 {
			it.rejected = true
			if n := int64(it.tr.Size()); n > 1 {
				it.counters.Add(stats.CounterMoves, n-1)
			}
			it.counters.Inc(stats.CounterRejects)
			return controller.Grant{Outcome: controller.Rejected}, nil
		}
		it.start(l)
	}
	return controller.Grant{}, controller.ErrIterationCap
}
