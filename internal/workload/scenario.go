package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/oracle"
	"dynctrl/internal/persist"
	"dynctrl/internal/pkgstore"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
)

// This file is the adversarial scenario engine: a small declarative
// Scenario vocabulary (topology × controller × workload × faults), a
// catalog of named scenarios covering the stress axes of the paper, and a
// runner that executes one scenario over one named transport schedule with
// the oracle invariant checkers always on.
//
// Every run is reproducible from (scenario name, scheduler name, seed):
// topology construction, request generation, and fault injection all draw
// from seed-derived sources, and the tree's node ids are allocation-order
// deterministic. Because the protocol processes one request at a time and
// its per-drain message handlers commute (a reject flood is idempotent,
// climbs and descents are chains), the outcome trace — and even the
// transport message count — is invariant across delivery schedules; the
// TraceHash in the result makes that property testable, and the golden
// corpus under testdata/ pins it across revisions.

// TopologySpec names an initial tree shape.
type TopologySpec struct {
	// Kind is "balanced" (uniformly random attachment), "path", or "star".
	Kind string `json:"kind"`
	// Nodes is the initial tree size.
	Nodes int `json:"nodes"`
}

// WorkloadSpec names the request generator driving a scenario.
type WorkloadSpec struct {
	// Kind is "churn", "hotspot", or "deeppath".
	Kind string `json:"kind"`
	// Mix names the churn mix: "default", "grow", "shrink", "event", or
	// "storm" (used by churn and hotspot).
	Mix string `json:"mix,omitempty"`
	// HotPct is the hotspot concentration percentage.
	HotPct int `json:"hot_pct,omitempty"`
	// MinSize floors the tree size under removal-heavy mixes.
	MinSize int `json:"min_size,omitempty"`
}

// FaultSpec injects node crash/recovery faults: every CrashEvery-th request
// is replaced by the graceful deletion of a random non-root node (the
// paper's deletion handoff: the node's whiteboard moves to its parent
// before the node leaves), and RecoverAfter requests later the crashed
// node's capacity is recovered by re-inserting a leaf at a random node.
type FaultSpec struct {
	CrashEvery   int `json:"crash_every,omitempty"`
	RecoverAfter int `json:"recover_after,omitempty"`
	// MaxCrashes bounds the number of injected crashes (0 = unbounded).
	MaxCrashes int `json:"max_crashes,omitempty"`
}

// DurabilitySpec configures the crash-restart fault axis: the run logs
// every decided effect through an internal/persist WAL (in a throwaway
// directory) and, every CrashEvery requests, the engine kills the whole
// in-memory controller stack — tree, runtime, driver state — exactly as a
// kill -9 would, then recovers it from the latest snapshot plus WAL replay
// before continuing the trace. Because recovery is exact, the resulting
// trace must be indistinguishable from a run that never crashed; the
// golden corpus and TestCrashRestartMatchesUndisturbedRun pin that.
type DurabilitySpec struct {
	// CrashEvery crashes and recovers the stack every n requests (0
	// disables the axis).
	CrashEvery int `json:"crash_every,omitempty"`
	// SnapshotEvery checkpoints the full state every n logged effects (0:
	// recovery replays the whole log from the initial topology).
	SnapshotEvery int64 `json:"snapshot_every,omitempty"`
	// MaxCrashes bounds the injected crashes (0 = unbounded).
	MaxCrashes int `json:"max_crashes,omitempty"`
}

// Scenario declaratively describes one adversarial run.
type Scenario struct {
	Name  string `json:"name"`
	Notes string `json:"notes,omitempty"`

	Topology   TopologySpec   `json:"topology"`
	Controller string         `json:"controller"` // "dynamic", "core", "core-serials"
	Workload   WorkloadSpec   `json:"workload"`
	Faults     FaultSpec      `json:"faults,omitempty"`
	Durability DurabilitySpec `json:"durability,omitempty"`

	// Requests is the submission count of a regular run; LongRequests (if
	// set) replaces it in long mode (the nightly sweep).
	Requests     int `json:"requests"`
	LongRequests int `json:"long_requests,omitempty"`

	// M and W are the permit contract the scenario (and its oracle) runs
	// under.
	M int64 `json:"m"`
	W int64 `json:"w"`
}

// ScenarioResult summarizes one scenario × scheduler run. Everything
// needed to reproduce the run (scenario, scheduler, seed) and to pin its
// behavior (trace hash, counts) is included, so the JSON output of
// cmd/scenario doubles as a regression artifact.
type ScenarioResult struct {
	Scenario  string `json:"scenario"`
	Scheduler string `json:"scheduler"`
	Seed      int64  `json:"seed"`
	Long      bool   `json:"long,omitempty"`

	Requests   int   `json:"requests"`
	Granted    int64 `json:"granted"`
	Rejected   int64 `json:"rejected"`
	Errors     int   `json:"errors"`
	Crashes    int   `json:"crashes"`
	Recoveries int   `json:"recoveries"`
	// Restarts counts whole-process crash/recovery cycles of the
	// durability axis (as opposed to Crashes, which counts single-node
	// graceful-deletion faults).
	Restarts int `json:"restarts,omitempty"`

	TopoChanges       int64 `json:"topo_changes"`
	TransportMessages int64 `json:"transport_messages"`
	ControlMessages   int64 `json:"control_messages"`
	FinalNodes        int   `json:"final_nodes"`
	FinalHeight       int   `json:"final_height"`

	TraceHash  string             `json:"trace_hash"`
	Violations []oracle.Violation `json:"violations,omitempty"`
}

// MixByName resolves the named churn mixes of the scenario vocabulary.
func MixByName(name string) (Mix, error) {
	switch name {
	case "", "default":
		return DefaultMix(), nil
	case "grow":
		return GrowOnlyMix(), nil
	case "shrink":
		return ShrinkHeavyMix(), nil
	case "event":
		return EventOnlyMix(), nil
	case "storm":
		// Churn storm: almost every request moves the topology.
		return Mix{AddLeaf: 35, RemoveLeaf: 30, AddInternal: 15, RemoveInternal: 15, Event: 5}, nil
	default:
		return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
	}
}

// Catalog returns the named scenario catalog. Each entry stresses one axis
// of the controller: request skew, topology churn, path depth, crash
// faults, permit exhaustion, and serial carrying.
func Catalog() []Scenario {
	return []Scenario{
		{
			Name:       "hotspot-skew",
			Notes:      "80% of requests hammer one deep pivot's subtree; static packages must keep absorbing the hot node",
			Topology:   TopologySpec{Kind: "balanced", Nodes: 96},
			Controller: "dynamic",
			Workload:   WorkloadSpec{Kind: "hotspot", HotPct: 80},
			Requests:   1000, LongRequests: 8000,
			M: 2000, W: 400,
		},
		{
			Name:       "churn-storm",
			Notes:      "95% topological churn at the size floor; stores are created, handed off and deleted constantly",
			Topology:   TopologySpec{Kind: "balanced", Nodes: 64},
			Controller: "dynamic",
			Workload:   WorkloadSpec{Kind: "churn", Mix: "storm", MinSize: 16},
			Requests:   900, LongRequests: 6000,
			M: 1500, W: 300,
		},
		{
			Name:       "deep-path-adversary",
			Notes:      "requests ride the tip of an ever-deepening path; filler search and drop-point splitting at maximal distance",
			Topology:   TopologySpec{Kind: "path", Nodes: 64},
			Controller: "core",
			Workload:   WorkloadSpec{Kind: "deeppath"},
			Requests:   600, LongRequests: 2400,
			M: 800, W: 160,
		},
		{
			Name:       "join-leave-crashes",
			Notes:      "churn plus periodic crash/recovery of random non-root nodes via the graceful-deletion handoff",
			Topology:   TopologySpec{Kind: "balanced", Nodes: 64},
			Controller: "dynamic",
			Workload:   WorkloadSpec{Kind: "churn", Mix: "default", MinSize: 24},
			Faults:     FaultSpec{CrashEvery: 20, RecoverAfter: 7},
			Requests:   800, LongRequests: 5000,
			M: 2500, W: 500,
		},
		{
			Name:       "exhaustion-reject-wave",
			Notes:      "tight permit budget; the reject wave must flood legally (>= M-W granted) and finally",
			Topology:   TopologySpec{Kind: "balanced", Nodes: 48},
			Controller: "core",
			Workload:   WorkloadSpec{Kind: "churn", Mix: "event"},
			Requests:   400, LongRequests: 1200,
			M: 120, W: 60,
		},
		{
			Name:       "serial-names",
			Notes:      "fixed-U core carrying explicit serial intervals; every grant's serial must be fresh and in range",
			Topology:   TopologySpec{Kind: "balanced", Nodes: 56},
			Controller: "core-serials",
			Workload:   WorkloadSpec{Kind: "churn", Mix: "event"},
			Requests:   500, LongRequests: 2000,
			M: 400, W: 80,
		},
		{
			Name:       "crash-restart",
			Notes:      "kill -9 the whole controller stack mid-run and recover it from WAL + snapshot; the trace must continue exactly as if the crash never happened",
			Topology:   TopologySpec{Kind: "balanced", Nodes: 64},
			Controller: "dynamic",
			Workload:   WorkloadSpec{Kind: "churn", Mix: "default", MinSize: 24},
			Durability: DurabilitySpec{CrashEvery: 150, SnapshotEvery: 100, MaxCrashes: 3},
			Requests:   700, LongRequests: 4000,
			M: 2500, W: 500,
		},
		{
			Name:       "grow-only-flood",
			Notes:      "grow-only joins from a star; the unknown-U driver must keep re-estimating U as the tree explodes",
			Topology:   TopologySpec{Kind: "star", Nodes: 32},
			Controller: "dynamic",
			Workload:   WorkloadSpec{Kind: "churn", Mix: "grow"},
			Requests:   700, LongRequests: 4000,
			M: 3000, W: 600,
		},
	}
}

// ScenarioByName finds a catalog scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}

// buildTopology constructs the initial tree of a scenario.
func buildTopology(spec TopologySpec, seed int64) (*tree.Tree, error) {
	tr, _ := tree.New()
	return tr, BuildTopology(tr, spec, seed)
}

// deepestNode returns the deepest live node, breaking depth ties by the
// smallest id so the choice is deterministic.
func deepestNode(tr *tree.Tree) tree.NodeID {
	best, bestD := tr.Root(), -1
	for _, id := range sortIDs(tr.Nodes()) {
		if d, err := tr.Depth(id); err == nil && d > bestD {
			best, bestD = id, d
		}
	}
	return best
}

// faultInjector replaces scheduled requests with crash (graceful deletion)
// and recovery (leaf re-insertion) requests. A fault only counts — and a
// crash only schedules its recovery — once the engine confirms the
// controller granted it: a rejected deletion leaves the node in place, so
// recovering it would skew the scenario the report describes.
type faultInjector struct {
	spec       FaultSpec
	tr         *tree.Tree
	rng        *rand.Rand
	crashes    int
	recoveries int
	pending    []int // request indices at which a recovery is due
}

// faultKind tags what an injected request was, so the engine can confirm
// its outcome back into the injector.
type faultKind int

const (
	faultNone faultKind = iota
	faultCrash
	faultRecover
)

func newFaultInjector(spec FaultSpec, tr *tree.Tree, seed int64) *faultInjector {
	return &faultInjector{spec: spec, tr: tr, rng: rand.New(rand.NewSource(seed))}
}

// next returns the fault request scheduled for submission index i, if any.
func (f *faultInjector) next(i int) (controller.Request, faultKind) {
	if f == nil || f.spec.CrashEvery <= 0 {
		return controller.Request{}, faultNone
	}
	if len(f.pending) > 0 && f.pending[0] <= i {
		f.pending = f.pending[1:]
		nodes := sortIDs(f.tr.Nodes())
		if len(nodes) == 0 {
			return controller.Request{}, faultNone
		}
		return controller.Request{Node: nodes[f.rng.Intn(len(nodes))], Kind: tree.AddLeaf}, faultRecover
	}
	if (i+1)%f.spec.CrashEvery != 0 {
		return controller.Request{}, faultNone
	}
	if f.spec.MaxCrashes > 0 && f.crashes >= f.spec.MaxCrashes {
		return controller.Request{}, faultNone
	}
	if f.tr.Size() < 3 {
		return controller.Request{}, faultNone
	}
	root := f.tr.Root()
	nodes := sortIDs(f.tr.Nodes())
	for attempt := 0; attempt < 8; attempt++ {
		victim := nodes[f.rng.Intn(len(nodes))]
		if victim == root {
			continue
		}
		kind := tree.RemoveLeaf
		if !f.tr.IsLeaf(victim) {
			kind = tree.RemoveInternal
		}
		return controller.Request{Node: victim, Kind: kind}, faultCrash
	}
	return controller.Request{}, faultNone
}

// confirm records the outcome of an injected request: only granted crashes
// count (and schedule their recovery), only granted recoveries count.
func (f *faultInjector) confirm(kind faultKind, i int, granted bool) {
	if !granted {
		return
	}
	switch kind {
	case faultCrash:
		f.crashes++
		if f.spec.RecoverAfter > 0 {
			f.pending = append(f.pending, i+f.spec.RecoverAfter)
		}
	case faultRecover:
		f.recoveries++
	}
}

// RunScenario executes one scenario over the named transport schedule with
// the oracle always on. Everything is derived from seed; two calls with
// identical arguments produce identical results (including TraceHash), and
// for the single-threaded schedulers the trace is also identical across
// scheduler names.
func RunScenario(sc Scenario, scheduler string, seed int64, long bool) (ScenarioResult, error) {
	res := ScenarioResult{
		Scenario:  sc.Name,
		Scheduler: scheduler,
		Seed:      seed,
		Long:      long,
	}
	requests := sc.Requests
	if long && sc.LongRequests > 0 {
		requests = sc.LongRequests
	}

	tr, err := buildTopology(sc.Topology, seed)
	if err != nil {
		return res, err
	}
	rt, err := sim.NewRuntime(scheduler, seed)
	if err != nil {
		return res, err
	}
	counters := stats.NewCounters()

	// U must bound the nodes ever to exist: the initial topology plus at
	// most one insertion per request.
	u := int64(sc.Topology.Nodes + requests + 4)
	var target oracle.Target
	var dyn *dist.Dynamic // set for "dynamic": the durability axis snapshots it
	opts := []oracle.Option{oracle.WithMessages(rt.Messages)}
	switch sc.Controller {
	case "dynamic":
		dyn = dist.NewDynamic(tr, rt, sc.M, sc.W, false, counters)
		target = dyn
	case "core":
		core := dist.NewCore(tr, rt, u, sc.M, sc.W, dist.WithCounters(counters))
		target = dist.NewSubmitter(core, rt)
	case "core-serials":
		core := dist.NewCore(tr, rt, u, sc.M, sc.W,
			dist.WithCounters(counters),
			dist.WithSerials(pkgstore.Interval{Lo: 1, Hi: sc.M}))
		target = dist.NewSubmitter(core, rt)
		opts = append(opts, oracle.WithSerials())
	default:
		return res, fmt.Errorf("workload: unknown controller %q", sc.Controller)
	}
	orc := oracle.Wrap(target, tr, sc.M, sc.W, opts...)

	var gen Generator
	switch sc.Workload.Kind {
	case "churn":
		mix, err := MixByName(sc.Workload.Mix)
		if err != nil {
			return res, err
		}
		churn := NewChurn(tr, mix, seed+1)
		if sc.Workload.MinSize > 0 {
			churn.SetMinSize(sc.Workload.MinSize)
		}
		gen = churn
	case "hotspot":
		gen = NewHotspot(tr, deepestNode(tr), sc.Workload.HotPct, seed+1)
	case "deeppath":
		gen = NewDeepPath(tr)
	default:
		return res, fmt.Errorf("workload: unknown workload %q", sc.Workload.Kind)
	}
	faults := newFaultInjector(sc.Faults, tr, seed+2)

	// Durability axis: log effects to a throwaway WAL directory so crash
	// points can drop the whole in-memory stack and recover it.
	dur := sc.Durability
	var (
		eng      *persist.Engine
		walDir   string
		bootSnap *tree.Snapshot
		msgBase  int64
	)
	if dur.CrashEvery > 0 {
		if dyn == nil {
			return res, fmt.Errorf("workload: the durability axis requires the \"dynamic\" controller, scenario uses %q", sc.Controller)
		}
		walDir, err = os.MkdirTemp("", "dynctrl-wal-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(walDir)
		// Recovery without a snapshot replays the whole log on top of the
		// initial topology; capture it before any traffic mutates it.
		bootSnap = tr.Snapshot()
		eng, _, err = persist.Open(walDir, persist.Options{SnapshotEvery: dur.SnapshotEvery})
		if err != nil {
			return res, err
		}
		defer func() { eng.Close() }() //nolint:errcheck // idempotent safety net
	}
	captureState := func() *persist.State {
		return &persist.State{
			Index:       eng.AppendedIndex(),
			Incarnation: eng.Incarnation(),
			M:           sc.M,
			W:           sc.W,
			Tree:        tr.Snapshot(),
			Ctl:         dyn.State(),
			Counters:    counters.Snapshot(),
		}
	}
	oneReq := make([]controller.Request, 1)
	oneRes := make([]controller.BatchResult, 1)

	hash := fnv.New64a()
	var word [8]byte
	hashInt := func(v int64) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		hash.Write(word[:])
	}

	for i := 0; i < requests; i++ {
		req, injected := faults.next(i)
		if injected == faultNone {
			var ok bool
			req, ok = gen.Next()
			if !ok {
				break
			}
		}
		res.Requests++
		g, err := orc.Submit(req)
		if err != nil {
			res.Errors++
			hashInt(-1)
			continue
		}
		faults.confirm(injected, i, g.Outcome == controller.Granted)
		hashInt(int64(g.Outcome))
		hashInt(g.Serial)
		hashInt(int64(g.NewNode))
		if dp, ok := gen.(*DeepPath); ok {
			dp.Observe(g)
		}

		if eng == nil {
			continue
		}
		oneReq[0], oneRes[0] = req, controller.BatchResult{Grant: g}
		if err := eng.CommitEffects(oneReq, oneRes); err != nil {
			return res, err
		}
		if eng.ShouldCheckpoint() {
			if err := eng.Checkpoint(captureState()); err != nil {
				return res, err
			}
		}
		if (i+1)%dur.CrashEvery == 0 && i+1 < requests &&
			(dur.MaxCrashes == 0 || res.Restarts < dur.MaxCrashes) {
			// Crash: drop every in-memory layer (the un-fsynced WAL buffer
			// included — that is what a kill -9 loses) and recover from disk.
			msgBase += rt.Messages()
			eng.Abandon()
			res.Restarts++
			rt, err = sim.NewRuntime(scheduler, seed+int64(res.Restarts)*7919)
			if err != nil {
				return res, err
			}
			var rec *persist.Recovery
			eng, rec, err = persist.Open(walDir, persist.Options{SnapshotEvery: dur.SnapshotEvery})
			if err != nil {
				return res, err
			}
			if rec.Snapshot != nil {
				dyn, err = persist.RestoreInto(rec.Snapshot, tr, rt, counters)
				if err != nil {
					return res, err
				}
			} else {
				counters.Restore(nil)
				if err := tr.Restore(bootSnap); err != nil {
					return res, err
				}
				dyn = dist.NewDynamic(tr, rt, sc.M, sc.W, false, counters)
			}
			if _, err = persist.Replay(rec.Tail, dyn); err != nil {
				return res, err
			}
			// The recovered incarnation gets a fresh oracle seeded with the
			// totals the previous one confirmed, so safety keeps counting
			// across the restart; violations accumulate across incarnations.
			res.Violations = append(res.Violations, orc.Violations()...)
			orc = oracle.Wrap(dyn, tr, sc.M, sc.W,
				oracle.WithMessages(rt.Messages),
				oracle.WithBaseline(orc.Granted(), orc.Rejected(), nil))
		}
	}

	res.Granted = orc.Granted()
	res.Rejected = orc.Rejected()
	res.Crashes = faults.crashes
	res.Recoveries = faults.recoveries
	res.TopoChanges = counters.Get(stats.CounterTopoChanges)
	res.TransportMessages = msgBase + rt.Messages()
	res.ControlMessages = counters.Get(dist.CounterControl)
	res.FinalNodes = tr.Size()
	res.FinalHeight = tr.Height()
	res.Violations = append(res.Violations, orc.Finish()...)
	if eng != nil {
		// End the final incarnation gracefully, then audit the whole
		// on-disk history with the cross-incarnation oracle.
		if err := eng.Close(); err != nil {
			return res, err
		}
		_, xviol, err := persist.VerifyDir(walDir, sc.M)
		if err != nil {
			return res, err
		}
		res.Violations = append(res.Violations, xviol...)
	}
	res.TraceHash = fmt.Sprintf("%016x", hash.Sum64())
	return res, nil
}

// Sweep runs every scenario across every named scheduler and returns the
// matrix of results. It stops early only on engine errors (unknown names,
// topology failures); oracle violations are reported in the results.
func Sweep(scenarios []Scenario, schedulers []string, seed int64, long bool) ([]ScenarioResult, error) {
	out := make([]ScenarioResult, 0, len(scenarios)*len(schedulers))
	for _, sc := range scenarios {
		for _, sched := range schedulers {
			res, err := RunScenario(sc, sched, seed, long)
			if err != nil {
				return out, fmt.Errorf("scenario %s × %s: %w", sc.Name, sched, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}
