package workload

// This file is the noisy-neighbor scenario of the multi-tenant daemon:
// one tenant (the flooder) drives grow-only traffic as fast as it can
// while another tenant (the victim) replays a pinned request sequence.
// Tenant isolation demands that the flood moves nothing the victim can
// observe — the victim's verdict stream must be bitwise identical to the
// stream the same sequence produces with no neighbor at all, and its
// accounting must reconcile exactly. The comparison itself lives in
// internal/oracle (CheckTenantIsolation); this file generates the two
// workloads and orchestrates the baseline and disturbed phases.

import (
	"fmt"

	"dynctrl/internal/controller"
	"dynctrl/internal/oracle"
	"dynctrl/internal/tree"
)

// GrowOnlyConcurrentMix issues only leaf additions — the flooding
// tenant's workload in the noisy-neighbor scenario. Grow-only traffic is
// the most invasive interleaving-safe flood: every request mutates the
// flooder's tree and burns a permit, so any state leaking across tenants
// (shared serial counters, shared permit budget, shared tree) moves the
// victim's verdicts immediately.
func GrowOnlyConcurrentMix() ConcurrentMix { return ConcurrentMix{AddLeaf: 100} }

// VictimProbe draws the victim's pinned serial request sequence: n
// event-heavy requests over a snapshot of tr, deterministic in seed. The
// same (tree, n, seed) always yields the identical sequence, which is
// what makes the baseline/disturbed hash comparison meaningful.
func VictimProbe(tr *tree.Tree, n int, seed int64) ([]controller.Request, error) {
	ct, err := NewConcurrentTrace(tr, 1, n, EventHeavyConcurrentMix(), seed)
	if err != nil {
		return nil, err
	}
	return ct.Serial(), nil
}

// RunProbe drives reqs serially — one at a time, in order — through sub,
// folding every verdict into a fresh oracle.TenantTrace for tenant under
// permit bound m.
func RunProbe(sub Submitter, tenant string, m int64, reqs []controller.Request) *oracle.TenantTrace {
	trace := oracle.NewTenantTrace(tenant, m)
	for _, req := range reqs {
		g, err := sub.Submit(req)
		trace.Record(g, err)
	}
	return trace
}

// NoisyNeighborResult is the outcome of one noisy-neighbor run.
type NoisyNeighborResult struct {
	// Baseline is the victim's trace with no neighbor traffic; Disturbed
	// is the identical sequence replayed under the flood.
	Baseline, Disturbed *oracle.TenantTrace
	// Flood tallies the flooding tenant's own traffic during the
	// disturbed phase.
	Flood ConcurrentResult
	// Violations holds every isolation breach the oracle found (empty on
	// a clean run).
	Violations []oracle.Violation
}

// RunNoisyNeighbor executes the two-phase noisy-neighbor check. setup is
// called once per phase and must return a fresh victim submitter over a
// brand-new, deterministic stack (same parameters both times — the two
// phases replay the identical probe sequence against identical initial
// state). For the disturbed phase (disturbed=true) it additionally
// returns the neighbor flood as a blocking function, which runs
// concurrently with the victim probe; the baseline phase ignores flood.
// The returned result carries both traces and the oracle's verdict.
func RunNoisyNeighbor(tenant string, m int64, probe []controller.Request,
	setup func(disturbed bool) (victim Submitter, flood func() ConcurrentResult, err error),
) (*NoisyNeighborResult, error) {
	victim, _, err := setup(false)
	if err != nil {
		return nil, fmt.Errorf("noisy-neighbor baseline setup: %w", err)
	}
	baseline := RunProbe(victim, tenant, m, probe)

	victim, flood, err := setup(true)
	if err != nil {
		return nil, fmt.Errorf("noisy-neighbor disturbed setup: %w", err)
	}
	res := &NoisyNeighborResult{Baseline: baseline}
	floodDone := make(chan struct{})
	if flood != nil {
		go func() {
			defer close(floodDone)
			res.Flood = flood()
		}()
	} else {
		close(floodDone)
	}
	res.Disturbed = RunProbe(victim, tenant, m, probe)
	<-floodDone

	res.Violations = oracle.CheckTenantIsolation(res.Baseline, res.Disturbed)
	return res, nil
}
