// Package workload generates request traces for the controller and its
// applications. Generators are stateful: they inspect the live tree to emit
// only currently-valid requests, which models the paper's online adversary
// (requests arrive at arbitrary nodes, constrained only by tree validity).
package workload

import (
	"errors"
	"math/rand"
	"sort"

	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
)

// Submitter is anything that can answer controller requests: the
// centralized cores and drivers, the distributed controller adapter, and
// the baselines all implement it.
type Submitter interface {
	Submit(controller.Request) (controller.Grant, error)
}

// Generator produces the next request for the current tree state. ok is
// false when the generator cannot produce a valid request (e.g. a
// shrink-only generator on a bare root).
type Generator interface {
	Next() (req controller.Request, ok bool)
}

// Mix describes the relative weights of request kinds in a churn trace.
type Mix struct {
	AddLeaf        int
	RemoveLeaf     int
	AddInternal    int
	RemoveInternal int
	Event          int // non-topological
}

// DefaultMix is a balanced fully-dynamic churn with a drift toward growth.
func DefaultMix() Mix {
	return Mix{AddLeaf: 30, RemoveLeaf: 20, AddInternal: 15, RemoveInternal: 10, Event: 25}
}

// GrowOnlyMix allows only leaf insertions (the dynamic model of Afek,
// Awerbuch, Plotkin and Saks).
func GrowOnlyMix() Mix { return Mix{AddLeaf: 100} }

// ShrinkHeavyMix drifts toward deletions.
func ShrinkHeavyMix() Mix {
	return Mix{AddLeaf: 15, RemoveLeaf: 35, AddInternal: 5, RemoveInternal: 25, Event: 20}
}

// EventOnlyMix issues only non-topological events (ticket sales etc.).
func EventOnlyMix() Mix { return Mix{Event: 100} }

func (m Mix) total() int {
	return m.AddLeaf + m.RemoveLeaf + m.AddInternal + m.RemoveInternal + m.Event
}

// Churn draws requests at uniformly random valid locations according to a
// Mix. MinSize guards the tree against shrinking below a floor (removals
// are re-drawn as additions when at the floor).
type Churn struct {
	tr      *tree.Tree
	rng     *rand.Rand
	mix     Mix
	minSize int
}

// NewChurn builds a churn generator over tr.
func NewChurn(tr *tree.Tree, mix Mix, seed int64) *Churn {
	return &Churn{tr: tr, rng: rand.New(rand.NewSource(seed)), mix: mix, minSize: 1}
}

// SetMinSize sets the size floor below which removals are suppressed.
func (c *Churn) SetMinSize(n int) { c.minSize = n }

// Next implements Generator. It always succeeds for mixes that include
// additions or events.
func (c *Churn) Next() (controller.Request, bool) {
	total := c.mix.total()
	if total <= 0 {
		return controller.Request{}, false
	}
	for attempt := 0; attempt < 64; attempt++ {
		roll := c.rng.Intn(total)
		switch {
		case roll < c.mix.AddLeaf:
			if req, ok := c.addLeaf(); ok {
				return req, true
			}
		case roll < c.mix.AddLeaf+c.mix.RemoveLeaf:
			if req, ok := c.removeLeaf(); ok {
				return req, true
			}
		case roll < c.mix.AddLeaf+c.mix.RemoveLeaf+c.mix.AddInternal:
			if req, ok := c.addInternal(); ok {
				return req, true
			}
		case roll < c.mix.AddLeaf+c.mix.RemoveLeaf+c.mix.AddInternal+c.mix.RemoveInternal:
			if req, ok := c.removeInternal(); ok {
				return req, true
			}
		default:
			if req, ok := c.event(); ok {
				return req, true
			}
		}
	}
	return controller.Request{}, false
}

// sortIDs orders node ids ascending so generator draws are deterministic
// for a given seed (tree.Nodes iterates a map).
func sortIDs(ids []tree.NodeID) []tree.NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (c *Churn) randomNode() (tree.NodeID, bool) {
	nodes := sortIDs(c.tr.Nodes())
	if len(nodes) == 0 {
		return tree.InvalidNode, false
	}
	return nodes[c.rng.Intn(len(nodes))], true
}

func (c *Churn) addLeaf() (controller.Request, bool) {
	parent, ok := c.randomNode()
	if !ok {
		return controller.Request{}, false
	}
	return controller.Request{Node: parent, Kind: tree.AddLeaf}, true
}

func (c *Churn) removeLeaf() (controller.Request, bool) {
	if c.tr.Size() <= c.minSize {
		return controller.Request{}, false
	}
	leaves := sortIDs(c.tr.Leaves())
	root := c.tr.Root()
	for attempt := 0; attempt < 8 && len(leaves) > 0; attempt++ {
		id := leaves[c.rng.Intn(len(leaves))]
		if id != root {
			return controller.Request{Node: id, Kind: tree.RemoveLeaf}, true
		}
	}
	return controller.Request{}, false
}

func (c *Churn) addInternal() (controller.Request, bool) {
	// Pick a random non-root node; split the edge to its parent.
	root := c.tr.Root()
	for attempt := 0; attempt < 8; attempt++ {
		child, ok := c.randomNode()
		if !ok {
			return controller.Request{}, false
		}
		if child == root {
			continue
		}
		parent, err := c.tr.Parent(child)
		if err != nil {
			continue
		}
		return controller.Request{Node: parent, Kind: tree.AddInternal, Child: child}, true
	}
	return controller.Request{}, false
}

func (c *Churn) removeInternal() (controller.Request, bool) {
	if c.tr.Size() <= c.minSize {
		return controller.Request{}, false
	}
	root := c.tr.Root()
	for attempt := 0; attempt < 8; attempt++ {
		id, ok := c.randomNode()
		if !ok {
			return controller.Request{}, false
		}
		if id == root || c.tr.IsLeaf(id) {
			continue
		}
		return controller.Request{Node: id, Kind: tree.RemoveInternal}, true
	}
	return controller.Request{}, false
}

func (c *Churn) event() (controller.Request, bool) {
	id, ok := c.randomNode()
	if !ok {
		return controller.Request{}, false
	}
	return controller.Request{Node: id, Kind: tree.None}, true
}

// DeepPath grows the tree as a single path: every request adds a leaf under
// the current deepest node. It stresses the distance-dependent parts of the
// controller (filler search, package drop points).
type DeepPath struct {
	tr      *tree.Tree
	deepest tree.NodeID
}

// NewDeepPath builds a deep-path generator rooted at tr's root.
func NewDeepPath(tr *tree.Tree) *DeepPath {
	dp := &DeepPath{tr: tr, deepest: tr.Root()}
	// Resume from the current deepest node if the tree is not bare.
	best, bestD := tr.Root(), 0
	for _, id := range tr.Nodes() {
		if d, err := tr.Depth(id); err == nil && d > bestD {
			best, bestD = id, d
		}
	}
	dp.deepest = best
	return dp
}

// Next implements Generator.
func (d *DeepPath) Next() (controller.Request, bool) {
	if !d.tr.Contains(d.deepest) {
		d.deepest = d.tr.Root()
	}
	return controller.Request{Node: d.deepest, Kind: tree.AddLeaf}, true
}

// Observe must be called with each grant so the generator tracks the path
// tip.
func (d *DeepPath) Observe(g controller.Grant) {
	if g.Outcome == controller.Granted && g.NewNode != tree.InvalidNode {
		d.deepest = g.NewNode
	}
}

// Hotspot concentrates requests in the subtree of a pivot node: a fraction
// hotPct of requests target descendants of the pivot (approximated by
// re-rooting the random choice at the pivot).
type Hotspot struct {
	churn  *Churn
	tr     *tree.Tree
	rng    *rand.Rand
	pivot  tree.NodeID
	hotPct int
}

// NewHotspot builds a hotspot generator; pivot's subtree receives hotPct
// percent of the event requests.
func NewHotspot(tr *tree.Tree, pivot tree.NodeID, hotPct int, seed int64) *Hotspot {
	return &Hotspot{
		churn:  NewChurn(tr, DefaultMix(), seed),
		tr:     tr,
		rng:    rand.New(rand.NewSource(seed + 1)),
		pivot:  pivot,
		hotPct: hotPct,
	}
}

// Next implements Generator.
func (h *Hotspot) Next() (controller.Request, bool) {
	if h.tr.Contains(h.pivot) && h.rng.Intn(100) < h.hotPct {
		return controller.Request{Node: h.pivot, Kind: tree.AddLeaf}, true
	}
	return h.churn.Next()
}

// Result summarizes a driven trace.
type Result struct {
	Granted    int
	Rejected   int
	Terminated bool
	Submitted  int
}

// Run drives n requests from gen into sub, observing grants back into
// generators that need them (DeepPath). It stops early when the submitter
// terminates (terminating controllers) or the generator runs dry.
func Run(sub Submitter, gen Generator, n int) (Result, error) {
	var res Result
	for i := 0; i < n; i++ {
		req, ok := gen.Next()
		if !ok {
			return res, nil
		}
		res.Submitted++
		g, err := sub.Submit(req)
		if errors.Is(err, controller.ErrTerminated) {
			res.Terminated = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		switch g.Outcome {
		case controller.Granted:
			res.Granted++
		case controller.Rejected:
			res.Rejected++
		}
		if dp, ok := gen.(*DeepPath); ok {
			dp.Observe(g)
		}
	}
	return res, nil
}

// BuildBalanced grows tr (assumed bare) into a roughly balanced tree with n
// nodes by attaching each new leaf under a uniformly random existing node.
// It applies changes directly (no controller involved) and is used to set
// up initial topologies for experiments.
func BuildBalanced(tr *tree.Tree, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	nodes := sortIDs(tr.Nodes())
	for tr.Size() < n {
		parent := nodes[rng.Intn(len(nodes))]
		id, err := tr.ApplyAddLeaf(parent)
		if err != nil {
			return err
		}
		nodes = append(nodes, id)
	}
	return nil
}

// BuildPath grows tr (assumed bare) into a path of n nodes.
func BuildPath(tr *tree.Tree, n int) error {
	cur := tr.Root()
	for tr.Size() < n {
		id, err := tr.ApplyAddLeaf(cur)
		if err != nil {
			return err
		}
		cur = id
	}
	return nil
}

// BuildStar grows tr (assumed bare) into a star: n-1 leaves under the root.
func BuildStar(tr *tree.Tree, n int) error {
	root := tr.Root()
	for tr.Size() < n {
		if _, err := tr.ApplyAddLeaf(root); err != nil {
			return err
		}
	}
	return nil
}
