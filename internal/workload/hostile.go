// The hostile-network scenario family: declarative specs pairing a
// concurrent wire workload with a deterministic faultnet schedule, so the
// connection lifecycle of the daemon and its client is exercised under
// partitions, mid-batch kills, slow-loris peers and duplicated replies —
// with the fault schedule reproducible from (scenario, seed) alone. The
// e2e harness that runs these against a live server lives with
// internal/server's tests (it needs the server's crash hook); the specs
// live here with the rest of the scenario vocabulary.
package workload

import (
	"fmt"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/faultnet"
	"dynctrl/internal/tree"
)

// HostileScenario describes one hostile-network run: Conns connections
// are dialed sequentially through a faultnet proxy (so connection
// ordinals equal dial order and the fault schedule is deterministic),
// each drives its slice of a NewConcurrentTrace in Chunk-sized
// SubmitMany runs, and the proxy injects Faults. The oracle contract for
// every scenario: at-most-once grant semantics (client-observed grants
// never exceed server-executed grants, which never exceed M) and exact
// server-side accounting that reconciles with /metricsz and the WAL.
type HostileScenario struct {
	Name  string
	Notes string

	// Topology, M, W and Mix pin the tenant contract and the trace, as in
	// the main scenario catalog.
	Topology TopologySpec
	M, W     int64
	Mix      ConcurrentMix

	// Conns connections each submit PerConn requests in Chunk-sized runs.
	Conns   int
	PerConn int
	Chunk   int

	// Seed derives the trace and the fault schedule.
	Seed int64

	// Faults is the faultnet schedule applied between client and server.
	Faults []faultnet.Rule

	// IdleTimeout and HandshakeTimeout configure the server's read
	// deadlines (zero keeps the server defaults); WriteTimeout configures
	// the client's write deadline (zero keeps the client default).
	IdleTimeout      time.Duration
	HandshakeTimeout time.Duration
	WriteTimeout     time.Duration

	// WAL runs the server durable, and the harness crashes + recovers it
	// from disk after the faulted phase before reconciling.
	WAL bool

	// Recover makes the harness reconnect to the server directly
	// (bypassing the proxy) after the faulted phase and resubmit each
	// connection's unanswered remainder — the retrying-application model;
	// at-most-once still bounds what the *client observes* per call.
	Recover bool

	// ExpectDialFaults is how many of the initial dials are allowed (and
	// expected) to fail because the schedule attacks the handshake.
	ExpectDialFaults int
}

// HostileCatalog returns the hostile-network scenario family.
func HostileCatalog() []HostileScenario {
	return []HostileScenario{
		{
			Name: "partition-during-reject-wave",
			Notes: "tight permit budget; every connection is partitioned mid-run while the reject wave floods," +
				" then the clients reconnect and must see a coherent, final wave",
			Topology: TopologySpec{Kind: "balanced", Nodes: 48},
			M:        120, W: 60,
			Mix:   EventOnlyConcurrentMix(),
			Conns: 4, PerConn: 200, Chunk: 16,
			Seed: 7,
			Faults: []faultnet.Rule{
				// c2s frame 0 is the Hello; frames 1.. are Submit frames. A
				// kill at frame 8 lands mid-trace on every connection, after
				// the 120-permit budget is gone and rejects are flowing.
				{Kind: faultnet.Kill, Dir: faultnet.ClientToServer, Conn: -1, Frame: 8},
			},
			Recover: true,
		},
		{
			Name: "kill-mid-batch",
			Notes: "one connection loses its socket between Submit frames, another mid-frame; the server is then" +
				" crashed and recovered from WAL, and the on-disk history must account every grant exactly once",
			Topology: TopologySpec{Kind: "balanced", Nodes: 32},
			M:        1 << 20, W: 1 << 19,
			Mix:   EventHeavyConcurrentMix(),
			Conns: 4, PerConn: 256, Chunk: 32,
			Seed: 11,
			Faults: []faultnet.Rule{
				{Kind: faultnet.KillMidFrame, Dir: faultnet.ClientToServer, Conn: 1, Frame: 3},
				{Kind: faultnet.Kill, Dir: faultnet.ClientToServer, Conn: 2, Frame: 5},
			},
			WAL:     true,
			Recover: true,
		},
		{
			Name: "slow-loris-handshake",
			Notes: "one peer dribbles its Hello byte by byte and another dribbles a Submit frame; the server's" +
				" handshake and idle deadlines must reap both instead of parking goroutines forever",
			Topology: TopologySpec{Kind: "balanced", Nodes: 32},
			M:        1 << 20, W: 1 << 19,
			Mix:   EventOnlyConcurrentMix(),
			Conns: 4, PerConn: 128, Chunk: 16,
			Seed: 13,
			Faults: []faultnet.Rule{
				// Conn 0: the Hello itself dribbles slower than the server's
				// handshake deadline allows.
				{Kind: faultnet.SlowLoris, Dir: faultnet.ClientToServer, Conn: 0, Frame: 0,
					Delay: 100 * time.Millisecond, Chunk: 1},
				// Conn 1: the handshake is clean, then a Submit frame
				// dribbles slower than the idle deadline allows.
				{Kind: faultnet.SlowLoris, Dir: faultnet.ClientToServer, Conn: 1, Frame: 2,
					Delay: 150 * time.Millisecond, Chunk: 1},
			},
			IdleTimeout:      250 * time.Millisecond,
			HandshakeTimeout: 500 * time.Millisecond,
			Recover:          true,
			ExpectDialFaults: 1,
		},
		{
			Name: "dup-results",
			Notes: "the network replays whole Results frames; the client must refuse the duplicate (unknown id)" +
				" rather than double-count grants, so client-observed grants still bound below server grants",
			Topology: TopologySpec{Kind: "balanced", Nodes: 32},
			M:        1 << 20, W: 1 << 19,
			Mix:   EventOnlyConcurrentMix(),
			Conns: 4, PerConn: 192, Chunk: 16,
			Seed: 17,
			Faults: []faultnet.Rule{
				// s2c frame 0 is the Welcome; frames 1.. are Results. Conn 0
				// sees a deterministic replay, every conn risks a low-rate
				// probabilistic one.
				{Kind: faultnet.Dup, Dir: faultnet.ServerToClient, Conn: 0, Frame: 3},
				{Kind: faultnet.Dup, Dir: faultnet.ServerToClient, Conn: -1, Frame: -1, Prob: 0.05},
			},
			Recover: true,
		},
	}
}

// HostileScenarioByName finds a hostile catalog scenario.
func HostileScenarioByName(name string) (HostileScenario, error) {
	for _, sc := range HostileCatalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return HostileScenario{}, fmt.Errorf("workload: unknown hostile scenario %q", name)
}

// Trace builds the scenario's topology and per-connection request
// slices: the same (scenario, seed) always yields the same tree and the
// same slice per connection ordinal.
func (sc HostileScenario) Trace() (*tree.Tree, [][]controller.Request, error) {
	tr, _ := tree.New()
	if err := BuildTopology(tr, sc.Topology, sc.Seed); err != nil {
		return nil, nil, err
	}
	ct, err := NewConcurrentTrace(tr, sc.Conns, sc.PerConn, sc.Mix, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	return tr, ct.Clients, nil
}
