package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"dynctrl/internal/tree"
)

// This file projects the scenario catalog onto the network boundary. A
// load generator on the far side of a socket cannot consult the server's
// live tree, so a wire run is built from the deterministic half of a
// scenario: both sides construct the identical initial topology from
// (TopologySpec, seed) — node ids are allocation-order deterministic — and
// the client pre-generates an interleaving-safe concurrent trace over that
// snapshot (events and leaf additions under snapshot nodes, the vocabulary
// of concurrent.go, which stays valid under every delivery order). The
// TopologySignature exchanged in the wire handshake catches the one way
// this can silently go wrong: the two sides building different trees.

// TopologySignature hashes the live node set of a tree (sorted ids plus
// each node's parent) into a signature both ends of a connection can
// compare during the handshake. Two trees built by the same deterministic
// constructor agree; a mismatched (spec, seed) pair does not.
func TopologySignature(tr *tree.Tree) uint64 {
	h := fnv.New64a()
	var word [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	for _, id := range sortIDs(tr.Nodes()) {
		put(int64(id))
		parent, err := tr.Parent(id)
		if err != nil {
			parent = tree.InvalidNode
		}
		put(int64(parent))
	}
	return h.Sum64()
}

// BuildTopology constructs a scenario's initial tree shape in tr. It is the
// exported form of the scenario engine's topology step, so a server and a
// remote load generator can build the identical tree from the same spec and
// seed.
func BuildTopology(tr *tree.Tree, spec TopologySpec, seed int64) error {
	switch spec.Kind {
	case "balanced":
		return BuildBalanced(tr, spec.Nodes, seed)
	case "path":
		return BuildPath(tr, spec.Nodes)
	case "star":
		return BuildStar(tr, spec.Nodes)
	default:
		return fmt.Errorf("workload: unknown topology %q", spec.Kind)
	}
}

// WireMix projects a scenario's workload onto the interleaving-safe
// concurrent vocabulary: additions (leaf or internal) become snapshot leaf
// additions, everything else — events and the removals that cannot be
// replayed safely from a remote snapshot — becomes a non-topological event.
// The event/growth ratio of the original mix is preserved.
func WireMix(spec WorkloadSpec) (ConcurrentMix, error) {
	switch spec.Kind {
	case "churn":
		mix, err := MixByName(spec.Mix)
		if err != nil {
			return ConcurrentMix{}, err
		}
		return ConcurrentMix{
			Event:   mix.Event + mix.RemoveLeaf + mix.RemoveInternal,
			AddLeaf: mix.AddLeaf + mix.AddInternal,
		}, nil
	case "hotspot", "deeppath":
		// Request-location workloads; over the wire their requests are
		// events over the snapshot.
		return EventOnlyConcurrentMix(), nil
	default:
		return ConcurrentMix{}, fmt.Errorf("workload: unknown workload %q", spec.Kind)
	}
}

// WireTrace builds the client half of a scenario run over the wire: the
// reconstructed initial tree (for signature verification) and a
// deterministic concurrent trace of total requests partitioned across conns
// connections. The same (scenario, conns, total, seed) always yields the
// identical trace; total <= 0 uses the scenario's pinned request count.
func WireTrace(sc Scenario, conns, total int, seed int64) (*tree.Tree, *ConcurrentTrace, error) {
	if conns < 1 {
		return nil, nil, fmt.Errorf("workload: need at least 1 connection, got %d", conns)
	}
	if total <= 0 {
		total = sc.Requests
	}
	tr, _ := tree.New()
	if err := BuildTopology(tr, sc.Topology, seed); err != nil {
		return nil, nil, err
	}
	mix, err := WireMix(sc.Workload)
	if err != nil {
		return nil, nil, err
	}
	perConn := (total + conns - 1) / conns
	ct, err := NewConcurrentTrace(tr, conns, perConn, mix, seed+1)
	if err != nil {
		return nil, nil, err
	}
	return tr, ct, nil
}
