package workload

import (
	"testing"

	"dynctrl/internal/dist"
	"dynctrl/internal/oracle"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/tree"
)

const nnSeed = 7

// nnStack builds one deterministic admission stack: same seed, same stack.
func nnStack(t *testing.T, m, w int64) (*tree.Tree, *dist.Dynamic) {
	t.Helper()
	tr, _ := tree.New()
	if err := BuildTopology(tr, TopologySpec{Kind: "balanced", Nodes: 32}, nnSeed); err != nil {
		t.Fatal(err)
	}
	rt, err := sim.NewRuntime("random", nnSeed)
	if err != nil {
		t.Fatal(err)
	}
	return tr, dist.NewDynamic(tr, rt, m, w, false, nil)
}

// TestNoisyNeighborIsolatedStacks is the in-process noisy-neighbor
// scenario: victim and flooder own fully separate stacks (exactly the
// multi-tenant server's partitioning), so the flood must not move the
// victim's verdicts by a single bit.
func TestNoisyNeighborIsolatedStacks(t *testing.T) {
	victimTree, _ := nnStack(t, 10_000, 5_000)
	probe, err := VictimProbe(victimTree, 300, nnSeed)
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunNoisyNeighbor("b-team", 10_000, probe,
		func(disturbed bool) (Submitter, func() ConcurrentResult, error) {
			_, victim := nnStack(t, 10_000, 5_000)
			if !disturbed {
				return victim, nil, nil
			}
			floodTree, floodCtl := nnStack(t, 50_000, 25_000)
			pl := pipeline.New(floodCtl)
			t.Cleanup(pl.Close)
			ct, err := NewConcurrentTrace(floodTree, 4, 500, GrowOnlyConcurrentMix(), nnSeed+1)
			if err != nil {
				return nil, nil, err
			}
			return victim, func() ConcurrentResult { return RunConcurrentChunked(pl, ct, 64) }, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("isolated stacks violated isolation: %v", res.Violations)
	}
	if res.Flood.Submitted != 2000 || res.Flood.Errors != 0 {
		t.Fatalf("flood did not run cleanly: %+v", res.Flood)
	}
	if res.Baseline.Granted == 0 {
		t.Fatal("victim probe granted nothing — the check is vacuous")
	}
}

// TestNoisyNeighborSharedStackIsCaught demonstrates the bug class the
// checker exists for: when both tenants share one stack (no partitioning),
// the flood's permits and serials interleave with the victim's and the
// isolation oracle must flag the moved verdict stream.
func TestNoisyNeighborSharedStackIsCaught(t *testing.T) {
	victimTree, _ := nnStack(t, 100_000, 50_000)
	probe, err := VictimProbe(victimTree, 300, nnSeed)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: a fresh shared stack, victim traffic only.
	_, ctl := nnStack(t, 100_000, 50_000)
	baseline := RunProbe(ctl, "b-team", 100_000, probe)

	// Disturbed: a fresh identical stack, but the neighbor's grow-only
	// flood lands on the SAME stack before the victim's probe replays.
	// (Sequential on purpose: shared-state interference is deterministic —
	// the flood's leaf additions shift the node ids the victim's own
	// additions receive — so the detection does not depend on a race.)
	sharedTree, sharedCtl := nnStack(t, 100_000, 50_000)
	pl := pipeline.New(sharedCtl)
	t.Cleanup(pl.Close)
	ct, err := NewConcurrentTrace(sharedTree, 4, 500, GrowOnlyConcurrentMix(), nnSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	if flood := RunConcurrentChunked(pl, ct, 64); flood.Errors != 0 {
		t.Fatalf("flood errors: %+v", flood)
	}
	disturbed := RunProbe(pl, "b-team", 100_000, probe)

	violations := oracle.CheckTenantIsolation(baseline, disturbed)
	if len(violations) == 0 {
		t.Fatal("shared stack passed the isolation check — the oracle is blind")
	}
	found := false
	for _, v := range violations {
		if v.Invariant == "tenant-verdict-trace" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v lack tenant-verdict-trace", violations)
	}
}
