package workload_test

import (
	"testing"

	ctl "dynctrl/internal/controller"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func TestBuilders(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 64, 1); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 64 {
		t.Fatalf("balanced size = %d, want 64", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	trP, _ := tree.New()
	if err := workload.BuildPath(trP, 40); err != nil {
		t.Fatal(err)
	}
	if trP.Height() != 39 {
		t.Fatalf("path height = %d, want 39", trP.Height())
	}

	trS, _ := tree.New()
	if err := workload.BuildStar(trS, 40); err != nil {
		t.Fatal(err)
	}
	if trS.Height() != 1 {
		t.Fatalf("star height = %d, want 1", trS.Height())
	}
	if n, _ := trS.ChildCount(trS.Root()); n != 39 {
		t.Fatalf("star root degree = %d, want 39", n)
	}
}

func TestChurnProducesValidRequests(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 30, 2); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.DefaultMix(), 3)
	for i := 0; i < 300; i++ {
		req, ok := gen.Next()
		if !ok {
			t.Fatalf("generator dried up at %d", i)
		}
		if !tr.Contains(req.Node) {
			t.Fatalf("request at missing node %d", req.Node)
		}
		switch req.Kind {
		case tree.RemoveLeaf:
			if !tr.IsLeaf(req.Node) || req.Node == tr.Root() {
				t.Fatal("invalid remove-leaf request")
			}
		case tree.RemoveInternal:
			if tr.IsLeaf(req.Node) || req.Node == tr.Root() {
				t.Fatal("invalid remove-internal request")
			}
		case tree.AddInternal:
			p, err := tr.Parent(req.Child)
			if err != nil || p != req.Node {
				t.Fatal("invalid add-internal request")
			}
		}
		// Apply additions/removals directly to keep the tree moving.
		switch req.Kind {
		case tree.AddLeaf:
			if _, err := tr.ApplyAddLeaf(req.Node); err != nil {
				t.Fatal(err)
			}
		case tree.RemoveLeaf:
			if err := tr.ApplyRemoveLeaf(req.Node); err != nil {
				t.Fatal(err)
			}
		case tree.AddInternal:
			if _, err := tr.ApplyAddInternal(req.Child); err != nil {
				t.Fatal(err)
			}
		case tree.RemoveInternal:
			if err := tr.ApplyRemoveInternal(req.Node); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnDeterministicForSeed(t *testing.T) {
	run := func() []ctl.Request {
		tr, _ := tree.New()
		if err := workload.BuildBalanced(tr, 20, 5); err != nil {
			t.Fatal(err)
		}
		gen := workload.NewChurn(tr, workload.EventOnlyMix(), 9)
		var out []ctl.Request
		for i := 0; i < 50; i++ {
			req, _ := gen.Next()
			out = append(out, req)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMinSizeFloor(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 10, 6); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewChurn(tr, workload.ShrinkHeavyMix(), 7)
	gen.SetMinSize(10)
	// At the floor, the generator must never emit removals.
	for i := 0; i < 100; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if req.Kind.IsRemoval() && tr.Size() <= 10 {
			t.Fatal("removal emitted at the size floor")
		}
	}
}

func TestRunDrivesSubmitter(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 16, 8); err != nil {
		t.Fatal(err)
	}
	c := ctl.NewCore(tr, 64, 10, 2)
	gen := workload.NewChurn(tr, workload.EventOnlyMix(), 11)
	res, err := workload.Run(c, gen, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted > 10 {
		t.Fatalf("granted %d > M", res.Granted)
	}
	if res.Submitted == 0 {
		t.Fatal("nothing submitted")
	}
}

func TestDeepPathGenerator(t *testing.T) {
	tr, _ := tree.New()
	dp := workload.NewDeepPath(tr)
	c := ctl.NewCore(tr, 128, 64, 16)
	res, err := workload.Run(c, dp, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted != 50 {
		t.Fatalf("granted %d, want 50", res.Granted)
	}
	if tr.Height() != 50 {
		t.Fatalf("height = %d, want 50 (a path)", tr.Height())
	}
}

func TestHotspotGenerator(t *testing.T) {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, 20, 9); err != nil {
		t.Fatal(err)
	}
	pivot := tr.Root()
	h := workload.NewHotspot(tr, pivot, 90, 13)
	atPivot := 0
	for i := 0; i < 200; i++ {
		req, ok := h.Next()
		if !ok {
			t.Fatal("hotspot dried up")
		}
		if req.Node == pivot && req.Kind == tree.AddLeaf {
			atPivot++
		}
	}
	if atPivot < 100 {
		t.Fatalf("only %d/200 requests hit the hotspot; want most", atPivot)
	}
}
