package workload_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dynctrl/internal/sim"
	"dynctrl/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace corpus")

// goldenSeed pins the seed of the committed golden-trace corpus.
const goldenSeed = 1

// TestScenarioCatalogAcrossSchedulers is the CI scenario matrix: every
// catalog scenario runs under every adversarial scheduler with the oracle
// invariant suite always on. A violation anywhere fails with the full
// reproduction recipe (scenario, scheduler, seed).
func TestScenarioCatalogAcrossSchedulers(t *testing.T) {
	for _, sc := range workload.Catalog() {
		for _, sched := range sim.SchedulerNames() {
			sc, sched := sc, sched
			t.Run(sc.Name+"/"+sched, func(t *testing.T) {
				t.Parallel()
				res, err := workload.RunScenario(sc, sched, goldenSeed, false)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if len(res.Violations) > 0 {
					t.Fatalf("oracle violations (reproduce: scenario=%s sched=%s seed=%d): %v",
						sc.Name, sched, goldenSeed, res.Violations)
				}
				if res.Errors > 0 {
					t.Fatalf("%d request errors", res.Errors)
				}
				if res.Granted == 0 {
					t.Fatal("scenario granted nothing; catalog entry is vacuous")
				}
				if res.Requests < sc.Requests {
					t.Fatalf("generator ran dry after %d of %d requests", res.Requests, sc.Requests)
				}
			})
		}
	}
}

// TestScenarioScheduleInvariance checks the engine's central property: the
// protocol's per-request drains commute, so the outcome trace and even the
// transport message count must be identical under every delivery schedule,
// including the worker-pool concurrent runtime.
func TestScenarioScheduleInvariance(t *testing.T) {
	for _, sc := range workload.Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := workload.RunScenario(sc, "fifo", goldenSeed, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, sched := range append(sim.SchedulerNames(), "concurrent") {
				res, err := workload.RunScenario(sc, sched, goldenSeed, false)
				if err != nil {
					t.Fatalf("%s: %v", sched, err)
				}
				if res.TraceHash != base.TraceHash {
					t.Fatalf("%s: trace hash %s, fifo %s — outcomes depend on the schedule",
						sched, res.TraceHash, base.TraceHash)
				}
				if res.TransportMessages != base.TransportMessages {
					t.Fatalf("%s: %d transport messages, fifo %d",
						sched, res.TransportMessages, base.TransportMessages)
				}
				if res.Granted != base.Granted || res.Rejected != base.Rejected {
					t.Fatalf("%s: granted/rejected %d/%d, fifo %d/%d",
						sched, res.Granted, res.Rejected, base.Granted, base.Rejected)
				}
			}
		})
	}
}

// TestScenarioSeedReproducibility: one seed, one trace — twice; a different
// seed must explore a different trace.
func TestScenarioSeedReproducibility(t *testing.T) {
	sc, err := workload.ScenarioByName("churn-storm")
	if err != nil {
		t.Fatal(err)
	}
	a, err := workload.RunScenario(sc, "random", 42, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.RunScenario(sc, "random", 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash || a.TransportMessages != b.TransportMessages {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := workload.RunScenario(sc, "random", 43, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceHash == a.TraceHash {
		t.Fatal("seeds 42 and 43 produced identical traces")
	}
}

// TestCrashRestartMatchesUndisturbedRun is the recovery-exactness
// property behind the crash-restart scenario: stripping the durability
// axis (no crashes, no WAL) from the scenario must yield the identical
// outcome trace — recovery reconstructs the controller so faithfully that
// the request stream cannot tell the crashes happened.
func TestCrashRestartMatchesUndisturbedRun(t *testing.T) {
	sc, err := workload.ScenarioByName("crash-restart")
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := workload.RunScenario(sc, "random", goldenSeed, false)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Restarts == 0 {
		t.Fatal("crash-restart scenario injected no restarts")
	}
	if len(crashed.Violations) > 0 {
		t.Fatalf("violations across restarts: %v", crashed.Violations)
	}
	sc.Durability = workload.DurabilitySpec{}
	smooth, err := workload.RunScenario(sc, "random", goldenSeed, false)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.TraceHash != smooth.TraceHash {
		t.Fatalf("crash-restart trace %s differs from undisturbed trace %s: recovery is not exact",
			crashed.TraceHash, smooth.TraceHash)
	}
	if crashed.Granted != smooth.Granted || crashed.FinalNodes != smooth.FinalNodes {
		t.Fatalf("crashed run granted=%d nodes=%d, undisturbed granted=%d nodes=%d",
			crashed.Granted, crashed.FinalNodes, smooth.Granted, smooth.FinalNodes)
	}
}

// goldenEntry is one pinned scenario behavior in the regression corpus.
type goldenEntry struct {
	Scenario          string `json:"scenario"`
	Requests          int    `json:"requests"`
	Granted           int64  `json:"granted"`
	Rejected          int64  `json:"rejected"`
	Crashes           int    `json:"crashes"`
	Restarts          int    `json:"restarts"`
	TopoChanges       int64  `json:"topo_changes"`
	TransportMessages int64  `json:"transport_messages"`
	FinalNodes        int    `json:"final_nodes"`
	TraceHash         string `json:"trace_hash"`
}

type goldenFile struct {
	Schema  int           `json:"schema"`
	Seed    int64         `json:"seed"`
	Entries []goldenEntry `json:"entries"`
}

func goldenPath() string { return filepath.Join("testdata", "golden_traces.json") }

func runGolden(t *testing.T) []goldenEntry {
	t.Helper()
	var entries []goldenEntry
	for _, sc := range workload.Catalog() {
		res, err := workload.RunScenario(sc, "random", goldenSeed, false)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("%s: oracle violations in golden run: %v", sc.Name, res.Violations)
		}
		entries = append(entries, goldenEntry{
			Scenario:          res.Scenario,
			Requests:          res.Requests,
			Granted:           res.Granted,
			Rejected:          res.Rejected,
			Crashes:           res.Crashes,
			Restarts:          res.Restarts,
			TopoChanges:       res.TopoChanges,
			TransportMessages: res.TransportMessages,
			FinalNodes:        res.FinalNodes,
			TraceHash:         res.TraceHash,
		})
	}
	return entries
}

// TestGoldenTraces replays the catalog against the committed golden-trace
// corpus: any behavioral drift — one more message, one different outcome —
// fails until the corpus is regenerated with
//
//	go test ./internal/workload -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	got := runGolden(t)
	if *updateGolden {
		buf, err := json.MarshalIndent(goldenFile{Schema: 1, Seed: goldenSeed, Entries: got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden corpus rewritten: %d entries", len(got))
		return
	}
	buf, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden corpus (regenerate with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if want.Seed != goldenSeed {
		t.Fatalf("golden corpus seed %d, test uses %d", want.Seed, goldenSeed)
	}
	byName := make(map[string]goldenEntry, len(want.Entries))
	for _, e := range want.Entries {
		byName[e.Scenario] = e
	}
	for _, g := range got {
		w, ok := byName[g.Scenario]
		if !ok {
			t.Errorf("scenario %s missing from golden corpus (regenerate with -update)", g.Scenario)
			continue
		}
		if g != w {
			t.Errorf("scenario %s drifted:\n got %+v\nwant %+v\n(regenerate with -update if intended)",
				g.Scenario, g, w)
		}
	}
	if len(want.Entries) != len(got) {
		t.Errorf("golden corpus has %d entries, catalog has %d", len(want.Entries), len(got))
	}
}

// TestScenarioSweepLong is the nightly long-run sweep: the full catalog at
// long request counts across every runtime. Gated so regular and -short
// runs skip it; CI's scheduled job sets SCENARIO_LONG=1.
func TestScenarioSweepLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep skipped in -short mode")
	}
	if os.Getenv("SCENARIO_LONG") == "" {
		t.Skip("long sweep runs nightly; set SCENARIO_LONG=1 to run locally")
	}
	results, err := workload.Sweep(workload.Catalog(), sim.RuntimeNames(), goldenSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if len(res.Violations) > 0 {
			t.Errorf("%s × %s (seed %d): %v", res.Scenario, res.Scheduler, res.Seed, res.Violations)
		}
		if res.Errors > 0 {
			t.Errorf("%s × %s: %d request errors", res.Scenario, res.Scheduler, res.Errors)
		}
	}
}
