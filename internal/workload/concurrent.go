package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"dynctrl/internal/controller"
	"dynctrl/internal/tree"
)

// This file generates workloads for concurrent clients. The stateful
// generators of workload.go consult the live tree before every draw, which
// is exactly right for a serial driver but useless for concurrent
// submitters: by the time a request reaches the controller the tree may
// have changed. Concurrent traces are therefore pre-generated over a
// snapshot of the tree and restricted to interleaving-safe request kinds —
// non-topological events and leaf additions under snapshot nodes — which
// stay valid under every execution order (snapshot nodes are never removed
// by such a trace).

// ConcurrentMix describes the relative weights of the interleaving-safe
// request kinds in a concurrent trace.
type ConcurrentMix struct {
	Event   int // non-topological events (kind None)
	AddLeaf int // leaf additions under snapshot nodes
}

// EventHeavyConcurrentMix models metered traffic with light growth: mostly
// events, some insertions. This is the pinned mix of cmd/benchjson.
func EventHeavyConcurrentMix() ConcurrentMix { return ConcurrentMix{Event: 90, AddLeaf: 10} }

// EventOnlyConcurrentMix issues only non-topological events.
func EventOnlyConcurrentMix() ConcurrentMix { return ConcurrentMix{Event: 100} }

// ConcurrentTrace is a deterministic request trace pre-partitioned across
// concurrent clients: client i plays Clients[i] in order, concurrently with
// the other clients. Serial reproduces the same requests as one
// interleaved round-robin stream, so a serial driver can replay the exact
// workload for comparisons.
type ConcurrentTrace struct {
	Clients [][]controller.Request
}

// NewConcurrentTrace draws perClient requests for each of clients clients
// over a snapshot of tr's current nodes, deterministically for a given
// seed: the same (tree, clients, perClient, mix, seed) always yields the
// identical trace. All requests remain valid under every interleaving.
func NewConcurrentTrace(tr *tree.Tree, clients, perClient int, mix ConcurrentMix, seed int64) (*ConcurrentTrace, error) {
	if clients < 1 {
		return nil, fmt.Errorf("concurrent trace: need at least 1 client, got %d", clients)
	}
	if mix.Event < 0 || mix.AddLeaf < 0 || mix.Event+mix.AddLeaf <= 0 {
		return nil, fmt.Errorf("concurrent trace: invalid mix %+v", mix)
	}
	nodes := sortIDs(tr.Nodes())
	if len(nodes) == 0 {
		return nil, fmt.Errorf("concurrent trace: empty tree")
	}
	total := mix.Event + mix.AddLeaf
	ct := &ConcurrentTrace{Clients: make([][]controller.Request, clients)}
	for i := range ct.Clients {
		// Every client draws from its own derived stream, so one client's
		// trace does not depend on how many other clients exist.
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		reqs := make([]controller.Request, perClient)
		for j := range reqs {
			node := nodes[rng.Intn(len(nodes))]
			kind := tree.None
			if rng.Intn(total) >= mix.Event {
				kind = tree.AddLeaf
			}
			reqs[j] = controller.Request{Node: node, Kind: kind}
		}
		ct.Clients[i] = reqs
	}
	return ct, nil
}

// Len returns the total number of requests in the trace.
func (ct *ConcurrentTrace) Len() int {
	n := 0
	for _, c := range ct.Clients {
		n += len(c)
	}
	return n
}

// Serial returns the trace as one stream, interleaving the clients
// round-robin (client 0's first request, client 1's first, ..., client 0's
// second, ...). A serial Submit loop over this stream is the baseline the
// pipeline is benchmarked against.
func (ct *ConcurrentTrace) Serial() []controller.Request {
	out := make([]controller.Request, 0, ct.Len())
	for j := 0; ; j++ {
		emitted := false
		for _, c := range ct.Clients {
			if j < len(c) {
				out = append(out, c[j])
				emitted = true
			}
		}
		if !emitted {
			return out
		}
	}
}

// ConcurrentResult tallies the outcomes of a concurrently driven trace.
type ConcurrentResult struct {
	Granted   int64
	Rejected  int64
	Errors    int64
	Submitted int64
}

// RunConcurrent plays the trace against sub, one goroutine per client, and
// aggregates the outcomes. sub must be safe for concurrent use (e.g. a
// pipeline.Pipeline); errors do not stop the other clients.
func RunConcurrent(sub Submitter, ct *ConcurrentTrace) ConcurrentResult {
	var (
		mu  sync.Mutex
		res ConcurrentResult
		wg  sync.WaitGroup
	)
	for _, reqs := range ct.Clients {
		wg.Add(1)
		go func(reqs []controller.Request) {
			defer wg.Done()
			var local ConcurrentResult
			for _, req := range reqs {
				local.Submitted++
				g, err := sub.Submit(req)
				switch {
				case err != nil:
					local.Errors++
				case g.Outcome == controller.Granted:
					local.Granted++
				case g.Outcome == controller.Rejected:
					local.Rejected++
				}
			}
			mu.Lock()
			res.Granted += local.Granted
			res.Rejected += local.Rejected
			res.Errors += local.Errors
			res.Submitted += local.Submitted
			mu.Unlock()
		}(reqs)
	}
	wg.Wait()
	return res
}

// ManySubmitter is a submitter accepting runs of requests in one call with
// per-request results (pipeline.Pipeline implements it).
type ManySubmitter interface {
	SubmitMany(reqs []controller.Request, out []controller.BatchResult) ([]controller.BatchResult, error)
}

// RunConcurrentChunked plays the trace against sub, one goroutine per
// client, submitting runs of chunk requests per call — the streaming-client
// pattern the pipeline is built for: one synchronization handoff covers a
// whole chunk. chunk < 1 means each client submits its whole trace at once.
func RunConcurrentChunked(sub ManySubmitter, ct *ConcurrentTrace, chunk int) ConcurrentResult {
	var (
		mu  sync.Mutex
		res ConcurrentResult
		wg  sync.WaitGroup
	)
	for _, reqs := range ct.Clients {
		wg.Add(1)
		go func(reqs []controller.Request) {
			defer wg.Done()
			var local ConcurrentResult
			var out []controller.BatchResult
			step := chunk
			if step < 1 {
				step = len(reqs)
			}
			for lo := 0; lo < len(reqs); lo += step {
				hi := lo + step
				if hi > len(reqs) {
					hi = len(reqs)
				}
				run := reqs[lo:hi]
				var err error
				out, err = sub.SubmitMany(run, out[:0])
				local.Submitted += int64(len(run))
				if err != nil {
					local.Errors += int64(len(run))
					continue
				}
				for _, r := range out {
					switch {
					case r.Err != nil:
						local.Errors++
					case r.Grant.Outcome == controller.Granted:
						local.Granted++
					case r.Grant.Outcome == controller.Rejected:
						local.Rejected++
					}
				}
			}
			mu.Lock()
			res.Granted += local.Granted
			res.Rejected += local.Rejected
			res.Errors += local.Errors
			res.Submitted += local.Submitted
			mu.Unlock()
		}(reqs)
	}
	wg.Wait()
	return res
}
