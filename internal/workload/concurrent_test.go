package workload

import (
	"reflect"
	"testing"

	"dynctrl/internal/tree"
)

func concurrentTestTree(t *testing.T) *tree.Tree {
	t.Helper()
	tr, _ := tree.New()
	if err := BuildBalanced(tr, 32, 7); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestConcurrentTraceDeterminism regenerates the same trace twice (and over
// a structurally identical tree) and requires bit-identical output: the
// benchmark harness depends on the pinned workload being reproducible.
func TestConcurrentTraceDeterminism(t *testing.T) {
	trA := concurrentTestTree(t)
	trB := concurrentTestTree(t)
	a1, err := NewConcurrentTrace(trA, 5, 200, EventHeavyConcurrentMix(), 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewConcurrentTrace(trA, 5, 200, EventHeavyConcurrentMix(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConcurrentTrace(trB, 5, 200, EventHeavyConcurrentMix(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same tree, same seed: traces differ")
	}
	if !reflect.DeepEqual(a1, b) {
		t.Fatal("identical trees, same seed: traces differ")
	}
	other, err := NewConcurrentTrace(trA, 5, 200, EventHeavyConcurrentMix(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1, other) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestConcurrentTraceClientPrefixStability checks that a client's stream
// does not depend on how many other clients exist, so scaling the client
// count preserves the per-client workloads.
func TestConcurrentTraceClientPrefixStability(t *testing.T) {
	tr := concurrentTestTree(t)
	small, err := NewConcurrentTrace(tr, 2, 50, EventOnlyConcurrentMix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewConcurrentTrace(tr, 6, 50, EventOnlyConcurrentMix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Clients {
		if !reflect.DeepEqual(small.Clients[i], large.Clients[i]) {
			t.Fatalf("client %d trace changed when client count grew", i)
		}
	}
}

// TestConcurrentTraceValidity checks that every request targets a snapshot
// node with an interleaving-safe kind, and that Serial interleaves
// round-robin.
func TestConcurrentTraceValidity(t *testing.T) {
	tr := concurrentTestTree(t)
	snapshot := make(map[tree.NodeID]bool)
	for _, id := range tr.Nodes() {
		snapshot[id] = true
	}
	ct, err := NewConcurrentTrace(tr, 3, 40, EventHeavyConcurrentMix(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.Len(); got != 120 {
		t.Fatalf("trace length %d, want 120", got)
	}
	for ci, reqs := range ct.Clients {
		for i, req := range reqs {
			if !snapshot[req.Node] {
				t.Fatalf("client %d request %d targets non-snapshot node %d", ci, i, req.Node)
			}
			if req.Kind != tree.None && req.Kind != tree.AddLeaf {
				t.Fatalf("client %d request %d has unsafe kind %v", ci, i, req.Kind)
			}
		}
	}
	serial := ct.Serial()
	if len(serial) != ct.Len() {
		t.Fatalf("serial length %d, want %d", len(serial), ct.Len())
	}
	for j := 0; j < 40; j++ {
		for c := 0; c < 3; c++ {
			if serial[j*3+c] != ct.Clients[c][j] {
				t.Fatalf("serial[%d] is not client %d's request %d", j*3+c, c, j)
			}
		}
	}
	if _, err := NewConcurrentTrace(tr, 0, 10, EventOnlyConcurrentMix(), 1); err == nil {
		t.Fatal("zero clients: want error")
	}
	if _, err := NewConcurrentTrace(tr, 1, 10, ConcurrentMix{}, 1); err == nil {
		t.Fatal("empty mix: want error")
	}
}
