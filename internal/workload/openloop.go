// Open-loop load generation: requests arrive on a precomputed schedule
// (Poisson or fixed-interval) regardless of how fast the system answers,
// and every request's latency is measured from its *scheduled* arrival
// time — so when the system falls behind, the queueing delay of the
// backlog is charged to the system rather than silently elided. That is
// the coordinated-omission-safe convention: a closed loop that waits for
// each reply before sending the next request can never observe the very
// stalls it induces.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynctrl/internal/controller"
	"dynctrl/internal/hdr"
)

// Arrival processes for OpenLoopSpec (mirrors benchfmt's constants; kept
// as strings so the spec serializes trivially).
const (
	ArrivalPoisson = "poisson"
	ArrivalFixed   = "fixed"
)

// OpenLoopSpec describes one open-loop run.
type OpenLoopSpec struct {
	// Rate is the scheduled arrival rate in requests per second (> 0).
	Rate float64
	// Arrival is ArrivalPoisson (default) or ArrivalFixed.
	Arrival string
	// Total is the number of scheduled arrivals (> 0).
	Total int
	// Workers bounds the number of concurrent in-flight submissions
	// (default 16). When every worker is busy past an arrival's scheduled
	// time, the wait for a free worker counts toward that request's
	// latency — that is the point.
	Workers int
	// Seed drives the Poisson gap draws: the same (Rate, Arrival, Total,
	// Seed) always yields the same schedule.
	Seed int64
}

// OpenLoopResult is the outcome of one open-loop run.
type OpenLoopResult struct {
	ConcurrentResult
	// Hist is the coordinated-omission-safe latency distribution
	// (nanoseconds from scheduled arrival to completion).
	Hist *hdr.Histogram
	// Elapsed spans the first scheduled arrival to the last completion.
	Elapsed time.Duration
	// AchievedRate is completed requests per second of Elapsed; it tracks
	// Spec.Rate while the target keeps up and collapses below it when the
	// target saturates.
	AchievedRate float64
}

// ArrivalSchedule precomputes the arrival offsets of spec, relative to
// the run's start. Deterministic in (Rate, Arrival, Total, Seed).
func ArrivalSchedule(spec OpenLoopSpec) ([]time.Duration, error) {
	if spec.Rate <= 0 || math.IsNaN(spec.Rate) || math.IsInf(spec.Rate, 0) {
		return nil, fmt.Errorf("workload: open-loop rate %v must be a positive finite number", spec.Rate)
	}
	if spec.Total <= 0 {
		return nil, fmt.Errorf("workload: open-loop total %d must be positive", spec.Total)
	}
	offs := make([]time.Duration, spec.Total)
	switch spec.Arrival {
	case ArrivalFixed:
		gap := float64(time.Second) / spec.Rate
		for i := range offs {
			offs[i] = time.Duration(float64(i) * gap)
		}
	case ArrivalPoisson, "":
		rng := rand.New(rand.NewSource(spec.Seed))
		t := 0.0
		for i := range offs {
			offs[i] = time.Duration(t)
			t += rng.ExpFloat64() / spec.Rate * float64(time.Second)
		}
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (want %s or %s)",
			spec.Arrival, ArrivalPoisson, ArrivalFixed)
	}
	return offs, nil
}

// RunOpenLoop drives reqs against sub on spec's schedule; arrival i
// submits reqs[i%len(reqs)]. sub must be safe for concurrent use. Errors
// are tallied and do not stop the run.
func RunOpenLoop(sub Submitter, reqs []controller.Request, spec OpenLoopSpec) (*OpenLoopResult, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: open-loop run needs at least one request")
	}
	offs, err := ArrivalSchedule(spec)
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = 16
	}
	if workers > spec.Total {
		workers = spec.Total
	}

	var (
		next  atomic.Int64
		mu    sync.Mutex
		res   OpenLoopResult
		wg    sync.WaitGroup
		start = time.Now()
	)
	res.Hist = hdr.New()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := hdr.New()
			var tally ConcurrentResult
			for {
				i := int(next.Add(1)) - 1
				if i >= spec.Total {
					break
				}
				scheduled := start.Add(offs[i])
				if d := time.Until(scheduled); d > 0 {
					time.Sleep(d)
				}
				tally.Submitted++
				g, err := sub.Submit(reqs[i%len(reqs)])
				// Latency from the scheduled arrival, not the actual send:
				// time spent waiting for a free worker or a free connection
				// is backlog the system caused.
				local.Record(int64(time.Since(scheduled)))
				switch {
				case err != nil:
					tally.Errors++
				case g.Outcome == controller.Granted:
					tally.Granted++
				case g.Outcome == controller.Rejected:
					tally.Rejected++
				}
			}
			mu.Lock()
			res.Hist.Merge(local)
			res.Granted += tally.Granted
			res.Rejected += tally.Rejected
			res.Errors += tally.Errors
			res.Submitted += tally.Submitted
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.AchievedRate = float64(res.Submitted) / res.Elapsed.Seconds()
	}
	return &res, nil
}
