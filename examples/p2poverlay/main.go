// Command p2poverlay simulates the paper's motivating scenario
// (Section 1.1): a peer-to-peer overlay dedicated to one topic, where
// peers join and leave gracefully under the controlled dynamic model. The
// overlay layer keeps three live services on top of the churn:
//
//   - every peer's β-approximate view of the overlay size (size estimation),
//   - short unique peer names in [1, 4n] (name assignment),
//   - a heavy-child decomposition usable for routing shortcuts.
//
// The simulation runs interest waves (growth), boredom waves (shrink) and
// relay insertions (internal joins), printing the services' state between
// phases.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dynctrl"
)

type overlay struct {
	tr    *dynctrl.Tree
	est   *dynctrl.Estimator
	names *dynctrl.Naming
	hc    *dynctrl.HeavyChild
	rng   *rand.Rand
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, _ := dynctrl.NewTree()
	est, err := dynctrl.NewEstimator(tr, dynctrl.NewRuntime(7), 2)
	if err != nil {
		return err
	}
	trNames, _ := dynctrl.NewTree()
	trHC, _ := dynctrl.NewTree()
	hc, err := dynctrl.NewHeavyChild(trHC, dynctrl.NewRuntime(9))
	if err != nil {
		return err
	}
	ov := &overlay{
		tr:    tr,
		est:   est,
		names: dynctrl.NewNaming(trNames, dynctrl.NewRuntime(8)),
		hc:    hc,
		rng:   rand.New(rand.NewSource(7)),
	}

	fmt.Println("== interest wave: 200 peers join ==")
	if err := ov.churn(200, 0); err != nil {
		return err
	}
	ov.report()

	fmt.Println("\n== relay insertions: 30 internal joins ==")
	if err := ov.insertRelays(30); err != nil {
		return err
	}
	ov.report()

	fmt.Println("\n== boredom wave: 150 peers leave ==")
	if err := ov.churn(0, 150); err != nil {
		return err
	}
	ov.report()
	return nil
}

// churn performs joins joins and leaves leaves on all three service trees.
func (ov *overlay) churn(joins, leaves int) error {
	for i := 0; i < joins; i++ {
		if err := ov.everywhere(dynctrl.AddLeaf); err != nil {
			return err
		}
	}
	for i := 0; i < leaves; i++ {
		if err := ov.everywhere(dynctrl.RemoveLeaf); err != nil {
			return err
		}
	}
	return nil
}

// everywhere applies one matching change to each service tree (the trees
// evolve independently but through identical operations).
func (ov *overlay) everywhere(kind dynctrl.ChangeKind) error {
	for _, svc := range []struct {
		tr     *dynctrl.Tree
		submit func(dynctrl.Request) (dynctrl.Grant, error)
	}{
		{ov.tr, ov.est.Submit},
		{ov.names.Tree(), ov.names.Submit},
		{ov.hc.Tree(), ov.hc.Submit},
	} {
		req, ok := pickRequest(svc.tr, kind, ov.rng)
		if !ok {
			continue
		}
		if _, err := svc.submit(req); err != nil {
			return fmt.Errorf("%v on service tree: %w", kind, err)
		}
	}
	return nil
}

func (ov *overlay) insertRelays(n int) error {
	for i := 0; i < n; i++ {
		if err := ov.everywhere(dynctrl.AddInternal); err != nil {
			return err
		}
	}
	return nil
}

func pickRequest(tr *dynctrl.Tree, kind dynctrl.ChangeKind, rng *rand.Rand) (dynctrl.Request, bool) {
	nodes := tr.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	switch kind {
	case dynctrl.AddLeaf:
		return dynctrl.Request{Node: nodes[rng.Intn(len(nodes))], Kind: kind}, true
	case dynctrl.RemoveLeaf:
		leaves := tr.Leaves()
		sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
		for tries := 0; tries < 8 && len(leaves) > 0; tries++ {
			id := leaves[rng.Intn(len(leaves))]
			if id != tr.Root() {
				return dynctrl.Request{Node: id, Kind: kind}, true
			}
		}
	case dynctrl.AddInternal:
		for tries := 0; tries < 8; tries++ {
			child := nodes[rng.Intn(len(nodes))]
			if child == tr.Root() {
				continue
			}
			parent, err := tr.Parent(child)
			if err != nil {
				continue
			}
			return dynctrl.Request{Node: parent, Kind: kind, Child: child}, true
		}
	}
	return dynctrl.Request{}, false
}

func (ov *overlay) report() {
	root := ov.tr.Root()
	est, err := ov.est.Estimate(root)
	if err != nil {
		fmt.Printf("  estimate unavailable: %v\n", err)
		return
	}
	fmt.Printf("  true size        : %d peers\n", ov.tr.Size())
	fmt.Printf("  root's estimate  : %d (β=2 guarantee: [%d, %d] covers the truth)\n",
		est, est/2, est*2)

	namesTr := ov.names.Tree()
	maxID := int64(0)
	for _, v := range namesTr.Nodes() {
		if id, err := ov.names.ID(v); err == nil && id > maxID {
			maxID = id
		}
	}
	fmt.Printf("  names            : max id %d over %d peers (≤ 4n = %d)\n",
		maxID, namesTr.Size(), 4*namesTr.Size())

	hcTr := ov.hc.Tree()
	maxLight := 0
	for _, v := range hcTr.Nodes() {
		if la, err := ov.hc.LightAncestors(v); err == nil && la > maxLight {
			maxLight = la
		}
	}
	fmt.Printf("  heavy-child      : max light ancestors %d over %d peers\n",
		maxLight, hcTr.Size())
}
