// Command majoritycommit demonstrates asynchronous majority commitment
// (Section 1.3): a population of 64 replicas must commit a decision once a
// strict majority has participated, even though replicas wake up at
// unpredictable times and some leave again after voting. The root learns
// that the threshold was crossed purely from the counting controller's
// termination signal — no replica ever reports a global count.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynctrl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const population = 64
	p, tr, err := dynctrl.NewMajority(population, 11)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(11))
	members := []dynctrl.NodeID{tr.Root()}
	wave := 0
	for !p.Decided() {
		wave++
		// A few replicas wake up...
		for i := 0; i < 5 && !p.Decided(); i++ {
			parent := members[rng.Intn(len(members))]
			id, err := p.Join(parent)
			if err != nil {
				break
			}
			members = append(members, id)
		}
		// ...and occasionally one (a leaf) departs after voting.
		if !p.Decided() && len(members) > 4 && rng.Intn(3) == 0 {
			for tries := 0; tries < 8; tries++ {
				idx := 1 + rng.Intn(len(members)-1)
				id := members[idx]
				if !tr.Contains(id) || !tr.IsLeaf(id) {
					continue
				}
				if err := p.Leave(id); err == nil {
					members = append(members[:idx], members[idx+1:]...)
				}
				break
			}
		}
		fmt.Printf("wave %2d: %2d votes cast, %2d currently connected\n",
			wave, p.Joins(), p.Awake())
	}

	fmt.Printf("\nCOMMIT: %d of %d replicas participated (majority with the root)\n",
		p.Joins()+1, population)
	fmt.Printf("messages spent: %d\n", p.Messages())
	return nil
}
