// Command quickstart shows the minimal grant/deny flow of the
// (M,W)-Controller: a small tree grows and shrinks under the controlled
// dynamic model, and the run prints what was granted, what was rejected,
// and what the whole thing cost in messages.
package main

import (
	"fmt"
	"log"

	"dynctrl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, root := dynctrl.NewTree()
	rt := dynctrl.NewRuntime(42)
	counters := dynctrl.NewCounters()

	// An (M,W) = (12, 2) controller: at most 12 events will ever be
	// permitted, and if anything is rejected, at least 10 events were
	// permitted.
	ctl := dynctrl.NewControllerWithCounters(tr, rt, 12, 2, counters)

	// Grow a small tree: every change asks for a permit first.
	var nodes []dynctrl.NodeID
	for i := 0; i < 6; i++ {
		parent := root
		if len(nodes) > 0 {
			parent = nodes[len(nodes)-1]
		}
		g, err := ctl.Submit(dynctrl.Request{Node: parent, Kind: dynctrl.AddLeaf})
		if err != nil {
			return fmt.Errorf("add leaf: %w", err)
		}
		fmt.Printf("add-leaf under %d -> %v (new node %d)\n", parent, g.Outcome, g.NewNode)
		nodes = append(nodes, g.NewNode)
	}

	// Split an edge (insert an internal node) and then undo it.
	g, err := ctl.Submit(dynctrl.Request{
		Node: root, Kind: dynctrl.AddInternal, Child: nodes[0],
	})
	if err != nil {
		return fmt.Errorf("add internal: %w", err)
	}
	fmt.Printf("add-internal above %d -> %v (new node %d)\n", nodes[0], g.Outcome, g.NewNode)

	g, err = ctl.Submit(dynctrl.Request{Node: g.NewNode, Kind: dynctrl.RemoveInternal})
	if err != nil {
		return fmt.Errorf("remove internal: %w", err)
	}
	fmt.Printf("remove-internal -> %v\n", g.Outcome)

	// Burn through the remaining permits with non-topological events;
	// the controller starts rejecting when M is exhausted.
	for i := 0; i < 8; i++ {
		g, err := ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.None})
		if err != nil {
			return fmt.Errorf("event: %w", err)
		}
		fmt.Printf("event %d -> %v\n", i, g.Outcome)
	}

	fmt.Printf("\ntree size: %d\n", tr.Size())
	fmt.Printf("counters:  %s\n", counters)
	return nil
}
