// Command ticketing demonstrates the controller on non-topological events
// (Section 2.2): a tree of ticket vendors sells a strictly bounded stock of
// M tickets. Every sale at any vendor consumes one permit; the controller
// guarantees no oversell (safety) and that, once any sale is refused, at
// least M−W tickets were actually sold (liveness) — all without the
// vendors ever synchronizing on a global counter.
//
// Vendors with hot demand are served from nearby permit packages after the
// first sale seeds their path, so the per-sale message cost drops sharply
// compared with asking the root every time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynctrl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		vendors = 150
		stock   = 500
		waste   = 25
	)
	tr, root := dynctrl.NewTree()
	rt := dynctrl.NewRuntime(2026)
	counters := dynctrl.NewCounters()
	ctl := dynctrl.NewControllerWithCounters(tr, rt, stock+vendors, waste, counters)

	// Open the vendor branches (each opening is itself a controlled
	// topological change and consumes a permit).
	rng := rand.New(rand.NewSource(3))
	nodes := []dynctrl.NodeID{root}
	for i := 0; i < vendors; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		g, err := ctl.Submit(dynctrl.Request{Node: parent, Kind: dynctrl.AddLeaf})
		if err != nil {
			return fmt.Errorf("open vendor: %w", err)
		}
		nodes = append(nodes, g.NewNode)
	}
	fmt.Printf("opened %d vendors (tree height %d)\n", vendors, tr.Height())

	// Sell until the stock runs out. 80%% of sales hit the 5 hottest
	// vendors, exercising package locality.
	hot := nodes[len(nodes)-5:]
	sold, refused := 0, 0
	for refused == 0 {
		vendor := hot[rng.Intn(len(hot))]
		if rng.Intn(100) >= 80 {
			vendor = nodes[rng.Intn(len(nodes))]
		}
		g, err := ctl.Submit(dynctrl.Request{Node: vendor, Kind: dynctrl.None})
		if err != nil {
			return fmt.Errorf("sale: %w", err)
		}
		switch g.Outcome {
		case dynctrl.Granted:
			sold++
		case dynctrl.Rejected:
			refused++
		}
	}

	fmt.Printf("tickets sold   : %d (stock for sales was %d; opening %d branches used the rest)\n",
		sold, stock, vendors)
	fmt.Printf("first refusal  : after all but ≤%d permits were used (W=%d)\n", waste, waste)
	fmt.Printf("oversell check : sold+opened = %d ≤ M = %d\n", sold+vendors, stock+vendors)
	fmt.Printf("cost           : %s\n", counters)
	return nil
}
