package dynctrl_test

import (
	"errors"
	"testing"

	"dynctrl"
)

func TestPublicQuickstartFlow(t *testing.T) {
	tr, root := dynctrl.NewTree()
	rt := dynctrl.NewRuntime(1)
	counters := dynctrl.NewCounters()
	ctl := dynctrl.NewControllerWithCounters(tr, rt, 20, 4, counters)

	g, err := ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
	if err != nil || g.Outcome != dynctrl.Granted {
		t.Fatalf("add leaf: %v %v", g.Outcome, err)
	}
	leaf := g.NewNode
	g, err = ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddInternal, Child: leaf})
	if err != nil || g.Outcome != dynctrl.Granted {
		t.Fatalf("add internal: %v %v", g.Outcome, err)
	}
	if _, err := ctl.Submit(dynctrl.Request{Node: g.NewNode, Kind: dynctrl.RemoveInternal}); err != nil {
		t.Fatalf("remove internal: %v", err)
	}
	if _, err := ctl.Submit(dynctrl.Request{Node: leaf, Kind: dynctrl.RemoveLeaf}); err != nil {
		t.Fatalf("remove leaf: %v", err)
	}
	if tr.Size() != 1 {
		t.Fatalf("size = %d, want 1", tr.Size())
	}

	granted, rejected := 4, 0
	for i := 0; i < 40; i++ {
		g, err := ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.None})
		if err != nil {
			t.Fatalf("event: %v", err)
		}
		switch g.Outcome {
		case dynctrl.Granted:
			granted++
		case dynctrl.Rejected:
			rejected++
		}
	}
	if granted > 20 {
		t.Fatalf("granted %d > M=20: safety violated", granted)
	}
	if granted < 16 {
		t.Fatalf("granted %d < M−W=16: liveness violated", granted)
	}
	if rejected == 0 {
		t.Fatal("expected rejects after exhaustion")
	}
}

func TestPublicEstimatorAndLabels(t *testing.T) {
	tr, root := dynctrl.NewTree()
	est, err := dynctrl.NewEstimator(tr, dynctrl.NewRuntime(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	var leaves []dynctrl.NodeID
	for i := 0; i < 30; i++ {
		g, err := est.RequestChange(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
		if err != nil {
			t.Fatalf("grow: %v", err)
		}
		leaves = append(leaves, g.NewNode)
	}
	e, err := est.Estimate(root)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(tr.Size())
	if e < n/2 || e > 2*n {
		t.Fatalf("estimate %d outside [n/2, 2n] for n=%d", e, n)
	}

	scheme := dynctrl.BuildAncestryLabels(tr)
	lr, err := scheme.Label(root)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := scheme.Label(leaves[0])
	if err != nil {
		t.Fatal(err)
	}
	if lr.Pre > ll.Pre || ll.Post > lr.Post {
		t.Fatal("root label must contain leaf label")
	}
}

func TestPublicNamingAndHeavyChild(t *testing.T) {
	tr, root := dynctrl.NewTree()
	nm := dynctrl.NewNaming(tr, dynctrl.NewRuntime(3))
	for i := 0; i < 20; i++ {
		if _, err := nm.RequestChange(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf}); err != nil {
			t.Fatalf("naming grow: %v", err)
		}
	}
	if err := nm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	tr2, root2 := dynctrl.NewTree()
	hc, err := dynctrl.NewHeavyChild(tr2, dynctrl.NewRuntime(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := hc.RequestChange(dynctrl.Request{Node: root2, Kind: dynctrl.AddLeaf}); err != nil {
			t.Fatalf("hc grow: %v", err)
		}
	}
	if _, err := hc.Heavy(root2); err != nil {
		t.Fatalf("root should have a heavy child: %v", err)
	}
}

func TestPublicMajority(t *testing.T) {
	p, tr, err := dynctrl.NewMajority(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for !p.Decided() {
		if _, err := p.Join(tr.Root()); err != nil {
			if errors.Is(err, dynctrl.ErrTerminated) {
				break
			}
			t.Fatalf("join: %v", err)
		}
	}
	if !p.Decided() {
		t.Fatal("majority never committed")
	}
}

func TestPublicConcurrentRuntime(t *testing.T) {
	tr, root := dynctrl.NewTree()
	rt := dynctrl.NewConcurrentRuntime(4)
	ctl := dynctrl.NewController(tr, rt, 50, 10)
	for i := 0; i < 10; i++ {
		g, err := ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
		if err != nil || g.Outcome != dynctrl.Granted {
			t.Fatalf("add leaf %d: %v %v", i, g.Outcome, err)
		}
	}
	if tr.Size() != 11 {
		t.Fatalf("size = %d, want 11", tr.Size())
	}
}

func TestPublicNCAAndDistanceLabels(t *testing.T) {
	tr, root := dynctrl.NewTree()
	ctl := dynctrl.NewController(tr, dynctrl.NewRuntime(6), 200, 20)
	// Build a small two-branch tree through the controller.
	var left, right dynctrl.NodeID
	g, err := ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
	if err != nil {
		t.Fatal(err)
	}
	left = g.NewNode
	g, err = ctl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.AddLeaf})
	if err != nil {
		t.Fatal(err)
	}
	right = g.NewNode
	g, err = ctl.Submit(dynctrl.Request{Node: left, Kind: dynctrl.AddLeaf})
	if err != nil {
		t.Fatal(err)
	}
	deep := g.NewNode

	nca := dynctrl.BuildNCALabels(tr)
	la, err := nca.Label(deep)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := nca.Label(right)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := dynctrl.QueryNCA(la, lb)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := nca.NodeAt(pre); !ok || id != root {
		t.Fatalf("NCA(deep, right) = node %d, want root %d", id, root)
	}

	dl := dynctrl.BuildDistanceLabels(tr)
	da, err := dl.Label(deep)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dl.Label(right)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dynctrl.QueryDistance(da, db)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("distance(deep, right) = %d, want 3", d)
	}
}

func TestPublicPipeline(t *testing.T) {
	tr, root := dynctrl.NewTree()
	rt := dynctrl.NewRuntime(7)
	ctl := dynctrl.NewController(tr, rt, 500, 100)
	pl := dynctrl.NewPipeline(ctl, dynctrl.WithMaxBatch(32))

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := pl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.None}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	pl.Flush()
	if got := ctl.Granted(); got != 200 {
		t.Fatalf("granted %d permits, want 200", got)
	}
	pl.Close()
	if _, err := pl.Submit(dynctrl.Request{Node: root, Kind: dynctrl.None}); err == nil {
		t.Fatal("submit after Close: want error")
	}
}
