// Command sizeest demonstrates the size-estimation protocol live: it runs
// churn over a tree and periodically prints the true size against the
// estimate every node currently holds, together with the β-approximation
// envelope.
//
// Usage:
//
//	sizeest -n0 64 -beta 2 -changes 2000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dynctrl/internal/controller"
	"dynctrl/internal/dist"
	"dynctrl/internal/estimator"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func main() {
	var (
		n0      = flag.Int("n0", 64, "initial tree size")
		beta    = flag.Float64("beta", 2, "approximation parameter β (>1)")
		changes = flag.Int("changes", 2000, "topological changes to apply")
		seed    = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()
	if err := run(*n0, *beta, *changes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(n0 int, beta float64, changes int, seed int64) error {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n0, seed); err != nil {
		return err
	}
	rt := sim.NewDeterministic(seed)
	counters := stats.NewCounters()
	est, err := estimator.New(tr, rt, beta, estimator.WithCounters(counters))
	if err != nil {
		return err
	}
	gen := workload.NewChurn(tr, workload.DefaultMix(), seed+1)
	gen.SetMinSize(maxInt(2, n0/8))

	applied := 0
	report := changes / 10
	if report < 1 {
		report = 1
	}
	fmt.Printf("%-8s %-8s %-10s %-22s %s\n", "changes", "true n", "estimate", "β-envelope", "iteration")
	for applied < changes {
		req, ok := gen.Next()
		if !ok {
			break
		}
		g, err := est.RequestChange(req)
		if err != nil {
			return err
		}
		if g.Outcome != controller.Granted || req.Kind == tree.None {
			continue
		}
		applied++
		if applied%report == 0 {
			n := tr.Size()
			e, err := est.Estimate(tr.Root())
			if err != nil {
				return err
			}
			lo := float64(e) / beta
			hi := float64(e) * beta
			mark := "ok"
			if float64(n) < lo-1e-9 || float64(n) > hi+1e-9 {
				mark = "VIOLATION"
			}
			fmt.Printf("%-8d %-8d %-10d [%.0f, %.0f] %-6s it=%d\n",
				applied, n, e, lo, hi, mark, est.Iteration())
		}
	}
	total := dist.TotalMessages(rt, counters)
	fmt.Printf("\nmessages: %d total, %.1f per change (log²n = %.0f at n=%d)\n",
		total, float64(total)/float64(applied),
		stats.Log2(float64(tr.Size()))*stats.Log2(float64(tr.Size())), tr.Size())
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
