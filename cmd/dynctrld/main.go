// Command dynctrld runs the network-facing admission-control daemon: a TCP
// server exposing the (M,W)-Controller's Submit/grant/reject semantics over
// the internal/wire protocol, backed by the batching pipeline, with an
// optional paranoid mode that re-checks every served request against the
// paper's invariants via internal/oracle.
//
// Usage:
//
//	dynctrld -addr :7700 -metrics :7701 -nodes 256 -m 1000000 -w 500000
//	dynctrld -scenario exhaustion-reject-wave -paranoid
//
// With -scenario, the initial topology and the (M, W) contract are taken
// from the internal/workload catalog entry, so a cmd/loadgen started with
// the same -scenario and -seed reconstructs the identical tree (the wire
// handshake verifies this via the topology signature).
//
// With -wal-dir the daemon is durable: every decided batch is written to
// the internal/persist write-ahead log (group commit: results are not
// released until their records are fsynced), the full state is
// checkpointed every -snapshot-every effects and on graceful shutdown,
// and a restart recovers the admission state — the (M, W) contract spans
// incarnations. `dynctrld -wal-dir DIR -verify-wal` audits an existing
// directory offline: it replays the retained history through the
// cross-incarnation oracle (no serial reused, granted ≤ M summed across
// restarts) and exits nonzero on any violation.
//
// On SIGINT/SIGTERM the daemon drains gracefully — in-flight batches are
// answered before the pipeline shuts down — then prints a final accounting
// line. The exit status is nonzero if paranoid mode recorded any oracle
// violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynctrl/internal/persist"
	"dynctrl/internal/server"
	"dynctrl/internal/sim"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7700", "wire-protocol listen address")
	metrics := flag.String("metrics", ":7701", "plain-text /metricsz listen address (empty disables)")
	scenario := flag.String("scenario", "", "take topology and (M, W) from this workload catalog scenario")
	topology := flag.String("topology", "balanced", "initial tree shape: balanced, path, or star")
	nodes := flag.Int("nodes", 256, "initial tree size")
	seed := flag.Int64("seed", 1, "topology and transport seed")
	sched := flag.String("sched", "random", "transport scheduler (one of "+strings.Join(sim.SchedulerNames(), ", ")+")")
	m := flag.Int64("m", 1_000_000, "permit bound M of the admission contract")
	w := flag.Int64("w", 500_000, "waste bound W of the admission contract")
	paranoid := flag.Bool("paranoid", false, "re-check every served request with the internal/oracle invariant checkers")
	maxBatch := flag.Int("max-batch", 0, "pipeline combining bound (0 = default)")
	readBatch := flag.Int("read-batch", 0, "per-connection read-coalescing bound in requests (0 = default)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain bound")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; enables durability and boot-time recovery")
	snapshotEvery := flag.Int64("snapshot-every", 0, "checkpoint the full state every n logged effects (0 = default, <0 disables)")
	verifyWAL := flag.Bool("verify-wal", false, "audit -wal-dir with the cross-incarnation oracle and exit")
	flag.Parse()

	cfg := server.Config{
		Addr:        *addr,
		MetricsAddr: *metrics,
		Topology:    workload.TopologySpec{Kind: *topology, Nodes: *nodes},
		Seed:        *seed,
		Scheduler:   *sched,
		M:           *m,
		W:           *w,
		Paranoid:    *paranoid,
		MaxBatch:    *maxBatch,
		ReadBatch:   *readBatch,
	}
	cfg.WALDir = *walDir
	cfg.SnapshotEvery = *snapshotEvery
	cfg.Logf = logf
	if *scenario != "" {
		sc, err := workload.ScenarioByName(*scenario)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Topology = sc.Topology
		cfg.M, cfg.W = sc.M, sc.W
	}

	if *verifyWAL {
		if cfg.WALDir == "" {
			fatalf("-verify-wal requires -wal-dir")
		}
		// Audit against the contract the history was actually written
		// under: the latest snapshot records it. An explicit -m overrides
		// (for directories that never checkpointed), but a mismatch is
		// called out rather than silently trusted.
		mExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "m" {
				mExplicit = true
			}
		})
		verifyM := cfg.M
		if st, err := persist.ReadLatestSnapshot(cfg.WALDir); err != nil {
			fatalf("read snapshot contract: %v", err)
		} else if st != nil {
			if mExplicit && st.M != cfg.M {
				logf("warning: -m %d differs from the snapshot contract M=%d; auditing against -m", cfg.M, st.M)
			} else {
				verifyM = st.M
				logf("auditing against the snapshot contract (M=%d, W=%d)", st.M, st.W)
			}
		} else if !mExplicit {
			logf("warning: no snapshot records the contract; auditing against the default -m %d", cfg.M)
		}
		verifyWALDir(cfg.WALDir, verifyM)
		return
	}

	s, err := server.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if err := s.Start(); err != nil {
		fatalf("%v", err)
	}
	logf("serving wire protocol v%d on %s (M=%d, W=%d, topology %s-%d, paranoid=%v, wal=%q, incarnation=%d)",
		wire.Version, s.Addr(), cfg.M, cfg.W, cfg.Topology.Kind, cfg.Topology.Nodes, cfg.Paranoid, *walDir, s.Incarnation())
	if s.MetricsAddr() != "" {
		logf("metrics on http://%s/metricsz", s.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	logf("received %v, draining (timeout %v)", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		logf("drain incomplete: %v", err)
	}
	ops, grants, rejects, errs := s.Accounting()
	logf("final accounting: ops=%d grants=%d rejects=%d errors=%d transport_messages=%d",
		ops, grants, rejects, errs, s.TransportMessages())
	if v := s.Violations(); len(v) != 0 {
		for _, viol := range v {
			logf("ORACLE VIOLATION: %v", viol)
		}
		os.Exit(1)
	}
}

// verifyWALDir audits the retained WAL history against the contract and
// exits: 0 when every cross-incarnation invariant holds, 1 otherwise.
func verifyWALDir(dir string, m int64) {
	sums, violations, err := persist.VerifyDir(dir, m)
	if err != nil {
		fatalf("verify %s: %v", dir, err)
	}
	var granted, rejected int64
	for _, s := range sums {
		logf("incarnation %d: granted=%d rejected=%d wal=[%d, %d]",
			s.Incarnation, s.Granted, s.Rejected, s.FirstIndex, s.LastIndex)
		granted += s.Granted
		rejected += s.Rejected
	}
	logf("history: %d incarnations, granted=%d (M=%d), rejected=%d", len(sums), granted, m, rejected)
	if len(violations) != 0 {
		for _, v := range violations {
			logf("CROSS-INCARNATION VIOLATION: %v", v)
		}
		os.Exit(1)
	}
	logf("cross-incarnation invariants hold")
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dynctrld: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	logf(format, args...)
	os.Exit(1)
}
