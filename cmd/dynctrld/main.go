// Command dynctrld runs the network-facing admission-control daemon: a TCP
// server exposing the (M,W)-Controller's Submit/grant/reject semantics over
// the internal/wire protocol, backed by the batching pipeline, with an
// optional paranoid mode that re-checks every served request against the
// paper's invariants via internal/oracle.
//
// Usage:
//
//	dynctrld -addr :7700 -metrics :7701 -nodes 256 -m 1000000 -w 500000
//	dynctrld -scenario exhaustion-reject-wave -paranoid
//
// With -scenario, the initial topology and the (M, W) contract are taken
// from the internal/workload catalog entry, so a cmd/loadgen started with
// the same -scenario and -seed reconstructs the identical tree (the wire
// handshake verifies this via the topology signature).
//
// The daemon serves one or more isolated tenant namespaces. Without
// -tenant flags it serves the single default namespace configured by the
// top-level -topology/-nodes/-seed/-sched/-m/-w flags. Each repeatable
// -tenant flag declares one namespace with its own contract and topology:
//
//	dynctrld -tenant team-a,m=500000,w=250000,nodes=128 \
//	         -tenant team-b,m=1000,w=100,topology=star,nodes=16
//
// The spec is name[,key=value,...] with keys topology, nodes, seed,
// sched, m, w; unspecified keys inherit the top-level flags. Clients name
// their namespace in the wire handshake and can never touch any other.
//
// With -wal-dir the daemon is durable: every tenant logs decided batches
// to its own subdirectory (<wal-dir>/<tenant>) of the internal/persist
// write-ahead log (group commit: results are not released until their
// records are fsynced), the full state is checkpointed every
// -snapshot-every effects and on graceful shutdown, and a restart
// recovers every tenant's admission state — the (M, W) contracts span
// incarnations. `dynctrld -wal-dir DIR -verify-wal` audits an existing
// directory offline, tenant by tenant: it replays each retained history
// through the cross-incarnation oracle (no serial reused, granted ≤ M
// summed across restarts) and exits nonzero on any violation.
//
// On SIGINT/SIGTERM the daemon drains gracefully — in-flight batches are
// answered before the pipelines shut down — then prints a final accounting
// line. The exit status is nonzero if paranoid mode recorded any oracle
// violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dynctrl/internal/obs"
	"dynctrl/internal/persist"
	"dynctrl/internal/server"
	"dynctrl/internal/sim"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// tenantFlags collects the repeatable -tenant specs.
type tenantFlags []string

func (t *tenantFlags) String() string     { return strings.Join(*t, "; ") }
func (t *tenantFlags) Set(v string) error { *t = append(*t, v); return nil }

// parseTenantSpec parses one -tenant value, name[,key=value,...], with
// unspecified keys inherited from the default (top-level-flag) config.
func parseTenantSpec(spec string, def server.TenantConfig) (server.TenantConfig, error) {
	parts := strings.Split(spec, ",")
	tc := def
	tc.Name = parts[0]
	if !wire.ValidTenant(tc.Name) {
		return tc, fmt.Errorf("invalid tenant name %q", tc.Name)
	}
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return tc, fmt.Errorf("tenant %q: malformed option %q (want key=value)", tc.Name, kv)
		}
		var err error
		switch k {
		case "topology":
			tc.Topology.Kind = v
		case "nodes":
			tc.Topology.Nodes, err = strconv.Atoi(v)
		case "seed":
			tc.Seed, err = strconv.ParseInt(v, 10, 64)
		case "sched":
			tc.Scheduler = v
		case "m":
			tc.M, err = strconv.ParseInt(v, 10, 64)
		case "w":
			tc.W, err = strconv.ParseInt(v, 10, 64)
		default:
			return tc, fmt.Errorf("tenant %q: unknown option %q", tc.Name, k)
		}
		if err != nil {
			return tc, fmt.Errorf("tenant %q: option %q: %v", tc.Name, kv, err)
		}
	}
	return tc, nil
}

func main() {
	addr := flag.String("addr", ":7700", "wire-protocol listen address")
	metrics := flag.String("metrics", ":7701", "plain-text /metricsz listen address (empty disables)")
	scenario := flag.String("scenario", "", "take topology and (M, W) from this workload catalog scenario")
	topology := flag.String("topology", "balanced", "initial tree shape: balanced, path, or star")
	nodes := flag.Int("nodes", 256, "initial tree size")
	seed := flag.Int64("seed", 1, "topology and transport seed")
	sched := flag.String("sched", "random", "transport scheduler (one of "+strings.Join(sim.SchedulerNames(), ", ")+")")
	m := flag.Int64("m", 1_000_000, "permit bound M of the admission contract")
	w := flag.Int64("w", 500_000, "waste bound W of the admission contract")
	paranoid := flag.Bool("paranoid", false, "re-check every served request with the internal/oracle invariant checkers")
	maxBatch := flag.Int("max-batch", 0, "pipeline combining bound (0 = default)")
	readBatch := flag.Int("read-batch", 0, "per-connection read-coalescing bound in requests (0 = default)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain bound")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-connection idle read deadline, re-armed before every frame (0 disables; dribbling peers are reaped after this long without a complete frame)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; enables durability and boot-time recovery")
	snapshotEvery := flag.Int64("snapshot-every", 0, "checkpoint the full state every n logged effects (0 = default, <0 disables)")
	verifyWAL := flag.Bool("verify-wal", false, "audit -wal-dir with the cross-incarnation oracle and exit")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	traceRing := flag.Int("trace-ring", 0, "per-tenant batch-trace ring size for /tracez (0 = default, <0 disables tracing and stage histograms)")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/ on the metrics listener")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "serve this tenant namespace: name[,key=value,...] with keys topology, nodes, seed, sched, m, w (repeatable; unset keys inherit the top-level flags)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("-log-level: %v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fatalf("-log-format: %v", err)
	}

	cfg := server.Config{
		Addr:        *addr,
		MetricsAddr: *metrics,
		Topology:    workload.TopologySpec{Kind: *topology, Nodes: *nodes},
		Seed:        *seed,
		Scheduler:   *sched,
		M:           *m,
		W:           *w,
		Paranoid:    *paranoid,
		MaxBatch:    *maxBatch,
		ReadBatch:   *readBatch,
		IdleTimeout: *idleTimeout,
	}
	cfg.WALDir = *walDir
	cfg.SnapshotEvery = *snapshotEvery
	cfg.Logger = logger
	cfg.TraceRing = *traceRing
	cfg.Pprof = *pprofOn
	if *scenario != "" {
		sc, err := workload.ScenarioByName(*scenario)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Topology = sc.Topology
		cfg.M, cfg.W = sc.M, sc.W
	}
	for _, spec := range tenants {
		tc, err := parseTenantSpec(spec, server.TenantConfig{
			Topology:  cfg.Topology,
			Seed:      cfg.Seed,
			Scheduler: cfg.Scheduler,
			M:         cfg.M,
			W:         cfg.W,
		})
		if err != nil {
			fatalf("-tenant: %v", err)
		}
		cfg.Tenants = append(cfg.Tenants, tc)
	}

	if *verifyWAL {
		if cfg.WALDir == "" {
			fatalf("-verify-wal requires -wal-dir")
		}
		mExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "m" {
				mExplicit = true
			}
		})
		// Every tenant logs under its own subdirectory of the WAL root;
		// audit each namespace independently.
		dirs, err := tenantWALDirs(cfg.WALDir)
		if err != nil {
			fatalf("%v", err)
		}
		failed := false
		for _, name := range dirs {
			dir := filepath.Join(cfg.WALDir, name)
			// Audit against the contract the history was actually written
			// under: the latest snapshot records it. An explicit -m
			// overrides (for directories that never checkpointed), but a
			// mismatch is called out rather than silently trusted.
			verifyM := cfg.M
			if st, err := persist.ReadLatestSnapshot(dir); err != nil {
				fatalf("tenant %q: read snapshot contract: %v", name, err)
			} else if st != nil {
				if mExplicit && st.M != cfg.M {
					logf("tenant %q: warning: -m %d differs from the snapshot contract M=%d; auditing against -m", name, cfg.M, st.M)
				} else {
					verifyM = st.M
					logf("tenant %q: auditing against the snapshot contract (M=%d, W=%d)", name, st.M, st.W)
				}
			} else if !mExplicit {
				logf("tenant %q: warning: no snapshot records the contract; auditing against the default -m %d", name, cfg.M)
			}
			if !verifyWALDir(name, dir, verifyM) {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	s, err := server.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if err := s.Start(); err != nil {
		fatalf("%v", err)
	}
	logger.Info("wire protocol", "version", wire.Version, "addr", s.Addr())
	for _, name := range s.Tenants() {
		logger.Info("tenant up", "tenant", name,
			"topology_signature", s.TenantTopologySignature(name),
			"incarnation", s.TenantIncarnation(name))
	}
	if s.MetricsAddr() != "" {
		logger.Info("metrics endpoint", "url", "http://"+s.MetricsAddr()+"/metricsz", "pprof", *pprofOn)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	logger.Info("signal received", "signal", got.String(), "drain_timeout", drain.String())

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	for _, name := range s.Tenants() {
		ops, grants, rejects, errs := s.TenantAccounting(name)
		logger.Info("tenant accounting", "tenant", name,
			"ops", ops, "grants", grants, "rejects", rejects, "errors", errs)
	}
	ops, grants, rejects, errs := s.Accounting()
	logger.Info("final accounting",
		"ops", ops, "grants", grants, "rejects", rejects, "errors", errs,
		"transport_messages", s.TransportMessages())
	if v := s.Violations(); len(v) != 0 {
		for _, viol := range v {
			logger.Error("oracle violation", "violation", viol.String())
		}
		os.Exit(1)
	}
}

// tenantWALDirs lists the tenant subdirectories of the WAL root, sorted.
// A root with loose WAL files and no subdirectories predates tenancy and
// is rejected with a pointer at the per-tenant layout.
func tenantWALDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var names []string
	loose := false
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		} else {
			loose = true
		}
	}
	if len(names) == 0 {
		if loose {
			return nil, fmt.Errorf("%s holds a pre-tenancy flat WAL; move its files into %s to audit it",
				root, filepath.Join(root, wire.DefaultTenant))
		}
		return nil, fmt.Errorf("%s holds no tenant WAL directories", root)
	}
	sort.Strings(names)
	return names, nil
}

// verifyWALDir audits one tenant's retained WAL history against the
// contract and reports whether every cross-incarnation invariant holds.
func verifyWALDir(tenant, dir string, m int64) bool {
	sums, violations, err := persist.VerifyDir(dir, m)
	if err != nil {
		fatalf("verify %s: %v", dir, err)
	}
	var granted, rejected int64
	for _, s := range sums {
		logf("tenant %q: incarnation %d: granted=%d rejected=%d wal=[%d, %d]",
			tenant, s.Incarnation, s.Granted, s.Rejected, s.FirstIndex, s.LastIndex)
		granted += s.Granted
		rejected += s.Rejected
	}
	logf("tenant %q: history: %d incarnations, granted=%d (M=%d), rejected=%d", tenant, len(sums), granted, m, rejected)
	if len(violations) != 0 {
		for _, v := range violations {
			logf("tenant %q: CROSS-INCARNATION VIOLATION: %v", tenant, v)
		}
		return false
	}
	logf("tenant %q: cross-incarnation invariants hold", tenant)
	return true
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dynctrld: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	logf(format, args...)
	os.Exit(1)
}
