// Command loadgen replays internal/workload scenarios against a running
// dynctrld daemon over the wire protocol and prints a cmd/benchjson-
// compatible JSON summary (internal/benchfmt, transport "tcp").
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7700 -scenario churn-storm -conns 8
//	loadgen -addr 127.0.0.1:7700 -duration 5s -min-requests 100000 \
//	        -metrics 127.0.0.1:7701
//	loadgen -addr 127.0.0.1:7700 -rate 20000 -arrival poisson -requests 100000
//
// With -rate the generator switches from the closed-loop chunked replay
// to an open loop: arrivals follow a precomputed Poisson or
// fixed-interval schedule regardless of how fast the daemon answers, and
// each request's latency is measured from its *scheduled* arrival — the
// coordinated-omission-safe convention — with p50/p99/p999 reported in
// the summary's latency block.
//
// The generator reconstructs the daemon's initial topology from the same
// (scenario | -topology/-nodes, -seed) parameters — the handshake's
// topology signature verifies both sides built the identical tree — and
// pre-generates an interleaving-safe concurrent trace that it drives
// through a pooled, pipelined client in chunked SubmitMany runs.
//
// With -tenant the generator binds every pooled connection to that
// namespace of a multi-tenant daemon; its topology flags then describe
// that tenant's tree, and the accounting cross-check reads the tenant's
// labeled /metricsz section.
//
// Exit status is nonzero when: any request errored; the grant total
// exceeds the server's M; fewer than -min-requests completed; or, when
// -metrics is given, the daemon's per-tenant /metricsz accounting (ops,
// grants, rejects, oracle violations) does not reconcile exactly with
// what this client observed. The accounting check assumes loadgen is the
// only traffic source for its tenant; other tenants' traffic must not
// move these numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dynctrl/internal/benchfmt"
	"dynctrl/internal/client"
	"dynctrl/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "daemon wire-protocol address")
	metrics := flag.String("metrics", "", "daemon metrics address for the accounting cross-check (empty skips it)")
	scenario := flag.String("scenario", "", "workload catalog scenario to replay (empty = plain event/add-leaf churn)")
	topology := flag.String("topology", "balanced", "topology the daemon was started with (ignored with -scenario)")
	nodes := flag.Int("nodes", 256, "initial tree size the daemon was started with (ignored with -scenario)")
	mix := flag.String("mix", "event", "churn mix when no scenario is given: "+
		"default, grow, shrink, event, or storm")
	seed := flag.Int64("seed", 1, "seed the daemon was started with")
	tenant := flag.String("tenant", "", "tenant namespace to bind to (empty = the daemon's default namespace)")
	conns := flag.Int("conns", 8, "pooled connections")
	chunk := flag.Int("chunk", 128, "requests per SubmitMany run")
	requests := flag.Int("requests", 0, "total requests to send (0 = scenario default; ignored with -duration)")
	duration := flag.Duration("duration", 0, "replay the trace in rounds until this wall-clock budget is spent")
	minRequests := flag.Int64("min-requests", 0, "fail unless at least this many requests completed")
	label := flag.String("label", "loadgen", "label naming this run")
	out := flag.String("out", "", "also write the JSON summary to this path")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/s (0 = closed-loop chunked replay)")
	arrival := flag.String("arrival", "poisson", "open-loop arrival process: poisson or fixed")
	openWorkers := flag.Int("open-workers", 0, "open-loop in-flight submission bound (0 = default)")
	flag.Parse()

	sc := workload.Scenario{
		Name:     "wire-churn",
		Topology: workload.TopologySpec{Kind: *topology, Nodes: *nodes},
		Workload: workload.WorkloadSpec{Kind: "churn", Mix: *mix},
		Requests: 1 << 14,
	}
	if *scenario != "" {
		var err error
		sc, err = workload.ScenarioByName(*scenario)
		if err != nil {
			fatalf("%v", err)
		}
	}

	tr, ct, err := workload.WireTrace(sc, *conns, *requests, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	cl, err := client.Dial(*addr, client.Options{Conns: *conns, Tenant: *tenant})
	if err != nil {
		fatalf("dial %s: %v", *addr, err)
	}
	defer cl.Close()
	if got, want := cl.TopologySignature(), workload.TopologySignature(tr); got != want {
		fatalf("topology signature mismatch: daemon %d, local %d"+
			" (start loadgen with tenant %q's -scenario/-topology/-nodes/-seed)", got, want, cl.Tenant())
	}
	logf("connected to %s tenant %q: M=%d W=%d incarnation=%d, %d conns, trace %d requests (%s)",
		*addr, cl.Tenant(), cl.M(), cl.W(), cl.Incarnation(), *conns, ct.Len(), sc.Name)

	var (
		total   workload.ConcurrentResult
		elapsed time.Duration
		rounds  int
		latency *benchfmt.Latency
	)
	if *rate > 0 {
		// Open loop: arrivals follow the schedule no matter how fast the
		// daemon answers, and latency is charged from the scheduled arrival
		// (coordinated-omission safe).
		n := *requests
		if n <= 0 && *duration > 0 {
			n = int(*rate * duration.Seconds())
		}
		if n <= 0 {
			n = ct.Len()
		}
		res, err := workload.RunOpenLoop(cl, ct.Serial(), workload.OpenLoopSpec{
			Rate:    *rate,
			Arrival: *arrival,
			Total:   n,
			Workers: *openWorkers,
			Seed:    *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		total, elapsed, rounds = res.ConcurrentResult, res.Elapsed, 1
		latency = &benchfmt.Latency{
			Unit:       "ns",
			P50:        float64(res.Hist.Quantile(0.50)),
			P99:        float64(res.Hist.Quantile(0.99)),
			P999:       float64(res.Hist.Quantile(0.999)),
			Max:        float64(res.Hist.Max()),
			Mean:       res.Hist.Mean(),
			Count:      res.Hist.Count(),
			TargetRate: *rate,
			Arrival:    *arrival,
		}
		logf("open loop: %s arrivals at %.0f req/s target, p50=%s p99=%s p999=%s",
			*arrival, *rate,
			time.Duration(res.Hist.Quantile(0.50)),
			time.Duration(res.Hist.Quantile(0.99)),
			time.Duration(res.Hist.Quantile(0.999)))
	} else {
		t0 := time.Now()
		for {
			res := workload.RunConcurrentChunked(cl, ct, *chunk)
			total.Granted += res.Granted
			total.Rejected += res.Rejected
			total.Errors += res.Errors
			total.Submitted += res.Submitted
			rounds++
			if *duration <= 0 || time.Since(t0) >= *duration {
				break
			}
		}
		elapsed = time.Since(t0)
	}

	opsPerSec := float64(total.Submitted) / elapsed.Seconds()
	// A daemon running without a WAL reports incarnation 0 in the
	// handshake; anything else is the durability engine.
	durability := benchfmt.DurabilityNone
	if cl.Incarnation() > 0 {
		durability = benchfmt.DurabilityWALSnap
	}

	// Scrape the daemon's own stage histograms so the summary carries both
	// sides of the latency story, and reconcile them against the
	// client-observed quantiles when an open-loop run measured any.
	var serverLatency *benchfmt.ServerLatency
	if *metrics != "" {
		if sl, err := scrapeServerLatency(*metrics, cl.Tenant()); err != nil {
			logf("server latency scrape skipped: %v", err)
		} else {
			serverLatency = sl
			if latency != nil {
				printReconciliation(latency, sl)
			}
		}
	}
	rep := benchfmt.Report{
		Label:     *label,
		Schema:    benchfmt.SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workload: map[string]any{
			"scenario": sc.Name,
			"tenant":   cl.Tenant(),
			"conns":    *conns,
			"chunk":    *chunk,
			"seed":     *seed,
			"rounds":   rounds,
			"m":        cl.M(),
			"w":        cl.W(),
			"granted":  total.Granted,
			"rejected": total.Rejected,
			"errors":   total.Errors,
			"elapsed":  elapsed.Seconds(),
		},
		Results: map[string]benchfmt.Measurement{
			"loadgen": {
				Scenario:      sc.Name,
				Scheduler:     "remote",
				Transport:     benchfmt.TransportTCP,
				Durability:    durability,
				NsPerOp:       float64(elapsed.Nanoseconds()) / float64(max64(total.Submitted, 1)),
				OpsPerSec:     opsPerSec,
				Latency:       latency,
				ServerLatency: serverLatency,
			},
		},
	}
	buf, err := rep.Bytes()
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(buf)
	if *out != "" {
		if _, err := rep.WriteFile(*out); err != nil {
			fatalf("%v", err)
		}
	}
	logf("%d requests in %.2fs (%.0f req/s): granted=%d rejected=%d errors=%d rejectWave=%v",
		total.Submitted, elapsed.Seconds(), opsPerSec, total.Granted, total.Rejected, total.Errors, cl.RejectWaveSeen())

	failed := false
	if total.Errors > 0 {
		logf("FAIL: %d request errors", total.Errors)
		failed = true
	}
	if total.Granted > cl.M() {
		logf("FAIL: granted %d exceeds the server's M=%d", total.Granted, cl.M())
		failed = true
	}
	if *minRequests > 0 && total.Submitted < *minRequests {
		logf("FAIL: completed %d requests, need at least %d", total.Submitted, *minRequests)
		failed = true
	}
	if *metrics != "" && total.Errors == 0 {
		// With zero request errors every submitted request was answered on
		// the wire, so the daemon's per-tenant tallies must match ours
		// exactly (assuming loadgen is the only traffic source for its
		// tenant — other tenants' traffic must not move these numbers).
		if err := reconcile(*metrics, cl.Tenant(), total); err != nil {
			logf("FAIL: accounting mismatch: %v", err)
			failed = true
		} else {
			logf("tenant %q accounting reconciled against %s", cl.Tenant(), *metrics)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// reconcile fetches /metricsz and requires the daemon's wire-level
// accounting for this client's tenant to match the client's observations
// exactly.
func reconcile(addr, tenant string, total workload.ConcurrentResult) error {
	resp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fields, err := parseMetrics(string(body))
	if err != nil {
		return err
	}
	l := fmt.Sprintf("{tenant=%q}", tenant)
	checks := []struct {
		name string
		want int64
	}{
		{"dynctrld_tenant_ops_total" + l, total.Submitted},
		{"dynctrld_tenant_grants_total" + l, total.Granted},
		{"dynctrld_tenant_rejects_total" + l, total.Rejected},
		{"dynctrld_tenant_errors_total" + l, 0},
		{"dynctrld_tenant_oracle_violations" + l, 0},
	}
	for _, c := range checks {
		got, ok := fields[c.name]
		if !ok {
			return fmt.Errorf("metricsz lacks %s", c.name)
		}
		if got != c.want {
			return fmt.Errorf("%s = %d, client observed %d", c.name, got, c.want)
		}
	}
	return nil
}

// parseMetrics reads the plain-text "name value" lines of /metricsz,
// keeping the integer-valued fields.
func parseMetrics(text string) (map[string]int64, error) {
	fields := map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		name, value, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(value, 10, 64); err == nil {
			fields[name] = v
		}
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("no parsable metrics lines")
	}
	return fields, nil
}

// scrapeServerLatency fetches /metricsz and collects the daemon's
// per-stage latency summary (dynctrld_tenant_stage_seconds) for this
// client's tenant, converting seconds to the nanosecond unit the rest of
// the report uses. A daemon running with tracing disabled (-trace-ring
// -1) exports no stage samples; that is reported as an error so the
// caller can skip the block rather than emit an empty one.
func scrapeServerLatency(addr, tenant string) (*benchfmt.ServerLatency, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	stages := map[string]benchfmt.StageLatency{}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "dynctrld_tenant_stage_seconds")
		if !ok {
			continue
		}
		suffix := ""
		if r, ok := strings.CutPrefix(rest, "_sum"); ok {
			suffix, rest = "sum", r
		} else if r, ok := strings.CutPrefix(rest, "_count"); ok {
			suffix, rest = "count", r
		}
		if !strings.HasPrefix(rest, "{") {
			continue
		}
		end := strings.Index(rest, "} ")
		if end < 0 {
			continue
		}
		labels := parseLabels(rest[1:end])
		if labels["tenant"] != tenant || labels["stage"] == "" {
			continue
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest[end+2:]), 64)
		if err != nil {
			continue
		}
		sl := stages[labels["stage"]]
		switch suffix {
		case "count":
			sl.Count = int64(val)
		case "sum":
			// The summary's _sum is not part of the report schema.
		default:
			ns := val * 1e9
			switch labels["quantile"] {
			case "p50":
				sl.P50 = ns
			case "p99":
				sl.P99 = ns
			case "p999":
				sl.P999 = ns
			}
		}
		stages[labels["stage"]] = sl
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("no dynctrld_tenant_stage_seconds samples for tenant %q"+
			" (daemon running with -trace-ring -1?)", tenant)
	}
	return &benchfmt.ServerLatency{Unit: "ns", Stages: stages}, nil
}

// parseLabels splits a Prometheus label body (`k1="v1",k2="v2"`) into a
// map. Values containing escaped quotes or commas are beyond what tenant
// and stage names can contain, so a plain split suffices.
func parseLabels(s string) map[string]string {
	out := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		out[k] = strings.Trim(v, `"`)
	}
	return out
}

// printReconciliation prints the client-vs-server latency table for an
// open-loop run: the daemon's per-stage quantiles next to the
// client-observed ones. The difference between the client p99 and the
// server total p99 is time the server never saw — network transit plus
// client-side queueing behind the in-flight bound.
func printReconciliation(lat *benchfmt.Latency, srv *benchfmt.ServerLatency) {
	logf("client-vs-server latency reconciliation:")
	logf("  %-8s %12s %12s %10s", "stage", "p50", "p99", "count")
	var stageSum float64
	for _, st := range []string{"decode", "queue", "execute", "wal", "write", "total"} {
		sl, ok := srv.Stages[st]
		if !ok {
			continue
		}
		if st != "total" {
			stageSum += sl.P99
		}
		logf("  %-8s %12s %12s %10d",
			st, time.Duration(int64(sl.P50)), time.Duration(int64(sl.P99)), sl.Count)
	}
	logf("  %-8s %12s %12s %10d", "client",
		time.Duration(int64(lat.P50)), time.Duration(int64(lat.P99)), lat.Count)
	gap := lat.P99 - srv.Stages["total"].P99
	if gap < 0 {
		gap = 0
	}
	logf("  stage p99 sum %s, server total p99 %s, network/client gap %s",
		time.Duration(int64(stageSum)),
		time.Duration(int64(srv.Stages["total"].P99)),
		time.Duration(int64(gap)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	logf(format, args...)
	os.Exit(1)
}
