// Command scenario sweeps the adversarial scenario catalog across the
// transport scheduler catalog with the oracle invariant checkers always on,
// and emits the result matrix as JSON.
//
// Usage:
//
//	scenario -list
//	scenario                                  # full catalog × all schedulers
//	scenario -run 'churn|hotspot' -sched lifo,window -seed 7
//	scenario -long -out SCENARIOS.json        # nightly-sized sweep
//
// Every run is reproducible from the printed (scenario, scheduler, seed)
// triple. The process exits 1 if any run reports an oracle violation or a
// request error, so the command doubles as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list catalog scenarios and schedulers, then exit")
	run := flag.String("run", "", "regexp selecting scenarios by name (default: all)")
	sched := flag.String("sched", "all", "comma-separated scheduler names, or \"all\" (includes the concurrent runtime)")
	seed := flag.Int64("seed", 1, "seed; every run is reproducible from (scenario, scheduler, seed)")
	long := flag.Bool("long", false, "use each scenario's long request count (nightly sweep size)")
	out := flag.String("out", "", "also write the JSON report to this path")
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, sc := range workload.Catalog() {
			fmt.Printf("  %-24s %s\n", sc.Name, sc.Notes)
		}
		fmt.Printf("schedulers: %s\n", strings.Join(sim.RuntimeNames(), ", "))
		return
	}

	scenarios := workload.Catalog()
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fatalf("bad -run regexp: %v", err)
		}
		var keep []workload.Scenario
		for _, sc := range scenarios {
			if re.MatchString(sc.Name) {
				keep = append(keep, sc)
			}
		}
		scenarios = keep
	}
	if len(scenarios) == 0 {
		fatalf("no scenarios match -run %q", *run)
	}

	schedulers := sim.RuntimeNames()
	if *sched != "all" {
		schedulers = strings.Split(*sched, ",")
	}

	results, err := workload.Sweep(scenarios, schedulers, *seed, *long)
	if err != nil {
		fatalf("%v", err)
	}

	report := struct {
		Schema  int                       `json:"schema"`
		Seed    int64                     `json:"seed"`
		Long    bool                      `json:"long"`
		Results []workload.ScenarioResult `json:"results"`
	}{Schema: 1, Seed: *seed, Long: *long, Results: results}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
	}

	tbl := stats.NewTable(fmt.Sprintf("scenario sweep (seed %d)", *seed),
		"scenario", "scheduler", "requests", "granted", "rejected", "crashes", "messages", "violations")
	bad := 0
	for _, res := range results {
		tbl.AddRow(res.Scenario, res.Scheduler, res.Requests, res.Granted, res.Rejected,
			res.Crashes, res.TransportMessages+res.ControlMessages, len(res.Violations))
		if len(res.Violations) > 0 || res.Errors > 0 {
			bad++
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "VIOLATION %s × %s seed=%d: %s\n",
					res.Scenario, res.Scheduler, res.Seed, v)
			}
			if res.Errors > 0 {
				fmt.Fprintf(os.Stderr, "ERRORS %s × %s seed=%d: %d request errors\n",
					res.Scenario, res.Scheduler, res.Seed, res.Errors)
			}
		}
	}
	fmt.Fprint(os.Stderr, tbl.String())
	if bad > 0 {
		fatalf("%d of %d runs reported violations or errors", bad, len(results))
	}
	fmt.Fprintf(os.Stderr, "scenario: %d runs clean (reproduce any run with -seed %d)\n", len(results), *seed)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scenario: "+format+"\n", args...)
	os.Exit(1)
}
