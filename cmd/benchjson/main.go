// Command benchjson runs the pinned E-series benchmark workload and emits a
// machine-readable BENCH_<label>.json (schema: internal/benchfmt). CI's
// perf-smoke job runs it on every push, uploads the JSON as an artifact,
// and compares the measured throughput against the committed
// BENCH_baseline.json, failing on a >2x regression (see -compare /
// -max-regress).
//
// Usage:
//
//	benchjson -label baseline -out BENCH_baseline.json
//	benchjson -label pr -out BENCH_pr.json -compare BENCH_baseline.json
//
// The pinned workload is the metered-traffic experiment (E13's event-only
// mix) over a balanced 256-node tree: 8 concurrent clients submit 2048
// events each (seed 42) against the distributed unknown-U controller with
// M = 4× the trace size and W = M/2. Four paths are measured on identical
// traces: the serial Submit loop (inproc), the batched submission pipeline
// in chunks of 128 requests per client (inproc), the same chunked
// concurrent run driven through cmd/dynctrld's server stack over loopback
// TCP via the pooled wire client (tcp), and a durability pair at
// production fan-in — the same total trace spread over 64 connections,
// once without a WAL (tcp-fanin) and once with the internal/persist
// durability engine on, WAL group commit plus periodic snapshots
// (tcp-wal, durability "wal+snap"). Group commit amortizes the fsync
// across concurrent connections, so the durability comparison is pinned
// at the fan-in a production daemon actually serves; the report's
// wal_overhead field is tcp-fanin over tcp-wal throughput. A fifth
// measurement (tcp-openloop) schedules Poisson arrivals at a pinned rate
// against the loopback daemon and reports the coordinated-omission-safe
// p50/p99/p999 service latency in the measurement's latency block, plus
// the daemon's own per-stage quantiles (internal/obs batch traces) in the
// server_latency block. A sixth (tcp-fanin-noobs) repeats tcp-fanin with
// tracing disabled; the report's obs_overhead field is the untraced over
// traced throughput ratio and -max-obs-overhead gates it (tracing must
// stay cheap). A separate pinned churn run (E3's fully-dynamic mix)
// reports the amortized message complexity per topological change.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dynctrl/internal/benchfmt"
	"dynctrl/internal/client"
	"dynctrl/internal/dist"
	"dynctrl/internal/obs"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/server"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/wire"
	"dynctrl/internal/workload"
)

// Pinned workload parameters. Changing any of these invalidates committed
// baselines; bump benchfmt.SchemaVersion and refresh BENCH_baseline.json
// when you do.
const (
	serialScenario        = "E13-metered-events-serial"
	pipelineScenario      = "E13-metered-events-pipeline"
	tcpScenario           = "E13-metered-events-wire"
	tcpFaninScenario      = "E13-metered-events-wire-fanin"
	tcpFaninNoobsScenario = "E13-metered-events-wire-fanin-noobs"
	tcpWalScenario        = "E13-metered-events-wire-wal"
	openLoopScenario      = "E13-metered-events-wire-openloop"
	churnScenario         = "E3-fully-dynamic-churn"

	// The open-loop run schedules openLoopTotal Poisson arrivals at
	// openLoopRate req/s against the loopback daemon and reports the
	// coordinated-omission-safe latency distribution (measured from each
	// request's *scheduled* arrival). The rate is pinned well below the
	// closed-loop tcp throughput so the baseline captures service latency,
	// not saturation collapse.
	openLoopRate    = 20_000.0
	openLoopTotal   = 20_000
	openLoopWorkers = 64

	// walClients is the connection fan-in of the durability pair; group
	// commit amortizes one fsync across every connection that decided a
	// batch inside the commit window.
	walClients = 64
	// walStreams is the number of concurrent client streams of the
	// durability pair, spread over the walClients connections: two
	// outstanding chunks per connection, so the next wave's controller
	// work overlaps the previous wave's fsync instead of idling behind it.
	walStreams = 128
	// walRounds replays the pinned trace this many times per measured run
	// of the durability pair: enough group-commit waves that one slow
	// fsync does not dominate the measurement.
	walRounds = 4
	// walSnapshotEvery pins the checkpoint cadence of the tcp-wal run to
	// the daemon's production default (server.DefaultSnapshotEvery): the
	// engine runs with snapshots armed, recovery-tested at boot and
	// checkpointed at shutdown, and a 64k-request measured window
	// contains as many periodic checkpoints as production would serve in
	// it (none).
	walSnapshotEvery = 0

	treeNodes = 256
	clients   = 8
	perClient = 2048
	chunk     = 128
	traceSeed = 42
	ctlSeed   = 3

	churnNodes = 128
	churnSeed  = 9
)

func main() {
	label := flag.String("label", "local", "label naming this run (BENCH_<label>.json)")
	out := flag.String("out", "", "output path (default BENCH_<label>.json)")
	compare := flag.String("compare", "", "baseline JSON to compare against; exit 1 on regression")
	maxRegress := flag.Float64("max-regress", 2.0, "maximum tolerated ops/sec regression factor vs the baseline")
	maxObsOverhead := flag.Float64("max-obs-overhead", 1.03, "maximum tolerated tracing overhead ratio (tcp-fanin-noobs over tcp-fanin throughput)")
	runs := flag.Int("runs", 5, "measurement repetitions (best run is reported)")
	sched := flag.String("sched", "random", "transport scheduler for the pinned runs (one of "+strings.Join(sim.SchedulerNames(), ", ")+")")
	flag.Parse()
	if _, err := sim.NewScheduler(*sched, ctlSeed); err != nil {
		fatalf("%v", err)
	}

	rep := benchfmt.Report{
		Label:     *label,
		Schema:    benchfmt.SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workload: map[string]any{
			"experiment":     "E13-metered-pipeline",
			"tree":           fmt.Sprintf("balanced-%d", treeNodes),
			"clients":        clients,
			"per_client":     perClient,
			"chunk":          chunk,
			"mix":            "event-only",
			"seed":           traceSeed,
			"scheduler":      *sched,
			"churn_scenario": churnScenario,
		},
		Results: map[string]benchfmt.Measurement{},
	}

	total := clients * perClient
	m := int64(total) * 4
	w := m / 2
	rep.Workload["m"] = m
	rep.Workload["w"] = w

	serialM := measure(*runs, total, func() (func(), func() int64, func()) {
		tr := buildBenchTree()
		ctl := dist.NewDynamic(tr, benchRuntime(*sched), m, w, false, nil)
		ct := buildBenchTrace(tr)
		reqs := ct.Serial()
		rt := ctlRuntime(ctl)
		return func() {
			for _, req := range reqs {
				if _, err := ctl.Submit(req); err != nil {
					fatalf("serial submit: %v", err)
				}
			}
		}, rt, nil
	})
	serialM.Scenario, serialM.Scheduler, serialM.Transport = serialScenario, *sched, benchfmt.TransportInproc
	serialM.Durability = benchfmt.DurabilityNone
	rep.Results["serial"] = serialM

	pipeM := measure(*runs, total, func() (func(), func() int64, func()) {
		tr := buildBenchTree()
		ctl := dist.NewDynamic(tr, benchRuntime(*sched), m, w, false, nil)
		pl := pipeline.New(ctl)
		ct := buildBenchTrace(tr)
		rt := ctlRuntime(ctl)
		return func() {
			res := workload.RunConcurrentChunked(pl, ct, chunk)
			if res.Errors > 0 {
				fatalf("pipeline run: %d request errors", res.Errors)
			}
		}, rt, nil
	})
	pipeM.Scenario, pipeM.Scheduler, pipeM.Transport = pipelineScenario, *sched, benchfmt.TransportInproc
	pipeM.Durability = benchfmt.DurabilityNone
	rep.Results["pipeline"] = pipeM

	tcpM := measure(*runs, total, func() (func(), func() int64, func()) {
		return setupTCP(*sched, m, w, clients, clients, 1, "", 0)
	})
	tcpM.Scenario, tcpM.Scheduler, tcpM.Transport = tcpScenario, *sched, benchfmt.TransportTCP
	tcpM.Durability = benchfmt.DurabilityNone
	rep.Results["tcp"] = tcpM

	// The durability pair replays the trace walRounds times per measured
	// run, so its permit budget scales accordingly.
	walM := m * walRounds
	// The fan-in scenario and its tracing-overhead companion — the
	// identical run with batch tracing and stage histograms disabled
	// (-trace-ring -1) — are measured as an interleaved pair so machine
	// drift cancels out of the obs_overhead ratio gated below.
	tcpFaninM, tcpFaninNoobsM := measurePair(*runs, total*walRounds,
		func() (func(), func() int64, func()) {
			return setupTCP(*sched, walM, walM/2, walClients, walStreams, walRounds, "", 0)
		},
		func() (func(), func() int64, func()) {
			return setupTCP(*sched, walM, walM/2, walClients, walStreams, walRounds, "", -1)
		})
	tcpFaninM.Scenario, tcpFaninM.Scheduler, tcpFaninM.Transport = tcpFaninScenario, *sched, benchfmt.TransportTCP
	tcpFaninM.Durability = benchfmt.DurabilityNone
	rep.Results["tcp-fanin"] = tcpFaninM
	tcpFaninNoobsM.Scenario, tcpFaninNoobsM.Scheduler, tcpFaninNoobsM.Transport = tcpFaninNoobsScenario, *sched, benchfmt.TransportTCP
	tcpFaninNoobsM.Durability = benchfmt.DurabilityNone
	rep.Results["tcp-fanin-noobs"] = tcpFaninNoobsM

	tcpWalM := measure(*runs, total*walRounds, func() (func(), func() int64, func()) {
		walDir, err := os.MkdirTemp("", "benchjson-wal-")
		if err != nil {
			fatalf("wal dir: %v", err)
		}
		run, msgs, cleanup := setupTCP(*sched, walM, walM/2, walClients, walStreams, walRounds, walDir, 0)
		return run, msgs, func() {
			cleanup()
			os.RemoveAll(walDir)
		}
	})
	tcpWalM.Scenario, tcpWalM.Scheduler, tcpWalM.Transport = tcpWalScenario, *sched, benchfmt.TransportTCP
	tcpWalM.Durability = benchfmt.DurabilityWALSnap
	rep.Results["tcp-wal"] = tcpWalM

	openM := measureOpenLoop(*runs, *sched)
	rep.Results["tcp-openloop"] = openM
	rep.Workload["open_rate"] = openLoopRate
	rep.Workload["open_total"] = openLoopTotal

	rep.PipelineSpeedup = rep.Results["pipeline"].OpsPerSec / rep.Results["serial"].OpsPerSec
	rep.MessagesPerChange = measureChurnMessages(*sched)
	rep.Workload["wal_overhead"] = rep.Results["tcp-fanin"].OpsPerSec / rep.Results["tcp-wal"].OpsPerSec

	// Observability tax: how much throughput the untraced run gains over
	// the traced one on the identical workload. The instrumentation is
	// designed to be invisible at this fan-in; fail loudly if it is not.
	obsOverhead := rep.Results["tcp-fanin-noobs"].OpsPerSec / rep.Results["tcp-fanin"].OpsPerSec
	rep.Workload["obs_overhead"] = obsOverhead
	fmt.Fprintf(os.Stderr, "benchjson: tracing overhead %.3fx (untraced %.0f ops/s, traced %.0f ops/s)\n",
		obsOverhead, rep.Results["tcp-fanin-noobs"].OpsPerSec, rep.Results["tcp-fanin"].OpsPerSec)
	if obsOverhead > *maxObsOverhead {
		fatalf("tracing overhead %.3fx exceeds the %.2fx budget:"+
			" tcp-fanin %.0f ops/s traced vs %.0f ops/s untraced",
			obsOverhead, *maxObsOverhead,
			rep.Results["tcp-fanin"].OpsPerSec, rep.Results["tcp-fanin-noobs"].OpsPerSec)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *label)
	}
	buf, err := rep.WriteFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	os.Stdout.Write(buf)

	if *compare != "" {
		base, err := benchfmt.ReadFile(*compare)
		if err != nil {
			fatalf("%v", err)
		}
		if err := benchfmt.CompareBaseline(base, rep, *maxRegress, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: within %.1fx of %s\n", *maxRegress, *compare)
	}
}

// setupTCP builds one pinned loopback-TCP measurement: a dynctrld server
// stack (durable over walDir when non-empty), a pool of conns
// connections, and the pinned total trace re-partitioned across streams
// concurrent client streams (same constructor, same seed) and replayed
// rounds times per measured run. traceRing is the server's batch-trace
// ring size (0 = production default, negative disables tracing).
func setupTCP(sched string, m, w int64, conns, streams, rounds int, walDir string, traceRing int) (func(), func() int64, func()) {
	srv, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Topology:      workload.TopologySpec{Kind: "balanced", Nodes: treeNodes},
		Seed:          1,
		Scheduler:     sched,
		M:             m,
		W:             w,
		WALDir:        walDir,
		SnapshotEvery: walSnapshotEvery,
		TraceRing:     traceRing,
	})
	if err != nil {
		fatalf("tcp server: %v", err)
	}
	if err := srv.Start(); err != nil {
		fatalf("tcp server start: %v", err)
	}
	cl, err := client.Dial(srv.Addr(), client.Options{Conns: conns})
	if err != nil {
		fatalf("tcp dial: %v", err)
	}
	tr := buildBenchTree()
	ct, err := workload.NewConcurrentTrace(tr, streams, clients*perClient/streams, workload.EventOnlyConcurrentMix(), traceSeed)
	if err != nil {
		fatalf("build trace: %v", err)
	}
	cleanup := func() {
		cl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}
	return func() {
		for i := 0; i < rounds; i++ {
			res := workload.RunConcurrentChunked(cl, ct, chunk)
			if res.Errors > 0 {
				fatalf("tcp run: %d request errors", res.Errors)
			}
		}
	}, srv.TransportMessages, cleanup
}

// measureOpenLoop runs the pinned open-loop experiment `runs` times
// against a fresh loopback daemon each time and reports the run with the
// best p99 (the least-noisy latency estimate, the open-loop analogue of
// taking the fastest closed-loop run).
func measureOpenLoop(runs int, sched string) benchfmt.Measurement {
	if runs < 1 {
		runs = 1
	}
	m := int64(openLoopTotal) * 4
	var best benchfmt.Measurement
	for i := 0; i < runs; i++ {
		srv, err := server.New(server.Config{
			Addr:      "127.0.0.1:0",
			Topology:  workload.TopologySpec{Kind: "balanced", Nodes: treeNodes},
			Seed:      1,
			Scheduler: sched,
			M:         m,
			W:         m / 2,
		})
		if err != nil {
			fatalf("open-loop server: %v", err)
		}
		if err := srv.Start(); err != nil {
			fatalf("open-loop server start: %v", err)
		}
		cl, err := client.Dial(srv.Addr(), client.Options{Conns: clients})
		if err != nil {
			fatalf("open-loop dial: %v", err)
		}
		ct := buildBenchTrace(buildBenchTree())
		res, err := workload.RunOpenLoop(cl, ct.Serial(), workload.OpenLoopSpec{
			Rate:    openLoopRate,
			Arrival: workload.ArrivalPoisson,
			Total:   openLoopTotal,
			Workers: openLoopWorkers,
			Seed:    traceSeed,
		})
		if err != nil {
			fatalf("open-loop run: %v", err)
		}
		if res.Errors > 0 {
			fatalf("open-loop run: %d request errors", res.Errors)
		}
		cl.Close()
		// Read the daemon's stage histograms before Shutdown tears the
		// tenant stacks down.
		srvLat := serverLatency(srv.TenantStageStats(wire.DefaultTenant))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx) //nolint:errcheck
		cancel()

		cur := benchfmt.Measurement{
			Scenario:   openLoopScenario,
			Scheduler:  sched,
			Transport:  benchfmt.TransportTCP,
			Durability: benchfmt.DurabilityNone,
			NsPerOp:    float64(res.Elapsed.Nanoseconds()) / float64(openLoopTotal),
			OpsPerSec:  res.AchievedRate,
			Latency: &benchfmt.Latency{
				Unit:       "ns",
				P50:        float64(res.Hist.Quantile(0.50)),
				P99:        float64(res.Hist.Quantile(0.99)),
				P999:       float64(res.Hist.Quantile(0.999)),
				Max:        float64(res.Hist.Max()),
				Mean:       res.Hist.Mean(),
				Count:      res.Hist.Count(),
				TargetRate: openLoopRate,
				Arrival:    benchfmt.ArrivalPoisson,
			},
			ServerLatency: srvLat,
		}
		if i == 0 || cur.Latency.P99 < best.Latency.P99 {
			best = cur
		}
	}
	if best.ServerLatency == nil {
		fatalf("open-loop run recorded no server-side stage samples (tracing disabled?)")
	}
	// Sanity-check the reconciliation invariant on the reported run: the
	// client-observed p99 is charged from the scheduled arrival, so it
	// bounds everything the server measured — the non-total stage p99s
	// must sum to no more than it.
	var stageSum float64
	for name, sl := range best.ServerLatency.Stages {
		if name != "total" {
			stageSum += sl.P99
		}
	}
	if stageSum > best.Latency.P99 {
		fatalf("server stage p99s sum to %.0f ns, exceeding the client-observed p99 of %.0f ns:"+
			" stage attribution is double-counting", stageSum, best.Latency.P99)
	}
	return best
}

// serverLatency converts the server's per-stage histogram snapshot into
// the report's server_latency block (nil when no batch was traced).
func serverLatency(stats []obs.StageStats) *benchfmt.ServerLatency {
	stages := map[string]benchfmt.StageLatency{}
	for _, ss := range stats {
		if ss.Count == 0 {
			continue
		}
		stages[ss.Stage] = benchfmt.StageLatency{
			P50:   float64(ss.P50),
			P99:   float64(ss.P99),
			P999:  float64(ss.P999),
			Count: ss.Count,
		}
	}
	if len(stages) == 0 {
		return nil
	}
	return &benchfmt.ServerLatency{Unit: "ns", Stages: stages}
}

// benchRuntime builds the pinned transport; the scheduler name was
// validated at flag-parse time.
func benchRuntime(sched string) sim.Runtime {
	rt, err := sim.NewRuntime(sched, ctlSeed)
	if err != nil {
		fatalf("%v", err)
	}
	return rt
}

func buildBenchTree() *tree.Tree {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, treeNodes, 1); err != nil {
		fatalf("build tree: %v", err)
	}
	return tr
}

func buildBenchTrace(tr *tree.Tree) *workload.ConcurrentTrace {
	ct, err := workload.NewConcurrentTrace(tr, clients, perClient, workload.EventOnlyConcurrentMix(), traceSeed)
	if err != nil {
		fatalf("build trace: %v", err)
	}
	return ct
}

// ctlRuntime returns a sampler of the controller's delivered-message count.
func ctlRuntime(ctl *dist.Dynamic) func() int64 {
	return func() int64 { return dist.TotalMessages(ctl.Runtime(), ctl.Counters()) }
}

// measure runs setup+run `runs` times and reports the best run (standard
// benchmarking practice: the minimum is the least-noisy estimate) with
// allocation and message counts from that run. setup may return a cleanup
// (run after the measurement; e.g. a server teardown) and a nil message
// sampler.
func measure(runs, requests int, setup func() (func(), func() int64, func())) benchfmt.Measurement {
	if runs < 1 {
		runs = 1
	}
	best := benchfmt.Measurement{NsPerOp: float64(0)}
	for i := 0; i < runs; i++ {
		cur := measureOnce(requests, setup)
		if i == 0 || cur.NsPerOp < best.NsPerOp {
			best = cur
		}
	}
	return best
}

// measurePair measures two setups interleaved run-for-run (a, b, a, b,
// ...) instead of as two sequential best-of phases. Slow machine drift —
// thermal throttling, page-cache state, background load — then hits both
// sides of every round equally and cancels out of their throughput
// ratio, which is the only reason a pair is measured together at all.
func measurePair(runs, requests int, a, b func() (func(), func() int64, func())) (benchfmt.Measurement, benchfmt.Measurement) {
	if runs < 1 {
		runs = 1
	}
	var bestA, bestB benchfmt.Measurement
	for i := 0; i < runs; i++ {
		curA := measureOnce(requests, a)
		curB := measureOnce(requests, b)
		if i == 0 || curA.NsPerOp < bestA.NsPerOp {
			bestA = curA
		}
		if i == 0 || curB.NsPerOp < bestB.NsPerOp {
			bestB = curB
		}
	}
	return bestA, bestB
}

// measureOnce runs one fresh setup/run/cleanup cycle and returns its
// measurement.
func measureOnce(requests int, setup func() (func(), func() int64, func())) benchfmt.Measurement {
	run, msgs, cleanup := setup()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var m0 int64
	if msgs != nil {
		m0 = msgs()
	}
	t0 := time.Now()
	run()
	dt := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	cur := benchfmt.Measurement{
		NsPerOp:     float64(dt.Nanoseconds()) / float64(requests),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(requests),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(requests),
	}
	if msgs != nil {
		cur.MsgsPerOp = float64(msgs()-m0) / float64(requests)
	}
	cur.OpsPerSec = 1e9 / cur.NsPerOp
	if cleanup != nil {
		cleanup()
	}
	return cur
}

// measureChurnMessages replays the pinned fully-dynamic churn (E3's mix)
// through a fresh distributed controller and returns the amortized message
// complexity per topological change.
func measureChurnMessages(sched string) float64 {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, churnNodes, 1); err != nil {
		fatalf("churn tree: %v", err)
	}
	counters := stats.NewCounters()
	rt, err := sim.NewRuntime(sched, churnSeed)
	if err != nil {
		fatalf("%v", err)
	}
	m := int64(16 * churnNodes)
	ctl := dist.NewDynamic(tr, rt, m, 0, false, counters)
	gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 30, RemoveLeaf: 25, AddInternal: 20, RemoveInternal: 25}, churnSeed)
	gen.SetMinSize(churnNodes / 4)
	for i := 0; i < 4*churnNodes; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := ctl.Submit(req); err != nil {
			fatalf("churn submit: %v", err)
		}
	}
	changes := counters.Get(stats.CounterTopoChanges)
	if changes == 0 {
		return 0
	}
	return float64(dist.TotalMessages(rt, counters)) / float64(changes)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
