// Command benchjson runs the pinned E-series benchmark workload and emits a
// machine-readable BENCH_<label>.json. CI's perf-smoke job runs it on every
// push, uploads the JSON as an artifact, and compares the measured
// throughput against the committed BENCH_baseline.json, failing on a >2x
// regression (see -compare / -max-regress).
//
// Usage:
//
//	benchjson -label baseline -out BENCH_baseline.json
//	benchjson -label pr -out BENCH_pr.json -compare BENCH_baseline.json
//
// The pinned workload is the metered-traffic experiment (E13's event-only
// mix) over a balanced 256-node tree: 8 concurrent clients submit 2048
// events each (seed 42) against the distributed unknown-U controller with
// M = 4× the trace size and W = M/2. Two paths are measured on identical
// traces: the serial Submit loop and the batched submission pipeline
// (chunks of 128 requests per client). A separate pinned churn run (E3's
// fully-dynamic mix) reports the amortized message complexity per
// topological change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dynctrl/internal/dist"
	"dynctrl/internal/pipeline"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

// Pinned workload parameters. Changing any of these invalidates committed
// baselines; bump Schema and refresh BENCH_baseline.json when you do.
// Schema 2 added the scenario/scheduler labels on every measurement so
// regression comparisons stay apples-to-apples across adversarial
// schedules.
const (
	schemaVersion = 2

	serialScenario   = "E13-metered-events-serial"
	pipelineScenario = "E13-metered-events-pipeline"
	churnScenario    = "E3-fully-dynamic-churn"

	treeNodes = 256
	clients   = 8
	perClient = 2048
	chunk     = 128
	traceSeed = 42
	ctlSeed   = 3

	churnNodes = 128
	churnSeed  = 9
)

// Measurement is one measured submission path. Scenario and Scheduler name
// the pinned workload and the transport schedule it ran under, so a
// baseline comparison can refuse to compare measurements of different
// runs.
type Measurement struct {
	Scenario    string  `json:"scenario"`
	Scheduler   string  `json:"scheduler"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	MsgsPerOp   float64 `json:"messages_per_op"`
}

// Report is the BENCH_<label>.json document.
type Report struct {
	Label     string                 `json:"label"`
	Schema    int                    `json:"schema"`
	GoVersion string                 `json:"go_version"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	Workload  map[string]any         `json:"workload"`
	Results   map[string]Measurement `json:"results"`
	// PipelineSpeedup is results["pipeline"] over results["serial"]
	// throughput on the identical trace.
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// MessagesPerChange is the amortized message complexity per
	// topological change on the pinned churn run (the paper's headline
	// cost measure).
	MessagesPerChange float64 `json:"messages_per_change"`
}

func main() {
	label := flag.String("label", "local", "label naming this run (BENCH_<label>.json)")
	out := flag.String("out", "", "output path (default BENCH_<label>.json)")
	compare := flag.String("compare", "", "baseline JSON to compare against; exit 1 on regression")
	maxRegress := flag.Float64("max-regress", 2.0, "maximum tolerated ops/sec regression factor vs the baseline")
	runs := flag.Int("runs", 5, "measurement repetitions (best run is reported)")
	sched := flag.String("sched", "random", "transport scheduler for the pinned runs (one of "+strings.Join(sim.SchedulerNames(), ", ")+")")
	flag.Parse()
	if _, err := sim.NewScheduler(*sched, ctlSeed); err != nil {
		fatalf("%v", err)
	}

	rep := Report{
		Label:     *label,
		Schema:    schemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workload: map[string]any{
			"experiment":     "E13-metered-pipeline",
			"tree":           fmt.Sprintf("balanced-%d", treeNodes),
			"clients":        clients,
			"per_client":     perClient,
			"chunk":          chunk,
			"mix":            "event-only",
			"seed":           traceSeed,
			"scheduler":      *sched,
			"churn_scenario": churnScenario,
		},
		Results: map[string]Measurement{},
	}

	total := clients * perClient
	m := int64(total) * 4
	w := m / 2
	rep.Workload["m"] = m
	rep.Workload["w"] = w

	serialM := measure(*runs, total, func() (func(), func() int64) {
		tr := buildBenchTree()
		ctl := dist.NewDynamic(tr, benchRuntime(*sched), m, w, false, nil)
		ct := buildBenchTrace(tr)
		reqs := ct.Serial()
		rt := ctlRuntime(ctl)
		return func() {
			for _, req := range reqs {
				if _, err := ctl.Submit(req); err != nil {
					fatalf("serial submit: %v", err)
				}
			}
		}, rt
	})
	serialM.Scenario, serialM.Scheduler = serialScenario, *sched
	rep.Results["serial"] = serialM

	pipeM := measure(*runs, total, func() (func(), func() int64) {
		tr := buildBenchTree()
		ctl := dist.NewDynamic(tr, benchRuntime(*sched), m, w, false, nil)
		pl := pipeline.New(ctl)
		ct := buildBenchTrace(tr)
		rt := ctlRuntime(ctl)
		return func() {
			res := workload.RunConcurrentChunked(pl, ct, chunk)
			if res.Errors > 0 {
				fatalf("pipeline run: %d request errors", res.Errors)
			}
		}, rt
	})
	pipeM.Scenario, pipeM.Scheduler = pipelineScenario, *sched
	rep.Results["pipeline"] = pipeM

	rep.PipelineSpeedup = rep.Results["pipeline"].OpsPerSec / rep.Results["serial"].OpsPerSec
	rep.MessagesPerChange = measureChurnMessages(*sched)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *label)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	os.Stdout.Write(buf)

	if *compare != "" {
		if err := compareBaseline(*compare, rep, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: within %.1fx of %s\n", *maxRegress, *compare)
	}
}

// benchRuntime builds the pinned transport; the scheduler name was
// validated at flag-parse time.
func benchRuntime(sched string) sim.Runtime {
	rt, err := sim.NewRuntime(sched, ctlSeed)
	if err != nil {
		fatalf("%v", err)
	}
	return rt
}

func buildBenchTree() *tree.Tree {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, treeNodes, 1); err != nil {
		fatalf("build tree: %v", err)
	}
	return tr
}

func buildBenchTrace(tr *tree.Tree) *workload.ConcurrentTrace {
	ct, err := workload.NewConcurrentTrace(tr, clients, perClient, workload.EventOnlyConcurrentMix(), traceSeed)
	if err != nil {
		fatalf("build trace: %v", err)
	}
	return ct
}

// ctlRuntime returns a sampler of the controller's delivered-message count.
func ctlRuntime(ctl *dist.Dynamic) func() int64 {
	return func() int64 { return dist.TotalMessages(ctl.Runtime(), ctl.Counters()) }
}

// measure runs setup+run `runs` times and reports the best run (standard
// benchmarking practice: the minimum is the least-noisy estimate) with
// allocation and message counts from that run.
func measure(runs, requests int, setup func() (func(), func() int64)) Measurement {
	if runs < 1 {
		runs = 1
	}
	best := Measurement{NsPerOp: float64(0)}
	for i := 0; i < runs; i++ {
		run, msgs := setup()
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		m0 := msgs()
		t0 := time.Now()
		run()
		dt := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		cur := Measurement{
			NsPerOp:     float64(dt.Nanoseconds()) / float64(requests),
			AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(requests),
			BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(requests),
			MsgsPerOp:   float64(msgs()-m0) / float64(requests),
		}
		cur.OpsPerSec = 1e9 / cur.NsPerOp
		if i == 0 || cur.NsPerOp < best.NsPerOp {
			best = cur
		}
	}
	return best
}

// measureChurnMessages replays the pinned fully-dynamic churn (E3's mix)
// through a fresh distributed controller and returns the amortized message
// complexity per topological change.
func measureChurnMessages(sched string) float64 {
	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, churnNodes, 1); err != nil {
		fatalf("churn tree: %v", err)
	}
	counters := stats.NewCounters()
	rt, err := sim.NewRuntime(sched, churnSeed)
	if err != nil {
		fatalf("%v", err)
	}
	m := int64(16 * churnNodes)
	ctl := dist.NewDynamic(tr, rt, m, 0, false, counters)
	gen := workload.NewChurn(tr, workload.Mix{AddLeaf: 30, RemoveLeaf: 25, AddInternal: 20, RemoveInternal: 25}, churnSeed)
	gen.SetMinSize(churnNodes / 4)
	for i := 0; i < 4*churnNodes; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := ctl.Submit(req); err != nil {
			fatalf("churn submit: %v", err)
		}
	}
	changes := counters.Get(stats.CounterTopoChanges)
	if changes == 0 {
		return 0
	}
	return float64(dist.TotalMessages(rt, counters)) / float64(changes)
}

// compareBaseline fails when any measured path's throughput fell by more
// than maxRegress relative to the baseline report.
func compareBaseline(path string, cur Report, maxRegress float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	if base.Schema != cur.Schema {
		return fmt.Errorf("baseline schema %d, current %d: refresh the baseline", base.Schema, cur.Schema)
	}
	for name, b := range base.Results {
		c, ok := cur.Results[name]
		if !ok {
			return fmt.Errorf("baseline result %q missing from current run", name)
		}
		if b.Scenario != c.Scenario || b.Scheduler != c.Scheduler {
			return fmt.Errorf("%s: baseline measured %s under %s, current run %s under %s:"+
				" not comparable (rerun with the matching -sched or refresh the baseline)",
				name, b.Scenario, b.Scheduler, c.Scenario, c.Scheduler)
		}
		if b.OpsPerSec <= 0 {
			continue
		}
		ratio := b.OpsPerSec / c.OpsPerSec
		fmt.Fprintf(os.Stderr, "benchjson: %-8s baseline %.0f ops/s, current %.0f ops/s (%.2fx)\n",
			name, b.OpsPerSec, c.OpsPerSec, ratio)
		if ratio > maxRegress {
			return fmt.Errorf("%s regressed %.2fx (> %.1fx allowed): %.0f -> %.0f ops/s"+
				" (if this machine is legitimately slower than the baseline's,"+
				" refresh BENCH_baseline.json; see README \"Benchmarking and CI gates\")",
				name, ratio, maxRegress, b.OpsPerSec, c.OpsPerSec)
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
