// Command controllersim runs the distributed (M,W)-Controller on a
// synthetic churn scenario and prints the cost summary.
//
// Usage:
//
//	controllersim -n0 256 -m 4096 -w 64 -requests 8192 -mix churn -seed 1
//
// Mixes: churn (default), grow, shrink, events.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynctrl/internal/dist"
	"dynctrl/internal/sim"
	"dynctrl/internal/stats"
	"dynctrl/internal/tree"
	"dynctrl/internal/workload"
)

func main() {
	var (
		n0       = flag.Int("n0", 256, "initial tree size")
		m        = flag.Int64("m", 4096, "permit budget M")
		w        = flag.Int64("w", 64, "waste parameter W")
		requests = flag.Int("requests", 8192, "maximum requests to submit")
		mix      = flag.String("mix", "churn", "workload mix: churn|grow|shrink|events")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*n0, *m, *w, *requests, *mix, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(n0 int, m, w int64, requests int, mixName string, seed int64) error {
	var mix workload.Mix
	switch mixName {
	case "churn":
		mix = workload.DefaultMix()
	case "grow":
		mix = workload.GrowOnlyMix()
	case "shrink":
		mix = workload.ShrinkHeavyMix()
	case "events":
		mix = workload.EventOnlyMix()
	default:
		return fmt.Errorf("unknown mix %q", mixName)
	}

	tr, _ := tree.New()
	if err := workload.BuildBalanced(tr, n0, seed); err != nil {
		return err
	}
	rt := sim.NewDeterministic(seed)
	counters := stats.NewCounters()
	ctl := dist.NewDynamic(tr, rt, m, w, false, counters)
	gen := workload.NewChurn(tr, mix, seed+1)
	gen.SetMinSize(maxInt(2, n0/8))

	res, err := workload.Run(ctl, gen, requests)
	if err != nil {
		return err
	}

	fmt.Printf("scenario     : n0=%d M=%d W=%d mix=%s seed=%d\n", n0, m, w, mixName, seed)
	fmt.Printf("submitted    : %d requests (granted %d, rejected %d)\n",
		res.Submitted, res.Granted, res.Rejected)
	fmt.Printf("final tree   : %d nodes (ever existed %d, height %d)\n",
		tr.Size(), tr.EverExisted(), tr.Height())
	fmt.Printf("iterations   : %d (unknown-U restarts)\n", ctl.Iterations())
	fmt.Printf("messages     : %d transport + %d control = %d total\n",
		rt.Messages(), counters.Get(dist.CounterControl), dist.TotalMessages(rt, counters))
	if ch := counters.Get(stats.CounterTopoChanges); ch > 0 {
		fmt.Printf("amortized    : %.1f messages per applied topological change\n",
			float64(dist.TotalMessages(rt, counters))/float64(ch))
	}
	if res.Granted > int(m) {
		return fmt.Errorf("SAFETY VIOLATION: granted %d > M=%d", res.Granted, m)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
